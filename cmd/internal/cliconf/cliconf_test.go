package cliconf

import (
	"flag"
	"testing"
)

func parse(t *testing.T, args ...string) *Common {
	t.Helper()
	c := new(Common)
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	RegisterEndpoint(fs, c)
	RegisterEngine(fs, c)
	RegisterPool(fs, c)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidate(t *testing.T) {
	if err := parse(t).Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	if err := parse(t, "-mux", "-transport", "http").Validate(); err == nil {
		t.Error("mux over http accepted")
	}
	if err := parse(t, "-encoding", "exi").Validate(); err == nil {
		t.Error("unknown encoding accepted")
	}
	if err := parse(t, "-stream", "-chunk-bytes", "0").Validate(); err == nil {
		t.Error("zero chunk window accepted with -stream")
	}

	c := parse(t, "-conns", "3")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Inflight != 3 {
		t.Errorf("Inflight default = %d, want conns (3)", c.Inflight)
	}
}

func TestStreamChunk(t *testing.T) {
	if got := parse(t).StreamChunk(); got != 0 {
		t.Errorf("StreamChunk without -stream = %d, want 0", got)
	}
	c := parse(t, "-stream", "-chunk-bytes", "4096")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.StreamChunk(); got != 4096 {
		t.Errorf("StreamChunk = %d, want 4096", got)
	}
	if got := len(c.EngineOptions(nil)); got != 2 {
		t.Errorf("EngineOptions count = %d, want observer+streaming", got)
	}
}

func TestLabel(t *testing.T) {
	if got := parse(t, "-transport", "http").Label(); got != "http" {
		t.Errorf("Label = %q, want http", got)
	}
	if got := parse(t, "-mux").Label(); got != "mux" {
		t.Errorf("Label = %q, want mux", got)
	}
}

func TestParseEndpoint(t *testing.T) {
	ep, err := ParseEndpoint("XML/TCP:127.0.0.1:8800")
	if err != nil {
		t.Fatal(err)
	}
	if ep.Encoding != "xml" || ep.Transport != "tcp" || ep.Addr != "127.0.0.1:8800" {
		t.Errorf("parsed %+v", ep)
	}
	for _, bad := range []string{"", "bxsa:addr", "bxsa/quic:addr", "exi/tcp:addr", "bxsa/tcp:"} {
		if _, err := ParseEndpoint(bad); err == nil {
			t.Errorf("ParseEndpoint(%q) accepted", bad)
		}
	}
}
