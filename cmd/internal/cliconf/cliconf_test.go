package cliconf

import (
	"flag"
	"testing"
	"time"

	"bxsoap/internal/obs"
)

func parse(t *testing.T, args ...string) *Common {
	t.Helper()
	c := new(Common)
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	RegisterEndpoint(fs, c)
	RegisterEngine(fs, c)
	RegisterPool(fs, c)
	RegisterObs(fs, c)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidate(t *testing.T) {
	if err := parse(t).Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	if err := parse(t, "-mux", "-transport", "http").Validate(); err == nil {
		t.Error("mux over http accepted")
	}
	if err := parse(t, "-encoding", "exi").Validate(); err == nil {
		t.Error("unknown encoding accepted")
	}
	if err := parse(t, "-stream", "-chunk-bytes", "0").Validate(); err == nil {
		t.Error("zero chunk window accepted with -stream")
	}

	c := parse(t, "-conns", "3")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Inflight != 3 {
		t.Errorf("Inflight default = %d, want conns (3)", c.Inflight)
	}
}

func TestStreamChunk(t *testing.T) {
	if got := parse(t).StreamChunk(); got != 0 {
		t.Errorf("StreamChunk without -stream = %d, want 0", got)
	}
	c := parse(t, "-stream", "-chunk-bytes", "4096")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.StreamChunk(); got != 4096 {
		t.Errorf("StreamChunk = %d, want 4096", got)
	}
	if got := len(c.EngineOptions(nil)); got != 2 {
		t.Errorf("EngineOptions count = %d, want observer+streaming", got)
	}
}

func TestLabel(t *testing.T) {
	if got := parse(t, "-transport", "http").Label(); got != "http" {
		t.Errorf("Label = %q, want http", got)
	}
	if got := parse(t, "-mux").Label(); got != "mux" {
		t.Errorf("Label = %q, want mux", got)
	}
}

func TestParseEndpoint(t *testing.T) {
	ep, err := ParseEndpoint("XML/TCP:127.0.0.1:8800")
	if err != nil {
		t.Fatal(err)
	}
	if ep.Encoding != "xml" || ep.Transport != "tcp" || ep.Addr != "127.0.0.1:8800" {
		t.Errorf("parsed %+v", ep)
	}
	for _, bad := range []string{"", "bxsa:addr", "bxsa/quic:addr", "exi/tcp:addr", "bxsa/tcp:"} {
		if _, err := ParseEndpoint(bad); err == nil {
			t.Errorf("ParseEndpoint(%q) accepted", bad)
		}
	}
}

func TestParseSLO(t *testing.T) {
	good := []struct {
		in   string
		want obs.SLO
	}{
		{"data:p99=5ms", obs.SLO{Op: "data", P99: 5 * time.Millisecond}},
		{"data:p99=5ms,err=1%", obs.SLO{Op: "data", P99: 5 * time.Millisecond, MaxErrRate: 0.01}},
		{"data:err=0.02", obs.SLO{Op: "data", MaxErrRate: 0.02}},
		{"op:p99=1.5s,err=10%,burn=4", obs.SLO{Op: "op", P99: 1500 * time.Millisecond, MaxErrRate: 0.1, Burn: 4}},
	}
	for _, tc := range good {
		got, err := ParseSLO(tc.in)
		if err != nil {
			t.Errorf("ParseSLO(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSLO(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}

	bad := []string{
		"",                  // empty
		"data",              // no objectives
		":p99=5ms",          // empty op
		"data:p99",          // no value
		"data:p99=fast",     // bad duration
		"data:p99=-5ms",     // negative target
		"data:err=150%",     // over 100%
		"data:err=-1%",      // negative
		"data:burn=0",       // non-positive threshold
		"data:p50=5ms",      // unknown objective
		"data:burn=2",       // neither p99 nor err
	}
	for _, in := range bad {
		if slo, err := ParseSLO(in); err == nil {
			t.Errorf("ParseSLO(%q) = %+v, want error", in, slo)
		}
	}
}

// The repeatable -slo flag accumulates declarations in order.
func TestSLOListFlag(t *testing.T) {
	c := parse(t, "-slo", "data:p99=5ms", "-slo", "query:err=1%")
	if len(c.SLOs) != 2 || c.SLOs[0].Op != "data" || c.SLOs[1].Op != "query" {
		t.Fatalf("SLOs = %+v, want data then query", c.SLOs)
	}
}

// NewObserver applies the observability flags: SLO declarations switch on
// the dimensional registry and the burn-rate engine, and -slow-ms seeds
// (or disables) the recorder's slow-trace threshold.
func TestNewObserverAppliesObsFlags(t *testing.T) {
	c := parse(t, "-slo", "data:p99=5ms", "-slow-ms", "25")
	o := c.NewObserver("test")
	if !o.Dimensional() {
		t.Error("observer not dimensional despite a declared SLO")
	}
	if st := o.SLOStatus(); len(st) != 1 || st[0].Op != "data" {
		t.Errorf("SLOStatus = %+v, want one entry for data", st)
	}
	// 25ms from the flag, tightened to the SLO's 5ms target.
	if got := o.Recorder().SlowThreshold(); got != 5*time.Millisecond {
		t.Errorf("slow threshold = %v, want 5ms", got)
	}

	c = parse(t, "-slow-ms", "-1")
	if got := c.NewObserver("test").Recorder().SlowThreshold(); got >= 0 {
		t.Errorf("slow threshold = %v, want negative (disabled)", got)
	}

	plain := parse(t)
	o = plain.NewObserver("test")
	if o.Dimensional() {
		t.Error("observer dimensional with no SLOs declared")
	}
	if got := o.Recorder().SlowThreshold(); got != time.Millisecond {
		t.Errorf("default slow threshold = %v, want 1ms", got)
	}
}
