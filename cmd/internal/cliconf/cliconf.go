// Package cliconf is the single home of the flag wiring shared by the
// soap* commands (cmd/soapclient, cmd/soapserver, cmd/soapproxy). Each
// command used to re-declare the same -encoding/-transport/-mux/
// -templates/-trace/-admin/-conns/-inflight set with drifting help text;
// here every shared knob is declared once, new shared knobs (-stream,
// -chunk-bytes) land once, and the validation rules (mux implies tcp, the
// accepted encoding and transport names) are enforced in one place.
//
// Commands register only the groups they use:
//
//	c := new(cliconf.Common)
//	cliconf.RegisterEndpoint(flag.CommandLine, c)
//	cliconf.RegisterEngine(flag.CommandLine, c)
//	cliconf.RegisterPool(flag.CommandLine, c)
//	flag.Parse()
//	if err := c.Validate(); err != nil { ... }
package cliconf

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	"bxsoap/internal/core"
	"bxsoap/internal/obs"
)

// Common holds the parsed values of the shared flags. Zero values mean the
// corresponding group was not registered.
type Common struct {
	Encoding  string // "bxsa" or "xml"
	Transport string // "tcp" or "http"
	Mux       bool   // stream-multiplexed framed transport (tcp only)

	Templates  int  // schema-compiled template cache capacity
	Stream     bool // streamed envelope pipeline
	ChunkBytes int  // chunk window when streaming

	Conns    int // pooled connections
	Inflight int // concurrent in-flight calls

	Trace bool   // record request traces
	Admin string // admin endpoint address
}

// RegisterEndpoint declares the policy-selection flags: -encoding,
// -transport, -mux.
func RegisterEndpoint(fs *flag.FlagSet, c *Common) {
	fs.StringVar(&c.Encoding, "encoding", "bxsa", "message encoding: bxsa or xml")
	fs.StringVar(&c.Transport, "transport", "tcp", "transport binding: tcp or http")
	fs.BoolVar(&c.Mux, "mux", false, "multiplex calls as streams over the framed transport (implies -transport tcp)")
}

// RegisterEngine declares the engine-tuning flags shared by client and
// server: -templates, -stream, -chunk-bytes.
func RegisterEngine(fs *flag.FlagSet, c *Common) {
	fs.IntVar(&c.Templates, "templates", 0, "schema-compiled template cache capacity, 0 disables (repeated shapes encode/decode by skeleton splice)")
	fs.BoolVar(&c.Stream, "stream", false, "stream envelopes as bounded chunks instead of buffering whole messages")
	fs.IntVar(&c.ChunkBytes, "chunk-bytes", core.DefaultChunkBytes, "chunk window in bytes when -stream is set")
}

// RegisterPool declares the client-runtime sizing flags: -conns,
// -inflight.
func RegisterPool(fs *flag.FlagSet, c *Common) {
	fs.IntVar(&c.Conns, "conns", 1, "max pooled connections to the server")
	fs.IntVar(&c.Inflight, "inflight", 0, "max concurrent in-flight calls (default: same as -conns)")
}

// RegisterTrace declares -trace.
func RegisterTrace(fs *flag.FlagSet, c *Common) {
	fs.BoolVar(&c.Trace, "trace", false, "record request traces and print the last call's trace tree")
}

// RegisterAdmin declares -admin.
func RegisterAdmin(fs *flag.FlagSet, c *Common) {
	fs.StringVar(&c.Admin, "admin", "", "serve /metrics, /trace/recent, /trace/slow, /events and /debug/pprof on this address")
}

// Validate applies the cross-flag rules and normalizes defaults. Call it
// after flag.Parse.
func (c *Common) Validate() error {
	if c.Encoding != "" && c.Encoding != "bxsa" && c.Encoding != "xml" {
		return fmt.Errorf("unknown encoding %q: want bxsa or xml", c.Encoding)
	}
	if c.Transport != "" && c.Transport != "tcp" && c.Transport != "http" {
		return fmt.Errorf("unknown transport %q: want tcp or http", c.Transport)
	}
	if c.Mux && c.Transport != "tcp" {
		return fmt.Errorf("-mux is a framed TCP protocol; -transport %s is not supported", c.Transport)
	}
	if c.Stream && c.ChunkBytes <= 0 {
		return fmt.Errorf("-chunk-bytes must be positive with -stream, got %d", c.ChunkBytes)
	}
	if c.Conns <= 0 {
		c.Conns = 1
	}
	if c.Inflight <= 0 {
		c.Inflight = c.Conns
	}
	return nil
}

// StreamChunk returns the chunk window to configure, or 0 when streaming
// is off — the value WithStreaming and muxbind's Config.ChunkBytes expect.
func (c *Common) StreamChunk() int {
	if !c.Stream {
		return 0
	}
	return c.ChunkBytes
}

// Label names the transport for human-facing output: "mux" when
// multiplexing, else the transport flag.
func (c *Common) Label() string {
	if c.Mux {
		return "mux"
	}
	return c.Transport
}

// EngineOptions assembles the core.EngineOption list the shared flags
// imply. A nil observer keeps the observability path dormant.
func (c *Common) EngineOptions(o *obs.Observer) []core.EngineOption {
	opts := []core.EngineOption{core.WithObserver(o)}
	if c.Templates > 0 {
		opts = append(opts, core.WithTemplates(c.Templates))
	}
	if n := c.StreamChunk(); n > 0 {
		opts = append(opts, core.WithStreaming(n))
	}
	return opts
}

// ServerOptions assembles the core.ServerOption list the shared flags
// imply.
func (c *Common) ServerOptions(o *obs.Observer, errLog *log.Logger) []core.ServerOption {
	opts := []core.ServerOption{core.WithObserver(o), core.WithErrorLog(errLog)}
	if c.Templates > 0 {
		opts = append(opts, core.WithTemplates(c.Templates))
	}
	if n := c.StreamChunk(); n > 0 {
		opts = append(opts, core.WithStreaming(n))
	}
	return opts
}

// NewObserver builds the process-wide observer with a flight recorder and
// registers it as the payload-pool observer, the same composition every
// command used to spell out.
func NewObserver(node string) *obs.Observer {
	o := obs.New(
		obs.WithNode(node),
		obs.WithRecorder(obs.NewRecorder(obs.RecorderConfig{})),
	)
	core.SetPayloadObserver(o)
	return o
}

// ServeAdmin starts the admin endpoint on addr when non-empty, announcing
// it on stdout. extra, when non-nil, folds command-specific stats into each
// served snapshot.
func ServeAdmin(addr, command string, o *obs.Observer, extra func(*obs.Snapshot), errLog *log.Logger) error {
	if addr == "" {
		return nil
	}
	al, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("admin: %w", err)
	}
	go func() {
		if err := http.Serve(al, obs.AdminMux(o, extra)); err != nil {
			errLog.Printf("admin endpoint: %v", err)
		}
	}()
	fmt.Printf("%s: admin endpoint (metrics, traces, events, pprof) on http://%s\n", command, al.Addr())
	return nil
}

// Endpoint is a parsed encoding/transport:addr triple, the -listen and
// -backend syntax of cmd/soapproxy.
type Endpoint struct {
	Encoding  string // "xml" or "bxsa"
	Transport string // "tcp" or "http"
	Addr      string
}

// ParseEndpoint parses "encoding/transport:addr", validating the names
// against the same sets as Validate.
func ParseEndpoint(s string) (Endpoint, error) {
	slash := strings.IndexByte(s, '/')
	colon := strings.IndexByte(s, ':')
	if slash < 0 || colon < slash {
		return Endpoint{}, fmt.Errorf("endpoint %q: want encoding/transport:addr", s)
	}
	ep := Endpoint{
		Encoding:  strings.ToLower(s[:slash]),
		Transport: strings.ToLower(s[slash+1 : colon]),
		Addr:      s[colon+1:],
	}
	if ep.Encoding != "xml" && ep.Encoding != "bxsa" {
		return Endpoint{}, fmt.Errorf("endpoint %q: unknown encoding %q", s, ep.Encoding)
	}
	if ep.Transport != "tcp" && ep.Transport != "http" {
		return Endpoint{}, fmt.Errorf("endpoint %q: unknown transport %q", s, ep.Transport)
	}
	if ep.Addr == "" {
		return Endpoint{}, fmt.Errorf("endpoint %q: missing address", s)
	}
	return ep, nil
}
