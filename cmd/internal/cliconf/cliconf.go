// Package cliconf is the single home of the flag wiring shared by the
// soap* commands (cmd/soapclient, cmd/soapserver, cmd/soapproxy). Each
// command used to re-declare the same -encoding/-transport/-mux/
// -templates/-trace/-admin/-conns/-inflight set with drifting help text;
// here every shared knob is declared once, new shared knobs (-stream,
// -chunk-bytes) land once, and the validation rules (mux implies tcp, the
// accepted encoding and transport names) are enforced in one place.
//
// Commands register only the groups they use:
//
//	c := new(cliconf.Common)
//	cliconf.RegisterEndpoint(flag.CommandLine, c)
//	cliconf.RegisterEngine(flag.CommandLine, c)
//	cliconf.RegisterPool(flag.CommandLine, c)
//	flag.Parse()
//	if err := c.Validate(); err != nil { ... }
package cliconf

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"bxsoap/internal/core"
	"bxsoap/internal/obs"
)

// Common holds the parsed values of the shared flags. Zero values mean the
// corresponding group was not registered.
type Common struct {
	Encoding  string // "bxsa" or "xml"
	Transport string // "tcp" or "http"
	Mux       bool   // stream-multiplexed framed transport (tcp only)

	Templates  int  // schema-compiled template cache capacity
	Stream     bool // streamed envelope pipeline
	ChunkBytes int  // chunk window when streaming

	Conns    int // pooled connections
	Inflight int // concurrent in-flight calls

	Trace bool   // record request traces
	Admin string // admin endpoint address

	SLOs   SLOList // declared service-level objectives (-slo, repeatable)
	SlowMS float64 // slow-trace threshold in ms (0 default, negative disables)
}

// SLOList collects repeated -slo flags, each an obs.SLO declaration in the
// "op:p99=20ms,err=1%,burn=2" syntax of ParseSLO.
type SLOList []obs.SLO

// String implements flag.Value.
func (l *SLOList) String() string {
	var parts []string
	for _, s := range *l {
		parts = append(parts, s.Op)
	}
	return strings.Join(parts, ",")
}

// Set implements flag.Value, parsing and appending one declaration.
func (l *SLOList) Set(s string) error {
	slo, err := ParseSLO(s)
	if err != nil {
		return err
	}
	*l = append(*l, slo)
	return nil
}

// ParseSLO parses one service-level objective declaration:
//
//	op:p99=20ms,err=1%,burn=2
//
// op is the operation name (the request body's first-child local name).
// p99 is a Go duration — the latency target; err is the permitted error
// fraction, with or without a trailing %; burn overrides the burn-rate
// firing threshold. At least one of p99 and err must be declared.
func ParseSLO(s string) (obs.SLO, error) {
	op, spec, ok := strings.Cut(s, ":")
	if !ok || op == "" {
		return obs.SLO{}, fmt.Errorf("slo %q: want op:p99=<duration>[,err=<fraction>%%][,burn=<rate>]", s)
	}
	slo := obs.SLO{Op: op}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return obs.SLO{}, fmt.Errorf("slo %q: bad objective %q: want key=value", s, part)
		}
		switch k {
		case "p99":
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return obs.SLO{}, fmt.Errorf("slo %q: bad p99 %q: want a positive duration", s, v)
			}
			slo.P99 = d
		case "err":
			pct := strings.HasSuffix(v, "%")
			f, err := strconv.ParseFloat(strings.TrimSuffix(v, "%"), 64)
			if err != nil || f < 0 {
				return obs.SLO{}, fmt.Errorf("slo %q: bad err %q: want a non-negative fraction or percentage", s, v)
			}
			if pct {
				f /= 100
			}
			if f > 1 {
				return obs.SLO{}, fmt.Errorf("slo %q: err %q exceeds 100%%", s, v)
			}
			slo.MaxErrRate = f
		case "burn":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 {
				return obs.SLO{}, fmt.Errorf("slo %q: bad burn %q: want a positive rate", s, v)
			}
			slo.Burn = f
		default:
			return obs.SLO{}, fmt.Errorf("slo %q: unknown objective %q (want p99, err, or burn)", s, k)
		}
	}
	if slo.P99 <= 0 && slo.MaxErrRate <= 0 {
		return obs.SLO{}, fmt.Errorf("slo %q: declares neither p99 nor err", s)
	}
	return slo, nil
}

// RegisterEndpoint declares the policy-selection flags: -encoding,
// -transport, -mux.
func RegisterEndpoint(fs *flag.FlagSet, c *Common) {
	fs.StringVar(&c.Encoding, "encoding", "bxsa", "message encoding: bxsa or xml")
	fs.StringVar(&c.Transport, "transport", "tcp", "transport binding: tcp or http")
	fs.BoolVar(&c.Mux, "mux", false, "multiplex calls as streams over the framed transport (implies -transport tcp)")
}

// RegisterEngine declares the engine-tuning flags shared by client and
// server: -templates, -stream, -chunk-bytes.
func RegisterEngine(fs *flag.FlagSet, c *Common) {
	fs.IntVar(&c.Templates, "templates", 0, "schema-compiled template cache capacity, 0 disables (repeated shapes encode/decode by skeleton splice)")
	fs.BoolVar(&c.Stream, "stream", false, "stream envelopes as bounded chunks instead of buffering whole messages")
	fs.IntVar(&c.ChunkBytes, "chunk-bytes", core.DefaultChunkBytes, "chunk window in bytes when -stream is set")
}

// RegisterPool declares the client-runtime sizing flags: -conns,
// -inflight.
func RegisterPool(fs *flag.FlagSet, c *Common) {
	fs.IntVar(&c.Conns, "conns", 1, "max pooled connections to the server")
	fs.IntVar(&c.Inflight, "inflight", 0, "max concurrent in-flight calls (default: same as -conns)")
}

// RegisterTrace declares -trace.
func RegisterTrace(fs *flag.FlagSet, c *Common) {
	fs.BoolVar(&c.Trace, "trace", false, "record request traces and print the last call's trace tree")
}

// RegisterAdmin declares -admin.
func RegisterAdmin(fs *flag.FlagSet, c *Common) {
	fs.StringVar(&c.Admin, "admin", "", "serve /metrics, /slo, /trace/recent, /trace/slow, /events and /debug/pprof on this address")
}

// RegisterObs declares the observability-tuning flags: -slo (repeatable)
// and -slow-ms.
func RegisterObs(fs *flag.FlagSet, c *Common) {
	fs.Var(&c.SLOs, "slo", "declare a service-level objective as op:p99=<duration>[,err=<fraction>%][,burn=<rate>]; repeatable, enables burn-rate alerting and dimensional per-operation metrics")
	fs.Float64Var(&c.SlowMS, "slow-ms", 0, "flight-recorder slow-trace threshold in milliseconds (0 = default 1ms, tightened to any declared SLO p99; negative disables the slow ring)")
}

// Validate applies the cross-flag rules and normalizes defaults. Call it
// after flag.Parse.
func (c *Common) Validate() error {
	if c.Encoding != "" && c.Encoding != "bxsa" && c.Encoding != "xml" {
		return fmt.Errorf("unknown encoding %q: want bxsa or xml", c.Encoding)
	}
	if c.Transport != "" && c.Transport != "tcp" && c.Transport != "http" {
		return fmt.Errorf("unknown transport %q: want tcp or http", c.Transport)
	}
	if c.Mux && c.Transport != "tcp" {
		return fmt.Errorf("-mux is a framed TCP protocol; -transport %s is not supported", c.Transport)
	}
	if c.Stream && c.ChunkBytes <= 0 {
		return fmt.Errorf("-chunk-bytes must be positive with -stream, got %d", c.ChunkBytes)
	}
	if c.Conns <= 0 {
		c.Conns = 1
	}
	if c.Inflight <= 0 {
		c.Inflight = c.Conns
	}
	return nil
}

// StreamChunk returns the chunk window to configure, or 0 when streaming
// is off — the value WithStreaming and muxbind's Config.ChunkBytes expect.
func (c *Common) StreamChunk() int {
	if !c.Stream {
		return 0
	}
	return c.ChunkBytes
}

// Label names the transport for human-facing output: "mux" when
// multiplexing, else the transport flag.
func (c *Common) Label() string {
	if c.Mux {
		return "mux"
	}
	return c.Transport
}

// EngineOptions assembles the core.EngineOption list the shared flags
// imply. A nil observer keeps the observability path dormant.
func (c *Common) EngineOptions(o *obs.Observer) []core.EngineOption {
	opts := []core.EngineOption{core.WithObserver(o)}
	if c.Templates > 0 {
		opts = append(opts, core.WithTemplates(c.Templates))
	}
	if n := c.StreamChunk(); n > 0 {
		opts = append(opts, core.WithStreaming(n))
	}
	return opts
}

// ServerOptions assembles the core.ServerOption list the shared flags
// imply.
func (c *Common) ServerOptions(o *obs.Observer, errLog *log.Logger) []core.ServerOption {
	opts := []core.ServerOption{core.WithObserver(o), core.WithErrorLog(errLog)}
	if c.Templates > 0 {
		opts = append(opts, core.WithTemplates(c.Templates))
	}
	if n := c.StreamChunk(); n > 0 {
		opts = append(opts, core.WithStreaming(n))
	}
	return opts
}

// NewObserver builds the process-wide observer with a flight recorder and
// registers it as the payload-pool observer, the same composition every
// command used to spell out. The shared flags shape it: -slow-ms seeds the
// recorder's slow-trace threshold, -slo declarations install the burn-rate
// engine (and auto-tighten that threshold to each objective's p99), and
// declaring any SLO also switches on the dimensional per-operation series,
// labeled with the process's encoding and transport selection.
func (c *Common) NewObserver(node string) *obs.Observer {
	rc := obs.RecorderConfig{}
	if c.SlowMS != 0 {
		rc.SlowThreshold = time.Duration(c.SlowMS * float64(time.Millisecond))
	}
	opts := []obs.Option{
		obs.WithNode(node),
		obs.WithRecorder(obs.NewRecorder(rc)),
	}
	if len(c.SLOs) > 0 {
		opts = append(opts,
			obs.WithDims(c.Encoding, c.Label()),
			obs.WithSLOs(c.SLOs...))
	}
	o := obs.New(opts...)
	core.SetPayloadObserver(o)
	return o
}

// ServeAdmin starts the admin endpoint on addr when non-empty, announcing
// it on stdout. extra, when non-nil, folds command-specific stats into each
// served snapshot.
func ServeAdmin(addr, command string, o *obs.Observer, extra func(*obs.Snapshot), errLog *log.Logger) error {
	if addr == "" {
		return nil
	}
	al, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("admin: %w", err)
	}
	go func() {
		if err := http.Serve(al, obs.AdminMux(o, extra)); err != nil {
			errLog.Printf("admin endpoint: %v", err)
		}
	}()
	fmt.Printf("%s: admin endpoint (metrics, traces, events, pprof) on http://%s\n", command, al.Addr())
	return nil
}

// Endpoint is a parsed encoding/transport:addr triple, the -listen and
// -backend syntax of cmd/soapproxy.
type Endpoint struct {
	Encoding  string // "xml" or "bxsa"
	Transport string // "tcp" or "http"
	Addr      string
}

// ParseEndpoint parses "encoding/transport:addr", validating the names
// against the same sets as Validate.
func ParseEndpoint(s string) (Endpoint, error) {
	slash := strings.IndexByte(s, '/')
	colon := strings.IndexByte(s, ':')
	if slash < 0 || colon < slash {
		return Endpoint{}, fmt.Errorf("endpoint %q: want encoding/transport:addr", s)
	}
	ep := Endpoint{
		Encoding:  strings.ToLower(s[:slash]),
		Transport: strings.ToLower(s[slash+1 : colon]),
		Addr:      s[colon+1:],
	}
	if ep.Encoding != "xml" && ep.Encoding != "bxsa" {
		return Endpoint{}, fmt.Errorf("endpoint %q: unknown encoding %q", s, ep.Encoding)
	}
	if ep.Transport != "tcp" && ep.Transport != "http" {
		return Endpoint{}, fmt.Errorf("endpoint %q: unknown transport %q", s, ep.Transport)
	}
	if ep.Addr == "" {
		return Endpoint{}, fmt.Errorf("endpoint %q: missing address", s)
	}
	return ep, nil
}
