// Command bxsacat transcodes between textual XML and BXSA (paper §4.2):
//
//	bxsacat -to bxsa doc.xml > doc.bxsa
//	bxsacat -to xml  doc.bxsa > doc.xml
//	bxsacat -inspect doc.bxsa        # skip-scan frame summary
//
// The input format is auto-detected; -to picks the output. Typed values
// travel through xsi:type / SOAP-ENC arrayType hints so XML→BXSA→XML and
// BXSA→XML→BXSA both preserve the bXDM model.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/bxsa"
	"bxsoap/internal/transform"
	"bxsoap/internal/xbs"
	"bxsoap/internal/xmltext"
)

func main() {
	to := flag.String("to", "", "output format: xml or bxsa (default: the opposite of the input)")
	inspect := flag.Bool("inspect", false, "print a frame summary instead of transcoding")
	bigEndian := flag.Bool("be", false, "emit BXSA frames big-endian")
	upgrade := flag.Bool("upgrade", false, "retype numeric text content and pack repeated numeric elements into arrays before encoding")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	data, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	isBXSA := looksLikeBXSA(data)

	if *inspect {
		if !isBXSA {
			fatal(fmt.Errorf("-inspect requires BXSA input"))
		}
		if err := printFrames(os.Stdout, data, 0); err != nil {
			fatal(err)
		}
		return
	}

	target := *to
	if target == "" {
		if isBXSA {
			target = "xml"
		} else {
			target = "bxsa"
		}
	}

	// Decode the input into the bXDM model, whichever serialization it
	// arrived in — everything downstream works on the model.
	var node bxdm.Node
	if isBXSA {
		node, err = bxsa.Parse(data)
	} else {
		var doc *bxdm.Document
		doc, err = xmltext.Parse(data, xmltext.DecodeOptions{RecoverTypes: true})
		node = doc
	}
	if err != nil {
		fatal(err)
	}
	if *upgrade {
		node = transform.PromoteArrays(transform.Retype(node), 4)
	}

	var result []byte
	switch target {
	case "xml":
		result, err = xmltext.Marshal(node, xmltext.EncodeOptions{XMLDecl: true, TypeHints: true})
	case "bxsa":
		order := xbs.LittleEndian
		if *bigEndian {
			order = xbs.BigEndian
		}
		result, err = bxsa.Marshal(node, bxsa.EncodeOptions{Order: order})
	default:
		fatal(fmt.Errorf("unknown -to format %q", target))
	}
	if err != nil {
		fatal(err)
	}
	if err := writeOutput(*out, result); err != nil {
		fatal(err)
	}
}

func looksLikeBXSA(data []byte) bool {
	if len(data) == 0 {
		return false
	}
	// A BXSA stream starts with a frame prefix whose low 6 bits are a
	// small frame-type code; XML starts with '<' or whitespace/BOM.
	_, err := bxsa.CountFrames(data)
	return err == nil
}

func printFrames(w io.Writer, data []byte, depth int) error {
	return printScanner(w, bxsa.NewScanner(data), depth)
}

func printScanner(w io.Writer, sc *bxsa.Scanner, depth int) error {
	for sc.Next() {
		fmt.Fprintf(w, "%*s%-14s %6d bytes  (%s)\n", depth*2, "", sc.Type(), sc.FrameSize(), sc.Order())
		if sc.Type() == bxsa.FrameDocument || sc.Type() == bxsa.FrameElement {
			inner, err := sc.Descend()
			if err != nil {
				return err
			}
			if err := printScanner(w, inner, depth+1); err != nil {
				return err
			}
		}
	}
	return sc.Err()
}

func readInput(path string) ([]byte, error) {
	if path == "" || path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func writeOutput(path string, data []byte) error {
	if path == "" || path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bxsacat:", err)
	os.Exit(1)
}
