// Command soapclient invokes the verification service started by
// cmd/soapserver and reports the result and response time:
//
//	soapclient -encoding bxsa -transport tcp -addr 127.0.0.1:8701 -n 1000 -calls 10
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"bxsoap/internal/core"
	"bxsoap/internal/dataset"
	"bxsoap/internal/httpbind"
	"bxsoap/internal/tcpbind"
)

func main() {
	encoding := flag.String("encoding", "bxsa", "message encoding: bxsa or xml")
	transport := flag.String("transport", "tcp", "transport binding: tcp or http")
	addr := flag.String("addr", "127.0.0.1:8701", "server address")
	n := flag.Int("n", 1000, "model size (number of (double,int) pairs)")
	calls := flag.Int("calls", 5, "number of invocations to time")
	flag.Parse()

	call, closeFn, err := buildEngine(*encoding, *transport, *addr)
	if err != nil {
		log.Fatalf("soapclient: %v", err)
	}
	defer closeFn()

	m := dataset.Generate(*n)
	req := core.NewEnvelope(m.Element())

	var best time.Duration
	for i := 0; i < *calls; i++ {
		start := time.Now()
		resp, err := call(context.Background(), req)
		elapsed := time.Since(start)
		if err != nil {
			log.Fatalf("soapclient: call %d: %v", i, err)
		}
		if best == 0 || elapsed < best {
			best = elapsed
		}
		if i == 0 {
			fmt.Printf("response body: %s\n", summarize(resp))
		}
	}
	fmt.Printf("%s/%s  model size %d  best of %d calls: %v (%.0f pairs/s)\n",
		*encoding, *transport, *n, *calls, best, float64(*n)/best.Seconds())
}

type callFunc func(context.Context, *core.Envelope) (*core.Envelope, error)

func buildEngine(encoding, transport, addr string) (callFunc, func() error, error) {
	switch {
	case encoding == "bxsa" && transport == "tcp":
		eng := core.NewEngine(core.BXSAEncoding{}, tcpbind.New(tcpbind.NetDialer, addr))
		return eng.Call, eng.Close, nil
	case encoding == "xml" && transport == "tcp":
		eng := core.NewEngine(core.XMLEncoding{}, tcpbind.New(tcpbind.NetDialer, addr))
		return eng.Call, eng.Close, nil
	case encoding == "bxsa" && transport == "http":
		eng := core.NewEngine(core.BXSAEncoding{}, httpbind.New(nil, "http://"+addr+"/soap"))
		return eng.Call, eng.Close, nil
	case encoding == "xml" && transport == "http":
		eng := core.NewEngine(core.XMLEncoding{}, httpbind.New(nil, "http://"+addr+"/soap"))
		return eng.Call, eng.Close, nil
	default:
		return nil, nil, fmt.Errorf("unknown combination %s/%s", encoding, transport)
	}
}

func summarize(resp *core.Envelope) string {
	body := resp.Body()
	if body == nil {
		return "(empty)"
	}
	return fmt.Sprintf("%v", body.ElemName())
}
