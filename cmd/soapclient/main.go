// Command soapclient invokes the verification service started by
// cmd/soapserver and reports the result and response time. Calls ride the
// svcpool client runtime: -conns bounds the persistent connections,
// -inflight the concurrent calls (backpressure applies beyond it).
//
//	soapclient -encoding bxsa -transport tcp -addr 127.0.0.1:8701 -n 1000 -calls 10
//	soapclient -conns 8 -inflight 16 -calls 200        # concurrent throughput
//	soapclient -mux -conns 4 -inflight 256 -calls 2000 # multiplexed: 256 streams on 4 sockets
//
// With -mux the calls ride the stream-multiplexed framed transport
// (internal/muxbind, server started with `soapserver -mux`): -conns caps the
// shared connections while -inflight concurrent calls interleave as streams
// on them, so inflight can far exceed conns.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"bxsoap/internal/core"
	"bxsoap/internal/dataset"
	"bxsoap/internal/httpbind"
	"bxsoap/internal/muxbind"
	"bxsoap/internal/obs"
	"bxsoap/internal/svcpool"
	"bxsoap/internal/tcpbind"
)

func main() {
	encoding := flag.String("encoding", "bxsa", "message encoding: bxsa or xml")
	transport := flag.String("transport", "tcp", "transport binding: tcp or http")
	addr := flag.String("addr", "127.0.0.1:8701", "server address")
	n := flag.Int("n", 1000, "model size (number of (double,int) pairs)")
	calls := flag.Int("calls", 5, "number of invocations to time")
	conns := flag.Int("conns", 1, "max pooled connections to the server")
	inflight := flag.Int("inflight", 0, "max concurrent in-flight calls (default: same as -conns)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-call deadline")
	trace := flag.Bool("trace", false, "record request traces and print the last call's trace tree")
	mux := flag.Bool("mux", false, "multiplex calls as streams over the framed transport (implies -transport tcp)")
	templates := flag.Int("templates", 0, "schema-compiled template cache capacity, 0 disables (repeated shapes encode/decode by skeleton splice)")
	flag.Parse()

	if *conns <= 0 {
		*conns = 1
	}
	if *inflight <= 0 {
		*inflight = *conns
	}
	// With -trace the pool runs under an observer carrying a flight
	// recorder: every call starts a client hop, stamps the trace header
	// onto the wire (so the server and any intermediary join the same
	// trace), and lands in the recorder. Without it the observer is nil
	// and the whole trace path is dormant.
	var o *obs.Observer
	if *trace {
		o = obs.New(
			obs.WithNode("soapclient"),
			obs.WithRecorder(obs.NewRecorder(obs.RecorderConfig{})),
		)
	}
	pool, err := buildPool(*encoding, *transport, *addr, *mux, *conns, *templates, svcpool.Config{
		MaxConns:    *conns,
		MaxInflight: *inflight,
		CallTimeout: *timeout,
	}, o)
	if err != nil {
		log.Fatalf("soapclient: %v", err)
	}
	defer pool.Close()

	m := dataset.Generate(*n)
	req := core.NewEnvelope(m.Element())

	// Warm-up call: connection establishment off the clock, and a first
	// response to show.
	resp, err := pool.Call(context.Background(), req)
	if err != nil {
		log.Fatalf("soapclient: %v", err)
	}
	fmt.Printf("response body: %s\n", summarize(resp))

	var (
		wg      sync.WaitGroup
		bestNs  atomic.Int64
		failed  atomic.Int64
		work    = make(chan struct{}, *calls)
		workers = *inflight
	)
	for i := 0; i < *calls; i++ {
		work <- struct{}{}
	}
	close(work)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				t0 := time.Now()
				if _, err := pool.Call(context.Background(), req); err != nil {
					log.Printf("soapclient: call: %v", err)
					failed.Add(1)
					continue
				}
				ns := time.Since(t0).Nanoseconds()
				for {
					best := bestNs.Load()
					if best != 0 && ns >= best {
						break
					}
					if bestNs.CompareAndSwap(best, ns) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	ok := *calls - int(failed.Load())
	best := time.Duration(bestNs.Load())
	st := pool.Stats()
	label := *transport
	if *mux {
		label = "mux"
	}
	fmt.Printf("%s/%s  model size %d  %d/%d calls ok over %d conns / %d inflight\n",
		*encoding, label, *n, ok, *calls, *conns, *inflight)
	fmt.Printf("best latency %v  aggregate %.0f calls/s (%.0f pairs/s)\n",
		best, float64(ok)/elapsed.Seconds(), float64(ok)*float64(*n)/elapsed.Seconds())
	fmt.Printf("pool: dials=%d reuses=%d retires=%d retries=%d failures=%d\n",
		st.Dials, st.Reuses, st.Retires, st.Retries, st.Failures)

	if *trace {
		// The client's own view of the last call; a server/proxy running
		// their own recorders expose their hops of the same trace ID at
		// /trace/recent on their admin endpoints.
		trees := o.Recorder().Recent(1)
		if len(trees) == 0 {
			fmt.Println("trace: none recorded")
			return
		}
		obs.FprintTrace(os.Stdout, trees[0])
	}
}

// pooledCaller is the composition-erased view of svcpool.Pool the main
// loop needs.
type pooledCaller interface {
	Call(context.Context, *core.Envelope) (*core.Envelope, error)
	Stats() svcpool.Stats
	Close() error
}

// buildPool composes the pooled engine for an encoding/transport pair —
// each case monomorphizes its own Pool[E, B], same as the engines. A nil
// observer leaves the whole observability path dormant (the nil-sink
// contract); a non-nil one threads through pool, engine, and binding.
//
// In mux mode the pool's "connections" are logical bindings — cheap stream
// slots, so the pool is sized to the in-flight budget — while the real
// sockets are capped at `conns` shared sessions inside the transport.
func buildPool(encoding, transport, addr string, mux bool, conns, templates int, cfg svcpool.Config, o *obs.Observer) (pooledCaller, error) {
	if mux && transport != "tcp" {
		return nil, fmt.Errorf("-mux is a framed TCP protocol; -transport %s is not supported", transport)
	}
	engOpts := []core.EngineOption{core.WithObserver(o)}
	if templates > 0 {
		engOpts = append(engOpts, core.WithTemplates(templates))
	}
	switch {
	case mux && encoding == "bxsa":
		tr := muxbind.NewTransport(muxbind.NetDialer, addr, muxbind.WithMaxSessions(conns), muxbind.WithObserver(o))
		cfg.MaxConns = cfg.MaxInflight
		return svcpool.New(func(context.Context) (*core.Engine[core.BXSAEncoding, *muxbind.Binding], error) {
			return core.NewEngine(core.BXSAEncoding{}, tr.NewBinding(), engOpts...), nil
		}, cfg, svcpool.WithObserver(o)), nil
	case mux && encoding == "xml":
		tr := muxbind.NewTransport(muxbind.NetDialer, addr, muxbind.WithMaxSessions(conns), muxbind.WithObserver(o))
		cfg.MaxConns = cfg.MaxInflight
		return svcpool.New(func(context.Context) (*core.Engine[core.XMLEncoding, *muxbind.Binding], error) {
			return core.NewEngine(core.XMLEncoding{}, tr.NewBinding(), engOpts...), nil
		}, cfg, svcpool.WithObserver(o)), nil
	case encoding == "bxsa" && transport == "tcp":
		return svcpool.New(func(context.Context) (*core.Engine[core.BXSAEncoding, *tcpbind.Binding], error) {
			return core.NewEngine(core.BXSAEncoding{}, tcpbind.New(tcpbind.NetDialer, addr, tcpbind.WithObserver(o)), engOpts...), nil
		}, cfg, svcpool.WithObserver(o)), nil
	case encoding == "xml" && transport == "tcp":
		return svcpool.New(func(context.Context) (*core.Engine[core.XMLEncoding, *tcpbind.Binding], error) {
			return core.NewEngine(core.XMLEncoding{}, tcpbind.New(tcpbind.NetDialer, addr, tcpbind.WithObserver(o)), engOpts...), nil
		}, cfg, svcpool.WithObserver(o)), nil
	case encoding == "bxsa" && transport == "http":
		return svcpool.New(func(context.Context) (*core.Engine[core.BXSAEncoding, *httpbind.Binding], error) {
			return core.NewEngine(core.BXSAEncoding{}, httpbind.New(nil, "http://"+addr+"/soap", httpbind.WithObserver(o)), engOpts...), nil
		}, cfg, svcpool.WithObserver(o)), nil
	case encoding == "xml" && transport == "http":
		return svcpool.New(func(context.Context) (*core.Engine[core.XMLEncoding, *httpbind.Binding], error) {
			return core.NewEngine(core.XMLEncoding{}, httpbind.New(nil, "http://"+addr+"/soap", httpbind.WithObserver(o)), engOpts...), nil
		}, cfg, svcpool.WithObserver(o)), nil
	default:
		return nil, fmt.Errorf("unknown combination %s/%s", encoding, transport)
	}
}

func summarize(resp *core.Envelope) string {
	body := resp.Body()
	if body == nil {
		return "(empty)"
	}
	return fmt.Sprintf("%v", body.ElemName())
}
