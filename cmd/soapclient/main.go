// Command soapclient invokes the verification service started by
// cmd/soapserver and reports the result and response time. Calls ride the
// svcpool client runtime: -conns bounds the persistent connections,
// -inflight the concurrent calls (backpressure applies beyond it).
//
//	soapclient -encoding bxsa -transport tcp -addr 127.0.0.1:8701 -n 1000 -calls 10
//	soapclient -conns 8 -inflight 16 -calls 200        # concurrent throughput
//	soapclient -mux -conns 4 -inflight 256 -calls 2000 # multiplexed: 256 streams on 4 sockets
//	soapclient -stream -n 2000000 -calls 1             # chunked envelope pipeline
//
// With -mux the calls ride the stream-multiplexed framed transport
// (internal/muxbind, server started with `soapserver -mux`): -conns caps the
// shared connections while -inflight concurrent calls interleave as streams
// on them, so inflight can far exceed conns.
//
// With -stream each call flows as bounded chunks (window set by
// -chunk-bytes) instead of buffering whole messages, so memory stays flat
// however large the model is; a buffered server still interoperates.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"bxsoap/cmd/internal/cliconf"
	"bxsoap/internal/core"
	"bxsoap/internal/dataset"
	"bxsoap/internal/httpbind"
	"bxsoap/internal/muxbind"
	"bxsoap/internal/obs"
	"bxsoap/internal/svcpool"
	"bxsoap/internal/tcpbind"
)

func main() {
	c := new(cliconf.Common)
	cliconf.RegisterEndpoint(flag.CommandLine, c)
	cliconf.RegisterEngine(flag.CommandLine, c)
	cliconf.RegisterPool(flag.CommandLine, c)
	cliconf.RegisterTrace(flag.CommandLine, c)
	cliconf.RegisterObs(flag.CommandLine, c)
	addr := flag.String("addr", "127.0.0.1:8701", "server address")
	n := flag.Int("n", 1000, "model size (number of (double,int) pairs)")
	calls := flag.Int("calls", 5, "number of invocations to time")
	timeout := flag.Duration("timeout", 30*time.Second, "per-call deadline")
	flag.Parse()
	if err := c.Validate(); err != nil {
		log.Fatalf("soapclient: %v", err)
	}

	// With -trace or any -slo the pool runs under an observer carrying a
	// flight recorder: every call starts a client hop, stamps the trace
	// header onto the wire (so the server and any intermediary join the
	// same trace), and lands in the recorder; declared SLOs add
	// per-operation series and burn-rate alerting on the client's view of
	// latency. Without either flag the observer is nil and the whole
	// observability path is dormant.
	var o *obs.Observer
	if c.Trace || len(c.SLOs) > 0 {
		o = c.NewObserver("soapclient")
	}
	pool, err := buildPool(c, *addr, svcpool.Config{
		MaxConns:    c.Conns,
		MaxInflight: c.Inflight,
		CallTimeout: *timeout,
	}, o)
	if err != nil {
		log.Fatalf("soapclient: %v", err)
	}
	defer pool.Close()

	m := dataset.Generate(*n)
	req := core.NewEnvelope(m.Element())

	// Warm-up call: connection establishment off the clock, and a first
	// response to show.
	resp, err := pool.Call(context.Background(), req)
	if err != nil {
		log.Fatalf("soapclient: %v", err)
	}
	fmt.Printf("response body: %s\n", summarize(resp))

	var (
		wg      sync.WaitGroup
		bestNs  atomic.Int64
		failed  atomic.Int64
		work    = make(chan struct{}, *calls)
		workers = c.Inflight
	)
	for i := 0; i < *calls; i++ {
		work <- struct{}{}
	}
	close(work)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				t0 := time.Now()
				if _, err := pool.Call(context.Background(), req); err != nil {
					log.Printf("soapclient: call: %v", err)
					failed.Add(1)
					continue
				}
				ns := time.Since(t0).Nanoseconds()
				for {
					best := bestNs.Load()
					if best != 0 && ns >= best {
						break
					}
					if bestNs.CompareAndSwap(best, ns) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	ok := *calls - int(failed.Load())
	best := time.Duration(bestNs.Load())
	st := pool.Stats()
	fmt.Printf("%s/%s  model size %d  %d/%d calls ok over %d conns / %d inflight\n",
		c.Encoding, c.Label(), *n, ok, *calls, c.Conns, c.Inflight)
	fmt.Printf("best latency %v  aggregate %.0f calls/s (%.0f pairs/s)\n",
		best, float64(ok)/elapsed.Seconds(), float64(ok)*float64(*n)/elapsed.Seconds())
	fmt.Printf("pool: dials=%d reuses=%d retires=%d retries=%d failures=%d\n",
		st.Dials, st.Reuses, st.Retires, st.Retries, st.Failures)

	if c.Trace {
		// The client's own view of the last call; a server/proxy running
		// their own recorders expose their hops of the same trace ID at
		// /trace/recent on their admin endpoints.
		trees := o.Recorder().Recent(1)
		if len(trees) == 0 {
			fmt.Println("trace: none recorded")
			return
		}
		obs.FprintTrace(os.Stdout, trees[0])
	}
}

// pooledCaller is the composition-erased view of svcpool.Pool the main
// loop needs.
type pooledCaller interface {
	Call(context.Context, *core.Envelope) (*core.Envelope, error)
	Stats() svcpool.Stats
	Close() error
}

// buildPool composes the pooled engine for an encoding/transport pair —
// each case monomorphizes its own Pool[E, B], same as the engines. A nil
// observer leaves the whole observability path dormant (the nil-sink
// contract); a non-nil one threads through pool, engine, and binding.
//
// In mux mode the pool's "connections" are logical bindings — cheap stream
// slots, so the pool is sized to the in-flight budget — while the real
// sockets are capped at `conns` shared sessions inside the transport.
func buildPool(c *cliconf.Common, addr string, cfg svcpool.Config, o *obs.Observer) (pooledCaller, error) {
	engOpts := c.EngineOptions(o)
	switch {
	case c.Mux && c.Encoding == "bxsa":
		tr := muxbind.NewTransport(muxbind.NetDialer, addr, muxbind.WithMaxSessions(c.Conns), muxbind.WithObserver(o))
		cfg.MaxConns = cfg.MaxInflight
		return svcpool.New(func(context.Context) (*core.Engine[core.BXSAEncoding, *muxbind.Binding], error) {
			return core.NewEngine(core.BXSAEncoding{}, tr.NewBinding(), engOpts...), nil
		}, cfg, svcpool.WithObserver(o)), nil
	case c.Mux && c.Encoding == "xml":
		tr := muxbind.NewTransport(muxbind.NetDialer, addr, muxbind.WithMaxSessions(c.Conns), muxbind.WithObserver(o))
		cfg.MaxConns = cfg.MaxInflight
		return svcpool.New(func(context.Context) (*core.Engine[core.XMLEncoding, *muxbind.Binding], error) {
			return core.NewEngine(core.XMLEncoding{}, tr.NewBinding(), engOpts...), nil
		}, cfg, svcpool.WithObserver(o)), nil
	case c.Encoding == "bxsa" && c.Transport == "tcp":
		return svcpool.New(func(context.Context) (*core.Engine[core.BXSAEncoding, *tcpbind.Binding], error) {
			return core.NewEngine(core.BXSAEncoding{}, tcpbind.New(tcpbind.NetDialer, addr, tcpbind.WithObserver(o)), engOpts...), nil
		}, cfg, svcpool.WithObserver(o)), nil
	case c.Encoding == "xml" && c.Transport == "tcp":
		return svcpool.New(func(context.Context) (*core.Engine[core.XMLEncoding, *tcpbind.Binding], error) {
			return core.NewEngine(core.XMLEncoding{}, tcpbind.New(tcpbind.NetDialer, addr, tcpbind.WithObserver(o)), engOpts...), nil
		}, cfg, svcpool.WithObserver(o)), nil
	case c.Encoding == "bxsa" && c.Transport == "http":
		return svcpool.New(func(context.Context) (*core.Engine[core.BXSAEncoding, *httpbind.Binding], error) {
			return core.NewEngine(core.BXSAEncoding{}, httpbind.New(nil, "http://"+addr+"/soap", httpbind.WithObserver(o)), engOpts...), nil
		}, cfg, svcpool.WithObserver(o)), nil
	case c.Encoding == "xml" && c.Transport == "http":
		return svcpool.New(func(context.Context) (*core.Engine[core.XMLEncoding, *httpbind.Binding], error) {
			return core.NewEngine(core.XMLEncoding{}, httpbind.New(nil, "http://"+addr+"/soap", httpbind.WithObserver(o)), engOpts...), nil
		}, cfg, svcpool.WithObserver(o)), nil
	default:
		return nil, fmt.Errorf("unknown combination %s/%s", c.Encoding, c.Transport)
	}
}

func summarize(resp *core.Envelope) string {
	body := resp.Body()
	if body == nil {
		return "(empty)"
	}
	return fmt.Sprintf("%v", body.ElemName())
}
