// Command soapserver runs the paper's §6 verification web service on any
// (encoding, transport) policy combination of the generic engine:
//
//	soapserver -encoding bxsa -transport tcp  -addr 127.0.0.1:8701
//	soapserver -encoding xml  -transport http -addr 127.0.0.1:8702
//	soapserver -mux -addr 127.0.0.1:8703      # stream-multiplexed framed transport
//
// With -mux the server speaks the stream-multiplexed frame protocol
// (internal/muxbind): many concurrent calls interleave on each accepted
// connection, scheduled onto a bounded worker pool with credit-based flow
// control and overload shedding. A matching client is `soapclient -mux`.
//
// The service receives the LEAD-like data model inside the SOAP request,
// verifies every value, and answers with the verification result — the
// unified scheme's server half. A matching client is cmd/soapclient.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/core"
	"bxsoap/internal/dataset"
	"bxsoap/internal/httpbind"
	"bxsoap/internal/muxbind"
	"bxsoap/internal/obs"
	"bxsoap/internal/tcpbind"
)

func main() {
	encoding := flag.String("encoding", "bxsa", "message encoding: bxsa or xml")
	transport := flag.String("transport", "tcp", "transport binding: tcp or http")
	addr := flag.String("addr", "127.0.0.1:8701", "listen address")
	adminAddr := flag.String("admin", "", "serve /metrics, /trace/recent, /trace/slow, /events and /debug/pprof on this address")
	mux := flag.Bool("mux", false, "speak the stream-multiplexed framed transport (implies -transport tcp)")
	muxWorkers := flag.Int("mux-workers", 0, "mux dispatch pool size (default: 4x GOMAXPROCS)")
	muxQueue := flag.Int("mux-queue", 0, "mux dispatch queue depth; admissions beyond it are shed (default: 8x workers)")
	muxCredit := flag.Int("mux-credit", 0, "per-connection concurrent stream window (default: 128)")
	templates := flag.Int("templates", 0, "schema-compiled template cache capacity, 0 disables (repeated shapes encode/decode by skeleton splice)")
	flag.Parse()

	handler := func(_ context.Context, req *core.Envelope) (*core.Envelope, error) {
		body := req.Body()
		if body == nil {
			return nil, &core.Fault{Code: core.FaultClient, String: "empty body"}
		}
		m, err := dataset.FromElement(body)
		if err != nil {
			return nil, &core.Fault{Code: core.FaultClient, String: err.Error()}
		}
		res := bxdm.NewElement(bxdm.PName(dataset.Namespace, "lead", "result"))
		res.DeclareNamespace("lead", dataset.Namespace)
		res.Append(
			bxdm.NewLeaf(bxdm.Name(dataset.Namespace, "verified"), int32(m.Verify())),
			bxdm.NewLeaf(bxdm.Name(dataset.Namespace, "total"), int32(m.Size())),
		)
		return core.NewEnvelope(res), nil
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("soapserver: %v", err)
	}

	// One process-wide observer: server dispatch, the transport binding, and
	// the payload pool all report into it; -admin exposes the rollup. The
	// always-on flight recorder keeps the most recent / slowest request
	// traces (joined by the wire-propagated trace ID) and the event journal
	// bounded in memory, served at /trace/recent, /trace/slow, /events.
	o := obs.New(
		obs.WithNode("soapserver"),
		obs.WithRecorder(obs.NewRecorder(obs.RecorderConfig{})),
	)
	core.SetPayloadObserver(o)
	errLog := log.New(os.Stderr, "soapserver: ", log.LstdFlags)
	srvOpts := []core.ServerOption{core.WithObserver(o), core.WithErrorLog(errLog)}
	if *templates > 0 {
		srvOpts = append(srvOpts, core.WithTemplates(*templates))
	}

	var srv interface {
		Serve() error
		Close() error
	}
	switch {
	case *mux && *transport != "tcp":
		log.Fatalf("soapserver: -mux is a framed TCP protocol; -transport %s is not supported", *transport)
	case *mux && *encoding == "bxsa":
		srv = muxServer(muxbind.NewServer(core.BXSAEncoding{}, handler, muxbind.Config{
			Workers: *muxWorkers, Queue: *muxQueue, StreamCredit: *muxCredit, ErrorLog: errLog,
		}, srvOpts...), l)
	case *mux && *encoding == "xml":
		srv = muxServer(muxbind.NewServer(core.XMLEncoding{}, handler, muxbind.Config{
			Workers: *muxWorkers, Queue: *muxQueue, StreamCredit: *muxCredit, ErrorLog: errLog,
		}, srvOpts...), l)
	case *encoding == "bxsa" && *transport == "tcp":
		srv = core.NewServer(core.BXSAEncoding{}, tcpbind.NewListener(l, tcpbind.WithObserver(o)), handler, srvOpts...)
	case *encoding == "xml" && *transport == "tcp":
		srv = core.NewServer(core.XMLEncoding{}, tcpbind.NewListener(l, tcpbind.WithObserver(o)), handler, srvOpts...)
	case *encoding == "bxsa" && *transport == "http":
		srv = core.NewServer(core.BXSAEncoding{}, httpbind.NewListener(l, httpbind.WithObserver(o)), handler, srvOpts...)
	case *encoding == "xml" && *transport == "http":
		srv = core.NewServer(core.XMLEncoding{}, httpbind.NewListener(l, httpbind.WithObserver(o)), handler, srvOpts...)
	default:
		log.Fatalf("soapserver: unknown combination %s/%s", *encoding, *transport)
	}

	if *adminAddr != "" {
		al, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			log.Fatalf("soapserver: admin: %v", err)
		}
		go func() {
			if err := http.Serve(al, obs.AdminMux(o, nil)); err != nil {
				errLog.Printf("admin endpoint: %v", err)
			}
		}()
		fmt.Printf("soapserver: admin endpoint (metrics, traces, events, pprof) on http://%s\n", al.Addr())
	}

	label := *transport
	if *mux {
		label = "mux"
	}
	fmt.Printf("soapserver: %s over %s listening on %s\n", *encoding, label, l.Addr())
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	go func() {
		<-stop
		srv.Close()
	}()
	if err := srv.Serve(); err != nil {
		log.Fatalf("soapserver: %v", err)
	}
}

// muxServer adapts muxbind's listener-taking Serve to the listener-free
// Serve/Close pair the shutdown path drives.
func muxServer[E core.Encoding](s *muxbind.Server[E], l net.Listener) serveCloser {
	return serveCloser{serve: func() error { return s.Serve(l) }, close: s.Close}
}

type serveCloser struct {
	serve, close func() error
}

func (s serveCloser) Serve() error { return s.serve() }
func (s serveCloser) Close() error { return s.close() }
