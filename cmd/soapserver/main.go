// Command soapserver runs the paper's §6 verification web service on any
// (encoding, transport) policy combination of the generic engine:
//
//	soapserver -encoding bxsa -transport tcp  -addr 127.0.0.1:8701
//	soapserver -encoding xml  -transport http -addr 127.0.0.1:8702
//
// The service receives the LEAD-like data model inside the SOAP request,
// verifies every value, and answers with the verification result — the
// unified scheme's server half. A matching client is cmd/soapclient.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/core"
	"bxsoap/internal/dataset"
	"bxsoap/internal/httpbind"
	"bxsoap/internal/tcpbind"
)

func main() {
	encoding := flag.String("encoding", "bxsa", "message encoding: bxsa or xml")
	transport := flag.String("transport", "tcp", "transport binding: tcp or http")
	addr := flag.String("addr", "127.0.0.1:8701", "listen address")
	flag.Parse()

	handler := func(_ context.Context, req *core.Envelope) (*core.Envelope, error) {
		body := req.Body()
		if body == nil {
			return nil, &core.Fault{Code: core.FaultClient, String: "empty body"}
		}
		m, err := dataset.FromElement(body)
		if err != nil {
			return nil, &core.Fault{Code: core.FaultClient, String: err.Error()}
		}
		res := bxdm.NewElement(bxdm.PName(dataset.Namespace, "lead", "result"))
		res.DeclareNamespace("lead", dataset.Namespace)
		res.Append(
			bxdm.NewLeaf(bxdm.Name(dataset.Namespace, "verified"), int32(m.Verify())),
			bxdm.NewLeaf(bxdm.Name(dataset.Namespace, "total"), int32(m.Size())),
		)
		return core.NewEnvelope(res), nil
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("soapserver: %v", err)
	}

	var srv interface {
		Serve() error
		Close() error
	}
	switch {
	case *encoding == "bxsa" && *transport == "tcp":
		srv = core.NewServer(core.BXSAEncoding{}, tcpbind.NewListener(l), handler)
	case *encoding == "xml" && *transport == "tcp":
		srv = core.NewServer(core.XMLEncoding{}, tcpbind.NewListener(l), handler)
	case *encoding == "bxsa" && *transport == "http":
		srv = core.NewServer(core.BXSAEncoding{}, httpbind.NewListener(l), handler)
	case *encoding == "xml" && *transport == "http":
		srv = core.NewServer(core.XMLEncoding{}, httpbind.NewListener(l), handler)
	default:
		log.Fatalf("soapserver: unknown combination %s/%s", *encoding, *transport)
	}

	fmt.Printf("soapserver: %s over %s listening on %s\n", *encoding, *transport, l.Addr())
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	go func() {
		<-stop
		srv.Close()
	}()
	if err := srv.Serve(); err != nil {
		log.Fatalf("soapserver: %v", err)
	}
}
