// Command soapserver runs the paper's §6 verification web service on any
// (encoding, transport) policy combination of the generic engine:
//
//	soapserver -encoding bxsa -transport tcp  -addr 127.0.0.1:8701
//	soapserver -encoding xml  -transport http -addr 127.0.0.1:8702
//	soapserver -mux -addr 127.0.0.1:8703      # stream-multiplexed framed transport
//	soapserver -stream -addr 127.0.0.1:8704   # chunked envelope pipeline
//
// With -mux the server speaks the stream-multiplexed frame protocol
// (internal/muxbind): many concurrent calls interleave on each accepted
// connection, scheduled onto a bounded worker pool with credit-based flow
// control and overload shedding. A matching client is `soapclient -mux`.
//
// With -stream requests and responses flow as bounded chunks instead of
// buffered messages; buffered clients still interoperate.
//
// The service receives the LEAD-like data model inside the SOAP request,
// verifies every value, and answers with the verification result — the
// unified scheme's server half. A matching client is cmd/soapclient.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"

	"bxsoap/cmd/internal/cliconf"
	"bxsoap/internal/bxdm"
	"bxsoap/internal/core"
	"bxsoap/internal/dataset"
	"bxsoap/internal/httpbind"
	"bxsoap/internal/muxbind"
	"bxsoap/internal/tcpbind"
)

func main() {
	c := new(cliconf.Common)
	cliconf.RegisterEndpoint(flag.CommandLine, c)
	cliconf.RegisterEngine(flag.CommandLine, c)
	cliconf.RegisterAdmin(flag.CommandLine, c)
	cliconf.RegisterObs(flag.CommandLine, c)
	addr := flag.String("addr", "127.0.0.1:8701", "listen address")
	muxWorkers := flag.Int("mux-workers", 0, "mux dispatch pool size (default: 4x GOMAXPROCS)")
	muxQueue := flag.Int("mux-queue", 0, "mux dispatch queue depth; admissions beyond it are shed (default: 8x workers)")
	muxCredit := flag.Int("mux-credit", 0, "per-connection concurrent stream window (default: 128)")
	flag.Parse()
	if err := c.Validate(); err != nil {
		log.Fatalf("soapserver: %v", err)
	}

	handler := func(_ context.Context, req *core.Envelope) (*core.Envelope, error) {
		body := req.Body()
		if body == nil {
			return nil, &core.Fault{Code: core.FaultClient, String: "empty body"}
		}
		m, err := dataset.FromElement(body)
		if err != nil {
			return nil, &core.Fault{Code: core.FaultClient, String: err.Error()}
		}
		res := bxdm.NewElement(bxdm.PName(dataset.Namespace, "lead", "result"))
		res.DeclareNamespace("lead", dataset.Namespace)
		res.Append(
			bxdm.NewLeaf(bxdm.Name(dataset.Namespace, "verified"), int32(m.Verify())),
			bxdm.NewLeaf(bxdm.Name(dataset.Namespace, "total"), int32(m.Size())),
		)
		return core.NewEnvelope(res), nil
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("soapserver: %v", err)
	}

	// One process-wide observer: server dispatch, the transport binding, and
	// the payload pool all report into it; -admin exposes the rollup. The
	// always-on flight recorder keeps the most recent / slowest request
	// traces (joined by the wire-propagated trace ID) and the event journal
	// bounded in memory, served at /trace/recent, /trace/slow, /events.
	// -slo declarations additionally install per-operation dimensional
	// series and burn-rate alerting, served at /slo.
	o := c.NewObserver("soapserver")
	errLog := log.New(os.Stderr, "soapserver: ", log.LstdFlags)
	srvOpts := c.ServerOptions(o, errLog)

	var srv interface {
		Serve() error
		Close() error
	}
	switch {
	case c.Mux && c.Encoding == "bxsa":
		srv = muxServer(muxbind.NewServer(core.BXSAEncoding{}, handler, muxbind.Config{
			Workers: *muxWorkers, Queue: *muxQueue, StreamCredit: *muxCredit,
			ChunkBytes: c.StreamChunk(), ErrorLog: errLog,
		}, srvOpts...), l)
	case c.Mux && c.Encoding == "xml":
		srv = muxServer(muxbind.NewServer(core.XMLEncoding{}, handler, muxbind.Config{
			Workers: *muxWorkers, Queue: *muxQueue, StreamCredit: *muxCredit,
			ChunkBytes: c.StreamChunk(), ErrorLog: errLog,
		}, srvOpts...), l)
	case c.Encoding == "bxsa" && c.Transport == "tcp":
		srv = core.NewServer(core.BXSAEncoding{}, tcpbind.NewListener(l, tcpbind.WithObserver(o)), handler, srvOpts...)
	case c.Encoding == "xml" && c.Transport == "tcp":
		srv = core.NewServer(core.XMLEncoding{}, tcpbind.NewListener(l, tcpbind.WithObserver(o)), handler, srvOpts...)
	case c.Encoding == "bxsa" && c.Transport == "http":
		srv = core.NewServer(core.BXSAEncoding{}, httpbind.NewListener(l, httpbind.WithObserver(o)), handler, srvOpts...)
	case c.Encoding == "xml" && c.Transport == "http":
		srv = core.NewServer(core.XMLEncoding{}, httpbind.NewListener(l, httpbind.WithObserver(o)), handler, srvOpts...)
	default:
		log.Fatalf("soapserver: unknown combination %s/%s", c.Encoding, c.Transport)
	}

	if err := cliconf.ServeAdmin(c.Admin, "soapserver", o, nil, errLog); err != nil {
		log.Fatalf("soapserver: %v", err)
	}

	fmt.Printf("soapserver: %s over %s listening on %s\n", c.Encoding, c.Label(), l.Addr())
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	go func() {
		<-stop
		srv.Close()
	}()
	if err := srv.Serve(); err != nil {
		log.Fatalf("soapserver: %v", err)
	}
}

// muxServer adapts muxbind's listener-taking Serve to the listener-free
// Serve/Close pair the shutdown path drives.
func muxServer[E core.Encoding](s *muxbind.Server[E], l net.Listener) serveCloser {
	return serveCloser{serve: func() error { return s.Serve(l) }, close: s.Close}
}

type serveCloser struct {
	serve, close func() error
}

func (s serveCloser) Serve() error { return s.serve() }
func (s serveCloser) Close() error { return s.close() }
