// Command benchharness regenerates the paper's evaluation tables and
// figures (§6) over the simulated LAN/WAN testbeds:
//
//	benchharness -exp table1          # Table 1: serialization sizes
//	benchharness -exp fig4            # Figure 4: small-message response time, LAN
//	benchharness -exp fig5            # Figure 5: large-message bandwidth, LAN
//	benchharness -exp fig6            # Figure 6: large-message bandwidth, WAN
//	benchharness -exp pool            # pooled concurrent throughput, LAN+WAN
//	benchharness -exp stages          # per-stage latency breakdown (obs layer), LAN
//	benchharness -exp mux             # stream-multiplexed vs pooled throughput at a fixed socket budget
//	benchharness -exp templates       # schema-compiled plans: generic vs templated per-call cost
//	benchharness -exp stream          # chunked pipeline: first-byte latency + throughput vs buffered
//	benchharness -exp slo             # SLO burn-rate lifecycle: deterministic overload ramp, exits non-zero on breach
//	benchharness -exp stages,mux      # comma-separated lists run several experiments
//	benchharness -exp all -full       # everything, at the paper's full sizes
//
// -window N selects how many observation windows the stage/template tables
// merge for their latency columns (default 1: the steady-state window the
// harness rotates into after warm-up; 0 restores lifetime aggregates).
//
// -obs-json FILE additionally dumps the stage experiment's raw observability
// snapshots (per-combo client+server counters, gauges, stage histograms) as a
// JSON artifact; CI archives it next to the benchmem output. -bench-json FILE
// writes the slim machine-readable records (ns/op, B/op, allocs/op, stage
// means, wait p95) that cmd/benchdiff compares across PR artifacts.
//
// Output is one table per experiment with the same rows/series the paper
// plots. Absolute numbers differ from the 2006 testbed; EXPERIMENTS.md
// records the shape comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"bxsoap/internal/harness"
	"bxsoap/internal/netsim"
)

func main() {
	exp := flag.String("exp", "all", "experiment (comma-separated): table1, fig4, fig5, fig6, pool, stages, mux, templates, stream, slo, or all")
	full := flag.Bool("full", false, "run the complete model-size sweep (up to 5.59M pairs / 64MB; slow)")
	iters := flag.Int("iters", 2, "measured iterations per point (minimum reported)")
	sizesFlag := flag.String("sizes", "", "comma-separated model sizes overriding the experiment's default sweep")
	obsJSON := flag.String("obs-json", "", "write the stage experiment's raw observability snapshots to FILE")
	benchJSON := flag.String("bench-json", "", "write the stage experiment's machine-readable bench records (ns/op, B/op, allocs/op, stage means) to FILE")
	window := flag.Int("window", 1, "observation windows merged into the stage/template latency columns (0 = lifetime)")
	verbose := flag.Bool("v", false, "print per-point progress")
	flag.Parse()

	customSizes, err := parseSizes(*sizesFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchharness: -sizes: %v\n", err)
		os.Exit(2)
	}

	wanted := map[string]bool{}
	for _, name := range strings.Split(*exp, ",") {
		wanted[strings.TrimSpace(name)] = true
	}
	want := func(name string) bool { return wanted[name] || wanted["all"] }

	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}

	// benchRecords accumulates the machine-readable records every selected
	// experiment contributes; -bench-json writes them once at the end so one
	// artifact carries the stage combos and the throughput trajectories.
	var benchRecords []harness.BenchRecord

	run := func(name string, f func() error) {
		fmt.Printf("\n=== %s ===\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "benchharness: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	if want("table1") {
		run("Table 1: serialization size of the binary data set (model size = 1000)", func() error {
			rows, err := harness.Table1(1000)
			if err != nil {
				return err
			}
			harness.PrintTable1(os.Stdout, rows)
			return nil
		})
	}

	if want("fig4") {
		run("Figure 4: message response time, small data sets, LAN (0.2 ms RTT)", func() error {
			series, err := harness.Sweep(harness.Figure4Schemes(), harness.SweepConfig{
				Network:  netsim.New(netsim.LAN),
				Sizes:    sizesOr(customSizes, harness.Figure4Sizes),
				Iters:    *iters,
				Progress: progress,
			})
			if err != nil {
				return err
			}
			harness.PrintResponseSeries(os.Stdout, series)
			return nil
		})
	}

	fig56sizes := harness.Figure5Sizes
	switch {
	case customSizes != nil:
		fig56sizes = customSizes
	case !*full:
		fig56sizes = fig56sizes[:5] // up to 349440 pairs (~4 MB) by default
		if want("fig5") || want("fig6") {
			fmt.Fprintln(os.Stderr, "benchharness: using truncated size sweep; pass -full for the paper's 64 MB points")
		}
	}
	// XML/HTTP is hopeless at large sizes (the paper: "lost the game at the
	// very beginning") — cap it to keep runs bounded.
	caps := map[string]int{"SOAP over XML/HTTP": 87360}

	if want("fig5") {
		run("Figure 5: invocation bandwidth, large data sets, LAN", func() error {
			series, err := harness.Sweep(harness.Figure5Schemes(), harness.SweepConfig{
				Network:    netsim.New(netsim.LAN),
				Sizes:      fig56sizes,
				Iters:      *iters,
				MaxSizeFor: caps,
				Progress:   progress,
			})
			if err != nil {
				return err
			}
			harness.PrintBandwidthSeries(os.Stdout, series)
			return nil
		})
	}

	if want("pool") {
		run("Pooled concurrent throughput: svcpool client runtime, BXSA/TCP, model size 500", func() error {
			const size = 500
			var points []harness.ThroughputPoint
			for _, prof := range []netsim.Profile{netsim.LAN, netsim.WAN} {
				for _, conc := range []int{1, 4, 16} {
					calls := 48 * conc
					pt, err := harness.PooledThroughput(netsim.New(prof), "BXSA", "tcp",
						conc, conc, calls, size)
					if err != nil {
						return err
					}
					if progress != nil {
						fmt.Fprintf(progress, "%-4s c=%-3d %.0f calls/s\n", prof.Name, conc, pt.CallsPerSec)
					}
					points = append(points, pt)
				}
			}
			harness.PrintThroughput(os.Stdout, points)
			return nil
		})
	}

	if want("stages") {
		run("Per-stage latency breakdown: encode/wire/handler/decode, LAN, model size 1000", func() error {
			results, err := harness.StageBreakdown(harness.StageConfig{
				Profile:   netsim.LAN,
				ModelSize: 1000,
				Calls:     max(*iters*10, 20),
				Window:    *window,
				Progress:  progress,
			})
			if err != nil {
				return err
			}
			harness.PrintStageBreakdown(os.Stdout, results)
			if *obsJSON != "" {
				data, err := json.MarshalIndent(results, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*obsJSON, append(data, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "benchharness: wrote observability snapshots to %s\n", *obsJSON)
			}
			benchRecords = append(benchRecords, harness.BenchRecords(results)...)
			return nil
		})
	}

	if want("templates") {
		run("Schema-compiled templates: generic vs templated per-call cost, LAN, model size 1000", func() error {
			results, err := harness.TemplateBreakdown(harness.StageConfig{
				Profile:   netsim.LAN,
				ModelSize: 1000,
				Calls:     max(*iters*10, 20),
				Window:    *window,
				Progress:  progress,
			})
			if err != nil {
				return err
			}
			harness.PrintTemplateComparison(os.Stdout, results)
			benchRecords = append(benchRecords, harness.BenchRecords(results)...)
			return nil
		})
	}

	if want("mux") {
		run("Stream-multiplexed throughput: muxbind vs pooled one-conn-per-call, 8 sockets, LAN, model size 500", func() error {
			const size, conns = 500, 8
			concs := []int{100, 1000}
			var points []harness.ThroughputPoint
			for _, c := range concs {
				calls := 2 * c
				for _, measure := range []func() (harness.ThroughputPoint, error){
					func() (harness.ThroughputPoint, error) {
						return harness.MuxThroughput(netsim.New(netsim.LAN), "BXSA", conns, c, calls, size)
					},
					func() (harness.ThroughputPoint, error) {
						return harness.PooledThroughput(netsim.New(netsim.LAN), "BXSA", "tcp", conns, c, calls, size)
					},
				} {
					pt, err := measure()
					if err != nil {
						return err
					}
					if progress != nil {
						fmt.Fprintf(progress, "%-32s %.0f calls/s\n", pt.Scheme, pt.CallsPerSec)
					}
					points = append(points, pt)
					benchRecords = append(benchRecords, harness.ThroughputRecord(pt))
				}
			}
			harness.PrintThroughput(os.Stdout, points)
			return nil
		})
	}

	if want("stream") {
		run("Streamed envelope pipeline: first-byte latency and throughput vs buffered, BXSA/TCP", func() error {
			sizes := harness.StreamSizes
			switch {
			case customSizes != nil:
				sizes = customSizes
			case !*full:
				sizes = sizes[:1] // ~1 MB by default; -full adds the 64 MB and 512 MB points
				fmt.Fprintln(os.Stderr, "benchharness: using truncated stream sweep; pass -full for the 64/512 MB points")
			}
			const chunk = 256 << 10
			var points []harness.StreamPoint
			for _, prof := range []netsim.Profile{netsim.LAN, netsim.WAN} {
				for _, size := range sizes {
					for _, streamed := range []bool{false, true} {
						pt, err := harness.StreamThroughput(netsim.New(prof), streamed, chunk, size, *iters)
						if err != nil {
							return err
						}
						if progress != nil {
							fmt.Fprintf(progress, "%-28s %-5s first-byte %v total %v\n",
								pt.Scheme, pt.Profile, pt.FirstByte, pt.Total)
						}
						points = append(points, pt)
						benchRecords = append(benchRecords, harness.StreamRecords(pt)...)
					}
				}
			}
			harness.PrintStreamPoints(os.Stdout, points)
			return nil
		})
	}

	if want("slo") {
		run("SLO burn-rate lifecycle: overload ramp on a simulated clock, BXSA/TCP, LAN", func() error {
			report, err := harness.RunSLORamp(harness.SLORampConfig{Progress: progress})
			if err != nil {
				return err
			}
			harness.PrintSLORamp(os.Stdout, report)
			return nil
		})
	}

	if want("fig6") {
		run("Figure 6: invocation bandwidth, large data sets, WAN (5.75 ms RTT)", func() error {
			series, err := harness.Sweep(harness.Figure6Schemes(), harness.SweepConfig{
				Network:    netsim.New(netsim.WAN),
				Sizes:      fig56sizes,
				Iters:      *iters,
				MaxSizeFor: caps,
				Progress:   progress,
			})
			if err != nil {
				return err
			}
			harness.PrintBandwidthSeries(os.Stdout, series)
			return nil
		})
	}

	if *benchJSON != "" {
		data, err := json.MarshalIndent(benchRecords, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchharness: -bench-json: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchharness: -bench-json: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchharness: wrote %d bench records to %s\n", len(benchRecords), *benchJSON)
	}
}

// parseSizes parses "100,2000,50000" into a size list.
func parseSizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func sizesOr(custom, def []int) []int {
	if custom != nil {
		return custom
	}
	return def
}
