// Command soapproxy runs a SOAP intermediary node (paper §5.1): it accepts
// messages on one (encoding, transport) policy pair and relays them to a
// backend over another, transcoding through the bXDM model. "Aided by the
// generic SOAP library, the intermediary node can just simply deploy
// multiple generic SOAP engines with different policy configurations to
// serve the up-link and down-link message flows."
//
//	soapproxy -listen xml/http:127.0.0.1:8800 -backend bxsa/tcp:127.0.0.1:8701
//
// With -hmac-key the backend hop is authenticated (wssec.Secured), so
// legacy plaintext clients can reach a signed-binary service unchanged.
//
// With -stream both hops run the chunked envelope pipeline: the up-link
// serves streamed requests and the relayed backend calls re-stream each
// envelope, so a large message never buffers whole in the proxy.
//
// The down-link rides the svcpool client runtime: -pool-conns persistent
// backend connections are reused across relayed requests (instead of a
// dial per request), with health-aware retirement. Relays are not assumed
// idempotent, so the pool performs no automatic retry.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"time"

	"bxsoap/cmd/internal/cliconf"
	"bxsoap/internal/core"
	"bxsoap/internal/httpbind"
	"bxsoap/internal/obs"
	"bxsoap/internal/svcpool"
	"bxsoap/internal/tcpbind"
	"bxsoap/internal/wssec"
)

// encodingFor returns the (possibly secured) encoding policy as an
// interface; each engine composition below still binds concrete types.
func encodingFor(name string, key []byte) core.Encoding {
	switch {
	case name == "bxsa" && key != nil:
		return wssec.Secure(core.BXSAEncoding{}, key)
	case name == "bxsa":
		return core.BXSAEncoding{}
	case key != nil:
		return wssec.Secure(core.XMLEncoding{}, key)
	default:
		return core.XMLEncoding{}
	}
}

func main() {
	c := new(cliconf.Common)
	cliconf.RegisterEngine(flag.CommandLine, c)
	cliconf.RegisterAdmin(flag.CommandLine, c)
	cliconf.RegisterObs(flag.CommandLine, c)
	listenFlag := flag.String("listen", "xml/http:127.0.0.1:8800", "up-link endpoint as encoding/transport:addr")
	backendFlag := flag.String("backend", "bxsa/tcp:127.0.0.1:8701", "down-link endpoint as encoding/transport:addr")
	hmacKey := flag.String("hmac-key", "", "sign/verify the backend hop with this shared key")
	poolConns := flag.Int("pool-conns", 4, "max pooled connections to the backend")
	poolInflight := flag.Int("pool-inflight", 0, "max concurrent backend calls (default: 2×pool-conns)")
	poolTimeout := flag.Duration("pool-timeout", 30*time.Second, "per-relay backend deadline")
	flag.Parse()
	if err := c.Validate(); err != nil {
		log.Fatalf("soapproxy: %v", err)
	}

	up, err := cliconf.ParseEndpoint(*listenFlag)
	if err != nil {
		log.Fatalf("soapproxy: -listen: %v", err)
	}
	down, err := cliconf.ParseEndpoint(*backendFlag)
	if err != nil {
		log.Fatalf("soapproxy: -backend: %v", err)
	}
	var key []byte
	if *hmacKey != "" {
		key = []byte(*hmacKey)
	}

	// One process-wide observer covers both hops: the up-link server and
	// binding, the down-link pool, its engines and bindings, and the shared
	// payload pool. A single snapshot therefore shows the whole relay path.
	// The always-on flight recorder joins each relayed request's up-link
	// server hop and down-link client hop into one trace entry, correlated
	// over the wire with the client's and backend's hops by the propagated
	// trace ID.
	// The proxy declares no -encoding/-transport of its own; label any
	// dimensional series with the up-link endpoint, the face it shows
	// callers.
	c.Encoding, c.Transport = up.Encoding, up.Transport
	o := c.NewObserver("soapproxy")
	errLog := log.New(os.Stderr, "soapproxy: ", log.LstdFlags)

	downEnc := encodingFor(down.Encoding, key)
	engOpts := c.EngineOptions(o)
	poolCfg := svcpool.Config{
		MaxConns:    *poolConns,
		MaxInflight: *poolInflight,
		CallTimeout: *poolTimeout,
	}
	// The pool is generic over the same policy axes as the engines it
	// manages; the E parameter here is the core.Encoding interface because
	// -hmac-key decides the concrete policy at runtime.
	var backend interface {
		CallOnce(context.Context, *core.Envelope) (*core.Envelope, error)
		Stats() svcpool.Stats
		Close() error
	}
	if down.Transport == "tcp" {
		backend = svcpool.New(func(context.Context) (*core.Engine[core.Encoding, *tcpbind.Binding], error) {
			return core.NewEngine(downEnc,
				tcpbind.New(tcpbind.NetDialer, down.Addr, tcpbind.WithObserver(o)),
				engOpts...), nil
		}, poolCfg, svcpool.WithObserver(o))
	} else {
		backend = svcpool.New(func(context.Context) (*core.Engine[core.Encoding, *httpbind.Binding], error) {
			return core.NewEngine(downEnc,
				httpbind.New(nil, "http://"+down.Addr+"/soap", httpbind.WithObserver(o)),
				engOpts...), nil
		}, poolCfg, svcpool.WithObserver(o))
	}
	defer backend.Close()
	// CallOnce: a relayed request must not be silently replayed — retry
	// policy belongs to the originating client, which knows idempotency.
	relay := func(ctx context.Context, req *core.Envelope) (*core.Envelope, error) {
		return backend.CallOnce(ctx, req)
	}

	l, err := net.Listen("tcp", up.Addr)
	if err != nil {
		log.Fatalf("soapproxy: %v", err)
	}
	upEnc := encodingFor(up.Encoding, nil)
	srvOpts := c.ServerOptions(o, errLog)
	var srv interface {
		Serve() error
		Close() error
	}
	if up.Transport == "tcp" {
		srv = core.NewServer(upEnc, tcpbind.NewListener(l, tcpbind.WithObserver(o)), relay, srvOpts...)
	} else {
		srv = core.NewServer(upEnc, httpbind.NewListener(l, httpbind.WithObserver(o)), relay, srvOpts...)
	}

	// Fold the pool's own bookkeeping (dials, reuses, live/idle conns)
	// into each served snapshot; retries/retirements/breaker transitions
	// already stream through the observer's counters.
	extra := func(s *obs.Snapshot) {
		st := backend.Stats()
		s.Counters["svcpool.dials"] = st.Dials
		s.Counters["svcpool.reuses"] = st.Reuses
		s.Counters["svcpool.failures"] = st.Failures
		s.Counters["svcpool.rejected"] = st.Rejected
		s.Gauges["svcpool.live"] = obs.GaugeSnapshot{Value: int64(st.Live)}
		s.Gauges["svcpool.idle"] = obs.GaugeSnapshot{Value: int64(st.Idle)}
	}
	if err := cliconf.ServeAdmin(c.Admin, "soapproxy", o, extra, errLog); err != nil {
		log.Fatalf("soapproxy: %v", err)
	}

	fmt.Printf("soapproxy: %s/%s on %s → %s/%s at %s (signed=%v)\n",
		up.Encoding, up.Transport, l.Addr(), down.Encoding, down.Transport, down.Addr, key != nil)
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	go func() {
		<-stop
		srv.Close()
	}()
	if err := srv.Serve(); err != nil {
		log.Fatalf("soapproxy: %v", err)
	}
}
