// Command soapproxy runs a SOAP intermediary node (paper §5.1): it accepts
// messages on one (encoding, transport) policy pair and relays them to a
// backend over another, transcoding through the bXDM model. "Aided by the
// generic SOAP library, the intermediary node can just simply deploy
// multiple generic SOAP engines with different policy configurations to
// serve the up-link and down-link message flows."
//
//	soapproxy -listen xml/http:127.0.0.1:8800 -backend bxsa/tcp:127.0.0.1:8701
//
// With -hmac-key the backend hop is authenticated (wssec.Secured), so
// legacy plaintext clients can reach a signed-binary service unchanged.
//
// The down-link rides the svcpool client runtime: -pool-conns persistent
// backend connections are reused across relayed requests (instead of a
// dial per request), with health-aware retirement. Relays are not assumed
// idempotent, so the pool performs no automatic retry.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"bxsoap/internal/core"
	"bxsoap/internal/httpbind"
	"bxsoap/internal/obs"
	"bxsoap/internal/svcpool"
	"bxsoap/internal/tcpbind"
	"bxsoap/internal/wssec"
)

type endpoint struct {
	encoding  string // "xml" or "bxsa"
	transport string // "tcp" or "http"
	addr      string
}

func parseEndpoint(s string) (endpoint, error) {
	// Format: encoding/transport:addr
	slash := strings.IndexByte(s, '/')
	colon := strings.IndexByte(s, ':')
	if slash < 0 || colon < slash {
		return endpoint{}, fmt.Errorf("endpoint %q: want encoding/transport:addr", s)
	}
	ep := endpoint{
		encoding:  strings.ToLower(s[:slash]),
		transport: strings.ToLower(s[slash+1 : colon]),
		addr:      s[colon+1:],
	}
	if ep.encoding != "xml" && ep.encoding != "bxsa" {
		return endpoint{}, fmt.Errorf("endpoint %q: unknown encoding %q", s, ep.encoding)
	}
	if ep.transport != "tcp" && ep.transport != "http" {
		return endpoint{}, fmt.Errorf("endpoint %q: unknown transport %q", s, ep.transport)
	}
	if ep.addr == "" {
		return endpoint{}, fmt.Errorf("endpoint %q: missing address", s)
	}
	return ep, nil
}

// encodingFor returns the (possibly secured) encoding policy as an
// interface; each engine composition below still binds concrete types.
func encodingFor(name string, key []byte) core.Encoding {
	switch {
	case name == "bxsa" && key != nil:
		return wssec.Secure(core.BXSAEncoding{}, key)
	case name == "bxsa":
		return core.BXSAEncoding{}
	case key != nil:
		return wssec.Secure(core.XMLEncoding{}, key)
	default:
		return core.XMLEncoding{}
	}
}

func main() {
	listenFlag := flag.String("listen", "xml/http:127.0.0.1:8800", "up-link endpoint as encoding/transport:addr")
	backendFlag := flag.String("backend", "bxsa/tcp:127.0.0.1:8701", "down-link endpoint as encoding/transport:addr")
	hmacKey := flag.String("hmac-key", "", "sign/verify the backend hop with this shared key")
	poolConns := flag.Int("pool-conns", 4, "max pooled connections to the backend")
	poolInflight := flag.Int("pool-inflight", 0, "max concurrent backend calls (default: 2×pool-conns)")
	poolTimeout := flag.Duration("pool-timeout", 30*time.Second, "per-relay backend deadline")
	adminAddr := flag.String("admin", "", "serve /metrics, /trace/recent, /trace/slow, /events and /debug/pprof on this address")
	flag.Parse()

	up, err := parseEndpoint(*listenFlag)
	if err != nil {
		log.Fatalf("soapproxy: -listen: %v", err)
	}
	down, err := parseEndpoint(*backendFlag)
	if err != nil {
		log.Fatalf("soapproxy: -backend: %v", err)
	}
	var key []byte
	if *hmacKey != "" {
		key = []byte(*hmacKey)
	}

	// One process-wide observer covers both hops: the up-link server and
	// binding, the down-link pool, its engines and bindings, and the shared
	// payload pool. A single snapshot therefore shows the whole relay path.
	// The always-on flight recorder joins each relayed request's up-link
	// server hop and down-link client hop into one trace entry, correlated
	// over the wire with the client's and backend's hops by the propagated
	// trace ID.
	o := obs.New(
		obs.WithNode("soapproxy"),
		obs.WithRecorder(obs.NewRecorder(obs.RecorderConfig{})),
	)
	core.SetPayloadObserver(o)

	downEnc := encodingFor(down.encoding, key)
	poolCfg := svcpool.Config{
		MaxConns:    *poolConns,
		MaxInflight: *poolInflight,
		CallTimeout: *poolTimeout,
	}
	// The pool is generic over the same policy axes as the engines it
	// manages; the E parameter here is the core.Encoding interface because
	// -hmac-key decides the concrete policy at runtime.
	var backend interface {
		CallOnce(context.Context, *core.Envelope) (*core.Envelope, error)
		Stats() svcpool.Stats
		Close() error
	}
	if down.transport == "tcp" {
		backend = svcpool.New(func(context.Context) (*core.Engine[core.Encoding, *tcpbind.Binding], error) {
			return core.NewEngine(downEnc,
				tcpbind.New(tcpbind.NetDialer, down.addr, tcpbind.WithObserver(o)),
				core.WithObserver(o)), nil
		}, poolCfg, svcpool.WithObserver(o))
	} else {
		backend = svcpool.New(func(context.Context) (*core.Engine[core.Encoding, *httpbind.Binding], error) {
			return core.NewEngine(downEnc,
				httpbind.New(nil, "http://"+down.addr+"/soap", httpbind.WithObserver(o)),
				core.WithObserver(o)), nil
		}, poolCfg, svcpool.WithObserver(o))
	}
	defer backend.Close()
	// CallOnce: a relayed request must not be silently replayed — retry
	// policy belongs to the originating client, which knows idempotency.
	relay := func(ctx context.Context, req *core.Envelope) (*core.Envelope, error) {
		return backend.CallOnce(ctx, req)
	}

	l, err := net.Listen("tcp", up.addr)
	if err != nil {
		log.Fatalf("soapproxy: %v", err)
	}
	upEnc := encodingFor(up.encoding, nil)
	var srv interface {
		Serve() error
		Close() error
	}
	if up.transport == "tcp" {
		srv = core.NewServer(upEnc, tcpbind.NewListener(l, tcpbind.WithObserver(o)), relay, core.WithObserver(o))
	} else {
		srv = core.NewServer(upEnc, httpbind.NewListener(l, httpbind.WithObserver(o)), relay, core.WithObserver(o))
	}

	if *adminAddr != "" {
		al, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			log.Fatalf("soapproxy: admin: %v", err)
		}
		// Fold the pool's own bookkeeping (dials, reuses, live/idle conns)
		// into each served snapshot; retries/retirements/breaker transitions
		// already stream through the observer's counters.
		extra := func(s *obs.Snapshot) {
			st := backend.Stats()
			s.Counters["svcpool.dials"] = st.Dials
			s.Counters["svcpool.reuses"] = st.Reuses
			s.Counters["svcpool.failures"] = st.Failures
			s.Counters["svcpool.rejected"] = st.Rejected
			s.Gauges["svcpool.live"] = obs.GaugeSnapshot{Value: int64(st.Live)}
			s.Gauges["svcpool.idle"] = obs.GaugeSnapshot{Value: int64(st.Idle)}
		}
		go func() {
			if err := http.Serve(al, obs.AdminMux(o, extra)); err != nil {
				log.Printf("soapproxy: admin endpoint: %v", err)
			}
		}()
		fmt.Printf("soapproxy: admin endpoint (metrics, traces, events, pprof) on http://%s\n", al.Addr())
	}

	fmt.Printf("soapproxy: %s/%s on %s → %s/%s at %s (signed=%v)\n",
		up.encoding, up.transport, l.Addr(), down.encoding, down.transport, down.addr, key != nil)
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	go func() {
		<-stop
		srv.Close()
	}()
	if err := srv.Serve(); err != nil {
		log.Fatalf("soapproxy: %v", err)
	}
}
