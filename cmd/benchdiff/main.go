// Command benchdiff compares two bench artifacts written by
// `benchharness -exp stages -bench-json FILE` and reports per-combo deltas:
//
//	benchdiff -old BENCH_4.json -new BENCH_5.json [-threshold 20]
//
// A combo whose ns/op or allocs/op regressed by more than -threshold
// percent is flagged with a GitHub Actions `::warning::` annotation line,
// so a CI step diffing the current run against the previous PR's uploaded
// artifact surfaces regressions on the workflow summary without failing
// the build (the simulated-network numbers are noisy by design; a human
// decides).
//
// Exit status is 0 even when regressions are found; pass -fail to exit 1
// instead, for repos that want a hard gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"bxsoap/internal/harness"
)

func main() {
	oldPath := flag.String("old", "", "baseline bench JSON (previous PR's artifact)")
	newPath := flag.String("new", "", "current bench JSON")
	threshold := flag.Float64("threshold", 20, "regression threshold in percent")
	fail := flag.Bool("fail", false, "exit non-zero when a regression crosses the threshold")
	flag.Parse()

	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: both -old and -new are required")
		os.Exit(2)
	}
	oldRecs, err := load(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newRecs, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	base := make(map[string]harness.BenchRecord, len(oldRecs))
	for _, r := range oldRecs {
		base[r.Scheme] = r
	}

	regressed := false
	for _, cur := range newRecs {
		prev, ok := base[cur.Scheme]
		if !ok {
			fmt.Printf("%-28s (new combo, no baseline)\n", cur.Scheme)
			continue
		}
		dNs := pct(prev.NsPerOp, cur.NsPerOp)
		dAllocs := pct(int64(prev.AllocsPerOp), int64(cur.AllocsPerOp))
		dBytes := pct(int64(prev.BytesPerOp), int64(cur.BytesPerOp))
		fmt.Printf("%-28s ns/op %+.1f%%  allocs/op %+.1f%%  B/op %+.1f%%  (%d → %d ns/op)\n",
			cur.Scheme, dNs, dAllocs, dBytes, prev.NsPerOp, cur.NsPerOp)
		if dNs > *threshold {
			regressed = true
			fmt.Printf("::warning title=bench regression::%s ns/op regressed %.1f%% (%d → %d)\n",
				cur.Scheme, dNs, prev.NsPerOp, cur.NsPerOp)
		}
		if dAllocs > *threshold {
			regressed = true
			fmt.Printf("::warning title=bench regression::%s allocs/op regressed %.1f%% (%d → %d)\n",
				cur.Scheme, dAllocs, prev.AllocsPerOp, cur.AllocsPerOp)
		}
	}
	if regressed && *fail {
		os.Exit(1)
	}
}

func load(path string) ([]harness.BenchRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []harness.BenchRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return recs, nil
}

// pct returns the percent change from prev to cur (positive = regression
// for cost metrics). A zero baseline reports 0 — nothing meaningful to
// compare against.
func pct(prev, cur int64) float64 {
	if prev == 0 {
		return 0
	}
	return 100 * float64(cur-prev) / float64(prev)
}
