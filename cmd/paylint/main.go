// Command paylint runs the repository's static protocol checks: payown
// (pooled payloads released exactly once on every path), errclass
// (transport-origin errors classified before they escape a binding),
// nowallclock (no wall-clock time in deterministic-clock packages), nilsink
// (observability sink methods safe on nil receivers), golife (every spawned
// goroutine has a provable termination path), lockorder (no cyclic mutex
// acquisition orders across the repo), and chanhold (no blocking operation
// while a mutex is held). See DESIGN.md "Statically enforced invariants".
//
// Usage:
//
//	go run ./cmd/paylint [flags] [packages]
//
// Patterns are go list patterns resolved in the current directory. The exit
// status is 1 when any diagnostic is reported, 2 on driver errors.
//
// Flags:
//
//	-json            emit diagnostics as a JSON array of
//	                 {file,line,col,analyzer,message} objects
//	-github          emit GitHub Actions ::error/::warning annotations
//	                 (the CI lint step uses this to pin findings to lines)
//	-unused-ignores  also audit //paylint:ignore comments that suppressed
//	                 nothing; stale ignores fail the run like diagnostics
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"bxsoap/internal/analysis/chanhold"
	"bxsoap/internal/analysis/errclass"
	"bxsoap/internal/analysis/framework"
	"bxsoap/internal/analysis/golife"
	"bxsoap/internal/analysis/loader"
	"bxsoap/internal/analysis/lockorder"
	"bxsoap/internal/analysis/nilsink"
	"bxsoap/internal/analysis/nowallclock"
	"bxsoap/internal/analysis/payown"
)

var analyzers = []*framework.Analyzer{
	payown.Analyzer,
	errclass.Analyzer,
	nowallclock.Analyzer,
	nilsink.Analyzer,
	golife.Analyzer,
	lockorder.Analyzer,
	chanhold.Analyzer,
}

// record is one finding in machine-readable form; -json emits an array of
// these. Unused-ignore audit findings use the pseudo-analyzer name
// "unused-ignore" so consumers can filter them from invariant violations.
type record struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array of {file,line,col,analyzer,message} objects")
	github := flag.Bool("github", false, "emit GitHub Actions ::error/::warning annotations instead of plain lines")
	unusedIgnores := flag.Bool("unused-ignores", false, "also report //paylint:ignore comments that suppressed nothing")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: paylint [flags] [packages]\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	res, err := loader.RunAll(prog, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var recs []record
	for _, d := range res.Diagnostics {
		pos := prog.Fset.Position(d.Pos)
		recs = append(recs, record{
			File:     relPath(pos.Filename),
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer.Name,
			Message:  d.Message,
		})
	}
	if *unusedIgnores {
		for _, sup := range res.Unused {
			target := sup.Analyzer
			if target == "" {
				target = "all"
			}
			recs = append(recs, record{
				File:     relPath(sup.File),
				Line:     sup.Line,
				Col:      1,
				Analyzer: "unused-ignore",
				Message:  fmt.Sprintf("//paylint:ignore %s suppresses no diagnostic; delete the stale comment", target),
			})
		}
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if recs == nil {
			recs = []record{}
		}
		if err := enc.Encode(recs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	case *github:
		for _, r := range recs {
			level := "error"
			if r.Analyzer == "unused-ignore" {
				level = "warning"
			}
			fmt.Printf("::%s file=%s,line=%d,col=%d,title=paylint/%s::%s\n",
				level, r.File, r.Line, r.Col, r.Analyzer, r.Message)
		}
	default:
		for _, r := range recs {
			fmt.Printf("%s:%d:%d: %s: %s\n", r.File, r.Line, r.Col, r.Analyzer, r.Message)
		}
	}
	if len(recs) > 0 {
		os.Exit(1)
	}
}

// relPath makes annotation and report paths repo-relative when possible:
// GitHub's file= parameter wants workspace-relative paths, and relative
// paths read better in local output too.
func relPath(file string) string {
	wd, err := os.Getwd()
	if err != nil {
		return file
	}
	rel, err := filepath.Rel(wd, file)
	if err != nil || len(rel) >= 2 && rel[:2] == ".." {
		return file
	}
	return rel
}
