// Command paylint runs the repository's static protocol checks: payown
// (pooled payloads released exactly once on every path), errclass
// (transport-origin errors classified before they escape a binding),
// nowallclock (no wall-clock time in deterministic-clock packages), and
// nilsink (observability sink methods safe on nil receivers). See
// DESIGN.md "Statically enforced invariants".
//
// Usage:
//
//	go run ./cmd/paylint ./...
//
// Patterns are go list patterns resolved in the current directory. The exit
// status is 1 when any diagnostic is reported, 2 on driver errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"bxsoap/internal/analysis/errclass"
	"bxsoap/internal/analysis/framework"
	"bxsoap/internal/analysis/loader"
	"bxsoap/internal/analysis/nilsink"
	"bxsoap/internal/analysis/nowallclock"
	"bxsoap/internal/analysis/payown"
)

var analyzers = []*framework.Analyzer{
	payown.Analyzer,
	errclass.Analyzer,
	nowallclock.Analyzer,
	nilsink.Analyzer,
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: paylint [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := loader.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", prog.Fset.Position(d.Pos), d.Analyzer.Name, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
