// Stream-multiplexing acceptance benchmark: 1000 concurrent in-flight calls
// over a simulated LAN complete on at most 8 multiplexed connections, and
// throughput is no worse than the pooled one-conn-per-call runtime holding
// the same 8-socket budget. One b.N iteration is the full paired experiment,
// so run it with -benchtime 1x (or a small multiple); the per-configuration
// calls/s land in the benchmark output as custom metrics.
package bxsoap

import (
	"testing"
	"time"

	"bxsoap/internal/core"
	"bxsoap/internal/harness"
	"bxsoap/internal/netsim"
)

func BenchmarkMuxThroughput(b *testing.B) {
	const (
		conns       = 8
		concurrency = 1000
		calls       = 2 * concurrency
		size        = 100
	)
	baseline := core.PayloadsInUse()
	var mux, pooled harness.ThroughputPoint
	for i := 0; i < b.N; i++ {
		var err error
		mux, err = harness.MuxThroughput(netsim.New(netsim.LAN), "BXSA", conns, concurrency, calls, size)
		if err != nil {
			b.Fatalf("mux: %v", err)
		}
		pooled, err = harness.PooledThroughput(netsim.New(netsim.LAN), "BXSA", "tcp", conns, concurrency, calls, size)
		if err != nil {
			b.Fatalf("pooled: %v", err)
		}
	}
	b.ReportMetric(mux.CallsPerSec, "mux-calls/s")
	b.ReportMetric(pooled.CallsPerSec, "pooled-calls/s")
	b.ReportMetric(mux.CallsPerSec/pooled.CallsPerSec, "speedup")
	// The acceptance bar: multiplexing must not lose to one-conn-per-call at
	// an equal socket budget. On an RTT-shaped LAN the stream interleaving
	// should win outright, so an inversion here is a real regression, not
	// noise.
	if mux.CallsPerSec < pooled.CallsPerSec {
		b.Errorf("mux throughput %.0f calls/s below pooled %.0f calls/s at equal socket budget (conns=%d, c=%d)",
			mux.CallsPerSec, pooled.CallsPerSec, conns, concurrency)
	}
	deadline := time.Now().Add(2 * time.Second)
	for core.PayloadsInUse() != baseline && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if n := core.PayloadsInUse(); n != baseline {
		b.Errorf("PayloadsInUse = %d after teardown, want %d", n, baseline)
	}
}
