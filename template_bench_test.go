// Schema-compiled template benchmarks: the same engine/server round trip
// as BenchmarkRoundTripAllocs, generic and with the shape-keyed template
// cache enabled on both sides. The templated BXSA/TCP row is the
// tentpole's headline number — a skeleton splice per call instead of a
// tree walk — and EXPERIMENTS.md tracks the before/after allocs table.
package bxsoap

import (
	"context"
	"fmt"
	"testing"

	"bxsoap/internal/core"
	"bxsoap/internal/dataset"
	"bxsoap/internal/httpbind"
	"bxsoap/internal/netsim"
	"bxsoap/internal/tcpbind"
)

// benchTemplatedRoundTrip mirrors benchRoundTrip with core.WithTemplates
// threaded into both sides when capacity > 0.
func benchTemplatedRoundTrip[E core.Encoding](b *testing.B, enc E, transport string, size, capacity int) {
	b.Helper()
	nw := netsim.New(netsim.LAN)
	l, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	var engOpts []core.EngineOption
	var srvOpts []core.ServerOption
	if capacity > 0 {
		engOpts = append(engOpts, core.WithTemplates(capacity))
		srvOpts = append(srvOpts, core.WithTemplates(capacity))
	}
	var call func(*core.Envelope) (*core.Envelope, error)
	var closers []func() error
	switch transport {
	case "tcp":
		srv := core.NewServer(enc, tcpbind.NewListener(l), echoHandler, srvOpts...)
		go srv.Serve()
		eng := core.NewEngine(enc, tcpbind.New(nw.Dial, l.Addr().String()), engOpts...)
		call = func(e *core.Envelope) (*core.Envelope, error) { return eng.Call(context.Background(), e) }
		closers = []func() error{eng.Close, srv.Close}
	case "http":
		hl := httpbind.NewListener(l)
		srv := core.NewServer(enc, hl, echoHandler, srvOpts...)
		go srv.Serve()
		eng := core.NewEngine(enc, httpbind.New(nw.Dial, hl.URL()), engOpts...)
		call = func(e *core.Envelope) (*core.Envelope, error) { return eng.Call(context.Background(), e) }
		closers = []func() error{eng.Close, srv.Close}
	default:
		b.Fatalf("unknown transport %q", transport)
	}
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	env := core.NewEnvelope(dataset.Generate(size).Element())
	// Two warm-ups: the first dials and compiles the request shape on the
	// server plus the response shape on the client, the second settles the
	// caches so the measured loop is pure steady state.
	for w := 0; w < 2; w++ {
		if _, err := call(env); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := call(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTemplatedCalls compares generic and templated round trips for
// every (encoding, transport) composition at model size 500 on the LAN
// profile. Read Templated vs Generic within a combo; the netsim RTT
// dominates ns/op, so allocs/op is the sharper signal.
func BenchmarkTemplatedCalls(b *testing.B) {
	const size = 500
	for _, mode := range []struct {
		name     string
		capacity int
	}{
		{"Templated", 16},
		{"Generic", 0},
	} {
		for _, tr := range []string{"tcp", "http"} {
			b.Run(fmt.Sprintf("%s/BXSA/%s", mode.name, tr), func(b *testing.B) {
				benchTemplatedRoundTrip(b, core.BXSAEncoding{}, tr, size, mode.capacity)
			})
			b.Run(fmt.Sprintf("%s/XML/%s", mode.name, tr), func(b *testing.B) {
				benchTemplatedRoundTrip(b, core.XMLEncoding{}, tr, size, mode.capacity)
			})
		}
	}
}
