// Benchmarks regenerating the paper's evaluation (§6): one benchmark per
// table and figure, plus microbenchmarks for the §6.2 conversion-cost
// observation and ablations for the BXSA design choices called out in
// DESIGN.md. The benches use a reduced size grid so `go test -bench=.`
// finishes in minutes; cmd/benchharness runs the paper's full sweeps.
package bxsoap

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/bxsa"
	"bxsoap/internal/core"
	"bxsoap/internal/dataset"
	"bxsoap/internal/harness"
	"bxsoap/internal/netsim"
	"bxsoap/internal/xmltext"
)

// BenchmarkTable1 reports the serialization sizes of the binary data set at
// model size 1000 (paper Table 1: native 12000 B; BXSA +1.3%; netCDF +2.2%;
// XML 1.0 +99.1%).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table1(1000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				unit := strings.ReplaceAll(r.Format, " ", "-") + "_bytes"
				b.ReportMetric(float64(r.Bytes), unit)
			}
		}
	}
}

// benchScheme runs one harness scheme at one model size for b.N
// invocations, reporting pairs/s.
func benchScheme(b *testing.B, mk func() harness.Scheme, profile netsim.Profile, size int) {
	b.Helper()
	nw := netsim.New(profile)
	s := mk()
	dir, err := os.MkdirTemp("", "bench-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := s.Setup(nw, dir); err != nil {
		b.Fatal(err)
	}
	defer s.Teardown()
	m := dataset.Generate(size)
	if _, err := s.Invoke(m); err != nil { // warm-up
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Invoke(m); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if size > 0 {
		b.ReportMetric(float64(size)/b.Elapsed().Seconds()*float64(b.N), "pairs/s")
	}
}

// BenchmarkFigure4 measures small-message response time on the simulated
// LAN for the paper's four schemes (Figure 4): ns/op here is the paper's
// response-time axis.
func BenchmarkFigure4(b *testing.B) {
	mks := map[string]func() harness.Scheme{
		"BXSA-TCP":       func() harness.Scheme { return harness.NewUnified("BXSA", "tcp") },
		"XML-HTTP":       func() harness.Scheme { return harness.NewUnified("XML", "http") },
		"SOAP+HTTP":      func() harness.Scheme { return harness.NewSeparatedHTTP() },
		"SOAP+GridFTP-1": func() harness.Scheme { return harness.NewSeparatedGridFTP(1) },
	}
	for _, size := range []int{0, 500, 1000} {
		for name, mk := range mks {
			b.Run(fmt.Sprintf("%s/n=%d", name, size), func(b *testing.B) {
				benchScheme(b, mk, netsim.LAN, size)
			})
		}
	}
}

// BenchmarkFigure5 measures large-message bandwidth on the simulated LAN
// (Figure 5). Sizes are a subset of the paper's 1365·4^k grid; the pairs/s
// metric is the figure's y-axis.
func BenchmarkFigure5(b *testing.B) {
	mks := []struct {
		name string
		mk   func() harness.Scheme
	}{
		{"BXSA-TCP", func() harness.Scheme { return harness.NewUnified("BXSA", "tcp") }},
		{"SOAP+HTTP", func() harness.Scheme { return harness.NewSeparatedHTTP() }},
		{"SOAP+GridFTP-1", func() harness.Scheme { return harness.NewSeparatedGridFTP(1) }},
		{"SOAP+GridFTP-4", func() harness.Scheme { return harness.NewSeparatedGridFTP(4) }},
		{"SOAP+GridFTP-16", func() harness.Scheme { return harness.NewSeparatedGridFTP(16) }},
		{"XML-HTTP", func() harness.Scheme { return harness.NewUnified("XML", "http") }},
	}
	for _, size := range []int{1365, 87360} {
		for _, e := range mks {
			b.Run(fmt.Sprintf("%s/n=%d", e.name, size), func(b *testing.B) {
				benchScheme(b, e.mk, netsim.LAN, size)
			})
		}
	}
}

// BenchmarkFigure6 repeats the bandwidth measurement on the simulated WAN
// (Figure 6), where parallel GridFTP streams escape the single-stream
// window limit.
func BenchmarkFigure6(b *testing.B) {
	mks := []struct {
		name string
		mk   func() harness.Scheme
	}{
		{"SOAP+GridFTP-16", func() harness.Scheme { return harness.NewSeparatedGridFTP(16) }},
		{"BXSA-TCP", func() harness.Scheme { return harness.NewUnified("BXSA", "tcp") }},
		{"SOAP+GridFTP-4", func() harness.Scheme { return harness.NewSeparatedGridFTP(4) }},
		{"SOAP+HTTP", func() harness.Scheme { return harness.NewSeparatedHTTP() }},
		{"SOAP+GridFTP-1", func() harness.Scheme { return harness.NewSeparatedGridFTP(1) }},
	}
	// 349440 pairs (~4 MB) sits at the crossover where parallel streams
	// start beating the single-stream window limit (Figure 6).
	const size = 349440
	for _, e := range mks {
		b.Run(fmt.Sprintf("%s/n=%d", e.name, size), func(b *testing.B) {
			benchScheme(b, e.mk, netsim.WAN, size)
		})
	}
}

// BenchmarkConversionCost isolates the §6.2 observation: "the performance
// bottleneck is not merely the size of the serialization, but actually lies
// at the conversion between floating-point numbers and their ASCII
// representation." Same model, both encoders, encode and decode.
func BenchmarkConversionCost(b *testing.B) {
	m := dataset.Generate(1000)
	el := m.Element()
	doc := bxdm.NewDocument(el)

	b.Run("encode/XML", func(b *testing.B) {
		b.SetBytes(int64(m.NativeSize()))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := xmltext.Marshal(doc, xmltext.EncodeOptions{TypeHints: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode/BXSA", func(b *testing.B) {
		b.SetBytes(int64(m.NativeSize()))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bxsa.Marshal(doc, bxsa.EncodeOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	xmlData, err := xmltext.Marshal(doc, xmltext.EncodeOptions{TypeHints: true})
	if err != nil {
		b.Fatal(err)
	}
	bxsaData, err := bxsa.Marshal(doc, bxsa.EncodeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("decode/XML", func(b *testing.B) {
		b.SetBytes(int64(m.NativeSize()))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := xmltext.Parse(xmlData, xmltext.DecodeOptions{RecoverTypes: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode/BXSA", func(b *testing.B) {
		b.SetBytes(int64(m.NativeSize()))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bxsa.Parse(bxsaData); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationFrameGranularity quantifies §4.1's frame-granularity
// decision: attributes and namespace declarations live inside their
// element's frame instead of being frames of their own. The ablation
// compares a realistic attribute-rich document against the same information
// remodeled with one child (leaf) element per attribute — what "numerous,
// small frames" would cost.
func BenchmarkAblationFrameGranularity(b *testing.B) {
	const entries = 500
	inline := bxdm.NewElement(bxdm.LocalName("catalog"))
	exploded := bxdm.NewElement(bxdm.LocalName("catalog"))
	for i := 0; i < entries; i++ {
		e := bxdm.NewElement(bxdm.LocalName("entry"))
		e.SetAttr(bxdm.LocalName("id"), bxdm.Int32Value(int32(i)))
		e.SetAttr(bxdm.LocalName("score"), bxdm.Float64Value(float64(i)*0.5))
		e.SetAttr(bxdm.LocalName("tag"), bxdm.StringValue("t"))
		inline.Append(e)

		x := bxdm.NewElement(bxdm.LocalName("entry"),
			bxdm.NewLeaf(bxdm.LocalName("id"), int32(i)),
			bxdm.NewLeaf(bxdm.LocalName("score"), float64(i)*0.5),
			bxdm.NewLeaf(bxdm.LocalName("tag"), "t"),
		)
		exploded.Append(x)
	}
	report := func(b *testing.B, n bxdm.Node) {
		size, err := bxsa.EncodedSize(n, bxsa.EncodeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(size), "encoded_bytes")
		for i := 0; i < b.N; i++ {
			if _, err := bxsa.Marshal(n, bxsa.EncodeOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("attrs-inline", func(b *testing.B) { report(b, inline) })
	b.Run("attrs-as-frames", func(b *testing.B) { report(b, exploded) })
}

// BenchmarkAblationNamespaceTokenization quantifies §4.1's tokenized
// namespace references: one declaration at the root referenced via
// (depth, index) pairs, versus the same namespace redeclared on every
// element (what literal per-frame namespace records would cost).
func BenchmarkAblationNamespaceTokenization(b *testing.B) {
	const uri = "urn:example:a-namespace-uri-of-realistic-length"
	const children = 500
	tokenized := bxdm.NewElement(bxdm.Name(uri, "root"))
	tokenized.DeclareNamespace("p", uri)
	redeclared := bxdm.NewElement(bxdm.Name(uri, "root"))
	redeclared.DeclareNamespace("p", uri)
	for i := 0; i < children; i++ {
		t := bxdm.NewLeaf(bxdm.Name(uri, "item"), int32(i))
		tokenized.Append(t)
		r := bxdm.NewLeaf(bxdm.Name(uri, "item"), int32(i))
		r.DeclareNamespace("p", uri) // forces a per-frame namespace table
		redeclared.Append(r)
	}
	report := func(b *testing.B, n bxdm.Node) {
		size, err := bxsa.EncodedSize(n, bxsa.EncodeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(size), "encoded_bytes")
		for i := 0; i < b.N; i++ {
			if _, err := bxsa.Marshal(n, bxsa.EncodeOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("tokenized", func(b *testing.B) { report(b, tokenized) })
	b.Run("redeclared-per-element", func(b *testing.B) { report(b, redeclared) })
}

// BenchmarkAblationPolicyDispatch probes the paper's generic-programming
// claim ("Because the binding is at compile time, compiler optimizations
// are not impacted, and inlining is still enabled"): the same encode runs
// through a concrete type parameter (monomorphized, inlinable) and through
// an interface value (dynamic dispatch). The absolute delta is small —
// encoding dominates — which is itself the honest finding: the real win of
// policy-based design here is type-safe composition, not nanoseconds.
func BenchmarkAblationPolicyDispatch(b *testing.B) {
	env := core.NewEnvelope(dataset.Generate(100).Element())
	doc := env.Document()

	encodeStatic := func(b *testing.B) {
		enc := core.BXSAEncoding{} // concrete type, direct calls
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := enc.Encode(&buf, doc); err != nil {
				b.Fatal(err)
			}
		}
	}
	encodeDynamic := func(b *testing.B) {
		var enc core.Encoding = core.BXSAEncoding{} // interface dispatch
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := enc.Encode(&buf, doc); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("static-policy", encodeStatic)
	b.Run("dynamic-dispatch", encodeDynamic)
}

// BenchmarkAblationTypedLeaves quantifies §3's motivation for extending XDM
// with typed values: shipping 1000 native doubles from sender memory to
// receiver memory as a typed ArrayElement (block copy), versus the XML
// Infoset way — formatting each to text on the sender and parsing each back
// on the receiver, even though the carrier is binary in both cases.
func BenchmarkAblationTypedLeaves(b *testing.B) {
	m := dataset.Generate(1000)

	b.Run("typed-array", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			doc := bxdm.NewDocument(m.Element())
			data, err := bxsa.Marshal(doc, bxsa.EncodeOptions{})
			if err != nil {
				b.Fatal(err)
			}
			back, err := bxsa.Parse(data)
			if err != nil {
				b.Fatal(err)
			}
			got, err := dataset.FromElement(back.(*bxdm.Document).Root())
			if err != nil || got.Size() != m.Size() {
				b.Fatalf("round trip: %v", err)
			}
		}
	})
	b.Run("text-content", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Sender: native → text (the Infoset model stores character
			// data, so the conversion is unavoidable).
			var sb bytes.Buffer
			for j, v := range m.Values {
				if j > 0 {
					sb.WriteByte(' ')
				}
				sb.Write(bxdm.Float64Value(v).AppendLexical(nil))
			}
			doc := bxdm.NewDocument(bxdm.NewElement(bxdm.LocalName("data"),
				bxdm.NewText(sb.String())))
			data, err := bxsa.Marshal(doc, bxsa.EncodeOptions{})
			if err != nil {
				b.Fatal(err)
			}
			back, err := bxsa.Parse(data)
			if err != nil {
				b.Fatal(err)
			}
			// Receiver: text → native.
			text := back.(*bxdm.Document).Root().(*bxdm.Element).TextContent()
			builder, err := bxdm.NewArrayBuilder(bxdm.TFloat64)
			if err != nil {
				b.Fatal(err)
			}
			for _, field := range strings.Fields(text) {
				if err := builder.AppendLexical(field); err != nil {
					b.Fatal(err)
				}
			}
			if builder.Data().Len() != len(m.Values) {
				b.Fatal("lost values")
			}
		}
	})
}

// BenchmarkPooledCalls measures aggregate request throughput of the
// svcpool client runtime at concurrency 1/4/16 (pool of as many
// connections) over the netsim LAN and WAN, with the seed single-engine
// client alongside as the baseline. On the RTT-bound WAN the pooled client
// at concurrency 16 overlaps sixteen round trips and clears 4× the
// single-engine throughput; EXPERIMENTS.md records the measured numbers.
func BenchmarkPooledCalls(b *testing.B) {
	const size = 500
	for _, prof := range []netsim.Profile{netsim.LAN, netsim.WAN} {
		b.Run(fmt.Sprintf("%s/single-engine", prof.Name), func(b *testing.B) {
			benchScheme(b, func() harness.Scheme { return harness.NewUnified("BXSA", "tcp") }, prof, size)
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "calls/s")
		})
		for _, conc := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/pool-c%d", prof.Name, conc), func(b *testing.B) {
				benchPooled(b, prof, conc, size)
			})
		}
	}
}

// benchPooled drives b.N batches of conc concurrent calls through a
// conc-connection pool and reports aggregate calls/s and pairs/s.
func benchPooled(b *testing.B, profile netsim.Profile, conc, size int) {
	nw := netsim.New(profile)
	s := harness.NewPooledUnified("BXSA", "tcp", conc, conc)
	if err := s.Setup(nw, b.TempDir()); err != nil {
		b.Fatal(err)
	}
	defer s.Teardown()
	m := dataset.Generate(size)
	if _, err := s.Invoke(m); err != nil { // warm-up: dials off the clock
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Invoke(m); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	calls := float64(b.N) * float64(conc)
	b.ReportMetric(calls/b.Elapsed().Seconds(), "calls/s")
	b.ReportMetric(calls*float64(size)/b.Elapsed().Seconds(), "pairs/s")
}
