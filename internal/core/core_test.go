package core

import (
	"bytes"
	"context"
	"net"
	"strings"
	"testing"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/obs"
	"bxsoap/internal/xbs"
)

func sampleEnvelope() *Envelope {
	req := bxdm.NewElement(bxdm.PName("urn:svc", "s", "verify"))
	req.DeclareNamespace("s", "urn:svc")
	req.Append(
		bxdm.NewArray(bxdm.Name("urn:svc", "index"), []int32{1, 2, 3}),
		bxdm.NewArray(bxdm.Name("urn:svc", "vals"), []float64{0.5, 1.5, 2.5}),
	)
	return NewEnvelope(req)
}

func TestEnvelopeDocumentStructure(t *testing.T) {
	env := sampleEnvelope()
	env.AddHeader(bxdm.NewLeaf(bxdm.Name("urn:h", "txid"), int64(99)))
	doc := env.Document()
	root := doc.Root()
	if !root.ElemName().Matches(bxdm.Name(EnvelopeNS, "Envelope")) {
		t.Fatalf("root = %v", root.ElemName())
	}
	el := root.(*bxdm.Element)
	if len(el.Children) != 2 {
		t.Fatalf("envelope children = %d, want Header+Body", len(el.Children))
	}
	if !el.ChildElements()[0].ElemName().Matches(bxdm.Name(EnvelopeNS, "Header")) {
		t.Error("first child not Header")
	}
	if !el.ChildElements()[1].ElemName().Matches(bxdm.Name(EnvelopeNS, "Body")) {
		t.Error("second child not Body")
	}
}

func TestEnvelopeRoundTripDocument(t *testing.T) {
	env := sampleEnvelope()
	env.AddHeader(bxdm.NewLeaf(bxdm.Name("urn:h", "txid"), int64(99)))
	back, err := EnvelopeFromDocument(env.Document())
	if err != nil {
		t.Fatal(err)
	}
	if !env.Equal(back) {
		t.Error("envelope changed through Document/FromDocument")
	}
}

func TestEnvelopeFromDocumentErrors(t *testing.T) {
	// Wrong root element.
	bad := bxdm.NewDocument(bxdm.NewElement(bxdm.LocalName("nope")))
	if _, err := EnvelopeFromDocument(bad); err == nil {
		t.Error("non-envelope root accepted")
	}
	// Envelope without body.
	env := bxdm.NewElement(envelopeName)
	if _, err := EnvelopeFromDocument(bxdm.NewDocument(env)); err == nil {
		t.Error("missing Body accepted")
	}
	// Unexpected child.
	env2 := bxdm.NewElement(envelopeName,
		bxdm.NewElement(bodyName),
		bxdm.NewElement(bxdm.Name(EnvelopeNS, "Extra")))
	if _, err := EnvelopeFromDocument(bxdm.NewDocument(env2)); err == nil {
		t.Error("unexpected envelope child accepted")
	}
	// Header after body.
	env3 := bxdm.NewElement(envelopeName,
		bxdm.NewElement(bodyName),
		bxdm.NewElement(headerName))
	if _, err := EnvelopeFromDocument(bxdm.NewDocument(env3)); err == nil {
		t.Error("Header after Body accepted")
	}
}

func TestEncodeDecodeBothPolicies(t *testing.T) {
	env := sampleEnvelope()
	for _, enc := range []Encoding{XMLEncoding{}, BXSAEncoding{}, BXSAEncoding{Order: xbs.BigEndian}} {
		data, err := NewCodec(enc).EncodeBytes(env)
		if err != nil {
			t.Fatalf("%s: %v", enc.Name(), err)
		}
		back, err := NewCodec(enc).DecodeEnvelope(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", enc.Name(), err)
		}
		if !env.Equal(back) {
			t.Errorf("%s: envelope round trip mismatch", enc.Name())
		}
	}
}

func TestBXSASmallerThanXMLForNumericPayloads(t *testing.T) {
	env := NewEnvelope(bxdm.NewArray(bxdm.LocalName("v"), make([]float64, 500)))
	xml, err := NewCodec(XMLEncoding{}).EncodeBytes(env)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := NewCodec(BXSAEncoding{}).EncodeBytes(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(bin) >= len(xml) {
		t.Errorf("BXSA (%d bytes) not smaller than XML (%d bytes)", len(bin), len(xml))
	}
}

func TestFaultEnvelopeRoundTrip(t *testing.T) {
	f := &Fault{
		Code:   FaultClient,
		String: "bad things",
		Actor:  "urn:me",
		Detail: bxdm.NewLeaf(bxdm.LocalName("reason"), "numbers off"),
	}
	for _, enc := range []Encoding{XMLEncoding{}, BXSAEncoding{}} {
		data, err := NewCodec(enc).EncodeBytes(f.Envelope())
		if err != nil {
			t.Fatal(err)
		}
		env, err := NewCodec(enc).DecodeEnvelope(data)
		if err != nil {
			t.Fatal(err)
		}
		back := FaultFromEnvelope(env)
		if back == nil {
			t.Fatalf("%s: fault not detected", enc.Name())
		}
		if back.Code != f.Code || back.String != f.String || back.Actor != f.Actor {
			t.Errorf("%s: fault = %+v", enc.Name(), back)
		}
		if back.Detail == nil {
			t.Errorf("%s: detail lost", enc.Name())
		}
		if !strings.Contains(back.Error(), "bad things") {
			t.Errorf("Error() = %q", back.Error())
		}
	}
}

func TestFaultFromEnvelopeNonFault(t *testing.T) {
	if FaultFromEnvelope(sampleEnvelope()) != nil {
		t.Error("non-fault body reported as fault")
	}
	if FaultFromEnvelope(NewEnvelope()) != nil {
		t.Error("empty body reported as fault")
	}
}

func TestCheckContentType(t *testing.T) {
	// Media type comparison per RFC 2045 §5.1: letter case, surrounding
	// whitespace, and parameters are all insignificant; the media type
	// itself is what must match.
	cases := []struct {
		got string
		ok  bool
	}{
		{"text/xml; charset=utf-8", true},
		{"text/xml", true},
		{"", true}, // absent content type: nothing to contradict
		{"Text/XML", true},
		{"TEXT/XML; charset=UTF-8", true},
		{"text/xml ; charset=utf-8", true},
		{"  text/xml\t", true},
		{"\ttext/XML  ;  boundary=x", true},
		{"application/x-bxsa", false},
		{"text/xmlx", false},
		{"text/xm", false},
		{"text/ xml", false}, // space inside the media type is not trimmable
	}
	for _, c := range cases {
		err := CheckContentType(XMLEncoding{}, c.got)
		if c.ok && err != nil {
			t.Errorf("CheckContentType(XML, %q) = %v, want accept", c.got, err)
		}
		if !c.ok && err == nil {
			t.Errorf("CheckContentType(XML, %q) accepted, want reject", c.got)
		}
	}
}

func TestEnvelopeHeaderLookupAndMustUnderstand(t *testing.T) {
	env := NewEnvelope()
	h := bxdm.NewElement(bxdm.Name("urn:h", "auth"))
	MarkMustUnderstand(h)
	env.AddHeader(h)
	env.AddHeader(bxdm.NewLeaf(bxdm.Name("urn:h", "trace"), "t1"))
	if env.Header(bxdm.Name("urn:h", "auth")) == nil {
		t.Error("header lookup failed")
	}
	if env.Header(bxdm.Name("urn:h", "absent")) != nil {
		t.Error("absent header found")
	}
	if !mustUnderstand(h) {
		t.Error("mustUnderstand flag lost")
	}
	if mustUnderstand(env.Header(bxdm.Name("urn:h", "trace"))) {
		t.Error("unflagged header reports mustUnderstand")
	}
}

func TestEnvelopeCloneIndependence(t *testing.T) {
	env := sampleEnvelope()
	cl := env.Clone()
	if !env.Equal(cl) {
		t.Fatal("clone differs")
	}
	cl.BodyChildren[0].(*bxdm.Element).SetAttr(bxdm.LocalName("x"), bxdm.StringValue("y"))
	if env.Equal(cl) {
		t.Error("mutating clone affected original")
	}
}

// inProcBinding is a loopback binding used to test the engine without a
// network: requests are dispatched straight into a dispatcher.
type inProcBinding struct {
	server   *Server[XMLEncoding, *nullServerBinding]
	response []byte
	ct       string
}

type nullServerBinding struct{}

func (*nullServerBinding) Accept() (Channel, error) { select {} }
func (*nullServerBinding) Addr() net.Addr           { return nil }
func (*nullServerBinding) Close() error             { return nil }

func (b *inProcBinding) SendRequest(ctx context.Context, payload *Payload, ct string) error {
	resp := b.server.Dispatcher().Dispatch(ctx, payload.Bytes(), ct, new(obs.Span), nil)
	data, err := b.server.Codec().EncodeBytes(resp)
	if err != nil {
		return err
	}
	b.response, b.ct = data, b.server.Codec().ContentType()
	return nil
}

func (b *inProcBinding) ReceiveResponse(context.Context) (*Payload, string, error) {
	return NewPayloadFrom(b.response), b.ct, nil
}

func (b *inProcBinding) Close() error { return nil }

func TestEngineCallThroughDispatcher(t *testing.T) {
	handler := func(_ context.Context, req *Envelope) (*Envelope, error) {
		arr := req.Body().(*bxdm.Element).FirstChild(bxdm.Name("urn:svc", "vals")).(*bxdm.ArrayElement)
		items, _ := bxdm.Items[float64](arr.Data)
		sum := 0.0
		for _, v := range items {
			sum += v
		}
		return NewEnvelope(bxdm.NewLeaf(bxdm.LocalName("sum"), sum)), nil
	}
	srv := NewServer(XMLEncoding{}, &nullServerBinding{}, handler)
	eng := NewEngine(XMLEncoding{}, &inProcBinding{server: srv})
	resp, err := eng.Call(context.Background(), sampleEnvelope())
	if err != nil {
		t.Fatal(err)
	}
	leaf := resp.Body().(*bxdm.LeafElement)
	if leaf.Value.Float64() != 4.5 {
		t.Errorf("sum = %v", leaf.Value.Float64())
	}
}

func TestEngineSurfacesFaults(t *testing.T) {
	handler := func(_ context.Context, _ *Envelope) (*Envelope, error) {
		return nil, &Fault{Code: FaultClient, String: "rejected"}
	}
	srv := NewServer(XMLEncoding{}, &nullServerBinding{}, handler)
	eng := NewEngine(XMLEncoding{}, &inProcBinding{server: srv})
	_, err := eng.Call(context.Background(), sampleEnvelope())
	var f *Fault
	if !asFault(err, &f) || f.Code != FaultClient || f.String != "rejected" {
		t.Fatalf("err = %v, want client fault", err)
	}
}

func TestEngineWrapsHandlerErrors(t *testing.T) {
	handler := func(_ context.Context, _ *Envelope) (*Envelope, error) {
		return nil, bytes.ErrTooLarge
	}
	srv := NewServer(XMLEncoding{}, &nullServerBinding{}, handler)
	eng := NewEngine(XMLEncoding{}, &inProcBinding{server: srv})
	_, err := eng.Call(context.Background(), sampleEnvelope())
	var f *Fault
	if !asFault(err, &f) || f.Code != FaultServer {
		t.Fatalf("err = %v, want server fault", err)
	}
}

func TestDispatchMustUnderstand(t *testing.T) {
	handler := func(_ context.Context, _ *Envelope) (*Envelope, error) {
		return NewEnvelope(), nil
	}
	srv := NewServer(XMLEncoding{}, &nullServerBinding{}, handler)
	env := sampleEnvelope()
	h := bxdm.NewElement(bxdm.Name("urn:sec", "token"))
	MarkMustUnderstand(h)
	env.AddHeader(h)

	bind := &inProcBinding{server: srv}
	eng := NewEngine(XMLEncoding{}, bind)
	_, err := eng.Call(context.Background(), env)
	var f *Fault
	if !asFault(err, &f) || f.Code != FaultMustUnderstand {
		t.Fatalf("err = %v, want MustUnderstand fault", err)
	}

	// A server constructed understanding the header accepts the call.
	srv2 := NewServer(XMLEncoding{}, &nullServerBinding{}, handler,
		WithUnderstood(bxdm.Name("urn:sec", "token")))
	eng2 := NewEngine(XMLEncoding{}, &inProcBinding{server: srv2})
	if _, err := eng2.Call(context.Background(), env); err != nil {
		t.Fatalf("understood header still faults: %v", err)
	}

	// Late registration through the dispatcher keeps working too.
	srv.Dispatcher().Understand(bxdm.Name("urn:sec", "token"))
	if _, err := eng.Call(context.Background(), env); err != nil {
		t.Fatalf("understood header (via Understand) still faults: %v", err)
	}
}

func TestDispatchRejectsGarbage(t *testing.T) {
	srv := NewServer(XMLEncoding{}, &nullServerBinding{}, func(_ context.Context, _ *Envelope) (*Envelope, error) {
		return NewEnvelope(), nil
	})
	resp := srv.Dispatcher().Dispatch(context.Background(), []byte("this is not xml"), "text/xml", new(obs.Span), nil)
	f := FaultFromEnvelope(resp)
	if f == nil || f.Code != FaultClient {
		t.Fatalf("garbage request → %v", f)
	}
	resp = srv.Dispatcher().Dispatch(context.Background(), []byte("<x/>"), "application/x-bxsa", new(obs.Span), nil)
	if f := FaultFromEnvelope(resp); f == nil || f.Code != FaultClient {
		t.Fatal("content-type mismatch not faulted")
	}
}

func asFault(err error, f **Fault) bool {
	if err == nil {
		return false
	}
	x, ok := err.(*Fault)
	if ok {
		*f = x
	}
	return ok
}

// TestAckSniffScansFullPayload: a fault acknowledgement may carry
// arbitrarily large leading headers (e.g. signed Security headers) before
// the Fault element; the sniff must not stop at some prefix window and
// misreport the ack as clean.
func TestAckSniffScansFullPayload(t *testing.T) {
	padded := append(bytes.Repeat([]byte{'h'}, 4096), []byte("<soap:Fault>")...)
	if !ackLooksLikeFault(padded) {
		t.Error("fault marker past 1KB of headers not detected")
	}
	if ackLooksLikeFault(bytes.Repeat([]byte{'x'}, 4096)) {
		t.Error("false positive on payload without fault marker")
	}
}
