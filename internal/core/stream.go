package core

import (
	"context"
	"fmt"
	"io"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/bxsa"
	"bxsoap/internal/obs"
)

// This file is the chunked-streaming seam of the codec API (ROADMAP open
// item 1, grounded in "Non-Blocking Signature of very large SOAP
// Messages"): a message flows through the pipeline as an ordered sequence
// of pooled Payload chunks instead of one materialized buffer, so maximum
// message size is decoupled from memory and time-to-first-byte is decoupled
// from total encode time.
//
// Contracts at the chunk seam (see DESIGN.md "Streaming pipeline"):
//
//   - A message is one WriteChunk sequence ending with exactly one
//     last=true chunk. Chunk boundaries are preserved end to end: every
//     binding delivers the same chunk sequence the encoder produced (wssec's
//     trailing-signature detection depends on this).
//   - WriteChunk transfers ownership of the chunk to the sink; ReadChunk
//     transfers ownership of the returned chunk to the caller.
//   - On failure the side that noticed calls Abort exactly once instead of
//     finishing the sequence; transports then poison the underlying stream
//     (a half-delivered message can never be confused with a complete one).
//   - Abort is idempotent and safe after any prefix of the sequence.

// DefaultChunkBytes is the chunk window used when WithStreaming is given a
// non-positive size: large enough that per-chunk framing overhead vanishes,
// small enough that a handful of in-flight chunks stay well under the
// 16 MiB pipeline budget.
const DefaultChunkBytes = 256 << 10

// ChunkSink receives one message as an ordered chunk sequence.
type ChunkSink interface {
	// WriteChunk appends one chunk to the message; last marks the final
	// chunk. The sink takes ownership of p and releases it once consumed.
	//
	//paylint:transfers
	WriteChunk(p *Payload, last bool) error
	// Abort abandons the message mid-sequence. The underlying stream is
	// unusable for further messages and the transport poisons it.
	Abort()
}

// ChunkSource yields one message as an ordered chunk sequence.
type ChunkSource interface {
	// ReadChunk returns the next chunk and whether it is the final one.
	// Ownership of the chunk transfers to the caller, which must Release
	// it. After the last chunk, further reads return io.EOF.
	//
	//paylint:returns owned
	ReadChunk() (p *Payload, last bool, err error)
	// Abort abandons the rest of the message. The underlying stream is
	// unusable for further messages and the transport poisons it.
	Abort()
}

// StreamEncoding is the optional streaming face of an Encoding: policies
// that implement it encode and decode messages as bounded chunk windows
// instead of materialized buffers. The chunked byte stream is the
// concatenation of the chunks and — for the base encodings — is
// byte-identical to AppendEncode's output, so buffered and streamed peers
// interoperate at the bytes level (fuzz-verified; wssec's streamed frame
// differs deliberately, see its package doc).
type StreamEncoding interface {
	Encoding
	// EncodeChunks serializes doc into sink as chunks of roughly chunkBytes
	// each, ending with a last=true chunk. On error the sink is left
	// unfinished; the caller aborts it (EncodeChunksOf's contract).
	EncodeChunks(doc *bxdm.Document, chunkBytes int, sink ChunkSink) error
	// DecodeChunks parses one message from src, consuming chunks as the
	// parse advances. On success the last chunk has been consumed; on error
	// the caller aborts the source.
	DecodeChunks(src ChunkSource) (*bxdm.Document, error)
}

// StreamBinding is the optional streaming face of a client Binding.
type StreamBinding interface {
	Binding
	// SendRequestStream opens a chunked request; the caller writes the
	// message into the returned sink and finishes it with a last chunk
	// (or aborts it).
	SendRequestStream(ctx context.Context, contentType string) (ChunkSink, error)
	// ReceiveResponseStream blocks until the response begins, returning a
	// source for its chunks. A buffered (non-chunked) response comes back
	// as a one-chunk source, so a streaming client interoperates with a
	// buffered server.
	ReceiveResponseStream(ctx context.Context) (ChunkSource, string, error)
}

// StreamChannel is the optional streaming face of a server Channel.
type StreamChannel interface {
	Channel
	// ReceiveRequestStream blocks until the next request begins, returning
	// a source for its chunks. A buffered request comes back as a one-chunk
	// source.
	ReceiveRequestStream(ctx context.Context) (ChunkSource, string, error)
	// SendResponseStream opens a chunked response for the request just
	// received; the caller writes chunks and finishes (or aborts).
	SendResponseStream(contentType string) (ChunkSink, error)
}

// EncodeChunksOf streams doc through enc into sink. Encodings implementing
// StreamEncoding stream natively with bounded memory; any other encoding is
// buffered through AppendEncode and delivered as one chunk (the documented
// fallback: correctness everywhere, bounded memory where the codec
// cooperates). The sink is NOT aborted on error — the caller owns failure
// handling, so wrapping policies (wssec) can compose this without
// double-aborting.
func EncodeChunksOf(enc Encoding, doc *bxdm.Document, chunkBytes int, sink ChunkSink) error {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	if se, ok := enc.(StreamEncoding); ok {
		return se.EncodeChunks(doc, chunkBytes, sink)
	}
	name := enc.Name()
	p := NewPayload(sizeHintFor(name))
	out, err := enc.AppendEncode(p.buf, doc)
	if err != nil {
		p.Release()
		return err
	}
	p.buf = out
	recordSizeHint(name, len(out))
	return sink.WriteChunk(p, true)
}

// DecodeChunksOf parses one message from src via enc. Encodings
// implementing StreamEncoding consume chunks incrementally; others gather
// the sequence into one pooled buffer first (the fallback matrix's other
// half). The source is NOT aborted on error — the caller owns failure
// handling.
func DecodeChunksOf(enc Encoding, src ChunkSource) (*bxdm.Document, error) {
	if se, ok := enc.(StreamEncoding); ok {
		return se.DecodeChunks(src)
	}
	p, err := GatherChunks(src)
	if err != nil {
		return nil, err
	}
	doc, err := enc.Decode(p.Bytes())
	p.Release()
	return doc, err
}

// OneChunkSource wraps a materialized payload as a ChunkSource — the
// degenerate stream a binding returns when the peer sent a buffered
// message. Takes ownership of p.
//
//paylint:transfers
func OneChunkSource(p *Payload) ChunkSource { return &oneChunkSource{p: p} }

type oneChunkSource struct{ p *Payload }

//paylint:returns owned
func (s *oneChunkSource) ReadChunk() (*Payload, bool, error) {
	if s.p == nil {
		return nil, false, io.EOF
	}
	p := s.p
	s.p = nil
	return p, true, nil
}

func (s *oneChunkSource) Abort() {
	if s.p != nil {
		s.p.Release()
		s.p = nil
	}
}

// GatherChunks concatenates a chunk sequence into one pooled payload — the
// degenerate buffered case of a streamed message. The caller owns the
// result.
//
//paylint:returns owned
func GatherChunks(src ChunkSource) (*Payload, error) {
	p := NewPayload(sizeHintFor("gather"))
	for {
		c, last, err := src.ReadChunk()
		if err != nil {
			p.Release()
			return nil, err
		}
		p.Write(c.Bytes())
		c.Release()
		if last {
			return p, nil
		}
	}
}

// EncodeChunks implements StreamEncoding: the BXSA emit pass spills its
// output windows into pooled chunks as it goes, so memory is bounded by the
// chunk window while the bytes stay identical to AppendEncode (the measure
// pass still runs first — it is O(nodes), which is what keeps first-byte
// latency independent of array payload size).
func (b BXSAEncoding) EncodeChunks(doc *bxdm.Document, chunkBytes int, sink ChunkSink) error {
	em := chunkEmitter{sink: sink}
	if err := bxsa.EncodeChunked(doc, bxsa.EncodeOptions{Order: b.Order}, chunkBytes, em.emit); err != nil {
		em.discard()
		return err
	}
	return em.finish()
}

// DecodeChunks implements StreamEncoding via the reader-based BXSA decoder:
// chunks are consumed (and their pooled buffers recycled) as the parse
// advances through the frame tree.
func (b BXSAEncoding) DecodeChunks(src ChunkSource) (*bxdm.Document, error) {
	cr := chunkReader{src: src}
	doc, err := bxsa.DecodeDocumentReader(&cr)
	cr.discard()
	return doc, err
}

// EncodeChunks implements StreamEncoding: the XML writer already emits
// element-at-a-time through its sink, so streaming is the plain Encode path
// pointed at a chunking writer.
func (x XMLEncoding) EncodeChunks(doc *bxdm.Document, chunkBytes int, sink ChunkSink) error {
	em := chunkEmitter{sink: sink}
	cw := chunkingWriter{em: &em, chunkBytes: chunkBytes}
	if err := x.Encode(&cw, doc); err != nil {
		em.discard()
		return err
	}
	if err := cw.flush(); err != nil {
		em.discard()
		return err
	}
	return em.finish()
}

// DecodeChunks implements StreamEncoding. The XML parser needs the whole
// document in memory (namespace scoping is resolved on a second pass over
// the token buffer), so the decode half of the XML policy is the gathered
// fallback — documented in the DESIGN.md fallback matrix.
func (x XMLEncoding) DecodeChunks(src ChunkSource) (*bxdm.Document, error) {
	p, err := GatherChunks(src)
	if err != nil {
		return nil, err
	}
	doc, err := x.Decode(p.Bytes())
	p.Release()
	return doc, err
}

// chunkEmitter turns byte windows into owned pooled chunks with one window
// of lookahead, so the final window can be marked last=true without the
// producer having to know its output size in advance.
type chunkEmitter struct {
	sink    ChunkSink
	pending *Payload
}

// emit copies one produced window into a pooled chunk and forwards the
// previously held chunk. The window may alias the producer's scratch
// buffer; it is copied before emit returns.
func (c *chunkEmitter) emit(b []byte) error {
	p := NewPayload(len(b))
	p.Write(b)
	prev := c.pending
	c.pending = p
	if prev != nil {
		return c.sink.WriteChunk(prev, false)
	}
	return nil
}

// finish forwards the held chunk as the message's last (an empty message
// still sends one empty last chunk, so every message has a well-formed
// terminator).
func (c *chunkEmitter) finish() error {
	p := c.pending
	c.pending = nil
	if p == nil {
		p = NewPayload(0)
	}
	return c.sink.WriteChunk(p, true)
}

// discard drops the held chunk after a failure; aborting the sink is the
// caller's job.
func (c *chunkEmitter) discard() {
	if c.pending != nil {
		c.pending.Release()
		c.pending = nil
	}
}

// chunkingWriter adapts a chunkEmitter to io.Writer for producers that
// stream through the writer interface (the XML encoder): bytes accumulate
// in a scratch window and spill as chunks when the window fills.
type chunkingWriter struct {
	em         *chunkEmitter
	chunkBytes int
	buf        []byte
}

func (w *chunkingWriter) Write(b []byte) (int, error) {
	n := len(b)
	for len(b) > 0 {
		if w.buf == nil {
			w.buf = make([]byte, 0, w.chunkBytes)
		}
		room := w.chunkBytes - len(w.buf)
		if room == 0 {
			if err := w.em.emit(w.buf); err != nil {
				return 0, err
			}
			w.buf = w.buf[:0]
			continue
		}
		k := min(room, len(b))
		w.buf = append(w.buf, b[:k]...)
		b = b[k:]
	}
	return n, nil
}

func (w *chunkingWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	err := w.em.emit(w.buf)
	w.buf = w.buf[:0]
	return err
}

// chunkReader adapts a ChunkSource to io.Reader for consumers that parse
// through the reader interface (the BXSA stream decoder): each chunk is
// released as soon as it is drained, so the reader holds at most one chunk.
type chunkReader struct {
	src  ChunkSource
	cur  *Payload
	off  int
	done bool
}

func (r *chunkReader) Read(b []byte) (int, error) {
	for r.cur == nil || r.off == r.cur.Len() {
		if r.cur != nil {
			r.cur.Release()
			r.cur, r.off = nil, 0
		}
		if r.done {
			return 0, io.EOF
		}
		c, last, err := r.src.ReadChunk()
		if err != nil {
			return 0, err
		}
		r.cur, r.off, r.done = c, 0, last
	}
	n := copy(b, r.cur.Bytes()[r.off:])
	r.off += n
	return n, nil
}

// discard releases any partially consumed chunk after the parse finishes or
// fails; aborting the source is the caller's job.
func (r *chunkReader) discard() {
	if r.cur != nil {
		r.cur.Release()
		r.cur = nil
	}
}

// EncodeChunks streams an envelope into sink via the codec's encoding (the
// streamed counterpart of EncodePayload; the template cache does not apply
// — plans splice materialized buffers).
func (c Codec[E]) EncodeChunks(e *Envelope, chunkBytes int, sink ChunkSink) error {
	return EncodeChunksOf(c.enc, e.Document(), chunkBytes, sink)
}

// DecodeChunks parses a chunked message into an envelope (the streamed
// counterpart of DecodePayload).
func (c Codec[E]) DecodeChunks(src ChunkSource) (*Envelope, error) {
	doc, err := DecodeChunksOf(c.enc, src)
	if err != nil {
		return nil, err
	}
	return EnvelopeFromDocument(doc)
}

// countingSink wraps a transport sink with the obs chunk counters and the
// bytes-in-flight gauge: bytes enter the in-flight account when handed to
// the transport. The matching countingSource subtracts on consumption, so
// on a node running both directions the gauge reads the streaming
// pipeline's buffered bytes.
type countingSink struct {
	sink ChunkSink
	obs  *obs.Observer
}

func (s countingSink) WriteChunk(p *Payload, last bool) error {
	s.obs.Inc(obs.StreamChunksSent)
	s.obs.GaugeAdd(obs.StreamBytesInFlight, int64(p.Len()))
	return s.sink.WriteChunk(p, last)
}

func (s countingSink) Abort() { s.sink.Abort() }

// countingSource wraps a transport source with the receive-side counters.
type countingSource struct {
	src ChunkSource
	obs *obs.Observer
}

//paylint:returns owned
func (s countingSource) ReadChunk() (*Payload, bool, error) {
	p, last, err := s.src.ReadChunk()
	if err == nil {
		s.obs.Inc(obs.StreamChunksReceived)
		s.obs.GaugeAdd(obs.StreamBytesInFlight, -int64(p.Len()))
	}
	return p, last, err
}

func (s countingSource) Abort() { s.src.Abort() }

// pipeSource/pipeSink are the in-process chunk pipe used by tests and the
// gathered fallbacks of in-process compositions: a bounded queue whose
// capacity is the chunk window, with Abort propagating to the other end.
type pipeChunk struct {
	p    *Payload
	last bool
}

// ChunkPipe is an in-process bounded chunk queue: the sink side blocks when
// window chunks are unconsumed, which is exactly the backpressure a
// transport provides. It exists for tests and in-process compositions; the
// bindings implement their own wire-backed sinks and sources.
type ChunkPipe struct {
	ch     chan pipeChunk
	done   chan struct{}
	closed bool
}

// NewChunkPipe builds a pipe holding at most window unconsumed chunks.
func NewChunkPipe(window int) *ChunkPipe {
	if window <= 0 {
		window = 1
	}
	return &ChunkPipe{ch: make(chan pipeChunk, window), done: make(chan struct{})}
}

// WriteChunk implements ChunkSink.
//
//paylint:transfers
func (p *ChunkPipe) WriteChunk(c *Payload, last bool) error {
	select {
	case p.ch <- pipeChunk{c, last}:
		return nil
	case <-p.done:
		c.Release()
		return fmt.Errorf("core: chunk pipe aborted")
	}
}

// ReadChunk implements ChunkSource.
//
//paylint:returns owned
func (p *ChunkPipe) ReadChunk() (*Payload, bool, error) {
	select {
	case c := <-p.ch:
		return c.p, c.last, nil
	case <-p.done:
		// Drain any chunks racing the abort so their buffers recycle.
		for {
			select {
			case c := <-p.ch:
				c.p.Release()
			default:
				return nil, false, fmt.Errorf("core: chunk pipe aborted")
			}
		}
	}
}

// Abort implements both ends' Abort: it wakes the peer and recycles queued
// chunks. Idempotent.
func (p *ChunkPipe) Abort() {
	if p.closed {
		return
	}
	p.closed = true
	close(p.done)
	for {
		select {
		case c := <-p.ch:
			c.p.Release()
		default:
			return
		}
	}
}

// Compile-time checks that the shipped encodings stream.
var (
	_ StreamEncoding = BXSAEncoding{}
	_ StreamEncoding = XMLEncoding{}
)
