package core_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/core"
	"bxsoap/internal/obs"
	"bxsoap/internal/tcpbind"
)

// startObservedServer runs a BXSA/TCP server wired to its own observer and
// returns it with a factory for observed client engines.
func startObservedServer(t *testing.T, h core.Handler, opts ...core.ServerOption) (*core.Server[core.BXSAEncoding, *tcpbind.Listener], *obs.Observer) {
	t.Helper()
	srvObs := obs.New()
	l, err := tcpbind.Listen("127.0.0.1:0", tcpbind.WithObserver(srvObs))
	if err != nil {
		t.Fatal(err)
	}
	srv := core.NewServer(core.BXSAEncoding{}, l, h,
		append([]core.ServerOption{core.WithObserver(srvObs)}, opts...)...)
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv, srvObs
}

func TestObservedCallRecordsStagesAndCounters(t *testing.T) {
	srv, srvObs := startObservedServer(t, func(_ context.Context, _ *core.Envelope) (*core.Envelope, error) {
		return core.NewEnvelope(bxdm.NewLeaf(bxdm.LocalName("ok"), int32(1))), nil
	})
	cliObs := obs.New()
	eng := core.NewEngine(core.BXSAEncoding{},
		tcpbind.New(tcpbind.NetDialer, srv.Addr().String(), tcpbind.WithObserver(cliObs)),
		core.WithObserver(cliObs))
	defer eng.Close()

	const calls = 5
	for i := 0; i < calls; i++ {
		if _, err := eng.Call(context.Background(), core.NewEnvelope()); err != nil {
			t.Fatal(err)
		}
	}

	// Client side: the full stage sequence once per call, balanced counters.
	for _, st := range []obs.Stage{obs.ClientEncode, obs.ClientSend, obs.ClientWait, obs.ClientDecode} {
		if got := cliObs.StageSnapshot(st).Count; got != calls {
			t.Errorf("client stage %v count = %d, want %d", st, got, calls)
		}
	}
	if s, c, f := cliObs.Counter(obs.CallsStarted), cliObs.Counter(obs.CallsCompleted), cliObs.Counter(obs.CallsFailed); s != calls || c != calls || f != 0 {
		t.Errorf("client counters started/completed/failed = %d/%d/%d, want %d/%d/0", s, c, f, calls, calls)
	}
	if got := cliObs.Counter(obs.MessagesSent); got != calls {
		t.Errorf("client binding sent %d messages, want %d", got, calls)
	}
	if cliObs.Counter(obs.BytesSent) == 0 || cliObs.Counter(obs.BytesReceived) == 0 {
		t.Error("client binding byte counters did not move")
	}

	// Server side: requests counted, handler and codec stages populated.
	if got := srvObs.Counter(obs.ServerRequests); got != calls {
		t.Errorf("server requests = %d, want %d", got, calls)
	}
	if got := srvObs.Counter(obs.ServerFaults); got != 0 {
		t.Errorf("server faults = %d, want 0", got)
	}
	for _, st := range []obs.Stage{obs.ServerReceive, obs.ServerDecode, obs.ServerHandler, obs.ServerEncode, obs.ServerSend} {
		if got := srvObs.StageSnapshot(st).Count; got != calls {
			t.Errorf("server stage %v count = %d, want %d", st, got, calls)
		}
	}
}

// Span ordering on the fault path: a handler error still yields the full,
// ordered client stage sequence, and the fault counts as a COMPLETED call
// (the transport demonstrably worked) plus a ClientFaults tick.
func TestSpanOrderingOnFaultPath(t *testing.T) {
	srv, srvObs := startObservedServer(t, func(_ context.Context, _ *core.Envelope) (*core.Envelope, error) {
		return nil, errors.New("handler refuses")
	})
	var mu sync.Mutex
	var order []obs.Stage
	cliObs := obs.New(obs.WithTrace(func(st obs.Stage, _ time.Duration) {
		mu.Lock()
		order = append(order, st)
		mu.Unlock()
	}))
	eng := core.NewEngine(core.BXSAEncoding{},
		tcpbind.New(tcpbind.NetDialer, srv.Addr().String()),
		core.WithObserver(cliObs))
	defer eng.Close()

	_, err := eng.Call(context.Background(), core.NewEnvelope())
	var f *core.Fault
	if !errors.As(err, &f) || f.Code != core.FaultServer {
		t.Fatalf("err = %v, want server fault", err)
	}

	want := []obs.Stage{obs.ClientEncode, obs.ClientSend, obs.ClientWait, obs.ClientDecode}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(want) {
		t.Fatalf("traced stages %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("stage %d = %v, want %v (full trace %v)", i, order[i], want[i], order)
		}
	}
	if c, fl, cf := cliObs.Counter(obs.CallsCompleted), cliObs.Counter(obs.CallsFailed), cliObs.Counter(obs.ClientFaults); c != 1 || fl != 0 || cf != 1 {
		t.Errorf("completed/failed/faults = %d/%d/%d, want 1/0/1", c, fl, cf)
	}
	if got := srvObs.Counter(obs.ServerFaults); got != 1 {
		t.Errorf("server faults = %d, want 1", got)
	}
}

// Counters balance on the hard-failure path: no peer, so the call fails —
// started == completed + failed still holds.
func TestCountersBalanceOnTransportFailure(t *testing.T) {
	o := obs.New()
	eng := core.NewEngine(core.BXSAEncoding{},
		tcpbind.New(tcpbind.NetDialer, "127.0.0.1:1"), // nothing listens here
		core.WithObserver(o))
	defer eng.Close()
	if _, err := eng.Call(context.Background(), core.NewEnvelope()); err == nil {
		t.Fatal("call to dead address succeeded")
	}
	started := o.Counter(obs.CallsStarted)
	if started == 0 || started != o.Counter(obs.CallsCompleted)+o.Counter(obs.CallsFailed) {
		t.Errorf("started %d != completed %d + failed %d",
			started, o.Counter(obs.CallsCompleted), o.Counter(obs.CallsFailed))
	}
}

// Understand must be callable while Serve is dispatching traffic (the
// pre-redesign implementation wrote the map unsynchronized; run under
// -race this is the regression test for that data race).
func TestUnderstandDuringServeIsRaceFree(t *testing.T) {
	srv, _ := startObservedServer(t, func(_ context.Context, _ *core.Envelope) (*core.Envelope, error) {
		return core.NewEnvelope(), nil
	})
	eng := core.NewEngine(core.BXSAEncoding{}, tcpbind.New(tcpbind.NetDialer, srv.Addr().String()))
	defer eng.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			srv.Dispatcher().Understand(bxdm.Name("urn:sec", "token"))
		}
	}()
	env := core.NewEnvelope()
	h := bxdm.NewElement(bxdm.Name("urn:sec", "token"))
	core.MarkMustUnderstand(h)
	env.AddHeader(h)
	for i := 0; i < 50; i++ {
		// Registration races the calls, so either outcome (fault before it
		// lands, success after) is legal — only the data race would fail.
		_, err := eng.Call(context.Background(), env)
		var f *core.Fault
		if err != nil && !errors.As(err, &f) {
			t.Fatalf("call %d: non-fault error %v", i, err)
		}
	}
	<-done
	// After the registrar finishes, the header must be understood.
	if _, err := eng.Call(context.Background(), env); err != nil {
		t.Fatalf("post-registration call: %v", err)
	}
}

// Close must cancel the context handlers run under: a handler parked on
// ctx.Done() unblocks when the server shuts down instead of leaking.
func TestCloseCancelsHandlerContext(t *testing.T) {
	entered := make(chan struct{})
	cancelled := make(chan error, 1)
	srv, _ := startObservedServer(t, func(ctx context.Context, _ *core.Envelope) (*core.Envelope, error) {
		close(entered)
		select {
		case <-ctx.Done():
			cancelled <- ctx.Err()
		case <-time.After(5 * time.Second):
			cancelled <- nil
		}
		return core.NewEnvelope(), nil
	})
	eng := core.NewEngine(core.BXSAEncoding{}, tcpbind.New(tcpbind.NetDialer, srv.Addr().String()))
	defer eng.Close()
	go eng.Call(context.Background(), core.NewEnvelope())

	<-entered
	closed := make(chan struct{})
	go func() { srv.Close(); close(closed) }()
	select {
	case err := <-cancelled:
		if err == nil {
			t.Fatal("handler context not cancelled by Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler still blocked after Close")
	}
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return")
	}
}

// Payload pool instrumentation: checkout hit/miss counters move and the
// in-use gauge balances back to zero with a high-water mark left behind.
func TestPayloadPoolObserver(t *testing.T) {
	o := obs.New()
	core.SetPayloadObserver(o)
	defer core.SetPayloadObserver(nil)

	const n = 3
	payloads := make([]*core.Payload, n)
	for i := range payloads {
		payloads[i] = core.NewPayload(512)
	}
	if got := o.Gauge(obs.PayloadsInUse); got != n {
		t.Errorf("in-use gauge = %d, want %d", got, n)
	}
	for _, p := range payloads {
		p.Release()
	}
	if got := o.Gauge(obs.PayloadsInUse); got != 0 {
		t.Errorf("in-use gauge after release = %d, want 0", got)
	}
	if got := o.GaugeHighWater(obs.PayloadsInUse); got < n {
		t.Errorf("in-use high water = %d, want ≥ %d", got, n)
	}
	if got := o.Counter(obs.PayloadPoolHits) + o.Counter(obs.PayloadPoolMisses); got != n {
		t.Errorf("hits+misses = %d, want %d", got, n)
	}
}
