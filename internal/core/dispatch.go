package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/obs"
)

// Dispatcher is the transport-independent half of a SOAP server: decode,
// mustUnderstand enforcement, handler invocation, and fault conversion,
// composed over an encoding policy. Server[E, B] drives one through its
// channel loop; transports with their own scheduling discipline (the
// muxbind bounded worker pool) drive the same dispatcher from their own
// goroutines, so every server-side entry point means the same thing by
// "dispatch" and protocol behavior cannot drift between transports.
type Dispatcher[E Encoding] struct {
	codec   Codec[E]
	handler Handler
	obs     *obs.Observer

	// understood is the set of header QNames this node can process;
	// mustUnderstand entries outside the set draw a MustUnderstand fault
	// (SOAP 1.1 §4.2.3). The map itself is immutable — Understand swaps in
	// a fresh copy under mu — so dispatch reads it without locking.
	mu         sync.Mutex
	understood atomic.Pointer[map[bxdm.QName]bool]
}

// NewDispatcher composes a dispatcher from an encoding policy, a handler,
// and server options (WithObserver and WithUnderstood apply; transport-side
// options such as WithErrorLog are ignored here and belong to the serving
// loop that owns the channels).
func NewDispatcher[E Encoding](enc E, h Handler, opts ...ServerOption) *Dispatcher[E] {
	var cfg serverConfig
	for _, opt := range opts {
		opt.applyServer(&cfg)
	}
	d := &Dispatcher[E]{
		codec:   NewCodec(enc),
		handler: h,
		obs:     cfg.obs,
	}
	if cfg.templates > 0 {
		if tc, ok := any(enc).(TemplateCompiler); ok {
			d.codec.plans = newPlanCache(tc, cfg.templates, cfg.obs)
		}
	}
	understood := make(map[bxdm.QName]bool, len(cfg.understood))
	for _, n := range cfg.understood {
		understood[bxdm.QName{Space: n.Space, Local: n.Local}] = true
	}
	d.understood.Store(&understood)
	return d
}

// Codec returns the dispatcher's serialization facade.
func (d *Dispatcher[E]) Codec() Codec[E] { return d.codec }

// Encoding returns the dispatcher's encoding policy.
func (d *Dispatcher[E]) Encoding() E { return d.codec.Encoding() }

// Observer returns the dispatcher's observability sink (nil when none was
// configured).
func (d *Dispatcher[E]) Observer() *obs.Observer { return d.obs }

// Understand registers additional header names this node processes. Safe
// to call while serving: the understood set is swapped atomically, and
// requests already dispatched keep the set they started with.
func (d *Dispatcher[E]) Understand(names ...bxdm.QName) {
	d.mu.Lock()
	defer d.mu.Unlock()
	old := *d.understood.Load()
	next := make(map[bxdm.QName]bool, len(old)+len(names))
	for k := range old {
		next[k] = true
	}
	for _, n := range names {
		next[bxdm.QName{Space: n.Space, Local: n.Local}] = true
	}
	d.understood.Store(&next)
}

// Dispatch decodes, enforces mustUnderstand, runs the handler, and converts
// errors to faults. It never fails: protocol problems become fault
// envelopes, which is what a SOAP node owes its peer. The span and hop are
// the caller's in-progress server-side trace; Dispatch marks the decode and
// handler stages into them and binds the wire trace context once decoded.
func (d *Dispatcher[E]) Dispatch(ctx context.Context, payload []byte, ct string, sp *obs.Span, hop *obs.Hop) *Envelope {
	d.obs.Inc(obs.ServerRequests)
	entry := sp.Total() // receive is behind us; busy time starts here
	if err := CheckContentType(d.codec.Encoding(), ct); err != nil {
		sp.Mark(obs.ServerDecode)
		d.obs.Inc(obs.ServerFaults)
		d.recordServerOp(opUndecodable, sp, hop, entry, true)
		return (&Fault{Code: FaultClient, String: err.Error()}).Envelope()
	}
	req, err := d.codec.DecodeEnvelope(payload)
	sp.Mark(obs.ServerDecode)
	if err != nil {
		d.obs.Inc(obs.ServerFaults)
		d.recordServerOp(opUndecodable, sp, hop, entry, true)
		return (&Fault{Code: FaultClient, String: fmt.Sprintf("cannot decode request: %v", err)}).Envelope()
	}
	return d.dispatchEnvelope(ctx, req, sp, hop, entry)
}

// DispatchStream is Dispatch in chunked terms: the request arrives as a
// chunk source and is decoded incrementally, so the handler can start as
// soon as the tree is complete without the bytes ever being gathered. A
// decode failure aborts the source (the transport marks its receive side
// desynchronized) and, like every other protocol problem, becomes a fault
// envelope — DispatchStream never fails. Encoding the response belongs to
// the caller, which owns the response-side sink.
func (d *Dispatcher[E]) DispatchStream(ctx context.Context, src ChunkSource, ct string, sp *obs.Span, hop *obs.Hop) *Envelope {
	d.obs.Inc(obs.ServerRequests)
	entry := sp.Total()
	if err := CheckContentType(d.codec.Encoding(), ct); err != nil {
		src.Abort()
		sp.Mark(obs.ServerDecode)
		d.obs.Inc(obs.ServerFaults)
		d.recordServerOp(opUndecodable, sp, hop, entry, true)
		return (&Fault{Code: FaultClient, String: err.Error()}).Envelope()
	}
	req, err := d.codec.DecodeChunks(src)
	sp.Mark(obs.ServerDecode)
	if err != nil {
		src.Abort()
		d.obs.Inc(obs.ServerFaults)
		d.recordServerOp(opUndecodable, sp, hop, entry, true)
		return (&Fault{Code: FaultClient, String: fmt.Sprintf("cannot decode request: %v", err)}).Envelope()
	}
	return d.dispatchEnvelope(ctx, req, sp, hop, entry)
}

// dispatchEnvelope is the decode-independent half of dispatch:
// mustUnderstand enforcement, handler invocation, and fault conversion,
// shared by the buffered and streamed entry points so protocol behavior is
// defined exactly once.
func (d *Dispatcher[E]) dispatchEnvelope(ctx context.Context, req *Envelope, sp *obs.Span, hop *obs.Hop, entry time.Duration) *Envelope {
	// The wire trace context (when the client sent one) places this hop on
	// the request path; an unbound hop self-roots at FinishHop.
	BindServerTrace(hop, req)
	var op string
	if d.obs.Dimensional() {
		op = OpName(req)
	}
	for _, h := range req.HeaderEntries {
		el, ok := h.(bxdm.ElementNode)
		if !ok || !mustUnderstand(el) {
			continue
		}
		name := el.ElemName()
		if !(*d.understood.Load())[bxdm.QName{Space: name.Space, Local: name.Local}] {
			d.obs.Inc(obs.ServerFaults)
			d.recordServerOp(op, sp, hop, entry, true)
			return (&Fault{
				Code:   FaultMustUnderstand,
				String: fmt.Sprintf("header %v not understood", name),
			}).Envelope()
		}
	}
	resp, err := d.handler(ctx, req)
	sp.Mark(obs.ServerHandler)
	if err != nil {
		d.obs.Inc(obs.ServerFaults)
		d.recordServerOp(op, sp, hop, entry, true)
		var f *Fault
		if errors.As(err, &f) {
			return f.Envelope()
		}
		return (&Fault{Code: FaultServer, String: err.Error()}).Envelope()
	}
	if resp == nil {
		resp = NewEnvelope()
	}
	d.recordServerOp(op, sp, hop, entry, false)
	return resp
}

// opUndecodable labels server-side dimensional samples whose request never
// yielded an operation name (bad content type, undecodable payload) — a
// constant so hostile garbage cannot mint series.
const opUndecodable = "(undecodable)"

// recordServerOp lands one dispatched request in the dimensional series for
// op, in every transport's server loop, because all of them funnel through
// the dispatcher. The latency is the dispatcher's busy time — decode
// through handler completion, measured as the span's growth since dispatch
// entry — so channel idle time (ServerReceive on persistent connections)
// and response encode/send never pollute the per-operation numbers. failed
// marks requests answered with a fault.
func (d *Dispatcher[E]) recordServerOp(op string, sp *obs.Span, hop *obs.Hop, entry time.Duration, failed bool) {
	if op == "" {
		return
	}
	d.obs.RecordOp(op, obs.RoleServer, sp.Total()-entry, failed, hop.Context().ID)
}

// DispatchPayload runs one full server-side exchange in payload terms:
// dispatch the request bytes, then encode the response into a pooled
// payload the caller owns (and must either release or hand to a
// transferring send). The request payload is borrowed — the caller keeps
// ownership and releases it after DispatchPayload returns.
//
//paylint:borrows
//paylint:returns owned
func (d *Dispatcher[E]) DispatchPayload(ctx context.Context, req *Payload, ct string, sp *obs.Span, hop *obs.Hop) (*Payload, error) {
	resp := d.Dispatch(ctx, req.Bytes(), ct, sp, hop)
	out, err := d.codec.EncodePayload(resp)
	sp.Mark(obs.ServerEncode)
	if err != nil {
		return nil, fmt.Errorf("encode response: %w", err)
	}
	return out, nil
}
