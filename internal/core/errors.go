package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
)

// ErrBindingPoisoned marks a binding whose underlying transport channel is
// desynchronized and must not carry further exchanges. Bindings return it
// (wrapped) from the failing operation onward; pool implementations retire
// the connection instead of handing it out again.
var ErrBindingPoisoned = errors.New("binding poisoned")

// TransportError classifies a failure of the binding layer — the message
// never made it across (or back across) the wire intact. It is distinct
// from a *Fault, which is the peer application answering "no": a fault
// proves the transport worked. Retry logic keys off this split; see
// IsTransportError.
type TransportError struct {
	// Op names the engine operation that failed: "send request",
	// "receive response", or "transport acknowledgement".
	Op  string
	Err error
}

// Error preserves the engine's historical message shape
// ("soap: <op>: <cause>").
func (e *TransportError) Error() string { return fmt.Sprintf("soap: %s: %v", e.Op, e.Err) }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *TransportError) Unwrap() error { return e.Err }

// classifyTransport wraps a binding failure as a *TransportError for the
// given engine operation — unless the binding already classified it, in
// which case the existing classification stands and the message stays
// single-wrapped.
func classifyTransport(op string, err error) error {
	var te *TransportError
	if errors.As(err, &te) {
		return err
	}
	return &TransportError{Op: op, Err: err}
}

// IsTransportError reports whether err is a transport-level failure — the
// kind a caller may retry on a fresh connection (for idempotent
// operations), as opposed to an application-level refusal (*Fault) or a
// payload problem (encode/decode errors), which would fail identically on
// any connection. A context.Canceled is deliberately excluded: it records
// the caller's own decision to stop, not peer health, so retrying it would
// override the user (it still Poisons the connection it interrupted).
func IsTransportError(err error) bool {
	if err == nil {
		return false
	}
	var f *Fault
	if errors.As(err, &f) {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	var te *TransportError
	if errors.As(err, &te) {
		return true
	}
	if errors.Is(err, ErrBindingPoisoned) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// Poisons reports whether err indicates the connection that produced it is
// no longer safe to reuse. Every transport error poisons: even when the
// bytes on the wire might technically still be framed (e.g. a deadline that
// expired before the first response byte), the response can arrive later
// and desynchronize the next exchange. Cancellation also poisons — the
// abandoned exchange leaves the stream mid-frame — even though it is not a
// retryable transport error. Application faults and decode errors arrive on
// a synchronized stream and do not poison.
func Poisons(err error) bool {
	return IsTransportError(err) || errors.Is(err, context.Canceled)
}
