package core_test

import (
	"bytes"
	"context"
	"log"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/core"
	"bxsoap/internal/tcpbind"
)

// TestOneWayMEPKeepsConnectionInSync: alternating Send (one-way) and Call
// (request-response) over one persistent TCP connection must not desync the
// stream.
func TestOneWayMEPKeepsConnectionInSync(t *testing.T) {
	var received atomic.Int64
	l, err := tcpbind.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := core.NewServer(core.BXSAEncoding{}, l,
		func(_ context.Context, req *core.Envelope) (*core.Envelope, error) {
			received.Add(1)
			return core.NewEnvelope(bxdm.NewLeaf(bxdm.LocalName("n"), received.Load())), nil
		})
	go srv.Serve()
	defer srv.Close()

	eng := core.NewEngine(core.BXSAEncoding{}, tcpbind.New(tcpbind.NetDialer, l.Addr().String()))
	defer eng.Close()

	env := core.NewEnvelope(bxdm.NewLeaf(bxdm.LocalName("x"), int32(1)))
	for i := 0; i < 3; i++ {
		if err := eng.Send(context.Background(), env); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
		resp, err := eng.Call(context.Background(), env)
		if err != nil {
			t.Fatalf("Call %d: %v", i, err)
		}
		// The Call's reply must be the freshest counter value, proving the
		// one-way exchange didn't leave a stale response in the stream.
		leaf := resp.Body().(*bxdm.LeafElement)
		if got, want := leaf.Value.Int64(), received.Load(); got != want {
			t.Fatalf("iteration %d: reply %d, server count %d — stream desynced", i, got, want)
		}
	}
	if received.Load() != 6 {
		t.Errorf("server saw %d messages, want 6", received.Load())
	}
}

// TestServerErrorLog: channel failures surface through ErrorLog.
func TestServerErrorLog(t *testing.T) {
	l, err := tcpbind.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var buf lockedBuffer
	srv := core.NewServer(core.BXSAEncoding{}, l,
		func(_ context.Context, req *core.Envelope) (*core.Envelope, error) {
			return core.NewEnvelope(), nil
		},
		core.WithErrorLog(log.New(&buf, "", 0)))
	go srv.Serve()
	defer srv.Close()

	// Write garbage that fails the frame magic check: the channel errors.
	conn, err := tcpbind.NetDialer(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("this is not a BX frame at all"))
	conn.Close()

	// Drive a healthy exchange to prove the server survived.
	eng := core.NewEngine(core.BXSAEncoding{}, tcpbind.New(tcpbind.NetDialer, l.Addr().String()))
	defer eng.Close()
	if _, err := eng.Call(context.Background(), core.NewEnvelope()); err != nil {
		t.Fatalf("server did not survive a bad channel: %v", err)
	}
	// The bad channel's goroutine logs asynchronously; poll rather than
	// assert at one racy instant.
	deadline := time.Now().Add(2 * time.Second)
	for buf.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if buf.Len() == 0 {
		t.Error("channel error not logged")
	}
}

// lockedBuffer is a mutex-guarded bytes.Buffer: the server's ErrorLog
// writes from channel goroutines while the test reads.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

// TestHandlerNilResponse: a nil, nil handler return produces an empty
// envelope, not a crash.
func TestHandlerNilResponse(t *testing.T) {
	l, err := tcpbind.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := core.NewServer(core.XMLEncoding{}, l,
		func(_ context.Context, _ *core.Envelope) (*core.Envelope, error) {
			return nil, nil
		})
	go srv.Serve()
	defer srv.Close()
	eng := core.NewEngine(core.XMLEncoding{}, tcpbind.New(tcpbind.NetDialer, l.Addr().String()))
	defer eng.Close()
	resp, err := eng.Call(context.Background(), core.NewEnvelope())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Body() != nil {
		t.Error("expected empty body")
	}
}
