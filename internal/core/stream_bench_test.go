package core

import (
	"errors"
	"fmt"
	"testing"

	"bxsoap/internal/bxdm"
)

// errFirstChunk stops a chunked encode the moment the first chunk is
// produced — the benchmark measures exactly the work standing between the
// caller and the first wire-ready byte.
var errFirstChunk = errors.New("first chunk produced")

type firstChunkSink struct{ n int }

func (s *firstChunkSink) WriteChunk(p *Payload, last bool) error {
	p.Release()
	s.n++
	return errFirstChunk
}

func (s *firstChunkSink) Abort() {}

// BenchmarkStreamFirstByte contrasts time-to-first-byte scaling: the
// buffered encoder must materialize the whole message before any byte can
// leave, so its first byte arrives in O(message); the chunked encoder
// hands over the first window after O(chunk) work regardless of message
// size. Compare streamed/n=... across sizes — the numbers should be flat —
// against buffered/n=..., which grow linearly.
func BenchmarkStreamFirstByte(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 18, 1 << 22} {
		items := make([]int32, n)
		for i := range items {
			items[i] = int32(i * 3)
		}
		env := NewEnvelope(bxdm.NewArray(bxdm.QName{Local: "a"}, items))
		codec := NewCodec(BXSAEncoding{})

		b.Run(fmt.Sprintf("buffered/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p, err := codec.EncodePayload(env)
				if err != nil {
					b.Fatal(err)
				}
				p.Release()
			}
		})
		b.Run(fmt.Sprintf("streamed/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			sink := &firstChunkSink{}
			for i := 0; i < b.N; i++ {
				if err := codec.EncodeChunks(env, DefaultChunkBytes, sink); !errors.Is(err, errFirstChunk) {
					b.Fatalf("encode stopped with %v, want first-chunk sentinel", err)
				}
			}
			if sink.n != b.N {
				b.Fatalf("sink saw %d chunks over %d iterations", sink.n, b.N)
			}
		})
	}
}
