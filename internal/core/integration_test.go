package core_test

import (
	"context"
	"fmt"

	"sync"
	"testing"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/core"
	"bxsoap/internal/httpbind"
	"bxsoap/internal/netsim"
	"bxsoap/internal/tcpbind"
)

// verifyHandler implements the paper's §6 verification service: it checks
// every value in the received model and reports the result.
func verifyHandler(_ context.Context, req *core.Envelope) (*core.Envelope, error) {
	body := req.Body()
	if body == nil {
		return nil, &core.Fault{Code: core.FaultClient, String: "empty body"}
	}
	el, ok := body.(*bxdm.Element)
	if !ok {
		return nil, &core.Fault{Code: core.FaultClient, String: "unexpected body shape"}
	}
	idxEl := el.FirstChild(bxdm.Name("urn:verify", "index"))
	valEl := el.FirstChild(bxdm.Name("urn:verify", "vals"))
	if idxEl == nil || valEl == nil {
		return nil, &core.Fault{Code: core.FaultClient, String: "missing arrays"}
	}
	idx, ok1 := bxdm.Items[int32](idxEl.(*bxdm.ArrayElement).Data)
	vals, ok2 := bxdm.Items[float64](valEl.(*bxdm.ArrayElement).Data)
	if !ok1 || !ok2 || len(idx) != len(vals) {
		return nil, &core.Fault{Code: core.FaultClient, String: "malformed arrays"}
	}
	verified := 0
	for i := range idx {
		if int(idx[i]) == i && vals[i] == float64(i)*0.5 {
			verified++
		}
	}
	resp := bxdm.NewElement(bxdm.Name("urn:verify", "result"),
		bxdm.NewLeaf(bxdm.Name("urn:verify", "verified"), int32(verified)),
		bxdm.NewLeaf(bxdm.Name("urn:verify", "total"), int32(len(idx))),
	)
	return core.NewEnvelope(resp), nil
}

func verifyRequest(n int) *core.Envelope {
	idx := make([]int32, n)
	vals := make([]float64, n)
	for i := range idx {
		idx[i] = int32(i)
		vals[i] = float64(i) * 0.5
	}
	req := bxdm.NewElement(bxdm.PName("urn:verify", "v", "verify"))
	req.DeclareNamespace("v", "urn:verify")
	req.Append(
		bxdm.NewArray(bxdm.Name("urn:verify", "index"), idx),
		bxdm.NewArray(bxdm.Name("urn:verify", "vals"), vals),
	)
	return core.NewEnvelope(req)
}

func checkResponse(t *testing.T, resp *core.Envelope, want int) {
	t.Helper()
	body := resp.Body().(*bxdm.Element)
	verified := body.FirstChild(bxdm.Name("urn:verify", "verified")).(*bxdm.LeafElement)
	total := body.FirstChild(bxdm.Name("urn:verify", "total")).(*bxdm.LeafElement)
	if verified.Value.Int64() != int64(want) || total.Value.Int64() != int64(want) {
		t.Fatalf("verified %d/%d, want %d/%d",
			verified.Value.Int64(), total.Value.Int64(), want, want)
	}
}

// The four policy combinations of §5: XML/HTTP, XML/TCP, BXSA/HTTP,
// BXSA/TCP — all through the same generic engine and server, over a shaped
// loopback network.
func TestAllFourPolicyCombinations(t *testing.T) {
	nw := netsim.New(netsim.Profile{Name: "fast-lan", RTT: 0})

	t.Run("BXSA-over-TCP", func(t *testing.T) {
		l, err := nw.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := core.NewServer(core.BXSAEncoding{}, tcpbind.NewListener(l), verifyHandler)
		go srv.Serve()
		defer srv.Close()
		eng := core.NewEngine(core.BXSAEncoding{}, tcpbind.New(nw.Dial, l.Addr().String()))
		defer eng.Close()
		resp, err := eng.Call(context.Background(), verifyRequest(100))
		if err != nil {
			t.Fatal(err)
		}
		checkResponse(t, resp, 100)
	})

	t.Run("XML-over-TCP", func(t *testing.T) {
		l, err := nw.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := core.NewServer(core.XMLEncoding{}, tcpbind.NewListener(l), verifyHandler)
		go srv.Serve()
		defer srv.Close()
		eng := core.NewEngine(core.XMLEncoding{}, tcpbind.New(nw.Dial, l.Addr().String()))
		defer eng.Close()
		resp, err := eng.Call(context.Background(), verifyRequest(100))
		if err != nil {
			t.Fatal(err)
		}
		checkResponse(t, resp, 100)
	})

	t.Run("XML-over-HTTP", func(t *testing.T) {
		l, err := nw.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		hl := httpbind.NewListener(l)
		srv := core.NewServer(core.XMLEncoding{}, hl, verifyHandler)
		go srv.Serve()
		defer srv.Close()
		eng := core.NewEngine(core.XMLEncoding{}, httpbind.New(nw.Dial, hl.URL()))
		defer eng.Close()
		resp, err := eng.Call(context.Background(), verifyRequest(100))
		if err != nil {
			t.Fatal(err)
		}
		checkResponse(t, resp, 100)
	})

	t.Run("BXSA-over-HTTP", func(t *testing.T) {
		l, err := nw.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		hl := httpbind.NewListener(l)
		srv := core.NewServer(core.BXSAEncoding{}, hl, verifyHandler)
		go srv.Serve()
		defer srv.Close()
		eng := core.NewEngine(core.BXSAEncoding{}, httpbind.New(nw.Dial, hl.URL()))
		defer eng.Close()
		resp, err := eng.Call(context.Background(), verifyRequest(100))
		if err != nil {
			t.Fatal(err)
		}
		checkResponse(t, resp, 100)
	})
}

func TestSequentialCallsReuseTCPConnection(t *testing.T) {
	l, err := tcpbind.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := core.NewServer(core.BXSAEncoding{}, l, verifyHandler)
	go srv.Serve()
	defer srv.Close()
	eng := core.NewEngine(core.BXSAEncoding{}, tcpbind.New(tcpbind.NetDialer, l.Addr().String()))
	defer eng.Close()
	for i := 1; i <= 10; i++ {
		resp, err := eng.Call(context.Background(), verifyRequest(i))
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		checkResponse(t, resp, i)
	}
}

func TestConcurrentClients(t *testing.T) {
	l, err := tcpbind.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := core.NewServer(core.BXSAEncoding{}, l, verifyHandler)
	go srv.Serve()
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := core.NewEngine(core.BXSAEncoding{}, tcpbind.New(tcpbind.NetDialer, l.Addr().String()))
			defer eng.Close()
			for i := 0; i < 5; i++ {
				resp, err := eng.Call(context.Background(), verifyRequest(50))
				if err != nil {
					errs <- err
					return
				}
				body := resp.Body().(*bxdm.Element)
				v := body.FirstChild(bxdm.Name("urn:verify", "verified")).(*bxdm.LeafElement)
				if v.Value.Int64() != 50 {
					errs <- fmt.Errorf("verified = %d", v.Value.Int64())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestFaultOverHTTPBinding(t *testing.T) {
	hl, err := httpbind.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := core.NewServer(core.XMLEncoding{}, hl, func(_ context.Context, _ *core.Envelope) (*core.Envelope, error) {
		return nil, &core.Fault{Code: core.FaultServer, String: "boom"}
	})
	go srv.Serve()
	defer srv.Close()
	eng := core.NewEngine(core.XMLEncoding{}, httpbind.New(nil, hl.URL()))
	defer eng.Close()
	_, err = eng.Call(context.Background(), verifyRequest(1))
	f, ok := err.(*core.Fault)
	if !ok || f.Code != core.FaultServer || f.String != "boom" {
		t.Fatalf("err = %v, want server fault through HTTP 500", err)
	}
}

// TestIntermediaryTranscoding reproduces §5.1's intermediary scenario: the
// client speaks XML/HTTP to an intermediary node, which relays the message
// over BXSA/TCP to the real server — "transcodability enables BXSA to be
// the intermediate protocol over the message hops, even when the message
// sender and receiver are communicating via textual XML."
func TestIntermediaryTranscoding(t *testing.T) {
	// Backend: BXSA over TCP.
	bl, err := tcpbind.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	backend := core.NewServer(core.BXSAEncoding{}, bl, verifyHandler)
	go backend.Serve()
	defer backend.Close()

	// Intermediary: XML/HTTP uplink, BXSA/TCP downlink — two generic
	// engines with different policy configurations, as §5.1 prescribes.
	hl, err := httpbind.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	relayHandler := func(ctx context.Context, req *core.Envelope) (*core.Envelope, error) {
		down := core.NewEngine(core.BXSAEncoding{}, tcpbind.New(tcpbind.NetDialer, bl.Addr().String()))
		defer down.Close()
		return down.Call(ctx, req)
	}
	relay := core.NewServer(core.XMLEncoding{}, hl, relayHandler)
	go relay.Serve()
	defer relay.Close()

	// Client: XML over HTTP, oblivious to the binary middle hop.
	eng := core.NewEngine(core.XMLEncoding{}, httpbind.New(nil, hl.URL()))
	defer eng.Close()
	resp, err := eng.Call(context.Background(), verifyRequest(64))
	if err != nil {
		t.Fatal(err)
	}
	checkResponse(t, resp, 64)
}

func TestServerCloseUnblocksServe(t *testing.T) {
	l, err := tcpbind.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := core.NewServer(core.BXSAEncoding{}, l, verifyHandler)
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	eng := core.NewEngine(core.BXSAEncoding{}, tcpbind.New(tcpbind.NetDialer, l.Addr().String()))
	if _, err := eng.Call(context.Background(), verifyRequest(3)); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v after Close", err)
	}
}
