package core_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"testing"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/core"
	"bxsoap/internal/tcpbind"
)

func TestIsTransportErrorClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"transport wrapper", &core.TransportError{Op: "send request", Err: io.EOF}, true},
		{"wrapped transport wrapper", fmt.Errorf("x: %w", &core.TransportError{Op: "receive response", Err: io.EOF}), true},
		{"poisoned", fmt.Errorf("tcpbind: %w", core.ErrBindingPoisoned), true},
		{"eof", io.EOF, true},
		{"unexpected eof", io.ErrUnexpectedEOF, true},
		{"deadline", context.DeadlineExceeded, true},
		{"canceled", context.Canceled, false},
		{"wrapped canceled", &core.TransportError{Op: "receive response", Err: context.Canceled}, false},
		{"soap fault", &core.Fault{Code: core.FaultServer, String: "no"}, false},
		{"decode error", errors.New("soap: decode response: bad byte"), false},
	}
	for _, c := range cases {
		if got := core.IsTransportError(c.err); got != c.want {
			t.Errorf("IsTransportError(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestPoisonsIncludesCancellation: a deliberate cancellation is not a
// retryable transport error (the user said stop), yet the exchange it
// abandoned leaves the connection mid-frame, so it must still poison.
func TestPoisonsIncludesCancellation(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"canceled", context.Canceled, true},
		{"wrapped canceled", &core.TransportError{Op: "receive response", Err: context.Canceled}, true},
		{"deadline", context.DeadlineExceeded, true},
		{"eof", io.EOF, true},
		{"soap fault", &core.Fault{Code: core.FaultServer, String: "no"}, false},
		{"decode error", errors.New("soap: decode response: bad byte"), false},
	}
	for _, c := range cases {
		if got := core.Poisons(c.err); got != c.want {
			t.Errorf("Poisons(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestSendClassifiesFaultAck: a one-way Send whose acknowledgement carries
// a SOAP fault returns the *Fault — an application outcome — while the
// engine's transport failures come back as *TransportError. Retry layers
// key off exactly this split.
func TestSendClassifiesFaultAck(t *testing.T) {
	l, err := tcpbind.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := core.NewServer(core.BXSAEncoding{}, l,
		func(_ context.Context, req *core.Envelope) (*core.Envelope, error) {
			return nil, &core.Fault{Code: core.FaultClient, String: "rejected"}
		})
	go srv.Serve()
	defer srv.Close()

	eng := core.NewEngine(core.BXSAEncoding{}, tcpbind.New(tcpbind.NetDialer, l.Addr().String()))
	defer eng.Close()
	err = eng.Send(context.Background(), core.NewEnvelope(bxdm.NewLeaf(bxdm.LocalName("x"), int32(1))))
	var f *core.Fault
	if !errors.As(err, &f) {
		t.Fatalf("want *core.Fault from fault ack, got %v", err)
	}
	if core.IsTransportError(err) {
		t.Error("fault ack misclassified as transport error")
	}
	if f.Code != core.FaultClient || f.String != "rejected" {
		t.Errorf("fault = %+v", f)
	}

	// Transport direction: a dead peer yields a *TransportError.
	srv.Close()
	eng2 := core.NewEngine(core.BXSAEncoding{}, tcpbind.New(tcpbind.NetDialer, l.Addr().String()))
	defer eng2.Close()
	err = eng2.Send(context.Background(), core.NewEnvelope())
	if err == nil || !core.IsTransportError(err) {
		t.Fatalf("want transport-class error against closed server, got %v", err)
	}
}
