package core

// Schema-compiled encode/decode plans (ROADMAP item 2). The generic engine
// builds and walks a bXDM tree for every message, but production traffic is
// a handful of message *shapes* repeated millions of times — the paper's
// TerraService regime, where schema knowledge (XBS) is what lets a stack
// skip generic work on the hot path. The plan cache realizes that: the
// first message of a shape is encoded generically and compiled into a
// byte-level Template (skeleton + variable windows for BXSA, static
// segments for XML) plus a decoded shape.Proto; every later same-shaped
// message is a skeleton splice on encode and a segment match + arena
// instantiation on decode. Everything here is best-effort: any
// fingerprint, compile, splice, or match failure falls back to the generic
// tree walk with zero behavior change, which is what keeps wssec-wrapped
// and trace-stamped messages round-tripping bit-identically.
//
// Cache keying accepts the ~2^-128 collision probability of the 128-bit
// shape fingerprint (see DESIGN.md "Schema-compiled plans").

import (
	"bytes"
	"sync"
	"sync/atomic"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/obs"
	"bxsoap/internal/shape"
)

// Template is a compiled encode/decode plan for one message shape, as
// produced by an encoding's TemplateCompiler. Implementations must be
// immutable and safe for concurrent use.
type Template interface {
	// AppendEncode appends an encoding of the shape with the given
	// variable values (in shape.Fingerprint order) to dst. The output
	// must be byte-identical to the generic encode of the corresponding
	// envelope; any input the template cannot render faithfully must be
	// an error, upon which the caller falls back to the generic encoder.
	AppendEncode(dst []byte, vars []shape.Var) ([]byte, error)
	// Match reports whether data is an encoding of this shape and, if
	// so, appends the decoded variable values to *vars. A false return
	// means only "not provably this shape" — the caller tries other
	// plans, then the generic decoder.
	Match(data []byte, vars *[]shape.Var) bool
}

// TemplateCompiler is the optional plan-compiling interface an Encoding
// may implement (BXSAEncoding and XMLEncoding do; wssec.Secured
// deliberately does not, so secured messages always take the generic
// path). CompileTemplate compiles a plan from a representative document;
// encodings that cannot support plans for their configuration (e.g.
// hintless XML) return an error.
type TemplateCompiler interface {
	CompileTemplate(doc *bxdm.Document) (Template, error)
}

// planEntry is one cached shape. tmpl == nil marks a negative entry: the
// shape is known, compilation or validation failed, and every message of
// it takes the generic path without repaying the compile cost.
type planEntry struct {
	key     shape.Key
	tmpl    Template
	proto   *shape.Proto
	lastUse atomic.Int64 // logical clock ticks, for LRU eviction
}

// planCache is a bounded, copy-on-write, shape-keyed template cache. The
// read path loads an immutable map snapshot with one atomic load; inserts
// and evictions clone under mu. All methods are nil-receiver safe so a
// codec without plans stays on the generic path at zero cost, and the
// observer honors the obs nil-sink contract.
//
//paylint:nil-sink planCache
type planCache struct {
	compiler TemplateCompiler
	capacity int
	obs      *obs.Observer
	clock    atomic.Int64
	entries  atomic.Pointer[map[shape.Key]*planEntry]
	mu       sync.Mutex
	varsPool sync.Pool
}

func newPlanCache(tc TemplateCompiler, capacity int, o *obs.Observer) *planCache {
	if capacity <= 0 {
		capacity = 64
	}
	return &planCache{compiler: tc, capacity: capacity, obs: o}
}

func (pc *planCache) getVars() *[]shape.Var {
	if v, ok := pc.varsPool.Get().(*[]shape.Var); ok {
		*v = (*v)[:0]
		return v
	}
	v := make([]shape.Var, 0, 16)
	return &v
}

func (pc *planCache) putVars(v *[]shape.Var) {
	for i := range *v {
		(*v)[i] = shape.Var{} // drop references into message trees
	}
	*v = (*v)[:0]
	pc.varsPool.Put(v)
}

// lookup returns the entry for key, updating its recency.
func (pc *planCache) lookup(key shape.Key) *planEntry {
	if pc == nil {
		return nil
	}
	m := pc.entries.Load()
	if m == nil {
		return nil
	}
	e := (*m)[key]
	if e != nil {
		e.lastUse.Store(pc.clock.Add(1))
	}
	return e
}

// store inserts entry, evicting the least-recently-used plans while over
// capacity. A concurrently stored entry for the same key wins.
func (pc *planCache) store(entry *planEntry) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	var cur map[shape.Key]*planEntry
	if m := pc.entries.Load(); m != nil {
		cur = *m
	}
	if _, ok := cur[entry.key]; ok {
		return
	}
	next := make(map[shape.Key]*planEntry, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	for len(next) >= pc.capacity {
		var victim *planEntry
		for _, v := range next {
			if victim == nil || v.lastUse.Load() < victim.lastUse.Load() {
				victim = v
			}
		}
		delete(next, victim.key)
		pc.obs.Inc(obs.TemplateEvictions)
		pc.obs.GaugeAdd(obs.TemplatePlans, -1)
	}
	next[entry.key] = entry
	pc.entries.Store(&next)
	pc.obs.GaugeAdd(obs.TemplatePlans, 1)
}

// compile builds the plan for key from a representative envelope and
// stores it; on any failure it stores a negative entry instead, so the
// attempt is never repaid per message. The compiled plan is validated
// before use: the template must re-encode the representative byte-for-byte
// from its fingerprint vars, and its Match + Proto.Instantiate must
// reproduce exactly the tree the generic decoder yields for the skeleton.
// That validation is what makes every parser normalization subtlety
// (entity expansion, whitespace drops, hint stripping) a compile-time
// rejection instead of a wrong tree at runtime.
func (pc *planCache) compile(enc Encoding, key shape.Key, env *Envelope) {
	if pc == nil {
		return
	}
	entry := &planEntry{key: key}
	entry.lastUse.Store(pc.clock.Add(1))
	pc.obs.Inc(obs.TemplateCompiles)
	defer pc.store(entry)

	doc := env.Document()
	tmpl, err := pc.compiler.CompileTemplate(doc)
	if err != nil {
		return
	}
	skel, err := enc.AppendEncode(nil, doc)
	if err != nil {
		return
	}
	// Encode validation: fingerprint vars of the representative must
	// splice back into exactly the generic encoding.
	var vars []shape.Var
	if _, ok := shape.Fingerprint(env.HeaderEntries, env.BodyChildren, &vars); !ok {
		return
	}
	out, err := tmpl.AppendEncode(nil, vars)
	if err != nil || !bytes.Equal(out, skel) {
		return
	}
	// Decode validation: the prototype is built from the *generic decode*
	// of the skeleton (not the original tree), so instantiated envelopes
	// inherit every normalization the parser applies.
	protoDoc, err := enc.Decode(skel)
	if err != nil {
		return
	}
	protoEnv, err := EnvelopeFromDocument(protoDoc)
	if err != nil {
		return
	}
	proto, err := shape.NewProto(protoEnv.HeaderEntries, protoEnv.BodyChildren)
	if err != nil {
		return
	}
	vars = vars[:0]
	if !tmpl.Match(skel, &vars) {
		return
	}
	h, b, err := proto.Instantiate(vars)
	if err != nil {
		return
	}
	if !(&Envelope{HeaderEntries: h, BodyChildren: b}).Equal(protoEnv) {
		return
	}
	entry.tmpl, entry.proto = tmpl, proto
}

// matchDecode tries every compiled plan against data, returning the
// instantiated envelope on a match. Templates reject foreign shapes in
// O(1) for BXSA (length check) and O(first segment) for XML, so the scan
// over a bounded cache stays cheap.
func (pc *planCache) matchDecode(data []byte) *Envelope {
	if pc == nil {
		return nil
	}
	m := pc.entries.Load()
	if m == nil {
		return nil
	}
	vp := pc.getVars()
	for _, e := range *m {
		if e.tmpl == nil {
			continue
		}
		*vp = (*vp)[:0]
		if !e.tmpl.Match(data, vp) {
			continue
		}
		h, b, err := e.proto.Instantiate(*vp)
		pc.putVars(vp)
		if err != nil {
			return nil
		}
		e.lastUse.Store(pc.clock.Add(1))
		pc.obs.Inc(obs.TemplateHits)
		return &Envelope{HeaderEntries: h, BodyChildren: b}
	}
	pc.putVars(vp)
	return nil
}

// observeDecoded learns shapes from the decode side: after a generic
// decode, an unknown shape is compiled from the decoded envelope so the
// next message of it matches. Called off the decode result, so the
// envelope is still exclusively owned here.
func (pc *planCache) observeDecoded(enc Encoding, env *Envelope) {
	if pc == nil {
		return
	}
	vp := pc.getVars()
	key, ok := shape.Fingerprint(env.HeaderEntries, env.BodyChildren, vp)
	pc.putVars(vp)
	if !ok {
		return
	}
	if pc.lookup(key) != nil {
		return
	}
	pc.compile(enc, key, env)
}

func (pc *planCache) hit() {
	if pc != nil {
		pc.obs.Inc(obs.TemplateHits)
	}
}

func (pc *planCache) miss() {
	if pc != nil {
		pc.obs.Inc(obs.TemplateMisses)
	}
}

// Plans reports how many shapes are currently cached (negative entries
// included). Diagnostics only.
func (pc *planCache) plans() int {
	if pc == nil {
		return 0
	}
	m := pc.entries.Load()
	if m == nil {
		return 0
	}
	return len(*m)
}
