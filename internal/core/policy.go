package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/bxsa"
	"bxsoap/internal/shape"
	"bxsoap/internal/xbs"
	"bxsoap/internal/xmltext"
)

// Encoding is the encoding policy concept (paper §5.2): a serializer and a
// factory for the bXDM model. Two models ship by default — XMLEncoding and
// BXSAEncoding — and any type satisfying the interface can be plugged in as
// the E parameter of Engine/Server (wssec.Secured wraps one to add a
// signature, demonstrating policy composition).
type Encoding interface {
	// Name identifies the policy in logs and the experiment tables.
	Name() string
	// ContentType is the MIME type the binding should advertise.
	ContentType() string
	// Encode serializes a bXDM document (the visitor direction).
	Encode(w io.Writer, doc *bxdm.Document) error
	// AppendEncode serializes doc by appending to dst, returning the
	// extended slice. This is the pipeline's zero-copy path: the engine
	// hands in a pooled payload buffer and the codec fills it in place,
	// with no intermediate bytes.Buffer.
	AppendEncode(dst []byte, doc *bxdm.Document) ([]byte, error)
	// Decode parses an encoded document back into bXDM (the factory
	// direction). The input bytes are not retained: callers may recycle
	// the buffer as soon as Decode returns.
	Decode(data []byte) (*bxdm.Document, error)
	// DecodeFrom parses one encoded document from r. size is the encoded
	// length when the transport knows it (Content-Length, frame header),
	// -1 otherwise; implementations use it to draw a right-sized pooled
	// buffer instead of ReadAll-style doubling.
	DecodeFrom(r io.Reader, size int64) (*bxdm.Document, error)
}

// XMLEncoding is the textual XML 1.0 encoding policy. Type hints are always
// emitted so typed bXDM trees survive the lexical round trip (SOAP encoding
// rules, paper §4.2).
type XMLEncoding struct {
	// PlainStrings disables xsi:type/arrayType emission; leaf and array
	// nodes then serialize as plain elements. Used by the Table 1 scenario
	// where the paper measures namespace-free minimal XML.
	PlainStrings bool
}

// Name implements Encoding.
func (XMLEncoding) Name() string { return "XML" }

// ContentType implements Encoding.
func (XMLEncoding) ContentType() string { return "text/xml; charset=utf-8" }

// Encode implements Encoding.
func (x XMLEncoding) Encode(w io.Writer, doc *bxdm.Document) error {
	return xmltext.Encode(w, doc, xmltext.EncodeOptions{TypeHints: !x.PlainStrings})
}

// AppendEncode implements Encoding.
func (x XMLEncoding) AppendEncode(dst []byte, doc *bxdm.Document) ([]byte, error) {
	return xmltext.AppendEncode(dst, doc, xmltext.EncodeOptions{TypeHints: !x.PlainStrings})
}

// Decode implements Encoding.
func (x XMLEncoding) Decode(data []byte) (*bxdm.Document, error) {
	return xmltext.Parse(data, xmltext.DecodeOptions{
		RecoverTypes:               !x.PlainStrings,
		DropInterElementWhitespace: true,
	})
}

// DecodeFrom implements Encoding.
func (x XMLEncoding) DecodeFrom(r io.Reader, size int64) (*bxdm.Document, error) {
	return decodeStream(x, r, size)
}

// CompileTemplate implements TemplateCompiler. Hintless XML (PlainStrings)
// cannot rebuild typed trees on decode, so it declines and keeps the
// generic path.
func (x XMLEncoding) CompileTemplate(doc *bxdm.Document) (Template, error) {
	t, err := xmltext.CompileTemplate(doc, xmltext.EncodeOptions{TypeHints: !x.PlainStrings})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// BXSAEncoding is the binary XML encoding policy.
type BXSAEncoding struct {
	Order xbs.ByteOrder
}

// Name implements Encoding.
func (BXSAEncoding) Name() string { return "BXSA" }

// ContentType implements Encoding.
func (BXSAEncoding) ContentType() string { return "application/x-bxsa" }

// Encode implements Encoding.
func (b BXSAEncoding) Encode(w io.Writer, doc *bxdm.Document) error {
	return bxsa.Encode(w, doc, bxsa.EncodeOptions{Order: b.Order})
}

// AppendEncode implements Encoding. BXSA measures before it emits, so the
// destination is grown to the exact encoded size in one step.
func (b BXSAEncoding) AppendEncode(dst []byte, doc *bxdm.Document) ([]byte, error) {
	return bxsa.MarshalAppend(dst, doc, bxsa.EncodeOptions{Order: b.Order})
}

// Decode implements Encoding.
func (BXSAEncoding) Decode(data []byte) (*bxdm.Document, error) {
	return bxsa.ParseDocument(data)
}

// DecodeFrom implements Encoding.
func (b BXSAEncoding) DecodeFrom(r io.Reader, size int64) (*bxdm.Document, error) {
	return decodeStream(b, r, size)
}

// CompileTemplate implements TemplateCompiler: BXSA's shape-deterministic
// layout compiles to a fixed-window skeleton splice.
func (b BXSAEncoding) CompileTemplate(doc *bxdm.Document) (Template, error) {
	t, err := bxsa.CompileTemplate(doc, bxsa.EncodeOptions{Order: b.Order})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// decodeStream is the shared DecodeFrom shape for encodings whose parsers
// want the whole message in memory: read into a pooled payload sized by the
// transport's length knowledge, decode, release. Both shipped parsers copy
// what they keep out of the input, so the buffer can recycle immediately.
func decodeStream(enc Encoding, r io.Reader, size int64) (*bxdm.Document, error) {
	p, err := ReadPayload(r, size, 0)
	if err != nil {
		return nil, err
	}
	doc, err := enc.Decode(p.Bytes())
	p.Release()
	return doc, err
}

// sizeHints carries a per-encoding running estimate of encoded message
// size (keyed by Name()), so EncodePayload can draw a right-sized pooled
// buffer before the document's size is known. The estimate decays by a
// quarter between observations and snaps up to any larger message, so it
// tracks the recent peak without growing monotonically.
var sizeHints sync.Map // string -> *atomic.Int64

func sizeHintFor(name string) int {
	if v, ok := sizeHints.Load(name); ok {
		return int(v.(*atomic.Int64).Load())
	}
	return 0
}

func recordSizeHint(name string, n int) {
	v, ok := sizeHints.Load(name)
	if !ok {
		v, _ = sizeHints.LoadOrStore(name, new(atomic.Int64))
	}
	a := v.(*atomic.Int64)
	est := a.Load()
	est -= est / 4
	if int64(n) > est {
		est = int64(n)
	}
	a.Store(est)
}

// Codec is the envelope-level serialization facade over an Encoding: every
// conversion between *Envelope and wire bytes — pooled-payload encode,
// plain-bytes encode, decode — lives here under one documented API, so the
// engines, bindings, svcpool, and the obs stage names all mean the same
// operation when they say "encode" or "decode". The type parameter keeps
// the paper's compile-time policy binding: a Codec[BXSAEncoding] calls the
// concrete encoder directly, monomorphized and inlinable.
//
// plans is a pointer so the cache survives the by-value copies handed out
// by Engine.Codec()/Dispatcher.Codec(); nil (the default) keeps every call
// on the generic path.
type Codec[E Encoding] struct {
	enc   E
	plans *planCache
}

// NewCodec builds the facade over enc.
func NewCodec[E Encoding](enc E) Codec[E] { return Codec[E]{enc: enc} }

// Encoding returns the underlying encoding policy.
func (c Codec[E]) Encoding() E { return c.enc }

// ContentType returns the MIME type the binding should advertise.
func (c Codec[E]) ContentType() string { return c.enc.ContentType() }

// EncodePayload serializes an envelope into a pooled payload via the
// encoding's append path. BXSA grows the buffer to its exact measured size;
// XML relies on the running per-encoding estimate to make reallocation the
// exception. With a template cache attached, envelopes of a previously
// compiled shape skip the tree walk: variable leaves are spliced straight
// into the cached skeleton. The caller owns the payload and must Release
// it.
//
//paylint:returns owned
func (c Codec[E]) EncodePayload(e *Envelope) (*Payload, error) {
	if c.plans == nil {
		return c.encodeGeneric(e)
	}
	return c.encodeTemplated(e)
}

// encodeGeneric is the tree-walking encode path.
//
//paylint:returns owned
func (c Codec[E]) encodeGeneric(e *Envelope) (*Payload, error) {
	name := c.enc.Name()
	p := NewPayload(sizeHintFor(name))
	out, err := c.enc.AppendEncode(p.buf, e.Document())
	if err != nil {
		p.Release()
		return nil, err
	}
	p.buf = out
	recordSizeHint(name, len(out))
	return p, nil
}

// encodeTemplated consults the plan cache before falling back to the
// generic walk. Cache misses encode generically first (so a compile
// failure costs nothing extra) and compile the shape afterwards; splice
// errors demote to the generic path for this call only.
//
//paylint:returns owned
func (c Codec[E]) encodeTemplated(e *Envelope) (*Payload, error) {
	pc := c.plans
	vp := pc.getVars()
	key, ok := shape.Fingerprint(e.HeaderEntries, e.BodyChildren, vp)
	if !ok {
		pc.putVars(vp)
		pc.miss()
		return c.encodeGeneric(e)
	}
	if entry := pc.lookup(key); entry != nil {
		if entry.tmpl != nil {
			name := c.enc.Name()
			p := NewPayload(sizeHintFor(name))
			out, err := entry.tmpl.AppendEncode(p.buf, *vp)
			pc.putVars(vp)
			if err == nil {
				p.buf = out
				recordSizeHint(name, len(out))
				pc.hit()
				return p, nil
			}
			p.Release()
		} else {
			pc.putVars(vp)
		}
		pc.miss()
		return c.encodeGeneric(e)
	}
	pc.putVars(vp)
	pc.miss()
	p, err := c.encodeGeneric(e)
	if err == nil {
		pc.compile(c.enc, key, e)
	}
	return p, err
}

// EncodeBytes serializes an envelope into a fresh byte slice (the
// non-pooled path, for callers that keep the bytes).
func (c Codec[E]) EncodeBytes(e *Envelope) ([]byte, error) {
	var buf bytes.Buffer
	if err := c.enc.Encode(&buf, e.Document()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeEnvelope parses encoded bytes back into an envelope. The input is
// not retained; callers may recycle the buffer as soon as it returns. With
// a template cache attached, bytes matching a compiled shape are decoded
// by window extraction and prototype instantiation instead of a full
// parse; unmatched bytes take the generic parser and teach the cache their
// shape for next time.
func (c Codec[E]) DecodeEnvelope(data []byte) (*Envelope, error) {
	if c.plans != nil {
		if env := c.plans.matchDecode(data); env != nil {
			return env, nil
		}
	}
	doc, err := c.enc.Decode(data)
	if err != nil {
		return nil, err
	}
	env, err := EnvelopeFromDocument(doc)
	if err == nil && c.plans != nil {
		c.plans.miss()
		c.plans.observeDecoded(c.enc, env)
	}
	return env, err
}

// DecodePayload parses a payload's bytes back into an envelope. The
// payload is borrowed: ownership stays with the caller.
//
//paylint:borrows
func (c Codec[E]) DecodePayload(p *Payload) (*Envelope, error) {
	return c.DecodeEnvelope(p.Bytes())
}

// Binding is the client-side binding policy concept (paper §5.3): it
// carries serialized SOAP messages over an underlying protocol. The four
// valid expressions match the paper's list — send_request,
// receive_response on this interface; receive_request, send_response on the
// server-side Channel.
type Binding interface {
	// SendRequest transmits one serialized SOAP message. The binding
	// borrows payload for the duration of the call and must not retain
	// it past returning (Retain first if the transport writes
	// asynchronously); the caller keeps ownership, so a pooled request
	// can be reused across retries.
	//
	//paylint:borrows
	SendRequest(ctx context.Context, payload *Payload, contentType string) error
	// ReceiveResponse blocks for the reply to the last request. Ownership
	// of the returned payload transfers to the caller, which must Release
	// it after decoding. Bindings used for one-way MEPs never have
	// ReceiveResponse called.
	//
	//paylint:returns owned
	ReceiveResponse(ctx context.Context) (payload *Payload, contentType string, err error)
	// Close releases the underlying transport.
	Close() error
}

// ServerBinding accepts transport channels on the server side.
type ServerBinding interface {
	// Accept blocks for the next transport channel (e.g. a TCP connection
	// or an HTTP request slot).
	Accept() (Channel, error)
	// Addr reports the bound address for clients to dial.
	Addr() net.Addr
	// Close stops accepting.
	Close() error
}

// Channel is one server-side message exchange sequence.
type Channel interface {
	// ReceiveRequest blocks for the next request on this channel; it
	// returns io.EOF when the peer is done. Ownership of the returned
	// payload transfers to the caller.
	//
	//paylint:returns owned
	ReceiveRequest(ctx context.Context) (payload *Payload, contentType string, err error)
	// SendResponse replies to the request just received. It takes
	// ownership of payload and releases it once written (possibly
	// asynchronously), on success or failure.
	//
	//paylint:transfers
	SendResponse(payload *Payload, contentType string) error
	// Close tears the channel down.
	Close() error
}

// CheckContentType verifies that the peer's content type matches the
// engine's encoding policy (a mismatch means the two sides were composed
// with different policies). Comparison is on the media type alone —
// parameters such as charset, surrounding whitespace, and letter case are
// all insignificant per RFC 2045 §5.1.
func CheckContentType(enc Encoding, got string) error {
	want := enc.ContentType()
	if got == "" || got == want {
		return nil
	}
	if mediaType(got) == mediaType(want) {
		return nil
	}
	return fmt.Errorf("soap: content type %q does not match encoding %s (%q)", got, enc.Name(), want)
}

// mediaType extracts the lowercased, whitespace-trimmed media type from a
// Content-Type value, dropping any parameters.
func mediaType(ct string) string {
	for i := 0; i < len(ct); i++ {
		if ct[i] == ';' {
			ct = ct[:i]
			break
		}
	}
	start, end := 0, len(ct)
	for start < end && (ct[start] == ' ' || ct[start] == '\t') {
		start++
	}
	for end > start && (ct[end-1] == ' ' || ct[end-1] == '\t') {
		end--
	}
	ct = ct[start:end]
	lower := ct
	for i := 0; i < len(ct); i++ {
		if c := ct[i]; 'A' <= c && c <= 'Z' {
			b := []byte(ct)
			for j := i; j < len(b); j++ {
				if 'A' <= b[j] && b[j] <= 'Z' {
					b[j] += 'a' - 'A'
				}
			}
			lower = string(b)
			break
		}
	}
	return lower
}
