package core

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/bxsa"
	"bxsoap/internal/xbs"
	"bxsoap/internal/xmltext"
)

// Encoding is the encoding policy concept (paper §5.2): a serializer and a
// factory for the bXDM model. Two models ship by default — XMLEncoding and
// BXSAEncoding — and any type satisfying the interface can be plugged in as
// the E parameter of Engine/Server (wssec.Secured wraps one to add a
// signature, demonstrating policy composition).
type Encoding interface {
	// Name identifies the policy in logs and the experiment tables.
	Name() string
	// ContentType is the MIME type the binding should advertise.
	ContentType() string
	// Encode serializes a bXDM document (the visitor direction).
	Encode(w io.Writer, doc *bxdm.Document) error
	// Decode parses an encoded document back into bXDM (the factory
	// direction).
	Decode(data []byte) (*bxdm.Document, error)
}

// XMLEncoding is the textual XML 1.0 encoding policy. Type hints are always
// emitted so typed bXDM trees survive the lexical round trip (SOAP encoding
// rules, paper §4.2).
type XMLEncoding struct {
	// PlainStrings disables xsi:type/arrayType emission; leaf and array
	// nodes then serialize as plain elements. Used by the Table 1 scenario
	// where the paper measures namespace-free minimal XML.
	PlainStrings bool
}

// Name implements Encoding.
func (XMLEncoding) Name() string { return "XML" }

// ContentType implements Encoding.
func (XMLEncoding) ContentType() string { return "text/xml; charset=utf-8" }

// Encode implements Encoding.
func (x XMLEncoding) Encode(w io.Writer, doc *bxdm.Document) error {
	return xmltext.Encode(w, doc, xmltext.EncodeOptions{TypeHints: !x.PlainStrings})
}

// Decode implements Encoding.
func (x XMLEncoding) Decode(data []byte) (*bxdm.Document, error) {
	return xmltext.Parse(data, xmltext.DecodeOptions{
		RecoverTypes:               !x.PlainStrings,
		DropInterElementWhitespace: true,
	})
}

// BXSAEncoding is the binary XML encoding policy.
type BXSAEncoding struct {
	Order xbs.ByteOrder
}

// Name implements Encoding.
func (BXSAEncoding) Name() string { return "BXSA" }

// ContentType implements Encoding.
func (BXSAEncoding) ContentType() string { return "application/x-bxsa" }

// Encode implements Encoding.
func (b BXSAEncoding) Encode(w io.Writer, doc *bxdm.Document) error {
	return bxsa.Encode(w, doc, bxsa.EncodeOptions{Order: b.Order})
}

// Decode implements Encoding.
func (BXSAEncoding) Decode(data []byte) (*bxdm.Document, error) {
	return bxsa.ParseDocument(data)
}

// EncodeToBytes serializes an envelope with the given policy.
func EncodeToBytes(enc Encoding, e *Envelope) ([]byte, error) {
	var buf bytes.Buffer
	if err := enc.Encode(&buf, e.Document()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeEnvelope parses payload bytes into an envelope with the given
// policy.
func DecodeEnvelope(enc Encoding, data []byte) (*Envelope, error) {
	doc, err := enc.Decode(data)
	if err != nil {
		return nil, err
	}
	return EnvelopeFromDocument(doc)
}

// Binding is the client-side binding policy concept (paper §5.3): it
// carries serialized SOAP messages over an underlying protocol. The four
// valid expressions match the paper's list — send_request,
// receive_response on this interface; receive_request, send_response on the
// server-side Channel.
type Binding interface {
	// SendRequest transmits one serialized SOAP message.
	SendRequest(ctx context.Context, payload []byte, contentType string) error
	// ReceiveResponse blocks for the reply to the last request. Bindings
	// used for one-way MEPs never have ReceiveResponse called.
	ReceiveResponse(ctx context.Context) (payload []byte, contentType string, err error)
	// Close releases the underlying transport.
	Close() error
}

// ServerBinding accepts transport channels on the server side.
type ServerBinding interface {
	// Accept blocks for the next transport channel (e.g. a TCP connection
	// or an HTTP request slot).
	Accept() (Channel, error)
	// Addr reports the bound address for clients to dial.
	Addr() net.Addr
	// Close stops accepting.
	Close() error
}

// Channel is one server-side message exchange sequence.
type Channel interface {
	// ReceiveRequest blocks for the next request on this channel; it
	// returns io.EOF when the peer is done.
	ReceiveRequest(ctx context.Context) (payload []byte, contentType string, err error)
	// SendResponse replies to the request just received.
	SendResponse(payload []byte, contentType string) error
	// Close tears the channel down.
	Close() error
}

// CheckContentType verifies that the peer's content type matches the
// engine's encoding policy (a mismatch means the two sides were composed
// with different policies).
func CheckContentType(enc Encoding, got string) error {
	want := enc.ContentType()
	if got == "" || got == want {
		return nil
	}
	// Tolerate parameter differences such as charset.
	if base(got) == base(want) {
		return nil
	}
	return fmt.Errorf("soap: content type %q does not match encoding %s (%q)", got, enc.Name(), want)
}

func base(ct string) string {
	for i := 0; i < len(ct); i++ {
		if ct[i] == ';' {
			return ct[:i]
		}
	}
	return ct
}
