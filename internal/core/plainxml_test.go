package core

import (
	"strings"
	"testing"

	"bxsoap/internal/bxdm"
)

// XMLEncoding{PlainStrings: true} is the Table 1 configuration: minimal
// textual XML without xsi:type/arrayType hints. Typed content degrades to
// plain elements on decode — the information the paper's §4.2 says is
// unrecoverable "if the schema of the document is unavailable".
func TestPlainStringsEncodingDropsHints(t *testing.T) {
	enc := XMLEncoding{PlainStrings: true}
	env := NewEnvelope(
		bxdm.NewElement(bxdm.LocalName("payload"),
			bxdm.NewLeaf(bxdm.LocalName("n"), int32(7)),
			bxdm.NewArray(bxdm.LocalName("v"), []float64{1.5, 2.5}),
		),
	)
	data, err := NewCodec(enc).EncodeBytes(env)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "xsi:type") || strings.Contains(string(data), "arrayType") {
		t.Fatalf("PlainStrings output still carries hints: %s", data)
	}
	back, err := NewCodec(enc).DecodeEnvelope(data)
	if err != nil {
		t.Fatal(err)
	}
	// Structure survives; typing does not.
	payload := back.Body().(*bxdm.Element)
	if payload.Name.Local != "payload" || len(payload.ChildElements()) != 2 {
		t.Fatalf("structure lost: %+v", payload)
	}
	for _, c := range payload.ChildElements() {
		if c.Kind() != bxdm.KindElement {
			t.Errorf("%v decoded as %v; PlainStrings must yield generic elements", c.ElemName(), c.Kind())
		}
	}
	// The lexical values are still there as text.
	if got := payload.ChildElements()[0].(*bxdm.Element).TextContent(); got != "7" {
		t.Errorf("n text = %q", got)
	}
	if got := payload.ChildElements()[1].(*bxdm.Element).TextContent(); got != "1.52.5" {
		t.Errorf("v text = %q (item elements hold the values)", got)
	}
}

func TestPlainStringsSmallerThanHinted(t *testing.T) {
	env := NewEnvelope(bxdm.NewArray(bxdm.LocalName("v"), make([]float64, 200)))
	plain, err := NewCodec(XMLEncoding{PlainStrings: true}).EncodeBytes(env)
	if err != nil {
		t.Fatal(err)
	}
	hinted, err := NewCodec(XMLEncoding{}).EncodeBytes(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) >= len(hinted) {
		t.Errorf("plain (%d B) not smaller than hinted (%d B)", len(plain), len(hinted))
	}
}
