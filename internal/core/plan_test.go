package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/obs"
	"bxsoap/internal/shape"
	"bxsoap/internal/xbs"
)

// planEnv builds one representative message shape: a header leaf, two
// typed body leaves (one string, so XML escaping is exercised), and a
// packed float64 array.
func planEnv(txid int64, n int32, s string, vals []float64) *Envelope {
	req := bxdm.NewElement(bxdm.PName("urn:svc", "s", "op"))
	req.DeclareNamespace("s", "urn:svc")
	req.Append(
		bxdm.NewLeaf(bxdm.Name("urn:svc", "n"), n),
		bxdm.NewLeafValue(bxdm.Name("urn:svc", "tag"), bxdm.StringValue(s)),
		bxdm.NewArray(bxdm.Name("urn:svc", "vals"), vals),
	)
	env := NewEnvelope(req)
	env.AddHeader(bxdm.NewLeaf(bxdm.Name("urn:h", "txid"), txid))
	return env
}

// newTemplatedCodec mirrors the NewEngine/NewDispatcher wiring for a bare
// codec so the fast paths can be tested without a transport.
func newTemplatedCodec(enc Encoding, capacity int, o *obs.Observer) Codec[Encoding] {
	c := NewCodec[Encoding](enc)
	if tc, ok := enc.(TemplateCompiler); ok {
		c.plans = newPlanCache(tc, capacity, o)
	}
	return c
}

func TestTemplatedCodecMatchesGeneric(t *testing.T) {
	envs := []*Envelope{
		planEnv(1, 42, "aa", []float64{0.5, 1.5, 2.5}),
		planEnv(2, -7, "b&", []float64{9e9, -1, 0.125}), // hostile string, same length
		planEnv(3, 0, "c<", []float64{1, 2, 3}),
	}
	for _, enc := range []Encoding{
		BXSAEncoding{},
		BXSAEncoding{Order: xbs.BigEndian},
		XMLEncoding{},
	} {
		t.Run(enc.Name()+fmt.Sprint(enc), func(t *testing.T) {
			o := obs.New()
			gen := NewCodec[Encoding](enc)
			tpl := newTemplatedCodec(enc, 8, o)
			if tpl.plans == nil {
				t.Fatalf("%s does not implement TemplateCompiler", enc.Name())
			}
			for round := 0; round < 2; round++ { // round 1 compiles, round 2 hits
				for _, env := range envs {
					want, err := gen.EncodePayload(env)
					if err != nil {
						t.Fatal(err)
					}
					got, err := tpl.EncodePayload(env)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got.Bytes(), want.Bytes()) {
						t.Fatalf("templated encode differs from generic:\n got %q\nwant %q",
							got.Bytes(), want.Bytes())
					}
					wantEnv, err := gen.DecodeEnvelope(want.Bytes())
					if err != nil {
						t.Fatal(err)
					}
					gotEnv, err := tpl.DecodeEnvelope(want.Bytes())
					if err != nil {
						t.Fatal(err)
					}
					if !gotEnv.Equal(wantEnv) {
						t.Fatal("templated decode tree differs from generic parse")
					}
					got.Release()
					want.Release()
				}
			}
			if o.Counter(obs.TemplateCompiles) == 0 {
				t.Error("no compiles recorded")
			}
			if o.Counter(obs.TemplateHits) == 0 {
				t.Error("steady state never hit the cache")
			}
			if o.Gauge(obs.TemplatePlans) == 0 {
				t.Error("plans gauge stayed zero")
			}
		})
	}
}

func TestTemplatesDisabledZeroChange(t *testing.T) {
	// A codec without plans and a templated codec must agree bit for bit,
	// and an engine built without WithTemplates gets no cache at all.
	eng := NewEngine(BXSAEncoding{}, failRecvBinding{})
	if eng.Codec().plans != nil {
		t.Fatal("engine grew a plan cache without WithTemplates")
	}
	eng = NewEngine(BXSAEncoding{}, failRecvBinding{}, WithTemplates(8))
	if eng.Codec().plans == nil {
		t.Fatal("WithTemplates did not attach a plan cache")
	}
	d := NewDispatcher(XMLEncoding{}, nil, WithTemplates(8))
	if d.Codec().plans == nil {
		t.Fatal("WithTemplates did not reach the dispatcher codec")
	}
}

func TestPlanCacheEvictionBoundsPlans(t *testing.T) {
	o := obs.New()
	tpl := newTemplatedCodec(BXSAEncoding{}, 2, o)
	for i := 0; i < 4; i++ { // four distinct shapes through a two-entry cache
		req := bxdm.NewElement(bxdm.PName("urn:svc", "s", fmt.Sprintf("op%d", i)))
		req.DeclareNamespace("s", "urn:svc")
		req.Append(bxdm.NewLeaf(bxdm.Name("urn:svc", "n"), int32(i)))
		p, err := tpl.EncodePayload(NewEnvelope(req))
		if err != nil {
			t.Fatal(err)
		}
		p.Release()
	}
	if got := tpl.plans.plans(); got > 2 {
		t.Errorf("cache holds %d plans, capacity 2", got)
	}
	if o.Counter(obs.TemplateEvictions) < 2 {
		t.Errorf("evictions = %d, want >= 2", o.Counter(obs.TemplateEvictions))
	}
	if g := o.Gauge(obs.TemplatePlans); g != 2 {
		t.Errorf("plans gauge = %d, want 2", g)
	}
	if o.Counter(obs.TemplateCompiles) != 4 {
		t.Errorf("compiles = %d, want 4", o.Counter(obs.TemplateCompiles))
	}
}

func TestPlanCacheNegativeEntryStopsRecompiling(t *testing.T) {
	// Hintless XML declines compilation; the failure must be cached as a
	// negative entry so the compile cost is paid once per shape, and the
	// generic output must be unaffected.
	o := obs.New()
	enc := XMLEncoding{PlainStrings: true}
	gen := NewCodec[Encoding](enc)
	tpl := newTemplatedCodec(enc, 8, o)
	env := planEnv(1, 42, "xx", []float64{1, 2})
	for i := 0; i < 3; i++ {
		want, err := gen.EncodePayload(env)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tpl.EncodePayload(env)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatal("negative-entry encode differs from generic")
		}
		got.Release()
		want.Release()
	}
	if n := o.Counter(obs.TemplateCompiles); n != 1 {
		t.Errorf("compiles = %d, want 1 (negative entry not cached)", n)
	}
	if o.Counter(obs.TemplateHits) != 0 {
		t.Error("negative entry counted as hit")
	}
}

func TestPlanCacheNilSafe(t *testing.T) {
	var pc *planCache
	pc.hit()
	pc.miss()
	if pc.lookup(shape.Key{}) != nil {
		t.Error("nil cache returned an entry")
	}
	if pc.matchDecode([]byte("x")) != nil {
		t.Error("nil cache matched bytes")
	}
	pc.compile(XMLEncoding{}, shape.Key{}, NewEnvelope())
	pc.observeDecoded(XMLEncoding{}, NewEnvelope())
	if pc.plans() != 0 {
		t.Error("nil cache reports plans")
	}
}

func TestTemplatedDispatchNoPayloadLeaks(t *testing.T) {
	base := PayloadsInUse()
	ctx := context.Background()
	d := NewDispatcher(BXSAEncoding{}, func(_ context.Context, req *Envelope) (*Envelope, error) {
		return NewEnvelope(bxdm.NewLeaf(bxdm.LocalName("ok"), int32(1))), nil
	}, WithTemplates(8))
	cod := newTemplatedCodec(BXSAEncoding{}, 8, nil)
	for i := 0; i < 6; i++ {
		req, err := cod.EncodePayload(planEnv(int64(i), int32(i), "rt", []float64{1, 2, 3}))
		if err != nil {
			t.Fatal(err)
		}
		sp := (*obs.Observer)(nil).Span()
		resp, err := d.DispatchPayload(ctx, req, cod.ContentType(), &sp, nil)
		req.Release()
		if err != nil {
			t.Fatal(err)
		}
		env, err := cod.DecodeEnvelope(resp.Bytes())
		resp.Release()
		if err != nil {
			t.Fatal(err)
		}
		if env.Body() == nil {
			t.Fatal("templated round trip lost the body")
		}
	}
	if got := PayloadsInUse(); got != base {
		t.Errorf("payloads in use = %d, want %d (leak through templated path)", got, base)
	}
}
