package core

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"bxsoap/internal/obs"
)

// Payload is one serialized SOAP message travelling through the pipeline:
// a reference-counted byte buffer drawn from size-classed pools, so that
// steady-state traffic recycles buffers instead of allocating a fresh
// []byte at every layer boundary (the paper's core claim is that
// serialization work, not the wire, dominates SOAP cost — per-message
// buffer churn is part of that work).
//
// Ownership rules (see DESIGN.md "Buffer ownership and the streaming
// pipeline"):
//
//   - Whoever checks a payload out (NewPayload, EncodePayload, ReadPayload,
//     or a receive call on a Binding/Channel) owns it and must Release it
//     exactly once.
//   - Binding.SendRequest borrows: the caller keeps ownership, so a pooled
//     request can be reused across retries.
//   - Channel.SendResponse transfers: the channel releases the payload once
//     it is written, even asynchronously, on success or failure.
//   - Release after the final reference is a bug and panics; use Retain to
//     share a payload across goroutines.
type Payload struct {
	buf    []byte
	pooled bool // buffer storage participates in the class pools
	refs   atomic.Int32
}

// payloadClasses are the pooled buffer capacities. Checkout takes the
// smallest class that fits the size hint; release files a buffer under the
// largest class its capacity covers, so buffers grown past their class are
// not lost to the pool. Capacities above the largest class are still pooled
// there (sync.Pool sheds them at the next GC cycle if unused).
var payloadClasses = [...]int{512, 4 << 10, 32 << 10, 256 << 10, 1 << 20, 4 << 20}

var (
	classedPools [len(payloadClasses)]sync.Pool // holds *Payload with buffer attached
	barePool     = sync.Pool{New: func() any { return new(Payload) }}
	livePayloads atomic.Int64
	payloadObs   atomic.Pointer[obs.Observer]
)

// SetPayloadObserver wires an observer into the payload pools: checkout hit/
// miss counters and the payloads-in-use gauge (with high-water mark) record
// into it. The pools are process-global, so their observer is too; pass nil
// to detach. The default (no observer) keeps checkout and release free of
// any instrumentation cost beyond one atomic pointer load.
func SetPayloadObserver(o *obs.Observer) { payloadObs.Store(o) }

// classFor returns the checkout class for a size hint, or -1 when the hint
// exceeds every class.
func classFor(n int) int {
	for i, c := range payloadClasses {
		if n <= c {
			return i
		}
	}
	return -1
}

// putClassFor returns the release class for a buffer capacity, or -1 when
// the capacity is below every class (such buffers are dropped).
func putClassFor(c int) int {
	for i := len(payloadClasses) - 1; i >= 0; i-- {
		if c >= payloadClasses[i] {
			return i
		}
	}
	return -1
}

// NewPayload checks an empty payload out of the pool with capacity for at
// least sizeHint bytes. The caller owns it and must Release it exactly once.
//
//paylint:returns owned
func NewPayload(sizeHint int) *Payload {
	var p *Payload
	o := payloadObs.Load()
	if i := classFor(sizeHint); i >= 0 {
		if v := classedPools[i].Get(); v != nil {
			p = v.(*Payload)
			o.Inc(obs.PayloadPoolHits)
		} else {
			p = &Payload{buf: make([]byte, 0, payloadClasses[i])}
			o.Inc(obs.PayloadPoolMisses)
		}
	} else {
		p = &Payload{buf: make([]byte, 0, sizeHint)}
		o.Inc(obs.PayloadPoolMisses)
	}
	p.pooled = true
	p.refs.Store(1)
	livePayloads.Add(1)
	o.GaugeAdd(obs.PayloadsInUse, 1)
	return p
}

// NewPayloadFrom wraps externally owned bytes in a payload without copying.
// The bytes never enter the pools; Release only recycles the wrapper, so
// the slice stays valid (used by adapters and tests that already hold a
// materialized message).
//
//paylint:returns owned
func NewPayloadFrom(b []byte) *Payload {
	p := barePool.Get().(*Payload)
	p.buf = b
	p.pooled = false
	p.refs.Store(1)
	livePayloads.Add(1)
	payloadObs.Load().GaugeAdd(obs.PayloadsInUse, 1)
	return p
}

// Bytes returns the message bytes. The slice is valid until Release; callers
// that need it longer must copy or Retain.
func (p *Payload) Bytes() []byte { return p.buf }

// Len reports the message length in bytes.
func (p *Payload) Len() int { return len(p.buf) }

// Write appends b to the payload, growing the buffer along the pool size
// classes. It implements io.Writer and never fails.
func (p *Payload) Write(b []byte) (int, error) {
	p.ensure(len(b))
	p.buf = append(p.buf, b...)
	return len(b), nil
}

// Writer returns the payload as an io.Writer appending to the message.
func (p *Payload) Writer() io.Writer { return p }

// Retain adds a reference; each Retain obliges one more Release.
func (p *Payload) Retain() { p.refs.Add(1) }

// Release drops one reference; the final release returns the buffer to its
// size-class pool. Releasing more times than the payload was checked
// out/retained panics — that is a double free of a pooled buffer.
func (p *Payload) Release() {
	if p == nil {
		return
	}
	switch n := p.refs.Add(-1); {
	case n > 0:
		return
	case n < 0:
		panic("core: Payload released after final reference")
	}
	livePayloads.Add(-1)
	payloadObs.Load().GaugeAdd(obs.PayloadsInUse, -1)
	if p.pooled {
		if i := putClassFor(cap(p.buf)); i >= 0 {
			p.buf = p.buf[:0]
			classedPools[i].Put(p)
			return
		}
	}
	p.buf = nil
	p.pooled = false
	barePool.Put(p)
}

// ensure grows the buffer so at least n more bytes fit, stepping capacity
// along the pool classes so grown buffers file back cleanly.
func (p *Payload) ensure(n int) {
	need := len(p.buf) + n
	if cap(p.buf) >= need {
		return
	}
	newCap := need
	if i := classFor(need); i >= 0 {
		newCap = payloadClasses[i]
	} else if c := 2 * cap(p.buf); c > newCap {
		newCap = c
	}
	nb := make([]byte, len(p.buf), newCap)
	copy(nb, p.buf)
	p.buf = nb
}

// readChunk bounds how much a single length prefix can make us allocate in
// one step: a hostile "size" claims at most this much memory ahead of bytes
// actually arriving.
const readChunk = 512 << 10

// ReadPayload reads one message body from r into a pooled payload. size is
// the expected byte count when the transport knows it (a Content-Length or
// frame header) and -1 when it does not; limit caps the total read either
// way (0 = no limit). With a known size the buffer grows chunk-by-chunk as
// bytes arrive, so a hostile length prefix cannot force a huge allocation
// up front. The caller owns the returned payload.
//
//paylint:returns owned
func ReadPayload(r io.Reader, size, limit int64) (*Payload, error) {
	if size >= 0 {
		if limit > 0 && size > limit {
			return nil, fmt.Errorf("core: message size %d exceeds limit %d", size, limit)
		}
		hint := size
		if hint > readChunk {
			hint = readChunk
		}
		p := NewPayload(int(hint))
		for remaining := size; remaining > 0; {
			n := remaining
			if n > readChunk {
				n = readChunk
			}
			off := len(p.buf)
			p.ensure(int(n))
			p.buf = p.buf[:off+int(n)]
			if _, err := io.ReadFull(r, p.buf[off:]); err != nil {
				p.Release()
				return nil, err
			}
			remaining -= n
		}
		return p, nil
	}
	p := NewPayload(4 << 10)
	for {
		if len(p.buf) == cap(p.buf) {
			p.ensure(1)
		}
		n, err := r.Read(p.buf[len(p.buf):cap(p.buf)])
		p.buf = p.buf[:len(p.buf)+n]
		if limit > 0 && int64(len(p.buf)) > limit {
			p.Release()
			return nil, fmt.Errorf("core: message exceeds limit %d", limit)
		}
		if err == io.EOF {
			return p, nil
		}
		if err != nil {
			p.Release()
			return nil, err
		}
	}
}

// ReadPayloadWindow reads one window of up to max bytes from r into a
// pooled payload: a single successful Read call's worth, at least one byte
// unless the stream ended. The boolean reports whether r returned io.EOF on
// the same call (the window is the stream's last); a nil payload with
// io.EOF means the stream ended cleanly with no bytes left. Transports use
// this to slice a continuous body (an HTTP chunked stream) into the chunk
// windows the streaming codecs consume, without buffering the whole body.
// The caller owns the returned payload.
//
//paylint:returns owned
func ReadPayloadWindow(r io.Reader, max int) (*Payload, bool, error) {
	p := NewPayload(max)
	if cap(p.buf) < max {
		p.ensure(max)
	}
	for {
		n, err := r.Read(p.buf[:max])
		p.buf = p.buf[:n]
		if n > 0 {
			return p, err == io.EOF, nil
		}
		if err != nil {
			p.Release()
			return nil, false, err
		}
	}
}

// PayloadsInUse reports how many payloads are currently checked out of the
// pools (checked out minus released). It exists for leak tests and
// diagnostics: a quiescent engine/server pair must return to its baseline.
func PayloadsInUse() int64 { return livePayloads.Load() }
