package core

// Differential fuzzing for the template fast paths: for any envelope the
// deterministic generator can derive from the fuzz input, the templated
// codec must produce byte-identical encodes and tree-identical decodes
// against the generic codec, for both shipped encodings. The generator
// leans into the hostile corners on purpose — escapable characters,
// carriage returns, whitespace-only strings, empty arrays — because those
// are exactly the inputs where a template must either agree with the
// generic path or refuse to compile.

import (
	"bytes"
	"testing"

	"bxsoap/internal/bxdm"
)

// fuzzReader derives bounded choices from the fuzz input, yielding zeros
// once exhausted so every input maps to a well-defined envelope.
type fuzzReader struct {
	data []byte
	i    int
}

func (r *fuzzReader) byte() byte {
	if r.i >= len(r.data) {
		return 0
	}
	b := r.data[r.i]
	r.i++
	return b
}

func (r *fuzzReader) u64() uint64 {
	var v uint64
	for k := 0; k < 8; k++ {
		v = v<<8 | uint64(r.byte())
	}
	return v
}

// fuzzAlphabet mixes safe characters with every byte the XML escaper and
// parser treat specially.
const fuzzAlphabet = "ab0 &<>\r\t\"'x.-"

func (r *fuzzReader) str() string {
	n := int(r.byte() % 8)
	b := make([]byte, n)
	for k := range b {
		b[k] = fuzzAlphabet[int(r.byte())%len(fuzzAlphabet)]
	}
	return string(b)
}

var fuzzNames = []string{"n", "tag", "vals", "row", "acc"}

func envFromFuzz(data []byte) *Envelope {
	r := &fuzzReader{data: data}
	op := bxdm.NewElement(bxdm.PName("urn:svc", "s", "op"))
	op.DeclareNamespace("s", "urn:svc")
	children := 1 + int(r.byte()%4)
	for k := 0; k < children; k++ {
		name := bxdm.Name("urn:svc", fuzzNames[int(r.byte())%len(fuzzNames)])
		switch r.byte() % 7 {
		case 0:
			op.Append(bxdm.NewLeafValue(name, bxdm.Int32Value(int32(r.u64()))))
		case 1:
			op.Append(bxdm.NewLeafValue(name, bxdm.Int64Value(int64(r.u64()))))
		case 2:
			op.Append(bxdm.NewLeafValue(name, bxdm.BoolValue(r.byte()%2 == 1)))
		case 3:
			op.Append(bxdm.NewLeafValue(name, bxdm.StringValue(r.str())))
		case 4:
			items := make([]int32, int(r.byte()%5))
			for j := range items {
				items[j] = int32(r.u64())
			}
			op.Append(bxdm.NewArray(name, items))
		case 5:
			items := make([]float64, int(r.byte()%5))
			for j := range items {
				items[j] = float64(int64(r.u64())) / 16
			}
			op.Append(bxdm.NewArray(name, items))
		case 6:
			op.Append(bxdm.NewText(r.str()))
		}
	}
	env := NewEnvelope(op)
	if r.byte()%2 == 1 {
		env.AddHeader(bxdm.NewLeaf(bxdm.Name("urn:h", "txid"), int64(r.u64())))
	}
	return env
}

func FuzzPlanRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 3, 4, 1, 2, 0, 1, 5, 6, 7})       // string leaves, hostile chars
	f.Add([]byte{2, 1, 4, 3, 2, 5, 2, 0xff, 0xff, 0xff}) // arrays
	f.Add([]byte{4, 0, 6, 2, 1, 1, 3, 3, 3, 3, 3, 3, 3}) // text + bool + string
	f.Add(bytes.Repeat([]byte{9, 1, 7, 0, 250, 13}, 6))
	f.Fuzz(func(t *testing.T, data []byte) {
		env := envFromFuzz(data)
		for _, enc := range []Encoding{BXSAEncoding{}, XMLEncoding{}} {
			gen := NewCodec[Encoding](enc)
			tpl := newTemplatedCodec(enc, 8, nil)
			want, err := gen.EncodePayload(env)
			if err != nil {
				// The generator only emits encodable trees; a generic
				// failure would be its own bug.
				t.Fatalf("%s: generic encode: %v", enc.Name(), err)
			}
			// Two passes: the first encode compiles the shape, the second
			// must take the templated path and still match byte for byte.
			for pass := 0; pass < 2; pass++ {
				got, err := tpl.EncodePayload(env)
				if err != nil {
					t.Fatalf("%s pass %d: templated encode: %v", enc.Name(), pass, err)
				}
				if !bytes.Equal(got.Bytes(), want.Bytes()) {
					t.Errorf("%s pass %d: templated encode differs\n got %q\nwant %q",
						enc.Name(), pass, got.Bytes(), want.Bytes())
				}
				got.Release()
			}
			oracle, oerr := gen.DecodeEnvelope(want.Bytes())
			for pass := 0; pass < 2; pass++ {
				back, err := tpl.DecodeEnvelope(want.Bytes())
				if (err == nil) != (oerr == nil) {
					t.Fatalf("%s pass %d: decode error mismatch: %v vs %v", enc.Name(), pass, err, oerr)
				}
				if err == nil && !back.Equal(oracle) {
					t.Errorf("%s pass %d: templated decode differs from generic parse", enc.Name(), pass)
				}
			}
			want.Release()
		}
	})
}
