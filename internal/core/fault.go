package core

import (
	"fmt"

	"bxsoap/internal/bxdm"
)

// Standard SOAP 1.1 fault codes.
const (
	FaultVersionMismatch = "VersionMismatch"
	FaultMustUnderstand  = "MustUnderstand"
	FaultClient          = "Client"
	FaultServer          = "Server"
)

// Fault is a SOAP fault.
type Fault struct {
	Code   string // local part; serialized as soap:<Code>
	String string // human-readable explanation
	Actor  string // optional URI of the faulting node
	Detail bxdm.Node
}

// Error implements the error interface so faults can flow through Go error
// paths; Engine.Call returns a *Fault as the error when the peer faults.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap fault %s: %s", f.Code, f.String)
}

var faultName = bxdm.PName(EnvelopeNS, "soap", "Fault")

// Envelope wraps the fault into a response envelope.
func (f *Fault) Envelope() *Envelope {
	fe := bxdm.NewElement(faultName)
	// Per SOAP 1.1 the faultcode value is a QName in the envelope namespace
	// for standard codes; the subelements themselves are unqualified.
	fe.Append(bxdm.NewLeaf(bxdm.LocalName("faultcode"), "soap:"+f.Code))
	fe.Append(bxdm.NewLeaf(bxdm.LocalName("faultstring"), f.String))
	if f.Actor != "" {
		fe.Append(bxdm.NewLeaf(bxdm.LocalName("faultactor"), f.Actor))
	}
	if f.Detail != nil {
		fe.Append(bxdm.NewElement(bxdm.LocalName("detail"), f.Detail))
	}
	return NewEnvelope(fe)
}

// FaultFromEnvelope extracts a fault from a response envelope, returning
// nil when the body is not a fault.
func FaultFromEnvelope(e *Envelope) *Fault {
	body := e.Body()
	if body == nil || !body.ElemName().Matches(faultName) {
		return nil
	}
	el, ok := body.(*bxdm.Element)
	if !ok {
		return nil
	}
	f := &Fault{}
	for _, c := range el.Children {
		ce, ok := c.(bxdm.ElementNode)
		if !ok {
			continue
		}
		text := nodeText(c)
		switch ce.ElemName().Local {
		case "faultcode":
			// Strip any prefix; standard codes are compared by local part.
			if i := lastIndexByte(text, ':'); i >= 0 {
				text = text[i+1:]
			}
			f.Code = text
		case "faultstring":
			f.String = text
		case "faultactor":
			f.Actor = text
		case "detail":
			if de, ok := c.(*bxdm.Element); ok && len(de.Children) > 0 {
				f.Detail = de.Children[0]
			}
		}
	}
	return f
}

func nodeText(n bxdm.Node) string {
	switch x := n.(type) {
	case *bxdm.LeafElement:
		return x.Value.Text()
	case *bxdm.Element:
		return x.TextContent()
	default:
		return ""
	}
}

func lastIndexByte(s string, b byte) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == b {
			return i
		}
	}
	return -1
}
