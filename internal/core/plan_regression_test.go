package core_test

// Regression coverage for the template cache's transparency guarantees:
// wssec-wrapped encodings (which do not implement TemplateCompiler) and
// trace-header-stamped envelopes must keep round-tripping bit-identically
// with templates enabled.

import (
	"bytes"
	"context"
	"testing"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/core"
	"bxsoap/internal/obs"
	"bxsoap/internal/tracehdr"
	"bxsoap/internal/wssec"
)

func regressionEnv(n int32, vals []float64) *core.Envelope {
	req := bxdm.NewElement(bxdm.PName("urn:svc", "s", "op"))
	req.DeclareNamespace("s", "urn:svc")
	req.Append(
		bxdm.NewLeaf(bxdm.Name("urn:svc", "n"), n),
		bxdm.NewArray(bxdm.Name("urn:svc", "vals"), vals),
	)
	return core.NewEnvelope(req)
}

func TestTemplatesTransparentUnderWSSec(t *testing.T) {
	// Secured encodings deliberately do not implement TemplateCompiler, so
	// WithTemplates must be a silent no-op: signatures, bytes, and decoded
	// trees all identical to a plain secured codec.
	key := []byte("0123456789abcdef")
	enc := wssec.Secure(core.BXSAEncoding{}, key)
	plain := core.NewDispatcher(enc, nil).Codec()
	templated := core.NewDispatcher(enc, nil, core.WithTemplates(8)).Codec()
	for i := 0; i < 3; i++ { // repeated shape: where a cache would kick in
		env := regressionEnv(int32(i), []float64{1, 2, 3})
		want, err := plain.EncodePayload(env)
		if err != nil {
			t.Fatal(err)
		}
		got, err := templated.EncodePayload(env)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatal("WithTemplates changed secured bytes on the wire")
		}
		back, err := templated.DecodeEnvelope(got.Bytes())
		if err != nil {
			t.Fatalf("secured decode with templates on: %v", err)
		}
		if !back.Equal(env) {
			t.Fatal("secured round trip changed the tree")
		}
		got.Release()
		want.Release()
	}
}

func TestTemplatesRoundTripTracedEnvelopes(t *testing.T) {
	// Trace context headers carry a fixed-length hex ID, so traced
	// messages are themselves cacheable shapes — and must survive the
	// templated path bit-identically, end to end through a dispatcher.
	for _, newEnc := range []func() core.Encoding{
		func() core.Encoding { return core.BXSAEncoding{} },
		func() core.Encoding { return core.XMLEncoding{} },
	} {
		enc := newEnc()
		o := obs.New()
		d := core.NewDispatcher(enc, func(_ context.Context, req *core.Envelope) (*core.Envelope, error) {
			return core.NewEnvelope(bxdm.NewLeaf(bxdm.LocalName("ok"), int32(1))), nil
		}, core.WithTemplates(8), core.WithObserver(o))
		plain := core.NewDispatcher(enc, nil).Codec()
		templated := d.Codec()
		for i := 0; i < 3; i++ {
			env := regressionEnv(int32(i), []float64{0.5, 1.5})
			env.AddHeader(tracehdr.Node(obs.TraceContext{ID: obs.NewTraceID(), Seq: i}))
			want, err := plain.EncodePayload(env)
			if err != nil {
				t.Fatal(err)
			}
			got, err := templated.EncodePayload(env)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("%s: templated traced encode differs", enc.Name())
			}
			back, err := templated.DecodeEnvelope(got.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			// The generic decoder is the oracle: it materializes synthesized
			// namespace decls the original tree left implicit, and the
			// templated decode must reproduce exactly that normalization.
			oracle, err := plain.DecodeEnvelope(want.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			if !back.Equal(oracle) {
				t.Fatalf("%s: templated traced decode differs from generic parse", enc.Name())
			}
			if _, err := tracehdr.Parse(back.Header(tracehdr.HeaderName())); err != nil {
				t.Fatalf("%s: trace header unparseable after templated round trip: %v", enc.Name(), err)
			}
			got.Release()
			want.Release()
		}
		if o.Counter(obs.TemplateHits) == 0 {
			t.Errorf("%s: traced shapes never hit the cache", enc.Name())
		}
	}
}
