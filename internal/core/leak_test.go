package core

import (
	"context"
	"errors"
	"testing"

	"bxsoap/internal/bxdm"
)

// failRecvBinding delivers the request to nobody and fails the receive —
// the transport-error path through CallPayload.
type failRecvBinding struct{}

func (failRecvBinding) SendRequest(context.Context, *Payload, string) error { return nil }
func (failRecvBinding) ReceiveResponse(context.Context) (*Payload, string, error) {
	return nil, "", errors.New("link down")
}
func (failRecvBinding) Close() error { return nil }

// garbageBinding answers every request with undecodable bytes — the
// decode-error path, where the received payload must still be released.
type garbageBinding struct{}

func (garbageBinding) SendRequest(context.Context, *Payload, string) error { return nil }
func (garbageBinding) ReceiveResponse(context.Context) (*Payload, string, error) {
	return NewPayloadFrom([]byte("!!not an envelope!!")), "text/xml", nil
}
func (garbageBinding) Close() error { return nil }

// TestNoPayloadLeaks asserts the pipeline's ownership contract end to end:
// every payload checked out during an exchange is released exactly once, on
// the success path and on every failure path — fault responses, transport
// errors, undecodable responses, and one-way sends.
func TestNoPayloadLeaks(t *testing.T) {
	base := PayloadsInUse()
	ctx := context.Background()

	okSrv := NewServer(XMLEncoding{}, &nullServerBinding{},
		func(_ context.Context, _ *Envelope) (*Envelope, error) {
			return NewEnvelope(bxdm.NewLeaf(bxdm.LocalName("ok"), int32(1))), nil
		})
	faultSrv := NewServer(XMLEncoding{}, &nullServerBinding{},
		func(_ context.Context, _ *Envelope) (*Envelope, error) {
			return nil, &Fault{Code: FaultServer, String: "refused"}
		})

	scenarios := []struct {
		name string
		run  func() error
	}{
		{"success", func() error {
			eng := NewEngine(XMLEncoding{}, &inProcBinding{server: okSrv})
			_, err := eng.Call(ctx, sampleEnvelope())
			return err
		}},
		{"fault", func() error {
			eng := NewEngine(XMLEncoding{}, &inProcBinding{server: faultSrv})
			_, err := eng.Call(ctx, sampleEnvelope())
			if !asFault(err, new(*Fault)) {
				t.Errorf("want fault, got %v", err)
			}
			return nil
		}},
		{"transport error", func() error {
			eng := NewEngine(XMLEncoding{}, failRecvBinding{})
			_, err := eng.Call(ctx, sampleEnvelope())
			if !IsTransportError(err) {
				t.Errorf("want transport error, got %v", err)
			}
			return nil
		}},
		{"decode error", func() error {
			eng := NewEngine(XMLEncoding{}, garbageBinding{})
			if _, err := eng.Call(ctx, sampleEnvelope()); err == nil {
				t.Error("garbage response decoded")
			}
			return nil
		}},
		{"one-way send", func() error {
			eng := NewEngine(XMLEncoding{}, &inProcBinding{server: okSrv})
			return eng.Send(ctx, sampleEnvelope())
		}},
		{"one-way send fault ack", func() error {
			eng := NewEngine(XMLEncoding{}, &inProcBinding{server: faultSrv})
			err := eng.Send(ctx, sampleEnvelope())
			if !asFault(err, new(*Fault)) {
				t.Errorf("want fault ack, got %v", err)
			}
			return nil
		}},
	}
	for _, sc := range scenarios {
		if err := sc.run(); err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		if got := PayloadsInUse(); got != base {
			t.Fatalf("%s: PayloadsInUse = %d, want %d — a payload leaked or was double-released", sc.name, got, base)
		}
	}
}
