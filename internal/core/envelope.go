// Package core implements the paper's generic SOAP engine (§5): the SOAP
// envelope modeled in bXDM, the Encoding and Binding policy concepts, and
// the compile-time-composed Engine[E, B] / Server[E, B] that bind a
// concrete encoding (textual XML 1.0 or BXSA) to a concrete transport
// (HTTP or raw TCP). Go generics play the role of the paper's C++ policy
// templates: the policies are type parameters, the composition is
// monomorphized at compile time, and adding a policy axis (e.g. security)
// means adding a type parameter or wrapping a policy — see wssec.Secured.
package core

import (
	"fmt"

	"bxsoap/internal/bxdm"
)

// SOAP 1.1 protocol constants.
const (
	EnvelopeNS = "http://schemas.xmlsoap.org/soap/envelope/"

	// AttrMustUnderstand marks a header entry that the receiving node must
	// process or fault.
	attrMustUnderstand = "mustUnderstand"
	// AttrActor targets a header entry at a specific intermediary.
	attrActor = "actor"

	// ActorNext is the special actor URI addressing the next SOAP node on
	// the message path.
	ActorNext = "http://schemas.xmlsoap.org/soap/actor/next"
)

var (
	envelopeName = bxdm.PName(EnvelopeNS, "soap", "Envelope")
	headerName   = bxdm.PName(EnvelopeNS, "soap", "Header")
	bodyName     = bxdm.PName(EnvelopeNS, "soap", "Body")
)

// Envelope is a SOAP message held in the bXDM model. The engine constructs
// the soap:Envelope/Header/Body scaffolding at encode time; applications
// deal only in header entries and body children.
type Envelope struct {
	// HeaderEntries are the children of soap:Header (omitted when empty).
	HeaderEntries []bxdm.Node
	// BodyChildren are the children of soap:Body.
	BodyChildren []bxdm.Node
}

// NewEnvelope builds an envelope with the given body children.
func NewEnvelope(body ...bxdm.Node) *Envelope {
	return &Envelope{BodyChildren: body}
}

// AddHeader appends a header entry and returns the envelope for chaining.
func (e *Envelope) AddHeader(h bxdm.Node) *Envelope {
	e.HeaderEntries = append(e.HeaderEntries, h)
	return e
}

// Body returns the first body child element, which for RPC-style messages
// is the operation wrapper. It is nil for an empty body.
func (e *Envelope) Body() bxdm.ElementNode {
	for _, c := range e.BodyChildren {
		if el, ok := c.(bxdm.ElementNode); ok {
			return el
		}
	}
	return nil
}

// OpName returns the message's operation name — the local name of the
// first body child element, which for RPC-style messages is the operation
// wrapper. Empty for a nil envelope or an empty body. It is the operation
// label the dimensional metrics and SLO engine key on.
func OpName(e *Envelope) string {
	if e == nil {
		return ""
	}
	if b := e.Body(); b != nil {
		return b.ElemName().Local
	}
	return ""
}

// Header returns the first header entry matching name, or nil.
func (e *Envelope) Header(name bxdm.QName) bxdm.ElementNode {
	for _, h := range e.HeaderEntries {
		if el, ok := h.(bxdm.ElementNode); ok && el.ElemName().Matches(name) {
			return el
		}
	}
	return nil
}

// MarkMustUnderstand flags a header element with soap:mustUnderstand="1".
func MarkMustUnderstand(h bxdm.ElementNode) {
	switch x := h.(type) {
	case *bxdm.Element:
		x.SetAttr(bxdm.PName(EnvelopeNS, "soap", attrMustUnderstand), bxdm.StringValue("1"))
	case *bxdm.LeafElement:
		x.SetAttr(bxdm.PName(EnvelopeNS, "soap", attrMustUnderstand), bxdm.StringValue("1"))
	case *bxdm.ArrayElement:
		x.SetAttr(bxdm.PName(EnvelopeNS, "soap", attrMustUnderstand), bxdm.StringValue("1"))
	}
}

// mustUnderstand reports whether a header entry carries
// soap:mustUnderstand="1".
func mustUnderstand(h bxdm.ElementNode) bool {
	v, ok := h.Attr(bxdm.Name(EnvelopeNS, attrMustUnderstand))
	return ok && (v.Text() == "1" || v.Text() == "true")
}

// Document assembles the full soap:Envelope bXDM document for encoding.
func (e *Envelope) Document() *bxdm.Document {
	env := bxdm.NewElement(envelopeName)
	env.DeclareNamespace("soap", EnvelopeNS)
	if len(e.HeaderEntries) > 0 {
		env.Append(bxdm.NewElement(headerName, e.HeaderEntries...))
	}
	env.Append(bxdm.NewElement(bodyName, e.BodyChildren...))
	return bxdm.NewDocument(env)
}

// EnvelopeFromDocument validates and dismantles a decoded soap:Envelope.
func EnvelopeFromDocument(doc *bxdm.Document) (*Envelope, error) {
	root := doc.Root()
	if root == nil {
		return nil, fmt.Errorf("soap: document has no root element")
	}
	if !root.ElemName().Matches(envelopeName) {
		return nil, fmt.Errorf("soap: root element is %v, want soap:Envelope", root.ElemName())
	}
	envEl, ok := root.(*bxdm.Element)
	if !ok {
		return nil, fmt.Errorf("soap: Envelope must be a component element")
	}
	env := &Envelope{}
	seenBody := false
	for _, c := range envEl.Children {
		el, ok := c.(bxdm.ElementNode)
		if !ok {
			// Whitespace or comments between envelope children are legal.
			continue
		}
		switch {
		case el.ElemName().Matches(headerName):
			if seenBody {
				return nil, fmt.Errorf("soap: Header after Body")
			}
			he, ok := el.(*bxdm.Element)
			if !ok {
				return nil, fmt.Errorf("soap: Header must be a component element")
			}
			for _, h := range he.Children {
				if _, isEl := h.(bxdm.ElementNode); isEl {
					env.HeaderEntries = append(env.HeaderEntries, h)
				}
			}
		case el.ElemName().Matches(bodyName):
			seenBody = true
			be, ok := el.(*bxdm.Element)
			if !ok {
				return nil, fmt.Errorf("soap: Body must be a component element")
			}
			env.BodyChildren = append(env.BodyChildren, be.Children...)
		default:
			return nil, fmt.Errorf("soap: unexpected envelope child %v", el.ElemName())
		}
	}
	if !seenBody {
		return nil, fmt.Errorf("soap: envelope has no Body")
	}
	return env, nil
}

// Clone deep-copies the envelope.
func (e *Envelope) Clone() *Envelope {
	out := &Envelope{}
	for _, h := range e.HeaderEntries {
		out.HeaderEntries = append(out.HeaderEntries, bxdm.Clone(h))
	}
	for _, b := range e.BodyChildren {
		out.BodyChildren = append(out.BodyChildren, bxdm.Clone(b))
	}
	return out
}

// Equal reports deep equality of two envelopes.
func (e *Envelope) Equal(o *Envelope) bool {
	if len(e.HeaderEntries) != len(o.HeaderEntries) || len(e.BodyChildren) != len(o.BodyChildren) {
		return false
	}
	for i := range e.HeaderEntries {
		if !bxdm.Equal(e.HeaderEntries[i], o.HeaderEntries[i]) {
			return false
		}
	}
	for i := range e.BodyChildren {
		if !bxdm.Equal(e.BodyChildren[i], o.BodyChildren[i]) {
			return false
		}
	}
	return true
}
