package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/obs"
)

// Handler processes one SOAP request envelope and produces the response.
// Returning a *Fault (as the error) sends that fault; any other error is
// wrapped into a soap:Server fault.
type Handler func(ctx context.Context, req *Envelope) (*Envelope, error)

// Server is the server side of the generic engine, composed from the same
// two policy axes as Engine. Configuration is fixed at NewServer time via
// options (WithErrorLog, WithUnderstood, WithObserver); a constructed
// server carries no settable knobs, so there is nothing to race with Serve.
type Server[E Encoding, B ServerBinding] struct {
	codec   Codec[E]
	bind    B
	handler Handler
	obs     *obs.Observer

	// understood is the set of header QNames this node can process;
	// mustUnderstand entries outside the set draw a MustUnderstand fault
	// (SOAP 1.1 §4.2.3). The map itself is immutable — the deprecated
	// Understand swaps in a fresh copy — so dispatch reads it without
	// locking while Understand stays callable concurrently with Serve.
	understood atomic.Pointer[map[bxdm.QName]bool]

	// ctx is the server's lifetime context: handlers receive a context
	// derived from it, and Close cancels it, so in-flight handlers observe
	// shutdown instead of running under an unattached Background context.
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	wg     sync.WaitGroup
	closed bool
	chans  map[Channel]struct{}

	errorLog *log.Logger
	// ErrorLog receives per-channel failures; nil silences them.
	//
	// Deprecated: pass WithErrorLog to NewServer instead. The field is
	// read once when Serve starts (WithErrorLog takes precedence); writes
	// after that are not seen.
	ErrorLog *log.Logger
}

// NewServer composes a server from its policies, handler, and options.
func NewServer[E Encoding, B ServerBinding](enc E, bind B, h Handler, opts ...ServerOption) *Server[E, B] {
	var cfg serverConfig
	for _, opt := range opts {
		opt.applyServer(&cfg)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server[E, B]{
		codec:    NewCodec(enc),
		bind:     bind,
		handler:  h,
		obs:      cfg.obs,
		ctx:      ctx,
		cancel:   cancel,
		chans:    make(map[Channel]struct{}),
		errorLog: cfg.errorLog,
	}
	understood := make(map[bxdm.QName]bool, len(cfg.understood))
	for _, n := range cfg.understood {
		understood[bxdm.QName{Space: n.Space, Local: n.Local}] = true
	}
	s.understood.Store(&understood)
	return s
}

// Understand registers header names this node processes, for
// mustUnderstand enforcement. Safe to call while Serve is running: the
// understood set is swapped atomically, and requests already dispatched
// keep the set they started with.
//
// Deprecated: pass WithUnderstood to NewServer instead.
func (s *Server[E, B]) Understand(names ...bxdm.QName) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.understood.Load()
	next := make(map[bxdm.QName]bool, len(old)+len(names))
	for k := range old {
		next[k] = true
	}
	for _, n := range names {
		next[bxdm.QName{Space: n.Space, Local: n.Local}] = true
	}
	s.understood.Store(&next)
}

// Encoding returns the server's encoding policy.
func (s *Server[E, B]) Encoding() E { return s.codec.Encoding() }

// Codec returns the server's serialization facade.
func (s *Server[E, B]) Codec() Codec[E] { return s.codec }

// Addr reports the bound transport address.
func (s *Server[E, B]) Addr() net.Addr { return s.bind.Addr() }

// Serve accepts channels until the binding is closed, dispatching each on
// its own goroutine. It returns nil after a clean Close.
func (s *Server[E, B]) Serve() error {
	// Resolve the error sink once: the option wins, else the deprecated
	// field as it stood when Serve started.
	errorLog := s.errorLog
	if errorLog == nil {
		errorLog = s.ErrorLog
	}
	for {
		ch, err := s.bind.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				s.wg.Wait()
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			ch.Close()
			s.wg.Wait()
			return nil
		}
		s.chans[ch] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.chans, ch)
				s.mu.Unlock()
				ch.Close()
			}()
			if err := s.serveChannel(ch); err != nil && errorLog != nil {
				errorLog.Printf("soap: channel error: %v", err)
			}
		}()
	}
}

func (s *Server[E, B]) serveChannel(ch Channel) error {
	// Handlers run under the server's lifetime context: Close cancels it,
	// so a long-running handler sees shutdown instead of outliving it.
	ctx := s.ctx
	for {
		// The server hop starts before the read: the trace context arrives
		// inside the request, so dispatch binds it after decode. A hop whose
		// read fails (channel closed, peer gone) is abandoned unrecorded —
		// no request was handled.
		hop := s.obs.StartHop(obs.RoleServer)
		sp := s.obs.SpanWith(hop)
		payload, ct, err := ch.ReceiveRequest(ctx)
		sp.Mark(obs.ServerReceive)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		resp := s.dispatch(ctx, payload.Bytes(), ct, &sp, hop)
		payload.Release()
		out, err := s.codec.EncodePayload(resp)
		sp.Mark(obs.ServerEncode)
		if err != nil {
			s.obs.FinishHop(hop, err)
			return fmt.Errorf("encode response: %w", err)
		}
		// SendResponse takes ownership of out and releases it when written.
		if err := ch.SendResponse(out, s.codec.ContentType()); err != nil {
			sp.Mark(obs.ServerSend)
			s.obs.FinishHop(hop, err)
			return fmt.Errorf("send response: %w", err)
		}
		sp.Mark(obs.ServerSend)
		s.obs.FinishHop(hop, nil)
	}
}

// dispatch decodes, enforces mustUnderstand, runs the handler, and converts
// errors to faults. It never fails: protocol problems become fault
// envelopes, which is what a SOAP node owes its peer.
func (s *Server[E, B]) dispatch(ctx context.Context, payload []byte, ct string, sp *obs.Span, hop *obs.Hop) *Envelope {
	s.obs.Inc(obs.ServerRequests)
	if err := CheckContentType(s.codec.Encoding(), ct); err != nil {
		sp.Mark(obs.ServerDecode)
		s.obs.Inc(obs.ServerFaults)
		return (&Fault{Code: FaultClient, String: err.Error()}).Envelope()
	}
	req, err := s.codec.DecodeEnvelope(payload)
	sp.Mark(obs.ServerDecode)
	if err != nil {
		s.obs.Inc(obs.ServerFaults)
		return (&Fault{Code: FaultClient, String: fmt.Sprintf("cannot decode request: %v", err)}).Envelope()
	}
	// The wire trace context (when the client sent one) places this hop on
	// the request path; an unbound hop self-roots at FinishHop.
	BindServerTrace(hop, req)
	for _, h := range req.HeaderEntries {
		el, ok := h.(bxdm.ElementNode)
		if !ok || !mustUnderstand(el) {
			continue
		}
		name := el.ElemName()
		if !(*s.understood.Load())[bxdm.QName{Space: name.Space, Local: name.Local}] {
			s.obs.Inc(obs.ServerFaults)
			return (&Fault{
				Code:   FaultMustUnderstand,
				String: fmt.Sprintf("header %v not understood", name),
			}).Envelope()
		}
	}
	resp, err := s.handler(ctx, req)
	sp.Mark(obs.ServerHandler)
	if err != nil {
		s.obs.Inc(obs.ServerFaults)
		var f *Fault
		if errors.As(err, &f) {
			return f.Envelope()
		}
		return (&Fault{Code: FaultServer, String: err.Error()}).Envelope()
	}
	if resp == nil {
		resp = NewEnvelope()
	}
	return resp
}

// Close stops the server: it cancels the handler context, closes all live
// channels and the binding, and waits for channel goroutines to drain.
func (s *Server[E, B]) Close() error {
	s.cancel()
	s.mu.Lock()
	s.closed = true
	for ch := range s.chans {
		ch.Close()
	}
	s.mu.Unlock()
	err := s.bind.Close()
	s.wg.Wait()
	return err
}
