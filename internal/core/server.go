package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"bxsoap/internal/obs"
)

// Handler processes one SOAP request envelope and produces the response.
// Returning a *Fault (as the error) sends that fault; any other error is
// wrapped into a soap:Server fault.
type Handler func(ctx context.Context, req *Envelope) (*Envelope, error)

// Server is the server side of the generic engine, composed from the same
// two policy axes as Engine. Configuration is fixed at NewServer time via
// options (WithErrorLog, WithUnderstood, WithObserver); a constructed
// server carries no settable knobs, so there is nothing to race with Serve.
type Server[E Encoding, B ServerBinding] struct {
	// disp performs the transport-independent half of every exchange
	// (decode → mustUnderstand → handler → fault conversion → encode); the
	// server loop owns only the channel lifecycle around it. The same
	// dispatcher type serves transports with their own scheduling (see
	// internal/muxbind), so protocol behavior is defined exactly once.
	disp *Dispatcher[E]
	bind B
	obs  *obs.Observer

	// chunkBytes is nonzero when WithStreaming was given: channels that
	// implement StreamChannel then carry exchanges as chunk sequences.
	chunkBytes int

	// ctx is the server's lifetime context: handlers receive a context
	// derived from it, and Close cancels it, so in-flight handlers observe
	// shutdown instead of running under an unattached Background context.
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	wg     sync.WaitGroup
	closed bool
	chans  map[Channel]struct{}

	errorLog *log.Logger
}

// NewServer composes a server from its policies, handler, and options.
func NewServer[E Encoding, B ServerBinding](enc E, bind B, h Handler, opts ...ServerOption) *Server[E, B] {
	var cfg serverConfig
	for _, opt := range opts {
		opt.applyServer(&cfg)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server[E, B]{
		disp:       NewDispatcher(enc, h, opts...),
		bind:       bind,
		obs:        cfg.obs,
		chunkBytes: cfg.chunkBytes,
		ctx:        ctx,
		cancel:     cancel,
		chans:      make(map[Channel]struct{}),
		errorLog:   cfg.errorLog,
	}
}

// Encoding returns the server's encoding policy.
func (s *Server[E, B]) Encoding() E { return s.disp.Encoding() }

// Codec returns the server's serialization facade.
func (s *Server[E, B]) Codec() Codec[E] { return s.disp.Codec() }

// Dispatcher returns the server's transport-independent dispatch half.
func (s *Server[E, B]) Dispatcher() *Dispatcher[E] { return s.disp }

// Addr reports the bound transport address.
func (s *Server[E, B]) Addr() net.Addr { return s.bind.Addr() }

// Serve accepts channels until the binding is closed, dispatching each on
// its own goroutine. It returns nil after a clean Close.
func (s *Server[E, B]) Serve() error {
	errorLog := s.errorLog
	for {
		ch, err := s.bind.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				s.wg.Wait()
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			ch.Close()
			s.wg.Wait()
			return nil
		}
		s.chans[ch] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.chans, ch)
				s.mu.Unlock()
				ch.Close()
			}()
			if err := s.serveChannel(ch); err != nil && errorLog != nil {
				errorLog.Printf("soap: channel error: %v", err)
			}
		}()
	}
}

func (s *Server[E, B]) serveChannel(ch Channel) error {
	// Handlers run under the server's lifetime context: Close cancels it,
	// so a long-running handler sees shutdown instead of outliving it.
	ctx := s.ctx
	if s.chunkBytes > 0 {
		if sc, ok := ch.(StreamChannel); ok {
			return s.serveChannelStreamed(ctx, sc)
		}
	}
	for {
		// The server hop starts before the read: the trace context arrives
		// inside the request, so dispatch binds it after decode. A hop whose
		// read fails (channel closed, peer gone) is abandoned unrecorded —
		// no request was handled.
		hop := s.obs.StartHop(obs.RoleServer)
		sp := s.obs.SpanWith(hop)
		payload, ct, err := ch.ReceiveRequest(ctx)
		sp.Mark(obs.ServerReceive)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		out, err := s.disp.DispatchPayload(ctx, payload, ct, &sp, hop)
		payload.Release()
		if err != nil {
			s.obs.FinishHop(hop, err)
			return err
		}
		// SendResponse takes ownership of out and releases it when written.
		if err := ch.SendResponse(out, s.disp.Codec().ContentType()); err != nil {
			sp.Mark(obs.ServerSend)
			s.obs.FinishHop(hop, err)
			return fmt.Errorf("send response: %w", err)
		}
		sp.Mark(obs.ServerSend)
		s.obs.FinishHop(hop, nil)
	}
}

// serveChannelStreamed is the chunked channel loop: requests are decoded
// as their chunks arrive and responses are encoded straight into the
// channel's sink, so neither direction materializes a whole message. Stage
// semantics shift with the interleaving — ServerReceive marks the stream
// opening (bytes keep arriving through decode), and ServerSend covers the
// interleaved encode+send (there is no separate ServerEncode mark). A
// buffered peer's requests still flow here: the channel surfaces them as
// one-chunk sources, and the chunked response frames carry the same bytes.
func (s *Server[E, B]) serveChannelStreamed(ctx context.Context, sc StreamChannel) error {
	for {
		hop := s.obs.StartHop(obs.RoleServer)
		sp := s.obs.SpanWith(hop)
		src, ct, err := sc.ReceiveRequestStream(ctx)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		sp.Mark(obs.ServerReceive)
		out := s.disp.DispatchStream(ctx, countingSource{src, s.obs}, ct, &sp, hop)
		sink, err := sc.SendResponseStream(s.disp.Codec().ContentType())
		if err != nil {
			sp.Mark(obs.ServerSend)
			s.obs.FinishHop(hop, err)
			return fmt.Errorf("send response: %w", err)
		}
		if err := s.disp.Codec().EncodeChunks(out, s.chunkBytes, countingSink{sink, s.obs}); err != nil {
			sink.Abort()
			sp.Mark(obs.ServerSend)
			s.obs.FinishHop(hop, err)
			return fmt.Errorf("send response: %w", err)
		}
		sp.Mark(obs.ServerSend)
		s.obs.FinishHop(hop, nil)
	}
}

// Close stops the server: it cancels the handler context, closes all live
// channels and the binding, and waits for channel goroutines to drain.
func (s *Server[E, B]) Close() error {
	s.cancel()
	s.mu.Lock()
	s.closed = true
	for ch := range s.chans {
		ch.Close()
	}
	s.mu.Unlock()
	err := s.bind.Close()
	s.wg.Wait()
	return err
}
