package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"bxsoap/internal/bxdm"
)

// Handler processes one SOAP request envelope and produces the response.
// Returning a *Fault (as the error) sends that fault; any other error is
// wrapped into a soap:Server fault.
type Handler func(ctx context.Context, req *Envelope) (*Envelope, error)

// Server is the server side of the generic engine, composed from the same
// two policy axes as Engine.
type Server[E Encoding, B ServerBinding] struct {
	enc     E
	bind    B
	handler Handler

	// understood is the set of header QNames this node can process;
	// mustUnderstand entries outside the set draw a MustUnderstand fault
	// (SOAP 1.1 §4.2.3).
	understood map[bxdm.QName]bool

	mu     sync.Mutex
	wg     sync.WaitGroup
	closed bool
	chans  map[Channel]struct{}
	// ErrorLog receives per-channel failures; nil silences them.
	ErrorLog *log.Logger
}

// NewServer composes a server from its policies and handler.
func NewServer[E Encoding, B ServerBinding](enc E, bind B, h Handler) *Server[E, B] {
	return &Server[E, B]{
		enc:        enc,
		bind:       bind,
		handler:    h,
		understood: make(map[bxdm.QName]bool),
		chans:      make(map[Channel]struct{}),
	}
}

// Understand registers header names this node processes, for
// mustUnderstand enforcement.
func (s *Server[E, B]) Understand(names ...bxdm.QName) {
	for _, n := range names {
		s.understood[bxdm.QName{Space: n.Space, Local: n.Local}] = true
	}
}

// Addr reports the bound transport address.
func (s *Server[E, B]) Addr() net.Addr { return s.bind.Addr() }

// Serve accepts channels until the binding is closed, dispatching each on
// its own goroutine. It returns nil after a clean Close.
func (s *Server[E, B]) Serve() error {
	for {
		ch, err := s.bind.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				s.wg.Wait()
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			ch.Close()
			s.wg.Wait()
			return nil
		}
		s.chans[ch] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.chans, ch)
				s.mu.Unlock()
				ch.Close()
			}()
			if err := s.serveChannel(ch); err != nil && s.ErrorLog != nil {
				s.ErrorLog.Printf("soap: channel error: %v", err)
			}
		}()
	}
}

func (s *Server[E, B]) serveChannel(ch Channel) error {
	ctx := context.Background()
	for {
		payload, ct, err := ch.ReceiveRequest(ctx)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		resp := s.dispatch(ctx, payload.Bytes(), ct)
		payload.Release()
		out, err := EncodePayload(s.enc, resp)
		if err != nil {
			return fmt.Errorf("encode response: %w", err)
		}
		// SendResponse takes ownership of out and releases it when written.
		if err := ch.SendResponse(out, s.enc.ContentType()); err != nil {
			return fmt.Errorf("send response: %w", err)
		}
	}
}

// dispatch decodes, enforces mustUnderstand, runs the handler, and converts
// errors to faults. It never fails: protocol problems become fault
// envelopes, which is what a SOAP node owes its peer.
func (s *Server[E, B]) dispatch(ctx context.Context, payload []byte, ct string) *Envelope {
	if err := CheckContentType(s.enc, ct); err != nil {
		return (&Fault{Code: FaultClient, String: err.Error()}).Envelope()
	}
	req, err := DecodeEnvelope(s.enc, payload)
	if err != nil {
		return (&Fault{Code: FaultClient, String: fmt.Sprintf("cannot decode request: %v", err)}).Envelope()
	}
	for _, h := range req.HeaderEntries {
		el, ok := h.(bxdm.ElementNode)
		if !ok || !mustUnderstand(el) {
			continue
		}
		name := el.ElemName()
		if !s.understood[bxdm.QName{Space: name.Space, Local: name.Local}] {
			return (&Fault{
				Code:   FaultMustUnderstand,
				String: fmt.Sprintf("header %v not understood", name),
			}).Envelope()
		}
	}
	resp, err := s.handler(ctx, req)
	if err != nil {
		var f *Fault
		if errors.As(err, &f) {
			return f.Envelope()
		}
		return (&Fault{Code: FaultServer, String: err.Error()}).Envelope()
	}
	if resp == nil {
		resp = NewEnvelope()
	}
	return resp
}

// Close stops the server and closes all live channels.
func (s *Server[E, B]) Close() error {
	s.mu.Lock()
	s.closed = true
	for ch := range s.chans {
		ch.Close()
	}
	s.mu.Unlock()
	err := s.bind.Close()
	s.wg.Wait()
	return err
}
