package core

import (
	"bxsoap/internal/bxdm"
	"bxsoap/internal/obs"
	"bxsoap/internal/tracehdr"
)

// Request tracing, envelope side. The obs package owns trace state and the
// flight recorder; internal/tracehdr owns the header block's wire form;
// this file ties the two to the Envelope so both the engine's Call/Send and
// svcpool's encode-once path start and propagate traces the same way.

// TraceContextOf extracts the wire trace context from env's header block.
// It reports false when the block is absent or malformed — either way the
// receiver starts from its own context.
func TraceContextOf(env *Envelope) (obs.TraceContext, bool) {
	h := env.Header(tracehdr.HeaderName())
	if h == nil {
		return obs.TraceContext{}, false
	}
	tc, err := tracehdr.Parse(h)
	if err != nil {
		return obs.TraceContext{}, false
	}
	return tc, true
}

// TracedRequest returns env carrying tc as its trace header block,
// replacing any block already present (the relay case must not leave the
// stale upstream block shadowing the new one). The input envelope is never
// mutated: request envelopes are routinely shared across goroutines and
// reused across calls, so the header list is copy-on-write; body children
// are shared with the original.
func TracedRequest(env *Envelope, tc obs.TraceContext) *Envelope {
	out := &Envelope{BodyChildren: env.BodyChildren}
	out.HeaderEntries = make([]bxdm.Node, 0, len(env.HeaderEntries)+1)
	for _, h := range env.HeaderEntries {
		if el, ok := h.(bxdm.ElementNode); ok && el.ElemName().Matches(tracehdr.HeaderName()) {
			continue
		}
		out.HeaderEntries = append(out.HeaderEntries, h)
	}
	out.HeaderEntries = append(out.HeaderEntries, tracehdr.Node(tc))
	return out
}

// BeginClientTrace starts the client hop for an outgoing request and stamps
// the envelope with the context addressed to the next node. An envelope
// already carrying a trace block (an intermediary relaying a traced
// request) continues that trace — this hop takes the received sequence plus
// one; otherwise a fresh trace is rooted here at sequence zero. With
// tracing disabled (no recorder on o, or o nil) it returns env unchanged
// and a nil hop, and performs no allocation.
func BeginClientTrace(o *obs.Observer, env *Envelope) (*Envelope, *obs.Hop) {
	if !o.Tracing() {
		return env, nil
	}
	hop := o.StartHop(obs.RoleClient)
	var own obs.TraceContext
	if found, ok := TraceContextOf(env); ok {
		own = found.Next()
	} else {
		own = obs.TraceContext{ID: obs.NewTraceID(), Seq: 0}
	}
	hop.Bind(own)
	return TracedRequest(env, own.Next()), hop
}

// BindServerTrace binds a decoded request's wire trace context (if any)
// to the server hop. Nil-safe on both sides.
func BindServerTrace(hop *obs.Hop, req *Envelope) {
	if hop == nil {
		return
	}
	if tc, ok := TraceContextOf(req); ok {
		hop.Bind(tc)
	}
}
