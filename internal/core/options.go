package core

import (
	"log"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/obs"
)

// The construction options for engines and servers. Everything is set
// here, at NewEngine/NewServer time, so a composed node is immutable once
// serving — the options redesign is what makes "configure after Serve"
// impossible to race by construction. (The transitional field-poking and
// post-construction mutators — Server.ErrorLog, Server.Understand — were
// removed once every caller migrated; late header registration goes
// through Dispatcher.Understand, which swaps the set atomically.)
//
// EngineOption and ServerOption are split interfaces because the two sides
// accept different settings; Option implements both for settings (the
// observer) that apply to either. The With* constructors return the most
// permissive type that fits, so call sites just list options:
//
//	core.NewServer(enc, bind, h,
//		core.WithErrorLog(logger),
//		core.WithUnderstood(securityHeader),
//		core.WithObserver(o))
//	core.NewEngine(enc, bind, core.WithObserver(o))

// EngineOption configures a client engine at construction.
type EngineOption interface{ applyEngine(*engineConfig) }

// ServerOption configures a server at construction.
type ServerOption interface{ applyServer(*serverConfig) }

// Option is an option accepted by both NewEngine and NewServer.
type Option interface {
	EngineOption
	ServerOption
}

type engineConfig struct {
	obs        *obs.Observer
	templates  int
	chunkBytes int
}

type serverConfig struct {
	obs        *obs.Observer
	errorLog   *log.Logger
	understood []bxdm.QName
	templates  int
	chunkBytes int
}

type observerOption struct{ o *obs.Observer }

func (v observerOption) applyEngine(c *engineConfig) { c.obs = v.o }
func (v observerOption) applyServer(c *serverConfig) { c.obs = v.o }

// WithObserver wires an observability sink into the engine or server: the
// request path records per-stage latencies (client: encode → send → wait →
// decode; server: receive → decode → handler → encode → send) and the call
// counters into it. A nil observer (the default) keeps the path on the
// allocation-free nil-sink fast path.
func WithObserver(o *obs.Observer) Option { return observerOption{o} }

type errorLogOption struct{ l *log.Logger }

func (v errorLogOption) applyServer(c *serverConfig) { c.errorLog = v.l }

// WithErrorLog directs per-channel failures to l; without it they are
// silently dropped.
func WithErrorLog(l *log.Logger) ServerOption { return errorLogOption{l} }

type understoodOption struct{ names []bxdm.QName }

func (v understoodOption) applyServer(c *serverConfig) {
	c.understood = append(c.understood, v.names...)
}

// WithUnderstood registers header QNames this node processes, for SOAP 1.1
// mustUnderstand enforcement (§4.2.3). Repeatable; the sets union.
// Replaces the deprecated post-construction Server.Understand.
func WithUnderstood(names ...bxdm.QName) ServerOption { return understoodOption{names} }

type templatesOption struct{ capacity int }

func (v templatesOption) applyEngine(c *engineConfig) { c.templates = v.capacity }
func (v templatesOption) applyServer(c *serverConfig) { c.templates = v.capacity }

// WithTemplates enables the shape-keyed template cache: up to capacity
// message shapes are compiled into byte-level encode/decode plans, and
// repeated shapes skip the generic tree walk entirely (capacity <= 0 picks
// a default). The option is a no-op when the encoding does not implement
// TemplateCompiler (e.g. wssec-wrapped policies), and any shape the
// compiler cannot prove faithful falls back to the generic path — enabling
// templates never changes bytes on the wire or decoded trees. Off by
// default.
func WithTemplates(capacity int) Option { return templatesOption{capacity} }

type streamingOption struct{ chunkBytes int }

func (v streamingOption) applyEngine(c *engineConfig) { c.chunkBytes = normChunkBytes(v.chunkBytes) }
func (v streamingOption) applyServer(c *serverConfig) { c.chunkBytes = normChunkBytes(v.chunkBytes) }

// normChunkBytes resolves the WithStreaming argument: the zero value means
// "streaming on, default window", so the stored config is nonzero exactly
// when the option was given.
func normChunkBytes(n int) int {
	if n <= 0 {
		return DefaultChunkBytes
	}
	return n
}

// WithStreaming enables the chunked message pipeline: messages flow as a
// sequence of pooled chunks of roughly chunkBytes each instead of one
// materialized buffer (chunkBytes <= 0 picks DefaultChunkBytes), bounding
// memory by the chunk window rather than message size. On an engine the
// streamed path engages when the binding implements StreamBinding; on a
// server a channel implementing StreamChannel answers chunked requests
// chunked. Either side falls back to the buffered path against a peer or
// transport without streaming support — enabling streaming never changes
// which messages round-trip, only how they are carried (see the DESIGN.md
// fallback matrix). Off by default. Mutually exclusive with templates on
// the encode side: a streamed message never consults the plan cache.
func WithStreaming(chunkBytes int) Option { return streamingOption{chunkBytes} }
