package core

import (
	"bytes"
	"context"
	"fmt"
)

// Engine is the client-side generic SOAP engine: the Go rendering of the
// paper's
//
//	template <typename EncodingPolicy, typename BindingPolicy>
//	class SoapEngine {...};
//
// The encoding and binding policies are type parameters bound at compile
// time, so each (encoding, binding) combination — SOAP over XML/HTTP, XML/
// TCP, BXSA/HTTP, BXSA/TCP, and any future policy — monomorphizes into its
// own fully inlinable engine, type-safely and with zero dynamic dispatch in
// the hot path.
type Engine[E Encoding, B Binding] struct {
	enc  E
	bind B
}

// NewEngine composes an engine from its two policies.
func NewEngine[E Encoding, B Binding](enc E, bind B) *Engine[E, B] {
	return &Engine[E, B]{enc: enc, bind: bind}
}

// Encoding returns the engine's encoding policy.
func (e *Engine[E, B]) Encoding() E { return e.enc }

// Binding returns the engine's binding policy.
func (e *Engine[E, B]) Binding() B { return e.bind }

// Call performs the request-response message exchange pattern. If the peer
// responds with a SOAP fault, Call returns it as the error (of type
// *Fault) alongside the decoded envelope.
func (e *Engine[E, B]) Call(ctx context.Context, req *Envelope) (*Envelope, error) {
	p, err := EncodePayload(e.enc, req)
	if err != nil {
		return nil, fmt.Errorf("soap: encode request: %w", err)
	}
	defer p.Release()
	return e.CallPayload(ctx, p)
}

// CallPayload performs the request-response exchange with an already
// serialized request. The engine borrows the payload — the caller keeps
// ownership, so pooled requests can be reused across retries (svcpool
// encodes once and replays the same payload on each attempt).
//
//paylint:borrows
func (e *Engine[E, B]) CallPayload(ctx context.Context, req *Payload) (*Envelope, error) {
	if err := e.bind.SendRequest(ctx, req, e.enc.ContentType()); err != nil {
		return nil, classifyTransport("send request", err)
	}
	payload, ct, err := e.bind.ReceiveResponse(ctx)
	if err != nil {
		return nil, classifyTransport("receive response", err)
	}
	defer payload.Release()
	if err := CheckContentType(e.enc, ct); err != nil {
		return nil, err
	}
	// The decode call goes through the concrete type parameter E — the
	// compile-time binding the paper's policy design is about ("compiler
	// optimizations are not impacted, and inlining is still enabled").
	doc, err := e.enc.Decode(payload.Bytes())
	if err != nil {
		return nil, fmt.Errorf("soap: decode response: %w", err)
	}
	resp, err := EnvelopeFromDocument(doc)
	if err != nil {
		return nil, fmt.Errorf("soap: decode response: %w", err)
	}
	if f := FaultFromEnvelope(resp); f != nil {
		return resp, f
	}
	return resp, nil
}

// Send performs the one-way message exchange pattern: the request is
// transmitted and the transport-level acknowledgement is drained, keeping
// persistent connections in sync. A SOAP fault riding the acknowledgement
// is decoded and returned as a *Fault — the peer refusing the message is an
// application outcome, not a transport failure — while genuine transport
// errors come back as *TransportError, so retry logic can tell the two
// apart. Non-fault acknowledgement payloads are drained without decoding.
func (e *Engine[E, B]) Send(ctx context.Context, req *Envelope) error {
	p, err := EncodePayload(e.enc, req)
	if err != nil {
		return fmt.Errorf("soap: encode request: %w", err)
	}
	defer p.Release()
	return e.SendPayload(ctx, p)
}

// SendPayload performs the one-way exchange with an already serialized
// request, borrowing the payload like CallPayload does.
//
//paylint:borrows
func (e *Engine[E, B]) SendPayload(ctx context.Context, req *Payload) error {
	if err := e.bind.SendRequest(ctx, req, e.enc.ContentType()); err != nil {
		return classifyTransport("send request", err)
	}
	payload, ct, err := e.bind.ReceiveResponse(ctx)
	if err != nil {
		return classifyTransport("transport acknowledgement", err)
	}
	defer payload.Release()
	// Cheap sniff first so the one-way fast path never pays a decode; both
	// encodings spell the element name "Fault" literally.
	if ackLooksLikeFault(payload.Bytes()) && CheckContentType(e.enc, ct) == nil {
		if doc, err := e.enc.Decode(payload.Bytes()); err == nil {
			if resp, err := EnvelopeFromDocument(doc); err == nil {
				if f := FaultFromEnvelope(resp); f != nil {
					return f
				}
			}
		}
	}
	return nil
}

// ackLooksLikeFault sniffs an acknowledgement payload for a fault marker.
// The whole payload is scanned: a fault envelope may carry arbitrarily
// large leading headers (e.g. signed Security headers), and bytes.Contains
// over the acknowledgement is cheap next to the exchange that produced it.
func ackLooksLikeFault(payload []byte) bool {
	return bytes.Contains(payload, []byte("Fault"))
}

// Close releases the engine's binding.
func (e *Engine[E, B]) Close() error { return e.bind.Close() }
