package core

import (
	"bytes"
	"context"
	"fmt"

	"bxsoap/internal/obs"
)

// Engine is the client-side generic SOAP engine: the Go rendering of the
// paper's
//
//	template <typename EncodingPolicy, typename BindingPolicy>
//	class SoapEngine {...};
//
// The encoding and binding policies are type parameters bound at compile
// time, so each (encoding, binding) combination — SOAP over XML/HTTP, XML/
// TCP, BXSA/HTTP, BXSA/TCP, and any future policy — monomorphizes into its
// own fully inlinable engine, type-safely and with zero dynamic dispatch in
// the hot path.
type Engine[E Encoding, B Binding] struct {
	codec Codec[E]
	bind  B
	obs   *obs.Observer

	// chunkBytes is nonzero when WithStreaming was given: Call then carries
	// messages as chunk sequences whenever the binding implements
	// StreamBinding, falling back to the buffered exchange otherwise.
	chunkBytes int
}

// NewEngine composes an engine from its two policies. Options (see
// options.go) attach cross-cutting configuration; with none, the engine is
// exactly the bare policy composition.
func NewEngine[E Encoding, B Binding](enc E, bind B, opts ...EngineOption) *Engine[E, B] {
	var cfg engineConfig
	for _, opt := range opts {
		opt.applyEngine(&cfg)
	}
	e := &Engine[E, B]{codec: NewCodec(enc), bind: bind, obs: cfg.obs, chunkBytes: cfg.chunkBytes}
	if cfg.templates > 0 {
		if tc, ok := any(enc).(TemplateCompiler); ok {
			e.codec.plans = newPlanCache(tc, cfg.templates, cfg.obs)
		}
	}
	return e
}

// Encoding returns the engine's encoding policy.
func (e *Engine[E, B]) Encoding() E { return e.codec.Encoding() }

// Codec returns the engine's serialization facade.
func (e *Engine[E, B]) Codec() Codec[E] { return e.codec }

// Binding returns the engine's binding policy.
func (e *Engine[E, B]) Binding() B { return e.bind }

// Observer returns the engine's observability sink (nil when none was
// configured; nil observers accept every recording call as a no-op).
func (e *Engine[E, B]) Observer() *obs.Observer { return e.obs }

// Streaming reports the configured chunk window in bytes, or 0 when the
// engine runs buffered. Retry layers use it to decide whether a request can
// be encoded once and replayed (buffered) or must be re-encoded per attempt
// (streamed — the chunks were consumed by the transport).
func (e *Engine[E, B]) Streaming() int { return e.chunkBytes }

// Call performs the request-response message exchange pattern. If the peer
// responds with a SOAP fault, Call returns it as the error (of type
// *Fault) alongside the decoded envelope.
//
// With tracing enabled (an Observer carrying a Recorder), Call records a
// client hop and stamps the outgoing envelope with the trace header block
// — continuing the envelope's trace when it already carries one, else
// rooting a new trace here.
func (e *Engine[E, B]) Call(ctx context.Context, req *Envelope) (*Envelope, error) {
	req, hop := BeginClientTrace(e.obs, req)
	sp := e.obs.SpanWith(hop)
	var op string
	if e.obs.Dimensional() {
		op = OpName(req)
	}
	if e.chunkBytes > 0 {
		if sb, ok := any(e.bind).(StreamBinding); ok {
			resp, err := e.callStreamed(ctx, req, sb, sp)
			e.obs.FinishHop(hop, err)
			e.recordClientOp(op, sp, hop, err)
			return resp, err
		}
	}
	p, err := e.codec.EncodePayload(req)
	if err != nil {
		e.obs.Inc(obs.CallsStarted)
		e.obs.Inc(obs.CallsFailed)
		e.obs.FinishHop(hop, err)
		e.recordClientOp(op, sp, hop, err)
		return nil, fmt.Errorf("soap: encode request: %w", err)
	}
	sp.Mark(obs.ClientEncode)
	defer p.Release()
	resp, err := e.callPayload(ctx, p, sp)
	e.obs.FinishHop(hop, err)
	e.recordClientOp(op, sp, hop, err)
	return resp, err
}

// recordClientOp lands one finished client exchange in the dimensional
// series for op: the span's marked total as the latency, any error (SOAP
// faults included — a fault burns the caller's error budget even though
// the transport worked) as the failure flag, and the hop's trace ID as the
// exemplar. Entry points that own the whole exchange (Call, Send) record;
// the payload-level and retry-level entry points (CallPayload, CallStream,
// SendPayload) do not, because their caller owns the logical call and
// records it once across attempts — svcpool does exactly that.
func (e *Engine[E, B]) recordClientOp(op string, sp obs.Span, hop *obs.Hop, err error) {
	if op == "" {
		return
	}
	e.obs.RecordOp(op, obs.RoleClient, sp.Total(), err != nil, hop.Context().ID)
}

// CallStream performs the request-response exchange from the envelope,
// streaming the encode into the binding chunk by chunk. It is the retry
// layers' streamed counterpart of CallPayload: a streamed request has no
// materialized payload to replay, so each attempt calls this again and the
// envelope tree is the replay source. Like CallPayload, the caller owns the
// trace hop and threads it via obs.ContextWithHop; no new trace is rooted
// here. When the binding cannot stream (or the engine runs buffered), the
// exchange falls back to a per-call buffered encode.
func (e *Engine[E, B]) CallStream(ctx context.Context, req *Envelope) (*Envelope, error) {
	var hop *obs.Hop
	if e.obs.Tracing() {
		hop = obs.HopFromContext(ctx)
	}
	sp := e.obs.SpanWith(hop)
	if e.chunkBytes > 0 {
		if sb, ok := any(e.bind).(StreamBinding); ok {
			return e.callStreamed(ctx, req, sb, sp)
		}
	}
	p, err := e.codec.EncodePayload(req)
	if err != nil {
		e.obs.Inc(obs.CallsStarted)
		e.obs.Inc(obs.CallsFailed)
		return nil, fmt.Errorf("soap: encode request: %w", err)
	}
	sp.Mark(obs.ClientEncode)
	defer p.Release()
	return e.callPayload(ctx, p, sp)
}

// CallPayload performs the request-response exchange with an already
// serialized request. The engine borrows the payload — the caller keeps
// ownership, so pooled requests can be reused across retries (svcpool
// encodes once and replays the same payload on each attempt).
//
// The caller that encoded the payload owns the trace hop (it saw the
// envelope; the engine sees only bytes) and threads it via
// obs.ContextWithHop; the engine's stage marks then accumulate into it.
// The ctx lookup is gated on Tracing so the disabled path stays free.
//
//paylint:borrows
func (e *Engine[E, B]) CallPayload(ctx context.Context, req *Payload) (*Envelope, error) {
	var hop *obs.Hop
	if e.obs.Tracing() {
		hop = obs.HopFromContext(ctx)
	}
	return e.callPayload(ctx, req, e.obs.SpanWith(hop))
}

// callPayload runs the exchange under an in-progress span (whose clock was
// restarted after any encode mark). Stages are marked on failure paths too,
// so a fault or transport error still leaves a complete, ordered trace.
//
//paylint:borrows
func (e *Engine[E, B]) callPayload(ctx context.Context, req *Payload, sp obs.Span) (*Envelope, error) {
	e.obs.Inc(obs.CallsStarted)
	if err := e.bind.SendRequest(ctx, req, e.codec.ContentType()); err != nil {
		sp.Mark(obs.ClientSend)
		e.obs.Inc(obs.CallsFailed)
		return nil, classifyTransport("send request", err)
	}
	sp.Mark(obs.ClientSend)
	payload, ct, err := e.bind.ReceiveResponse(ctx)
	sp.Mark(obs.ClientWait)
	if err != nil {
		e.obs.Inc(obs.CallsFailed)
		return nil, classifyTransport("receive response", err)
	}
	defer payload.Release()
	if err := CheckContentType(e.codec.Encoding(), ct); err != nil {
		e.obs.Inc(obs.CallsFailed)
		return nil, err
	}
	// The decode call goes through the concrete type parameter E — the
	// compile-time binding the paper's policy design is about ("compiler
	// optimizations are not impacted, and inlining is still enabled").
	resp, err := e.codec.DecodePayload(payload)
	sp.Mark(obs.ClientDecode)
	if err != nil {
		e.obs.Inc(obs.CallsFailed)
		return nil, fmt.Errorf("soap: decode response: %w", err)
	}
	e.obs.Inc(obs.CallsCompleted)
	if f := FaultFromEnvelope(resp); f != nil {
		// The peer answered: the call completed, with a fault as the answer.
		e.obs.Inc(obs.ClientFaults)
		return resp, f
	}
	return resp, nil
}

// callStreamed carries one exchange as chunk sequences: the request is
// encoded directly into the binding's sink, so the first chunk is on the
// wire while later parts of the tree are still being serialized, and the
// response is decoded chunk by chunk — neither direction ever materializes
// the whole message. Stage semantics shift accordingly: ClientSend covers
// the interleaved encode+send (there is no separate ClientEncode mark),
// ClientWait ends at the first response chunk's availability, and
// ClientDecode covers the chunked decode.
func (e *Engine[E, B]) callStreamed(ctx context.Context, req *Envelope, sb StreamBinding, sp obs.Span) (*Envelope, error) {
	e.obs.Inc(obs.CallsStarted)
	sink, err := sb.SendRequestStream(ctx, e.codec.ContentType())
	if err != nil {
		sp.Mark(obs.ClientSend)
		e.obs.Inc(obs.CallsFailed)
		return nil, classifyTransport("send request", err)
	}
	if err := e.codec.EncodeChunks(req, e.chunkBytes, countingSink{sink, e.obs}); err != nil {
		sink.Abort()
		sp.Mark(obs.ClientSend)
		e.obs.Inc(obs.CallsFailed)
		return nil, classifyTransport("send request", err)
	}
	sp.Mark(obs.ClientSend)
	src, ct, err := sb.ReceiveResponseStream(ctx)
	sp.Mark(obs.ClientWait)
	if err != nil {
		e.obs.Inc(obs.CallsFailed)
		return nil, classifyTransport("receive response", err)
	}
	if err := CheckContentType(e.codec.Encoding(), ct); err != nil {
		src.Abort()
		e.obs.Inc(obs.CallsFailed)
		return nil, err
	}
	resp, err := e.codec.DecodeChunks(countingSource{src, e.obs})
	sp.Mark(obs.ClientDecode)
	if err != nil {
		src.Abort()
		e.obs.Inc(obs.CallsFailed)
		return nil, fmt.Errorf("soap: decode response: %w", err)
	}
	e.obs.Inc(obs.CallsCompleted)
	if f := FaultFromEnvelope(resp); f != nil {
		e.obs.Inc(obs.ClientFaults)
		return resp, f
	}
	return resp, nil
}

// Send performs the one-way message exchange pattern: the request is
// transmitted and the transport-level acknowledgement is drained, keeping
// persistent connections in sync. A SOAP fault riding the acknowledgement
// is decoded and returned as a *Fault — the peer refusing the message is an
// application outcome, not a transport failure — while genuine transport
// errors come back as *TransportError, so retry logic can tell the two
// apart. Non-fault acknowledgement payloads are drained without decoding.
func (e *Engine[E, B]) Send(ctx context.Context, req *Envelope) error {
	req, hop := BeginClientTrace(e.obs, req)
	sp := e.obs.SpanWith(hop)
	var op string
	if e.obs.Dimensional() {
		op = OpName(req)
	}
	p, err := e.codec.EncodePayload(req)
	if err != nil {
		e.obs.Inc(obs.CallsStarted)
		e.obs.Inc(obs.CallsFailed)
		e.obs.FinishHop(hop, err)
		e.recordClientOp(op, sp, hop, err)
		return fmt.Errorf("soap: encode request: %w", err)
	}
	sp.Mark(obs.ClientEncode)
	defer p.Release()
	err = e.sendPayload(ctx, p, sp)
	e.obs.FinishHop(hop, err)
	e.recordClientOp(op, sp, hop, err)
	return err
}

// SendPayload performs the one-way exchange with an already serialized
// request, borrowing the payload like CallPayload does.
//
//paylint:borrows
func (e *Engine[E, B]) SendPayload(ctx context.Context, req *Payload) error {
	var hop *obs.Hop
	if e.obs.Tracing() {
		hop = obs.HopFromContext(ctx)
	}
	return e.sendPayload(ctx, req, e.obs.SpanWith(hop))
}

//paylint:borrows
func (e *Engine[E, B]) sendPayload(ctx context.Context, req *Payload, sp obs.Span) error {
	e.obs.Inc(obs.CallsStarted)
	if err := e.bind.SendRequest(ctx, req, e.codec.ContentType()); err != nil {
		sp.Mark(obs.ClientSend)
		e.obs.Inc(obs.CallsFailed)
		return classifyTransport("send request", err)
	}
	sp.Mark(obs.ClientSend)
	payload, ct, err := e.bind.ReceiveResponse(ctx)
	sp.Mark(obs.ClientWait)
	if err != nil {
		e.obs.Inc(obs.CallsFailed)
		return classifyTransport("transport acknowledgement", err)
	}
	defer payload.Release()
	e.obs.Inc(obs.CallsCompleted)
	// Cheap sniff first so the one-way fast path never pays a decode; both
	// encodings spell the element name "Fault" literally.
	if ackLooksLikeFault(payload.Bytes()) && CheckContentType(e.codec.Encoding(), ct) == nil {
		if resp, err := e.codec.DecodePayload(payload); err == nil {
			if f := FaultFromEnvelope(resp); f != nil {
				e.obs.Inc(obs.ClientFaults)
				return f
			}
		}
	}
	return nil
}

// ackLooksLikeFault sniffs an acknowledgement payload for a fault marker.
// The whole payload is scanned: a fault envelope may carry arbitrarily
// large leading headers (e.g. signed Security headers), and bytes.Contains
// over the acknowledgement is cheap next to the exchange that produced it.
func ackLooksLikeFault(payload []byte) bool {
	return bytes.Contains(payload, []byte("Fault"))
}

// Close releases the engine's binding.
func (e *Engine[E, B]) Close() error { return e.bind.Close() }
