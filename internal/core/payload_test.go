package core

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestPayloadWriteGrowsAlongClasses(t *testing.T) {
	base := PayloadsInUse()
	p := NewPayload(0)
	chunk := bytes.Repeat([]byte("x"), 300)
	for i := 0; i < 20; i++ {
		if _, err := p.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if p.Len() != 20*300 {
		t.Errorf("Len = %d", p.Len())
	}
	if got := cap(p.Bytes()); got < p.Len() {
		t.Errorf("cap %d < len %d", got, p.Len())
	}
	p.Release()
	if got := PayloadsInUse(); got != base {
		t.Errorf("PayloadsInUse = %d, want %d", got, base)
	}
}

func TestPayloadDoubleReleasePanics(t *testing.T) {
	p := NewPayload(16)
	p.Release()
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	p.Release()
}

func TestPayloadRetainObligesExtraRelease(t *testing.T) {
	base := PayloadsInUse()
	p := NewPayload(16)
	p.Write([]byte("shared"))
	p.Retain()
	p.Release()
	if got := string(p.Bytes()); got != "shared" {
		t.Errorf("retained payload lost bytes: %q", got)
	}
	if got := PayloadsInUse(); got != base+1 {
		t.Errorf("PayloadsInUse = %d before final release, want %d", got, base+1)
	}
	p.Release()
	if got := PayloadsInUse(); got != base {
		t.Errorf("PayloadsInUse = %d, want %d", got, base)
	}
}

func TestPayloadFromExternalBytesNeverPooled(t *testing.T) {
	ext := []byte("externally owned")
	p := NewPayloadFrom(ext)
	if !bytes.Equal(p.Bytes(), ext) {
		t.Error("wrapper lost bytes")
	}
	p.Release()
	if string(ext) != "externally owned" {
		t.Error("release mutated externally owned bytes")
	}
}

func TestReadPayloadKnownSize(t *testing.T) {
	base := PayloadsInUse()
	p, err := ReadPayload(strings.NewReader("hello world"), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Bytes()) != "hello" {
		t.Errorf("payload = %q", p.Bytes())
	}
	p.Release()

	// Truncated input: error, and the half-filled buffer is not leaked.
	if _, err := ReadPayload(strings.NewReader("hi"), 10, 0); err == nil {
		t.Error("truncated read succeeded")
	}
	// Over-limit size rejected before reading anything.
	if _, err := ReadPayload(strings.NewReader("hi"), 100, 10); err == nil {
		t.Error("size beyond limit accepted")
	}
	if got := PayloadsInUse(); got != base {
		t.Errorf("PayloadsInUse = %d, want %d", got, base)
	}
}

func TestReadPayloadUnknownSize(t *testing.T) {
	base := PayloadsInUse()
	msg := strings.Repeat("chunk", 4000) // 20 KB: crosses a class boundary
	p, err := ReadPayload(strings.NewReader(msg), -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Bytes()) != msg {
		t.Error("read-to-EOF payload differs")
	}
	p.Release()

	if _, err := ReadPayload(strings.NewReader(msg), -1, 100); err == nil {
		t.Error("limit not enforced on unknown-size read")
	}
	if got := PayloadsInUse(); got != base {
		t.Errorf("PayloadsInUse = %d, want %d", got, base)
	}
}

func TestReadPayloadZeroSize(t *testing.T) {
	p, err := ReadPayload(iotest{}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 0 {
		t.Errorf("Len = %d", p.Len())
	}
	p.Release()
}

// iotest fails on any read: a zero-size ReadPayload must not touch r.
type iotest struct{}

func (iotest) Read([]byte) (int, error) { return 0, io.ErrClosedPipe }
