package httpbind

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"bxsoap/internal/core"
)

// The shutdown/response race used to leak: a SendResponse that queued its
// payload in c.resp just as the handler's shutdown branch gave up on the
// exchange left the payload parked in the buffered channel forever — a
// pooled buffer checked out and never released. The two-phase abandon
// protocol (handler: mark then drain; sender: send, re-check mark, reclaim)
// releases it exactly once in every interleaving. These tests pin both
// interleavings directly and then the whole race end-to-end.

// TestAbandonedResponseReleasedSenderFirst: the response is queued before
// the handler abandons; the handler's drain finds and releases it.
func TestAbandonedResponseReleasedSenderFirst(t *testing.T) {
	base := core.PayloadsInUse()
	ch := &channel{resp: make(chan response, 1)}
	if err := ch.SendResponse(core.NewPayloadFrom([]byte("late")), "text/xml"); err != nil {
		t.Fatalf("SendResponse before abandon: %v", err)
	}
	// Handler side, as in handle()'s shutdown branch: mark, then drain.
	ch.abandoned.Store(true)
	select {
	case resp := <-ch.resp:
		resp.payload.Release()
	default:
	}
	if got := core.PayloadsInUse(); got != base {
		t.Fatalf("PayloadsInUse = %d, want %d — queued response leaked", got, base)
	}
}

// TestAbandonedResponseReleasedHandlerFirst: the handler abandons before
// SendResponse runs; the sender re-checks the mark and reclaims its own
// queued payload, reporting the shutdown as a transport error.
func TestAbandonedResponseReleasedHandlerFirst(t *testing.T) {
	base := core.PayloadsInUse()
	ch := &channel{resp: make(chan response, 1)}
	ch.abandoned.Store(true)
	// The handler's drain ran before the send; the channel is empty.
	err := ch.SendResponse(core.NewPayloadFrom([]byte("late")), "text/xml")
	if err == nil {
		t.Fatal("SendResponse after abandon succeeded, want error")
	}
	var te *core.TransportError
	if !errors.As(err, &te) {
		t.Fatalf("SendResponse after abandon: %v, want *core.TransportError", err)
	}
	if got := core.PayloadsInUse(); got != base {
		t.Fatalf("PayloadsInUse = %d, want %d — abandoned response leaked", got, base)
	}
}

// TestCloseAfterResponseDoesNotQueueFallback: once a real response has been
// handed off and consumed, the handler has returned — Close must not queue
// its "no response produced" fallback into c.resp, because nobody is left
// to drain it and the pooled payload would be parked forever. (This was the
// common-path leak: every normal exchange whose dispatcher closed the
// channel after the handler wrote the response lost one pooled buffer.)
func TestCloseAfterResponseDoesNotQueueFallback(t *testing.T) {
	base := core.PayloadsInUse()
	ch := &channel{resp: make(chan response, 1)}
	if err := ch.SendResponse(core.NewPayloadFrom([]byte("<pong/>")), "text/xml"); err != nil {
		t.Fatalf("SendResponse: %v", err)
	}
	// Handler side: consume, write, release, return.
	r := <-ch.resp
	r.payload.Release()
	if err := ch.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := core.PayloadsInUse(); got != base {
		t.Fatalf("PayloadsInUse = %d, want %d — Close parked a fallback payload", got, base)
	}
}

// TestShutdownResponseRaceDoesNotLeak drives the real race: a request is
// mid-exchange when the listener closes, and the dispatcher responds after
// the shutdown. Whichever side wins the drain, the pooled payload count
// must return to its baseline.
func TestShutdownResponseRaceDoesNotLeak(t *testing.T) {
	base := core.PayloadsInUse()
	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := s.URL()

	// The in-flight POST. Depending on who wins the shutdown race the
	// client sees either the handler's 503 or a torn connection (Server.
	// Close may kill the conn before the handler writes) — both are fine;
	// what this test pins is the payload accounting, not the status line.
	clientDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(url, "text/xml", strings.NewReader("<ping/>"))
		if err != nil {
			clientDone <- nil
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			err = errors.New("expected 503, got " + resp.Status)
		}
		clientDone <- err
	}()

	ch, err := s.Accept()
	if err != nil {
		t.Fatal(err)
	}
	payload, ct, err := ch.ReceiveRequest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	payload.Release()

	// Shutdown races the response below.
	s.Close()
	ch.SendResponse(core.NewPayloadFrom([]byte("<pong/>")), ct)
	ch.Close()

	if err := <-clientDone; err != nil {
		t.Fatal(err)
	}
	// The handler goroutine may still be between its drain and returning;
	// poll briefly before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for core.PayloadsInUse() != base && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := core.PayloadsInUse(); got != base {
		t.Fatalf("PayloadsInUse = %d, want %d — shutdown race leaked a payload", got, base)
	}
}
