package httpbind

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"

	"bxsoap/internal/core"
	"bxsoap/internal/obs"
)

// Chunked transfer over HTTP/1.1 rides the protocol's own framing: a
// streamed request is a POST with no Content-Length (net/http switches to
// chunked transfer encoding), a streamed response is a chunked body flushed
// per chunk. HTTP does not preserve chunk boundaries — the peer's decoder
// sees the same byte stream re-sliced into streamWindow-sized pieces —
// which the chunk contract explicitly permits: chunks are arbitrary windows
// of one message, and every streaming decoder is boundary-agnostic. The
// fallback matrix is automatic: a buffered peer reads the chunked body to
// EOF into one payload, and a streamed receiver slices a Content-Length
// body into windows, so no capability negotiation is needed.

// streamWindow sizes the receive-side slices of a continuous body. It
// bounds per-chunk pooled allocation, not the message.
const streamWindow = 64 << 10

// doResult is the outcome of the background POST carrying a streamed
// request.
type doResult struct {
	resp *http.Response
	err  error
}

// SendRequestStream implements core.StreamBinding. The request body is an
// unbuffered pipe: WriteChunk blocks until net/http has drained the bytes
// toward the wire, which is the send-side memory bound. client.Do runs in a
// goroutine (it returns only when response headers arrive, which may be
// after the full request is consumed); ReceiveResponseStream collects its
// outcome.
func (b *Binding) SendRequestStream(ctx context.Context, contentType string) (core.ChunkSink, error) {
	b.mu.Lock()
	if b.poisoned {
		b.mu.Unlock()
		return nil, fmt.Errorf("httpbind: %w", core.ErrBindingPoisoned)
	}
	if b.respc != nil {
		b.mu.Unlock()
		return nil, errors.New("httpbind: request already in flight")
	}
	b.mu.Unlock()
	if b.proto == nil {
		return nil, fmt.Errorf("httpbind: invalid URL %q", b.url)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if b.header.Get("Content-Type") != contentType {
		b.header.Set("Content-Type", contentType)
	}
	if b.header.Get("SOAPAction") != b.actionHdr {
		b.header.Set("SOAPAction", b.actionHdr)
	}
	pr, pw := io.Pipe()
	req := b.proto.WithContext(ctx)
	req.Body = pr
	req.ContentLength = -1
	respc := make(chan doResult, 1)
	go func() {
		resp, err := b.client.Do(req)
		if err != nil {
			// Unblock a sink still writing into the dead request.
			pr.CloseWithError(err)
		}
		respc <- doResult{resp: resp, err: err}
	}()
	b.mu.Lock()
	b.respc = respc
	b.mu.Unlock()
	return &cliSink{b: b, pw: pw}, nil
}

// cliSink feeds request chunks into the POST body pipe.
type cliSink struct {
	b  *Binding
	pw *io.PipeWriter
}

//paylint:transfers
func (s *cliSink) WriteChunk(p *core.Payload, last bool) error {
	_, err := s.pw.Write(p.Bytes())
	n := p.Len()
	p.Release()
	if err != nil {
		return &core.TransportError{Op: "send request", Err: fmt.Errorf("httpbind: %w", err)}
	}
	s.b.obs.Add(obs.BytesSent, uint64(n))
	if last {
		if err := s.pw.Close(); err != nil {
			return &core.TransportError{Op: "send request", Err: fmt.Errorf("httpbind: %w", err)}
		}
		s.b.obs.Inc(obs.MessagesSent)
	}
	return nil
}

// Abort breaks the request body mid-message: net/http aborts the POST, the
// server's decoder fails on the truncated stream, and the binding is
// retired.
func (s *cliSink) Abort() {
	s.pw.CloseWithError(errors.New("httpbind: request aborted"))
	b := s.b
	b.mu.Lock()
	b.poisoned = true
	respc := b.respc
	b.respc = nil
	b.mu.Unlock()
	if respc != nil {
		go func() {
			if r := <-respc; r.resp != nil {
				r.resp.Body.Close()
			}
		}()
	}
}

// ReceiveResponseStream implements core.StreamBinding: it waits for the
// response headers and returns a source slicing the body into windows. A
// buffered server's Content-Length response arrives through the same path.
func (b *Binding) ReceiveResponseStream(ctx context.Context) (core.ChunkSource, string, error) {
	b.mu.Lock()
	respc := b.respc
	b.respc = nil
	poisoned := b.poisoned
	b.mu.Unlock()
	if poisoned {
		return nil, "", fmt.Errorf("httpbind: %w", core.ErrBindingPoisoned)
	}
	if respc == nil {
		return nil, "", errors.New("httpbind: no streamed request in flight")
	}
	select {
	case r := <-respc:
		if r.err != nil {
			return nil, "", &core.TransportError{Op: "send request", Err: fmt.Errorf("httpbind: POST %s: %w", b.url, r.err)}
		}
		if r.resp.StatusCode != http.StatusOK && r.resp.StatusCode != http.StatusInternalServerError {
			r.resp.Body.Close()
			return nil, "", fmt.Errorf("httpbind: unexpected HTTP status %s", r.resp.Status)
		}
		return &cliSource{b: b, body: r.resp.Body}, r.resp.Header.Get("Content-Type"), nil
	case <-ctx.Done():
		b.mu.Lock()
		b.poisoned = true
		b.mu.Unlock()
		go func() {
			if r := <-respc; r.resp != nil {
				r.resp.Body.Close()
			}
		}()
		b.client.CloseIdleConnections()
		return nil, "", ctx.Err()
	}
}

// cliSource slices the response body into windows. A read failure mid-body
// poisons the binding exactly as the buffered path does — the HTTP
// connection holds an unconsumed response and cannot be reused.
type cliSource struct {
	b    *Binding
	body io.ReadCloser
	done bool
}

//paylint:returns owned
func (s *cliSource) ReadChunk() (*core.Payload, bool, error) {
	if s.done {
		return nil, false, io.EOF
	}
	p, eof, err := core.ReadPayloadWindow(s.body, streamWindow)
	if err != nil {
		s.done = true
		s.body.Close()
		if err == io.EOF {
			// Clean end with no pending bytes: the chunk contract wants an
			// explicit last chunk, so emit an empty one.
			s.b.obs.Inc(obs.MessagesReceived)
			return core.NewPayload(0), true, nil
		}
		s.b.mu.Lock()
		s.b.poisoned = true
		s.b.mu.Unlock()
		s.b.client.CloseIdleConnections()
		return nil, false, &core.TransportError{Op: "receive response", Err: fmt.Errorf("httpbind: read response: %w", err)}
	}
	s.b.obs.Add(obs.BytesReceived, uint64(p.Len()))
	if eof {
		s.done = true
		s.body.Close()
		s.b.obs.Inc(obs.MessagesReceived)
	}
	return p, eof, nil
}

// Abort abandons the response mid-body and retires the binding.
func (s *cliSource) Abort() {
	if s.done {
		return
	}
	s.done = true
	s.body.Close()
	s.b.mu.Lock()
	s.b.poisoned = true
	s.b.mu.Unlock()
	s.b.client.CloseIdleConnections()
}

// streamResp hands a chunked response from the dispatcher goroutine to the
// HTTP handler goroutine, which owns the ResponseWriter. chunks is
// unbuffered: the handler's write+flush is the pacing.
type streamResp struct {
	ct     string
	chunks chan chunkWrite
	abort  chan struct{}
}

type chunkWrite struct {
	p    *core.Payload
	last bool
}

// ReceiveRequestStream implements core.StreamChannel: the request body,
// sliced into windows as it arrives.
func (c *channel) ReceiveRequestStream(_ context.Context) (core.ChunkSource, string, error) {
	if c.received {
		return nil, "", io.EOF
	}
	c.received = true
	return &srvSource{c: c}, c.contentType, nil
}

// srvSource slices the inbound request body. A read failure just ends the
// stream with an error — the dispatcher converts it into a fault, and the
// response side of the exchange still works.
type srvSource struct {
	c    *channel
	done bool
}

//paylint:returns owned
func (s *srvSource) ReadChunk() (*core.Payload, bool, error) {
	if s.done {
		return nil, false, io.EOF
	}
	p, eof, err := core.ReadPayloadWindow(s.c.r.Body, streamWindow)
	if err != nil {
		s.done = true
		if err == io.EOF {
			s.c.obs.Inc(obs.MessagesReceived)
			return core.NewPayload(0), true, nil
		}
		return nil, false, &core.TransportError{Op: "read request", Err: fmt.Errorf("httpbind: %w", err)}
	}
	s.c.obs.Add(obs.BytesReceived, uint64(p.Len()))
	if eof {
		s.done = true
		s.c.obs.Inc(obs.MessagesReceived)
	}
	return p, eof, nil
}

// Abort stops consuming the request body; net/http settles the connection
// when the handler returns.
func (s *srvSource) Abort() { s.done = true }

// SendResponseStream implements core.StreamChannel: it hands a chunk relay
// to the handler goroutine and returns the sink feeding it.
func (c *channel) SendResponseStream(ct string) (core.ChunkSink, error) {
	sr := &streamResp{ct: ct, chunks: make(chan chunkWrite), abort: make(chan struct{})}
	select {
	case c.stream <- sr:
		c.responded = true
		return &srvSink{c: c, sr: sr}, nil
	default:
		return nil, errors.New("httpbind: response already sent")
	}
}

// srvSink forwards response chunks to the handler goroutine's write loop.
type srvSink struct {
	c  *channel
	sr *streamResp
}

//paylint:transfers
func (s *srvSink) WriteChunk(p *core.Payload, last bool) error {
	n := p.Len()
	select {
	case s.sr.chunks <- chunkWrite{p: p, last: last}:
		s.c.obs.Add(obs.BytesSent, uint64(n))
		if last {
			s.c.obs.Inc(obs.MessagesSent)
		}
		return nil
	case <-s.c.hgone:
		p.Release()
		return &core.TransportError{Op: "send response", Err: errors.New("httpbind: handler gone")}
	}
}

// Abort tells the handler to kill the connection: a chunked body cannot
// carry an in-band error, so truncation is the signal.
func (s *srvSink) Abort() {
	close(s.sr.abort)
}

var _ core.StreamBinding = (*Binding)(nil)
var _ core.StreamChannel = (*channel)(nil)
