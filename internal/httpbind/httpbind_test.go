package httpbind

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"bxsoap/internal/core"
)

// startEcho runs a Listener whose accept loop echoes request payloads.
func startEcho(t *testing.T) *Listener {
	t.Helper()
	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	go func() {
		for {
			ch, err := s.Accept()
			if err != nil {
				return
			}
			go func() {
				defer ch.Close()
				payload, ct, err := ch.ReceiveRequest(context.Background())
				if err != nil {
					return
				}
				resp := core.NewPayloadFrom(append([]byte("echo:"), payload.Bytes()...))
				payload.Release()
				ch.SendResponse(resp, ct)
			}()
		}
	}()
	return s
}

func TestPostAndResponse(t *testing.T) {
	s := startEcho(t)
	b := New(nil, s.URL())
	defer b.Close()
	if err := b.SendRequest(context.Background(), core.NewPayloadFrom([]byte("ping")), "text/xml"); err != nil {
		t.Fatal(err)
	}
	resp, ct, err := b.ReceiveResponse(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Release()
	if string(resp.Bytes()) != "echo:ping" || ct != "text/xml" {
		t.Errorf("resp = %q / %q", resp.Bytes(), ct)
	}
}

func TestReceiveWithoutSend(t *testing.T) {
	b := New(nil, "http://127.0.0.1:1/soap")
	if _, _, err := b.ReceiveResponse(context.Background()); err == nil {
		t.Error("ReceiveResponse before SendRequest succeeded")
	}
}

func TestNonPostRejected(t *testing.T) {
	s := startEcho(t)
	resp, err := http.Get(s.URL())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", resp.StatusCode)
	}
}

func TestFaultRidesOn500(t *testing.T) {
	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	go func() {
		ch, err := s.Accept()
		if err != nil {
			return
		}
		defer ch.Close()
		if payload, _, err := ch.ReceiveRequest(context.Background()); err == nil {
			payload.Release()
		}
		ch.SendResponse(core.NewPayloadFrom([]byte(`<soap:Fault>boom</soap:Fault>`)), "text/xml")
	}()
	resp, err := http.Post(s.URL(), "text/xml", strings.NewReader("<x/>"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("fault status = %d, want 500", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "Fault") {
		t.Error("fault body lost")
	}
}

func TestChannelSecondReceiveIsEOF(t *testing.T) {
	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := make(chan error, 1)
	go func() {
		ch, err := s.Accept()
		if err != nil {
			got <- err
			return
		}
		defer ch.Close()
		if payload, _, err := ch.ReceiveRequest(context.Background()); err != nil {
			got <- err
			return
		} else {
			payload.Release()
		}
		_, _, err = ch.ReceiveRequest(context.Background())
		ch.SendResponse(core.NewPayloadFrom([]byte("done")), "text/plain")
		got <- err
	}()
	resp, err := http.Post(s.URL(), "text/plain", strings.NewReader("one"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := <-got; err != io.EOF {
		t.Errorf("second ReceiveRequest = %v, want io.EOF", err)
	}
}

func TestChannelCloseWithoutResponseAnswers500(t *testing.T) {
	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	go func() {
		ch, err := s.Accept()
		if err != nil {
			return
		}
		if payload, _, err := ch.ReceiveRequest(context.Background()); err == nil {
			payload.Release()
		}
		ch.Close() // never responds
	}()
	resp, err := http.Post(s.URL(), "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", resp.StatusCode)
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := s.Accept()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("Accept returned nil after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept did not unblock")
	}
}

func TestCustomDialerUsed(t *testing.T) {
	s := startEcho(t)
	var dialed bool
	b := New(func(addr string) (net.Conn, error) {
		dialed = true
		return net.Dial("tcp", addr)
	}, s.URL())
	defer b.Close()
	if err := b.SendRequest(context.Background(), core.NewPayloadFrom([]byte("x")), "t/t"); err != nil {
		t.Fatal(err)
	}
	if resp, _, err := b.ReceiveResponse(context.Background()); err != nil {
		t.Fatal(err)
	} else {
		resp.Release()
	}
	if !dialed {
		t.Error("custom dialer not used")
	}
}

func TestSOAPActionHeaderSent(t *testing.T) {
	var gotAction string
	hs := &http.Server{}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	hs.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotAction = r.Header.Get("SOAPAction")
		w.Write([]byte("ok"))
	})
	go hs.Serve(l)
	defer hs.Close()

	b := New(nil, "http://"+l.Addr().String()+"/soap")
	defer b.Close()
	b.SetSOAPAction("urn:op")
	if err := b.SendRequest(context.Background(), core.NewPayloadFrom([]byte("x")), "t/t"); err != nil {
		t.Fatal(err)
	}
	if resp, _, err := b.ReceiveResponse(context.Background()); err != nil {
		t.Fatal(err)
	} else {
		resp.Release()
	}
	if gotAction != `"urn:op"` {
		t.Errorf("SOAPAction = %q", gotAction)
	}
}
