package httpbind

import (
	"context"
	"testing"
	"time"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/core"
)

// bigArrayEnvelope builds a request whose body spans many windows.
func bigArrayEnvelope(n int) (*core.Envelope, bxdm.Node) {
	items := make([]int32, n)
	for i := range items {
		items[i] = int32(i * 3)
	}
	el := bxdm.NewArray(bxdm.QName{Local: "a"}, items)
	return core.NewEnvelope(el), el
}

// echoServer runs a core.Server over an HTTP listener and returns its URL.
func echoServer(t *testing.T, opts ...core.ServerOption) string {
	t.Helper()
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := core.NewServer(core.BXSAEncoding{}, l,
		func(_ context.Context, req *core.Envelope) (*core.Envelope, error) {
			return core.NewEnvelope(req.Body()), nil
		}, opts...)
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return l.URL()
}

// waitSettled polls for the async HTTP machinery to release its payloads
// before the leak assertion.
func waitSettled(t *testing.T, baseline int64) {
	t.Helper()
	for i := 0; i < 200; i++ {
		if core.PayloadsInUse() == baseline {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Errorf("PayloadsInUse = %d, want baseline %d", core.PayloadsInUse(), baseline)
}

// TestHTTPStreamedExchange runs the fallback matrix over HTTP chunked
// transfer: both sides streaming, and each side alone against a buffered
// peer. HTTP re-slices the chunk boundaries, so this also exercises the
// decoders' boundary independence.
func TestHTTPStreamedExchange(t *testing.T) {
	stream := core.WithStreaming(32 << 10)
	cases := []struct {
		name    string
		srvOpts []core.ServerOption
		engOpts []core.EngineOption
	}{
		{"both streamed", []core.ServerOption{stream}, []core.EngineOption{stream}},
		{"client streamed, server buffered", nil, []core.EngineOption{stream}},
		{"client buffered, server streamed", []core.ServerOption{stream}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			baseline := core.PayloadsInUse()
			url := echoServer(t, tc.srvOpts...)
			eng := core.NewEngine(core.BXSAEncoding{}, New(nil, url), tc.engOpts...)
			defer eng.Close()
			req, want := bigArrayEnvelope(200_000) // ~800 KiB of array data
			for i := 0; i < 2; i++ {
				resp, err := eng.Call(context.Background(), req)
				if err != nil {
					t.Fatalf("call %d: %v", i, err)
				}
				if !bxdm.Equal(resp.Body(), want) {
					t.Fatalf("call %d: echoed body differs", i)
				}
			}
			waitSettled(t, baseline)
		})
	}
}

// TestHTTPStreamedFaultAfterBadRequest checks the decode-failure path: a
// chunked request the server cannot decode draws a fault envelope on the
// (streamed) response side.
func TestHTTPStreamedFaultAfterBadRequest(t *testing.T) {
	url := echoServer(t, core.WithStreaming(16<<10))
	b := New(nil, url)
	defer b.Close()
	sink, err := b.SendRequestStream(context.Background(), "application/x-bxsa")
	if err != nil {
		t.Fatal(err)
	}
	junk := core.NewPayloadFrom([]byte("this is not a bxsa frame"))
	if err := sink.WriteChunk(junk, true); err != nil {
		t.Fatal(err)
	}
	src, _, err := b.ReceiveResponseStream(context.Background())
	if err != nil {
		t.Fatalf("no response to bad request: %v", err)
	}
	p, err := core.GatherChunks(src)
	if err != nil {
		t.Fatalf("gather fault: %v", err)
	}
	env, err := core.NewCodec(core.BXSAEncoding{}).DecodePayload(p)
	p.Release()
	if err != nil {
		t.Fatalf("decode fault: %v", err)
	}
	if f := core.FaultFromEnvelope(env); f == nil {
		t.Fatal("bad request did not draw a fault")
	}
}
