// Package httpbind implements the HttpBinding policy (paper §5.3): each
// SOAP request rides as the payload of an HTTP/1.1 POST, the response comes
// back in the HTTP response body — the prevailing SOAP-over-HTTP binding.
// It runs on top of net/http with a pluggable dialer/listener so netsim-
// shaped transports drop in.
//
// Wire failures escape this package classified (core.TransportError /
// core.ErrBindingPoisoned); paylint's errclass analyzer enforces that via
// the marker below.
//
//paylint:classify-transport-errors
package httpbind

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	neturl "net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bxsoap/internal/core"
	"bxsoap/internal/obs"
)

// Option configures a Binding or Listener at construction.
type Option func(*options)

type options struct {
	obs *obs.Observer
}

// WithObserver wires an observability sink into the binding: message and
// payload-byte counters record into it per exchange (SOAP payload bytes,
// excluding HTTP framing). On a Listener the observer covers every
// accepted channel.
func WithObserver(o *obs.Observer) Option {
	return func(c *options) { c.obs = o }
}

func applyOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// Binding is the client-side HTTP binding.
type Binding struct {
	url    string
	client *http.Client
	action string
	obs    *obs.Observer

	mu      sync.Mutex
	pending *http.Response
	// respc carries the in-flight streamed POST's outcome from the Do
	// goroutine to ReceiveResponseStream (see stream.go).
	respc    chan doResult
	poisoned bool

	// proto is the prototype POST request: URL parsed and headers built
	// once at construction, shallow-copied per request via WithContext. The
	// header map is reused across requests (the binding carries one exchange
	// at a time, and the transport has serialized the headers before the
	// response can arrive), so steady state sends a request with no URL
	// parsing and no header-map churn.
	proto     *http.Request
	header    http.Header
	actionHdr string
}

// Dialer opens the underlying transport connection.
type Dialer func(addr string) (net.Conn, error)

// New creates a client binding POSTing to url ("http://host:port/path"),
// dialing through dial (nil = plain TCP).
func New(dial Dialer, url string, opts ...Option) *Binding {
	tr := &http.Transport{
		MaxIdleConns:        16,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     time.Minute,
	}
	if dial != nil {
		tr.DialContext = func(_ context.Context, _, addr string) (net.Conn, error) {
			return dial(addr)
		}
	}
	o := applyOptions(opts)
	b := &Binding{url: url, client: &http.Client{Transport: tr}, actionHdr: `""`, obs: o.obs}
	if u, err := neturl.Parse(url); err == nil {
		b.header = make(http.Header, 4)
		b.proto = &http.Request{
			Method:     http.MethodPost,
			URL:        u,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     b.header,
			Host:       u.Host,
		}
	}
	return b
}

// SetSOAPAction sets the SOAPAction header value sent with requests.
func (b *Binding) SetSOAPAction(a string) {
	b.action = a
	b.actionHdr = `"` + a + `"`
}

// Poisoned reports whether the binding has been retired after a response
// was abandoned mid-body (e.g. a deadline expired while reading). The
// underlying net/http connection is broken at that point; pool
// implementations should discard the binding.
func (b *Binding) Poisoned() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.poisoned
}

// payloadBody adapts a payload to the request body net/http wants. It holds
// its own reference: net/http's write loop can still be reading the body
// after Do returns (a server may answer before consuming the full request),
// so the caller releasing its borrowed-payload reference must not free the
// buffer until the transport has closed the body too.
type payloadBody struct {
	r      bytes.Reader
	p      *core.Payload
	closed atomic.Bool
}

var bodyPool = sync.Pool{New: func() any { return new(payloadBody) }}

func newPayloadBody(p *core.Payload) *payloadBody {
	p.Retain()
	b := bodyPool.Get().(*payloadBody)
	b.p = p
	b.closed.Store(false)
	b.r.Reset(p.Bytes())
	return b
}

func (b *payloadBody) Read(p []byte) (int, error) { return b.r.Read(p) }

func (b *payloadBody) Close() error {
	if b.closed.CompareAndSwap(false, true) {
		b.p.Release()
		b.p = nil
		b.r.Reset(nil)
		bodyPool.Put(b)
	}
	return nil
}

// SendRequest implements core.Binding. The payload is borrowed; the body
// wrapper retains it for as long as net/http needs it.
//
//paylint:borrows
func (b *Binding) SendRequest(ctx context.Context, payload *core.Payload, contentType string) error {
	b.mu.Lock()
	if b.poisoned {
		b.mu.Unlock()
		return fmt.Errorf("httpbind: %w", core.ErrBindingPoisoned)
	}
	b.mu.Unlock()
	if b.proto == nil {
		return fmt.Errorf("httpbind: invalid URL %q", b.url)
	}
	// Rewrite the reused header map only when a value actually changed, so
	// steady-state requests touch no header storage at all.
	if b.header.Get("Content-Type") != contentType {
		b.header.Set("Content-Type", contentType)
	}
	if b.header.Get("SOAPAction") != b.actionHdr {
		b.header.Set("SOAPAction", b.actionHdr)
	}
	body := newPayloadBody(payload)
	req := b.proto.WithContext(ctx)
	req.Body = body
	req.ContentLength = int64(payload.Len())
	req.GetBody = func() (io.ReadCloser, error) { return newPayloadBody(payload), nil }
	resp, err := b.client.Do(req)
	if err != nil {
		return &core.TransportError{Op: "send request", Err: fmt.Errorf("httpbind: POST %s: %w", b.url, err)}
	}
	b.mu.Lock()
	if b.pending != nil {
		b.pending.Body.Close()
	}
	b.pending = resp
	b.mu.Unlock()
	b.obs.Inc(obs.MessagesSent)
	b.obs.Add(obs.BytesSent, uint64(payload.Len()))
	return nil
}

// ReceiveResponse implements core.Binding. The body is read into a pooled
// payload sized by Content-Length (ownership transfers to the caller). A
// body read that fails (most often a context deadline expiring mid-body)
// leaves the HTTP connection with an unconsumed response, so the binding is
// poisoned and must be discarded rather than reused.
//
//paylint:returns owned
func (b *Binding) ReceiveResponse(_ context.Context) (*core.Payload, string, error) {
	b.mu.Lock()
	resp := b.pending
	b.pending = nil
	b.mu.Unlock()
	if resp == nil {
		return nil, "", errors.New("httpbind: no request in flight")
	}
	defer resp.Body.Close()
	body, err := core.ReadPayload(resp.Body, resp.ContentLength, 0)
	if err != nil {
		b.mu.Lock()
		b.poisoned = true
		b.mu.Unlock()
		b.client.CloseIdleConnections()
		return nil, "", fmt.Errorf("httpbind: read response: %w: %w", core.ErrBindingPoisoned, err)
	}
	// SOAP 1.1 over HTTP uses 500 for fault responses; both 200 and 500
	// carry SOAP envelopes.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusInternalServerError {
		body.Release()
		return nil, "", fmt.Errorf("httpbind: unexpected HTTP status %s", resp.Status)
	}
	b.obs.Inc(obs.MessagesReceived)
	b.obs.Add(obs.BytesReceived, uint64(body.Len()))
	return body, resp.Header.Get("Content-Type"), nil
}

// Close implements core.Binding.
func (b *Binding) Close() error {
	b.mu.Lock()
	if b.pending != nil {
		b.pending.Body.Close()
		b.pending = nil
	}
	respc := b.respc
	b.respc = nil
	b.mu.Unlock()
	if respc != nil {
		// An abandoned streamed call: let the Do goroutine finish against
		// its broken pipe and close whatever response it produced.
		go func() {
			if r := <-respc; r.resp != nil {
				r.resp.Body.Close()
			}
		}()
	}
	b.client.CloseIdleConnections()
	return nil
}

// Listener is the server-side HTTP binding: an http.Server bridged to the
// core.ServerBinding accept loop.
type Listener struct {
	l      net.Listener
	srv    *http.Server
	accept chan *channel
	done   chan struct{}
	once   sync.Once
	err    error
	obs    *obs.Observer
}

// NewListener wraps an already-bound listener (e.g. a netsim-shaped one)
// and starts the HTTP machinery on it.
func NewListener(l net.Listener, opts ...Option) *Listener {
	o := applyOptions(opts)
	s := &Listener{
		l:      l,
		accept: make(chan *channel),
		done:   make(chan struct{}),
		obs:    o.obs,
	}
	s.srv = &http.Server{Handler: http.HandlerFunc(s.handle)}
	go func() {
		err := s.srv.Serve(l)
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.err = err
		}
		s.once.Do(func() { close(s.done) })
	}()
	return s
}

// Listen binds an unshaped HTTP listener on addr.
func Listen(addr string, opts ...Option) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, &core.TransportError{Op: "listen", Err: err}
	}
	return NewListener(l, opts...), nil
}

type response struct {
	payload     *core.Payload
	contentType string
	status      int
}

// channel adapts one HTTP request to the core.Channel exchange sequence.
// The request body is read lazily by the dispatcher goroutine — buffered
// into one payload by ReceiveRequest, or window-by-window by
// ReceiveRequestStream — so a streamed request never materializes. The
// handler goroutine keeps the ResponseWriter alive until the exchange
// resolves through resp (buffered) or stream (chunked).
type channel struct {
	w           http.ResponseWriter
	r           *http.Request
	contentType string
	resp        chan response
	stream      chan *streamResp
	// hgone closes when the handler goroutine stops serving this exchange
	// (response written, shutdown, or aborted); streamed sink operations
	// select against it instead of blocking forever.
	hgone    chan struct{}
	received bool
	// responded records that SendResponse handed a payload to the handler.
	// Only the dispatcher goroutine (SendResponse/Close callers) touches it.
	// Close consults it so the "no response produced" fallback is queued
	// only when the handler is still waiting for one — once a real response
	// has been handed off the handler returns after writing it, and a
	// fallback queued then would sit in the buffer unreleased forever.
	responded bool
	// abandoned is set by the handler when shutdown wins the race against
	// the dispatcher's response; see SendResponse for the hand-off protocol.
	abandoned atomic.Bool
	obs       *obs.Observer
}

func (s *Listener) handle(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "SOAP endpoint: POST only", http.StatusMethodNotAllowed)
		return
	}
	ch := &channel{
		w:           w,
		r:           r,
		contentType: r.Header.Get("Content-Type"),
		resp:        make(chan response, 1),
		stream:      make(chan *streamResp, 1),
		hgone:       make(chan struct{}),
		obs:         s.obs,
	}
	defer close(ch.hgone)
	select {
	case s.accept <- ch:
	case <-s.done:
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
		return
	}
	select {
	case resp := <-ch.resp:
		h := w.Header()
		h.Set("Content-Type", resp.contentType)
		// Declare the length explicitly: WriteHeader with no Content-Length
		// would switch the response to chunked encoding, costing framing
		// work here and denying the client a right-sized pooled read.
		h.Set("Content-Length", strconv.Itoa(resp.payload.Len()))
		w.WriteHeader(resp.status)
		w.Write(resp.payload.Bytes())
		resp.payload.Release()
	case sr := <-ch.stream:
		s.writeStreamed(w, sr)
	case <-s.done:
		// Two-phase abandon: mark the channel first, then drain. A
		// SendResponse racing this branch re-checks the mark after its
		// send, so whichever side loses the drain race still releases the
		// queued payload — it can never be parked in the buffer forever.
		// (A streamed response needs no drain: the sink hands chunks over
		// unbuffered and fails against hgone once this handler returns.)
		ch.abandoned.Store(true)
		select {
		case resp := <-ch.resp:
			resp.payload.Release()
		default:
		}
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
	}
}

// writeStreamed relays a chunked response from the dispatcher's sink to the
// wire: no Content-Length, so net/http frames the body with HTTP chunked
// transfer encoding, and each chunk is flushed as it lands — the first
// response byte leaves before the message (or its trailing signature)
// exists. The status is sniffed from the first chunk; a streamed fault
// whose first chunk hides the marker rides status 200, which streaming
// clients accept (the envelope, not the status, is authoritative).
func (s *Listener) writeStreamed(w http.ResponseWriter, sr *streamResp) {
	w.Header().Set("Content-Type", sr.ct)
	flusher, _ := w.(http.Flusher)
	first := true
	for {
		select {
		case m := <-sr.chunks:
			if first {
				status := http.StatusOK
				if looksLikeFault(m.p.Bytes()) {
					status = http.StatusInternalServerError
				}
				w.WriteHeader(status)
				first = false
			}
			w.Write(m.p.Bytes())
			m.p.Release()
			if flusher != nil {
				flusher.Flush()
			}
			if m.last {
				return
			}
		case <-sr.abort:
			// The dispatcher's encoder failed mid-message. A chunked body
			// cannot signal an error in-band, so kill the connection: the
			// client's decoder fails on the truncated stream.
			panic(http.ErrAbortHandler)
		case <-s.done:
			return
		}
	}
}

// Accept implements core.ServerBinding.
func (s *Listener) Accept() (core.Channel, error) {
	select {
	case ch := <-s.accept:
		return ch, nil
	case <-s.done:
		if s.err != nil {
			return nil, s.err
		}
		return nil, net.ErrClosed
	}
}

// Addr implements core.ServerBinding.
func (s *Listener) Addr() net.Addr { return s.l.Addr() }

// URL returns the endpoint URL clients should POST to.
func (s *Listener) URL() string { return "http://" + s.l.Addr().String() + "/soap" }

// Close implements core.ServerBinding.
func (s *Listener) Close() error {
	s.once.Do(func() { close(s.done) })
	return s.srv.Close()
}

// ReceiveRequest implements core.Channel: the one request, then EOF (HTTP
// is one exchange per channel). The body is read here, on the dispatcher
// goroutine, into one pooled payload — ContentLength is -1 when unknown,
// which ReadPayload treats as read-to-EOF. A body read error surfaces as a
// channel error (the exchange answers with the Close fallback) rather than
// an HTTP 400. Ownership of the payload transfers to the caller.
//
//paylint:returns owned
func (c *channel) ReceiveRequest(_ context.Context) (*core.Payload, string, error) {
	if c.received {
		return nil, "", io.EOF
	}
	c.received = true
	p, err := core.ReadPayload(c.r.Body, c.r.ContentLength, 0)
	if err != nil {
		return nil, "", &core.TransportError{Op: "read request", Err: fmt.Errorf("httpbind: %w", err)}
	}
	c.obs.Inc(obs.MessagesReceived)
	c.obs.Add(obs.BytesReceived, uint64(p.Len()))
	return p, c.contentType, nil
}

// SendResponse implements core.Channel; it takes ownership of payload
// (released by the HTTP handler goroutine after writing, or here on
// failure). Fault envelopes ride on HTTP 500 per the SOAP 1.1 HTTP
// binding; the dispatcher has already decided the payload, so status is
// inferred from it cheaply (faults are rare and small).
//
//paylint:transfers
func (c *channel) SendResponse(payload *core.Payload, contentType string) error {
	status := http.StatusOK
	if looksLikeFault(payload.Bytes()) {
		status = http.StatusInternalServerError
	}
	n := payload.Len()
	select {
	case c.resp <- response{payload: payload, contentType: contentType, status: status}:
		c.responded = true
		c.obs.Inc(obs.MessagesSent)
		c.obs.Add(obs.BytesSent, uint64(n))
		if c.abandoned.Load() {
			// The handler gave up on this exchange. It drains c.resp after
			// setting the flag, so the queued response is either already
			// released by the handler or still ours to reclaim here; both
			// orders release it exactly once.
			select {
			case r := <-c.resp:
				r.payload.Release()
			default:
			}
			return &core.TransportError{Op: "send response", Err: errors.New("httpbind: server shutting down")}
		}
		return nil
	default:
		payload.Release()
		return errors.New("httpbind: response already sent")
	}
}

// Close implements core.Channel: answer the HTTP request with an error if
// no response was produced. The fallback is queued only when no response
// was ever handed off (after a real response the handler writes it and
// returns — a payload queued then would be parked in the buffer forever),
// and it follows the same two-phase hand-off as SendResponse: if the
// handler has already abandoned the exchange, nobody will ever drain
// c.resp, so Close reclaims its own payload instead of leaking it.
func (c *channel) Close() error {
	if c.responded {
		return nil
	}
	select {
	case c.resp <- response{
		payload:     core.NewPayloadFrom([]byte("no response produced")),
		contentType: "text/plain",
		status:      http.StatusInternalServerError,
	}:
		c.responded = true
		if c.abandoned.Load() {
			select {
			case r := <-c.resp:
				r.payload.Release()
			default:
			}
		}
	default:
	}
	return nil
}

// looksLikeFault sniffs whether a serialized envelope carries a fault, for
// choosing the HTTP status. Cheap containment check on the first KB; both
// encodings spell the element name "Fault" literally.
func looksLikeFault(payload []byte) bool {
	head := payload
	if len(head) > 1024 {
		head = head[:1024]
	}
	return bytes.Contains(head, []byte("Fault"))
}
