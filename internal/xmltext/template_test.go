package xmltext

import (
	"bytes"
	"testing"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/shape"
)

func tmplDoc(n int32, s string, items []float64) *bxdm.Document {
	e := bxdm.NewElement(bxdm.PName("urn:t", "t", "op"))
	e.DeclareNamespace("t", "urn:t")
	e.Append(
		bxdm.NewLeaf(bxdm.Name("urn:t", "n"), n),
		bxdm.NewLeafValue(bxdm.Name("urn:t", "s"), bxdm.StringValue(s)),
		bxdm.NewArray(bxdm.Name("urn:t", "a"), items),
	)
	return bxdm.NewDocument(e)
}

func docVars(t *testing.T, doc *bxdm.Document) []shape.Var {
	t.Helper()
	var vars []shape.Var
	root := doc.Root().(*bxdm.Element)
	if _, ok := shape.Fingerprint(nil, []bxdm.Node{root}, &vars); !ok {
		t.Fatal("fingerprint rejected document")
	}
	return vars
}

var hinted = EncodeOptions{TypeHints: true}

func TestTemplateEncodeMatchesGeneric(t *testing.T) {
	tmpl, err := CompileTemplate(tmplDoc(0, "..", []float64{0, 0}), hinted)
	if err != nil {
		t.Fatal(err)
	}
	if tmpl.Slots() != 3 {
		t.Fatalf("slots = %d, want 3", tmpl.Slots())
	}
	// Same shape, hostile values: the string needs escaping (&, <, >, CR)
	// but keeps the same raw length as the two-byte prototype string.
	for _, doc := range []*bxdm.Document{
		tmplDoc(42, "a&", []float64{1.5, -2}),
		tmplDoc(-1, "<\r", []float64{0.001, 9e9}),
	} {
		want, err := Marshal(doc, hinted)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tmpl.AppendEncode(nil, docVars(t, doc))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("templated encode differs:\n got %s\nwant %s", got, want)
		}
	}
}

func TestTemplateMatchAgreesWithParser(t *testing.T) {
	tmpl, err := CompileTemplate(tmplDoc(0, "..", []float64{0, 0}), hinted)
	if err != nil {
		t.Fatal(err)
	}
	doc := tmplDoc(7, "ok", []float64{2.25, -8})
	data, err := Marshal(doc, hinted)
	if err != nil {
		t.Fatal(err)
	}
	var vars []shape.Var
	if !tmpl.Match(data, &vars) {
		t.Fatal("same-shape message did not match")
	}
	if len(vars) != 3 {
		t.Fatalf("got %d vars", len(vars))
	}
	if vars[0].Value.Int64() != 7 || vars[1].Value.Text() != "ok" {
		t.Fatalf("leaf vars wrong: %+v", vars[:2])
	}
	want := docVars(t, doc)
	if !vars[2].Data.EqualData(want[2].Data) {
		t.Fatalf("array var = %v", vars[2].Data)
	}
}

func TestTemplateMatchBailsOutConservatively(t *testing.T) {
	tmpl, err := CompileTemplate(tmplDoc(0, "..", []float64{0, 0}), hinted)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := Marshal(tmplDoc(0, "..", []float64{0, 0}), hinted)
	if err != nil {
		t.Fatal(err)
	}
	var vars []shape.Var
	if !tmpl.Match(baseline, &vars) {
		t.Fatal("baseline did not match")
	}
	cases := map[string][]byte{
		"entity in string":       bytes.Replace(baseline, []byte(">..<"), []byte(">&lt;..<"), 1),
		"whitespace-only string": bytes.Replace(baseline, []byte(">..<"), []byte(">  <"), 1),
		"carriage return":        bytes.Replace(baseline, []byte(">..<"), []byte(">.\r<"), 1),
		"extra array item":       bytes.Replace(baseline, []byte("<i>0</i><i>0</i>"), []byte("<i>0</i><i>0</i><i>0</i>"), 1),
		"trailing bytes":         append(append([]byte{}, baseline...), ' '),
		"different static tag":   bytes.Replace(baseline, []byte("t:n"), []byte("t:m"), 2),
	}
	for what, data := range cases {
		if bytes.Equal(data, baseline) {
			t.Fatalf("%s: mutation did not apply", what)
		}
		vars = vars[:0]
		if tmpl.Match(data, &vars) {
			t.Errorf("%s: matched; must fall back to generic parser", what)
		}
		if len(vars) != 0 {
			t.Errorf("%s: failed match left %d vars behind", what, len(vars))
		}
	}
	// Whitespace around numeric items is trimmed exactly like the generic
	// fast-array scan, so it still matches.
	padded := bytes.Replace(baseline, []byte("<i>0</i><i>0</i>"), []byte("<i> 0</i><i>0 </i>"), 1)
	vars = vars[:0]
	if !tmpl.Match(padded, &vars) {
		t.Error("trimmed numeric items should match")
	}
}

func TestCompileTemplateRequiresHints(t *testing.T) {
	if _, err := CompileTemplate(tmplDoc(0, "..", nil), EncodeOptions{}); err == nil {
		t.Error("hintless compile accepted")
	}
}
