package xmltext

// Schema-compiled encode/decode templates for the textual encoding. Unlike
// BXSA, XML value lexicals are variable-width (escaping, number formatting),
// so a shape's template is not a fixed-window skeleton but an alternation
// of static byte segments — tags, namespace declarations, attributes, type
// hints — with re-rendered slots between them. That still removes the whole
// generic tree walk, namespace resolution, and per-node layout work from
// the hot path, which is where textual encode spends most of its time
// (paper Table 1); the goal is pulling templated XML encode toward BXSA
// speed. Decoding is a strict segment scan: anything the scan cannot prove
// byte-identical to what the generic parser would produce (entities,
// carriage returns, whitespace-only strings) is a clean no-match and falls
// back to the generic parser.

import (
	"bytes"
	"errors"
	"fmt"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/shape"
)

// span is a recorded variable region of an encoded document.
type span struct {
	start, end int
	kind       bxdm.Kind
	code       bxdm.TypeCode
	count      int // array item count (KindArrayElement only)
}

// slot is one variable position of a compiled template.
type slot struct {
	kind  bxdm.Kind
	code  bxdm.TypeCode
	count int
}

// Template is a compiled encode/decode plan for one message shape. It is
// immutable after compilation and safe for concurrent use.
type Template struct {
	opts      EncodeOptions
	segs      [][]byte // len(slots)+1 static segments
	slots     []slot
	itemOpen  []byte // "<i>"
	itemClose []byte // "</i>"
}

// CompileTemplate compiles a template from a representative document by
// re-running the generic encoder with span recording on. Type hints are
// required: without xsi:type/arrayType the parser cannot rebuild typed
// trees, so no shape-keyed decode plan exists (PlainStrings encodings
// simply keep the generic path).
func CompileTemplate(doc *bxdm.Document, opts EncodeOptions) (*Template, error) {
	if !opts.TypeHints {
		return nil, errors.New("xmltext: templates require type hints")
	}
	e := getEncoder(opts)
	e.asink.buf = make([]byte, 0, 256)
	e.w = &e.asink
	e.record = true
	if opts.XMLDecl {
		e.asink.buf = append(e.asink.buf, xmlDecl...)
	}
	err := bxdm.Accept(doc, e)
	encoded, spans := e.asink.buf, e.spans
	e.spans = nil // keep the recorded slice out of the pool's reuse
	putEncoder(e)
	if err != nil {
		return nil, err
	}
	t := &Template{
		opts:      opts,
		segs:      make([][]byte, 0, len(spans)+1),
		slots:     make([]slot, 0, len(spans)),
		itemOpen:  []byte("<" + opts.itemName() + ">"),
		itemClose: []byte("</" + opts.itemName() + ">"),
	}
	pos := 0
	for i, s := range spans {
		if s.start < pos || s.end < s.start || s.end > len(encoded) {
			return nil, fmt.Errorf("xmltext: template span %d [%d:%d) out of order", i, s.start, s.end)
		}
		t.segs = append(t.segs, encoded[pos:s.start])
		t.slots = append(t.slots, slot{kind: s.kind, code: s.code, count: s.count})
		pos = s.end
	}
	t.segs = append(t.segs, encoded[pos:])
	return t, nil
}

// Slots reports the number of variable slots.
func (t *Template) Slots() int { return len(t.slots) }

// AppendEncode appends an encoding of the shape with the given variable
// values to dst and returns the extended slice, byte-identical to what the
// generic encoder produces for the corresponding tree. vars must line up
// with the template's slots (as guaranteed for envelopes whose
// shape.Fingerprint matched); mismatches are errors and the caller falls
// back to the generic encoder.
func (t *Template) AppendEncode(dst []byte, vars []shape.Var) ([]byte, error) {
	if len(vars) != len(t.slots) {
		return nil, fmt.Errorf("xmltext: template got %d vars, want %d", len(vars), len(t.slots))
	}
	out := append(dst, t.segs[0]...)
	for i := range t.slots {
		s := &t.slots[i]
		v := &vars[i]
		switch s.kind {
		case bxdm.KindLeafElement:
			if v.Data != nil || v.Value.Type() != s.code {
				return nil, fmt.Errorf("xmltext: template slot %d: leaf type mismatch", i)
			}
			if s.code == bxdm.TString {
				out = appendEscapedText(out, v.Value.Text())
			} else {
				// Numeric and bool lexicals never contain characters
				// that need escaping.
				out = v.Value.AppendLexical(out)
			}
		case bxdm.KindArrayElement:
			if v.Data == nil || v.Data.Type() != s.code || v.Data.Len() != s.count {
				return nil, fmt.Errorf("xmltext: template slot %d: array mismatch", i)
			}
			for j := 0; j < s.count; j++ {
				out = append(out, t.itemOpen...)
				out = v.Data.AppendLexical(out, j)
				out = append(out, t.itemClose...)
			}
		}
		out = append(out, t.segs[i+1]...)
	}
	return out, nil
}

// Match reports whether data is an encoding of this template's shape and,
// if so, appends the decoded variable values to *vars in slot order. The
// scan is deliberately conservative: it only matches byte sequences whose
// generic parse it can reproduce exactly, so a false return means "use the
// generic parser", never a wrong tree.
func (t *Template) Match(data []byte, vars *[]shape.Var) bool {
	mark := len(*vars)
	fail := func() bool {
		*vars = (*vars)[:mark]
		return false
	}
	pos := 0
	for i := range t.slots {
		seg := t.segs[i]
		if len(data)-pos < len(seg) || !bytes.Equal(data[pos:pos+len(seg)], seg) {
			return fail()
		}
		pos += len(seg)
		s := &t.slots[i]
		switch s.kind {
		case bxdm.KindLeafElement:
			end := pos
			for end < len(data) && data[end] != '<' {
				// Entity references and carriage returns are normalized
				// by the generic parser; bail out rather than replicate.
				if data[end] == '&' || data[end] == '\r' {
					return fail()
				}
				end++
			}
			w := data[pos:end]
			if s.code == bxdm.TString {
				// A whitespace-only text node may be dropped by the
				// parser's inter-element whitespace rule; don't guess.
				if len(w) > 0 && isAllWS(w) {
					return fail()
				}
				*vars = append(*vars, shape.Var{Value: bxdm.StringValue(string(w))})
			} else {
				v, err := bxdm.ParseValue(s.code, string(w))
				if err != nil {
					return fail()
				}
				*vars = append(*vars, shape.Var{Value: v})
			}
			pos = end
		case bxdm.KindArrayElement:
			b, err := bxdm.NewArrayBuilder(s.code)
			if err != nil {
				return fail()
			}
			for j := 0; j < s.count; j++ {
				if !hasPrefix(data, pos, t.itemOpen) {
					return fail()
				}
				pos += len(t.itemOpen)
				end := pos
				for end < len(data) && data[end] != '<' {
					if data[end] == '&' || data[end] == '\r' {
						return fail()
					}
					end++
				}
				// The generic fast-array path trims each item before
				// parsing; mirror it.
				if err := b.AppendLexicalBytes(bytes.TrimSpace(data[pos:end])); err != nil {
					return fail()
				}
				pos = end
				if !hasPrefix(data, pos, t.itemClose) {
					return fail()
				}
				pos += len(t.itemClose)
			}
			*vars = append(*vars, shape.Var{Data: b.Data()})
		}
	}
	last := t.segs[len(t.segs)-1]
	if len(data)-pos != len(last) || !bytes.Equal(data[pos:], last) {
		return fail()
	}
	return true
}

func hasPrefix(data []byte, pos int, p []byte) bool {
	return len(data)-pos >= len(p) && bytes.Equal(data[pos:pos+len(p)], p)
}

// appendEscapedText is escapeTextTo for an append destination, kept
// byte-identical to the generic encoder's text escaping.
func appendEscapedText(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch b := s[i]; b {
		case '&':
			dst = append(dst, "&amp;"...)
		case '<':
			dst = append(dst, "&lt;"...)
		case '>':
			dst = append(dst, "&gt;"...)
		case '\r':
			dst = append(dst, "&#13;"...)
		default:
			dst = append(dst, b)
		}
	}
	return dst
}
