package xmltext

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"bxsoap/internal/bxdm"
)

// DecodeOptions control parsing.
type DecodeOptions struct {
	// RecoverTypes honors xsi:type and SOAP-ENC arrayType hints, rebuilding
	// LeafElement and ArrayElement nodes from their textual rendering (the
	// XML→binary direction of transcodability, paper §4.2). Without it every
	// element parses as a general element with text children.
	RecoverTypes bool
	// KeepInterElementWhitespace retains whitespace-only text nodes between
	// elements. Defaults to true behaviour when set; the SOAP engine parses
	// with it off since SOAP messages are data-oriented.
	DropInterElementWhitespace bool
}

// parserPool recycles parser state (namespace scope frames, the name
// cache) across messages. The parsed tree never aliases parser state or the
// input buffer, so pooling is invisible to callers.
var parserPool = sync.Pool{New: func() any { return new(parser) }}

// Parse parses an XML 1.0 document into a bXDM tree. The returned tree
// does not alias data: callers may recycle the buffer as soon as Parse
// returns.
func Parse(data []byte, opts DecodeOptions) (*bxdm.Document, error) {
	p := parserPool.Get().(*parser)
	p.data, p.pos, p.opts, p.lastName = data, 0, opts, ""
	for p.scope.Depth() > 0 { // a failed earlier parse may have left frames pushed
		p.scope.Pop()
	}
	doc, err := p.parseDocument()
	pos := p.pos
	p.data = nil
	parserPool.Put(p)
	if err != nil {
		return nil, fmt.Errorf("xmltext: %w at byte %d", err, pos)
	}
	return doc, nil
}

// SyntaxError describes a malformed document.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string { return fmt.Sprintf("xml syntax: %s", e.Msg) }

type parser struct {
	data  []byte
	pos   int
	opts  DecodeOptions
	scope bxdm.NSScope
	// lastName is a single-entry cache for parseName: markup repeats the
	// same tag names (every end tag echoes its start tag, sibling elements
	// share names), and the cache turns those repeats into an alloc-free
	// bytes-vs-string comparison.
	lastName string
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() bool { return p.pos >= len(p.data) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.data[p.pos]
}

func (p *parser) skipWS() {
	for !p.eof() {
		switch p.data[p.pos] {
		case ' ', '\t', '\r', '\n':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) consume(s string) bool {
	if len(p.data)-p.pos >= len(s) && string(p.data[p.pos:p.pos+len(s)]) == s {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *parser) expect(s string) error {
	if !p.consume(s) {
		return p.errf("expected %q", s)
	}
	return nil
}

func (p *parser) parseDocument() (*bxdm.Document, error) {
	doc := &bxdm.Document{}
	// Optional XML declaration.
	p.skipWS()
	if bytes.HasPrefix(p.data[p.pos:], []byte("<?xml")) {
		end := bytes.Index(p.data[p.pos:], []byte("?>"))
		if end < 0 {
			return nil, p.errf("unterminated XML declaration")
		}
		p.pos += end + 2
	}
	seenRoot := false
	for {
		p.skipWS()
		if p.eof() {
			break
		}
		if p.peek() != '<' {
			return nil, p.errf("text outside document element")
		}
		switch {
		case p.consume("<!--"):
			c, err := p.parseCommentBody()
			if err != nil {
				return nil, err
			}
			doc.Children = append(doc.Children, c)
		case p.consume("<!DOCTYPE"):
			if err := p.skipDoctype(); err != nil {
				return nil, err
			}
		case p.consume("<?"):
			pi, err := p.parsePIBody()
			if err != nil {
				return nil, err
			}
			doc.Children = append(doc.Children, pi)
		default:
			if seenRoot {
				return nil, p.errf("multiple document elements")
			}
			el, err := p.parseElement()
			if err != nil {
				return nil, err
			}
			doc.Children = append(doc.Children, el)
			seenRoot = true
		}
	}
	if !seenRoot {
		return nil, p.errf("no document element")
	}
	return doc, nil
}

func (p *parser) skipDoctype() error {
	depth := 1
	for !p.eof() {
		switch p.data[p.pos] {
		case '<':
			depth++
		case '>':
			depth--
			if depth == 0 {
				p.pos++
				return nil
			}
		}
		p.pos++
	}
	return p.errf("unterminated DOCTYPE")
}

func isNameStart(b byte) bool {
	return b == '_' || b == ':' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || b >= 0x80
}

func isNameChar(b byte) bool {
	return isNameStart(b) || b == '-' || b == '.' || (b >= '0' && b <= '9')
}

func (p *parser) parseName() (string, error) {
	start := p.pos
	if p.eof() || !isNameStart(p.data[p.pos]) {
		return "", p.errf("expected name")
	}
	p.pos++
	for !p.eof() && isNameChar(p.data[p.pos]) {
		p.pos++
	}
	if b := p.data[start:p.pos]; string(b) == p.lastName {
		return p.lastName, nil
	}
	p.lastName = string(p.data[start:p.pos])
	return p.lastName, nil
}

// checkQName enforces Namespaces in XML on a parsed name: at most one
// colon, used strictly as a separator between a non-empty prefix and a
// non-empty local part. Plain XML 1.0 Names admit freestanding colons
// (isNameStart accepts them), but such names cannot round-trip through the
// QName model — ":" would re-serialize as an attribute with no name at all.
func (p *parser) checkQName(name string) error {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		if i == 0 || i == len(name)-1 || strings.IndexByte(name[i+1:], ':') >= 0 {
			return p.errf("malformed qualified name %q", name)
		}
	}
	return nil
}

type rawAttr struct {
	prefix, local, value string
}

// parseElement parses one element and its subtree. p.pos sits on '<'.
func (p *parser) parseElement() (bxdm.Node, error) {
	if err := p.expect("<"); err != nil {
		return nil, err
	}
	name, err := p.parseName()
	if err != nil {
		return nil, err
	}
	if err := p.checkQName(name); err != nil {
		return nil, err
	}
	var raws []rawAttr
	var decls []bxdm.NamespaceDecl
	selfClose := false
	for {
		p.skipWS()
		if p.eof() {
			return nil, p.errf("unterminated start tag <%s", name)
		}
		if p.consume("/>") {
			selfClose = true
			break
		}
		if p.consume(">") {
			break
		}
		aname, err := p.parseName()
		if err != nil {
			return nil, err
		}
		if err := p.checkQName(aname); err != nil {
			return nil, err
		}
		p.skipWS()
		if err := p.expect("="); err != nil {
			return nil, err
		}
		p.skipWS()
		aval, err := p.parseAttValue()
		if err != nil {
			return nil, err
		}
		switch {
		case aname == "xmlns":
			decls = append(decls, bxdm.NamespaceDecl{Prefix: "", URI: aval})
		case strings.HasPrefix(aname, "xmlns:"):
			decls = append(decls, bxdm.NamespaceDecl{Prefix: aname[6:], URI: aval})
		default:
			pfx, local := splitQName(aname)
			raws = append(raws, rawAttr{prefix: pfx, local: local, value: aval})
		}
	}

	p.scope.Push(decls)
	defer p.scope.Pop()

	common := bxdm.ElemCommon{NamespaceDecls: decls}
	if p.opts.RecoverTypes {
		// The writer synthesizes xsi/xsd/enc declarations to carry type
		// hints; strip them symmetrically so hint plumbing never shows up in
		// the recovered model. QNames that reference these namespaces keep
		// their URIs, and re-serialization auto-declares as needed.
		common.NamespaceDecls = stripHintDecls(decls)
	}
	pfx, local := splitQName(name)
	space, ok := p.scope.URIFor(pfx)
	if pfx != "" && !ok {
		return nil, p.errf("unbound namespace prefix %q", pfx)
	}
	common.Name = bxdm.QName{Space: space, Prefix: pfx, Local: local}

	var xsiType, arrayType string
	for _, ra := range raws {
		var aspace string
		if ra.prefix != "" {
			aspace, ok = p.scope.URIFor(ra.prefix)
			if !ok {
				return nil, p.errf("unbound namespace prefix %q", ra.prefix)
			}
		}
		if p.opts.RecoverTypes {
			if aspace == XSINamespace && ra.local == "type" {
				xsiType = ra.value
				continue
			}
			if aspace == ENCNamespace && ra.local == "arrayType" {
				arrayType = ra.value
				continue
			}
		}
		common.Attributes = append(common.Attributes, bxdm.Attribute{
			Name:  bxdm.QName{Space: aspace, Prefix: ra.prefix, Local: ra.local},
			Value: bxdm.StringValue(ra.value),
		})
	}

	if arrayType != "" && !selfClose {
		// The arrayType attribute is known before the content is parsed, so
		// the overwhelmingly common wire shape — a flat run of attribute-free
		// single-text items — can skip per-item node building entirely.
		if n, handled, err := p.tryFastArray(common, arrayType, name); handled || err != nil {
			return n, err
		}
	}

	var children []bxdm.Node
	if !selfClose {
		children, err = p.parseContent(name)
		if err != nil {
			return nil, err
		}
	}

	if arrayType != "" {
		return p.buildArrayElement(common, arrayType, children)
	}
	if xsiType != "" {
		return p.buildLeafElement(common, xsiType, children)
	}
	return &bxdm.Element{ElemCommon: common, Children: children}, nil
}

// resolveTypeRef resolves a "pfx:name" type reference against the in-scope
// namespaces, requiring the XSD namespace.
func (p *parser) resolveTypeRef(ref string) (bxdm.TypeCode, error) {
	pfx, local := splitQName(ref)
	uri, ok := p.scope.URIFor(pfx)
	if !ok || uri != XSDNamespace {
		return bxdm.TInvalid, p.errf("type reference %q is not in the XML Schema namespace", ref)
	}
	code := bxdm.TypeCodeForXSD(local)
	if code == bxdm.TInvalid {
		return bxdm.TInvalid, p.errf("unsupported XSD type %q", ref)
	}
	return code, nil
}

func (p *parser) buildLeafElement(common bxdm.ElemCommon, ref string, children []bxdm.Node) (bxdm.Node, error) {
	code, err := p.resolveTypeRef(ref)
	if err != nil {
		return nil, err
	}
	var text strings.Builder
	for _, c := range children {
		t, ok := c.(*bxdm.Text)
		if !ok {
			return nil, p.errf("xsi:type element has non-text content")
		}
		text.WriteString(t.Data)
	}
	v, err := bxdm.ParseValue(code, text.String())
	if err != nil {
		return nil, p.errf("invalid %s value %q: %v", code, text.String(), err)
	}
	return &bxdm.LeafElement{ElemCommon: common, Value: v}, nil
}

// parseArrayTypeRef dissects an arrayType value such as "xsd:double[1000]"
// into the item type code and the declared length.
func (p *parser) parseArrayTypeRef(ref string) (bxdm.TypeCode, int, error) {
	open := strings.IndexByte(ref, '[')
	if open < 0 || !strings.HasSuffix(ref, "]") {
		return bxdm.TInvalid, 0, p.errf("malformed arrayType %q", ref)
	}
	code, err := p.resolveTypeRef(ref[:open])
	if err != nil {
		return bxdm.TInvalid, 0, err
	}
	declared, err := strconv.Atoi(ref[open+1 : len(ref)-1])
	if err != nil {
		return bxdm.TInvalid, 0, p.errf("malformed arrayType length in %q", ref)
	}
	return code, declared, nil
}

// tryFastArray scans array content in one specialized pass: each item must
// be an attribute-free element holding plain text (no entities, no carriage
// returns, no child markup). Any deviation rewinds to the saved position
// and reports handled=false so the general path re-parses; the fast path
// therefore never changes what is accepted, only how much it allocates.
func (p *parser) tryFastArray(common bxdm.ElemCommon, ref, name string) (bxdm.Node, bool, error) {
	code, declared, err := p.parseArrayTypeRef(ref)
	if err != nil {
		return nil, false, err // malformed arrayType fails in any path
	}
	b, err := bxdm.NewArrayBuilder(code)
	if err != nil {
		return nil, false, p.errf("%v", err)
	}
	save := p.pos
	n := 0
	for {
		p.skipWS()
		if p.consume("</") {
			if !p.consume(name) || (!p.eof() && isNameChar(p.peek())) {
				p.pos = save
				return nil, false, nil
			}
			p.skipWS()
			if !p.consume(">") {
				p.pos = save
				return nil, false, nil
			}
			if n != declared {
				return nil, false, p.errf("arrayType declares %d items, found %d", declared, n)
			}
			return &bxdm.ArrayElement{ElemCommon: common, Data: b.Data()}, true, nil
		}
		if p.eof() || p.peek() != '<' {
			p.pos = save
			return nil, false, nil
		}
		p.pos++
		// Item open tag: a prefix-free name followed immediately by '>'.
		nameStart := p.pos
		if p.eof() || !isNameStart(p.peek()) || p.peek() == ':' {
			p.pos = save
			return nil, false, nil
		}
		p.pos++
		for !p.eof() && isNameChar(p.peek()) && p.peek() != ':' {
			p.pos++
		}
		item := p.data[nameStart:p.pos]
		if p.eof() || p.peek() != '>' {
			p.pos = save
			return nil, false, nil
		}
		p.pos++
		textStart := p.pos
		for !p.eof() {
			c := p.peek()
			if c == '<' {
				break
			}
			if c == '&' || c == '\r' {
				p.pos = save
				return nil, false, nil
			}
			p.pos++
		}
		text := bytes.TrimSpace(p.data[textStart:p.pos])
		if !p.consume("</") {
			p.pos = save
			return nil, false, nil
		}
		if len(p.data)-p.pos < len(item) || !bytes.Equal(p.data[p.pos:p.pos+len(item)], item) {
			p.pos = save
			return nil, false, nil
		}
		p.pos += len(item)
		if !p.eof() && isNameChar(p.peek()) {
			p.pos = save
			return nil, false, nil
		}
		p.skipWS()
		if !p.consume(">") {
			p.pos = save
			return nil, false, nil
		}
		if err := b.AppendLexicalBytes(text); err != nil {
			return nil, false, p.errf("array item %d: %v", n, err)
		}
		n++
	}
}

func (p *parser) buildArrayElement(common bxdm.ElemCommon, ref string, children []bxdm.Node) (bxdm.Node, error) {
	code, declared, err := p.parseArrayTypeRef(ref)
	if err != nil {
		return nil, err
	}
	b, err := bxdm.NewArrayBuilder(code)
	if err != nil {
		return nil, p.errf("%v", err)
	}
	n := 0
	for _, c := range children {
		switch x := c.(type) {
		case *bxdm.Text:
			if strings.TrimSpace(x.Data) != "" {
				return nil, p.errf("stray text inside array element")
			}
		case *bxdm.Element:
			if err := b.AppendLexical(strings.TrimSpace(elementText(x))); err != nil {
				return nil, p.errf("array item %d: %v", n, err)
			}
			n++
		case *bxdm.LeafElement:
			if err := b.AppendLexical(x.Value.Lexical()); err != nil {
				return nil, p.errf("array item %d: %v", n, err)
			}
			n++
		default:
			return nil, p.errf("unexpected node inside array element")
		}
	}
	if n != declared {
		return nil, p.errf("arrayType declares %d items, found %d", declared, n)
	}
	return &bxdm.ArrayElement{ElemCommon: common, Data: b.Data()}, nil
}

func elementText(e *bxdm.Element) string {
	var sb strings.Builder
	for _, c := range e.Children {
		if t, ok := c.(*bxdm.Text); ok {
			sb.WriteString(t.Data)
		}
	}
	return sb.String()
}

// parseContent parses child nodes until the matching end tag of name.
func (p *parser) parseContent(name string) ([]bxdm.Node, error) {
	var children []bxdm.Node
	var text []byte
	flush := func(forceKeep bool) {
		if len(text) == 0 {
			return
		}
		if !forceKeep && p.opts.DropInterElementWhitespace && isAllWS(text) {
			text = text[:0]
			return
		}
		children = append(children, &bxdm.Text{Data: string(text)})
		text = text[:0]
	}
	for {
		if p.eof() {
			return nil, p.errf("unterminated element <%s>", name)
		}
		b := p.data[p.pos]
		if b != '<' {
			t, err := p.parseCharData()
			if err != nil {
				return nil, err
			}
			text = append(text, t...)
			continue
		}
		switch {
		case p.consume("</"):
			end, err := p.parseName()
			if err != nil {
				return nil, err
			}
			if end != name {
				return nil, p.errf("mismatched end tag </%s>, expected </%s>", end, name)
			}
			p.skipWS()
			if err := p.expect(">"); err != nil {
				return nil, err
			}
			flush(false)
			return children, nil
		case p.consume("<!--"):
			flush(false)
			c, err := p.parseCommentBody()
			if err != nil {
				return nil, err
			}
			children = append(children, c)
		case p.consume("<![CDATA["):
			end := bytes.Index(p.data[p.pos:], []byte("]]>"))
			if end < 0 {
				return nil, p.errf("unterminated CDATA section")
			}
			text = append(text, p.data[p.pos:p.pos+end]...)
			p.pos += end + 3
			flush(true) // CDATA content is always significant
		case p.consume("<?"):
			flush(false)
			pi, err := p.parsePIBody()
			if err != nil {
				return nil, err
			}
			children = append(children, pi)
		default:
			flush(false)
			el, err := p.parseElement()
			if err != nil {
				return nil, err
			}
			children = append(children, el)
		}
	}
}

func isAllWS(b []byte) bool {
	for _, c := range b {
		if c != ' ' && c != '\t' && c != '\r' && c != '\n' {
			return false
		}
	}
	return true
}

// parseCharData reads text up to the next '<', expanding entity references.
func (p *parser) parseCharData() ([]byte, error) {
	var out []byte
	for !p.eof() {
		b := p.data[p.pos]
		if b == '<' {
			break
		}
		if b == '&' {
			r, err := p.parseReference()
			if err != nil {
				return nil, err
			}
			out = append(out, r...)
			continue
		}
		if b == '\r' {
			// XML line-end normalization.
			p.pos++
			if !p.eof() && p.data[p.pos] == '\n' {
				continue
			}
			out = append(out, '\n')
			continue
		}
		out = append(out, b)
		p.pos++
	}
	return out, nil
}

func (p *parser) parseReference() ([]byte, error) {
	if err := p.expect("&"); err != nil {
		return nil, err
	}
	semi := bytes.IndexByte(p.data[p.pos:], ';')
	if semi < 0 || semi > 32 {
		return nil, p.errf("unterminated entity reference")
	}
	name := string(p.data[p.pos : p.pos+semi])
	p.pos += semi + 1
	switch name {
	case "amp":
		return []byte("&"), nil
	case "lt":
		return []byte("<"), nil
	case "gt":
		return []byte(">"), nil
	case "apos":
		return []byte("'"), nil
	case "quot":
		return []byte(`"`), nil
	}
	if strings.HasPrefix(name, "#") {
		var n int64
		var err error
		if strings.HasPrefix(name, "#x") || strings.HasPrefix(name, "#X") {
			n, err = strconv.ParseInt(name[2:], 16, 32)
		} else {
			n, err = strconv.ParseInt(name[1:], 10, 32)
		}
		if err != nil || n < 0 || n > 0x10ffff {
			return nil, p.errf("invalid character reference &%s;", name)
		}
		return []byte(string(rune(n))), nil
	}
	return nil, p.errf("unknown entity &%s;", name)
}

func (p *parser) parseAttValue() (string, error) {
	if p.eof() || (p.peek() != '"' && p.peek() != '\'') {
		return "", p.errf("expected quoted attribute value")
	}
	quote := p.data[p.pos]
	p.pos++
	var out []byte
	for {
		if p.eof() {
			return "", p.errf("unterminated attribute value")
		}
		b := p.data[p.pos]
		if b == quote {
			p.pos++
			return string(out), nil
		}
		switch b {
		case '<':
			return "", p.errf("'<' in attribute value")
		case '&':
			r, err := p.parseReference()
			if err != nil {
				return "", err
			}
			out = append(out, r...)
		case '\t', '\n', '\r':
			out = append(out, ' ') // attribute-value normalization
			p.pos++
		default:
			out = append(out, b)
			p.pos++
		}
	}
}

func (p *parser) parseCommentBody() (*bxdm.Comment, error) {
	end := bytes.Index(p.data[p.pos:], []byte("-->"))
	if end < 0 {
		return nil, p.errf("unterminated comment")
	}
	data := string(p.data[p.pos : p.pos+end])
	if strings.Contains(data, "--") {
		return nil, p.errf("'--' inside comment")
	}
	p.pos += end + 3
	return &bxdm.Comment{Data: data}, nil
}

func (p *parser) parsePIBody() (*bxdm.PI, error) {
	target, err := p.parseName()
	if err != nil {
		return nil, err
	}
	if strings.EqualFold(target, "xml") {
		return nil, p.errf("PI target 'xml' is reserved")
	}
	end := bytes.Index(p.data[p.pos:], []byte("?>"))
	if end < 0 {
		return nil, p.errf("unterminated processing instruction")
	}
	data := strings.TrimLeft(string(p.data[p.pos:p.pos+end]), " \t\r\n")
	p.pos += end + 2
	return &bxdm.PI{Target: target, Data: data}, nil
}

func stripHintDecls(decls []bxdm.NamespaceDecl) []bxdm.NamespaceDecl {
	var out []bxdm.NamespaceDecl
	for _, d := range decls {
		switch d.URI {
		case XSINamespace, XSDNamespace, ENCNamespace:
			continue
		}
		out = append(out, d)
	}
	return out
}

func splitQName(s string) (prefix, local string) {
	if i := strings.IndexByte(s, ':'); i >= 0 {
		return s[:i], s[i+1:]
	}
	return "", s
}
