package xmltext

import (
	"strings"
	"testing"

	"bxsoap/internal/bxdm"
)

func mustParse(t *testing.T, s string, opts DecodeOptions) *bxdm.Document {
	t.Helper()
	doc, err := Parse([]byte(s), opts)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return doc
}

func TestMarshalSimpleElement(t *testing.T) {
	e := bxdm.NewElement(bxdm.LocalName("greeting"), bxdm.NewText("hello & <world>"))
	out, err := Marshal(e, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := `<greeting>hello &amp; &lt;world&gt;</greeting>`
	if string(out) != want {
		t.Errorf("got %q, want %q", out, want)
	}
}

func TestMarshalNamespaces(t *testing.T) {
	root := bxdm.NewElement(bxdm.PName("urn:app", "a", "root"))
	root.DeclareNamespace("a", "urn:app")
	root.Append(bxdm.NewElement(bxdm.Name("urn:app", "child")))
	out, err := Marshal(root, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := `<a:root xmlns:a="urn:app"><a:child></a:child></a:root>`
	if string(out) != want {
		t.Errorf("got %q, want %q", out, want)
	}
}

func TestMarshalAutoDeclaresNamespace(t *testing.T) {
	// No explicit declaration: the writer must synthesize one.
	root := bxdm.NewElement(bxdm.Name("urn:auto", "root"))
	out, err := Marshal(root, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	doc := mustParse(t, string(out), DecodeOptions{})
	if doc.Root().ElemName().Space != "urn:auto" {
		t.Errorf("auto-declared namespace lost: %s", out)
	}
}

func TestMarshalDefaultNamespaceUndeclaration(t *testing.T) {
	root := bxdm.NewElement(bxdm.Name("urn:d", "root"))
	root.DeclareNamespace("", "urn:d")
	root.Append(bxdm.NewElement(bxdm.LocalName("plain")))
	out, err := Marshal(root, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	doc := mustParse(t, string(out), DecodeOptions{})
	children := doc.Root().(*bxdm.Element).ChildElements()
	if len(children) != 1 || children[0].ElemName().Space != "" {
		t.Errorf("no-namespace child not preserved: %s", out)
	}
}

func TestMarshalXMLDecl(t *testing.T) {
	out, err := Marshal(bxdm.NewElement(bxdm.LocalName("e")), EncodeOptions{XMLDecl: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(out), `<?xml version="1.0"`) {
		t.Errorf("missing XML declaration: %s", out)
	}
}

func TestAttributeEscaping(t *testing.T) {
	e := bxdm.NewElement(bxdm.LocalName("e"))
	e.SetAttr(bxdm.LocalName("a"), bxdm.StringValue(`x"y<z&w`))
	out, err := Marshal(e, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	doc := mustParse(t, string(out), DecodeOptions{})
	v, ok := doc.Root().Attr(bxdm.LocalName("a"))
	if !ok || v.Text() != `x"y<z&w` {
		t.Errorf("attr round trip = %q (%s)", v.Text(), out)
	}
}

func TestParseBasics(t *testing.T) {
	doc := mustParse(t, `<?xml version="1.0"?><!--top--><root a="1">text<child/><!--in--><?pi data?></root>`, DecodeOptions{})
	if len(doc.Children) != 2 {
		t.Fatalf("document children = %d, want 2", len(doc.Children))
	}
	root := doc.Root().(*bxdm.Element)
	if root.Name.Local != "root" {
		t.Fatalf("root = %v", root.Name)
	}
	if v, ok := root.Attr(bxdm.LocalName("a")); !ok || v.Text() != "1" {
		t.Error("attribute lost")
	}
	kinds := make([]bxdm.Kind, len(root.Children))
	for i, c := range root.Children {
		kinds[i] = c.Kind()
	}
	want := []bxdm.Kind{bxdm.KindText, bxdm.KindElement, bxdm.KindComment, bxdm.KindPI}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("child kinds %v, want %v", kinds, want)
		}
	}
}

func TestParseEntities(t *testing.T) {
	doc := mustParse(t, `<e>&lt;&gt;&amp;&apos;&quot;&#65;&#x42;</e>`, DecodeOptions{})
	got := doc.Root().(*bxdm.Element).TextContent()
	if got != `<>&'"AB` {
		t.Errorf("entities = %q", got)
	}
}

func TestParseCDATA(t *testing.T) {
	doc := mustParse(t, `<e><![CDATA[<not-a-tag> & raw]]></e>`, DecodeOptions{})
	if got := doc.Root().(*bxdm.Element).TextContent(); got != "<not-a-tag> & raw" {
		t.Errorf("CDATA = %q", got)
	}
}

func TestParseNamespaceScoping(t *testing.T) {
	doc := mustParse(t, `<a:r xmlns:a="urn:1"><a:c xmlns:a="urn:2"/><a:d/></a:r>`, DecodeOptions{})
	root := doc.Root().(*bxdm.Element)
	kids := root.ChildElements()
	if kids[0].ElemName().Space != "urn:2" {
		t.Errorf("inner redeclaration ignored: %v", kids[0].ElemName())
	}
	if kids[1].ElemName().Space != "urn:1" {
		t.Errorf("outer binding lost after inner scope: %v", kids[1].ElemName())
	}
}

func TestParseDefaultNamespace(t *testing.T) {
	doc := mustParse(t, `<r xmlns="urn:d"><c/><p:q xmlns:p="urn:p" p:at="v"/></r>`, DecodeOptions{})
	root := doc.Root().(*bxdm.Element)
	if root.Name.Space != "urn:d" {
		t.Error("default namespace not applied to root")
	}
	kids := root.ChildElements()
	if kids[0].ElemName().Space != "urn:d" {
		t.Error("default namespace not inherited")
	}
	q := kids[1]
	if q.ElemName().Space != "urn:p" {
		t.Error("prefixed element namespace wrong")
	}
	if _, ok := q.Attr(bxdm.Name("urn:p", "at")); !ok {
		t.Error("prefixed attribute namespace wrong")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`<`,
		`<a>`,
		`<a></b>`,
		`<a x=1/>`,
		`<a x="1" x2='></a>`,
		`<a>&nope;</a>`,
		`<a>&#xZZ;</a>`,
		`text<a/>`,
		`<a/><b/>`,
		`<a><!-- -- --></a>`,
		`<p:a/>`,
		`<a p:x="1"/>`,
		`<a><![CDATA[x]]</a>`,
		`<?xml version="1.0"?`,
		`<a attr="x<y"/>`,
		// Freestanding or doubled colons are XML 1.0 Names but not QNames;
		// accepting them broke encode/re-parse round-trips (found by fuzzing).
		`<a :=""></a>`,
		`<: xmlns:a="urn:1"/>`,
		`<a: xmlns:a="urn:1"/>`,
		`<a xmlns:="urn:1"/>`,
		`<a b:c:d="1" xmlns:b="urn:1"/>`,
	}
	for _, s := range bad {
		if _, err := Parse([]byte(s), DecodeOptions{}); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestRoundTripGenericDocument(t *testing.T) {
	src := `<a:r xmlns:a="urn:1" at="v&quot;x"><a:c>body &amp; soul</a:c><plain xmlns=""/>tail<!--c--><?t d?></a:r>`
	doc := mustParse(t, src, DecodeOptions{})
	out, err := Marshal(doc, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	doc2 := mustParse(t, string(out), DecodeOptions{})
	if !bxdm.Equal(doc, doc2) {
		t.Errorf("model round trip differs:\n1st: %s\n2nd: %s", src, out)
	}
}

func typedTree() *bxdm.Document {
	root := bxdm.NewElement(bxdm.PName("urn:app", "a", "data"))
	root.DeclareNamespace("a", "urn:app")
	root.Append(
		bxdm.NewLeaf(bxdm.Name("urn:app", "count"), int32(-42)),
		bxdm.NewLeaf(bxdm.Name("urn:app", "ratio"), 0.30000000000000004),
		bxdm.NewLeaf(bxdm.Name("urn:app", "big"), uint64(1<<63)),
		bxdm.NewLeaf(bxdm.Name("urn:app", "flag"), true),
		bxdm.NewLeaf(bxdm.Name("urn:app", "label"), "x < y"),
		bxdm.NewArray(bxdm.Name("urn:app", "index"), []int32{1, 2, 3}),
		bxdm.NewArray(bxdm.Name("urn:app", "vals"), []float64{0.1, 2.5e-300, -7}),
	)
	return bxdm.NewDocument(root)
}

func TestTypedRoundTripWithHints(t *testing.T) {
	doc := typedTree()
	out, err := Marshal(doc, EncodeOptions{TypeHints: true})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(out, DecodeOptions{RecoverTypes: true})
	if err != nil {
		t.Fatalf("parse typed output: %v\n%s", err, out)
	}
	if !bxdm.Equal(doc, back) {
		t.Errorf("typed round trip lost information:\n%s", out)
	}
}

func TestTypeHintsEmitXSIType(t *testing.T) {
	out, err := Marshal(bxdm.NewLeaf(bxdm.LocalName("v"), int32(5)), EncodeOptions{TypeHints: true})
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	if !strings.Contains(s, `xsi:type="xsd:int"`) {
		t.Errorf("missing xsi:type: %s", s)
	}
	if !strings.Contains(s, XSINamespace) || !strings.Contains(s, XSDNamespace) {
		t.Errorf("hint namespaces not declared: %s", s)
	}
}

func TestArrayTypeAttribute(t *testing.T) {
	out, err := Marshal(bxdm.NewArray(bxdm.LocalName("v"), []float64{1, 2}), EncodeOptions{TypeHints: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `enc:arrayType="xsd:double[2]"`) {
		t.Errorf("missing arrayType: %s", out)
	}
	if !strings.Contains(string(out), `<i>1</i><i>2</i>`) {
		t.Errorf("items not rendered with short tags: %s", out)
	}
}

func TestArrayWithoutHintsRendersItems(t *testing.T) {
	out, err := Marshal(bxdm.NewArray(bxdm.LocalName("v"), []int32{7, 8, 9}), EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `<v><i>7</i><i>8</i><i>9</i></v>` {
		t.Errorf("got %s", out)
	}
}

func TestArrayItemNameOption(t *testing.T) {
	out, err := Marshal(bxdm.NewArray(bxdm.LocalName("v"), []int32{7}), EncodeOptions{ArrayItemName: "item"})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `<v><item>7</item></v>` {
		t.Errorf("got %s", out)
	}
}

func TestParseArrayLengthMismatch(t *testing.T) {
	src := `<v xmlns:enc="` + ENCNamespace + `" xmlns:xsd="` + XSDNamespace + `" enc:arrayType="xsd:int[3]"><i>1</i></v>`
	if _, err := Parse([]byte(src), DecodeOptions{RecoverTypes: true}); err == nil {
		t.Error("length mismatch not detected")
	}
}

func TestParseWithoutRecoverTypesKeepsHints(t *testing.T) {
	doc := typedTree()
	out, err := Marshal(doc, EncodeOptions{TypeHints: true})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(out, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Without type recovery the tree is generic: no leaf/array nodes...
	var leafs int
	bxdm.Walk(back, func(n bxdm.Node) error {
		if n.Kind() == bxdm.KindLeafElement || n.Kind() == bxdm.KindArrayElement {
			leafs++
		}
		return nil
	})
	if leafs != 0 {
		t.Errorf("typed nodes created without RecoverTypes: %d", leafs)
	}
	// ...and the xsi:type attributes remain ordinary attributes.
	count := doc.Root().(*bxdm.Element).FirstChild(bxdm.Name("urn:app", "count"))
	_ = count
	genericCount := back.Root().(*bxdm.Element).FirstChild(bxdm.Name("urn:app", "count"))
	if _, ok := genericCount.Attr(bxdm.Name(XSINamespace, "type")); !ok {
		t.Error("xsi:type attribute dropped in generic parse")
	}
}

func TestDropInterElementWhitespace(t *testing.T) {
	src := "<r>\n  <a/>\n  <b/>\n</r>"
	keep := mustParse(t, src, DecodeOptions{})
	drop := mustParse(t, src, DecodeOptions{DropInterElementWhitespace: true})
	if len(keep.Root().(*bxdm.Element).Children) != 5 {
		t.Errorf("keep: %d children, want 5", len(keep.Root().(*bxdm.Element).Children))
	}
	if len(drop.Root().(*bxdm.Element).Children) != 2 {
		t.Errorf("drop: %d children, want 2", len(drop.Root().(*bxdm.Element).Children))
	}
	// CDATA whitespace is significant even when dropping.
	cd := mustParse(t, "<r><a/><![CDATA[  ]]><b/></r>", DecodeOptions{DropInterElementWhitespace: true})
	if len(cd.Root().(*bxdm.Element).Children) != 3 {
		t.Error("CDATA whitespace wrongly dropped")
	}
}

func TestCRLFNormalization(t *testing.T) {
	doc := mustParse(t, "<e>a\r\nb\rc</e>", DecodeOptions{})
	if got := doc.Root().(*bxdm.Element).TextContent(); got != "a\nb\nc" {
		t.Errorf("line ends = %q", got)
	}
}

func TestDoctypeSkipped(t *testing.T) {
	doc := mustParse(t, `<!DOCTYPE root [<!ELEMENT root ANY>]><root/>`, DecodeOptions{})
	if doc.Root() == nil {
		t.Error("document element lost after DOCTYPE")
	}
}

func TestLeafValueEscapedInOutput(t *testing.T) {
	leaf := bxdm.NewLeaf(bxdm.LocalName("s"), "a<b&c")
	out, err := Marshal(leaf, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `<s>a&lt;b&amp;c</s>` {
		t.Errorf("got %s", out)
	}
}

func TestCommentWithDoubleDashRejected(t *testing.T) {
	if _, err := Marshal(&bxdm.Comment{Data: "a--b"}, EncodeOptions{}); err == nil {
		t.Error("comment with -- accepted")
	}
}

func TestSelfClosingTag(t *testing.T) {
	doc := mustParse(t, `<r><empty  /></r>`, DecodeOptions{})
	kids := doc.Root().(*bxdm.Element).ChildElements()
	if len(kids) != 1 || kids[0].ElemName().Local != "empty" {
		t.Fatalf("self-closing parse: %v", kids)
	}
	if len(kids[0].(*bxdm.Element).Children) != 0 {
		t.Error("self-closing element has children")
	}
}

func BenchmarkParseSmall(b *testing.B) {
	src := []byte(`<a:r xmlns:a="urn:1" at="v"><a:c>body</a:c><a:d>more text</a:d></a:r>`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src, DecodeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalArray1000(b *testing.B) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i) * 1.0001
	}
	arr := bxdm.NewArray(bxdm.LocalName("v"), vals)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(arr, EncodeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
