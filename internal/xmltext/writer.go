// Package xmltext implements the XML 1.0 serialization of the bXDM data
// model and a from-scratch XML parser producing bXDM trees. It is one of the
// two default encoding-policy models of the generic SOAP engine (paper §5.2,
// "XMLEncoding"), and supplies the transcodability path of §4.2: when type
// hints are enabled, typed leaf values carry xsi:type attributes and packed
// arrays carry SOAP-encoding arrayType attributes, so a textual document can
// be converted back into the identical typed bXDM tree.
package xmltext

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"bxsoap/internal/bxdm"
)

// Namespace URIs used by the type-hint machinery.
const (
	XSINamespace = "http://www.w3.org/2001/XMLSchema-instance"
	XSDNamespace = "http://www.w3.org/2001/XMLSchema"
	ENCNamespace = "http://schemas.xmlsoap.org/soap/encoding/"
)

// EncodeOptions control XML serialization.
type EncodeOptions struct {
	// XMLDecl emits the <?xml version="1.0" encoding="UTF-8"?> declaration.
	XMLDecl bool
	// TypeHints emits xsi:type on leaf elements and SOAP-ENC arrayType on
	// array elements, as the SOAP encoding rules require when no schema is
	// available (paper §4.2); without them a parser cannot rebuild typed
	// nodes.
	TypeHints bool
	// ArrayItemName is the tag used for each array item. It defaults to
	// "i" — the paper's Table 1 measures XML with "the shortest tag name of
	// each element in the array".
	ArrayItemName string
}

func (o EncodeOptions) itemName() string {
	if o.ArrayItemName == "" {
		return "i"
	}
	return o.ArrayItemName
}

const xmlDecl = `<?xml version="1.0" encoding="UTF-8"?>`

// Marshal serializes a bXDM tree to XML 1.0.
func Marshal(n bxdm.Node, opts EncodeOptions) ([]byte, error) {
	return AppendEncode(nil, n, opts)
}

// AppendEncode serializes a bXDM tree by appending its XML form to dst and
// returning the extended slice. This is the pooled-buffer fast path: the
// encoder writes straight into dst with no bufio layer and no flush copy.
func AppendEncode(dst []byte, n bxdm.Node, opts EncodeOptions) ([]byte, error) {
	e := getEncoder(opts)
	e.asink.buf = dst
	e.w = &e.asink
	if opts.XMLDecl {
		e.asink.buf = append(e.asink.buf, xmlDecl...)
	}
	err := bxdm.Accept(n, e)
	out := e.asink.buf
	putEncoder(e)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Encode serializes a bXDM tree to w.
func Encode(w io.Writer, n bxdm.Node, opts EncodeOptions) error {
	bw := bufio.NewWriter(w)
	e := getEncoder(opts)
	e.w = bw
	if opts.XMLDecl {
		if _, err := bw.WriteString(xmlDecl); err != nil {
			putEncoder(e)
			return err
		}
	}
	err := bxdm.Accept(n, e)
	putEncoder(e)
	if err != nil {
		return err
	}
	return bw.Flush()
}

// sink is the encoder's output: either a bufio.Writer (streaming Encode) or
// the in-place appendSink (AppendEncode). Both are byte-granular, so the
// encoder never builds intermediate strings.
type sink interface {
	io.Writer
	WriteByte(byte) error
	WriteString(string) (int, error)
}

// appendSink appends into a caller-provided buffer (typically a pooled
// payload).
type appendSink struct{ buf []byte }

func (s *appendSink) Write(p []byte) (int, error) {
	s.buf = append(s.buf, p...)
	return len(p), nil
}

func (s *appendSink) WriteByte(b byte) error {
	s.buf = append(s.buf, b)
	return nil
}

func (s *appendSink) WriteString(str string) (int, error) {
	s.buf = append(s.buf, str...)
	return len(str), nil
}

type encoder struct {
	w     sink
	opts  EncodeOptions
	scope bxdm.NSScope
	auto  int
	buf   []byte
	asink appendSink
	// record asks the visitor to note the byte span of every leaf lexical
	// and array item run in spans (template compilation only; offsets are
	// into asink.buf, so recording requires the AppendEncode path).
	record bool
	spans  []span
}

var encoderPool = sync.Pool{New: func() any { return new(encoder) }}

func getEncoder(opts EncodeOptions) *encoder {
	e := encoderPool.Get().(*encoder)
	e.opts = opts
	e.auto = 0
	for e.scope.Depth() > 0 { // a failed earlier encode may have left frames pushed
		e.scope.Pop()
	}
	return e
}

func putEncoder(e *encoder) {
	e.w = nil
	e.asink.buf = nil
	e.record = false
	e.spans = nil
	encoderPool.Put(e)
}

func (e *encoder) EnterDocument(*bxdm.Document) error { return nil }
func (e *encoder) LeaveDocument(*bxdm.Document) error { return nil }

// effectiveDecls computes the namespace declarations to emit on an element:
// the explicit ones plus any auto-generated bindings needed so that the
// element name, every attribute name, and the type-hint namespaces resolve.
func (e *encoder) effectiveDecls(c *bxdm.ElemCommon, needHints, needArray bool) []bxdm.NamespaceDecl {
	decls := append([]bxdm.NamespaceDecl(nil), c.NamespaceDecls...)
	// Tentatively push so resolution sees the element's own declarations.
	e.scope.Push(decls)
	ensure := func(space, hint string, forAttr bool) {
		if space == "" || space == bxdm.XMLNamespace {
			return
		}
		if pfx, ok := e.scope.PrefixFor(space); ok && !(forAttr && pfx == "") {
			return
		}
		prefix := hint
		unusable := prefix == "" || e.prefixTaken(decls, prefix)
		if !unusable {
			// A synthesized declaration must not shadow an in-scope binding
			// of the same prefix to a different URI: an earlier-resolved
			// name on this very element may depend on it.
			if uri, bound := e.scope.URIFor(prefix); bound && uri != "" && uri != space {
				unusable = true
			}
		}
		if unusable {
			for {
				e.auto++
				prefix = "ns" + strconv.Itoa(e.auto)
				if !e.prefixTaken(decls, prefix) {
					if _, bound := e.scope.URIFor(prefix); !bound {
						break
					}
				}
			}
		}
		decls = append(decls, bxdm.NamespaceDecl{Prefix: prefix, URI: space})
		e.scope.Pop()
		e.scope.Push(decls)
	}
	ensure(c.Name.Space, c.Name.Prefix, false)
	// An element in no namespace under a bound default namespace needs an
	// xmlns="" undeclaration.
	if c.Name.Space == "" {
		if uri, ok := e.scope.URIFor(""); ok && uri != "" {
			decls = append(decls, bxdm.NamespaceDecl{Prefix: "", URI: ""})
			e.scope.Pop()
			e.scope.Push(decls)
		}
	}
	for _, a := range c.Attributes {
		ensure(a.Name.Space, a.Name.Prefix, true)
	}
	if needHints {
		ensure(XSINamespace, "xsi", true)
		ensure(XSDNamespace, "xsd", true)
	}
	if needArray {
		ensure(ENCNamespace, "enc", true)
	}
	e.scope.Pop()
	return decls
}

func (e *encoder) prefixTaken(decls []bxdm.NamespaceDecl, prefix string) bool {
	for _, d := range decls {
		if d.Prefix == prefix {
			return true
		}
	}
	return false
}

// openTag writes "<qname decls attrs" without the closing '>' and pushes the
// namespace scope. extra holds synthesized attributes (type hints).
func (e *encoder) openTag(c *bxdm.ElemCommon, extra []bxdm.Attribute, needHints, needArray bool) error {
	// With type hints on, declare the hint namespaces once on the outermost
	// element so nested leaf/array elements resolve them from scope instead
	// of re-declaring per element.
	if e.opts.TypeHints && e.scope.Depth() == 0 {
		needHints = true
		needArray = true
	}
	decls := e.effectiveDecls(c, needHints, needArray)
	e.scope.Push(decls)
	e.w.WriteByte('<')
	if err := e.writeQName(c.Name, false); err != nil {
		return err
	}
	for _, d := range decls {
		if d.Prefix == "" {
			e.w.WriteString(` xmlns="`)
		} else {
			e.w.WriteString(` xmlns:`)
			e.w.WriteString(d.Prefix)
			e.w.WriteString(`="`)
		}
		e.escapeAttr(d.URI)
		e.w.WriteByte('"')
	}
	for _, a := range c.Attributes {
		if err := e.writeAttr(a); err != nil {
			return err
		}
	}
	for _, a := range extra {
		if err := e.writeAttr(a); err != nil {
			return err
		}
	}
	return nil
}

func (e *encoder) writeAttr(a bxdm.Attribute) error {
	e.w.WriteByte(' ')
	if err := e.writeQName(a.Name, true); err != nil {
		return err
	}
	e.w.WriteString(`="`)
	e.buf = a.Value.AppendLexical(e.buf[:0])
	e.escapeAttr(string(e.buf))
	e.w.WriteByte('"')
	return nil
}

func (e *encoder) writeQName(q bxdm.QName, attr bool) error {
	if q.Space != "" {
		pfx, ok := e.scope.PrefixFor(q.Space)
		if !ok || (attr && pfx == "") {
			return fmt.Errorf("xmltext: namespace %q not in scope for %s", q.Space, q.Local)
		}
		if pfx != "" {
			e.w.WriteString(pfx)
			e.w.WriteByte(':')
		}
	}
	e.w.WriteString(q.Local)
	return nil
}

func (e *encoder) closeTag(name bxdm.QName) error {
	e.w.WriteString("</")
	if err := e.writeQName(name, false); err != nil {
		return err
	}
	e.w.WriteByte('>')
	e.scope.Pop()
	return nil
}

func (e *encoder) EnterElement(el *bxdm.Element) error {
	if err := e.openTag(&el.ElemCommon, nil, false, false); err != nil {
		return err
	}
	e.w.WriteByte('>')
	return nil
}

func (e *encoder) LeaveElement(el *bxdm.Element) error {
	return e.closeTag(el.Name)
}

func (e *encoder) VisitLeaf(l *bxdm.LeafElement) error {
	var extraArr [1]bxdm.Attribute
	var extra []bxdm.Attribute
	hints := e.opts.TypeHints
	if hints {
		extraArr[0] = bxdm.Attribute{
			Name:  bxdm.PName(XSINamespace, "xsi", "type"),
			Value: bxdm.StringValue("xsd:" + l.Value.Type().String()),
		}
		extra = extraArr[:]
	}
	if err := e.openTag(&l.ElemCommon, extra, hints, false); err != nil {
		return err
	}
	e.w.WriteByte('>')
	start := len(e.asink.buf)
	e.buf = l.Value.AppendLexical(e.buf[:0])
	e.escapeText(e.buf)
	if e.record {
		e.spans = append(e.spans, span{
			start: start, end: len(e.asink.buf),
			kind: bxdm.KindLeafElement, code: l.Value.Type(),
		})
	}
	return e.closeTag(l.Name)
}

func (e *encoder) VisitArray(a *bxdm.ArrayElement) error {
	var extraArr [1]bxdm.Attribute
	var extra []bxdm.Attribute
	hints := e.opts.TypeHints
	if hints {
		extraArr[0] = bxdm.Attribute{
			Name: bxdm.PName(ENCNamespace, "enc", "arrayType"),
			Value: bxdm.StringValue(fmt.Sprintf("xsd:%s[%d]",
				a.Data.Type().String(), a.Data.Len())),
		}
		extra = extraArr[:]
	}
	if err := e.openTag(&a.ElemCommon, extra, hints, hints); err != nil {
		return err
	}
	e.w.WriteByte('>')
	start := len(e.asink.buf)
	// Each item becomes <i>lexical</i> — the open/close tag pair per element
	// whose cost Table 1 quantifies.
	item := e.opts.itemName()
	n := a.Data.Len()
	for i := 0; i < n; i++ {
		e.w.WriteByte('<')
		e.w.WriteString(item)
		e.w.WriteByte('>')
		e.buf = a.Data.AppendLexical(e.buf[:0], i)
		e.w.Write(e.buf) // numeric lexical forms never need escaping
		e.w.WriteString("</")
		e.w.WriteString(item)
		e.w.WriteByte('>')
	}
	if e.record {
		e.spans = append(e.spans, span{
			start: start, end: len(e.asink.buf),
			kind: bxdm.KindArrayElement, code: a.Data.Type(), count: n,
		})
	}
	return e.closeTag(a.Name)
}

func (e *encoder) VisitText(t *bxdm.Text) error {
	escapeTextTo(e.w, t.Data)
	return nil
}

func (e *encoder) VisitComment(c *bxdm.Comment) error {
	if strings.Contains(c.Data, "--") {
		return fmt.Errorf("xmltext: comment contains --")
	}
	e.w.WriteString("<!--")
	e.w.WriteString(c.Data)
	e.w.WriteString("-->")
	return nil
}

func (e *encoder) VisitPI(p *bxdm.PI) error {
	if strings.Contains(p.Data, "?>") {
		return fmt.Errorf("xmltext: PI data contains ?>")
	}
	e.w.WriteString("<?")
	e.w.WriteString(p.Target)
	if p.Data != "" {
		e.w.WriteByte(' ')
		e.w.WriteString(p.Data)
	}
	e.w.WriteString("?>")
	return nil
}

func (e *encoder) escapeText(s []byte) { escapeTextTo(e.w, s) }

// escapeTextTo works on string and []byte alike, so callers holding either
// form never pay a conversion copy.
func escapeTextTo[S ~string | ~[]byte](w sink, s S) {
	for i := 0; i < len(s); i++ {
		switch b := s[i]; b {
		case '&':
			w.WriteString("&amp;")
		case '<':
			w.WriteString("&lt;")
		case '>':
			w.WriteString("&gt;")
		case '\r':
			w.WriteString("&#13;")
		default:
			w.WriteByte(b)
		}
	}
}

func (e *encoder) escapeAttr(s string) {
	for i := 0; i < len(s); i++ {
		switch b := s[i]; b {
		case '&':
			e.w.WriteString("&amp;")
		case '<':
			e.w.WriteString("&lt;")
		case '"':
			e.w.WriteString("&quot;")
		case '\t':
			e.w.WriteString("&#9;")
		case '\n':
			e.w.WriteString("&#10;")
		case '\r':
			e.w.WriteString("&#13;")
		default:
			e.w.WriteByte(b)
		}
	}
}
