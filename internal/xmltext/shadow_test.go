package xmltext

import (
	"strings"
	"testing"

	"bxsoap/internal/bxdm"
)

// Regression: a synthesized namespace declaration must never reuse a hint
// prefix that is bound in scope to a different URI — doing so shadows the
// binding another attribute on the same element relies on.
func TestWriterDoesNotShadowNeededPrefix(t *testing.T) {
	root := bxdm.NewElement(bxdm.Name("urn:1", "root"))
	root.DeclareNamespace("p", "urn:1")
	inner := bxdm.NewElement(bxdm.LocalName("inner"))
	// First attribute relies on the inherited p→urn:1 binding.
	inner.SetAttr(bxdm.Name("urn:1", "a"), bxdm.StringValue("x"))
	// Second attribute's namespace is undeclared and hints prefix "p".
	inner.SetAttr(bxdm.PName("urn:2", "p", "b"), bxdm.StringValue("y"))
	root.Append(inner)

	out, err := Marshal(root, EncodeOptions{})
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := Parse(out, DecodeOptions{})
	if err != nil {
		t.Fatalf("Parse: %v\nxml: %s", err, out)
	}
	got := back.Root().(*bxdm.Element).ChildElements()[0]
	if v, ok := got.Attr(bxdm.Name("urn:1", "a")); !ok || v.Text() != "x" {
		t.Errorf("urn:1 attribute lost: %s", out)
	}
	if v, ok := got.Attr(bxdm.Name("urn:2", "b")); !ok || v.Text() != "y" {
		t.Errorf("urn:2 attribute lost: %s", out)
	}
}

// A prefix redeclared to a different URI mid-tree must still serialize
// elements that need the outer binding below the redeclaration point.
func TestWriterRecoversFromExplicitShadowing(t *testing.T) {
	root := bxdm.NewElement(bxdm.Name("urn:outer", "root"))
	root.DeclareNamespace("p", "urn:outer")
	mid := bxdm.NewElement(bxdm.Name("urn:inner", "mid"))
	mid.DeclareNamespace("p", "urn:inner") // shadows p
	deep := bxdm.NewLeaf(bxdm.Name("urn:outer", "deep"), int32(7))
	mid.Append(deep)
	root.Append(mid)

	out, err := Marshal(root, EncodeOptions{TypeHints: true})
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := Parse(out, DecodeOptions{RecoverTypes: true})
	if err != nil {
		t.Fatalf("Parse: %v\nxml: %s", err, out)
	}
	// The deep element's namespace must survive even though its only
	// original prefix was shadowed — the writer must have auto-declared.
	var found bool
	bxdm.Walk(back, func(n bxdm.Node) error {
		if l, ok := n.(*bxdm.LeafElement); ok && l.Name.Matches(bxdm.Name("urn:outer", "deep")) {
			found = true
			if l.Value.Int64() != 7 {
				t.Errorf("value = %v", l.Value)
			}
		}
		return nil
	})
	if !found {
		t.Errorf("deep element lost its namespace:\n%s", out)
	}
	if !strings.Contains(string(out), "urn:inner") {
		t.Errorf("inner declaration missing: %s", out)
	}
}
