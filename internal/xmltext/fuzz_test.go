package xmltext

import (
	"testing"

	"bxsoap/internal/bxdm"
)

// FuzzParse drives the textual XML parser with arbitrary bytes — this is
// the parser the XML/HTTP and XML/TCP bindings feed directly from the wire,
// so it must never panic or hang on hostile input. Accepted inputs are
// additionally pushed through the encode side and re-parsed: whatever the
// parser admits, the writer must be able to round-trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"<a/>",
		"<a>text</a>",
		`<?xml version="1.0" encoding="utf-8"?><a b="c">x</a>`,
		`<e xmlns="urn:d" xmlns:p="urn:p"><p:c a="1">&lt;&amp;&gt;</p:c></e>`,
		"<a><![CDATA[raw <markup> here]]></a>",
		"<a><!-- comment --><?pi data?></a>",
		`<env:Envelope xmlns:env="http://schemas.xmlsoap.org/soap/envelope/"><env:Body><r xsi:type="xsd:int" xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xmlns:xsd="http://www.w3.org/2001/XMLSchema">7</r></env:Body></env:Envelope>`,
		`<arr soapenc:arrayType="xsd:int[2]" xmlns:soapenc="http://schemas.xmlsoap.org/soap/encoding/" xmlns:xsd="http://www.w3.org/2001/XMLSchema"><item>1</item><item>2</item></arr>`,
		"<a>&#x48;&#105;</a>",
		"<\xff\xfe>",
		"<a><b></a></b>",
	}
	for _, s := range seeds {
		f.Add([]byte(s), true)
	}
	f.Fuzz(func(t *testing.T, data []byte, recover bool) {
		opts := DecodeOptions{
			RecoverTypes:               recover,
			DropInterElementWhitespace: true,
		}
		doc, err := Parse(data, opts)
		if err != nil {
			return // rejection is fine; panics and hangs are the bug
		}
		reencode(t, doc, EncodeOptions{TypeHints: recover}, opts)
	})
}

// reencode round-trips an accepted document: encode must succeed and the
// output must parse again.
func reencode(t *testing.T, doc *bxdm.Document, eo EncodeOptions, po DecodeOptions) {
	t.Helper()
	out, err := Marshal(doc, eo)
	if err != nil {
		t.Fatalf("accepted document failed to encode: %v", err)
	}
	if _, err := Parse(out, po); err != nil {
		t.Fatalf("re-parse of encoder output failed: %v\noutput: %q", err, out)
	}
}
