package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// MetricsHandler serves the Observer's snapshot. Extra metric sources that
// live outside the Observer (a pool's Stats, payload-pool gauges) can be
// folded in by the caller via extra, evaluated per request.
//
// Query parameters:
//
//	?window=N     stage histograms and dimensional series cover only the N
//	              most recent windows (1..NumWindows) instead of lifetime
//	?format=prom  Prometheus/OpenMetrics text exposition instead of JSON,
//	              exemplar annotations included
func MetricsHandler(o *Observer, extra func(*Snapshot)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var s *Snapshot
		if win := queryWindow(r); win > 0 {
			s = o.SnapshotWindow(win)
		} else {
			s = o.Snapshot()
		}
		if extra != nil {
			extra(s)
		}
		if r.URL.Query().Get("format") == "prom" {
			writeProm(w, s, o.SLOStatus())
			return
		}
		writeJSON(w, s)
	})
}

// SLOHandler serves every declared SLO's burn-rate state as JSON: targets,
// fast/slow burn rates, firing flag, lifetime budget consumption, and the
// latest breach exemplar's trace ID. An observer with no declared SLOs
// serves an empty list.
func SLOHandler(o *Observer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sts := o.SLOStatus()
		if sts == nil {
			sts = []SLOStatus{}
		}
		writeJSON(w, sts)
	})
}

// TraceRecentHandler serves the flight recorder's most recent joined trace
// trees, newest first. ?n=K bounds the list (default 16). With tracing
// disabled (no recorder on the observer) it serves an empty list.
func TraceRecentHandler(o *Observer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, nonNilTrees(o.Recorder().Recent(queryN(r, 16))))
	})
}

// TraceSlowHandler serves the trace trees that crossed the recorder's slow
// threshold, newest first. ?n=K bounds the list (default 16).
func TraceSlowHandler(o *Observer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, nonNilTrees(o.Recorder().Slow(queryN(r, 16))))
	})
}

// EventsHandler serves the flight recorder's event journal, newest first.
// ?n=K bounds the list (default 64).
func EventsHandler(o *Observer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		evs := o.Recorder().Events(queryN(r, 64))
		if evs == nil {
			evs = []Event{}
		}
		writeJSON(w, evs)
	})
}

// AdminMux builds the admin endpoint mounted by soapserver/soapproxy:
//
//	GET /metrics       observability snapshot (counters, gauges, stage
//	                   histograms with mean/p50/p95/p99, dimensional
//	                   series) as JSON; ?window=N restricts stage/series
//	                   aggregates to the last N windows, ?format=prom
//	                   switches to Prometheus text exposition
//	GET /slo           declared SLOs: burn rates, firing state, budget
//	                   consumption, breach exemplars
//	GET /trace/recent  the flight recorder's most recent trace trees
//	GET /trace/slow    traces that crossed the slow threshold
//	GET /events        the structured event journal
//
// plus the standard net/http/pprof profiles under /debug/pprof/. The mux is
// private to the admin listener, so pprof is never exposed on the
// SOAP-serving port. The trace endpoints serve empty lists when the
// observer has no recorder attached.
func AdminMux(o *Observer, extra func(*Snapshot)) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(o, extra))
	mux.Handle("/slo", SLOHandler(o))
	mux.Handle("/trace/recent", TraceRecentHandler(o))
	mux.Handle("/trace/slow", TraceSlowHandler(o))
	mux.Handle("/events", EventsHandler(o))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func queryN(r *http.Request, def int) int {
	if s := r.URL.Query().Get("n"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// queryWindow parses ?window=N; 0 (absent or invalid) means lifetime.
func queryWindow(r *http.Request) int {
	if s := r.URL.Query().Get("window"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 0
}

func nonNilTrees(ts []*TraceTree) []*TraceTree {
	if ts == nil {
		return []*TraceTree{}
	}
	return ts
}
