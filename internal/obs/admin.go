package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// MetricsHandler serves the Observer's snapshot as JSON. Extra metric
// sources that live outside the Observer (a pool's Stats, payload-pool
// gauges) can be folded in by the caller via extra, evaluated per request.
func MetricsHandler(o *Observer, extra func(*Snapshot)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s := o.Snapshot()
		if extra != nil {
			extra(s)
		}
		writeJSON(w, s)
	})
}

// TraceRecentHandler serves the flight recorder's most recent joined trace
// trees, newest first. ?n=K bounds the list (default 16). With tracing
// disabled (no recorder on the observer) it serves an empty list.
func TraceRecentHandler(o *Observer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, nonNilTrees(o.Recorder().Recent(queryN(r, 16))))
	})
}

// TraceSlowHandler serves the trace trees that crossed the recorder's slow
// threshold, newest first. ?n=K bounds the list (default 16).
func TraceSlowHandler(o *Observer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, nonNilTrees(o.Recorder().Slow(queryN(r, 16))))
	})
}

// EventsHandler serves the flight recorder's event journal, newest first.
// ?n=K bounds the list (default 64).
func EventsHandler(o *Observer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		evs := o.Recorder().Events(queryN(r, 64))
		if evs == nil {
			evs = []Event{}
		}
		writeJSON(w, evs)
	})
}

// AdminMux builds the admin endpoint mounted by soapserver/soapproxy:
//
//	GET /metrics       observability snapshot (counters, gauges, stage
//	                   histograms with mean/p50/p95/p99) as JSON
//	GET /trace/recent  the flight recorder's most recent trace trees
//	GET /trace/slow    traces that crossed the slow threshold
//	GET /events        the structured event journal
//
// plus the standard net/http/pprof profiles under /debug/pprof/. The mux is
// private to the admin listener, so pprof is never exposed on the
// SOAP-serving port. The trace endpoints serve empty lists when the
// observer has no recorder attached.
func AdminMux(o *Observer, extra func(*Snapshot)) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(o, extra))
	mux.Handle("/trace/recent", TraceRecentHandler(o))
	mux.Handle("/trace/slow", TraceSlowHandler(o))
	mux.Handle("/events", EventsHandler(o))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func queryN(r *http.Request, def int) int {
	if s := r.URL.Query().Get("n"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func nonNilTrees(ts []*TraceTree) []*TraceTree {
	if ts == nil {
		return []*TraceTree{}
	}
	return ts
}
