package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// MetricsHandler serves the Observer's snapshot as JSON. Extra metric
// sources that live outside the Observer (a pool's Stats, payload-pool
// gauges) can be folded in by the caller via extra, evaluated per request.
func MetricsHandler(o *Observer, extra func(*Snapshot)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s := o.Snapshot()
		if extra != nil {
			extra(s)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s)
	})
}

// AdminMux builds the admin endpoint mounted by soapserver/soapproxy:
// GET /metrics returns the snapshot JSON, and the standard net/http/pprof
// profiles live under /debug/pprof/. The mux is private to the admin
// listener, so pprof is never exposed on the SOAP-serving port.
func AdminMux(o *Observer, extra func(*Snapshot)) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(o, extra))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
