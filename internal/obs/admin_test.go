package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func adminGet(t *testing.T, mux *http.ServeMux, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	return rr
}

func TestAdminMetricsServesDecodableJSON(t *testing.T) {
	o := New()
	o.Inc(CallsStarted)
	o.ObserveStage(ClientWait, 3*time.Millisecond)
	mux := AdminMux(o, nil)

	rr := adminGet(t, mux, "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("undecodable snapshot: %v", err)
	}
	// The histogram serializer augments each stage with derived quantiles.
	body := rr.Body.String()
	for _, want := range []string{`"p50_ns"`, `"p95_ns"`, `"p99_ns"`, `"mean_ns"`, "client.wait"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestAdminMetricsServesTemplateCounters asserts the template-cache
// instrumentation surfaces on /metrics by name: any non-zero counter or
// gauge is auto-included in the snapshot, so the cache needs no dedicated
// endpoint wiring.
func TestAdminMetricsServesTemplateCounters(t *testing.T) {
	o := New()
	o.Inc(TemplateHits)
	o.Add(TemplateMisses, 2)
	o.Inc(TemplateEvictions)
	o.Add(TemplateCompiles, 3)
	o.GaugeAdd(TemplatePlans, 2)
	rr := adminGet(t, AdminMux(o, nil), "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rr.Code)
	}
	var snap struct {
		Counters map[string]uint64        `json:"counters"`
		Gauges   map[string]GaugeSnapshot `json:"gauges"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decode: %v", err)
	}
	for name, want := range map[string]uint64{
		"templates.hits":      1,
		"templates.misses":    2,
		"templates.evictions": 1,
		"templates.compiles":  3,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	if got := snap.Gauges["templates.plans"].Value; got != 2 {
		t.Errorf("gauge templates.plans = %d, want 2", got)
	}
}

// TestAdminMetricsFoldsExtraSources mirrors how soapproxy folds its pool's
// Stats into each served snapshot.
func TestAdminMetricsFoldsExtraSources(t *testing.T) {
	o := New()
	extra := func(s *Snapshot) {
		s.Counters["svcpool.dials"] = 7
		s.Gauges["svcpool.live"] = GaugeSnapshot{Value: 3}
	}
	rr := adminGet(t, AdminMux(o, extra), "/metrics")
	var snap struct {
		Counters map[string]uint64        `json:"counters"`
		Gauges   map[string]GaugeSnapshot `json:"gauges"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if snap.Counters["svcpool.dials"] != 7 {
		t.Errorf("folded counter = %d, want 7", snap.Counters["svcpool.dials"])
	}
	if snap.Gauges["svcpool.live"].Value != 3 {
		t.Errorf("folded gauge = %d, want 3", snap.Gauges["svcpool.live"].Value)
	}
}

func TestAdminPprofRoutesMounted(t *testing.T) {
	mux := AdminMux(New(), nil)
	rr := adminGet(t, mux, "/debug/pprof/cmdline")
	if rr.Code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status = %d", rr.Code)
	}
	rr = adminGet(t, mux, "/debug/pprof/")
	if rr.Code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", rr.Code)
	}
}

func TestAdminTraceEndpointsWithoutRecorder(t *testing.T) {
	mux := AdminMux(New(), nil) // no recorder: endpoints serve empty lists
	for _, path := range []string{"/trace/recent", "/trace/slow", "/events"} {
		rr := adminGet(t, mux, path)
		if rr.Code != http.StatusOK {
			t.Fatalf("%s status = %d", path, rr.Code)
		}
		if got := strings.TrimSpace(rr.Body.String()); got != "[]" {
			t.Errorf("%s body = %q, want empty JSON list", path, got)
		}
	}
}

func TestAdminTraceEndpointsServeRecordedTraces(t *testing.T) {
	rec := NewRecorder(RecorderConfig{SlowThreshold: time.Nanosecond})
	o := fakeClockObs(rec, "node-a", time.Millisecond)
	id := NewTraceID()
	h := o.StartHop(RoleClient)
	h.Bind(TraceContext{ID: id, Seq: 0})
	sp := o.SpanWith(h)
	sp.Mark(ClientSend)
	o.FinishHop(h, nil)
	o.Event(EvRetry, "attempt 2")

	mux := AdminMux(o, nil)
	for _, path := range []string{"/trace/recent", "/trace/slow"} {
		rr := adminGet(t, mux, path)
		var trees []TraceTree
		if err := json.Unmarshal(rr.Body.Bytes(), &trees); err != nil {
			t.Fatalf("%s: decode: %v", path, err)
		}
		if len(trees) != 1 || trees[0].ID != id.String() {
			t.Fatalf("%s = %+v, want the one recorded trace", path, trees)
		}
		if trees[0].Root == nil || trees[0].Root.Node != "node-a" {
			t.Fatalf("%s root = %+v", path, trees[0].Root)
		}
	}
	rr := adminGet(t, mux, "/events?n=1")
	var evs []Event
	if err := json.Unmarshal(rr.Body.Bytes(), &evs); err != nil {
		t.Fatalf("/events: decode: %v", err)
	}
	if len(evs) != 1 || evs[0].Name != "call.retry" || evs[0].Detail != "attempt 2" {
		t.Fatalf("/events = %+v", evs)
	}
}

// The /slo endpoint serves the declared objectives' live state as JSON,
// and an empty (but valid) list when the observer declares none.
func TestAdminSLOEndpoint(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	o := New(
		WithNow(func() time.Time { return now }),
		WithWindow(time.Second),
		WithSLOs(SLO{Op: "data", P99: 10 * time.Millisecond, MaxErrRate: 0.01}),
	)
	o.Now()
	o.RecordOp("data", RoleServer, time.Millisecond, false, 7)
	mux := AdminMux(o, nil)

	rr := adminGet(t, mux, "/slo")
	if rr.Code != http.StatusOK {
		t.Fatalf("/slo status = %d", rr.Code)
	}
	var got []SLOStatus
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatalf("undecodable /slo body: %v", err)
	}
	if len(got) != 1 || got[0].Op != "data" || got[0].P99Target != 10*time.Millisecond {
		t.Fatalf("/slo = %+v, want one entry for op data", got)
	}

	// No SLOs declared: an empty JSON list, not an error.
	rr = adminGet(t, AdminMux(New(), nil), "/slo")
	if rr.Code != http.StatusOK {
		t.Fatalf("/slo (no SLOs) status = %d", rr.Code)
	}
	if strings.TrimSpace(rr.Body.String()) != "[]" {
		t.Fatalf("/slo (no SLOs) body = %q, want []", rr.Body.String())
	}
}

// /metrics?window=N restricts stage histograms and series to the N most
// recent windows and reports the restriction in the snapshot.
func TestAdminMetricsWindowParam(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	o := New(WithNow(func() time.Time { return now }), WithWindow(time.Second))
	o.Now()
	o.ObserveStage(ClientWait, time.Millisecond)
	now = now.Add(time.Second)
	o.Now()
	o.ObserveStage(ClientWait, time.Millisecond)
	mux := AdminMux(o, nil)

	var all, one Snapshot
	if err := json.Unmarshal(adminGet(t, mux, "/metrics").Body.Bytes(), &all); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(adminGet(t, mux, "/metrics?window=1").Body.Bytes(), &one); err != nil {
		t.Fatal(err)
	}
	if got := all.Stages[ClientWait.String()].Count; got != 2 {
		t.Errorf("lifetime count = %d, want 2", got)
	}
	if one.Window != 1 {
		t.Errorf("windowed snapshot Window = %d, want 1", one.Window)
	}
	if got := one.Stages[ClientWait.String()].Count; got != 1 {
		t.Errorf("window=1 count = %d, want 1", got)
	}
}

// /metrics?format=prom emits Prometheus text exposition: counters as
// _total, stage and per-operation histograms with cumulative le-buckets in
// seconds, SLO gauges, and exemplar annotations on buckets that captured a
// trace ID.
func TestAdminMetricsPromFormat(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	o := New(
		WithNow(func() time.Time { return now }),
		WithWindow(time.Second),
		WithDims("bxsa", "tcp"),
		WithSLOs(SLO{Op: "data", P99: 10 * time.Millisecond}),
	)
	o.Now()
	o.Inc(CallsStarted)
	o.ObserveStage(ClientWait, 3*time.Millisecond)
	o.RecordOp("data", RoleServer, 20*time.Millisecond, false, 0xabcd)
	mux := AdminMux(o, nil)

	rr := adminGet(t, mux, "/metrics?format=prom")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain exposition", ct)
	}
	body := rr.Body.String()
	for _, want := range []string{
		"bxsoap_client_calls_started_total 1",
		"# TYPE bxsoap_stage_client_wait histogram",
		`bxsoap_op_latency_bucket{op="data",encoding="bxsa",transport="tcp",role="server",le=`,
		`bxsoap_slo_burn_fast{op="data"}`,
		`bxsoap_slo_firing{op="data"} 0`,
		`trace_id="000000000000abcd"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prom exposition missing %q", want)
		}
	}
	// Cumulative bucket counts must end at the sample count.
	if !strings.Contains(body, "bxsoap_op_latency_count") {
		t.Error("prom exposition missing _count line")
	}
}
