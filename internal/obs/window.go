package obs

// Sliding windows over the fixed-bucket histograms. A lifetime Histogram
// answers "since process start"; production monitoring needs "over the last
// minute" — a p99 that still remembers yesterday's cold start is useless for
// alerting, and the SLO burn-rate engine (slo.go) is defined entirely over
// recent windows. The windowed types here keep both views at once: every
// observation lands in the lifetime aggregate AND in a ring slot addressed
// by a window tick, so the lifetime totals the bench artifacts diff survive
// unchanged while /metrics?window=N and the SLO engine read only recency.
//
// # Ticks, not clocks
//
// None of these types reads a clock. A window tick is an integer the caller
// derives from its own time source — the Observer computes it from its
// injected now function (WithNow) plus a forced-rotation offset
// (NextWindow), so the whole window machinery is deterministic under an
// injected clock, including netsim's simulated time, and the explicit
// -duration recording paths (ObserveStage) stay free of clock reads exactly
// as their contract promises: they reuse the last tick a clocked path
// computed.
//
// # Rotation
//
// Slot i of the ring holds tick t where t % NumWindows == i. A recording
// whose tick has moved past a slot's stamp resets the slot before writing
// (the rotation mutex serializes only that rare reset; the hot path is the
// same two wait-free atomic adds as the plain Histogram). A recorder racing
// the rotation with an already-loaded older tick can misplace one sample by
// one window; windows are statistics, not ledgers, and the lifetime
// aggregate is exact.

import (
	"sync"
	"sync/atomic"
	"time"
)

// NumWindows is the ring size of every windowed aggregate: the last
// NumWindows window ticks are retrievable, older ones have been overwritten.
// With the default 10s window duration (DefaultWindow) the ring spans 80s —
// the SLO engine's "slow" burn window.
const NumWindows = 8

// DefaultWindow is the default window duration an Observer rotates its
// windowed aggregates by (see WithWindow).
const DefaultWindow = 10 * time.Second

// windowSlot is one ring slot: the tick it currently holds plus that
// window's histogram. rotmu serializes resets only; recording is lock-free.
type windowSlot struct {
	tick  atomic.Int64
	rotmu sync.Mutex
	hist  Histogram
}

// advance ensures the slot holds tick, resetting it when the ring has moved
// on. Returns false when tick is older than the slot's current window — the
// straggler's sample belongs to a window that no longer exists, and must
// not contaminate the newer one.
func (s *windowSlot) advance(tick int64) bool {
	cur := s.tick.Load()
	if cur == tick {
		return true
	}
	if cur > tick {
		return false
	}
	s.rotmu.Lock()
	defer s.rotmu.Unlock()
	cur = s.tick.Load()
	if cur == tick {
		return true
	}
	if cur > tick {
		return false
	}
	s.hist.Reset()
	s.tick.Store(tick)
	return true
}

// WindowedHistogram is a lifetime Histogram plus a ring of per-window
// histograms rotated by caller-supplied ticks. The zero value is ready to
// use (all windows hold tick 0). All methods are safe for concurrent use.
type WindowedHistogram struct {
	life  Histogram
	slots [NumWindows]windowSlot
}

// Observe records d into the lifetime aggregate and into the window
// addressed by tick. Negative ticks are clamped to 0 (the zero ring).
// No-op on a nil WindowedHistogram.
func (w *WindowedHistogram) Observe(d time.Duration, tick int64) {
	if w == nil {
		return
	}
	w.life.Observe(d)
	if tick < 0 {
		tick = 0
	}
	s := &w.slots[tick%NumWindows]
	if s.advance(tick) {
		s.hist.Observe(d)
	}
}

// Lifetime snapshots the all-time aggregate (zero on a nil receiver).
func (w *WindowedHistogram) Lifetime() HistogramSnapshot {
	if w == nil {
		return HistogramSnapshot{}
	}
	return w.life.Snapshot()
}

// Window merges the n most recent windows ending at tick (the current
// window included): ticks (tick-n, tick]. n is clamped to [1, NumWindows].
// Zero on a nil receiver.
func (w *WindowedHistogram) Window(tick int64, n int) HistogramSnapshot {
	if w == nil {
		return HistogramSnapshot{}
	}
	if n < 1 {
		n = 1
	}
	if n > NumWindows {
		n = NumWindows
	}
	var out HistogramSnapshot
	for t := tick - int64(n) + 1; t <= tick; t++ {
		if t < 0 {
			continue
		}
		s := &w.slots[t%NumWindows]
		if s.tick.Load() == t {
			out.Merge(s.hist.Snapshot())
		}
	}
	return out
}

// Reset zeroes the lifetime aggregate and every window. Like
// Histogram.Reset it is meant for quiescent moments. No-op on a nil
// receiver.
func (w *WindowedHistogram) Reset() {
	if w == nil {
		return
	}
	w.life.Reset()
	for i := range w.slots {
		s := &w.slots[i]
		s.rotmu.Lock()
		s.hist.Reset()
		s.tick.Store(0)
		s.rotmu.Unlock()
	}
}

// counterSlot is one ring slot of a WindowedCounter.
type counterSlot struct {
	tick  atomic.Int64
	rotmu sync.Mutex
	n     atomic.Uint64
}

func (s *counterSlot) advance(tick int64) bool {
	cur := s.tick.Load()
	if cur == tick {
		return true
	}
	if cur > tick {
		return false
	}
	s.rotmu.Lock()
	defer s.rotmu.Unlock()
	cur = s.tick.Load()
	if cur == tick {
		return true
	}
	if cur > tick {
		return false
	}
	s.n.Store(0)
	s.tick.Store(tick)
	return true
}

// WindowedCounter is a lifetime counter plus a ring of per-window counts,
// rotated by the same caller-supplied ticks as WindowedHistogram. The zero
// value is ready to use.
type WindowedCounter struct {
	life  Counter
	slots [NumWindows]counterSlot
}

// Add adds n under tick. No-op on a nil WindowedCounter.
func (w *WindowedCounter) Add(n uint64, tick int64) {
	if w == nil {
		return
	}
	w.life.Add(n)
	if tick < 0 {
		tick = 0
	}
	s := &w.slots[tick%NumWindows]
	if s.advance(tick) {
		s.n.Add(n)
	}
}

// Lifetime returns the all-time total (0 on a nil receiver).
func (w *WindowedCounter) Lifetime() uint64 {
	if w == nil {
		return 0
	}
	return w.life.Load()
}

// Window sums the n most recent windows ending at tick: ticks (tick-n,
// tick]. n is clamped to [1, NumWindows]. Zero on a nil receiver.
func (w *WindowedCounter) Window(tick int64, n int) uint64 {
	if w == nil {
		return 0
	}
	if n < 1 {
		n = 1
	}
	if n > NumWindows {
		n = NumWindows
	}
	var out uint64
	for t := tick - int64(n) + 1; t <= tick; t++ {
		if t < 0 {
			continue
		}
		s := &w.slots[t%NumWindows]
		if s.tick.Load() == t {
			out += s.n.Load()
		}
	}
	return out
}

// Reset zeroes the lifetime total and every window. No-op on a nil
// receiver.
func (w *WindowedCounter) Reset() {
	if w == nil {
		return
	}
	w.life.Reset()
	for i := range w.slots {
		s := &w.slots[i]
		s.rotmu.Lock()
		s.n.Store(0)
		s.tick.Store(0)
		s.rotmu.Unlock()
	}
}
