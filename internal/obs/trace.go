package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"time"
)

// Per-request distributed tracing. The histograms in this package answer
// "where does time go in aggregate"; the types here answer "where did THIS
// request's time go, across every node it crossed". A TraceContext rides
// the wire as a SOAP header block (see internal/tracehdr), each engine or
// server that handles the message records its stage spans into a Hop, and
// finished hops land in the Recorder's flight rings where they are joined
// back into one trace tree by trace ID.
//
// The nil-sink contract extends to this layer: instrumented code holds a
// possibly-nil *Hop and calls it unconditionally; every method is nil-safe.
// Tracing is enabled by attaching a Recorder to an Observer (WithRecorder);
// with no recorder, StartHop returns nil and the request path does not
// allocate or read a clock beyond what the plain span plumbing already does.

// TraceID identifies one request path end to end. It is generated once at
// the originating client and carried unchanged across every hop.
type TraceID uint64

// NewTraceID draws a random trace ID.
func NewTraceID() TraceID {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("obs: entropy unavailable: %v", err))
	}
	id := TraceID(binary.BigEndian.Uint64(b[:]))
	if id == 0 {
		id = 1 // 0 is the "no trace" sentinel
	}
	return id
}

// String renders the ID as 16 lowercase hex digits — the wire form carried
// in the trace header block.
func (id TraceID) String() string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(id))
	return hex.EncodeToString(b[:])
}

// ParseTraceID parses the 16-hex-digit wire form.
func ParseTraceID(s string) (TraceID, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("obs: trace id %q: want 16 hex digits", s)
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return 0, fmt.Errorf("obs: trace id %q: %v", s, err)
	}
	return TraceID(binary.BigEndian.Uint64(b)), nil
}

// TraceContext is the wire-propagated trace state: the trace ID plus the
// sequence number of the hop it addresses. The request path is a chain, so
// one integer fully places a hop in the tree:
//
//	seq 0  originating client (engine or svcpool)
//	seq 1  first server (a terminal server, or an intermediary's up-link)
//	seq 2  the intermediary's down-link client
//	seq 3  the backend server
//	...
//
// A client hop that finds a context already on the outgoing request (the
// intermediary relay case) takes found.Seq+1 as its own sequence and sends
// its successor downstream; a server hop adopts the received Seq verbatim.
type TraceContext struct {
	ID  TraceID
	Seq int
}

// Next returns the context addressed to the hop after this one.
func (tc TraceContext) Next() TraceContext {
	return TraceContext{ID: tc.ID, Seq: tc.Seq + 1}
}

// Hop roles.
const (
	RoleClient = "client"
	RoleServer = "server"
)

// StageSpan is one recorded stage interval of a hop, in recording order.
type StageSpan struct {
	Stage Stage         `json:"-"`
	Name  string        `json:"stage"`
	Dur   time.Duration `json:"dur_ns"`
}

// Hop is one node's view of one request: the stage spans it recorded while
// the message was in its hands, placed on the path by its trace context. A
// Hop is built single-threaded on the request goroutine (StartHop → span
// marks → FinishHop) and becomes shared — and immutable — only when
// FinishHop hands it to the Recorder.
//
// All methods are nil-safe: the request path holds a nil *Hop when tracing
// is off and calls it unconditionally.
type Hop struct {
	tc     TraceContext
	bound  bool // tc carries a real wire context (vs. pending/self-rooted)
	node   string
	role   string
	start  time.Time
	stages []StageSpan
	total  time.Duration
	errmsg string
}

// Bind attaches the wire trace context to an in-progress hop. Server hops
// call it after decoding the request (the context lives in the envelope, so
// it is unknown while receive/decode are being timed); an unbound hop gets
// a fresh self-rooted context at finish time.
func (h *Hop) Bind(tc TraceContext) {
	if h == nil {
		return
	}
	h.tc = tc
	h.bound = true
}

// Context returns the hop's trace context (zero on a nil Hop).
func (h *Hop) Context() TraceContext {
	if h == nil {
		return TraceContext{}
	}
	return h.tc
}

// SetError records the error the hop's exchange ended with. No-op on a nil
// Hop or a nil error.
func (h *Hop) SetError(err error) {
	if h == nil || err == nil {
		return
	}
	h.errmsg = err.Error()
}

// observe appends one stage interval; called by Span.Mark on the recording
// goroutine.
func (h *Hop) observe(st Stage, d time.Duration) {
	if h == nil {
		return
	}
	h.stages = append(h.stages, StageSpan{Stage: st, Name: st.String(), Dur: d})
}

// StageDur sums the hop's recorded intervals for one stage (retried stages
// appear once per attempt).
func (h *Hop) StageDur(st Stage) time.Duration {
	if h == nil {
		return 0
	}
	var d time.Duration
	for _, s := range h.stages {
		if s.Stage == st {
			d += s.Dur
		}
	}
	return d
}

// Tracing reports whether the observer has a flight recorder attached —
// i.e. whether starting hops is worthwhile. False on a nil Observer.
func (o *Observer) Tracing() bool {
	return o != nil && o.rec != nil
}

// Recorder returns the observer's flight recorder (nil when tracing is
// disabled or the Observer is nil).
func (o *Observer) Recorder() *Recorder {
	if o == nil {
		return nil
	}
	return o.rec
}

// Node returns the observer's node label ("" on a nil Observer).
func (o *Observer) Node() string {
	if o == nil {
		return ""
	}
	return o.node
}

// StartHop begins a hop record for one request handled by this node in the
// given role. Returns nil — and performs no work — when the Observer is nil
// or has no Recorder, so the request path may call it unconditionally.
// Client hops usually bind their context immediately; server hops Bind
// after decode.
func (o *Observer) StartHop(role string) *Hop {
	if o == nil || o.rec == nil {
		return nil
	}
	now := o.now()
	o.tickAt(now)
	return &Hop{
		node:   o.node,
		role:   role,
		start:  now,
		stages: make([]StageSpan, 0, 8),
	}
}

// FinishHop completes a hop — stamping its total duration and error — and
// submits it to the recorder. An unbound hop (no wire context arrived) is
// self-rooted under a fresh trace ID so server-side recorders still journal
// requests from trace-unaware clients. No-op when the hop or Observer is
// nil.
func (o *Observer) FinishHop(h *Hop, err error) {
	if o == nil || h == nil || o.rec == nil {
		return
	}
	if !h.bound || h.tc.ID == 0 {
		h.tc = TraceContext{ID: NewTraceID(), Seq: 0}
	}
	h.total = o.now().Sub(h.start)
	h.SetError(err)
	o.rec.record(h)
}

// Event journals a structured flight-recorder event (breaker transition,
// connection retirement, payload poisoning, ...) stamped with the
// observer's clock and node label. No-op when the Observer is nil or has no
// Recorder — callers on error/transition paths may call it unconditionally,
// but should not format detail strings the disabled path would discard;
// pass precomputed or constant strings.
func (o *Observer) Event(kind EventKind, detail string) {
	if o == nil || o.rec == nil {
		return
	}
	o.rec.addEvent(Event{At: o.now(), Node: o.node, Kind: kind, Name: kind.String(), Detail: detail})
}

// eventWithTrace journals an event carrying a trace exemplar (the SLO
// fire/resolve path). Unlike Event it stamps the journal entry with the
// trace ID of a request that exhibits the condition, so the event links
// into the flight recorder's rings.
func (o *Observer) eventWithTrace(kind EventKind, detail string, tid TraceID) {
	if o == nil || o.rec == nil {
		// No recorder: the transition still counted via the SLOFired /
		// SLOResolved counters; there is just no journal to write to.
		return
	}
	ev := Event{At: o.now(), Node: o.node, Kind: kind, Name: kind.String(), Detail: detail}
	if tid != 0 {
		ev.Trace = tid.String()
	}
	o.rec.addEvent(ev)
}
