package obs

import (
	"encoding/json"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every latency histogram. The
// buckets are log-spaced powers of two over a 1µs base: bucket 0 holds
// observations below 1µs, bucket i (0 < i < NumBuckets-1) holds
// [1µs·2^(i-1), 1µs·2^i), and the last bucket is open-ended. That spans
// sub-microsecond encode steps to multi-minute stalls in 32 fixed slots, so a
// histogram is a flat atomic array — no locks, no dynamic growth, and
// snapshots from any two histograms merge bucket-by-bucket.
const NumBuckets = 32

// bucketBase is the width of bucket 1 and the scale of the whole grid.
const bucketBase = time.Microsecond

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	if d < bucketBase {
		return 0
	}
	i := bits.Len64(uint64(d / bucketBase))
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// BucketUpperBound returns the exclusive upper bound of bucket i; the last
// bucket is open-ended and reports a negative duration.
func BucketUpperBound(i int) time.Duration {
	if i >= NumBuckets-1 {
		return -1
	}
	return bucketBase << i
}

// Histogram is a fixed-bucket, log-spaced latency histogram. All methods
// are safe for concurrent use; Observe is wait-free (two atomic adds).
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	sum    atomic.Int64 // total observed nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketFor(d)].Add(1)
	h.sum.Add(int64(d))
}

// Reset zeroes every bucket and the sum. Like Observer.Reset it is meant
// for quiescent moments and is not atomic against concurrent Observe calls.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.Store(0)
}

// Snapshot captures the histogram's current state. Count is derived from
// the bucket array, so a snapshot is always internally consistent: its
// Count equals the sum of its Buckets even when writers race the read.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Buckets[i] = c
		s.Count += c
	}
	s.SumNanos = h.sum.Load()
	return s
}

// HistogramSnapshot is the exported, mergeable state of a Histogram.
type HistogramSnapshot struct {
	Count    uint64             `json:"count"`
	SumNanos int64              `json:"sum_ns"`
	Buckets  [NumBuckets]uint64 `json:"buckets"`
}

// MarshalJSON augments the raw snapshot with derived mean/p50/p95/p99
// fields so JSON consumers (the /metrics endpoint, CI artifacts) get
// quantiles without reimplementing the bucket math. The derived fields are
// computed at marshal time from the buckets; UnmarshalJSON (the default,
// field-by-field) ignores them, so snapshots still round-trip and merge on
// the raw state alone.
func (s HistogramSnapshot) MarshalJSON() ([]byte, error) {
	type raw HistogramSnapshot // drops the method, avoiding recursion
	return json.Marshal(struct {
		raw
		MeanNanos int64 `json:"mean_ns"`
		P50Nanos  int64 `json:"p50_ns"`
		P95Nanos  int64 `json:"p95_ns"`
		P99Nanos  int64 `json:"p99_ns"`
	}{
		raw:       raw(s),
		MeanNanos: int64(s.Mean()),
		P50Nanos:  int64(s.Quantile(0.50)),
		P95Nanos:  int64(s.Quantile(0.95)),
		P99Nanos:  int64(s.Quantile(0.99)),
	})
}

// Merge adds other's observations into s.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
	s.Count += other.Count
	s.SumNanos += other.SumNanos
}

// Mean returns the average observed duration (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(uint64(s.SumNanos) / s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) as the upper bound of the
// bucket containing it — a conservative (over-)estimate with the grid's
// factor-of-two resolution. Returns 0 when empty; an estimate landing in
// the open-ended last bucket reports that bucket's lower bound.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen uint64
	for i, c := range s.Buckets {
		seen += c
		if seen > rank {
			if ub := BucketUpperBound(i); ub >= 0 {
				return ub
			}
			return bucketBase << (NumBuckets - 2)
		}
	}
	return 0
}
