package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// Windowed histograms: samples land in the window their tick addresses,
// merges cover exactly the requested ticks, and lifetime totals survive
// rotation.
func TestWindowedHistogramRotationAndMerge(t *testing.T) {
	var w WindowedHistogram
	w.Observe(time.Millisecond, 10)
	w.Observe(time.Millisecond, 10)
	w.Observe(2*time.Millisecond, 11)
	w.Observe(4*time.Millisecond, 12)

	if got := w.Window(10, 1).Count; got != 2 {
		t.Errorf("window(10,1) count = %d, want 2", got)
	}
	if got := w.Window(12, 1).Count; got != 1 {
		t.Errorf("window(12,1) count = %d, want 1", got)
	}
	if got := w.Window(12, 3).Count; got != 4 {
		t.Errorf("window(12,3) count = %d, want 4 (ticks 10..12)", got)
	}
	if got := w.Window(12, 2).Count; got != 2 {
		t.Errorf("window(12,2) count = %d, want 2 (ticks 11..12)", got)
	}
	if got := w.Lifetime().Count; got != 4 {
		t.Errorf("lifetime count = %d, want 4", got)
	}

	// Rotation reuses ring slots: tick 18 lands in slot 18%8 = 2, evicting
	// tick 10's histogram but not its lifetime contribution.
	w.Observe(8*time.Millisecond, 18)
	if got := w.Window(18, 1).Count; got != 1 {
		t.Errorf("window(18,1) count = %d, want 1", got)
	}
	if got := w.Window(18, NumWindows).Count; got != 3 {
		t.Errorf("window(18,8) count = %d, want 3 (ticks 11, 12, 18)", got)
	}
	if got := w.Lifetime().Count; got != 5 {
		t.Errorf("lifetime count = %d, want 5", got)
	}
}

// A straggler carrying an old tick whose ring slot has already rotated to
// a newer window must be dropped from the window (never contaminating the
// newer one) while still counting toward lifetime.
func TestWindowedHistogramStaleTickDropped(t *testing.T) {
	var w WindowedHistogram
	w.Observe(time.Millisecond, 10) // slot 2
	w.Observe(time.Millisecond, 2)  // same slot, stale tick: dropped
	if got := w.Window(10, 1).Count; got != 1 {
		t.Errorf("window(10,1) count = %d, want 1 (stale tick leaked in)", got)
	}
	if got := w.Window(2, 1).Count; got != 0 {
		t.Errorf("window(2,1) count = %d, want 0 (slot belongs to tick 10)", got)
	}
	if got := w.Lifetime().Count; got != 2 {
		t.Errorf("lifetime count = %d, want 2", got)
	}
}

func TestWindowedCounterRotationAndMerge(t *testing.T) {
	var w WindowedCounter
	w.Add(3, 20)
	w.Add(4, 21)
	w.Add(5, 13) // stale: slot 13%8 == 21%8
	if got := w.Window(21, 1); got != 4 {
		t.Errorf("window(21,1) = %d, want 4", got)
	}
	if got := w.Window(21, 2); got != 7 {
		t.Errorf("window(21,2) = %d, want 7", got)
	}
	if got := w.Lifetime(); got != 12 {
		t.Errorf("lifetime = %d, want 12", got)
	}
}

// Observer windows rotate deterministically under an injected clock: the
// tick is derived from the fake time, so advancing the clock by the window
// duration moves subsequent stage samples into a fresh window.
func TestObserverWindowRotationOnInjectedClock(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	o := New(WithNow(func() time.Time { return now }), WithWindow(time.Second))

	o.Now() // refresh the cached tick from the fake clock
	o.ObserveStage(ClientWait, time.Millisecond)
	o.ObserveStage(ClientWait, time.Millisecond)

	now = now.Add(time.Second)
	o.Now()
	o.ObserveStage(ClientWait, 4*time.Millisecond)

	if got := o.StageWindowSnapshot(ClientWait, 1).Count; got != 1 {
		t.Errorf("current window count = %d, want 1", got)
	}
	if got := o.StageWindowSnapshot(ClientWait, 2).Count; got != 3 {
		t.Errorf("two-window merge count = %d, want 3", got)
	}
	if got := o.StageSnapshot(ClientWait).Count; got != 3 {
		t.Errorf("lifetime count = %d, want 3", got)
	}

	// SnapshotWindow reflects the same restriction; the lifetime Snapshot
	// does not.
	if got := o.SnapshotWindow(1).Stages[ClientWait.String()].Count; got != 1 {
		t.Errorf("SnapshotWindow(1) count = %d, want 1", got)
	}
	if got := o.Snapshot().Stages[ClientWait.String()].Count; got != 3 {
		t.Errorf("Snapshot() count = %d, want 3", got)
	}
}

// NextWindow is the harness's warm-up fence: samples recorded before the
// forced rotation stay out of the new window even though no clock time
// passed.
func TestNextWindowExcludesEarlierSamples(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	o := New(WithNow(func() time.Time { return now }), WithWindow(time.Hour))
	o.Now()
	o.ObserveStage(ClientWait, time.Millisecond) // warm-up
	o.NextWindow()
	o.ObserveStage(ClientWait, 2*time.Millisecond)
	o.ObserveStage(ClientWait, 2*time.Millisecond)
	if got := o.StageWindowSnapshot(ClientWait, 1).Count; got != 2 {
		t.Errorf("post-rotation window count = %d, want 2", got)
	}
	if got := o.StageSnapshot(ClientWait).Count; got != 3 {
		t.Errorf("lifetime count = %d, want 3", got)
	}
}

// The dimensional registry refuses to mint series past its limit: excess
// keys share the overflow series and the SeriesOverflow counter counts the
// redirected samples — the cardinality-attack backstop.
func TestRegistryCardinalityOverflow(t *testing.T) {
	o := New(WithDims("bxsa", "tcp"), WithSeriesLimit(2))
	o.RecordOp("alpha", RoleServer, time.Millisecond, false, 0)
	o.RecordOp("beta", RoleServer, time.Millisecond, false, 0)
	for i := 0; i < 3; i++ {
		o.RecordOp("hostile-"+strings.Repeat("x", i+1), RoleServer, time.Millisecond, true, 0)
	}

	reg := o.Registry()
	if got := reg.Len(); got != 2 {
		t.Errorf("registry len = %d, want 2", got)
	}
	if got := reg.Dropped(); got != 3 {
		t.Errorf("dropped = %d, want 3", got)
	}
	if got := o.Counter(SeriesOverflow); got != 3 {
		t.Errorf("SeriesOverflow counter = %d, want 3", got)
	}
	if got := reg.Overflow().Latency().Lifetime().Count; got != 3 {
		t.Errorf("overflow series count = %d, want 3", got)
	}

	// The snapshot exports the two real series plus the overflow series,
	// in deterministic key order.
	s := o.Snapshot()
	var ops []string
	for _, ss := range s.Series {
		ops = append(ops, ss.Key.Op)
	}
	want := []string{"alpha", "beta", OverflowOp}
	if len(ops) != len(want) {
		t.Fatalf("snapshot series = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("snapshot series = %v, want %v", ops, want)
		}
	}
}

// Exemplars under concurrent recording: the tail bucket ends up holding
// one of the trace IDs actually recorded into it, with no torn reads under
// -race.
func TestExemplarCaptureConcurrent(t *testing.T) {
	o := New(WithDims("bxsa", "tcp"))
	const goroutines = 8
	const perG = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tid := TraceID(uint64(g)<<32 | uint64(i) | 1)
				o.RecordOp("op", RoleClient, 50*time.Millisecond, false, tid)
			}
		}(g)
	}
	wg.Wait()

	s := o.Registry().Lookup(SeriesKey{Op: "op", Encoding: "bxsa", Transport: "tcp", Role: RoleClient})
	if s == nil {
		t.Fatal("series not found")
	}
	got := s.TailExemplar(50 * time.Millisecond)
	if got == 0 {
		t.Fatal("no exemplar captured")
	}
	if g := uint64(got) >> 32; g >= goroutines {
		t.Errorf("exemplar %x not among recorded IDs", uint64(got))
	}
	if i := uint64(got) & 0xffffffff; (i &^ 1) >= perG {
		t.Errorf("exemplar %x not among recorded IDs", uint64(got))
	}
}

// The SLO engine's full lifecycle on an injected clock: quiet while
// healthy, fires after one complete overloaded window (both evaluation
// windows agreeing), carries the offending trace ID on the fired event,
// and resolves after one clean window.
func TestSLOFireAndResolveDeterministic(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	rec := NewRecorder(RecorderConfig{})
	o := New(
		WithNow(func() time.Time { return now }),
		WithWindow(time.Second),
		WithRecorder(rec),
		WithSLOs(SLO{Op: "op", P99: 10 * time.Millisecond}),
	)
	tick := func() { now = now.Add(time.Second); o.Now() }
	record := func(d time.Duration, tid TraceID) {
		o.RecordOp("op", RoleServer, d, false, tid)
	}

	o.Now()
	// Three healthy windows.
	for w := 0; w < 3; w++ {
		for i := 0; i < 10; i++ {
			record(time.Millisecond, TraceID(100+uint64(i)))
		}
		tick()
	}
	record(time.Millisecond, 1) // evaluates the last healthy window
	if o.SLOFiring() {
		t.Fatal("firing after healthy traffic")
	}

	// One fully overloaded window.
	for i := 0; i < 10; i++ {
		record(100*time.Millisecond, TraceID(0xbad0+uint64(i)))
	}
	tick()
	record(time.Millisecond, 2) // first sample of the next window evaluates it
	if !o.SLOFiring() {
		t.Fatal("not firing after an overloaded window")
	}

	// One clean window resolves.
	for i := 0; i < 9; i++ {
		record(time.Millisecond, 3)
	}
	tick()
	record(time.Millisecond, 4)
	if o.SLOFiring() {
		t.Fatal("still firing after a clean window")
	}

	events := rec.Events(0)
	var fired, resolved *Event
	for i := range events {
		switch events[i].Kind {
		case EvSLOFired:
			fired = &events[i]
		case EvSLOResolved:
			resolved = &events[i]
		}
	}
	if fired == nil || resolved == nil {
		t.Fatalf("journal missing lifecycle events: fired=%v resolved=%v", fired, resolved)
	}
	if fired.Trace == "" {
		t.Fatal("fired event carries no exemplar trace ID")
	}
	tid, err := ParseTraceID(fired.Trace)
	if err != nil {
		t.Fatalf("fired exemplar %q: %v", fired.Trace, err)
	}
	if tid < 0xbad0 || tid >= 0xbad0+10 {
		t.Errorf("exemplar %x is not one of the overloaded requests", uint64(tid))
	}
	if o.Counter(SLOFired) != 1 || o.Counter(SLOResolved) != 1 {
		t.Errorf("counters fired=%d resolved=%d, want 1 and 1",
			o.Counter(SLOFired), o.Counter(SLOResolved))
	}

	// Status reflects the resolved steady state.
	st := o.SLOStatus()
	if len(st) != 1 || st[0].Op != "op" || st[0].Firing {
		t.Errorf("SLOStatus = %+v, want one resolved entry for op", st)
	}
	if st[0].BudgetUsed == 0 {
		t.Error("BudgetUsed = 0, want > 0 after an overload")
	}
}

// An error-rate-only SLO (no latency target) burns on failures alone:
// slow-but-successful traffic must not trip it.
func TestSLOErrorRateOnly(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	o := New(
		WithNow(func() time.Time { return now }),
		WithWindow(time.Second),
		WithSLOs(SLO{Op: "op", MaxErrRate: 0.05}),
	)
	o.Now()
	// Slow but successful: no latency objective, so nothing burns.
	for i := 0; i < 10; i++ {
		o.RecordOp("op", RoleServer, time.Minute, false, 0)
	}
	now = now.Add(time.Second)
	o.Now()
	o.RecordOp("op", RoleServer, time.Minute, false, 0)
	if o.SLOFiring() {
		t.Fatal("error-only SLO fired on slow successes")
	}

	// All-failing traffic burns at 1/0.05 = 20x and fires.
	for i := 0; i < 9; i++ {
		o.RecordOp("op", RoleServer, time.Millisecond, true, 0)
	}
	now = now.Add(time.Second)
	o.Now()
	o.RecordOp("op", RoleServer, time.Millisecond, false, 0)
	if !o.SLOFiring() {
		t.Fatal("error-only SLO did not fire on failing traffic")
	}
}

// Declaring an SLO tightens the shared recorder's slow-trace threshold to
// the objective's p99, so breaching requests are guaranteed to land in the
// slow ring; SetSlowThreshold(0) restores the construction-time value.
func TestSLOTightensRecorderSlowThreshold(t *testing.T) {
	rec := NewRecorder(RecorderConfig{SlowThreshold: 50 * time.Millisecond})
	New(WithRecorder(rec), WithSLOs(SLO{Op: "op", P99: 10 * time.Millisecond}))
	if got := rec.SlowThreshold(); got != 10*time.Millisecond {
		t.Errorf("slow threshold = %v, want 10ms (tightened to SLO p99)", got)
	}
	// Tighten never loosens.
	rec.TightenSlowThreshold(30 * time.Millisecond)
	if got := rec.SlowThreshold(); got != 10*time.Millisecond {
		t.Errorf("slow threshold = %v after looser tighten, want 10ms", got)
	}
	rec.SetSlowThreshold(0)
	if got := rec.SlowThreshold(); got != 50*time.Millisecond {
		t.Errorf("slow threshold = %v after reset, want config's 50ms", got)
	}
	// A disabled ring stays disabled through tightening.
	rec.SetSlowThreshold(-1)
	rec.TightenSlowThreshold(time.Millisecond)
	if got := rec.SlowThreshold(); got >= 0 {
		t.Errorf("slow threshold = %v, want negative (disabled)", got)
	}
}
