package obs

// The dimensional metric registry: labeled latency/error series keyed by
// (operation, encoding, transport, peer role). The fixed counter/gauge/stage
// arrays answer "how is this process doing"; a JClarens-style service — one
// operation set, thousands of heterogeneous clients — needs "which
// operation, on which encoding, over which transport, is burning the
// budget", and that is inherently a keyed lookup.
//
// The registry keeps the keyed lookup off the hot path's lock by mirroring
// core's planCache copy-on-write idiom: readers load an immutable map
// snapshot through an atomic pointer and index it lock-free; inserting a
// never-seen key clones the map under a mutex and publishes the copy.
// Series churn is bounded by construction — the label set is (operations ×
// encodings × transports × 2 roles), all small — so clones are rare after
// warm-up.
//
// Cardinality is a denial-of-service surface: operation names come from
// peer-controlled envelopes, and a hostile client cycling random operation
// names must not grow the map without bound. Past the series limit
// (WithSeriesLimit) every new key lands in one shared, explicitly labeled
// overflow series (OverflowOp) and bumps the SeriesOverflow counter:
// dashboards degrade to an honest "other" bucket instead of the process
// OOMing.
//
// Each series also captures exemplars — the last TraceID observed per
// latency bucket — so a tail spike on /metrics links directly to a recorded
// trace in the flight recorder (see recorder.go). Storing the most recent
// ID per bucket is deliberately simple: one atomic store, no sampling
// state, and the tail buckets are exactly where a fresh outlier's ID
// survives because healthy traffic never lands there.

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// OverflowOp is the operation label of the shared overflow series that
// absorbs recordings past the registry's series limit.
const OverflowOp = "__overflow__"

// DefaultSeriesLimit bounds the number of distinct series a registry will
// materialize before routing new keys to the overflow series.
const DefaultSeriesLimit = 128

// SeriesKey identifies one dimensional series.
type SeriesKey struct {
	Op        string `json:"op"`
	Encoding  string `json:"encoding,omitempty"`
	Transport string `json:"transport,omitempty"`
	Role      string `json:"role,omitempty"` // RoleClient or RoleServer
}

// Series is one labeled latency/error series: a windowed latency histogram,
// a windowed error counter, and per-bucket trace exemplars. All methods are
// safe for concurrent use and nil-receiver safe.
type Series struct {
	key  SeriesKey
	lat  WindowedHistogram
	errs WindowedCounter

	// exemplars[i] holds the TraceID of the most recent traced sample that
	// landed in latency bucket i (0 = none yet).
	exemplars [NumBuckets]atomic.Uint64
}

// Key returns the series' labels (zero on a nil receiver).
func (s *Series) Key() SeriesKey {
	if s == nil {
		return SeriesKey{}
	}
	return s.key
}

// Record adds one sample: latency d under window tick, the error count when
// failed, and — when tid is nonzero — the trace exemplar for d's bucket.
// No-op on a nil receiver.
func (s *Series) Record(d time.Duration, failed bool, tick int64, tid TraceID) {
	if s == nil {
		return
	}
	s.lat.Observe(d, tick)
	if failed {
		s.errs.Add(1, tick)
	}
	if tid != 0 {
		s.exemplars[bucketFor(d)].Store(uint64(tid))
	}
}

// Latency returns the series' windowed latency histogram (nil on a nil
// receiver — and a nil *WindowedHistogram is itself a no-op sink).
func (s *Series) Latency() *WindowedHistogram {
	if s == nil {
		return nil
	}
	return &s.lat
}

// Errors returns the series' windowed error counter (nil on a nil
// receiver).
func (s *Series) Errors() *WindowedCounter {
	if s == nil {
		return nil
	}
	return &s.errs
}

// Exemplar returns the TraceID most recently captured for latency bucket i
// (0 when none, out of range, or nil receiver).
func (s *Series) Exemplar(i int) TraceID {
	if s == nil || i < 0 || i >= NumBuckets {
		return 0
	}
	return TraceID(s.exemplars[i].Load())
}

// TailExemplar returns the captured TraceID from the highest-latency bucket
// at or above the bucket containing d — the trace to look at when the tail
// beyond d regresses. 0 when no such exemplar exists or on a nil receiver.
func (s *Series) TailExemplar(d time.Duration) TraceID {
	if s == nil {
		return 0
	}
	for i := NumBuckets - 1; i >= bucketFor(d); i-- {
		if id := s.exemplars[i].Load(); id != 0 {
			return TraceID(id)
		}
	}
	return 0
}

// SeriesSnapshot is the exported, JSON-serializable state of one series
// over a chosen window span plus its lifetime aggregate.
type SeriesSnapshot struct {
	Key       SeriesKey         `json:"key"`
	Latency   HistogramSnapshot `json:"latency"`
	Errors    uint64            `json:"errors"`
	Lifetime  HistogramSnapshot `json:"lifetime"`
	LifeErrs  uint64            `json:"lifetime_errors"`
	Exemplars map[int]string    `json:"exemplars,omitempty"` // bucket index -> TraceID hex
}

// Snapshot exports the series: Latency/Errors over the n windows ending at
// tick, Lifetime/LifeErrs since creation, and every captured exemplar.
func (s *Series) Snapshot(tick int64, n int) SeriesSnapshot {
	if s == nil {
		return SeriesSnapshot{}
	}
	out := SeriesSnapshot{
		Key:      s.key,
		Latency:  s.lat.Window(tick, n),
		Errors:   s.errs.Window(tick, n),
		Lifetime: s.lat.Lifetime(),
		LifeErrs: s.errs.Lifetime(),
	}
	for i := 0; i < NumBuckets; i++ {
		if id := s.exemplars[i].Load(); id != 0 {
			if out.Exemplars == nil {
				out.Exemplars = make(map[int]string)
			}
			out.Exemplars[i] = TraceID(id).String()
		}
	}
	return out
}

// Registry holds the dimensional series map: copy-on-write reads, bounded
// inserts, one overflow series past the limit. The zero value is unusable;
// construct with newRegistry (Observers build one when WithDims or
// WithSLOs is configured). All methods are nil-receiver safe, so an
// Observer without dimensional metrics carries a nil *Registry and every
// recording through it is a no-op.
type Registry struct {
	limit    int
	series   atomic.Pointer[map[SeriesKey]*Series]
	mu       sync.Mutex // serializes inserts; reads never take it
	overflow Series
	dropped  Counter // keyed recordings routed to the overflow series
}

func newRegistry(limit int) *Registry {
	if limit <= 0 {
		limit = DefaultSeriesLimit
	}
	r := &Registry{limit: limit}
	r.overflow.key = SeriesKey{Op: OverflowOp}
	m := make(map[SeriesKey]*Series)
	r.series.Store(&m)
	return r
}

// Lookup returns the series for key, materializing it if the registry has
// room. Past the series limit it returns the shared overflow series. Nil on
// a nil receiver.
func (r *Registry) Lookup(key SeriesKey) *Series {
	if r == nil {
		return nil
	}
	if s, ok := (*r.series.Load())[key]; ok {
		return s
	}
	return r.insert(key)
}

// insert is the slow path: clone-and-publish under the mutex, or route to
// the overflow series when the map is full.
func (r *Registry) insert(key SeriesKey) *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := *r.series.Load()
	if s, ok := cur[key]; ok { // lost the race to another inserter
		return s
	}
	if len(cur) >= r.limit {
		r.dropped.Inc()
		return &r.overflow
	}
	next := make(map[SeriesKey]*Series, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	s := &Series{key: key}
	next[key] = s
	r.series.Store(&next)
	return s
}

// Overflow returns the shared overflow series (nil on a nil receiver).
func (r *Registry) Overflow() *Series {
	if r == nil {
		return nil
	}
	return &r.overflow
}

// Dropped returns how many recordings were routed to the overflow series
// because the registry was full (0 on a nil receiver).
func (r *Registry) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// Len returns the number of materialized series, the overflow series
// excluded (0 on a nil receiver).
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(*r.series.Load())
}

// Each calls fn for every materialized series plus — when it has samples —
// the overflow series, in deterministic key order. No-op on a nil receiver.
func (r *Registry) Each(fn func(*Series)) {
	if r == nil {
		return
	}
	cur := *r.series.Load()
	keys := make([]SeriesKey, 0, len(cur))
	for k := range cur {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	for _, k := range keys {
		fn(cur[k])
	}
	if r.overflow.lat.Lifetime().Count > 0 || r.overflow.errs.Lifetime() > 0 {
		fn(&r.overflow)
	}
}

// Snapshot exports every series over the n windows ending at tick, in
// deterministic key order. Empty on a nil receiver.
func (r *Registry) Snapshot(tick int64, n int) []SeriesSnapshot {
	if r == nil {
		return nil
	}
	var out []SeriesSnapshot
	r.Each(func(s *Series) { out = append(out, s.Snapshot(tick, n)) })
	return out
}

func (a SeriesKey) less(b SeriesKey) bool {
	if a.Op != b.Op {
		return a.Op < b.Op
	}
	if a.Encoding != b.Encoding {
		return a.Encoding < b.Encoding
	}
	if a.Transport != b.Transport {
		return a.Transport < b.Transport
	}
	return a.Role < b.Role
}
