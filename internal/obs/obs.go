// Package obs is the engine-wide observability layer: atomic counters,
// gauges with high-water tracking, fixed-bucket log-spaced latency
// histograms with mergeable snapshots, and lightweight span tracing for the
// request path. The paper's whole argument (Figs. 5–9) is a decomposition
// of where time goes — encode, wire, handler, decode — across the
// (encoding, binding) policy grid; this package makes that decomposition
// observable on the real engine instead of only end-to-end from the bench
// harness.
//
// The package is dependency-free (standard library only, no other bxsoap
// packages), so every layer — core, the bindings, svcpool, netsim, the
// harness — can report into it without import cycles.
//
// # The nil-sink contract
//
// Every recording method is safe on a nil *Observer and does nothing — no
// clock reads, no atomic traffic, no allocations. Instrumented code holds a
// plain *Observer field (nil by default) and calls it unconditionally; the
// zero-instrumentation path costs one predictable branch per call site and
// zero allocations, which BenchmarkPooledCalls verifies under -benchmem.
// Code never needs to guard a call site with its own nil check.
//
// # Deterministic clocks
//
// An Observer reads time only through its installed now function (WithNow),
// and every recording primitive has an explicit-duration form (ObserveStage)
// that reads no clock at all. Packages under a deterministic-clock regime
// (netsim, enforced by paylint's nowallclock analyzer) instrument themselves
// by passing durations they already computed on the simulated clock.
//
// The nil-sink contract is enforced statically: paylint's nilsink analyzer
// requires every exported method of the marked types below to nil-check its
// receiver.
//
//paylint:nil-sink Observer Span Recorder Hop Registry Series WindowedHistogram WindowedCounter
package obs

import (
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is an atomic up/down value that also tracks its high-water mark.
type Gauge struct {
	v  atomic.Int64
	hw atomic.Int64
}

// Add moves the gauge by d (negative to decrement) and advances the
// high-water mark when the new value exceeds it.
func (g *Gauge) Add(d int64) {
	n := g.v.Add(d)
	for {
		hw := g.hw.Load()
		if n <= hw || g.hw.CompareAndSwap(hw, n) {
			return
		}
	}
}

// Observe records an externally tracked instantaneous value: the gauge
// takes v as its current reading and advances the high-water mark past it
// if needed. It is the sampling counterpart of Add, for quantities whose
// per-entity count lives elsewhere (e.g. each mux connection reporting its
// own stream count into a shared gauge, where only the maximum is
// meaningful).
func (g *Gauge) Observe(v int64) {
	g.v.Store(v)
	for {
		hw := g.hw.Load()
		if v <= hw || g.hw.CompareAndSwap(hw, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HighWater returns the largest value the gauge has reached.
func (g *Gauge) HighWater() int64 { return g.hw.Load() }

// Reset zeroes the value and the high-water mark.
func (g *Gauge) Reset() {
	g.v.Store(0)
	g.hw.Store(0)
}

// CounterID names one of the Observer's fixed counters. The fixed set (vs. a
// registry of arbitrary names) keeps recording a single array index with no
// map lookups or lock traffic on the hot path.
type CounterID uint8

// The Observer's counters. Client call counters obey the balance invariant
// checked by the test suite: every call that increments CallsStarted
// increments exactly one of CallsCompleted (the peer answered, faults
// included) or CallsFailed (everything else) before returning.
const (
	// CallsStarted counts client call/send attempts entering the engine.
	CallsStarted CounterID = iota
	// CallsCompleted counts attempts the peer answered (faults included —
	// a fault proves the transport and both codecs work).
	CallsCompleted
	// CallsFailed counts attempts that returned without a peer answer.
	CallsFailed
	// ClientFaults counts completed calls whose answer was a SOAP fault.
	ClientFaults
	// ServerRequests counts requests dispatched by a server.
	ServerRequests
	// ServerFaults counts server responses that carried a fault envelope.
	ServerFaults
	// PayloadPoolHits counts payload checkouts served by a pooled buffer.
	PayloadPoolHits
	// PayloadPoolMisses counts payload checkouts that had to allocate.
	PayloadPoolMisses
	// PoolRetries counts svcpool retry attempts beyond each call's first.
	PoolRetries
	// PoolRetirements counts svcpool connections closed for health/age.
	PoolRetirements
	// BreakerOpened counts transitions of the svcpool breaker to open
	// (threshold trips, failed probes, and abandoned probes re-opening).
	BreakerOpened
	// BreakerProbes counts half-open probe admissions.
	BreakerProbes
	// BreakerClosed counts recoveries (transitions back to closed).
	BreakerClosed
	// MessagesSent counts serialized messages written by a binding.
	MessagesSent
	// MessagesReceived counts serialized messages read by a binding.
	MessagesReceived
	// BytesSent counts message payload bytes written by a binding.
	BytesSent
	// BytesReceived counts message payload bytes read by a binding.
	BytesReceived
	// NetTurnarounds counts netsim connection direction changes (each one
	// pays half an RTT on the simulated link).
	NetTurnarounds
	// NetBytes counts bytes paced through the netsim shaper.
	NetBytes
	// MuxStreamsOpened counts logical streams opened on multiplexed
	// connections (client side: one per exchange admitted onto a session).
	MuxStreamsOpened
	// MuxSheds counts streams refused by the mux server's admission control
	// (queue full → RST overload back to the client).
	MuxSheds
	// MuxResets counts streams aborted by an RST frame for any other reason
	// (cancellation, flow-control violation, internal failure), counted by
	// whichever side sent or surfaced the reset.
	MuxResets
	// TemplateHits counts codec operations served by a compiled plan: a
	// templated skeleton-splice encode or a template-matched decode.
	TemplateHits
	// TemplateMisses counts codec operations that consulted the plan cache
	// but took the generic tree walk (unknown shape, no-match, or a shape
	// compiled negative).
	TemplateMisses
	// TemplateEvictions counts plans evicted from a full template cache.
	TemplateEvictions
	// TemplateCompiles counts plan compilations (successful or negative).
	TemplateCompiles
	// StreamChunksSent counts chunks handed to a transport by the streamed
	// encode path (requests on clients, responses on servers).
	StreamChunksSent
	// StreamChunksReceived counts chunks consumed from a transport by the
	// streamed decode path.
	StreamChunksReceived
	// SeriesOverflow counts dimensional recordings routed to the shared
	// overflow series because the registry's cardinality bound was hit.
	SeriesOverflow
	// SLOFired counts SLO burn-rate alert transitions to firing.
	SLOFired
	// SLOResolved counts SLO burn-rate alert transitions back to resolved.
	SLOResolved

	numCounters
)

var counterNames = [numCounters]string{
	CallsStarted:         "client.calls_started",
	CallsCompleted:       "client.calls_completed",
	CallsFailed:          "client.calls_failed",
	ClientFaults:         "client.faults",
	ServerRequests:       "server.requests",
	ServerFaults:         "server.faults",
	PayloadPoolHits:      "payload.pool_hits",
	PayloadPoolMisses:    "payload.pool_misses",
	PoolRetries:          "svcpool.retries",
	PoolRetirements:      "svcpool.retirements",
	BreakerOpened:        "svcpool.breaker_opened",
	BreakerProbes:        "svcpool.breaker_probes",
	BreakerClosed:        "svcpool.breaker_closed",
	MessagesSent:         "binding.messages_sent",
	MessagesReceived:     "binding.messages_received",
	BytesSent:            "binding.bytes_sent",
	BytesReceived:        "binding.bytes_received",
	NetTurnarounds:       "netsim.turnarounds",
	NetBytes:             "netsim.bytes",
	MuxStreamsOpened:     "mux.streams_opened",
	MuxSheds:             "mux.sheds",
	MuxResets:            "mux.resets",
	TemplateHits:         "templates.hits",
	TemplateMisses:       "templates.misses",
	TemplateEvictions:    "templates.evictions",
	TemplateCompiles:     "templates.compiles",
	StreamChunksSent:     "stream.chunks_sent",
	StreamChunksReceived: "stream.chunks_received",
	SeriesOverflow:       "series.overflow",
	SLOFired:             "slo.fired",
	SLOResolved:          "slo.resolved",
}

// String returns the counter's snapshot/JSON name.
func (c CounterID) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "unknown"
}

// GaugeID names one of the Observer's fixed gauges.
type GaugeID uint8

const (
	// PayloadsInUse tracks pooled payloads currently checked out; its
	// high-water mark is the pipeline's peak buffer footprint.
	PayloadsInUse GaugeID = iota
	// PoolInflight tracks svcpool calls currently admitted; its high-water
	// mark is the realized concurrency.
	PoolInflight
	// MuxStreams tracks logical streams currently open across every
	// multiplexed connection reporting into this observer; its high-water
	// mark is the realized stream concurrency.
	MuxStreams
	// MuxStreamsPerConn is fed via GaugeObserve with each connection's own
	// instantaneous stream count; its high-water mark is therefore the most
	// streams any single connection carried at once — the multiplexing
	// factor actually achieved.
	MuxStreamsPerConn
	// TemplatePlans tracks compiled plans currently resident in a
	// template cache (negative entries included); bounded by the cache
	// capacity.
	TemplatePlans
	// StreamBytesInFlight tracks bytes of chunk payloads sitting in this
	// node's streaming queues — produced by an encoder or received off the
	// wire but not yet consumed. Its high-water mark is the streaming
	// pipeline's actual buffering footprint, which the chunk-window budget
	// bounds.
	StreamBytesInFlight

	numGauges
)

var gaugeNames = [numGauges]string{
	PayloadsInUse:       "payload.in_use",
	PoolInflight:        "svcpool.inflight",
	MuxStreams:          "mux.streams",
	MuxStreamsPerConn:   "mux.streams_per_conn",
	TemplatePlans:       "templates.plans",
	StreamBytesInFlight: "stream.bytes_in_flight",
}

// String returns the gauge's snapshot/JSON name.
func (g GaugeID) String() string {
	if int(g) < len(gaugeNames) {
		return gaugeNames[g]
	}
	return "unknown"
}

// Observer is one instrumentation sink: a fixed set of counters, gauges,
// and per-stage latency histograms shared by every layer it is wired into
// (engine, server, bindings, svcpool, payload pool, netsim). All methods
// are safe for concurrent use, and all recording methods are no-ops on a
// nil receiver (see the package comment for the nil-sink contract).
type Observer struct {
	now   func() time.Time
	trace func(Stage, time.Duration)
	node  string
	rec   *Recorder

	// Windowed-metric state. winDur is the window duration ticks are
	// derived from; curTick caches the tick the last clocked recording path
	// computed, so the explicit-duration paths (ObserveStage, RecordOp)
	// place samples into the current window without reading any clock;
	// tickOff is NextWindow's forced-rotation offset.
	winDur  time.Duration
	curTick atomic.Int64
	tickOff atomic.Int64

	// Dimensional-metric state: the (encoding, transport) labels this
	// Observer stamps on every series, the bounded series registry, and the
	// declared SLOs. reg is nil unless WithDims or WithSLOs configured it —
	// RecordOp on an Observer without dimensional metrics is one branch.
	encoding  string
	transport string
	seriesCap int
	reg       *Registry
	slos      *sloSet
	sloDecls  []SLO

	counters [numCounters]Counter
	gauges   [numGauges]Gauge
	stages   [numStages]WindowedHistogram
}

// Option configures an Observer at construction.
type Option func(*Observer)

// WithNow installs the Observer's time source, for deterministic-clock
// tests and simulations. The default is time.Now.
func WithNow(now func() time.Time) Option {
	return func(o *Observer) { o.now = now }
}

// WithTrace installs a hook receiving every stage observation in recording
// order (the span-tracing seam: tests assert stage ordering through it, and
// an external tracer can ship the events elsewhere). The hook runs inline
// on the instrumented goroutine — keep it cheap and data-race free.
func WithTrace(fn func(Stage, time.Duration)) Option {
	return func(o *Observer) { o.trace = fn }
}

// WithNode labels the Observer with the node name its hops and events carry
// in trace trees and the journal ("client", "proxy", "soapserver", ...).
func WithNode(name string) Option {
	return func(o *Observer) { o.node = name }
}

// WithRecorder attaches a flight recorder, enabling per-request tracing:
// the request path starts a Hop per call, span marks accumulate into it,
// and FinishHop lands it in the recorder's rings. Without a recorder (the
// default) StartHop returns nil and tracing costs nothing beyond the plain
// span plumbing.
func WithRecorder(r *Recorder) Option {
	return func(o *Observer) { o.rec = r }
}

// WithDims enables dimensional metrics and sets the (encoding, transport)
// labels this Observer stamps on every series it records; call sites supply
// only the per-call dimensions (operation, peer role).
func WithDims(encoding, transport string) Option {
	return func(o *Observer) {
		o.encoding = encoding
		o.transport = transport
		if o.seriesCap == 0 {
			o.seriesCap = DefaultSeriesLimit
		}
	}
}

// WithWindow sets the sliding-window duration the Observer's windowed
// aggregates rotate by. The default is DefaultWindow; d <= 0 keeps it.
func WithWindow(d time.Duration) Option {
	return func(o *Observer) {
		if d > 0 {
			o.winDur = d
		}
	}
}

// WithSeriesLimit bounds the dimensional registry's cardinality: past n
// materialized series, new label combinations land in the shared overflow
// series. n <= 0 keeps DefaultSeriesLimit.
func WithSeriesLimit(n int) Option {
	return func(o *Observer) {
		if n > 0 {
			o.seriesCap = n
		}
	}
}

// WithSLOs declares per-operation objectives and enables the burn-rate
// engine (which requires dimensional recording, so it also enables the
// registry). When a flight recorder is attached, each declared P99 also
// tightens the recorder's slow-trace threshold down to the objective so
// breach exemplars are always captured in the slow ring.
func WithSLOs(slos ...SLO) Option {
	return func(o *Observer) { o.sloDecls = append(o.sloDecls, slos...) }
}

// New builds an Observer.
func New(opts ...Option) *Observer {
	o := &Observer{now: time.Now, winDur: DefaultWindow}
	for _, opt := range opts {
		opt(o)
	}
	if o.seriesCap > 0 || len(o.sloDecls) > 0 {
		if o.seriesCap == 0 {
			o.seriesCap = DefaultSeriesLimit
		}
		o.reg = newRegistry(o.seriesCap)
		o.slos = newSLOSet(o.sloDecls)
	}
	if o.slos != nil && o.rec != nil {
		for _, st := range o.slos.list {
			o.rec.TightenSlowThreshold(st.slo.P99)
		}
	}
	return o
}

// tickAt derives the window tick for now, caches it for the clock-free
// recording paths, and returns it. Ticks before the epoch clamp to 0 so
// injected clocks with odd epochs degrade to a single window instead of
// unreachable negative ticks.
func (o *Observer) tickAt(now time.Time) int64 {
	t := now.UnixNano()/int64(o.winDur) + o.tickOff.Load()
	if t < 0 {
		t = 0
	}
	o.curTick.Store(t)
	return t
}

// Tick returns the current window tick (0 on a nil Observer). It reads no
// clock: the value is whatever the last clocked recording path computed.
func (o *Observer) Tick() int64 {
	if o == nil {
		return 0
	}
	return o.curTick.Load()
}

// NextWindow forces an immediate window rotation, as if a full window
// duration had elapsed. Harnesses call it after warm-up so the measured
// run's windowed percentiles contain no warm-up traffic — unlike Reset,
// which races concurrent writers, rotation is watertight: stragglers from
// the old window carry an old tick and cannot land in the new one. No-op
// on a nil Observer.
func (o *Observer) NextWindow() {
	if o == nil {
		return
	}
	o.tickOff.Add(1)
	o.curTick.Add(1)
}

// Now reads the Observer's clock (zero time on a nil Observer, with no
// clock read), advancing the window tick as a side effect. Pair with Since
// for explicit call timing on paths without a Span.
func (o *Observer) Now() time.Time {
	if o == nil {
		return time.Time{}
	}
	now := o.now()
	o.tickAt(now)
	return now
}

// Since returns the elapsed time from t on the Observer's clock (0 — and
// no clock read — on a nil Observer or a zero t, which is what Now
// returned in the disabled case).
func (o *Observer) Since(t time.Time) time.Duration {
	if o == nil || t.IsZero() {
		return 0
	}
	return o.now().Sub(t)
}

// Add adds n to counter c. No-op on a nil Observer.
func (o *Observer) Add(c CounterID, n uint64) {
	if o == nil {
		return
	}
	o.counters[c].Add(n)
}

// Inc increments counter c. No-op on a nil Observer.
func (o *Observer) Inc(c CounterID) {
	if o == nil {
		return
	}
	o.counters[c].Inc()
}

// Counter returns counter c's current value (0 on a nil Observer).
func (o *Observer) Counter(c CounterID) uint64 {
	if o == nil {
		return 0
	}
	return o.counters[c].Load()
}

// GaugeAdd moves gauge g by d. No-op on a nil Observer.
func (o *Observer) GaugeAdd(g GaugeID, d int64) {
	if o == nil {
		return
	}
	o.gauges[g].Add(d)
}

// GaugeObserve records v as gauge g's current reading and raises its
// high-water mark when v exceeds it (see Gauge.Observe). No-op on a nil
// Observer.
func (o *Observer) GaugeObserve(g GaugeID, v int64) {
	if o == nil {
		return
	}
	o.gauges[g].Observe(v)
}

// Gauge returns gauge g's current value (0 on a nil Observer).
func (o *Observer) Gauge(g GaugeID) int64 {
	if o == nil {
		return 0
	}
	return o.gauges[g].Load()
}

// GaugeHighWater returns gauge g's high-water mark (0 on a nil Observer).
func (o *Observer) GaugeHighWater(g GaugeID) int64 {
	if o == nil {
		return 0
	}
	return o.gauges[g].HighWater()
}

// ObserveStage records one observation of d into stage st's histogram —
// both the lifetime aggregate and the current window. This is the
// explicit-duration entry point: it reads no clock (the window tick is
// whatever the last clocked path cached), so deterministic-clock packages
// record durations they computed on their own injected clock. No-op on a
// nil Observer.
func (o *Observer) ObserveStage(st Stage, d time.Duration) {
	if o == nil {
		return
	}
	o.stages[st].Observe(d, o.curTick.Load())
	if o.trace != nil {
		o.trace(st, d)
	}
}

// StageSnapshot returns a point-in-time snapshot of stage st's lifetime
// histogram (zero on a nil Observer).
func (o *Observer) StageSnapshot(st Stage) HistogramSnapshot {
	if o == nil {
		return HistogramSnapshot{}
	}
	return o.stages[st].Lifetime()
}

// StageWindowSnapshot merges stage st's n most recent windows, the current
// one included (zero on a nil Observer).
func (o *Observer) StageWindowSnapshot(st Stage, n int) HistogramSnapshot {
	if o == nil {
		return HistogramSnapshot{}
	}
	return o.stages[st].Window(o.curTick.Load(), n)
}

// RecordOp records one dimensional sample: operation op in the given role
// (RoleClient or RoleServer) took d and succeeded or failed. The sample
// lands in the (op, encoding, transport, role) series — the Observer's
// WithDims labels fill the last three — and in op's SLO aggregates when
// one is declared, triggering burn-rate evaluation on window boundaries.
// tid (0 when untraced) feeds bucket exemplars and SLO breach exemplars.
//
// RecordOp reads no clock. It is a no-op — one branch, no atomics — when
// the Observer is nil or has no dimensional registry (neither WithDims nor
// WithSLOs configured).
func (o *Observer) RecordOp(op, role string, d time.Duration, failed bool, tid TraceID) {
	if o == nil || o.reg == nil {
		return
	}
	tick := o.curTick.Load()
	s := o.reg.Lookup(SeriesKey{Op: op, Encoding: o.encoding, Transport: o.transport, Role: role})
	if s == &o.reg.overflow {
		o.counters[SeriesOverflow].Inc()
	}
	s.Record(d, failed, tick, tid)
	if st := o.slos.state(op); st != nil {
		st.record(d, failed, tick, tid)
		o.evalSLO(st, tick)
	}
}

// Registry exposes the dimensional series registry (nil when dimensional
// metrics are disabled or the Observer is nil — and a nil *Registry is
// itself a no-op sink).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Dimensional reports whether RecordOp will record anything — the gate
// instrumented code uses before computing an operation label the disabled
// path would discard. False on a nil Observer.
func (o *Observer) Dimensional() bool {
	return o != nil && o.reg != nil
}

// Reset zeroes every counter, gauge, and stage histogram. It is meant for
// quiescent moments — discarding warm-up traffic before a measured run — and
// is NOT atomic with respect to concurrent writers: a recording that races
// the reset may survive it. No-op on a nil Observer.
func (o *Observer) Reset() {
	if o == nil {
		return
	}
	for i := range o.counters {
		o.counters[i].Reset()
	}
	for i := range o.gauges {
		o.gauges[i].Reset()
	}
	for i := range o.stages {
		o.stages[i].Reset()
	}
}

// GaugeSnapshot is the exported state of one gauge.
type GaugeSnapshot struct {
	Value     int64 `json:"value"`
	HighWater int64 `json:"high_water"`
}

// Snapshot is a point-in-time, JSON-serializable export of an Observer.
// Snapshots from different observers (or different times) merge: counters
// and histogram buckets add, gauge values add, and high-water marks take
// the max — so per-connection or per-shard observers can roll up.
type Snapshot struct {
	Counters map[string]uint64            `json:"counters"`
	Gauges   map[string]GaugeSnapshot     `json:"gauges"`
	Stages   map[string]HistogramSnapshot `json:"stages"`
	// Window is the number of windows the Stages and Series aggregates
	// cover; 0 means lifetime.
	Window int `json:"window,omitempty"`
	// Series is the dimensional registry's export (nil when dimensional
	// metrics are disabled).
	Series []SeriesSnapshot `json:"series,omitempty"`
}

// Snapshot captures the Observer's current state. Counters, gauges, and
// histograms are read atomically per metric (not globally: a snapshot taken
// under concurrent writers is internally consistent per histogram but may
// straddle writes across metrics). Zero-count stages are omitted. Returns
// an empty snapshot on a nil Observer.
func (o *Observer) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters: map[string]uint64{},
		Gauges:   map[string]GaugeSnapshot{},
		Stages:   map[string]HistogramSnapshot{},
	}
	if o == nil {
		return s
	}
	for i := CounterID(0); i < numCounters; i++ {
		if v := o.counters[i].Load(); v != 0 {
			s.Counters[i.String()] = v
		}
	}
	for i := GaugeID(0); i < numGauges; i++ {
		v, hw := o.gauges[i].Load(), o.gauges[i].HighWater()
		if v != 0 || hw != 0 {
			s.Gauges[i.String()] = GaugeSnapshot{Value: v, HighWater: hw}
		}
	}
	for i := Stage(0); i < numStages; i++ {
		if hs := o.stages[i].Lifetime(); hs.Count > 0 {
			s.Stages[i.String()] = hs
		}
	}
	s.Series = o.reg.Snapshot(o.curTick.Load(), NumWindows)
	return s
}

// SnapshotWindow is Snapshot restricted to recency: stage histograms and
// dimensional series cover only the n most recent windows (the current one
// included; n is clamped to [1, NumWindows]), while counters and gauges —
// which have no windowed form — remain lifetime values. Returns an empty
// snapshot on a nil Observer.
func (o *Observer) SnapshotWindow(n int) *Snapshot {
	s := o.Snapshot()
	if o == nil {
		return s
	}
	if n < 1 {
		n = 1
	}
	if n > NumWindows {
		n = NumWindows
	}
	s.Window = n
	tick := o.curTick.Load()
	for k := range s.Stages {
		delete(s.Stages, k)
	}
	for i := Stage(0); i < numStages; i++ {
		if hs := o.stages[i].Window(tick, n); hs.Count > 0 {
			s.Stages[i.String()] = hs
		}
	}
	s.Series = o.reg.Snapshot(tick, n)
	return s
}

// Merge folds other into s: counters and histograms add, gauges add their
// values and keep the larger high-water mark.
func (s *Snapshot) Merge(other *Snapshot) {
	if other == nil {
		return
	}
	for k, v := range other.Counters {
		s.Counters[k] += v
	}
	for k, g := range other.Gauges {
		cur := s.Gauges[k]
		cur.Value += g.Value
		if g.HighWater > cur.HighWater {
			cur.HighWater = g.HighWater
		}
		s.Gauges[k] = cur
	}
	for k, h := range other.Stages {
		cur := s.Stages[k]
		cur.Merge(h)
		s.Stages[k] = cur
	}
	// Dimensional series are already keyed per node/role; a rollup keeps
	// both sides' series rather than conflating them.
	s.Series = append(s.Series, other.Series...)
}
