package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// Bucket boundaries: bucket 0 is [0, 1µs), bucket i covers
// [1µs·2^(i-1), 1µs·2^i), the last bucket is open-ended.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{999 * time.Nanosecond, 0},
		{time.Microsecond, 1},
		{2*time.Microsecond - 1, 1},
		{2 * time.Microsecond, 2},
		{4*time.Microsecond - 1, 2},
		{4 * time.Microsecond, 3},
		{time.Millisecond, 10},      // 1000µs ∈ [512µs, 1024µs)
		{time.Second, 20},           // 1e6µs ∈ [2^19µs, 2^20µs)
		{time.Hour, NumBuckets - 1}, // far past the grid: clamped open-ended
	}
	for _, c := range cases {
		if got := bucketFor(c.d); got != c.want {
			t.Errorf("bucketFor(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every non-terminal bucket's upper bound must land in the NEXT bucket
	// (bounds are exclusive), and one tick under it in the bucket itself.
	for i := 1; i < NumBuckets-1; i++ {
		ub := BucketUpperBound(i)
		if got := bucketFor(ub - 1); got != i {
			t.Errorf("bucketFor(upper(%d)-1) = %d, want %d", i, got, i)
		}
		if got := bucketFor(ub); got != i+1 && i+1 < NumBuckets {
			t.Errorf("bucketFor(upper(%d)) = %d, want %d", i, got, i+1)
		}
	}
	if BucketUpperBound(NumBuckets-1) >= 0 {
		t.Error("last bucket must be open-ended")
	}
}

func TestHistogramObserveAndMean(t *testing.T) {
	var h Histogram
	h.Observe(10 * time.Microsecond)
	h.Observe(30 * time.Microsecond)
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("Count = %d, want 2", s.Count)
	}
	if got, want := s.Mean(), 20*time.Microsecond; got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if s.Buckets[bucketFor(10*time.Microsecond)] != 1 || s.Buckets[bucketFor(30*time.Microsecond)] != 1 {
		t.Errorf("observations in wrong buckets: %v", s.Buckets)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 5; i++ {
		a.Observe(time.Microsecond)
		b.Observe(time.Millisecond)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 10 {
		t.Fatalf("merged Count = %d, want 10", sa.Count)
	}
	if sa.SumNanos != 5*int64(time.Microsecond)+5*int64(time.Millisecond) {
		t.Errorf("merged SumNanos = %d", sa.SumNanos)
	}
	var total uint64
	for _, c := range sa.Buckets {
		total += c
	}
	if total != sa.Count {
		t.Errorf("merged buckets sum %d != Count %d", total, sa.Count)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(10 * time.Microsecond)
	}
	h.Observe(10 * time.Millisecond)
	s := h.Snapshot()
	// p50 must sit in the 10µs bucket's range; p999 in the 10ms one.
	if q := s.Quantile(0.5); q < 10*time.Microsecond || q > 16*time.Microsecond {
		t.Errorf("p50 = %v, want within the 10µs bucket", q)
	}
	if q := s.Quantile(0.999); q < 10*time.Millisecond {
		t.Errorf("p999 = %v, want ≥ 10ms", q)
	}
	if (HistogramSnapshot{}).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
}

// Snapshot internal consistency under concurrent writers: however the read
// races the writes, a snapshot's Count equals the sum of its buckets.
func TestSnapshotConsistentUnderConcurrentWriters(t *testing.T) {
	o := New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := time.Duration(w+1) * 3 * time.Microsecond
			for {
				select {
				case <-stop:
					return
				default:
					o.ObserveStage(ClientEncode, d)
					o.Inc(CallsStarted)
					o.Inc(CallsCompleted)
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		s := o.StageSnapshot(ClientEncode)
		var sum uint64
		for _, c := range s.Buckets {
			sum += c
		}
		if sum != s.Count {
			t.Fatalf("snapshot %d: bucket sum %d != Count %d", i, sum, s.Count)
		}
	}
	close(stop)
	wg.Wait()
	if o.Counter(CallsStarted) != o.Counter(CallsCompleted) {
		t.Errorf("started %d != completed %d after quiesce",
			o.Counter(CallsStarted), o.Counter(CallsCompleted))
	}
}

func TestGaugeHighWater(t *testing.T) {
	o := New()
	o.GaugeAdd(PoolInflight, 3)
	o.GaugeAdd(PoolInflight, 4)
	o.GaugeAdd(PoolInflight, -5)
	o.GaugeAdd(PoolInflight, 1)
	if got := o.Gauge(PoolInflight); got != 3 {
		t.Errorf("gauge = %d, want 3", got)
	}
	if got := o.GaugeHighWater(PoolInflight); got != 7 {
		t.Errorf("high water = %d, want 7", got)
	}
}

// GaugeObserve records externally tracked instantaneous values: the gauge
// takes the last reading, the high-water mark keeps the maximum across all
// reporters, and lower observations never drag it down.
func TestGaugeObserveHighWater(t *testing.T) {
	o := New()
	o.GaugeObserve(MuxStreamsPerConn, 5)
	o.GaugeObserve(MuxStreamsPerConn, 12)
	o.GaugeObserve(MuxStreamsPerConn, 2)
	if got := o.Gauge(MuxStreamsPerConn); got != 2 {
		t.Errorf("gauge = %d, want 2 (last observation)", got)
	}
	if got := o.GaugeHighWater(MuxStreamsPerConn); got != 12 {
		t.Errorf("high water = %d, want 12", got)
	}
}

// Span ordering: marks on a fake clock attribute each inter-mark interval
// to the right stage, in recording order, including the fault/error path
// (the trace hook sees stages exactly as marked).
func TestSpanOrderingOnFakeClock(t *testing.T) {
	now := time.Unix(0, 0)
	type ev struct {
		st Stage
		d  time.Duration
	}
	var got []ev
	o := New(
		WithNow(func() time.Time { return now }),
		WithTrace(func(st Stage, d time.Duration) { got = append(got, ev{st, d}) }),
	)
	sp := o.Span()
	now = now.Add(5 * time.Microsecond)
	sp.Mark(ClientEncode)
	now = now.Add(7 * time.Microsecond)
	sp.Mark(ClientSend)
	now = now.Add(11 * time.Microsecond)
	sp.Mark(ClientWait)
	// Decode is marked even when it fails — the error path still traces.
	now = now.Add(13 * time.Microsecond)
	sp.Mark(ClientDecode)

	want := []ev{
		{ClientEncode, 5 * time.Microsecond},
		{ClientSend, 7 * time.Microsecond},
		{ClientWait, 11 * time.Microsecond},
		{ClientDecode, 13 * time.Microsecond},
	}
	if len(got) != len(want) {
		t.Fatalf("traced %d events, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if got := o.StageSnapshot(ClientSend); got.Mean() != 7*time.Microsecond {
		t.Errorf("ClientSend mean = %v, want 7µs", got.Mean())
	}
}

func TestSpanRestartSkipsStage(t *testing.T) {
	now := time.Unix(0, 0)
	o := New(WithNow(func() time.Time { return now }))
	sp := o.Span()
	now = now.Add(time.Hour) // time that must NOT be attributed anywhere
	sp.Restart()
	now = now.Add(9 * time.Microsecond)
	sp.Mark(ClientDecode)
	if got := o.StageSnapshot(ClientDecode).Mean(); got != 9*time.Microsecond {
		t.Errorf("mean = %v, want 9µs (Restart leaked the skipped hour)", got)
	}
}

// The nil-sink contract: every recording method on a nil Observer is a
// no-op with zero allocations, and a nil span never reads the clock.
func TestNilObserverIsFreeOfAllocations(t *testing.T) {
	var o *Observer
	allocs := testing.AllocsPerRun(100, func() {
		o.Inc(CallsStarted)
		o.Add(BytesSent, 17)
		o.GaugeAdd(PoolInflight, 1)
		o.GaugeObserve(MuxStreamsPerConn, 3)
		_ = o.GaugeHighWater(MuxStreamsPerConn)
		o.ObserveStage(ClientEncode, time.Microsecond)
		sp := o.Span()
		sp.Mark(ClientSend)
		sp.Restart()
		_ = o.Counter(CallsStarted)
		_ = o.Gauge(PoolInflight)
		_ = o.StageSnapshot(ClientWait)
		// The trace layer shares the nil-sink contract: with no observer
		// (or no recorder) the whole hop lifecycle is free.
		_ = o.Tracing()
		_ = o.Node()
		h := o.StartHop(RoleClient)
		h.Bind(TraceContext{ID: 1})
		h.SetError(nil)
		_ = h.Context()
		_ = h.StageDur(ClientWait)
		hsp := o.SpanWith(h)
		hsp.Mark(ClientWait)
		o.FinishHop(h, nil)
		o.Event(EvRetry, "x")
		o.Event(EvStreamReset, "x")
		o.Event(EvOverloadShed, "x")
		_ = o.Recorder().Recent(1)
		_ = o.Recorder().Trace(1)
		_ = o.Recorder().Dropped()
		// The dimensional/windowed/SLO surface shares the contract.
		o.RecordOp("op", RoleClient, time.Microsecond, false, 1)
		o.NextWindow()
		_ = o.Tick()
		_ = o.Now()
		_ = o.Since(time.Time{})
		_ = o.Dimensional()
		_ = o.StageWindowSnapshot(ClientWait, 1)
		_ = o.Registry().Lookup(SeriesKey{Op: "op"})
		_ = o.Registry().Overflow()
		_ = o.Registry().Dropped()
		_ = o.Registry().Len()
		_ = o.SLOStatus()
		_ = o.SLOFiring()
		_ = o.Recorder().SlowThreshold()
		o.Recorder().SetSlowThreshold(time.Millisecond)
		o.Recorder().TightenSlowThreshold(time.Millisecond)
		var wh *WindowedHistogram
		wh.Observe(time.Microsecond, 1)
		_ = wh.Lifetime()
		_ = wh.Window(1, 1)
		wh.Reset()
		var wc *WindowedCounter
		wc.Add(1, 1)
		_ = wc.Lifetime()
		_ = wc.Window(1, 1)
		wc.Reset()
		var se *Series
		se.Record(time.Microsecond, false, 1, 1)
		_ = se.Key()
		_ = se.Exemplar(0)
		_ = se.TailExemplar(time.Microsecond)
	})
	if allocs != 0 {
		t.Errorf("nil observer allocated %.1f per run, want 0", allocs)
	}
}

// A live observer with no dimensional registry (the default) keeps RecordOp
// free: no allocations and no clock reads, so instrumented call sites cost
// nothing when the feature is off.
func TestRecordOpFreeWhenDimensionsDisabled(t *testing.T) {
	clockReads := 0
	o := New(WithNow(func() time.Time { clockReads++; return time.Time{} }))
	if o.Dimensional() {
		t.Fatal("observer unexpectedly dimensional")
	}
	clockReads = 0
	allocs := testing.AllocsPerRun(100, func() {
		o.RecordOp("op", RoleClient, time.Microsecond, false, 1)
	})
	if allocs != 0 {
		t.Errorf("RecordOp allocated %.1f per run with dimensions disabled, want 0", allocs)
	}
	if clockReads != 0 {
		t.Errorf("RecordOp read the clock %d times with dimensions disabled", clockReads)
	}
}

func TestNilSpanNeverReadsClock(t *testing.T) {
	clockReads := 0
	o := New(WithNow(func() time.Time { clockReads++; return time.Time{} }))
	_ = o // a live observer reads; a nil one must not
	var nilObs *Observer
	sp := nilObs.Span()
	sp.Mark(ClientEncode)
	if clockReads != 0 {
		t.Errorf("nil span read the clock %d times", clockReads)
	}
}

// Snapshot/Merge: rollup across observers adds counters and histograms,
// sums gauge values, and keeps the larger high-water mark.
func TestSnapshotMergeRollup(t *testing.T) {
	a, b := New(), New()
	a.Inc(CallsStarted)
	b.Add(CallsStarted, 2)
	a.GaugeAdd(PayloadsInUse, 5)
	a.GaugeAdd(PayloadsInUse, -3)
	b.GaugeAdd(PayloadsInUse, 4)
	a.ObserveStage(ServerHandler, time.Millisecond)
	b.ObserveStage(ServerHandler, 3*time.Millisecond)

	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if got := s.Counters[CallsStarted.String()]; got != 3 {
		t.Errorf("merged calls_started = %d, want 3", got)
	}
	g := s.Gauges[PayloadsInUse.String()]
	if g.Value != 6 || g.HighWater != 5 {
		t.Errorf("merged gauge = %+v, want value 6 high-water 5", g)
	}
	h := s.Stages[ServerHandler.String()]
	if h.Count != 2 || h.Mean() != 2*time.Millisecond {
		t.Errorf("merged handler stage: count %d mean %v", h.Count, h.Mean())
	}
}

func TestSnapshotOmitsZeroEntriesAndSerializes(t *testing.T) {
	o := New()
	o.Inc(ServerRequests)
	s := o.Snapshot()
	if len(s.Counters) != 1 {
		t.Errorf("snapshot carries zero-valued counters: %v", s.Counters)
	}
	if len(s.Stages) != 0 {
		t.Errorf("snapshot carries empty stages: %v", s.Stages)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters[ServerRequests.String()] != 1 {
		t.Errorf("JSON round trip lost the counter: %s", data)
	}
}

func TestNamesAreStable(t *testing.T) {
	// The snapshot keys are an external interface (admin endpoint, CI
	// artifacts); spot-check the load-bearing ones.
	checks := map[string]string{
		CallsStarted.String():  "client.calls_started",
		PayloadsInUse.String(): "payload.in_use",
		ServerHandler.String(): "server.handler",
		NetShape.String():      "netsim.shape",
	}
	for got, want := range checks {
		if got != want {
			t.Errorf("name %q, want %q", got, want)
		}
	}
	if CounterID(200).String() != "unknown" || Stage(200).String() != "unknown" {
		t.Error("out-of-range IDs must stringify as unknown")
	}
}
