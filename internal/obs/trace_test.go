package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTraceIDStringParseRoundTrip(t *testing.T) {
	id := NewTraceID()
	s := id.String()
	if len(s) != 16 {
		t.Fatalf("String() = %q, want 16 hex digits", s)
	}
	back, err := ParseTraceID(s)
	if err != nil {
		t.Fatalf("ParseTraceID(%q): %v", s, err)
	}
	if back != id {
		t.Fatalf("round trip %v != %v", back, id)
	}
	for _, bad := range []string{"", "abc", "zzzzzzzzzzzzzzzz", strings.Repeat("a", 17)} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

func TestTraceContextNext(t *testing.T) {
	tc := TraceContext{ID: 7, Seq: 2}
	if n := tc.Next(); n.ID != 7 || n.Seq != 3 {
		t.Fatalf("Next() = %+v", n)
	}
}

// fakeClockObs builds an observer with a recorder and a deterministic clock
// advancing `step` per read.
func fakeClockObs(rec *Recorder, node string, step time.Duration) *Observer {
	now := time.Unix(0, 0)
	return New(
		WithNode(node),
		WithRecorder(rec),
		WithNow(func() time.Time { now = now.Add(step); return now }),
	)
}

func TestRecorderJoinsHopsByTraceID(t *testing.T) {
	rec := NewRecorder(RecorderConfig{})
	cli := fakeClockObs(rec, "cli", time.Millisecond)
	srv := fakeClockObs(rec, "srv", time.Microsecond)

	id := NewTraceID()
	ch := cli.StartHop(RoleClient)
	ch.Bind(TraceContext{ID: id, Seq: 0})
	csp := cli.SpanWith(ch)
	csp.Mark(ClientEncode)
	csp.Mark(ClientSend)
	csp.Mark(ClientWait)
	csp.Mark(ClientDecode)
	cli.FinishHop(ch, nil)

	sh := srv.StartHop(RoleServer)
	ssp := srv.SpanWith(sh)
	ssp.Mark(ServerReceive)
	ssp.Mark(ServerDecode)
	sh.Bind(TraceContext{ID: id, Seq: 1})
	ssp.Mark(ServerHandler)
	ssp.Mark(ServerEncode)
	ssp.Mark(ServerSend)
	srv.FinishHop(sh, nil)

	tree := rec.Trace(id)
	if tree == nil {
		t.Fatal("Trace() = nil")
	}
	if tree.Hops != 2 {
		t.Fatalf("Hops = %d, want 2", tree.Hops)
	}
	if tree.ID != id.String() {
		t.Fatalf("ID = %q, want %q", tree.ID, id.String())
	}
	root := tree.Root
	if root.Role != RoleClient || root.Seq != 0 || root.Node != "cli" {
		t.Fatalf("root = %+v", root)
	}
	if root.Child == nil || root.Child.Role != RoleServer || root.Child.Seq != 1 || root.Child.Node != "srv" {
		t.Fatalf("child = %+v", root.Child)
	}
	// Wire attribution: client send+wait = 2ms; server busy (decode +
	// handler + encode + send, receive excluded) = 4µs → wire ≈ 1.996ms.
	want := 2*time.Millisecond - 4*time.Microsecond
	if root.Wire != want {
		t.Fatalf("Wire = %v, want %v", root.Wire, want)
	}
	if root.Child.Wire != 0 {
		t.Fatalf("server hop Wire = %v, want 0", root.Child.Wire)
	}
}

func TestRecorderSelfRootsUnboundHops(t *testing.T) {
	rec := NewRecorder(RecorderConfig{})
	o := fakeClockObs(rec, "srv", time.Microsecond)
	h := o.StartHop(RoleServer)
	o.FinishHop(h, nil)
	trees := rec.Recent(0)
	if len(trees) != 1 {
		t.Fatalf("Recent = %d trees, want 1", len(trees))
	}
	if trees[0].Root.Seq != 0 || trees[0].ID == TraceID(0).String() {
		t.Fatalf("self-rooted tree = %+v", trees[0])
	}
}

func TestRecorderRecentRingEvicts(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Recent: 4, SlowThreshold: -1})
	o := fakeClockObs(rec, "n", time.Microsecond)
	var first TraceID
	for i := 0; i < 10; i++ {
		h := o.StartHop(RoleClient)
		tc := TraceContext{ID: NewTraceID(), Seq: 0}
		if i == 0 {
			first = tc.ID
		}
		h.Bind(tc)
		o.FinishHop(h, nil)
	}
	if got := len(rec.Recent(0)); got != 4 {
		t.Fatalf("Recent ring holds %d, want 4", got)
	}
	if rec.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", rec.Dropped())
	}
	if rec.Trace(first) != nil {
		t.Fatal("evicted trace still resolvable")
	}
	// Newest first.
	trees := rec.Recent(2)
	if len(trees) != 2 {
		t.Fatalf("Recent(2) = %d", len(trees))
	}
}

func TestRecorderSlowRing(t *testing.T) {
	rec := NewRecorder(RecorderConfig{SlowThreshold: 10 * time.Millisecond})
	fast := fakeClockObs(rec, "n", time.Microsecond)    // total 1µs
	slow := fakeClockObs(rec, "n", 20*time.Millisecond) // total 20ms
	h := fast.StartHop(RoleClient)
	h.Bind(TraceContext{ID: NewTraceID()})
	fast.FinishHop(h, nil)
	if n := len(rec.Slow(0)); n != 0 {
		t.Fatalf("fast hop landed in slow ring (%d)", n)
	}
	h = slow.StartHop(RoleClient)
	h.Bind(TraceContext{ID: NewTraceID()})
	slow.FinishHop(h, nil)
	trees := rec.Slow(0)
	if len(trees) != 1 {
		t.Fatalf("Slow = %d trees, want 1", len(trees))
	}
	if trees[0].Total < 10*time.Millisecond {
		t.Fatalf("slow trace total = %v", trees[0].Total)
	}
}

func TestRecorderEventJournal(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Events: 3})
	o := New(WithNode("n"), WithRecorder(rec))
	o.Event(EvBreakerOpened, "a")
	o.Event(EvBreakerProbe, "b")
	o.Event(EvBreakerClosed, "c")
	o.Event(EvConnRetired, "d")
	evs := rec.Events(0)
	if len(evs) != 3 {
		t.Fatalf("Events = %d, want 3 (ring cap)", len(evs))
	}
	// Newest first; the oldest ("a") was evicted.
	if evs[0].Kind != EvConnRetired || evs[0].Detail != "d" || evs[0].Node != "n" {
		t.Fatalf("evs[0] = %+v", evs[0])
	}
	if evs[2].Kind != EvBreakerProbe {
		t.Fatalf("evs[2] = %+v", evs[2])
	}
	if evs[0].Name != "conn.retired" {
		t.Fatalf("Name = %q", evs[0].Name)
	}
}

func TestHopRecordsErrorAndStageDur(t *testing.T) {
	rec := NewRecorder(RecorderConfig{})
	o := fakeClockObs(rec, "n", time.Millisecond)
	h := o.StartHop(RoleClient)
	h.Bind(TraceContext{ID: NewTraceID()})
	sp := o.SpanWith(h)
	sp.Mark(ClientSend)
	sp.Mark(ClientWait)
	o.FinishHop(h, errTest)
	if d := h.StageDur(ClientSend); d != time.Millisecond {
		t.Fatalf("StageDur(ClientSend) = %v", d)
	}
	tree := rec.Recent(1)[0]
	if tree.Root.Err != "test error" {
		t.Fatalf("Err = %q", tree.Root.Err)
	}
}

var errTest = errTestType{}

type errTestType struct{}

func (errTestType) Error() string { return "test error" }

func TestFprintTrace(t *testing.T) {
	rec := NewRecorder(RecorderConfig{})
	o := fakeClockObs(rec, "cli", time.Millisecond)
	id := NewTraceID()
	h := o.StartHop(RoleClient)
	h.Bind(TraceContext{ID: id, Seq: 0})
	sp := o.SpanWith(h)
	sp.Mark(ClientSend)
	o.FinishHop(h, nil)

	var sb strings.Builder
	FprintTrace(&sb, rec.Trace(id))
	out := sb.String()
	for _, want := range []string{id.String(), "client @cli seq=0", "client.send=1ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	FprintTrace(&sb, nil)
	if !strings.Contains(sb.String(), "empty") {
		t.Errorf("nil tree render = %q", sb.String())
	}
}

// TestDisabledTracingAddsNoAllocations is the acceptance check for the
// nil-sink contract on a LIVE observer with NO recorder: the hot-path trace
// hooks (Tracing, StartHop, SpanWith(nil), FinishHop, Event) must not
// allocate — the plain metrics path already existed and stays as it was.
func TestDisabledTracingAddsNoAllocations(t *testing.T) {
	o := New(WithNode("n")) // live, but no recorder → tracing disabled
	allocs := testing.AllocsPerRun(200, func() {
		if o.Tracing() {
			t.Fatal("tracing reported enabled without a recorder")
		}
		h := o.StartHop(RoleClient)
		sp := o.SpanWith(h)
		sp.Mark(ClientSend)
		o.FinishHop(h, nil)
		o.Event(EvRetry, "ignored")
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocated %.1f per run, want 0", allocs)
	}
}
