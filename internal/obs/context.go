package obs

import "context"

// hopKey is the context key carrying the current request's *Hop from the
// layer that starts the trace (svcpool's call/send, which also encodes the
// request) down into the engine's CallPayload/SendPayload, which record the
// stage spans. A context key rather than a parameter keeps the engine's
// public payload API unchanged.
type hopKey struct{}

// ContextWithHop returns ctx carrying h. A nil hop returns ctx unchanged,
// so the disabled-tracing path allocates nothing.
func ContextWithHop(ctx context.Context, h *Hop) context.Context {
	if h == nil {
		return ctx
	}
	return context.WithValue(ctx, hopKey{}, h)
}

// HopFromContext returns the hop carried by ctx, or nil. Callers on the hot
// path should gate the lookup behind Observer.Tracing() — ctx.Value walks
// the context chain, which the zero-overhead disabled path must not pay.
func HopFromContext(ctx context.Context) *Hop {
	h, _ := ctx.Value(hopKey{}).(*Hop)
	return h
}
