package obs

// Prometheus/OpenMetrics text exposition for /metrics?format=prom. The
// admin endpoint's native JSON is richer (trace trees, high-water marks as
// structured fields), but a scrape-friendly text form lets a stock
// Prometheus point at the admin listener with zero glue. The writer is
// dependency-free by design — the exposition format is a line protocol,
// and hand-writing it keeps the package standard-library only.
//
// Conventions:
//   - every metric is prefixed bxsoap_ and dots become underscores
//     ("client.calls_started" → bxsoap_client_calls_started_total)
//   - histograms emit the classic cumulative _bucket/_sum/_count triple
//     with le bounds in seconds
//   - dimensional series carry op/encoding/transport/role labels
//   - buckets holding a captured exemplar append an OpenMetrics exemplar
//     annotation: "# {trace_id=\"...\"} <seconds>" — the linkage from a
//     tail bucket to a flight-recorder trace
//   - SLO state exports as bxsoap_slo_burn_fast / _burn_slow /
//     _budget_used gauges and a 0/1 bxsoap_slo_firing gauge per op

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// writeProm renders a snapshot (plus SLO state) in Prometheus text format.
func writeProm(w io.Writer, s *Snapshot, slos []SLOStatus) {
	if hw, ok := w.(interface{ Header() map[string][]string }); ok {
		hw.Header()["Content-Type"] = []string{"text/plain; version=0.0.4; charset=utf-8"}
	}
	// Counters and gauges, sorted for a deterministic scrape body.
	for _, k := range sortedKeys(s.Counters) {
		name := promName(k) + "_total"
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		g := s.Gauges[k]
		name := promName(k)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, g.Value)
		fmt.Fprintf(w, "# TYPE %s_high_water gauge\n%s_high_water %d\n", name, name, g.HighWater)
	}
	for _, k := range sortedKeys(s.Stages) {
		promHistogram(w, promName("stage."+k), "", s.Stages[k], nil)
	}
	for _, ss := range s.Series {
		labels := seriesLabels(ss.Key)
		promHistogram(w, "bxsoap_op_latency", labels, ss.Latency, ss.Exemplars)
		fmt.Fprintf(w, "# TYPE bxsoap_op_errors_total counter\nbxsoap_op_errors_total{%s} %d\n",
			labels, ss.Errors)
	}
	for _, st := range slos {
		l := fmt.Sprintf("op=%q", st.Op)
		fmt.Fprintf(w, "# TYPE bxsoap_slo_burn_fast gauge\nbxsoap_slo_burn_fast{%s} %g\n", l, st.BurnFast)
		fmt.Fprintf(w, "# TYPE bxsoap_slo_burn_slow gauge\nbxsoap_slo_burn_slow{%s} %g\n", l, st.BurnSlow)
		fmt.Fprintf(w, "# TYPE bxsoap_slo_budget_used gauge\nbxsoap_slo_budget_used{%s} %g\n", l, st.BudgetUsed)
		firing := 0
		if st.Firing {
			firing = 1
		}
		fmt.Fprintf(w, "# TYPE bxsoap_slo_firing gauge\nbxsoap_slo_firing{%s} %d\n", l, firing)
	}
}

// promHistogram writes one cumulative histogram; exemplars (bucket index →
// trace ID hex) annotate their bucket line.
func promHistogram(w io.Writer, name, labels string, h HistogramSnapshot, exemplars map[int]string) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	sep := ""
	if labels != "" {
		sep = ","
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		cum += h.Buckets[i]
		le := "+Inf"
		if ub := BucketUpperBound(i); ub >= 0 {
			le = fmt.Sprintf("%g", ub.Seconds())
		}
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d", name, labels, sep, le, cum)
		if tid, ok := exemplars[i]; ok && h.Buckets[i] > 0 {
			// OpenMetrics exemplar: the trace behind a sample in this bucket.
			fmt.Fprintf(w, " # {trace_id=%q} %g", tid, exemplarValue(i))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, suffix, float64(h.SumNanos)/1e9)
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, h.Count)
}

// exemplarValue reports a representative seconds value for bucket i (its
// upper bound; the open-ended last bucket uses its lower bound).
func exemplarValue(i int) float64 {
	if ub := BucketUpperBound(i); ub >= 0 {
		return ub.Seconds()
	}
	return (bucketBase << (NumBuckets - 2)).Seconds()
}

func seriesLabels(k SeriesKey) string {
	return fmt.Sprintf("op=%q,encoding=%q,transport=%q,role=%q",
		k.Op, k.Encoding, k.Transport, k.Role)
}

// promName maps a dotted snapshot name onto the prefixed underscore form.
func promName(name string) string {
	return "bxsoap_" + strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
