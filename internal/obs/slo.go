package obs

// The SLO burn-rate engine. An SLO declares an objective for one operation
// — "p99 under 20ms, error rate under 1%" — and the engine turns the
// dimensional samples into alerting state: error-budget accounting since
// process start, and multi-window burn-rate evaluation that fires a journal
// event when the budget is burning fast enough to matter and resolves it
// when the burn subsides.
//
// # Burn rates
//
// A latency objective of p99 implicitly grants a budget: 1% of samples may
// exceed the target (latencyBudget). The burn rate is the ratio of the
// observed bad fraction to the budgeted fraction — burn 1.0 means exactly
// on budget, burn 10 means the budget is being consumed ten times too
// fast. Error-rate objectives burn the same way against MaxErrRate, and an
// SLO's effective burn is the worse of the two.
//
// Alerting on a single window forces a choice between paging on blips
// (short window) and paging late (long window); the standard fix is to
// require two windows to agree. The engine fires when both the fast window
// (the last complete window) and the slow window (the whole NumWindows
// ring) burn at or above the threshold — the blip filter — and resolves as
// soon as the fast window's burn drops below 1.0 — recovery is visible one
// window after the overload ends, no slow-window memory required.
//
// Evaluation happens at most once per window tick, piggybacked on the
// RecordOp that first observes a new tick — no background goroutine, no
// clock reads beyond what the recording path already did, fully
// deterministic under an injected clock.
//
// # Exemplars
//
// Every budget-burning sample (latency above target, or an error) with a
// trace ID overwrites the SLO's exemplar, so the fire/resolve journal
// events carry the ID of an actual offending request, resolvable in the
// flight recorder while the trace is still in its rings.

import (
	"fmt"
	"sync/atomic"
	"time"
)

// DefaultBurnThreshold is the burn rate at which an SLO fires when the
// declaration leaves Burn zero: the budget being consumed at twice the
// sustainable rate.
const DefaultBurnThreshold = 2.0

// latencyBudget is the sample fraction a p99 objective permits above the
// target.
const latencyBudget = 0.01

// SLO declares one operation's service-level objective.
type SLO struct {
	// Op is the operation name the objective applies to (the envelope
	// body's first-child local name — see core.OpName).
	Op string
	// P99 is the latency target: at most 1% of samples may exceed it. 0
	// declares no latency objective (the SLO burns on errors alone).
	P99 time.Duration
	// MaxErrRate is the permitted error fraction (0..1); 0 declares no
	// error objective.
	MaxErrRate float64
	// Burn is the burn-rate firing threshold; 0 takes
	// DefaultBurnThreshold.
	Burn float64
}

// sloState is one SLO's runtime: its own windowed aggregates (fed by
// RecordOp alongside the dimensional series), lifetime budget accounting,
// and the alert latch.
type sloState struct {
	slo          SLO
	targetBucket int // bucketFor(P99); buckets above it are budget-burning

	lat  WindowedHistogram
	errs WindowedCounter

	total    Counter       // lifetime samples
	bad      Counter       // lifetime budget-burning samples
	exemplar atomic.Uint64 // TraceID of the latest budget-burning sample

	firing   atomic.Bool
	lastEval atomic.Int64 // highest complete tick already evaluated
}

func (st *sloState) threshold() float64 {
	if st.slo.Burn > 0 {
		return st.slo.Burn
	}
	return DefaultBurnThreshold
}

// record feeds one sample into the SLO's aggregates.
func (st *sloState) record(d time.Duration, failed bool, tick int64, tid TraceID) {
	st.lat.Observe(d, tick)
	if failed {
		st.errs.Add(1, tick)
	}
	st.total.Inc()
	if failed || (st.slo.P99 > 0 && d > st.slo.P99) {
		st.bad.Inc()
		if tid != 0 {
			st.exemplar.Store(uint64(tid))
		}
	}
}

// burn computes the burn rate over one latency snapshot + error count.
func (st *sloState) burnRate(h HistogramSnapshot, errs uint64) float64 {
	if h.Count == 0 {
		return 0
	}
	var burn float64
	if st.slo.P99 > 0 {
		var badLat uint64
		for i := st.targetBucket + 1; i < NumBuckets; i++ {
			badLat += h.Buckets[i]
		}
		burn = float64(badLat) / float64(h.Count) / latencyBudget
	}
	if st.slo.MaxErrRate > 0 {
		if eb := float64(errs) / float64(h.Count) / st.slo.MaxErrRate; eb > burn {
			burn = eb
		}
	}
	return burn
}

// sloSet is the immutable op → state index built at Observer construction.
type sloSet struct {
	states map[string]*sloState
	list   []*sloState // declaration order, for deterministic export
}

func newSLOSet(slos []SLO) *sloSet {
	if len(slos) == 0 {
		return nil
	}
	ss := &sloSet{states: make(map[string]*sloState, len(slos))}
	for _, s := range slos {
		if s.Op == "" || ss.states[s.Op] != nil {
			continue
		}
		st := &sloState{slo: s, targetBucket: bucketFor(s.P99)}
		ss.states[s.Op] = st
		ss.list = append(ss.list, st)
	}
	return ss
}

func (ss *sloSet) state(op string) *sloState {
	if ss == nil {
		return nil
	}
	return ss.states[op]
}

// evalSLO runs the burn-rate evaluation for st when tick has advanced past
// the last evaluated complete window. Called from RecordOp; the CAS
// guarantees each complete window is judged once even under concurrent
// recorders.
func (o *Observer) evalSLO(st *sloState, tick int64) {
	done := tick - 1 // the newest complete window
	if done < 0 {
		return
	}
	last := st.lastEval.Load()
	if done <= last || !st.lastEval.CompareAndSwap(last, done) {
		return
	}
	fast := st.lat.Window(done, 1)
	slow := st.lat.Window(done, NumWindows)
	burnFast := st.burnRate(fast, st.errs.Window(done, 1))
	burnSlow := st.burnRate(slow, st.errs.Window(done, NumWindows))
	thr := st.threshold()
	switch {
	case !st.firing.Load() && fast.Count > 0 && burnFast >= thr && burnSlow >= thr:
		st.firing.Store(true)
		o.Inc(SLOFired)
		o.eventWithTrace(EvSLOFired,
			fmt.Sprintf("op=%s burn_fast=%.1f burn_slow=%.1f threshold=%.1f p99_target=%v",
				st.slo.Op, burnFast, burnSlow, thr, st.slo.P99),
			TraceID(st.exemplar.Load()))
	case st.firing.Load() && fast.Count > 0 && burnFast < 1.0:
		st.firing.Store(false)
		o.Inc(SLOResolved)
		o.eventWithTrace(EvSLOResolved,
			fmt.Sprintf("op=%s burn_fast=%.1f threshold=%.1f", st.slo.Op, burnFast, thr),
			TraceID(st.exemplar.Load()))
	}
}

// SLOStatus is the exported state of one SLO, served at /slo.
type SLOStatus struct {
	Op            string        `json:"op"`
	P99Target     time.Duration `json:"p99_target_ns"`
	MaxErrRate    float64       `json:"max_err_rate,omitempty"`
	BurnThreshold float64       `json:"burn_threshold"`
	Firing        bool          `json:"firing"`
	BurnFast      float64       `json:"burn_fast"`
	BurnSlow      float64       `json:"burn_slow"`
	WindowP99     time.Duration `json:"window_p99_ns"`
	WindowCount   uint64        `json:"window_count"`
	WindowErrors  uint64        `json:"window_errors"`
	// BudgetUsed is the fraction of the lifetime error budget consumed:
	// bad samples over permitted bad samples. 1.0 means the budget is
	// exactly spent; above 1.0 the SLO has been violated over the
	// process's lifetime.
	BudgetUsed float64 `json:"budget_used"`
	Exemplar   string  `json:"exemplar_trace_id,omitempty"`
}

// SLOStatus exports every declared SLO's current state, in declaration
// order. Burn rates are computed over the windows ending at the last
// complete tick, matching what the alert evaluation saw. Empty when the
// Observer is nil or declares no SLOs.
func (o *Observer) SLOStatus() []SLOStatus {
	if o == nil || o.slos == nil {
		return nil
	}
	done := o.curTick.Load() - 1
	var out []SLOStatus
	for _, st := range o.slos.list {
		fast := st.lat.Window(done, 1)
		slow := st.lat.Window(done, NumWindows)
		s := SLOStatus{
			Op:            st.slo.Op,
			P99Target:     st.slo.P99,
			MaxErrRate:    st.slo.MaxErrRate,
			BurnThreshold: st.threshold(),
			Firing:        st.firing.Load(),
			BurnFast:      st.burnRate(fast, st.errs.Window(done, 1)),
			BurnSlow:      st.burnRate(slow, st.errs.Window(done, NumWindows)),
			WindowP99:     slow.Quantile(0.99),
			WindowCount:   slow.Count,
			WindowErrors:  st.errs.Window(done, NumWindows),
		}
		if total := st.total.Load(); total > 0 {
			s.BudgetUsed = float64(st.bad.Load()) / (float64(total) * latencyBudget)
		}
		if id := st.exemplar.Load(); id != 0 {
			s.Exemplar = TraceID(id).String()
		}
		out = append(out, s)
	}
	return out
}

// SLOFiring reports whether any declared SLO is currently in the firing
// state (false on a nil Observer).
func (o *Observer) SLOFiring() bool {
	if o == nil || o.slos == nil {
		return false
	}
	for _, st := range o.slos.list {
		if st.firing.Load() {
			return true
		}
	}
	return false
}
