package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind names one class of journaled flight-recorder event.
type EventKind uint8

const (
	// EvBreakerOpened: the svcpool circuit breaker tripped open.
	EvBreakerOpened EventKind = iota
	// EvBreakerProbe: a half-open probe was admitted.
	EvBreakerProbe
	// EvBreakerClosed: the breaker recovered to closed.
	EvBreakerClosed
	// EvConnRetired: a pooled connection was closed for health or age.
	EvConnRetired
	// EvPayloadPoisoned: an exchange ended with a poisoned (desynced)
	// binding, so its connection cannot be reused.
	EvPayloadPoisoned
	// EvRetry: a pooled call moved to a retry attempt.
	EvRetry
	// EvStreamReset: a multiplexed stream was aborted by an RST frame
	// (cancellation, flow-control violation, or internal failure).
	EvStreamReset
	// EvOverloadShed: the mux server's admission control refused a stream
	// because the dispatch queue was full.
	EvOverloadShed
	// EvSLOFired: an SLO's multi-window burn rate crossed its firing
	// threshold. The event's Trace field carries a breach exemplar.
	EvSLOFired
	// EvSLOResolved: a firing SLO's fast-window burn dropped back under
	// budget.
	EvSLOResolved

	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	EvBreakerOpened:   "breaker.opened",
	EvBreakerProbe:    "breaker.probe",
	EvBreakerClosed:   "breaker.closed",
	EvConnRetired:     "conn.retired",
	EvPayloadPoisoned: "payload.poisoned",
	EvRetry:           "call.retry",
	EvStreamReset:     "stream.reset",
	EvOverloadShed:    "overload.shed",
	EvSLOFired:        "slo.fired",
	EvSLOResolved:     "slo.resolved",
}

// String returns the event kind's journal/JSON name.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// Event is one journaled occurrence. Trace, when set, is the 16-hex trace
// ID of an exemplar request exhibiting the event's condition (SLO
// transitions carry one), resolvable at /trace/recent or /trace/slow while
// the trace remains in the recorder's rings.
type Event struct {
	At     time.Time `json:"at"`
	Node   string    `json:"node,omitempty"`
	Kind   EventKind `json:"-"`
	Name   string    `json:"kind"`
	Detail string    `json:"detail,omitempty"`
	Trace  string    `json:"trace_id,omitempty"`
}

// RecorderConfig bounds the flight recorder's rings. Zero fields take the
// defaults noted per field; every ring is fixed-size, so a recorder's
// memory footprint is bounded regardless of traffic.
type RecorderConfig struct {
	// Recent is the capacity of the most-recent-traces ring. Default 64.
	Recent int
	// Slow is the capacity of the slow-trace ring. Default 32.
	Slow int
	// Events is the capacity of the event journal. Default 256.
	Events int
	// SlowThreshold routes a trace into the slow ring once any of its hops
	// takes at least this long. Default 1ms; negative disables the ring.
	// Adjustable at runtime via Recorder.SetSlowThreshold, and
	// auto-tightened to each declared SLO's P99 target when the recorder's
	// observer declares objectives (see WithSLOs).
	SlowThreshold time.Duration
}

func (c RecorderConfig) withDefaults() RecorderConfig {
	if c.Recent <= 0 {
		c.Recent = 64
	}
	if c.Slow <= 0 {
		c.Slow = 32
	}
	if c.Events <= 0 {
		c.Events = 256
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = time.Millisecond
	}
	return c
}

// traceEntry collects the finished hops of one trace ID, in arrival order.
type traceEntry struct {
	id   TraceID
	hops []*Hop
	slow bool
}

// Recorder is the always-on flight recorder: three bounded, lock-cheap
// rings — the most recent traces, the recent traces that crossed the slow
// threshold, and a structured event journal. Hops arrive via
// Observer.FinishHop; hops sharing a trace ID are joined into one entry, so
// in-process multi-node deployments (tests, the bench harness, an
// intermediary relaying to a backend) see one joined trace per request.
// Separate processes each record their own hops under the shared wire
// trace ID, which is the cross-process correlation key.
//
// All methods are nil-safe, so a disabled recorder can be threaded through
// unconditionally (the package's //paylint:nil-sink marker covers it).
type Recorder struct {
	cfg        RecorderConfig
	slowThresh atomic.Int64 // runtime slow threshold, ns; <= -1 disables

	mu      sync.Mutex
	byID    map[TraceID]*traceEntry
	recent  []*traceEntry // ring, oldest first
	slow    []*traceEntry // ring, oldest first
	events  []Event       // ring, oldest first
	dropped uint64        // traces evicted from recent
}

// NewRecorder builds a flight recorder.
func NewRecorder(cfg RecorderConfig) *Recorder {
	cfg = cfg.withDefaults()
	r := &Recorder{
		cfg:  cfg,
		byID: make(map[TraceID]*traceEntry, cfg.Recent),
	}
	r.slowThresh.Store(int64(cfg.SlowThreshold))
	return r
}

// SlowThreshold returns the current slow-trace threshold (0 on a nil
// Recorder; negative when the slow ring is disabled).
func (r *Recorder) SlowThreshold() time.Duration {
	if r == nil {
		return 0
	}
	return time.Duration(r.slowThresh.Load())
}

// SetSlowThreshold replaces the slow-trace threshold at runtime: hops of at
// least d now route their trace into the slow ring. Negative d disables
// the ring; d == 0 restores the construction-time value. No-op on a nil
// Recorder.
func (r *Recorder) SetSlowThreshold(d time.Duration) {
	if r == nil {
		return
	}
	if d == 0 {
		d = r.cfg.SlowThreshold
	}
	r.slowThresh.Store(int64(d))
}

// TightenSlowThreshold lowers the slow-trace threshold to d if d is
// positive and below the current threshold — the SLO engine's hook, so a
// declared P99 objective guarantees breaching requests land in the slow
// ring. A disabled ring (negative threshold) stays disabled. No-op on a
// nil Recorder.
func (r *Recorder) TightenSlowThreshold(d time.Duration) {
	if r == nil || d <= 0 {
		return
	}
	for {
		cur := r.slowThresh.Load()
		if cur < 0 || cur <= int64(d) || r.slowThresh.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// record joins a finished hop into its trace entry, creating (and, at
// capacity, evicting) entries as needed. Called by Observer.FinishHop.
func (r *Recorder) record(h *Hop) {
	if r == nil || h == nil {
		return
	}
	r.mu.Lock()
	e := r.byID[h.tc.ID]
	if e == nil {
		e = &traceEntry{id: h.tc.ID}
		r.byID[h.tc.ID] = e
		r.recent = append(r.recent, e)
		if len(r.recent) > r.cfg.Recent {
			evicted := r.recent[0]
			r.recent = r.recent[1:]
			delete(r.byID, evicted.id)
			r.dropped++
		}
	}
	e.hops = append(e.hops, h)
	if thresh := time.Duration(r.slowThresh.Load()); !e.slow && thresh > 0 && h.total >= thresh {
		e.slow = true
		r.slow = append(r.slow, e)
		if len(r.slow) > r.cfg.Slow {
			r.slow = r.slow[1:]
		}
	}
	r.mu.Unlock()
}

// addEvent journals one event, evicting the oldest past capacity.
func (r *Recorder) addEvent(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, ev)
	if len(r.events) > r.cfg.Events {
		r.events = r.events[1:]
	}
	r.mu.Unlock()
}

// Recent returns up to n joined trace trees, newest first (all of the ring
// for n <= 0). Nil-safe.
func (r *Recorder) Recent(n int) []*TraceTree {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := treesOf(r.recent, n)
	r.mu.Unlock()
	return out
}

// Slow returns up to n trace trees that crossed the slow threshold, newest
// first. Nil-safe.
func (r *Recorder) Slow(n int) []*TraceTree {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := treesOf(r.slow, n)
	r.mu.Unlock()
	return out
}

// Events returns up to n journaled events, newest first. Nil-safe.
func (r *Recorder) Events(n int) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > len(r.events) {
		n = len(r.events)
	}
	out := make([]Event, n)
	for i := 0; i < n; i++ {
		out[i] = r.events[len(r.events)-1-i]
	}
	return out
}

// Trace returns the joined tree for one trace ID, or nil if it has been
// evicted or never seen. Nil-safe.
func (r *Recorder) Trace(id TraceID) *TraceTree {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.byID[id]
	if e == nil {
		return nil
	}
	return e.tree()
}

// Dropped reports how many traces have been evicted from the recent ring.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

func treesOf(entries []*traceEntry, n int) []*TraceTree {
	if n <= 0 || n > len(entries) {
		n = len(entries)
	}
	out := make([]*TraceTree, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, entries[len(entries)-1-i].tree())
	}
	return out
}

// TraceNode is one hop rendered into the tree. Wire is the portion of a
// client hop's send+wait that the joined child hop cannot account for —
// i.e. the time the message and its response spent on the link (under
// netsim, the shaped RTT + pacing delay), attributed to this hop of the
// path. It is zero for server hops and for unjoined client hops' children.
type TraceNode struct {
	Node   string        `json:"node,omitempty"`
	Role   string        `json:"role"`
	Seq    int           `json:"seq"`
	Start  time.Time     `json:"start"`
	Total  time.Duration `json:"total_ns"`
	Wire   time.Duration `json:"wire_ns,omitempty"`
	Stages []StageSpan   `json:"stages"`
	Err    string        `json:"error,omitempty"`
	Child  *TraceNode    `json:"child,omitempty"`
}

// TraceTree is one joined trace: the hop chain nested root-first. Hops is
// the flat count (the chain length this recorder saw).
type TraceTree struct {
	ID    string        `json:"trace_id"`
	Hops  int           `json:"hops"`
	Total time.Duration `json:"total_ns"`
	Root  *TraceNode    `json:"root"`
}

// tree builds the nested view of an entry. Caller holds r.mu (the hops
// themselves are immutable once recorded).
func (e *traceEntry) tree() *TraceTree {
	hops := make([]*Hop, len(e.hops))
	copy(hops, e.hops)
	// The request path is a chain: nest by sequence number. Duplicate or
	// gapped sequences (partial views, evictions elsewhere) still render —
	// sort order is (seq, start).
	sort.SliceStable(hops, func(i, j int) bool { return hops[i].tc.Seq < hops[j].tc.Seq })
	var root, prev *TraceNode
	t := &TraceTree{ID: hops[0].tc.ID.String(), Hops: len(hops)}
	for _, h := range hops {
		n := &TraceNode{
			Node:   h.node,
			Role:   h.role,
			Seq:    h.tc.Seq,
			Start:  h.start,
			Total:  h.total,
			Stages: h.stages,
			Err:    h.errmsg,
		}
		if root == nil {
			root = n
			t.Total = h.total
		} else {
			prev.Child = n
		}
		prev = n
	}
	t.Root = root
	attributeWire(root)
	return t
}

// attributeWire walks the chain computing per-hop wire time: for each
// client hop joined with its successor server hop, wire = (send + wait) −
// the server's busy time (decode + handler + encode + send). ServerReceive
// is excluded from busy time — on persistent channels it contains idle time
// between requests, not work on this one. Unjoined client hops report their
// whole send+wait as wire (nothing downstream to subtract).
func attributeWire(n *TraceNode) {
	for ; n != nil; n = n.Child {
		if n.Role != RoleClient {
			continue
		}
		wire := stageSum(n.Stages, ClientSend) + stageSum(n.Stages, ClientWait)
		if c := n.Child; c != nil && c.Role == RoleServer {
			wire -= stageSum(c.Stages, ServerDecode) + stageSum(c.Stages, ServerHandler) +
				stageSum(c.Stages, ServerEncode) + stageSum(c.Stages, ServerSend)
		}
		if wire > 0 {
			n.Wire = wire
		}
	}
}

func stageSum(spans []StageSpan, st Stage) time.Duration {
	var d time.Duration
	for _, s := range spans {
		if s.Stage == st {
			d += s.Dur
		}
	}
	return d
}

// FprintTrace renders a trace tree as indented text (the soapclient -trace
// output):
//
//	trace 9c0ffee1deadbeef  hops=4  total=12.4ms
//	└─ client @client seq=0 total=12.4ms wire≈11.1ms [encode=210µs checkout=3µs send=80µs wait=12ms decode=95µs]
//	   └─ server @proxy seq=1 total=1.2ms [receive=..., decode=..., handler=..., encode=..., send=...]
//	   ...
func FprintTrace(w io.Writer, t *TraceTree) {
	if t == nil || t.Root == nil {
		fmt.Fprintln(w, "trace: (empty)")
		return
	}
	fmt.Fprintf(w, "trace %s  hops=%d  total=%v\n", t.ID, t.Hops, t.Total)
	indent := ""
	for n := t.Root; n != nil; n = n.Child {
		var sb strings.Builder
		for i, s := range n.Stages {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%s=%v", s.Name, s.Dur)
		}
		wire := ""
		if n.Wire > 0 {
			wire = fmt.Sprintf(" wire≈%v", n.Wire)
		}
		errs := ""
		if n.Err != "" {
			errs = fmt.Sprintf(" error=%q", n.Err)
		}
		fmt.Fprintf(w, "%s└─ %s @%s seq=%d total=%v%s%s [%s]\n",
			indent, n.Role, n.Node, n.Seq, n.Total, wire, errs, sb.String())
		indent += "   "
	}
}
