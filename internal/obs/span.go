package obs

import "time"

// Stage names one step of the request path. Client and server stages are
// distinct even where the work is symmetrical (both sides encode and
// decode), so one Observer can carry a whole in-process client+server
// deployment without the two paths polluting each other's histograms.
type Stage uint8

const (
	// ClientEncode is request serialization into a pooled payload.
	ClientEncode Stage = iota
	// ClientCheckout is the svcpool connection-checkout wait: free-list
	// reuse, a fresh dial, or blocking for a slot under backpressure.
	ClientCheckout
	// ClientSend is Binding.SendRequest: framing plus the write side of
	// the exchange.
	ClientSend
	// ClientWait is Binding.ReceiveResponse: the wire round trip plus the
	// server's entire processing time.
	ClientWait
	// ClientDecode is response parsing back into an envelope.
	ClientDecode
	// ServerReceive is the blocking read for the next request on a
	// channel. On persistent channels it includes idle time between
	// requests, so it measures arrival spacing rather than pure read cost.
	ServerReceive
	// ServerDecode is request parsing, content-type check included.
	ServerDecode
	// ServerHandler is the application handler.
	ServerHandler
	// ServerEncode is response serialization.
	ServerEncode
	// ServerSend is Channel.SendResponse.
	ServerSend
	// NetShape is the delay the netsim shaper injected for one write: RTT
	// turnaround plus bandwidth pacing, recorded on the simulated clock.
	NetShape

	numStages
)

var stageNames = [numStages]string{
	ClientEncode:   "client.encode",
	ClientCheckout: "client.checkout",
	ClientSend:     "client.send",
	ClientWait:     "client.wait",
	ClientDecode:   "client.decode",
	ServerReceive:  "server.receive",
	ServerDecode:   "server.decode",
	ServerHandler:  "server.handler",
	ServerEncode:   "server.encode",
	ServerSend:     "server.send",
	NetShape:       "netsim.shape",
}

// String returns the stage's snapshot/JSON name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// NumStages is the number of defined stages (for tests and tabulation).
const NumStages = int(numStages)

// Span measures a sequence of consecutive stages on one goroutine: each
// Mark records the time since the previous Mark (or since the span began)
// into that stage's histogram and restarts the clock. A Span is a plain
// value — starting and marking one allocates nothing — and the zero Span
// (from a nil Observer) ignores every call without reading the clock.
type Span struct {
	o     *Observer
	start time.Time
	last  time.Time
	hop   *Hop
}

// Span begins a span now. On a nil Observer it returns the zero Span and
// reads no clock.
func (o *Observer) Span() Span {
	if o == nil {
		return Span{}
	}
	now := o.now()
	o.tickAt(now)
	return Span{o: o, start: now, last: now}
}

// SpanWith begins a span whose marks additionally accumulate into the hop's
// trace record. A nil hop makes it identical to Span, so the request path
// threads whatever StartHop returned without branching.
func (o *Observer) SpanWith(h *Hop) Span {
	if o == nil {
		return Span{}
	}
	now := o.now()
	o.tickAt(now)
	return Span{o: o, start: now, last: now, hop: h}
}

// Mark records the duration since the span's previous mark into stage st
// and restarts the span clock. Each mark also advances the Observer's
// window tick, keeping the clock-free recording paths current.
func (s *Span) Mark(st Stage) {
	if s.o == nil {
		return
	}
	now := s.o.now()
	s.o.tickAt(now)
	d := now.Sub(s.last)
	s.o.ObserveStage(st, d)
	s.hop.observe(st, d)
	s.last = now
}

// Total returns the span's duration from its start through its most recent
// mark, without reading a clock (0 on the zero Span) — the per-call
// latency the instrumentation layer feeds into RecordOp after the final
// stage mark.
func (s *Span) Total() time.Duration {
	if s.o == nil {
		return 0
	}
	return s.last.Sub(s.start)
}

// Restart resets the span clock without recording — for skipping a stage
// that did not run (e.g. a cache hit) so its cost does not leak into the
// next mark.
func (s *Span) Restart() {
	if s.o == nil {
		return
	}
	s.last = s.o.now()
}
