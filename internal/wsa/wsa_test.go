package wsa

import (
	"strings"
	"testing"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/core"
)

func TestAttachAndExtract(t *testing.T) {
	env := core.NewEnvelope(bxdm.NewLeaf(bxdm.LocalName("payload"), int32(1)))
	p := Properties{
		To:        "urn:service",
		Action:    "urn:service/do",
		MessageID: NewMessageID(),
		ReplyTo:   "tcp://client:9",
		From:      "urn:me",
	}
	p.Attach(env)
	got := FromEnvelope(env)
	if got != p {
		t.Errorf("extracted %+v, want %+v", got, p)
	}
}

func TestPropertiesSurviveBothEncodings(t *testing.T) {
	env := core.NewEnvelope(bxdm.NewLeaf(bxdm.LocalName("x"), int32(9)))
	p := Properties{To: "urn:s", Action: "urn:s/op", MessageID: NewMessageID()}
	p.Attach(env)
	for _, enc := range []core.Encoding{core.XMLEncoding{}, core.BXSAEncoding{}} {
		data, err := core.NewCodec(enc).EncodeBytes(env)
		if err != nil {
			t.Fatal(err)
		}
		back, err := core.NewCodec(enc).DecodeEnvelope(data)
		if err != nil {
			t.Fatal(err)
		}
		if got := FromEnvelope(back); got != p {
			t.Errorf("%s: properties = %+v, want %+v", enc.Name(), got, p)
		}
	}
}

func TestEmptyPropertiesAddNoHeaders(t *testing.T) {
	env := core.NewEnvelope()
	Properties{}.Attach(env)
	if len(env.HeaderEntries) != 0 {
		t.Errorf("headers = %d, want 0", len(env.HeaderEntries))
	}
}

func TestFromEnvelopeWithoutHeaders(t *testing.T) {
	if got := FromEnvelope(core.NewEnvelope()); got != (Properties{}) {
		t.Errorf("got %+v", got)
	}
}

func TestNewMessageIDFormatAndUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewMessageID()
		if !strings.HasPrefix(id, "urn:uuid:") || len(id) != len("urn:uuid:")+36 {
			t.Fatalf("bad id %q", id)
		}
		if seen[id] {
			t.Fatal("duplicate message id")
		}
		seen[id] = true
	}
}

func TestReply(t *testing.T) {
	req := Properties{MessageID: "urn:uuid:req", ReplyTo: "tcp://caller:1"}
	r := Reply(req, "urn:ack")
	if r.To != "tcp://caller:1" || r.RelatesTo != "urn:uuid:req" || r.Action != "urn:ack" {
		t.Errorf("reply = %+v", r)
	}
	if r.MessageID == "" || r.MessageID == req.MessageID {
		t.Error("reply needs a fresh MessageID")
	}
	anon := Reply(Properties{MessageID: "m"}, "a")
	if anon.To != AnonymousAddress {
		t.Errorf("anonymous reply-to = %q", anon.To)
	}
}
