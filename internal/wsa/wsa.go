// Package wsa implements WS-Addressing message-addressing properties over
// the bXDM model. It sits in the layer the paper's Figure 3 labels "WS-*"
// — code here manipulates header entries as bXDM nodes and is therefore
// completely ignorant of whether the envelope will travel as textual XML or
// BXSA (§5.1: "Those layers above SOAP are bXDM oriented, and thus are
// ignorant of the underlying encoding and transport layers").
package wsa

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/core"
)

// Namespace is the WS-Addressing 1.0 namespace.
const Namespace = "http://www.w3.org/2005/08/addressing"

// AnonymousAddress is the anonymous reply-to endpoint.
const AnonymousAddress = Namespace + "/anonymous"

// Properties are the message-addressing properties.
type Properties struct {
	To        string
	Action    string
	MessageID string
	RelatesTo string
	ReplyTo   string // endpoint address; "" omits the header
	From      string
}

// NewMessageID generates a urn:uuid message identifier.
func NewMessageID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("wsa: entropy unavailable: %v", err))
	}
	b[6] = (b[6] & 0x0f) | 0x40 // version 4
	b[8] = (b[8] & 0x3f) | 0x80 // variant 10
	h := hex.EncodeToString(b[:])
	return fmt.Sprintf("urn:uuid:%s-%s-%s-%s-%s", h[0:8], h[8:12], h[12:16], h[16:20], h[20:32])
}

func leaf(local, value string) *bxdm.LeafElement {
	return bxdm.NewLeaf(bxdm.PName(Namespace, "wsa", local), value)
}

// Attach adds the non-empty properties as header entries.
func (p Properties) Attach(env *core.Envelope) {
	if p.To != "" {
		env.AddHeader(leaf("To", p.To))
	}
	if p.Action != "" {
		env.AddHeader(leaf("Action", p.Action))
	}
	if p.MessageID != "" {
		env.AddHeader(leaf("MessageID", p.MessageID))
	}
	if p.RelatesTo != "" {
		env.AddHeader(leaf("RelatesTo", p.RelatesTo))
	}
	if p.ReplyTo != "" {
		ref := bxdm.NewElement(bxdm.PName(Namespace, "wsa", "ReplyTo"),
			leaf("Address", p.ReplyTo))
		env.AddHeader(ref)
	}
	if p.From != "" {
		ref := bxdm.NewElement(bxdm.PName(Namespace, "wsa", "From"),
			leaf("Address", p.From))
		env.AddHeader(ref)
	}
}

// FromEnvelope extracts the addressing properties present in the envelope.
func FromEnvelope(env *core.Envelope) Properties {
	get := func(local string) string {
		h := env.Header(bxdm.Name(Namespace, local))
		if h == nil {
			return ""
		}
		return headerText(h)
	}
	addr := func(local string) string {
		h := env.Header(bxdm.Name(Namespace, local))
		el, ok := h.(*bxdm.Element)
		if !ok {
			return ""
		}
		a := el.FirstChild(bxdm.Name(Namespace, "Address"))
		if a == nil {
			return ""
		}
		return headerText(a)
	}
	return Properties{
		To:        get("To"),
		Action:    get("Action"),
		MessageID: get("MessageID"),
		RelatesTo: get("RelatesTo"),
		ReplyTo:   addr("ReplyTo"),
		From:      addr("From"),
	}
}

func headerText(n bxdm.Node) string {
	switch x := n.(type) {
	case *bxdm.LeafElement:
		return x.Value.Text()
	case *bxdm.Element:
		return x.TextContent()
	default:
		return ""
	}
}

// Reply builds the reply properties for a received request: RelatesTo the
// request's MessageID, addressed to its ReplyTo.
func Reply(req Properties, action string) Properties {
	to := req.ReplyTo
	if to == "" {
		to = AnonymousAddress
	}
	return Properties{
		To:        to,
		Action:    action,
		MessageID: NewMessageID(),
		RelatesTo: req.MessageID,
	}
}
