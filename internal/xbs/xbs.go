// Package xbs implements the XBS streaming binary serializer that BXSA layers
// on (paper §4). XBS is a minimalistic format supporting 1-, 2-, 4- and
// 8-byte integers, 4- and 8-byte IEEE-754 floating-point numbers, and
// one-dimensional arrays of those. Every number is aligned to a multiple of
// its type's size, counted from the start of the stream, so that a large
// array in a file can be accessed with memory-mapped I/O without copying.
// Both little-endian and big-endian byte orders are supported.
package xbs

import (
	"errors"
	"fmt"
	"io"
	"math"
	"slices"
)

// ByteOrder selects the wire byte order of an XBS stream.
type ByteOrder uint8

const (
	LittleEndian ByteOrder = iota
	BigEndian
)

// Native is the byte order used by default for newly produced streams. The
// paper stores data in the producer's native order and records it per frame;
// we fix little-endian as the canonical producer order (the common case on
// x86/ARM servers) and let readers of either order decode it.
const Native = LittleEndian

func (o ByteOrder) String() string {
	if o == LittleEndian {
		return "little-endian"
	}
	return "big-endian"
}

// ErrBadAlignment is returned when a reader encounters non-zero padding
// bytes, which indicates a desynchronized stream.
var ErrBadAlignment = errors.New("xbs: non-zero padding byte")

var zeroPad [8]byte

// Writer serializes XBS values to an underlying io.Writer, tracking the
// absolute stream offset to implement alignment.
type Writer struct {
	w       io.Writer
	order   ByteOrder
	off     int64
	scratch [8]byte
}

// NewWriter returns a Writer emitting in the given byte order. The stream
// offset starts at base; pass 0 when the writer owns the whole stream, or the
// current container offset when embedding an XBS region inside another
// format (alignment is computed relative to the true stream start).
func NewWriter(w io.Writer, order ByteOrder, base int64) *Writer {
	return &Writer{w: w, order: order, off: base}
}

// Reset repoints the writer at out with a fresh base offset, keeping the
// struct (and its scratch space) for reuse; pooled encoders re-aim one
// writer at many array regions instead of allocating a Writer per array.
func (w *Writer) Reset(out io.Writer, order ByteOrder, base int64) {
	w.w, w.order, w.off = out, order, base
}

// Offset returns the number of bytes written so far, including the base.
func (w *Writer) Offset() int64 { return w.off }

// Order returns the writer's byte order.
func (w *Writer) Order() ByteOrder { return w.order }

// Align pads the stream with zero bytes until the offset is a multiple of
// size and returns the number of padding bytes written. size must be a power
// of two no larger than 8.
func (w *Writer) Align(size int) (int, error) {
	pad := padFor(w.off, size)
	if pad == 0 {
		return 0, nil
	}
	if err := w.writeRaw(zeroPad[:pad]); err != nil {
		return 0, err
	}
	return pad, nil
}

func padFor(off int64, size int) int {
	if size <= 1 {
		return 0
	}
	rem := int(off) & (size - 1)
	if rem == 0 {
		return 0
	}
	return size - rem
}

func (w *Writer) writeRaw(b []byte) error {
	n, err := w.w.Write(b)
	w.off += int64(n)
	return err
}

// WriteBytes writes raw octets with no alignment (used for strings, frame
// prefixes, and other byte-granular fields).
func (w *Writer) WriteBytes(b []byte) error { return w.writeRaw(b) }

// WriteUint8 writes a single byte.
func (w *Writer) WriteUint8(v uint8) error {
	w.scratch[0] = v
	return w.writeRaw(w.scratch[:1])
}

// WriteUint16 writes an aligned 2-byte unsigned integer.
func (w *Writer) WriteUint16(v uint16) error {
	if _, err := w.Align(2); err != nil {
		return err
	}
	if w.order == LittleEndian {
		w.scratch[0], w.scratch[1] = byte(v), byte(v>>8)
	} else {
		w.scratch[0], w.scratch[1] = byte(v>>8), byte(v)
	}
	return w.writeRaw(w.scratch[:2])
}

// WriteUint32 writes an aligned 4-byte unsigned integer.
func (w *Writer) WriteUint32(v uint32) error {
	if _, err := w.Align(4); err != nil {
		return err
	}
	putUint32(w.scratch[:4], v, w.order)
	return w.writeRaw(w.scratch[:4])
}

// WriteUint64 writes an aligned 8-byte unsigned integer.
func (w *Writer) WriteUint64(v uint64) error {
	if _, err := w.Align(8); err != nil {
		return err
	}
	putUint64(w.scratch[:8], v, w.order)
	return w.writeRaw(w.scratch[:8])
}

// WriteInt8 writes a single signed byte.
func (w *Writer) WriteInt8(v int8) error { return w.WriteUint8(uint8(v)) }

// WriteInt16 writes an aligned 2-byte signed integer.
func (w *Writer) WriteInt16(v int16) error { return w.WriteUint16(uint16(v)) }

// WriteInt32 writes an aligned 4-byte signed integer.
func (w *Writer) WriteInt32(v int32) error { return w.WriteUint32(uint32(v)) }

// WriteInt64 writes an aligned 8-byte signed integer.
func (w *Writer) WriteInt64(v int64) error { return w.WriteUint64(uint64(v)) }

// WriteFloat32 writes an aligned IEEE-754 single.
func (w *Writer) WriteFloat32(v float32) error { return w.WriteUint32(math.Float32bits(v)) }

// WriteFloat64 writes an aligned IEEE-754 double.
func (w *Writer) WriteFloat64(v float64) error { return w.WriteUint64(math.Float64bits(v)) }

func putUint32(b []byte, v uint32, o ByteOrder) {
	if o == LittleEndian {
		b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	} else {
		b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
	}
}

func putUint64(b []byte, v uint64, o ByteOrder) {
	if o == LittleEndian {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
	} else {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * (7 - i)))
		}
	}
}

func getUint32(b []byte, o ByteOrder) uint32 {
	if o == LittleEndian {
		return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	}
	return uint32(b[3]) | uint32(b[2])<<8 | uint32(b[1])<<16 | uint32(b[0])<<24
}

func getUint64(b []byte, o ByteOrder) uint64 {
	var v uint64
	if o == LittleEndian {
		for i := 7; i >= 0; i-- {
			v = v<<8 | uint64(b[i])
		}
	} else {
		for i := 0; i < 8; i++ {
			v = v<<8 | uint64(b[i])
		}
	}
	return v
}

// Reader deserializes XBS values, mirroring Writer's alignment rules.
type Reader struct {
	r       io.Reader
	order   ByteOrder
	off     int64
	scratch [8]byte
}

// NewReader returns a Reader decoding the given byte order, with the stream
// offset starting at base (see NewWriter).
func NewReader(r io.Reader, order ByteOrder, base int64) *Reader {
	return &Reader{r: r, order: order, off: base}
}

// Reset repoints the reader at in with a fresh base offset, keeping the
// struct for reuse (mirrors Writer.Reset).
func (r *Reader) Reset(in io.Reader, order ByteOrder, base int64) {
	r.r, r.order, r.off = in, order, base
}

// Offset returns the number of bytes consumed so far, including the base.
func (r *Reader) Offset() int64 { return r.off }

// Order returns the reader's byte order.
func (r *Reader) Order() ByteOrder { return r.order }

// SetOrder switches the byte order mid-stream. BXSA records byte order per
// frame, so a decoder may need to flip while reading one document.
func (r *Reader) SetOrder(o ByteOrder) { r.order = o }

func (r *Reader) readFull(b []byte) error {
	n, err := io.ReadFull(r.r, b)
	r.off += int64(n)
	return err
}

// Align consumes padding up to the next multiple of size, verifying the
// padding bytes are zero.
func (r *Reader) Align(size int) error {
	pad := padFor(r.off, size)
	if pad == 0 {
		return nil
	}
	if err := r.readFull(r.scratch[:pad]); err != nil {
		return err
	}
	for _, b := range r.scratch[:pad] {
		if b != 0 {
			return ErrBadAlignment
		}
	}
	return nil
}

// ReadBytes reads exactly len(b) raw octets.
func (r *Reader) ReadBytes(b []byte) error { return r.readFull(b) }

// ReadUint8 reads one byte.
func (r *Reader) ReadUint8() (uint8, error) {
	err := r.readFull(r.scratch[:1])
	return r.scratch[0], err
}

// ReadUint16 reads an aligned 2-byte unsigned integer.
func (r *Reader) ReadUint16() (uint16, error) {
	if err := r.Align(2); err != nil {
		return 0, err
	}
	if err := r.readFull(r.scratch[:2]); err != nil {
		return 0, err
	}
	if r.order == LittleEndian {
		return uint16(r.scratch[0]) | uint16(r.scratch[1])<<8, nil
	}
	return uint16(r.scratch[1]) | uint16(r.scratch[0])<<8, nil
}

// ReadUint32 reads an aligned 4-byte unsigned integer.
func (r *Reader) ReadUint32() (uint32, error) {
	if err := r.Align(4); err != nil {
		return 0, err
	}
	if err := r.readFull(r.scratch[:4]); err != nil {
		return 0, err
	}
	return getUint32(r.scratch[:4], r.order), nil
}

// ReadUint64 reads an aligned 8-byte unsigned integer.
func (r *Reader) ReadUint64() (uint64, error) {
	if err := r.Align(8); err != nil {
		return 0, err
	}
	if err := r.readFull(r.scratch[:8]); err != nil {
		return 0, err
	}
	return getUint64(r.scratch[:8], r.order), nil
}

// ReadInt8 reads one signed byte.
func (r *Reader) ReadInt8() (int8, error) { v, err := r.ReadUint8(); return int8(v), err }

// ReadInt16 reads an aligned 2-byte signed integer.
func (r *Reader) ReadInt16() (int16, error) { v, err := r.ReadUint16(); return int16(v), err }

// ReadInt32 reads an aligned 4-byte signed integer.
func (r *Reader) ReadInt32() (int32, error) { v, err := r.ReadUint32(); return int32(v), err }

// ReadInt64 reads an aligned 8-byte signed integer.
func (r *Reader) ReadInt64() (int64, error) { v, err := r.ReadUint64(); return int64(v), err }

// ReadFloat32 reads an aligned IEEE-754 single.
func (r *Reader) ReadFloat32() (float32, error) {
	v, err := r.ReadUint32()
	return math.Float32frombits(v), err
}

// ReadFloat64 reads an aligned IEEE-754 double.
func (r *Reader) ReadFloat64() (float64, error) {
	v, err := r.ReadUint64()
	return math.Float64frombits(v), err
}

// Primitive is the set of fundamental types XBS can pack: 1/2/4/8-byte
// integers (signed and unsigned) and 4/8-byte floats. It mirrors the set of
// types usable as the T in the paper's LeafElement<T> and ArrayElement<T>.
type Primitive interface {
	~int8 | ~int16 | ~int32 | ~int64 |
		~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// SizeOf reports the encoded byte size of a primitive type.
func SizeOf[T Primitive]() int {
	var z T
	switch any(z).(type) {
	case int8, uint8:
		return 1
	case int16, uint16:
		return 2
	case int32, uint32, float32:
		return 4
	default:
		return 8
	}
}

// WriteValue writes one aligned primitive value.
func WriteValue[T Primitive](w *Writer, v T) error {
	switch x := any(v).(type) {
	case int8:
		return w.WriteInt8(x)
	case int16:
		return w.WriteInt16(x)
	case int32:
		return w.WriteInt32(x)
	case int64:
		return w.WriteInt64(x)
	case uint8:
		return w.WriteUint8(x)
	case uint16:
		return w.WriteUint16(x)
	case uint32:
		return w.WriteUint32(x)
	case uint64:
		return w.WriteUint64(x)
	case float32:
		return w.WriteFloat32(x)
	case float64:
		return w.WriteFloat64(x)
	default:
		panic(fmt.Sprintf("xbs: unreachable primitive %T", v))
	}
}

// ReadValue reads one aligned primitive value.
func ReadValue[T Primitive](r *Reader) (T, error) {
	var z T
	switch any(z).(type) {
	case int8:
		v, err := r.ReadInt8()
		return T(v), err
	case int16:
		v, err := r.ReadInt16()
		return T(v), err
	case int32:
		v, err := r.ReadInt32()
		return T(v), err
	case int64:
		v, err := r.ReadInt64()
		return T(v), err
	case uint8:
		v, err := r.ReadUint8()
		return T(v), err
	case uint16:
		v, err := r.ReadUint16()
		return T(v), err
	case uint32:
		v, err := r.ReadUint32()
		return T(v), err
	case uint64:
		v, err := r.ReadUint64()
		return T(v), err
	case float32:
		v, err := r.ReadFloat32()
		return T(v), err
	case float64:
		v, err := r.ReadFloat64()
		return T(v), err
	default:
		panic(fmt.Sprintf("xbs: unreachable primitive %T", z))
	}
}

// WriteArray writes a one-dimensional array: a single alignment to the
// element size followed by the packed elements. The caller is responsible
// for having recorded the element count (BXSA stores it in the frame).
func WriteArray[T Primitive](w *Writer, a []T) error {
	size := SizeOf[T]()
	if _, err := w.Align(size); err != nil {
		return err
	}
	// Fast path: bulk-encode into a reusable buffer rather than one syscall
	// per element. This is what lets BXSA claim near-zero encoding overhead
	// for large arrays.
	const chunkElems = 4096
	buf := make([]byte, 0, chunkElems*size)
	for len(a) > 0 {
		n := len(a)
		if n > chunkElems {
			n = chunkElems
		}
		buf = buf[:0]
		for _, v := range a[:n] {
			buf = appendValue(buf, v, w.order)
		}
		if err := w.writeRaw(buf); err != nil {
			return err
		}
		a = a[n:]
	}
	return nil
}

// AppendArray appends the packed items of a to dst in byte order o and
// returns the extended slice. Unlike WriteArray it performs no alignment
// and allocates nothing beyond dst's growth, which is what the
// schema-compiled template path needs: it fills a pre-sized window of a
// cached skeleton, so per-call chunk buffers would dominate the alloc
// budget.
func AppendArray[T Primitive](dst []byte, a []T, o ByteOrder) []byte {
	for _, v := range a {
		dst = appendValue(dst, v, o)
	}
	return dst
}

// DecodeArray decodes n packed items in byte order o from the front of
// buf into a new slice — the in-memory counterpart of ReadArray, again
// without alignment or chunk buffers.
func DecodeArray[T Primitive](buf []byte, n int, o ByteOrder) ([]T, error) {
	size := SizeOf[T]()
	if n < 0 || n*size > len(buf) {
		return nil, fmt.Errorf("xbs: %d-item array needs %d bytes, buffer holds %d", n, n*size, len(buf))
	}
	out := make([]T, n)
	decodeInto(out, buf[:n*size], o)
	return out, nil
}

func appendValue[T Primitive](buf []byte, v T, o ByteOrder) []byte {
	switch x := any(v).(type) {
	case int8:
		return append(buf, byte(x))
	case uint8:
		return append(buf, x)
	case int16:
		return appendU16(buf, uint16(x), o)
	case uint16:
		return appendU16(buf, x, o)
	case int32:
		return appendU32(buf, uint32(x), o)
	case uint32:
		return appendU32(buf, x, o)
	case float32:
		return appendU32(buf, math.Float32bits(x), o)
	case int64:
		return appendU64(buf, uint64(x), o)
	case uint64:
		return appendU64(buf, x, o)
	case float64:
		return appendU64(buf, math.Float64bits(x), o)
	default:
		panic(fmt.Sprintf("xbs: unreachable primitive %T", v))
	}
}

func appendU16(buf []byte, v uint16, o ByteOrder) []byte {
	if o == LittleEndian {
		return append(buf, byte(v), byte(v>>8))
	}
	return append(buf, byte(v>>8), byte(v))
}

func appendU32(buf []byte, v uint32, o ByteOrder) []byte {
	var b [4]byte
	putUint32(b[:], v, o)
	return append(buf, b[:]...)
}

func appendU64(buf []byte, v uint64, o ByteOrder) []byte {
	var b [8]byte
	putUint64(b[:], v, o)
	return append(buf, b[:]...)
}

// ReadArray reads n packed elements written by WriteArray into a new slice.
func ReadArray[T Primitive](r *Reader, n int) ([]T, error) {
	size := SizeOf[T]()
	if err := r.Align(size); err != nil {
		return nil, err
	}
	out := make([]T, n)
	const chunkElems = 4096
	buf := make([]byte, min(n, chunkElems)*size)
	for i := 0; i < n; {
		c := n - i
		if c > chunkElems {
			c = chunkElems
		}
		if err := r.readFull(buf[:c*size]); err != nil {
			return nil, err
		}
		decodeInto(out[i:i+c], buf[:c*size], r.order)
		i += c
	}
	return out, nil
}

// ReadArrayGrow reads n packed elements like ReadArray, but grows the
// output slice batch-by-batch as data actually arrives instead of
// allocating all n elements up front. Streaming decoders use it: their
// element counts are bounded by a declared frame size rather than a
// materialized buffer, so a hostile count must not translate into a large
// allocation before the stream runs dry — here it costs at most one batch.
func ReadArrayGrow[T Primitive](r *Reader, n int) ([]T, error) {
	size := SizeOf[T]()
	if err := r.Align(size); err != nil {
		return nil, err
	}
	const chunkElems = 4096
	out := make([]T, 0, min(n, chunkElems))
	buf := make([]byte, min(n, chunkElems)*size)
	for i := 0; i < n; {
		c := n - i
		if c > chunkElems {
			c = chunkElems
		}
		if err := r.readFull(buf[:c*size]); err != nil {
			return nil, err
		}
		out = slices.Grow(out, c)[:i+c]
		decodeInto(out[i:i+c], buf[:c*size], r.order)
		i += c
	}
	return out, nil
}

func decodeInto[T Primitive](out []T, buf []byte, o ByteOrder) {
	var z T
	switch any(z).(type) {
	case int8:
		for i := range out {
			out[i] = T(int8(buf[i]))
		}
	case uint8:
		for i := range out {
			out[i] = T(buf[i])
		}
	case int16:
		for i := range out {
			out[i] = T(int16(getU16(buf[2*i:], o)))
		}
	case uint16:
		for i := range out {
			out[i] = T(getU16(buf[2*i:], o))
		}
	case int32:
		for i := range out {
			out[i] = T(int32(getUint32(buf[4*i:], o)))
		}
	case uint32:
		for i := range out {
			out[i] = T(getUint32(buf[4*i:], o))
		}
	case float32:
		for i := range out {
			out[i] = T(math.Float32frombits(getUint32(buf[4*i:], o)))
		}
	case int64:
		for i := range out {
			out[i] = T(int64(getUint64(buf[8*i:], o)))
		}
	case uint64:
		for i := range out {
			out[i] = T(getUint64(buf[8*i:], o))
		}
	case float64:
		for i := range out {
			out[i] = T(math.Float64frombits(getUint64(buf[8*i:], o)))
		}
	}
}

func getU16(b []byte, o ByteOrder) uint16 {
	if o == LittleEndian {
		return uint16(b[0]) | uint16(b[1])<<8
	}
	return uint16(b[1]) | uint16(b[0])<<8
}
