package xbs

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestScalarRoundTripBothOrders(t *testing.T) {
	for _, order := range []ByteOrder{LittleEndian, BigEndian} {
		var buf bytes.Buffer
		w := NewWriter(&buf, order, 0)
		if err := w.WriteUint8(0xab); err != nil {
			t.Fatal(err)
		}
		if err := w.WriteInt16(-12345); err != nil {
			t.Fatal(err)
		}
		if err := w.WriteUint32(0xdeadbeef); err != nil {
			t.Fatal(err)
		}
		if err := w.WriteInt64(-1 << 40); err != nil {
			t.Fatal(err)
		}
		if err := w.WriteFloat32(3.25); err != nil {
			t.Fatal(err)
		}
		if err := w.WriteFloat64(-2.5e300); err != nil {
			t.Fatal(err)
		}

		r := NewReader(bytes.NewReader(buf.Bytes()), order, 0)
		if v, err := r.ReadUint8(); err != nil || v != 0xab {
			t.Fatalf("%v: uint8 = %v, %v", order, v, err)
		}
		if v, err := r.ReadInt16(); err != nil || v != -12345 {
			t.Fatalf("%v: int16 = %v, %v", order, v, err)
		}
		if v, err := r.ReadUint32(); err != nil || v != 0xdeadbeef {
			t.Fatalf("%v: uint32 = %v, %v", order, v, err)
		}
		if v, err := r.ReadInt64(); err != nil || v != -1<<40 {
			t.Fatalf("%v: int64 = %v, %v", order, v, err)
		}
		if v, err := r.ReadFloat32(); err != nil || v != 3.25 {
			t.Fatalf("%v: float32 = %v, %v", order, v, err)
		}
		if v, err := r.ReadFloat64(); err != nil || v != -2.5e300 {
			t.Fatalf("%v: float64 = %v, %v", order, v, err)
		}
	}
}

func TestAlignment(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LittleEndian, 0)
	if err := w.WriteUint8(1); err != nil {
		t.Fatal(err)
	}
	// Offset is 1; a uint64 must be preceded by 7 padding bytes.
	if err := w.WriteUint64(42); err != nil {
		t.Fatal(err)
	}
	if got := buf.Len(); got != 16 {
		t.Fatalf("stream length = %d, want 16 (1 data + 7 pad + 8 data)", got)
	}
	for i := 1; i < 8; i++ {
		if buf.Bytes()[i] != 0 {
			t.Fatalf("padding byte %d = %#x, want 0", i, buf.Bytes()[i])
		}
	}
	if w.Offset() != 16 {
		t.Fatalf("Offset = %d, want 16", w.Offset())
	}
}

func TestAlignmentWithBase(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LittleEndian, 6) // pretend 6 container bytes precede us
	if err := w.WriteUint32(7); err != nil {
		t.Fatal(err)
	}
	// 6 → pad 2 → 8..12 holds the value.
	if buf.Len() != 6 {
		t.Fatalf("bytes written = %d, want 6 (2 pad + 4 data)", buf.Len())
	}
	r := NewReader(bytes.NewReader(buf.Bytes()), LittleEndian, 6)
	if v, err := r.ReadUint32(); err != nil || v != 7 {
		t.Fatalf("read back = %v, %v", v, err)
	}
}

func TestBadAlignmentDetected(t *testing.T) {
	// One data byte, then garbage where padding should be.
	data := []byte{0x01, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 0}
	r := NewReader(bytes.NewReader(data), LittleEndian, 0)
	if _, err := r.ReadUint8(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadUint64(); err != ErrBadAlignment {
		t.Fatalf("err = %v, want ErrBadAlignment", err)
	}
}

func TestWireFormatEndianness(t *testing.T) {
	var le, be bytes.Buffer
	if err := NewWriter(&le, LittleEndian, 0).WriteUint32(0x01020304); err != nil {
		t.Fatal(err)
	}
	if err := NewWriter(&be, BigEndian, 0).WriteUint32(0x01020304); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(le.Bytes(), []byte{4, 3, 2, 1}) {
		t.Errorf("LE bytes = %x", le.Bytes())
	}
	if !bytes.Equal(be.Bytes(), []byte{1, 2, 3, 4}) {
		t.Errorf("BE bytes = %x", be.Bytes())
	}
}

func roundTripArray[T Primitive](t *testing.T, in []T, order ByteOrder) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, order, 0)
	if err := w.WriteUint8(9); err != nil { // force misalignment first
		t.Fatal(err)
	}
	if err := WriteArray(w, in); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()), order, 0)
	if _, err := r.ReadUint8(); err != nil {
		t.Fatal(err)
	}
	out, err := ReadArray[T](r, len(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("order %v: elem %d = %v, want %v", order, i, out[i], in[i])
		}
	}
}

func TestArrayRoundTrip(t *testing.T) {
	for _, order := range []ByteOrder{LittleEndian, BigEndian} {
		roundTripArray(t, []int8{-1, 0, 127, -128}, order)
		roundTripArray(t, []uint8{0, 255, 7}, order)
		roundTripArray(t, []int16{-32768, 32767, 0}, order)
		roundTripArray(t, []uint16{0, 65535}, order)
		roundTripArray(t, []int32{-1 << 31, 1<<31 - 1, 42}, order)
		roundTripArray(t, []uint32{0, 1 << 31, 0xffffffff}, order)
		roundTripArray(t, []int64{-1 << 62, 1 << 62}, order)
		roundTripArray(t, []uint64{0, 1 << 63}, order)
		roundTripArray(t, []float32{0, -0, 1.5, float32(math.Inf(1))}, order)
		roundTripArray(t, []float64{math.Pi, -math.MaxFloat64, 1e-300}, order)
	}
}

func TestArrayLargerThanChunk(t *testing.T) {
	in := make([]float64, 10000)
	for i := range in {
		in[i] = float64(i) * 1.5
	}
	roundTripArray(t, in, LittleEndian)
}

func TestEmptyArray(t *testing.T) {
	roundTripArray(t, []float64{}, LittleEndian)
	roundTripArray(t, []int32{}, BigEndian)
}

func TestArrayPropertyFloat64(t *testing.T) {
	f := func(in []float64) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf, BigEndian, 0)
		if err := WriteArray(w, in); err != nil {
			return false
		}
		r := NewReader(bytes.NewReader(buf.Bytes()), BigEndian, 0)
		out, err := ReadArray[float64](r, len(in))
		if err != nil {
			return false
		}
		for i := range in {
			if math.Float64bits(in[i]) != math.Float64bits(out[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArrayPropertyInt32(t *testing.T) {
	f := func(in []int32) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf, LittleEndian, 0)
		if err := WriteArray(w, in); err != nil {
			return false
		}
		r := NewReader(bytes.NewReader(buf.Bytes()), LittleEndian, 0)
		out, err := ReadArray[int32](r, len(in))
		if err != nil {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGenericValueRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LittleEndian, 0)
	if err := WriteValue(w, int32(-7)); err != nil {
		t.Fatal(err)
	}
	if err := WriteValue(w, float64(6.5)); err != nil {
		t.Fatal(err)
	}
	if err := WriteValue(w, uint16(99)); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()), LittleEndian, 0)
	if v, err := ReadValue[int32](r); err != nil || v != -7 {
		t.Fatalf("int32 = %v, %v", v, err)
	}
	if v, err := ReadValue[float64](r); err != nil || v != 6.5 {
		t.Fatalf("float64 = %v, %v", v, err)
	}
	if v, err := ReadValue[uint16](r); err != nil || v != 99 {
		t.Fatalf("uint16 = %v, %v", v, err)
	}
}

func TestSizeOf(t *testing.T) {
	if SizeOf[int8]() != 1 || SizeOf[uint8]() != 1 {
		t.Error("1-byte sizes wrong")
	}
	if SizeOf[int16]() != 2 || SizeOf[uint16]() != 2 {
		t.Error("2-byte sizes wrong")
	}
	if SizeOf[int32]() != 4 || SizeOf[uint32]() != 4 || SizeOf[float32]() != 4 {
		t.Error("4-byte sizes wrong")
	}
	if SizeOf[int64]() != 8 || SizeOf[uint64]() != 8 || SizeOf[float64]() != 8 {
		t.Error("8-byte sizes wrong")
	}
}

func TestNaNPreserved(t *testing.T) {
	nan := math.Float64frombits(0x7ff8000000000001)
	var buf bytes.Buffer
	w := NewWriter(&buf, LittleEndian, 0)
	if err := w.WriteFloat64(nan); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()), LittleEndian, 0)
	v, err := r.ReadFloat64()
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(v) != 0x7ff8000000000001 {
		t.Fatalf("NaN payload not preserved: %x", math.Float64bits(v))
	}
}

func BenchmarkWriteFloat64Array(b *testing.B) {
	a := make([]float64, 4096)
	for i := range a {
		a[i] = float64(i)
	}
	b.SetBytes(int64(len(a) * 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := NewWriter(&buf, LittleEndian, 0)
		if err := WriteArray(w, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadFloat64Array(b *testing.B) {
	a := make([]float64, 4096)
	var buf bytes.Buffer
	if err := WriteArray(NewWriter(&buf, LittleEndian, 0), a); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(a) * 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewReader(bytes.NewReader(buf.Bytes()), LittleEndian, 0)
		if _, err := ReadArray[float64](r, len(a)); err != nil {
			b.Fatal(err)
		}
	}
}
