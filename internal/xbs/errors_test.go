package xbs

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// failWriter errors after n bytes, exercising every writer error path.
type failWriter struct {
	n   int
	err error
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, w.err
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriterErrorPropagation(t *testing.T) {
	sentinel := errors.New("disk full")
	ops := []func(w *Writer) error{
		func(w *Writer) error { return w.WriteUint8(1) },
		func(w *Writer) error { return w.WriteUint16(1) },
		func(w *Writer) error { return w.WriteUint32(1) },
		func(w *Writer) error { return w.WriteUint64(1) },
		func(w *Writer) error { return w.WriteFloat32(1) },
		func(w *Writer) error { return w.WriteFloat64(1) },
		func(w *Writer) error { return w.WriteBytes([]byte{1, 2, 3}) },
		func(w *Writer) error { return WriteValue(w, int64(5)) },
		func(w *Writer) error { return WriteArray(w, []float64{1, 2, 3}) },
	}
	for i, op := range ops {
		w := NewWriter(&failWriter{n: 0, err: sentinel}, LittleEndian, 0)
		if err := op(w); !errors.Is(err, sentinel) {
			t.Errorf("op %d: err = %v, want sentinel", i, err)
		}
	}
}

func TestWriterErrorMidAlignment(t *testing.T) {
	sentinel := errors.New("gone")
	w := NewWriter(&failWriter{n: 1, err: sentinel}, LittleEndian, 0)
	if err := w.WriteUint8(1); err != nil {
		t.Fatal(err)
	}
	// Alignment padding write fails.
	if err := w.WriteUint64(2); !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
}

func TestReaderTruncation(t *testing.T) {
	ops := []func(r *Reader) error{
		func(r *Reader) error { _, err := r.ReadUint8(); return err },
		func(r *Reader) error { _, err := r.ReadUint16(); return err },
		func(r *Reader) error { _, err := r.ReadUint32(); return err },
		func(r *Reader) error { _, err := r.ReadUint64(); return err },
		func(r *Reader) error { _, err := r.ReadFloat32(); return err },
		func(r *Reader) error { _, err := r.ReadFloat64(); return err },
		func(r *Reader) error { _, err := ReadValue[int16](r); return err },
		func(r *Reader) error { _, err := ReadArray[float64](r, 4); return err },
		func(r *Reader) error { return r.ReadBytes(make([]byte, 8)) },
	}
	for i, op := range ops {
		r := NewReader(bytes.NewReader(nil), BigEndian, 0)
		err := op(r)
		if err == nil {
			t.Errorf("op %d: no error on empty input", i)
		}
	}
	// Partial input → unexpected EOF, not silence.
	r := NewReader(bytes.NewReader([]byte{1, 2, 3}), LittleEndian, 0)
	if _, err := r.ReadUint64(); !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		t.Errorf("partial read err = %v", err)
	}
}

func TestReaderSetOrderMidStream(t *testing.T) {
	var buf bytes.Buffer
	wle := NewWriter(&buf, LittleEndian, 0)
	if err := wle.WriteUint32(0x01020304); err != nil {
		t.Fatal(err)
	}
	wbe := NewWriter(&buf, BigEndian, int64(buf.Len()))
	if err := wbe.WriteUint32(0x01020304); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()), LittleEndian, 0)
	v1, err := r.ReadUint32()
	if err != nil || v1 != 0x01020304 {
		t.Fatalf("LE read = %x, %v", v1, err)
	}
	r.SetOrder(BigEndian)
	v2, err := r.ReadUint32()
	if err != nil || v2 != 0x01020304 {
		t.Fatalf("BE read after SetOrder = %x, %v", v2, err)
	}
	if r.Order() != BigEndian {
		t.Error("Order not updated")
	}
}

func TestOffsetsTracked(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LittleEndian, 3)
	if w.Offset() != 3 {
		t.Error("base offset ignored")
	}
	w.WriteUint8(1) // off 4
	w.WriteUint32(2)
	if w.Offset() != 12 { // 4 → pad 0 (4%4==0) → 8... wait: off 4 is aligned → +4 = 8
		// Recompute: base 3 +1 byte = 4; aligned for u32; +4 = 8.
		if w.Offset() != 8 {
			t.Errorf("writer offset = %d", w.Offset())
		}
	}
	r := NewReader(bytes.NewReader(buf.Bytes()), LittleEndian, 3)
	r.ReadUint8()
	r.ReadUint32()
	if r.Offset() != w.Offset() {
		t.Errorf("reader offset %d != writer offset %d", r.Offset(), w.Offset())
	}
}

func TestOrderString(t *testing.T) {
	if LittleEndian.String() != "little-endian" || BigEndian.String() != "big-endian" {
		t.Error("ByteOrder.String wrong")
	}
}
