// Package transform implements XDM-based tree transformation over bXDM —
// the "XSLT" slot in the paper's Figure 3 stack: rewriting runs on the
// logical structure, so the same transformation applies to documents that
// arrived as textual XML or as BXSA.
//
// Besides a generic rewriting engine, the package provides the
// transformations that make the paper's unification practical in the field:
// Retype and PromoteArrays upgrade schema-less textual documents (numbers
// as character data, arrays as repeated elements) into the typed, packed
// bXDM form that BXSA encodes with near-zero overhead — "bXDM-ification"
// of legacy XML.
package transform

import (
	"strconv"
	"strings"

	"bxsoap/internal/bxdm"
)

// Action tells Rewrite what to do with a visited node.
type Action struct {
	kind        actionKind
	replacement []bxdm.Node
}

type actionKind int

const (
	actKeep actionKind = iota
	actRemove
	actReplace
)

// Keep retains the node and rewrites its children.
func Keep() Action { return Action{kind: actKeep} }

// Remove deletes the node (and its subtree).
func Remove() Action { return Action{kind: actRemove} }

// Replace substitutes the node with the given nodes (not recursed into).
func Replace(nodes ...bxdm.Node) Action {
	return Action{kind: actReplace, replacement: nodes}
}

// RewriteFunc decides the fate of each node, visited top-down.
type RewriteFunc func(n bxdm.Node) Action

// Rewrite produces a transformed deep copy of the tree; the input is never
// mutated. Replacement nodes are adopted as-is (clone them yourself if they
// alias the input).
func Rewrite(n bxdm.Node, fn RewriteFunc) bxdm.Node {
	out := rewriteNode(n, fn)
	if len(out) == 1 {
		return out[0]
	}
	if len(out) == 0 {
		return nil
	}
	// Multiple roots: wrap in a document.
	return &bxdm.Document{Children: out}
}

func rewriteNode(n bxdm.Node, fn RewriteFunc) []bxdm.Node {
	switch act := fn(n); act.kind {
	case actRemove:
		return nil
	case actReplace:
		return act.replacement
	}
	switch x := n.(type) {
	case *bxdm.Document:
		d := &bxdm.Document{}
		for _, c := range x.Children {
			d.Children = append(d.Children, rewriteNode(c, fn)...)
		}
		return []bxdm.Node{d}
	case *bxdm.Element:
		e := &bxdm.Element{ElemCommon: cloneCommon(&x.ElemCommon)}
		for _, c := range x.Children {
			e.Children = append(e.Children, rewriteNode(c, fn)...)
		}
		return []bxdm.Node{e}
	default:
		return []bxdm.Node{bxdm.Clone(n)}
	}
}

func cloneCommon(c *bxdm.ElemCommon) bxdm.ElemCommon {
	out := bxdm.ElemCommon{Name: c.Name}
	out.NamespaceDecls = append([]bxdm.NamespaceDecl(nil), c.NamespaceDecls...)
	out.Attributes = append([]bxdm.Attribute(nil), c.Attributes...)
	return out
}

// StripComments removes all comment nodes.
func StripComments(n bxdm.Node) bxdm.Node {
	return Rewrite(n, func(n bxdm.Node) Action {
		if n.Kind() == bxdm.KindComment {
			return Remove()
		}
		return Keep()
	})
}

// StripPIs removes all processing instructions.
func StripPIs(n bxdm.Node) bxdm.Node {
	return Rewrite(n, func(n bxdm.Node) Action {
		if n.Kind() == bxdm.KindPI {
			return Remove()
		}
		return Keep()
	})
}

// RenameNamespace rewrites every QName and namespace declaration from one
// URI to another (schema-version migration).
func RenameNamespace(n bxdm.Node, from, to string) bxdm.Node {
	fix := func(c *bxdm.ElemCommon) {
		if c.Name.Space == from {
			c.Name.Space = to
		}
		for i := range c.Attributes {
			if c.Attributes[i].Name.Space == from {
				c.Attributes[i].Name.Space = to
			}
		}
		for i := range c.NamespaceDecls {
			if c.NamespaceDecls[i].URI == from {
				c.NamespaceDecls[i].URI = to
			}
		}
	}
	out := bxdm.Clone(n)
	bxdm.Walk(out, func(n bxdm.Node) error {
		switch x := n.(type) {
		case *bxdm.Element:
			fix(&x.ElemCommon)
		case *bxdm.LeafElement:
			fix(&x.ElemCommon)
		case *bxdm.ArrayElement:
			fix(&x.ElemCommon)
		}
		return nil
	})
	return out
}

// Canonicalize merges adjacent text siblings and drops empty text nodes —
// the text-canonical form over which the XML round-trip guarantee is
// stated.
func Canonicalize(n bxdm.Node) bxdm.Node {
	out := bxdm.Clone(n)
	bxdm.Walk(out, func(n bxdm.Node) error {
		if el, ok := n.(*bxdm.Element); ok {
			el.Children = canonicalChildren(el.Children)
		}
		if d, ok := n.(*bxdm.Document); ok {
			d.Children = canonicalChildren(d.Children)
		}
		return nil
	})
	return out
}

func canonicalChildren(children []bxdm.Node) []bxdm.Node {
	var out []bxdm.Node
	for _, c := range children {
		t, ok := c.(*bxdm.Text)
		if !ok {
			out = append(out, c)
			continue
		}
		if t.Data == "" {
			continue
		}
		if len(out) > 0 {
			if prev, ok := out[len(out)-1].(*bxdm.Text); ok {
				prev.Data += t.Data
				continue
			}
		}
		out = append(out, t)
	}
	return out
}

// Retype converts generic elements whose entire content is one numeric or
// boolean token into typed LeafElements (int64, float64, or bool). This is
// the schema-less version of the typing that xsi:type hints provide: it
// upgrades plain parsed XML into the typed model so that BXSA encodes the
// values natively.
func Retype(n bxdm.Node) bxdm.Node {
	return Rewrite(n, func(n bxdm.Node) Action {
		el, ok := n.(*bxdm.Element)
		if !ok {
			return Keep()
		}
		if len(el.Children) != 1 {
			return Keep()
		}
		t, ok := el.Children[0].(*bxdm.Text)
		if !ok {
			return Keep()
		}
		v, ok := parseToken(t.Data)
		if !ok {
			return Keep()
		}
		leaf := &bxdm.LeafElement{ElemCommon: cloneCommon(&el.ElemCommon), Value: v}
		return Replace(leaf)
	})
}

// parseToken recognizes a single numeric or boolean token, tolerating
// surrounding whitespace (which Retype normalizes away).
func parseToken(s string) (bxdm.Value, bool) {
	tok := strings.TrimSpace(s)
	if tok == "" {
		return bxdm.Value{}, false
	}
	switch tok {
	case "true":
		return bxdm.BoolValue(true), true
	case "false":
		return bxdm.BoolValue(false), true
	}
	if i, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return bxdm.Int64Value(i), true
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return bxdm.Float64Value(f), true
	}
	return bxdm.Value{}, false
}

// PromoteArrays collapses runs of at least minRun consecutive sibling leaf
// elements that share a name and a numeric type into a single packed
// ArrayElement named after the run's element name. Apply after Retype to
// turn `<v><i>1</i><i>2</i>…</v>` (the textual rendering of an array) back
// into one ArrayElement with packed storage.
func PromoteArrays(n bxdm.Node, minRun int) bxdm.Node {
	if minRun < 2 {
		minRun = 2
	}
	out := bxdm.Clone(n)
	bxdm.Walk(out, func(n bxdm.Node) error {
		if el, ok := n.(*bxdm.Element); ok {
			el.Children = promoteRuns(el.Children, minRun)
		}
		return nil
	})
	return out
}

func promoteRuns(children []bxdm.Node, minRun int) []bxdm.Node {
	var out []bxdm.Node
	i := 0
	for i < len(children) {
		run := leafRun(children[i:])
		if run < minRun {
			out = append(out, children[i])
			i++
			continue
		}
		first := children[i].(*bxdm.LeafElement)
		code := first.Value.Type()
		var data bxdm.ArrayData
		switch code {
		case bxdm.TInt64:
			items := make([]int64, run)
			for j := 0; j < run; j++ {
				items[j] = children[i+j].(*bxdm.LeafElement).Value.Int64()
			}
			data = bxdm.Array[int64]{Items: items}
		case bxdm.TFloat64:
			items := make([]float64, run)
			for j := 0; j < run; j++ {
				items[j] = children[i+j].(*bxdm.LeafElement).Value.Float64()
			}
			data = bxdm.Array[float64]{Items: items}
		case bxdm.TInt32:
			items := make([]int32, run)
			for j := 0; j < run; j++ {
				items[j] = int32(children[i+j].(*bxdm.LeafElement).Value.Int64())
			}
			data = bxdm.Array[int32]{Items: items}
		default:
			out = append(out, children[i])
			i++
			continue
		}
		arr := &bxdm.ArrayElement{
			ElemCommon: bxdm.ElemCommon{Name: first.Name},
			Data:       data,
		}
		out = append(out, arr)
		i += run
	}
	return out
}

// leafRun measures how many consecutive leading children are leaf elements
// sharing the first one's name and type, carrying no attributes or
// namespace declarations of their own (those would be lost in packing).
func leafRun(children []bxdm.Node) int {
	first, ok := children[0].(*bxdm.LeafElement)
	if !ok || len(first.Attributes) > 0 || len(first.NamespaceDecls) > 0 {
		return 0
	}
	code := first.Value.Type()
	switch code {
	case bxdm.TInt64, bxdm.TFloat64, bxdm.TInt32:
	default:
		return 0
	}
	n := 0
	for _, c := range children {
		l, ok := c.(*bxdm.LeafElement)
		if !ok || !l.Name.Matches(first.Name) || l.Value.Type() != code ||
			len(l.Attributes) > 0 || len(l.NamespaceDecls) > 0 {
			break
		}
		n++
	}
	return n
}
