package transform

import (
	"testing"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/bxsa"
	"bxsoap/internal/xmltext"
)

func parse(t *testing.T, src string) *bxdm.Document {
	t.Helper()
	doc, err := xmltext.Parse([]byte(src), xmltext.DecodeOptions{DropInterElementWhitespace: true})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestRewriteKeepIsDeepCopy(t *testing.T) {
	doc := parse(t, `<r a="1"><c>text</c></r>`)
	out := Rewrite(doc, func(bxdm.Node) Action { return Keep() })
	if !bxdm.Equal(doc, out) {
		t.Fatal("identity rewrite changed the tree")
	}
	out.(*bxdm.Document).Root().(*bxdm.Element).SetAttr(bxdm.LocalName("a"), bxdm.StringValue("2"))
	if v, _ := doc.Root().Attr(bxdm.LocalName("a")); v.Text() != "1" {
		t.Fatal("rewrite shares state with input")
	}
}

func TestRewriteRemoveAndReplace(t *testing.T) {
	doc := parse(t, `<r><kill/><keep/><swap/></r>`)
	out := Rewrite(doc, func(n bxdm.Node) Action {
		el, ok := n.(*bxdm.Element)
		if !ok {
			return Keep()
		}
		switch el.Name.Local {
		case "kill":
			return Remove()
		case "swap":
			return Replace(bxdm.NewLeaf(bxdm.LocalName("swapped"), int32(1)),
				bxdm.NewText("tail"))
		default:
			return Keep()
		}
	})
	root := out.(*bxdm.Document).Root().(*bxdm.Element)
	if len(root.Children) != 3 {
		t.Fatalf("children = %d, want keep+swapped+tail", len(root.Children))
	}
	if root.Children[0].(*bxdm.Element).Name.Local != "keep" {
		t.Error("keep lost")
	}
	if root.Children[1].Kind() != bxdm.KindLeafElement {
		t.Error("replacement missing")
	}
}

func TestStripCommentsAndPIs(t *testing.T) {
	doc := parse(t, `<r><!--c--><a/><?pi d?><!--c2--></r>`)
	out := StripComments(StripPIs(doc))
	root := out.(*bxdm.Document).Root().(*bxdm.Element)
	if len(root.Children) != 1 || root.Children[0].Kind() != bxdm.KindElement {
		t.Errorf("children after strip = %v", root.Children)
	}
}

func TestRenameNamespace(t *testing.T) {
	doc := parse(t, `<a:r xmlns:a="urn:v1" a:x="1"><a:c/></a:r>`)
	out := RenameNamespace(doc, "urn:v1", "urn:v2")
	root := out.(*bxdm.Document).Root().(*bxdm.Element)
	if root.Name.Space != "urn:v2" {
		t.Error("element namespace not renamed")
	}
	if _, ok := root.Attr(bxdm.Name("urn:v2", "x")); !ok {
		t.Error("attribute namespace not renamed")
	}
	if root.NamespaceDecls[0].URI != "urn:v2" {
		t.Error("declaration not renamed")
	}
	if root.ChildElements()[0].ElemName().Space != "urn:v2" {
		t.Error("child namespace not renamed")
	}
	// Original untouched.
	if doc.Root().ElemName().Space != "urn:v1" {
		t.Error("input mutated")
	}
}

func TestCanonicalize(t *testing.T) {
	root := bxdm.NewElement(bxdm.LocalName("r"),
		bxdm.NewText("a"), bxdm.NewText(""), bxdm.NewText("b"),
		bxdm.NewElement(bxdm.LocalName("c")),
		bxdm.NewText(""),
	)
	out := Canonicalize(root).(*bxdm.Element)
	if len(out.Children) != 2 {
		t.Fatalf("children = %d, want merged text + element", len(out.Children))
	}
	if out.Children[0].(*bxdm.Text).Data != "ab" {
		t.Errorf("merged text = %q", out.Children[0].(*bxdm.Text).Data)
	}
}

func TestRetype(t *testing.T) {
	doc := parse(t, `<r><i>42</i><f>2.5</f><b>true</b><s>hello</s><pad> 7 </pad><mixed>1<x/>2</mixed></r>`)
	out := Retype(doc).(*bxdm.Document)
	root := out.Root().(*bxdm.Element)
	get := func(name string) bxdm.Node {
		for _, c := range root.Children {
			if el, ok := c.(bxdm.ElementNode); ok && el.ElemName().Local == name {
				return c
			}
		}
		return nil
	}
	if l, ok := get("i").(*bxdm.LeafElement); !ok || l.Value.Type() != bxdm.TInt64 || l.Value.Int64() != 42 {
		t.Errorf("i = %v", get("i"))
	}
	if l, ok := get("f").(*bxdm.LeafElement); !ok || l.Value.Type() != bxdm.TFloat64 || l.Value.Float64() != 2.5 {
		t.Errorf("f = %v", get("f"))
	}
	if l, ok := get("b").(*bxdm.LeafElement); !ok || !l.Value.Bool() {
		t.Errorf("b = %v", get("b"))
	}
	if get("s").Kind() != bxdm.KindElement {
		t.Error("string content wrongly retyped")
	}
	if l, ok := get("pad").(*bxdm.LeafElement); !ok || l.Value.Int64() != 7 {
		t.Errorf("padded token not retyped: %v", get("pad"))
	}
	if get("mixed").Kind() != bxdm.KindElement {
		t.Error("mixed content wrongly retyped")
	}
}

func TestPromoteArrays(t *testing.T) {
	doc := parse(t, `<r><v>1</v><v>2</v><v>3</v><other/><v>4</v></r>`)
	typed := Retype(doc)
	out := PromoteArrays(typed, 3).(*bxdm.Document)
	root := out.Root().(*bxdm.Element)
	if len(root.Children) != 3 {
		t.Fatalf("children = %d, want array+other+leaf", len(root.Children))
	}
	arr, ok := root.Children[0].(*bxdm.ArrayElement)
	if !ok {
		t.Fatalf("first child = %T", root.Children[0])
	}
	items, ok := bxdm.Items[int64](arr.Data)
	if !ok || len(items) != 3 || items[2] != 3 {
		t.Errorf("promoted items = %v", arr.Data)
	}
	// The short trailing run stays a leaf.
	if root.Children[2].Kind() != bxdm.KindLeafElement {
		t.Errorf("trailing leaf = %v", root.Children[2].Kind())
	}
}

func TestPromoteArraysSkipsAttributedLeaves(t *testing.T) {
	root := bxdm.NewElement(bxdm.LocalName("r"))
	for i := 0; i < 4; i++ {
		l := bxdm.NewLeaf(bxdm.LocalName("v"), int64(i))
		l.SetAttr(bxdm.LocalName("id"), bxdm.Int32Value(int32(i)))
		root.Append(l)
	}
	out := PromoteArrays(root, 2).(*bxdm.Element)
	if len(out.Children) != 4 {
		t.Error("attributed leaves were packed (attributes would be lost)")
	}
}

// The paper's motivating pipeline: a legacy textual XML document with
// repeated numeric elements becomes a typed, packed tree whose BXSA
// encoding approaches native size.
func TestBXDMificationShrinksBXSA(t *testing.T) {
	src := `<data>`
	for i := 0; i < 500; i++ {
		src += `<v>` + itoa(i) + `.5</v>`
	}
	src += `</data>`
	doc := parse(t, src)

	genericBin, err := bxsa.Marshal(doc, bxsa.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	upgraded := PromoteArrays(Retype(doc), 4)
	typedBin, err := bxsa.Marshal(upgraded, bxsa.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(typedBin) >= len(genericBin)*3/5 {
		t.Errorf("bXDM-ification saved too little: generic %d B, typed %d B",
			len(genericBin), len(typedBin))
	}
	// And the upgraded tree round-trips through BXSA.
	back, err := bxsa.Parse(typedBin)
	if err != nil {
		t.Fatal(err)
	}
	if !bxdm.Equal(upgraded, back) {
		t.Error("upgraded tree does not round trip")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
