package xpath

import (
	"testing"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/bxsa"
	"bxsoap/internal/xmltext"
)

const docXML = `<cat:catalog xmlns:cat="urn:catalog" version="3">
<cat:entry id="a1"><cat:status>ok</cat:status><cat:price>10</cat:price></cat:entry>
<cat:entry id="b2"><cat:status>bad</cat:status><cat:price>20</cat:price></cat:entry>
<cat:entry id="c3"><cat:status>ok</cat:status><cat:price>30</cat:price></cat:entry>
<cat:misc>note</cat:misc>
</cat:catalog>`

var catNS = Namespaces{"c": "urn:catalog"}

func catalog(t *testing.T) *bxdm.Document {
	t.Helper()
	doc, err := xmltext.Parse([]byte(docXML), xmltext.DecodeOptions{DropInterElementWhitespace: true})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func sel(t *testing.T, doc bxdm.Node, expr string) []Item {
	t.Helper()
	q, err := Compile(expr, catNS)
	if err != nil {
		t.Fatalf("Compile(%q): %v", expr, err)
	}
	return q.Select(doc)
}

func TestChildAxis(t *testing.T) {
	doc := catalog(t)
	if got := sel(t, doc, "/c:catalog/c:entry"); len(got) != 3 {
		t.Errorf("entries = %d, want 3", len(got))
	}
	if got := sel(t, doc, "/c:catalog/c:misc"); len(got) != 1 || got[0].String() != "note" {
		t.Errorf("misc = %v", got)
	}
	if got := sel(t, doc, "/c:catalog/nonexistent"); len(got) != 0 {
		t.Errorf("ghost = %d", len(got))
	}
}

func TestDescendantAxis(t *testing.T) {
	doc := catalog(t)
	if got := sel(t, doc, "//c:status"); len(got) != 3 {
		t.Errorf("statuses = %d", len(got))
	}
	if got := sel(t, doc, "//c:entry/c:price"); len(got) != 3 {
		t.Errorf("prices = %d", len(got))
	}
}

func TestWildcardAndText(t *testing.T) {
	doc := catalog(t)
	if got := sel(t, doc, "/c:catalog/*"); len(got) != 4 {
		t.Errorf("children = %d, want 4", len(got))
	}
	if got := sel(t, doc, "//c:misc/text()"); len(got) != 1 || got[0].String() != "note" {
		t.Errorf("text = %v", got)
	}
	if got := sel(t, doc, "/c:catalog/node()"); len(got) != 4 {
		t.Errorf("node() = %d", len(got))
	}
}

func TestAttributeAxis(t *testing.T) {
	doc := catalog(t)
	got := sel(t, doc, "/c:catalog/@version")
	if len(got) != 1 || got[0].String() != "3" {
		t.Fatalf("@version = %v", got)
	}
	ids := sel(t, doc, "//c:entry/@id")
	if len(ids) != 3 || ids[0].String() != "a1" || ids[2].String() != "c3" {
		t.Errorf("ids = %v", ids)
	}
	all := sel(t, doc, "/c:catalog/@*")
	if len(all) != 1 {
		t.Errorf("@* = %d", len(all))
	}
}

func TestPredicates(t *testing.T) {
	doc := catalog(t)
	if got := sel(t, doc, "//c:entry[2]"); len(got) != 1 || attrOf(t, got[0], "id") != "b2" {
		t.Errorf("[2] = %v", got)
	}
	if got := sel(t, doc, "//c:entry[last()]"); len(got) != 1 || attrOf(t, got[0], "id") != "c3" {
		t.Errorf("[last()] = %v", got)
	}
	if got := sel(t, doc, "//c:entry[@id='b2']"); len(got) != 1 {
		t.Errorf("[@id='b2'] = %d", len(got))
	}
	if got := sel(t, doc, "//c:entry[@id!='b2']"); len(got) != 2 {
		t.Errorf("[@id!='b2'] = %d", len(got))
	}
	if got := sel(t, doc, "//c:entry[@id]"); len(got) != 3 {
		t.Errorf("[@id] = %d", len(got))
	}
	if got := sel(t, doc, "//c:entry[c:status='ok']"); len(got) != 2 {
		t.Errorf("[status='ok'] = %d", len(got))
	}
	if got := sel(t, doc, "//c:entry[c:status='ok'][2]"); len(got) != 1 || attrOf(t, got[0], "id") != "c3" {
		t.Errorf("stacked predicates = %v", got)
	}
	if got := sel(t, doc, "//c:entry[9]"); len(got) != 0 {
		t.Errorf("[9] = %d", len(got))
	}
}

func attrOf(t *testing.T, it Item, name string) string {
	t.Helper()
	el, ok := it.Node.(bxdm.ElementNode)
	if !ok {
		t.Fatalf("item is %T", it.Node)
	}
	v, _ := el.Attr(bxdm.LocalName(name))
	return v.Text()
}

func TestFirst(t *testing.T) {
	doc := catalog(t)
	q := MustCompile("//c:price", catNS)
	it, ok := q.First(doc)
	if !ok || it.String() != "10" {
		t.Errorf("First = %v, %v", it, ok)
	}
	if _, ok := MustCompile("//ghost", nil).First(doc); ok {
		t.Error("First found a ghost")
	}
}

func TestSameQueryOverBXSADecodedTree(t *testing.T) {
	// The Figure 3 point: the identical compiled query runs against a tree
	// that arrived as binary XML.
	doc := catalog(t)
	data, err := bxsa.Marshal(doc, bxsa.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	binDoc, err := bxsa.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	q := MustCompile("//c:entry[c:status='ok']/c:price", catNS)
	xmlRes := q.Select(doc)
	binRes := q.Select(binDoc)
	if len(xmlRes) != 2 || len(binRes) != 2 {
		t.Fatalf("result sizes %d/%d", len(xmlRes), len(binRes))
	}
	for i := range xmlRes {
		if xmlRes[i].String() != binRes[i].String() {
			t.Errorf("result %d: %q vs %q", i, xmlRes[i].String(), binRes[i].String())
		}
	}
}

func TestQueryOverTypedNodes(t *testing.T) {
	root := bxdm.NewElement(bxdm.LocalName("data"),
		bxdm.NewLeaf(bxdm.LocalName("count"), int32(42)),
		bxdm.NewArray(bxdm.LocalName("vals"), []float64{1.5, 2.5}),
	)
	if it, ok := MustCompile("/data/count", nil).First(root); !ok || it.String() != "42" {
		t.Errorf("leaf string value = %v", it)
	}
	if it, ok := MustCompile("/data/vals", nil).First(root); !ok || it.String() != "1.5 2.5" {
		t.Errorf("array string value = %v", it)
	}
}

func TestDescendantOrSelfSemantics(t *testing.T) {
	// //x from an element named x includes the context element itself.
	root := bxdm.NewElement(bxdm.LocalName("x"), bxdm.NewElement(bxdm.LocalName("x")))
	if got := MustCompile("//x", nil).Select(root); len(got) != 2 {
		t.Errorf("//x = %d, want 2 (self + child)", len(got))
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"",
		"/",
		"a//",
		"//@id",
		"a[",
		"a[1",
		"a[@]",
		"a[@x=unquoted]",
		"a[child]",
		"unknown:prefix",
		"a/b[&&]",
		"@text()",
	}
	for _, expr := range bad {
		if _, err := Compile(expr, nil); err == nil {
			t.Errorf("Compile(%q) succeeded", expr)
		}
	}
}

func TestRelativeQuery(t *testing.T) {
	doc := catalog(t)
	entries := sel(t, doc, "//c:entry")
	q := MustCompile("c:price", catNS)
	it, ok := q.First(entries[1].Node)
	if !ok || it.String() != "20" {
		t.Errorf("relative price = %v", it)
	}
}

func BenchmarkDescendantQuery(b *testing.B) {
	doc, err := xmltext.Parse([]byte(docXML), xmltext.DecodeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	q := MustCompile("//c:entry[c:status='ok']/c:price", catNS)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := q.Select(doc); len(got) != 2 {
			b.Fatal("wrong result")
		}
	}
}
