// Package xpath implements an XPath 1.0 subset over the bXDM data model.
// Figure 3 of the paper places "XPath Query" among the XDM-based processing
// layers that work identically whether the document arrived as textual XML
// or as BXSA — because both decode into the same bXDM tree. The engine
// supports the child, descendant-or-self, and attribute axes, name and
// wildcard node tests, text()/node() tests, and positional, attribute,
// existence, and string-comparison predicates.
//
// Supported forms (examples):
//
//	/soap:Envelope/soap:Body/*
//	//lead:values
//	data/meta/@version
//	//entry[3]
//	//entry[@id='x7']
//	//entry[status='ok']
//	//entry[@id]
//	//entry[last()]
//	//text()
package xpath

import (
	"fmt"
	"strconv"
	"strings"

	"bxsoap/internal/bxdm"
)

// Query is a compiled expression.
type Query struct {
	steps []step
	root  bool // absolute path
}

// Item is one query result: either a node or an attribute of a node.
type Item struct {
	Node bxdm.Node
	Attr *bxdm.Attribute
}

// String returns the XPath string value of the item.
func (it Item) String() string {
	if it.Attr != nil {
		return it.Attr.Value.Text()
	}
	return nodeString(it.Node)
}

func nodeString(n bxdm.Node) string {
	switch x := n.(type) {
	case *bxdm.Element:
		return x.TextContent()
	case *bxdm.LeafElement:
		return x.Value.Text()
	case *bxdm.ArrayElement:
		return string(x.Data.AppendAllLexical(nil, " "))
	case *bxdm.Text:
		return x.Data
	case *bxdm.Comment:
		return x.Data
	case *bxdm.PI:
		return x.Data
	case *bxdm.Document:
		var sb strings.Builder
		for _, c := range x.Children {
			sb.WriteString(nodeString(c))
		}
		return sb.String()
	default:
		return ""
	}
}

type axis int

const (
	axisChild axis = iota
	axisDescendant
	axisAttribute
)

type testKind int

const (
	testName testKind = iota
	testAny
	testText
	testNode
)

type step struct {
	axis  axis
	kind  testKind
	name  bxdm.QName
	preds []predicate
}

type predKind int

const (
	predIndex predKind = iota
	predLast
	predAttrExists
	predAttrEquals
	predChildEquals
)

type predicate struct {
	kind  predKind
	index int
	name  bxdm.QName
	value string
	neq   bool
}

// Namespaces maps prefixes to URIs for resolving QNames in expressions.
type Namespaces map[string]string

// Compile parses an expression. Prefixes are resolved against ns (which may
// be nil for prefix-free queries).
func Compile(expr string, ns Namespaces) (*Query, error) {
	p := &qparser{src: expr, ns: ns}
	q, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("xpath: %w (in %q at offset %d)", err, expr, p.pos)
	}
	return q, nil
}

// MustCompile is Compile that panics on error, for package-level queries.
func MustCompile(expr string, ns Namespaces) *Query {
	q, err := Compile(expr, ns)
	if err != nil {
		panic(err)
	}
	return q
}

// Select runs the query against a context node and returns all matches in
// document order. An absolute query (leading '/') evaluated against a bare
// element treats that element as the document element.
func (q *Query) Select(ctx bxdm.Node) []Item {
	if q.root {
		if _, ok := ctx.(*bxdm.Document); !ok {
			ctx = &bxdm.Document{Children: []bxdm.Node{ctx}}
		}
	}
	cur := []Item{{Node: ctx}}
	for _, st := range q.steps {
		var next []Item
		for _, it := range cur {
			if it.Attr != nil {
				continue // attributes have no children
			}
			next = append(next, applyStep(it.Node, st)...)
		}
		cur = dedup(next)
	}
	return cur
}

// First returns the first match, or a zero Item and false.
func (q *Query) First(ctx bxdm.Node) (Item, bool) {
	res := q.Select(ctx)
	if len(res) == 0 {
		return Item{}, false
	}
	return res[0], true
}

func dedup(items []Item) []Item {
	seen := make(map[any]bool, len(items))
	out := items[:0]
	for _, it := range items {
		var key any
		if it.Attr != nil {
			key = it.Attr
		} else {
			key = it.Node
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, it)
	}
	return out
}

func applyStep(ctx bxdm.Node, st step) []Item {
	var candidates []Item
	switch st.axis {
	case axisChild:
		for _, c := range children(ctx) {
			if matchesTest(c, st) {
				candidates = append(candidates, Item{Node: c})
			}
		}
	case axisDescendant:
		bxdm.Walk(ctx, func(n bxdm.Node) error {
			if n != ctx && matchesTest(n, st) {
				candidates = append(candidates, Item{Node: n})
			}
			return nil
		})
		// descendant-or-self includes the context node itself.
		if matchesTest(ctx, st) {
			candidates = append([]Item{{Node: ctx}}, candidates...)
		}
	case axisAttribute:
		if el, ok := ctx.(bxdm.ElementNode); ok {
			for i, a := range el.Attrs() {
				if st.kind == testAny || (st.kind == testName && a.Name.Matches(st.name)) {
					attrs := el.Attrs()
					candidates = append(candidates, Item{Node: ctx, Attr: &attrs[i]})
				}
			}
		}
	}
	for _, pred := range st.preds {
		candidates = filterPred(candidates, pred)
	}
	return candidates
}

func children(n bxdm.Node) []bxdm.Node {
	switch x := n.(type) {
	case *bxdm.Document:
		return x.Children
	case *bxdm.Element:
		return x.Children
	default:
		return nil
	}
}

func matchesTest(n bxdm.Node, st step) bool {
	switch st.kind {
	case testNode:
		return true
	case testText:
		return n.Kind() == bxdm.KindText
	case testAny:
		return n.Kind().IsElement()
	default: // testName
		el, ok := n.(bxdm.ElementNode)
		return ok && el.ElemName().Matches(st.name)
	}
}

func filterPred(items []Item, p predicate) []Item {
	switch p.kind {
	case predIndex:
		if p.index < 1 || p.index > len(items) {
			return nil
		}
		return items[p.index-1 : p.index]
	case predLast:
		if len(items) == 0 {
			return nil
		}
		return items[len(items)-1:]
	case predAttrExists:
		var out []Item
		for _, it := range items {
			if el, ok := it.Node.(bxdm.ElementNode); ok && it.Attr == nil {
				if _, ok := el.Attr(p.name); ok {
					out = append(out, it)
				}
			}
		}
		return out
	case predAttrEquals:
		var out []Item
		for _, it := range items {
			if el, ok := it.Node.(bxdm.ElementNode); ok && it.Attr == nil {
				if v, ok := el.Attr(p.name); ok && (v.Text() == p.value) != p.neq {
					out = append(out, it)
				}
			}
		}
		return out
	case predChildEquals:
		var out []Item
		for _, it := range items {
			for _, c := range children(it.Node) {
				if el, ok := c.(bxdm.ElementNode); ok && el.ElemName().Matches(p.name) {
					if (nodeString(c) == p.value) != p.neq {
						out = append(out, it)
						break
					}
				}
			}
		}
		return out
	}
	return items
}

// ---------------------------------------------------------------------------
// Expression parser

type qparser struct {
	src string
	pos int
	ns  Namespaces
}

func (p *qparser) eof() bool  { return p.pos >= len(p.src) }
func (p *qparser) peek() byte { return p.src[p.pos] }
func (p *qparser) advance()   { p.pos++ }

func (p *qparser) parse() (*Query, error) {
	q := &Query{}
	if strings.TrimSpace(p.src) == "" {
		return nil, fmt.Errorf("empty expression")
	}
	if !p.eof() && p.peek() == '/' {
		q.root = true
	}
	first := true
	for !p.eof() {
		ax := axisChild
		if p.peek() == '/' {
			p.advance()
			if !p.eof() && p.peek() == '/' {
				p.advance()
				ax = axisDescendant
			}
		} else if !first {
			return nil, fmt.Errorf("expected '/'")
		}
		if p.eof() {
			return nil, fmt.Errorf("trailing '/'")
		}
		st, err := p.parseStep(ax)
		if err != nil {
			return nil, err
		}
		q.steps = append(q.steps, st)
		first = false
	}
	if len(q.steps) == 0 {
		return nil, fmt.Errorf("no steps")
	}
	return q, nil
}

func (p *qparser) parseStep(ax axis) (step, error) {
	st := step{axis: ax}
	if !p.eof() && p.peek() == '@' {
		if ax == axisDescendant {
			return st, fmt.Errorf("//@attr is not supported")
		}
		p.advance()
		st.axis = axisAttribute
	}
	if p.eof() {
		return st, fmt.Errorf("expected node test")
	}
	switch {
	case p.peek() == '*':
		p.advance()
		st.kind = testAny
	case strings.HasPrefix(p.src[p.pos:], "text()"):
		p.pos += len("text()")
		st.kind = testText
	case strings.HasPrefix(p.src[p.pos:], "node()"):
		p.pos += len("node()")
		st.kind = testNode
	default:
		name, err := p.parseQName()
		if err != nil {
			return st, err
		}
		st.kind = testName
		st.name = name
	}
	if st.axis == axisAttribute && (st.kind == testText || st.kind == testNode) {
		return st, fmt.Errorf("invalid attribute test")
	}
	for !p.eof() && p.peek() == '[' {
		pred, err := p.parsePredicate()
		if err != nil {
			return st, err
		}
		st.preds = append(st.preds, pred)
	}
	return st, nil
}

func isNameByte(b byte) bool {
	return b == '_' || b == '-' || b == '.' ||
		(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9') || b >= 0x80
}

func (p *qparser) parseQName() (bxdm.QName, error) {
	start := p.pos
	for !p.eof() && (isNameByte(p.peek()) || p.peek() == ':') {
		p.advance()
	}
	raw := p.src[start:p.pos]
	if raw == "" {
		return bxdm.QName{}, fmt.Errorf("expected name")
	}
	prefix, local := "", raw
	if i := strings.IndexByte(raw, ':'); i >= 0 {
		prefix, local = raw[:i], raw[i+1:]
	}
	if local == "" {
		return bxdm.QName{}, fmt.Errorf("empty local name in %q", raw)
	}
	if prefix == "" {
		return bxdm.LocalName(local), nil
	}
	uri, ok := p.ns[prefix]
	if !ok {
		return bxdm.QName{}, fmt.Errorf("unbound prefix %q", prefix)
	}
	return bxdm.PName(uri, prefix, local), nil
}

func (p *qparser) parsePredicate() (predicate, error) {
	p.advance() // '['
	if p.eof() {
		return predicate{}, fmt.Errorf("unterminated predicate")
	}
	var pred predicate
	switch {
	case p.peek() >= '0' && p.peek() <= '9':
		start := p.pos
		for !p.eof() && p.peek() >= '0' && p.peek() <= '9' {
			p.advance()
		}
		n, err := strconv.Atoi(p.src[start:p.pos])
		if err != nil {
			return pred, err
		}
		pred = predicate{kind: predIndex, index: n}
	case strings.HasPrefix(p.src[p.pos:], "last()"):
		p.pos += len("last()")
		pred = predicate{kind: predLast}
	case p.peek() == '@':
		p.advance()
		name, err := p.parseQName()
		if err != nil {
			return pred, err
		}
		pred = predicate{kind: predAttrExists, name: name}
		if cmp, val, neq, err := p.tryComparison(); err != nil {
			return pred, err
		} else if cmp {
			pred = predicate{kind: predAttrEquals, name: name, value: val, neq: neq}
		}
	default:
		name, err := p.parseQName()
		if err != nil {
			return pred, err
		}
		cmp, val, neq, err := p.tryComparison()
		if err != nil {
			return pred, err
		}
		if !cmp {
			return pred, fmt.Errorf("element predicate requires comparison")
		}
		pred = predicate{kind: predChildEquals, name: name, value: val, neq: neq}
	}
	if p.eof() || p.peek() != ']' {
		return pred, fmt.Errorf("expected ']'")
	}
	p.advance()
	return pred, nil
}

// tryComparison parses an optional ='literal' or !='literal'.
func (p *qparser) tryComparison() (found bool, value string, neq bool, err error) {
	if p.eof() {
		return false, "", false, nil
	}
	switch {
	case p.peek() == '=':
		p.advance()
	case p.peek() == '!' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '=':
		p.pos += 2
		neq = true
	default:
		return false, "", false, nil
	}
	if p.eof() || (p.peek() != '\'' && p.peek() != '"') {
		return false, "", false, fmt.Errorf("expected quoted literal after comparison")
	}
	quote := p.peek()
	p.advance()
	start := p.pos
	for !p.eof() && p.peek() != quote {
		p.advance()
	}
	if p.eof() {
		return false, "", false, fmt.Errorf("unterminated string literal")
	}
	value = p.src[start:p.pos]
	p.advance()
	return true, value, neq, nil
}
