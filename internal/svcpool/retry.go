package svcpool

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"bxsoap/internal/obs"
)

// RetryPolicy shapes the backoff between attempts of a retrying call.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget for Call/Send (first try
	// included). Default 3; 1 (or negative) disables retry.
	MaxAttempts int
	// BaseBackoff seeds the exponential schedule: the wait before retry k
	// is BaseBackoff·2^(k-1), capped at MaxBackoff. Default 20ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the schedule. Default 1s.
	MaxBackoff time.Duration
	// Jitter spreads each wait uniformly over ±Jitter fraction of itself,
	// decorrelating retry storms across callers. Default 0.25; negative
	// disables jitter.
	Jitter float64
}

func (r RetryPolicy) withDefaults() RetryPolicy {
	if r.MaxAttempts == 0 {
		r.MaxAttempts = 3
	}
	if r.BaseBackoff == 0 {
		r.BaseBackoff = 20 * time.Millisecond
	}
	if r.MaxBackoff == 0 {
		r.MaxBackoff = time.Second
	}
	if r.Jitter == 0 {
		r.Jitter = 0.25
	}
	return r
}

// backoff computes the wait before retry attempt k (k ≥ 1).
func (r RetryPolicy) backoff(k int) time.Duration {
	d := r.BaseBackoff
	for i := 1; i < k && d < r.MaxBackoff; i++ {
		d *= 2
	}
	if d > r.MaxBackoff {
		d = r.MaxBackoff
	}
	if r.Jitter > 0 {
		// rand's top-level functions are safe for concurrent use.
		d += time.Duration((2*rand.Float64() - 1) * r.Jitter * float64(d))
	}
	return d
}

// BreakerPolicy configures the pool's consecutive-failure circuit breaker.
type BreakerPolicy struct {
	// Threshold is how many consecutive transport-level failures open the
	// circuit. Default 8; negative disables the breaker.
	Threshold int
	// Cooldown is how long an open circuit rejects calls before letting a
	// single probe through (half-open). Default 2s.
	Cooldown time.Duration
}

func (b BreakerPolicy) withDefaults() BreakerPolicy {
	if b.Threshold == 0 {
		b.Threshold = 8
	}
	if b.Cooldown == 0 {
		b.Cooldown = 2 * time.Second
	}
	return b
}

// ErrCircuitOpen is returned while the breaker is rejecting calls after
// too many consecutive transport failures.
var ErrCircuitOpen = errors.New("svcpool: circuit open (peer failing)")

const (
	brkClosed = iota
	brkOpen
	brkHalfOpen
)

// breaker is a minimal consecutive-failure circuit breaker: Threshold
// straight transport failures open it; after Cooldown one probe call is
// admitted, and its outcome closes or reopens the circuit.
type breaker struct {
	policy BreakerPolicy
	obs    *obs.Observer

	mu          sync.Mutex
	state       int
	consecutive int
	openedAt    time.Time
}

// allow gates one call attempt; a nil error admits it. probe reports that
// the admitted call is the single half-open probe: the caller MUST settle
// it with success, failure, or abandon(probe) on every exit path — an
// unsettled probe would leave the breaker half-open, rejecting all traffic
// forever.
func (b *breaker) allow() (probe bool, err error) {
	if b.policy.Threshold < 0 {
		return false, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brkClosed:
		return false, nil
	case brkOpen:
		if time.Since(b.openedAt) < b.policy.Cooldown {
			return false, ErrCircuitOpen
		}
		b.state = brkHalfOpen // admit exactly one probe
		b.obs.Inc(obs.BreakerProbes)
		b.obs.Event(obs.EvBreakerProbe, "cooldown elapsed; admitting half-open probe")
		return true, nil
	default: // brkHalfOpen: a probe is already in flight
		return false, ErrCircuitOpen
	}
}

// success records a working transport (including SOAP faults, which prove
// the wire is fine) and closes the circuit.
func (b *breaker) success() {
	if b.policy.Threshold < 0 {
		return
	}
	b.mu.Lock()
	if b.state != brkClosed {
		b.obs.Inc(obs.BreakerClosed)
		b.obs.Event(obs.EvBreakerClosed, "transport recovered; circuit closed")
	}
	b.state = brkClosed
	b.consecutive = 0
	b.mu.Unlock()
}

// failure records a transport-level failure; at Threshold consecutive
// failures (or on a failed half-open probe) the circuit opens.
func (b *breaker) failure() {
	if b.policy.Threshold < 0 {
		return
	}
	b.mu.Lock()
	b.consecutive++
	if b.state == brkHalfOpen || b.consecutive >= b.policy.Threshold {
		if b.state != brkOpen {
			b.obs.Inc(obs.BreakerOpened)
			b.obs.Event(obs.EvBreakerOpened, "consecutive transport failures reached threshold")
		}
		b.state = brkOpen
		b.openedAt = time.Now()
	}
	b.mu.Unlock()
}

// abandon settles a half-open probe that exited without a transport
// verdict — the caller's context expired, the pool closed, or the failure
// was payload-level rather than transport-level. The circuit reverts to
// open with a refreshed cooldown so a future call gets to probe again;
// without this an abandoned probe would wedge the breaker half-open.
func (b *breaker) abandon(probe bool) {
	if !probe || b.policy.Threshold < 0 {
		return
	}
	b.mu.Lock()
	if b.state == brkHalfOpen {
		// A revert, not a fresh trip: the probe left without a verdict, so
		// the circuit returns to open without counting a new opening.
		b.state = brkOpen
		b.openedAt = time.Now()
	}
	b.mu.Unlock()
}
