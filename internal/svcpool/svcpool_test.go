package svcpool

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/core"
	"bxsoap/internal/netsim"
	"bxsoap/internal/tcpbind"
)

// fakeBinding is a scriptable loopback core.Binding: every request is
// echoed back as its own response, and the next receive can be forced to
// fail with a given error.
type fakeBinding struct {
	mu       sync.Mutex
	pending  []byte
	ct       string
	failNext error
	sends    int
	closed   bool
}

func (f *fakeBinding) SendRequest(_ context.Context, payload *core.Payload, ct string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sends++
	f.pending = append(f.pending[:0], payload.Bytes()...)
	f.ct = ct
	return nil
}

func (f *fakeBinding) ReceiveResponse(_ context.Context) (*core.Payload, string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failNext != nil {
		err := f.failNext
		f.failNext = nil
		return nil, "", err
	}
	return core.NewPayloadFrom(f.pending), f.ct, nil
}

func (f *fakeBinding) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	return nil
}

func (f *fakeBinding) sendCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sends
}

func testEnvelope() *core.Envelope {
	return core.NewEnvelope(bxdm.NewLeaf(bxdm.LocalName("x"), int32(7)))
}

// fakeFactory tracks every binding it has handed out.
type fakeFactory struct {
	mu       sync.Mutex
	bindings []*fakeBinding
}

func (ff *fakeFactory) factory(context.Context) (*core.Engine[core.BXSAEncoding, *fakeBinding], error) {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	b := &fakeBinding{}
	ff.bindings = append(ff.bindings, b)
	return core.NewEngine(core.BXSAEncoding{}, b), nil
}

// TestPoisonedConnNeverReissued is the pool's core invariant: a connection
// that returns a transport-level error is retired — closed, never handed
// out again — and the retry transparently lands on a replacement.
func TestPoisonedConnNeverReissued(t *testing.T) {
	ff := &fakeFactory{}
	p := New(ff.factory, Config{MaxConns: 1})
	defer p.Close()
	ctx := context.Background()

	if _, err := p.Call(ctx, testEnvelope()); err != nil {
		t.Fatal(err)
	}
	first := ff.bindings[0]
	first.mu.Lock()
	first.failNext = fmt.Errorf("boom: %w", io.ErrUnexpectedEOF)
	first.mu.Unlock()

	// The failure retires the conn; the retry must run on a fresh one.
	if _, err := p.Call(ctx, testEnvelope()); err != nil {
		t.Fatalf("retry should have recovered on a fresh conn: %v", err)
	}
	if !first.closed {
		t.Error("failed binding was not closed")
	}
	sendsAtFailure := first.sendCount()
	for i := 0; i < 10; i++ {
		if _, err := p.Call(ctx, testEnvelope()); err != nil {
			t.Fatal(err)
		}
	}
	if got := first.sendCount(); got != sendsAtFailure {
		t.Errorf("poisoned binding carried %d more exchanges after retirement", got-sendsAtFailure)
	}
	st := p.Stats()
	if st.Dials != 2 || st.Retires != 1 || st.Retries != 1 {
		t.Errorf("stats = %+v, want Dials 2, Retires 1, Retries 1", st)
	}
}

// TestFaultIsNotRetried: a SOAP fault proves the transport works — the
// call must not burn retries, and the connection must stay in the pool.
func TestFaultIsNotRetried(t *testing.T) {
	fault := &core.Fault{Code: core.FaultServer, String: "nope"}
	env, err := core.NewCodec(core.BXSAEncoding{}).EncodeBytes(fault.Envelope())
	if err != nil {
		t.Fatal(err)
	}
	pf := New(func(context.Context) (*core.Engine[core.BXSAEncoding, *faultBinding], error) {
		return core.NewEngine(core.BXSAEncoding{}, &faultBinding{payload: env}), nil
	}, Config{MaxConns: 1})
	defer pf.Close()
	_, err = pf.Call(context.Background(), testEnvelope())
	var f *core.Fault
	if !errors.As(err, &f) {
		t.Fatalf("want *core.Fault, got %v", err)
	}
	st := pf.Stats()
	if st.Retries != 0 {
		t.Errorf("fault was retried %d times", st.Retries)
	}
	if st.Retires != 0 {
		t.Errorf("fault retired a healthy conn (%d retires)", st.Retires)
	}
}

// faultBinding always answers with a fixed (fault) payload.
type faultBinding struct{ payload []byte }

func (f *faultBinding) SendRequest(context.Context, *core.Payload, string) error { return nil }
func (f *faultBinding) ReceiveResponse(context.Context) (*core.Payload, string, error) {
	return core.NewPayloadFrom(f.payload), core.BXSAEncoding{}.ContentType(), nil
}
func (f *faultBinding) Close() error { return nil }

// TestBreakerOpensAndRecovers: consecutive dial failures open the circuit
// (fast-fail), and a successful probe after the cooldown closes it.
func TestBreakerOpensAndRecovers(t *testing.T) {
	var healthy atomic.Bool
	ff := &fakeFactory{}
	factory := func(ctx context.Context) (*core.Engine[core.BXSAEncoding, *fakeBinding], error) {
		if !healthy.Load() {
			return nil, fmt.Errorf("dial: %w", syscall.ECONNREFUSED)
		}
		return ff.factory(ctx)
	}
	p := New(factory, Config{
		MaxConns: 1,
		Retry:    RetryPolicy{MaxAttempts: 1},
		Breaker:  BreakerPolicy{Threshold: 3, Cooldown: 30 * time.Millisecond},
	})
	defer p.Close()
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := p.Call(ctx, testEnvelope()); err == nil {
			t.Fatal("expected dial failure")
		}
	}
	if _, err := p.Call(ctx, testEnvelope()); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen after %d failures, got %v", 3, err)
	}
	if p.Stats().Rejected == 0 {
		t.Error("rejected counter not incremented")
	}
	healthy.Store(true)
	time.Sleep(40 * time.Millisecond) // past cooldown: next call is the probe
	if _, err := p.Call(ctx, testEnvelope()); err != nil {
		t.Fatalf("probe after cooldown should succeed: %v", err)
	}
	if _, err := p.Call(ctx, testEnvelope()); err != nil {
		t.Fatalf("circuit should be closed again: %v", err)
	}
}

// TestBackpressure: MaxInflight callers are admitted, the next one blocks
// and times out on its own context instead of dialing beyond the bound.
func TestBackpressure(t *testing.T) {
	release := make(chan struct{})
	blocking := &gateBinding{release: release}
	p := New(func(context.Context) (*core.Engine[core.BXSAEncoding, *gateBinding], error) {
		return core.NewEngine(core.BXSAEncoding{}, blocking), nil
	}, Config{MaxConns: 1, MaxInflight: 1, Retry: RetryPolicy{MaxAttempts: 1}})
	defer p.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Call(context.Background(), testEnvelope())
	}()
	// Wait until the first call is inside the gate.
	select {
	case <-blocking.entered():
	case <-time.After(2 * time.Second):
		t.Fatal("first call never started")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := p.Call(ctx, testEnvelope()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked caller: want DeadlineExceeded, got %v", err)
	}
	if got := p.Stats().Dials; got != 1 {
		t.Errorf("backpressure breached: %d dials for a 1-conn pool", got)
	}
	close(release)
	wg.Wait()
}

// gateBinding blocks ReceiveResponse until released.
type gateBinding struct {
	release chan struct{}
	once    sync.Once
	in      chan struct{}
	mu      sync.Mutex
	pending []byte
	ct      string
}

func (g *gateBinding) entered() chan struct{} {
	g.once.Do(func() { g.in = make(chan struct{}, 16) })
	return g.in
}

func (g *gateBinding) SendRequest(_ context.Context, payload *core.Payload, ct string) error {
	g.mu.Lock()
	g.pending, g.ct = append(g.pending[:0], payload.Bytes()...), ct
	g.mu.Unlock()
	return nil
}

func (g *gateBinding) ReceiveResponse(ctx context.Context) (*core.Payload, string, error) {
	select {
	case g.entered() <- struct{}{}:
	default:
	}
	select {
	case <-g.release:
	case <-ctx.Done():
		return nil, "", ctx.Err()
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return core.NewPayloadFrom(g.pending), g.ct, nil
}

func (g *gateBinding) Close() error { return nil }

// TestIdleReapAndLifetimeRotation: idle connections are reaped after
// IdleTimeout, and a connection past MaxLifetime is rotated at checkout.
func TestIdleReapAndLifetimeRotation(t *testing.T) {
	ff := &fakeFactory{}
	p := New(ff.factory, Config{MaxConns: 2, IdleTimeout: 30 * time.Millisecond})
	defer p.Close()
	ctx := context.Background()
	if _, err := p.Call(ctx, testEnvelope()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().Retires == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	st := p.Stats()
	if st.Retires != 1 || st.Live != 0 {
		t.Errorf("idle conn not reaped: %+v", st)
	}

	pl := New(ff.factory, Config{MaxConns: 1, IdleTimeout: -1, MaxLifetime: 25 * time.Millisecond})
	defer pl.Close()
	if _, err := pl.Call(ctx, testEnvelope()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	if _, err := pl.Call(ctx, testEnvelope()); err != nil {
		t.Fatal(err)
	}
	if st := pl.Stats(); st.Dials != 2 {
		t.Errorf("lifetime rotation: want 2 dials, got %+v", st)
	}
}

// TestCallTimeoutRetiresConn exercises the integration invariant end to
// end over a real framed TCP connection: a per-call deadline that expires
// mid-exchange poisons the tcpbind connection, the pool retires it, and
// the next call runs on a fresh dial — the desynchronized stream is never
// reused.
func TestCallTimeoutRetiresConn(t *testing.T) {
	var slow atomic.Bool
	l, err := tcpbind.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := core.NewServer(core.BXSAEncoding{}, l,
		func(_ context.Context, req *core.Envelope) (*core.Envelope, error) {
			if slow.Load() {
				time.Sleep(300 * time.Millisecond)
			}
			return core.NewEnvelope(bxdm.NewLeaf(bxdm.LocalName("ok"), int32(1))), nil
		})
	go srv.Serve()
	defer srv.Close()

	p := New(func(context.Context) (*core.Engine[core.BXSAEncoding, *tcpbind.Binding], error) {
		return core.NewEngine(core.BXSAEncoding{}, tcpbind.New(tcpbind.NetDialer, l.Addr().String())), nil
	}, Config{MaxConns: 1, CallTimeout: 60 * time.Millisecond, Retry: RetryPolicy{MaxAttempts: 1}})
	defer p.Close()
	ctx := context.Background()

	if _, err := p.Call(ctx, testEnvelope()); err != nil {
		t.Fatal(err)
	}
	slow.Store(true)
	if _, err := p.Call(ctx, testEnvelope()); !core.IsTransportError(err) {
		t.Fatalf("want transport-class timeout error, got %v", err)
	}
	slow.Store(false)
	if _, err := p.Call(ctx, testEnvelope()); err != nil {
		t.Fatalf("fresh conn after timeout: %v", err)
	}
	st := p.Stats()
	if st.Dials != 2 || st.Retires != 1 {
		t.Errorf("timed-out conn not retired+replaced: %+v", st)
	}
}

// TestStressSharedPool: 64 goroutines share a 4-connection pool over a
// netsim-shaped dialer against a real BXSA/TCP server. Run under -race.
func TestStressSharedPool(t *testing.T) {
	nw := netsim.New(netsim.Profile{Name: "fastlan", RTT: 50 * time.Microsecond})
	l, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var served atomic.Int64
	srv := core.NewServer(core.BXSAEncoding{}, tcpbind.NewListener(l),
		func(_ context.Context, req *core.Envelope) (*core.Envelope, error) {
			served.Add(1)
			return core.NewEnvelope(bxdm.NewLeaf(bxdm.LocalName("n"), served.Load())), nil
		})
	go srv.Serve()
	defer srv.Close()

	p := New(func(context.Context) (*core.Engine[core.BXSAEncoding, *tcpbind.Binding], error) {
		return core.NewEngine(core.BXSAEncoding{}, tcpbind.New(nw.Dial, l.Addr().String())), nil
	}, Config{MaxConns: 4, MaxInflight: 64, CallTimeout: 10 * time.Second})
	defer p.Close()

	const goroutines, perG = 64, 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				resp, err := p.Call(context.Background(), testEnvelope())
				if err != nil {
					errs <- err
					return
				}
				if resp.Body() == nil {
					errs <- errors.New("empty response body")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := served.Load(); got != goroutines*perG {
		t.Errorf("server saw %d calls, want %d", got, goroutines*perG)
	}
	st := p.Stats()
	if st.Dials > 4 {
		t.Errorf("pool bound breached: %d dials for MaxConns=4", st.Dials)
	}
	if st.Reuses == 0 {
		t.Error("no connection reuse under contention")
	}
	if st.Live > 4 {
		t.Errorf("live connections %d exceed MaxConns", st.Live)
	}
}

// TestPoolClosed: calls after Close fail fast with ErrPoolClosed.
func TestPoolClosed(t *testing.T) {
	ff := &fakeFactory{}
	p := New(ff.factory, Config{MaxConns: 1})
	if _, err := p.Call(context.Background(), testEnvelope()); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := p.Call(context.Background(), testEnvelope()); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("want ErrPoolClosed, got %v", err)
	}
	if !ff.bindings[0].closed {
		t.Error("idle conn not closed on pool Close")
	}
}

// TestBreakerAbandonedProbe: a half-open probe that exits without a
// transport verdict must settle the breaker back to open (fresh cooldown),
// not leave it half-open rejecting every future call.
func TestBreakerAbandonedProbe(t *testing.T) {
	b := breaker{policy: BreakerPolicy{Threshold: 1, Cooldown: 10 * time.Millisecond}.withDefaults()}
	b.failure() // threshold 1: opens immediately
	if _, err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open circuit should reject, got %v", err)
	}

	time.Sleep(15 * time.Millisecond)
	probe, err := b.allow()
	if err != nil || !probe {
		t.Fatalf("post-cooldown call should be the probe, got probe=%v err=%v", probe, err)
	}
	// The probe exits with no success/failure (caller cancelled, pool
	// closed, or payload-level error).
	b.abandon(probe)

	// Back to open: in-cooldown calls reject, but the circuit is not wedged —
	// after another cooldown a new probe is admitted.
	if _, err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("abandoned probe should reopen the circuit, got %v", err)
	}
	time.Sleep(15 * time.Millisecond)
	probe, err = b.allow()
	if err != nil || !probe {
		t.Fatalf("breaker wedged after abandoned probe: probe=%v err=%v", probe, err)
	}
	b.success()
	if probe, err := b.allow(); err != nil || probe {
		t.Fatalf("closed circuit should admit plain calls, got probe=%v err=%v", probe, err)
	}

	// abandon from a non-probe caller must never disturb the state.
	b.abandon(false)
	if _, err := b.allow(); err != nil {
		t.Fatalf("abandon(false) disturbed a closed circuit: %v", err)
	}
}

// TestAbandonedProbeDoesNotWedgePool reproduces the blackholed-peer
// scenario end to end: the circuit opens, the half-open probe dies on the
// caller's own deadline (no transport verdict recorded), and the pool must
// still recover once the peer comes back instead of returning
// ErrCircuitOpen forever.
func TestAbandonedProbeDoesNotWedgePool(t *testing.T) {
	release := make(chan struct{})
	var dials atomic.Int64
	factory := func(context.Context) (*core.Engine[core.BXSAEncoding, *gateBinding], error) {
		if dials.Add(1) == 1 {
			return nil, fmt.Errorf("dial: %w", syscall.ECONNREFUSED)
		}
		return core.NewEngine(core.BXSAEncoding{}, &gateBinding{release: release}), nil
	}
	p := New(factory, Config{
		MaxConns: 1,
		Retry:    RetryPolicy{MaxAttempts: 1},
		Breaker:  BreakerPolicy{Threshold: 1, Cooldown: 20 * time.Millisecond},
	})
	defer p.Close()

	// One dial failure opens the circuit (threshold 1); the next call is
	// rejected outright.
	if _, err := p.Call(context.Background(), testEnvelope()); err == nil {
		t.Fatal("expected dial failure")
	}
	if _, err := p.Call(context.Background(), testEnvelope()); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen, got %v", err)
	}

	// Past cooldown the next call is the probe. The peer blackholes the
	// exchange and the caller's own deadline fires first — the exact path
	// that used to leave the breaker half-open forever.
	time.Sleep(30 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := p.Call(ctx, testEnvelope()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("probe should die on caller deadline, got %v", err)
	}

	// The peer recovers; after another cooldown the pool must admit a new
	// probe and succeed.
	close(release)
	time.Sleep(30 * time.Millisecond)
	if _, err := p.Call(context.Background(), testEnvelope()); err != nil {
		t.Fatalf("pool wedged after abandoned probe: %v", err)
	}
}

// TestCloseRacingPutLeaksNothing: puts racing Close must never park a
// connection on the free list after Close drained it — every binding the
// factory ever handed out ends up closed. Run under -race.
func TestCloseRacingPutLeaksNothing(t *testing.T) {
	for round := 0; round < 50; round++ {
		ff := &fakeFactory{}
		p := New(ff.factory, Config{MaxConns: 4, MaxInflight: 16, Retry: RetryPolicy{MaxAttempts: 1}})

		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 4; i++ {
					p.Call(context.Background(), testEnvelope())
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Close()
		}()
		wg.Wait()

		ff.mu.Lock()
		for i, b := range ff.bindings {
			b.mu.Lock()
			closed := b.closed
			b.mu.Unlock()
			if !closed {
				t.Fatalf("round %d: binding %d leaked past Close", round, i)
			}
		}
		ff.mu.Unlock()
	}
}

// TestNoPayloadLeaksThroughPool asserts the encode-once/replay contract:
// across success, transport-failure-plus-retry (the request payload is
// reused, not re-encoded), exhausted retries, SOAP faults, and one-way
// sends, every pooled payload drawn anywhere in the pipeline is released
// exactly once.
func TestNoPayloadLeaksThroughPool(t *testing.T) {
	base := core.PayloadsInUse()
	ctx := context.Background()

	ff := &fakeFactory{}
	p := New(ff.factory, Config{MaxConns: 1, Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond}})
	defer p.Close()

	// Success.
	if _, err := p.Call(ctx, testEnvelope()); err != nil {
		t.Fatal(err)
	}
	// One transport failure, then the retry replays the same request
	// payload on a fresh connection.
	ff.bindings[0].mu.Lock()
	ff.bindings[0].failNext = fmt.Errorf("flake: %w", io.ErrUnexpectedEOF)
	ff.bindings[0].mu.Unlock()
	if _, err := p.Call(ctx, testEnvelope()); err != nil {
		t.Fatal(err)
	}
	// Exhausted retries: every attempt fails on every connection; the
	// request payload must still be released when the call gives up.
	pDown := New(func(context.Context) (*core.Engine[core.BXSAEncoding, downBinding], error) {
		return core.NewEngine(core.BXSAEncoding{}, downBinding{}), nil
	}, Config{MaxConns: 1, Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond}})
	defer pDown.Close()
	if _, err := pDown.Call(ctx, testEnvelope()); err == nil {
		t.Error("call succeeded while every connection fails")
	}

	// SOAP fault path: the response payload decodes to a fault.
	fault := &core.Fault{Code: core.FaultServer, String: "no"}
	faultBytes, err := core.NewCodec(core.BXSAEncoding{}).EncodeBytes(fault.Envelope())
	if err != nil {
		t.Fatal(err)
	}
	pFault := New(func(context.Context) (*core.Engine[core.BXSAEncoding, *faultBinding], error) {
		return core.NewEngine(core.BXSAEncoding{}, &faultBinding{payload: faultBytes}), nil
	}, Config{MaxConns: 1})
	defer pFault.Close()
	if _, err := pFault.Call(ctx, testEnvelope()); !errors.As(err, new(*core.Fault)) {
		t.Errorf("want fault, got %v", err)
	}

	// One-way send on the healthy pool.
	if err := p.Send(ctx, testEnvelope()); err != nil {
		t.Fatal(err)
	}

	if got := core.PayloadsInUse(); got != base {
		t.Fatalf("PayloadsInUse = %d, want %d — payload leaked through the pool", got, base)
	}
}

// downBinding fails every receive with a transport-class error.
type downBinding struct{}

func (downBinding) SendRequest(context.Context, *core.Payload, string) error { return nil }
func (downBinding) ReceiveResponse(context.Context) (*core.Payload, string, error) {
	return nil, "", fmt.Errorf("down: %w", io.ErrUnexpectedEOF)
}
func (downBinding) Close() error { return nil }
