package svcpool

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"

	"bxsoap/internal/core"
	"bxsoap/internal/obs"
)

// A pooled run with one shared observer: the engine call counters must
// balance (started == completed + failed — the leak-style invariant), the
// checkout stage histogram must have one entry per attempt, and the inflight
// gauge must return to zero with a high-water mark behind it.
func TestPoolObserverBalancesAfterRun(t *testing.T) {
	o := obs.New()
	ff := &fakeFactory{}
	observedFactory := func(ctx context.Context) (*core.Engine[core.BXSAEncoding, *fakeBinding], error) {
		ff.mu.Lock()
		b := &fakeBinding{}
		ff.bindings = append(ff.bindings, b)
		ff.mu.Unlock()
		return core.NewEngine(core.BXSAEncoding{}, b, core.WithObserver(o)), nil
	}
	p := New(observedFactory, Config{MaxConns: 4}, WithObserver(o))
	defer p.Close()

	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := p.Call(context.Background(), testEnvelope()); err != nil {
					t.Errorf("pooled call: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	const calls = workers * perWorker
	started := o.Counter(obs.CallsStarted)
	if started != calls {
		t.Errorf("calls started = %d, want %d", started, calls)
	}
	if got := o.Counter(obs.CallsCompleted) + o.Counter(obs.CallsFailed); got != started {
		t.Errorf("completed %d + failed %d != started %d (leaked calls)",
			o.Counter(obs.CallsCompleted), o.Counter(obs.CallsFailed), started)
	}
	if got := o.StageSnapshot(obs.ClientCheckout).Count; got != calls {
		t.Errorf("checkout stage count = %d, want %d", got, calls)
	}
	if got := o.StageSnapshot(obs.ClientEncode).Count; got != calls {
		t.Errorf("encode stage count = %d, want %d (pool-level encode must be marked)", got, calls)
	}
	if got := o.Gauge(obs.PoolInflight); got != 0 {
		t.Errorf("inflight gauge = %d after quiesce, want 0", got)
	}
	if hw := o.GaugeHighWater(obs.PoolInflight); hw < 1 || hw > int64(workers) {
		t.Errorf("inflight high water = %d, want within [1, %d]", hw, workers)
	}
}

// Retirement and retry counters: a transport failure retires the connection
// and the retry lands on a fresh one, each movement observed.
func TestPoolObserverCountsRetriesAndRetirements(t *testing.T) {
	o := obs.New()
	ff := &fakeFactory{}
	p := New(ff.factory, Config{MaxConns: 1}, WithObserver(o))
	defer p.Close()
	ctx := context.Background()

	if _, err := p.Call(ctx, testEnvelope()); err != nil {
		t.Fatal(err)
	}
	first := ff.bindings[0]
	first.mu.Lock()
	first.failNext = fmt.Errorf("boom: %w", io.ErrUnexpectedEOF)
	first.mu.Unlock()
	if _, err := p.Call(ctx, testEnvelope()); err != nil {
		t.Fatalf("retry should have recovered: %v", err)
	}
	if got := o.Counter(obs.PoolRetries); got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
	if got := o.Counter(obs.PoolRetirements); got != 1 {
		t.Errorf("retirements = %d, want 1", got)
	}
}

// Breaker transition counters across a full open → probe → close cycle.
func TestPoolObserverCountsBreakerTransitions(t *testing.T) {
	o := obs.New()
	var down bool
	var mu sync.Mutex
	factory := func(context.Context) (*core.Engine[core.BXSAEncoding, *fakeBinding], error) {
		b := &fakeBinding{}
		mu.Lock()
		if down {
			b.failNext = fmt.Errorf("peer down: %w", io.ErrUnexpectedEOF)
		}
		mu.Unlock()
		return core.NewEngine(core.BXSAEncoding{}, b), nil
	}
	p := New(factory, Config{
		MaxConns: 1,
		Retry:    RetryPolicy{MaxAttempts: 1},
		Breaker:  BreakerPolicy{Threshold: 2, Cooldown: 1}, // 1ns: probe admitted immediately
	}, WithObserver(o))
	defer p.Close()
	ctx := context.Background()

	mu.Lock()
	down = true
	mu.Unlock()
	// Each engine fails its first receive; Threshold=2 straight failures
	// trip the breaker open.
	for i := 0; i < 2; i++ {
		if _, err := p.Call(ctx, testEnvelope()); err == nil {
			t.Fatal("call against downed peer succeeded")
		}
	}
	if got := o.Counter(obs.BreakerOpened); got != 1 {
		t.Fatalf("breaker opened %d times, want 1", got)
	}

	mu.Lock()
	down = false
	mu.Unlock()
	// Cooldown (1ns) has long passed: the next call is the half-open probe,
	// and its success closes the circuit.
	if _, err := p.Call(ctx, testEnvelope()); err != nil {
		t.Fatalf("probe call failed: %v", err)
	}
	if got := o.Counter(obs.BreakerProbes); got != 1 {
		t.Errorf("breaker probes = %d, want 1", got)
	}
	if got := o.Counter(obs.BreakerClosed); got != 1 {
		t.Errorf("breaker closed = %d, want 1", got)
	}
}
