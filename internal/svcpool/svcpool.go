package svcpool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bxsoap/internal/core"
	"bxsoap/internal/obs"
)

// Factory dials and composes one fresh engine: the underlying transport
// connection plus the (encoding, binding) policy pair. The pool calls it
// whenever it needs to grow or replace a retired connection. The context
// carries the checkout deadline of the caller the dial is on behalf of.
type Factory[E core.Encoding, B core.Binding] func(ctx context.Context) (*core.Engine[E, B], error)

// Config tunes a Pool. The zero value gets sensible defaults (see the
// field comments); explicitly negative values disable the corresponding
// mechanism where noted.
type Config struct {
	// MaxConns bounds the live engines (idle + checked out). Default 4.
	MaxConns int
	// MaxInflight bounds concurrently admitted calls; callers beyond it
	// block in checkout until a slot frees or their context expires —
	// backpressure instead of unbounded dials. Default 2×MaxConns.
	MaxInflight int
	// IdleTimeout reaps connections unused this long. Default 90s;
	// negative disables reaping.
	IdleTimeout time.Duration
	// MaxLifetime rotates connections out after this age regardless of
	// health, so long-lived pools shed drifted peers. Default 0 (off).
	MaxLifetime time.Duration
	// CallTimeout is the per-attempt deadline covering checkout plus the
	// exchange. Default 0 (caller's context only).
	CallTimeout time.Duration
	// Retry configures backoff for Call/Send (the retrying entry points).
	Retry RetryPolicy
	// Breaker configures the consecutive-failure circuit breaker.
	Breaker BreakerPolicy
}

func (c Config) withDefaults() Config {
	if c.MaxConns <= 0 {
		c.MaxConns = 4
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2 * c.MaxConns
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 90 * time.Second
	}
	c.Retry = c.Retry.withDefaults()
	c.Breaker = c.Breaker.withDefaults()
	return c
}

// Pool-level sentinel errors.
var (
	// ErrPoolClosed is returned by calls entered after Close.
	ErrPoolClosed = errors.New("svcpool: pool closed")
)

// Stats is a point-in-time snapshot of pool counters.
type Stats struct {
	Dials    uint64 // connections created
	Reuses   uint64 // checkouts served from the free list
	Retires  uint64 // connections closed (health, age, idle, shutdown)
	Retries  uint64 // retry attempts (beyond each call's first)
	Failures uint64 // attempts that ended in a transport-level error
	Rejected uint64 // calls refused by the open circuit breaker
	Live     int    // connections currently alive (idle + checked out)
	Idle     int    // connections parked on the free list
	Inflight int    // calls currently admitted
}

// pooled is one live engine plus the bookkeeping the pool's health and age
// policies key off.
type pooled[E core.Encoding, B core.Binding] struct {
	eng      *core.Engine[E, B]
	created  time.Time
	lastUsed time.Time
}

// Pool is a bounded, health-aware set of engines sharing one (encoding,
// binding) composition. All methods are safe for concurrent use.
type Pool[E core.Encoding, B core.Binding] struct {
	factory Factory[E, B]
	cfg     Config

	// inflight holds a token per admitted call (semaphore, cap
	// MaxInflight); slots holds a token per *permission to own* a
	// connection (cap MaxConns, initially full); idle is the LIFO-ish free
	// list. A connection's owner holds its slot token implicitly; retiring
	// a connection returns the token.
	inflight chan struct{}
	slots    chan struct{}
	idle     chan *pooled[E, B]
	done     chan struct{}
	closing  sync.Once

	brk breaker
	obs *obs.Observer

	dials, reuses, retires, retries, failures, rejected atomic.Uint64
}

// New builds a pool over factory. Close it when done to release the live
// connections and the reaper goroutine.
func New[E core.Encoding, B core.Binding](factory Factory[E, B], cfg Config, opts ...Option) *Pool[E, B] {
	cfg = cfg.withDefaults()
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	p := &Pool[E, B]{
		factory:  factory,
		cfg:      cfg,
		inflight: make(chan struct{}, cfg.MaxInflight),
		slots:    make(chan struct{}, cfg.MaxConns),
		idle:     make(chan *pooled[E, B], cfg.MaxConns),
		done:     make(chan struct{}),
		brk:      breaker{policy: cfg.Breaker, obs: o.obs},
		obs:      o.obs,
	}
	for i := 0; i < cfg.MaxConns; i++ {
		p.slots <- struct{}{}
	}
	if cfg.IdleTimeout > 0 || cfg.MaxLifetime > 0 {
		go p.reaper()
	}
	return p
}

// Call performs a request-response exchange through the pool, retrying
// transport-level failures on a fresh connection per Config.Retry. Only
// route idempotent operations through Call: a retried request may execute
// twice on the server when the failure hit after dispatch. Use CallOnce
// for non-idempotent operations.
func (p *Pool[E, B]) Call(ctx context.Context, req *core.Envelope) (*core.Envelope, error) {
	return p.call(ctx, req, true)
}

// CallOnce performs a single attempt with no retry (the pool's checkout,
// health, and breaker machinery still apply).
func (p *Pool[E, B]) CallOnce(ctx context.Context, req *core.Envelope) (*core.Envelope, error) {
	return p.call(ctx, req, false)
}

func (p *Pool[E, B]) call(ctx context.Context, req *core.Envelope, retry bool) (*core.Envelope, error) {
	// The pool originates (or relays) the trace: the hop must be started
	// here, before encode, because the trace header has to be serialized
	// into the payload the retry budget replays. The engine below sees only
	// bytes, so the hop rides the context into CallPayload. One hop spans
	// all attempts — retried stages simply appear once per attempt.
	req, hop := core.BeginClientTrace(p.obs, req)
	ctx = obs.ContextWithHop(ctx, hop)
	// The pool owns the logical call, so the dimensional sample is recorded
	// here — once, spanning every retry attempt — rather than per attempt in
	// the engine (CallPayload/CallStream deliberately do not record).
	var op string
	var t0 time.Time
	if p.obs.Dimensional() {
		op = core.OpName(req)
		t0 = p.obs.Now()
	}
	var resp *core.Envelope
	var payload *core.Payload
	defer func() {
		if payload != nil {
			payload.Release()
		}
	}()
	err := p.do(ctx, retry, func(actx context.Context, eng *core.Engine[E, B]) error {
		if eng.Streaming() > 0 {
			// Streamed replay-or-abort: a streamed request has no
			// materialized payload to replay — its chunks were consumed by
			// the transport — so the envelope tree is the replay source and
			// each attempt re-streams the encode through its fresh
			// connection. An attempt that fails mid-stream aborts its sink
			// (poisoning only that connection) before the retry starts over.
			var err error
			resp, err = eng.CallStream(actx, req)
			return err
		}
		// Encode lazily on the first attempt (every engine from one factory
		// shares the encoding policy), then replay the same pooled payload on
		// retries: CallPayload borrows it, so one serialization serves the
		// whole retry budget. The deferred Release above covers every exit —
		// success, fault, poisoned connection, exhausted retries. The encode
		// is marked here because CallPayload's own span never sees it.
		if payload == nil {
			sp := p.obs.SpanWith(hop)
			var err error
			payload, err = eng.Codec().EncodePayload(req)
			if err != nil {
				return fmt.Errorf("svcpool: encode request: %w", err)
			}
			sp.Mark(obs.ClientEncode)
		}
		var err error
		resp, err = eng.CallPayload(actx, payload)
		return err
	})
	p.obs.FinishHop(hop, err)
	if op != "" {
		p.obs.RecordOp(op, obs.RoleClient, p.obs.Since(t0), err != nil, hop.Context().ID)
	}
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// Send performs a one-way exchange through the pool with retry; the same
// idempotency caveat as Call applies.
func (p *Pool[E, B]) Send(ctx context.Context, req *core.Envelope) error {
	return p.send(ctx, req, true)
}

// SendOnce performs a single one-way attempt with no retry.
func (p *Pool[E, B]) SendOnce(ctx context.Context, req *core.Envelope) error {
	return p.send(ctx, req, false)
}

func (p *Pool[E, B]) send(ctx context.Context, req *core.Envelope, retry bool) error {
	req, hop := core.BeginClientTrace(p.obs, req)
	ctx = obs.ContextWithHop(ctx, hop)
	var op string
	var t0 time.Time
	if p.obs.Dimensional() {
		op = core.OpName(req)
		t0 = p.obs.Now()
	}
	var payload *core.Payload
	defer func() {
		if payload != nil {
			payload.Release()
		}
	}()
	err := p.do(ctx, retry, func(actx context.Context, eng *core.Engine[E, B]) error {
		if payload == nil {
			sp := p.obs.SpanWith(hop)
			var err error
			payload, err = eng.Codec().EncodePayload(req)
			if err != nil {
				return fmt.Errorf("svcpool: encode request: %w", err)
			}
			sp.Mark(obs.ClientEncode)
		}
		return eng.SendPayload(actx, payload)
	})
	p.obs.FinishHop(hop, err)
	if op != "" {
		p.obs.RecordOp(op, obs.RoleClient, p.obs.Since(t0), err != nil, hop.Context().ID)
	}
	return err
}

// do admits the call (backpressure), then runs attempts until success, a
// non-retryable outcome, the caller's context expiring, or the retry
// budget running out.
func (p *Pool[E, B]) do(ctx context.Context, retry bool, op func(context.Context, *core.Engine[E, B]) error) error {
	select {
	case p.inflight <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	case <-p.done:
		return ErrPoolClosed
	}
	p.obs.GaugeAdd(obs.PoolInflight, 1)
	defer func() {
		<-p.inflight
		p.obs.GaugeAdd(obs.PoolInflight, -1)
	}()

	attempts := 1
	if retry && p.cfg.Retry.MaxAttempts > 1 {
		attempts = p.cfg.Retry.MaxAttempts
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			p.retries.Add(1)
			p.obs.Inc(obs.PoolRetries)
			p.obs.Event(obs.EvRetry, "transport failure; retrying on a fresh connection")
			if werr := sleepCtx(ctx, p.cfg.Retry.backoff(i)); werr != nil {
				return err
			}
		}
		var final bool
		final, err = p.tryOnce(ctx, op)
		if final {
			return err
		}
	}
	return err
}

// tryOnce runs one breaker-gated attempt. final reports that do should
// return err now instead of retrying. Whatever path the attempt exits by —
// including a panic in op — the breaker is settled: success, failure, or
// (via the deferred abandon) reverting an unresolved half-open probe so it
// cannot wedge the breaker.
func (p *Pool[E, B]) tryOnce(ctx context.Context, op func(context.Context, *core.Engine[E, B]) error) (final bool, err error) {
	probe, berr := p.brk.allow()
	if berr != nil {
		p.rejected.Add(1)
		return true, berr
	}
	settled := false
	defer func() {
		if !settled {
			p.brk.abandon(probe)
		}
	}()
	err = p.attempt(ctx, op)
	if err == nil {
		settled = true
		p.brk.success()
		return true, nil
	}
	var f *core.Fault
	if errors.As(err, &f) {
		// The peer answered "no": the transport demonstrably works.
		settled = true
		p.brk.success()
		return true, err
	}
	if errors.Is(err, ErrPoolClosed) || ctx.Err() != nil {
		// Shutdown, or the caller's own budget spent while waiting /
		// mid-exchange — neither says anything about peer health. The
		// deferred abandon settles a probe that ends here.
		return true, err
	}
	if !core.IsTransportError(err) {
		// Encode/decode/content-type problems repeat identically on
		// any connection; retrying burns attempts for nothing. No
		// transport verdict either way — abandon settles the probe.
		return true, err
	}
	settled = true
	p.failures.Add(1)
	p.brk.failure()
	return false, err
}

// attempt checks out a connection, runs one exchange under the per-call
// deadline, and routes the connection back by health: transport-class
// failures retire it (never handed out again), everything else returns it
// to the free list.
func (p *Pool[E, B]) attempt(ctx context.Context, op func(context.Context, *core.Engine[E, B]) error) error {
	actx := ctx
	if p.cfg.CallTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, p.cfg.CallTimeout)
		defer cancel()
	}
	// The checkout-wait span covers the whole of get: free-list reuse, a
	// fresh dial, or blocking for a slot under backpressure. The hop (if
	// tracing) rides the context from call/send.
	var hop *obs.Hop
	if p.obs.Tracing() {
		hop = obs.HopFromContext(actx)
	}
	sp := p.obs.SpanWith(hop)
	c, err := p.get(actx)
	sp.Mark(obs.ClientCheckout)
	if err != nil {
		return err
	}
	err = op(actx, c.eng)
	if err != nil && core.Poisons(err) {
		if p.obs.Tracing() {
			p.obs.Event(obs.EvPayloadPoisoned, err.Error())
		}
		p.retire(c)
		return err
	}
	p.put(c)
	return err
}

// get checks out a connection: a healthy idle one if available, else a
// fresh dial if the pool is under MaxConns, else it blocks until a
// connection or slot frees or the context expires.
func (p *Pool[E, B]) get(ctx context.Context) (*pooled[E, B], error) {
	for {
		// Fast path: reuse without contending on the slow select.
		select {
		case c := <-p.idle:
			if p.stale(c, time.Now()) {
				p.retire(c)
				continue
			}
			p.reuses.Add(1)
			return c, nil
		default:
		}
		select {
		case c := <-p.idle:
			if p.stale(c, time.Now()) {
				p.retire(c)
				continue
			}
			p.reuses.Add(1)
			return c, nil
		case <-p.slots:
			c, err := p.dial(ctx)
			if err != nil {
				p.slots <- struct{}{}
				return nil, err
			}
			return c, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-p.done:
			return nil, ErrPoolClosed
		}
	}
}

func (p *Pool[E, B]) dial(ctx context.Context) (*pooled[E, B], error) {
	eng, err := p.factory(ctx)
	if err != nil {
		return nil, fmt.Errorf("svcpool: dial: %w", err)
	}
	p.dials.Add(1)
	now := time.Now()
	return &pooled[E, B]{eng: eng, created: now, lastUsed: now}, nil
}

// put returns a healthy connection to the free list (or retires it when
// the pool is closing or the connection has aged out).
func (p *Pool[E, B]) put(c *pooled[E, B]) {
	select {
	case <-p.done:
		p.retire(c)
		return
	default:
	}
	if p.cfg.MaxLifetime > 0 && time.Since(c.created) > p.cfg.MaxLifetime {
		p.retire(c)
		return
	}
	c.lastUsed = time.Now()
	select {
	case p.idle <- c:
		// Close may have drained idle between the done check above and our
		// send landing; re-check and drain so the parked connection cannot
		// leak past shutdown.
		select {
		case <-p.done:
			p.drainIdle()
		default:
		}
	default:
		// Unreachable in normal operation (idle cap == MaxConns), but never
		// block holding a connection.
		p.retire(c)
	}
}

// retire closes a connection and returns its ownership slot so a
// replacement may be dialed.
func (p *Pool[E, B]) retire(c *pooled[E, B]) {
	p.retires.Add(1)
	p.obs.Inc(obs.PoolRetirements)
	p.obs.Event(obs.EvConnRetired, "connection retired (health, age, or shutdown)")
	c.eng.Close()
	p.slots <- struct{}{}
}

func (p *Pool[E, B]) stale(c *pooled[E, B], now time.Time) bool {
	if p.cfg.IdleTimeout > 0 && now.Sub(c.lastUsed) > p.cfg.IdleTimeout {
		return true
	}
	if p.cfg.MaxLifetime > 0 && now.Sub(c.created) > p.cfg.MaxLifetime {
		return true
	}
	return false
}

// reaper proactively closes idle/aged connections so a quiet pool does not
// pin sockets until the next burst of traffic finds them stale.
func (p *Pool[E, B]) reaper() {
	interval := p.cfg.IdleTimeout
	if p.cfg.MaxLifetime > 0 && (interval <= 0 || p.cfg.MaxLifetime < interval) {
		interval = p.cfg.MaxLifetime
	}
	interval /= 2
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.reap()
		case <-p.done:
			return
		}
	}
}

func (p *Pool[E, B]) reap() {
	now := time.Now()
	for n := len(p.idle); n > 0; n-- {
		select {
		case c := <-p.idle:
			if p.stale(c, now) {
				p.retire(c)
			} else {
				select {
				case p.idle <- c:
				default:
					p.retire(c)
				}
			}
		default:
			return
		}
	}
}

// Stats returns a snapshot of the pool's counters. The gauge fields are
// instantaneously consistent enough for monitoring, not for synchronization.
func (p *Pool[E, B]) Stats() Stats {
	return Stats{
		Dials:    p.dials.Load(),
		Reuses:   p.reuses.Load(),
		Retires:  p.retires.Load(),
		Retries:  p.retries.Load(),
		Failures: p.failures.Load(),
		Rejected: p.rejected.Load(),
		Live:     p.cfg.MaxConns - len(p.slots),
		Idle:     len(p.idle),
		Inflight: len(p.inflight),
	}
}

// Close stops the pool: blocked and future calls fail with ErrPoolClosed,
// idle connections are closed now, and checked-out connections are closed
// as their calls complete.
func (p *Pool[E, B]) Close() error {
	p.closing.Do(func() { close(p.done) })
	p.drainIdle()
	return nil
}

// drainIdle closes every connection currently parked on the free list.
// Only meaningful after done is closed; safe to call from multiple
// goroutines (Close and puts racing shutdown).
func (p *Pool[E, B]) drainIdle() {
	for {
		select {
		case c := <-p.idle:
			c.eng.Close()
		default:
			return
		}
	}
}

// sleepCtx waits for d unless the context expires first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
