package svcpool

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/core"
	"bxsoap/internal/tcpbind"
)

// streamEnvelope builds a request large enough to span many chunks at the
// test's chunk size.
func streamEnvelope(n int) (*core.Envelope, bxdm.Node) {
	items := make([]int32, n)
	for i := range items {
		items[i] = int32(i * 7)
	}
	el := bxdm.NewArray(bxdm.QName{Local: "a"}, items)
	return core.NewEnvelope(el), el
}

// waitPayloadsSettled polls for the streaming machinery's async teardown to
// release its payloads before the leak assertion.
func waitPayloadsSettled(t *testing.T, baseline int64) {
	t.Helper()
	for i := 0; i < 200; i++ {
		if core.PayloadsInUse() == baseline {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Errorf("PayloadsInUse = %d, want baseline %d", core.PayloadsInUse(), baseline)
}

// TestStreamedReplayOrAbort exercises the pool's streamed retry contract
// end to end over BXSA/TCP: a per-call deadline expires mid-streamed
// exchange, the attempt aborts and poisons the connection, and the retry
// re-streams the request from the envelope tree on a fresh dial. The
// envelope — not a buffered payload — is the replay source, so nothing
// leaks across the aborted attempt.
func TestStreamedReplayOrAbort(t *testing.T) {
	baseline := core.PayloadsInUse()
	var calls atomic.Int32
	l, err := tcpbind.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := core.NewServer(core.BXSAEncoding{}, l,
		func(_ context.Context, req *core.Envelope) (*core.Envelope, error) {
			if calls.Add(1) == 2 {
				// Stall exactly one request past the client's deadline.
				time.Sleep(300 * time.Millisecond)
			}
			return core.NewEnvelope(req.Body()), nil
		}, core.WithStreaming(16<<10))
	go srv.Serve()
	defer srv.Close()

	p := New(func(context.Context) (*core.Engine[core.BXSAEncoding, *tcpbind.Binding], error) {
		return core.NewEngine(core.BXSAEncoding{},
			tcpbind.New(tcpbind.NetDialer, l.Addr().String()),
			core.WithStreaming(16<<10)), nil
	}, Config{MaxConns: 1, CallTimeout: 2 * time.Second, Retry: RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond}})
	defer p.Close()
	ctx := context.Background()

	req, want := streamEnvelope(100_000) // ~400 KiB of array data ≫ chunk size
	resp, err := p.Call(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bxdm.Equal(resp.Body(), want) {
		t.Fatal("streamed echo through pool differs")
	}

	// Second call: the first attempt stalls past a short deadline, the
	// pool retires the poisoned connection, and the retry replays the
	// stream on a fresh dial against the now-fast handler.
	short := New(func(context.Context) (*core.Engine[core.BXSAEncoding, *tcpbind.Binding], error) {
		return core.NewEngine(core.BXSAEncoding{},
			tcpbind.New(tcpbind.NetDialer, l.Addr().String()),
			core.WithStreaming(16<<10)), nil
	}, Config{MaxConns: 1, CallTimeout: 80 * time.Millisecond, Retry: RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond}})
	defer short.Close()
	resp, err = short.Call(ctx, req)
	if err != nil {
		t.Fatalf("retry after mid-stream timeout: %v", err)
	}
	if !bxdm.Equal(resp.Body(), want) {
		t.Fatal("replayed streamed echo differs")
	}
	if st := short.Stats(); st.Retires == 0 {
		t.Errorf("timed-out streamed conn not retired: %+v", st)
	}
	waitPayloadsSettled(t, baseline)
}
