// Package svcpool is the production client runtime layered above the
// paper's policy-composed engine (§5): a generic Pool[E, B] that drives
// many concurrent callers over a bounded set of live engines without
// disturbing the engine's compile-time (encoding, binding) design.
//
// The paper's Engine binds one encoding to one binding, which in this repo
// means one framed TCP (or HTTP) connection serving one in-flight call at a
// time — faithful to the 2006 evaluation, but not to how grid service
// frameworks actually deployed at scale, which is on a managed pool of
// persistent, concurrently driven channels. The pool owns exactly the
// invariants the engine does not:
//
//   - Bounded concurrency: a semaphore-gated checkout applies backpressure
//     instead of dialing without limit; callers queue (honoring their
//     context) rather than stampede.
//   - Keep-alive reuse: healthy engines return to a LIFO free list, are
//     reaped after IdleTimeout, and are rotated out after MaxLifetime.
//   - Health-aware retirement: an engine that returns a transport-level
//     error or times out is retired, never handed out again — a timed-out
//     framed connection is desynchronized (see core.ErrBindingPoisoned),
//     and only the pool is positioned to enforce that.
//   - Bounded retry: idempotent calls are retried on a fresh connection
//     with capped exponential backoff plus jitter, behind a consecutive-
//     failure circuit breaker that fails fast while the peer is down.
//
// The type parameters are the same two policy axes as core.Engine, so a
// pool of BXSA/TCP engines and a pool of XML/HTTP engines are distinct
// monomorphic types, composed at compile time exactly like the engines
// they manage.
package svcpool
