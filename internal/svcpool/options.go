package svcpool

import "bxsoap/internal/obs"

// Option configures a Pool at New time, mirroring the core options API
// (core.WithObserver and friends); Config stays the home of numeric tuning,
// options carry cross-cutting wiring.
type Option func(*options)

type options struct {
	obs *obs.Observer
}

// WithObserver wires an observability sink into the pool: checkout waits
// land in the client.checkout stage histogram, and retries, retirements,
// breaker transitions, and the inflight gauge record into the counters.
// Note the pool does not forward the observer to the engines it dials —
// the Factory composes engines, so it decides (via core.WithObserver)
// whether they share this sink.
func WithObserver(o *obs.Observer) Option {
	return func(c *options) { c.obs = o }
}
