// Package gridftp implements a simulated GridFTP service: an FTP-style
// control channel with a GSI-like authentication handshake, striped-passive
// (SPAS) parallel data channels, and extended-block (MODE E) data transfer
// with out-of-order block delivery — the mechanisms behind both GridFTP
// behaviours the paper measures (§6):
//
//   - the "expensive authentication and SSL handshake protocol" that makes
//     GridFTP "unsuitable for the small message cases" (Figure 4): here an
//     ADAT exchange of several control-channel round trips plus real
//     (SHA-256) compute standing in for the RSA/TLS work of GSI;
//   - parallel TCP streams that pay off on the WAN (Figure 6) but not on
//     the LAN (Figure 5), where the researchers "attribute this to more
//     'seek' operations at the receiver for the blocks received out of
//     order": blocks really do arrive out of order across streams here and
//     are reassembled with positional writes into the destination file.
//
// This is a benchmarking simulation of the wire behaviour, not a security
// implementation: the handshake proves nothing, it only costs what a GSI
// handshake costs. DESIGN.md records the substitution.
//
// Wire failures escape this package classified (core.TransportError);
// paylint's errclass analyzer enforces that via the marker below.
//
//paylint:classify-transport-errors
package gridftp

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"strings"
)

// Options tune the simulated deployment.
type Options struct {
	// Streams is the number of parallel data channels (paper: 1, 4, 16).
	Streams int
	// BlockSize is the extended-block payload size. Default 64 KiB.
	BlockSize int
	// HandshakeWork is the total number of SHA-256 compressions each side
	// performs during authentication, standing in for GSI's RSA/TLS
	// compute. The default is calibrated so authentication costs on the
	// order of a hundred milliseconds, the small-message floor Figure 4
	// shows for SOAP+GridFTP.
	HandshakeWork int
	// HandshakeRounds is the number of ADAT exchanges (control-channel
	// round trips) in the handshake.
	HandshakeRounds int
}

func (o Options) withDefaults() Options {
	if o.Streams <= 0 {
		o.Streams = 1
	}
	if o.BlockSize <= 0 {
		o.BlockSize = 64 << 10
	}
	if o.HandshakeWork <= 0 {
		o.HandshakeWork = 1 << 19
	}
	if o.HandshakeRounds <= 0 {
		o.HandshakeRounds = 4
	}
	return o
}

// handshakeToken performs the simulated GSI compute: `work` chained SHA-256
// compressions seeded by the previous token. Both sides run it, so the cost
// is paid twice per round like a real sign/verify pair.
func handshakeToken(prev []byte, round, work int) []byte {
	h := sha256.Sum256(append(prev, byte(round)))
	for i := 0; i < work; i++ {
		h = sha256.Sum256(h[:])
	}
	return h[:]
}

// control-channel line protocol helpers.

type ctrl struct {
	r *bufio.Reader
	w *bufio.Writer
}

func newCtrl(rw io.ReadWriter) *ctrl {
	return &ctrl{r: bufio.NewReader(rw), w: bufio.NewWriter(rw)}
}

func (c *ctrl) sendf(format string, args ...any) error {
	if _, err := fmt.Fprintf(c.w, format+"\r\n", args...); err != nil {
		return err
	}
	return c.w.Flush()
}

// recv reads one CRLF-terminated line.
func (c *ctrl) recv() (string, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// expect reads a line and verifies its 3-digit code prefix.
func (c *ctrl) expect(code string) (string, error) {
	line, err := c.recv()
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(line, code+" ") && line != code {
		return "", fmt.Errorf("gridftp: expected %s reply, got %q", code, line)
	}
	return line, nil
}

func encodeToken(t []byte) string          { return hex.EncodeToString(t) }
func decodeToken(s string) ([]byte, error) { return hex.DecodeString(s) }

// Extended-block (MODE E) framing: 1 flag byte, 8-byte payload length,
// 8-byte file offset, big-endian, then the payload.
const (
	eblockHeaderLen = 17
	flagEOD         = 0x40 // final block on this stream (length may be 0)
)

type eblockHeader struct {
	flags  byte
	length uint64
	offset uint64
}

func writeEBlockHeader(w io.Writer, h eblockHeader) error {
	var buf [eblockHeaderLen]byte
	buf[0] = h.flags
	binary.BigEndian.PutUint64(buf[1:9], h.length)
	binary.BigEndian.PutUint64(buf[9:17], h.offset)
	_, err := w.Write(buf[:])
	return err
}

func readEBlockHeader(r io.Reader) (eblockHeader, error) {
	var buf [eblockHeaderLen]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return eblockHeader{}, err
	}
	return eblockHeader{
		flags:  buf[0],
		length: binary.BigEndian.Uint64(buf[1:9]),
		offset: binary.BigEndian.Uint64(buf[9:17]),
	}, nil
}
