package gridftp

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"bxsoap/internal/netsim"
)

// Server is a simulated GridFTP server rooted at a directory.
type Server struct {
	nw   *netsim.Network
	root string
	opts Options
	l    net.Listener

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// NewServer starts a server on a shaped listener of nw, serving files under
// root.
func NewServer(nw *netsim.Network, root string, opts Options) (*Server, error) {
	l, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		return nil, classify("listen", err)
	}
	s := &Server{nw: nw, root: root, opts: opts.withDefaults(), l: l}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the control-channel address.
func (s *Server) Addr() string { return s.l.Addr().String() }

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.l.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveControl(conn)
		}()
	}
}

// session state for one control connection.
type session struct {
	authenticated bool
	streams       int
	modeE         bool
	dataL         net.Listener
	allo          int64
}

func (s *Server) serveControl(conn net.Conn) {
	c := newCtrl(conn)
	sess := &session{streams: 1}
	defer func() {
		if sess.dataL != nil {
			sess.dataL.Close()
		}
	}()
	if err := c.sendf("220 bxsoap-gridftp server ready"); err != nil {
		return
	}
	for {
		line, err := c.recv()
		if err != nil {
			return
		}
		verb, arg, _ := strings.Cut(line, " ")
		switch strings.ToUpper(verb) {
		case "AUTH":
			if !strings.EqualFold(arg, "GSSAPI") {
				c.sendf("504 only GSSAPI supported")
				continue
			}
			if err := c.sendf("334 Using authentication type GSSAPI; ADAT must follow"); err != nil {
				return
			}
			if err := s.runHandshake(c, sess); err != nil {
				return
			}
		case "SPAS":
			if !s.requireAuth(c, sess) {
				continue
			}
			n, err := strconv.Atoi(strings.TrimSpace(arg))
			if err != nil || n < 1 || n > 64 {
				c.sendf("501 bad stream count")
				continue
			}
			sess.streams = n
			if sess.dataL != nil {
				sess.dataL.Close()
			}
			sess.dataL, err = s.nw.Listen("127.0.0.1:0")
			if err != nil {
				c.sendf("425 cannot open data listener")
				continue
			}
			if err := c.sendf("229 Entering Striped Passive Mode (%s %d)", sess.dataL.Addr(), n); err != nil {
				return
			}
		case "MODE":
			if strings.EqualFold(strings.TrimSpace(arg), "E") {
				sess.modeE = true
				c.sendf("200 Mode set to E")
			} else {
				c.sendf("504 only MODE E supported")
			}
		case "ALLO":
			n, err := strconv.ParseInt(strings.TrimSpace(arg), 10, 64)
			if err != nil || n < 0 {
				c.sendf("501 bad ALLO size")
				continue
			}
			sess.allo = n
			c.sendf("200 ALLO ok")
		case "RETR":
			if !s.requireTransferReady(c, sess) {
				continue
			}
			s.handleRetr(c, sess, arg)
		case "STOR":
			if !s.requireTransferReady(c, sess) {
				continue
			}
			s.handleStor(c, sess, arg)
		case "QUIT":
			c.sendf("221 Goodbye")
			return
		default:
			c.sendf("500 unknown command %q", verb)
		}
	}
}

func (s *Server) requireAuth(c *ctrl, sess *session) bool {
	if !sess.authenticated {
		c.sendf("530 please authenticate first")
		return false
	}
	return true
}

func (s *Server) requireTransferReady(c *ctrl, sess *session) bool {
	if !s.requireAuth(c, sess) {
		return false
	}
	if !sess.modeE || sess.dataL == nil {
		c.sendf("425 use SPAS and MODE E first")
		return false
	}
	return true
}

// runHandshake performs the server side of the simulated GSI exchange: it
// verifies each client token by recomputing it (paying the same compute)
// and answers with its own token.
func (s *Server) runHandshake(c *ctrl, sess *session) error {
	rounds := s.opts.HandshakeRounds
	perRound := s.opts.HandshakeWork / rounds
	var prev []byte
	for round := 0; round < rounds; round++ {
		line, err := c.recv()
		if err != nil {
			return err
		}
		verb, arg, _ := strings.Cut(line, " ")
		if !strings.EqualFold(verb, "ADAT") {
			return c.sendf("503 ADAT expected")
		}
		token, err := decodeToken(strings.TrimSpace(arg))
		if err != nil {
			return c.sendf("501 malformed ADAT token")
		}
		want := handshakeToken(prev, round, perRound) // verify: same compute
		if !bytes.Equal(token, want) {
			return c.sendf("535 authentication failed")
		}
		prev = token
		if round == rounds-1 {
			if err := c.sendf("235 GSSAPI authentication succeeded"); err != nil {
				return err
			}
		} else {
			reply := handshakeToken(prev, round+1000, perRound)
			prev = reply
			if err := c.sendf("335 ADAT=%s", encodeToken(reply)); err != nil {
				return err
			}
		}
	}
	sess.authenticated = true
	return nil
}

// resolve confines a client path to the server root.
func (s *Server) resolve(p string) (string, error) {
	clean := path.Clean("/" + strings.ReplaceAll(p, "\\", "/"))
	if strings.Contains(clean, "..") {
		return "", errors.New("path escapes root")
	}
	return filepath.Join(s.root, filepath.FromSlash(clean)), nil
}

// acceptStreams collects the session's data connections.
func acceptStreams(l net.Listener, n int) ([]net.Conn, error) {
	conns := make([]net.Conn, 0, n)
	for len(conns) < n {
		c, err := l.Accept()
		if err != nil {
			for _, cc := range conns {
				cc.Close()
			}
			return nil, err
		}
		conns = append(conns, c)
	}
	return conns, nil
}

func closeAll(conns []net.Conn) {
	for _, c := range conns {
		c.Close()
	}
}

func (s *Server) handleRetr(c *ctrl, sess *session, arg string) {
	p, err := s.resolve(strings.TrimSpace(arg))
	if err != nil {
		c.sendf("550 %v", err)
		return
	}
	f, err := os.Open(p)
	if err != nil {
		c.sendf("550 cannot open %s", arg)
		return
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil || st.IsDir() {
		c.sendf("550 cannot stat %s", arg)
		return
	}
	if err := c.sendf("150 Opening BINARY mode data connection (%d bytes)", st.Size()); err != nil {
		return
	}
	conns, err := acceptStreams(sess.dataL, sess.streams)
	if err != nil {
		c.sendf("425 data connection failed")
		return
	}
	defer closeAll(conns)
	if err := sendEBlocks(conns, f, st.Size(), s.opts.BlockSize); err != nil {
		c.sendf("426 transfer aborted: %v", err)
		return
	}
	c.sendf("226 Transfer complete")
}

func (s *Server) handleStor(c *ctrl, sess *session, arg string) {
	p, err := s.resolve(strings.TrimSpace(arg))
	if err != nil {
		c.sendf("550 %v", err)
		return
	}
	f, err := os.Create(p)
	if err != nil {
		c.sendf("550 cannot create %s", arg)
		return
	}
	defer f.Close()
	if err := c.sendf("150 Ready to receive (%d bytes)", sess.allo); err != nil {
		return
	}
	conns, err := acceptStreams(sess.dataL, sess.streams)
	if err != nil {
		c.sendf("425 data connection failed")
		return
	}
	defer closeAll(conns)
	if _, err := receiveEBlocks(conns, f); err != nil {
		c.sendf("426 transfer aborted: %v", err)
		return
	}
	c.sendf("226 Transfer complete")
}

// sendEBlocks stripes the file across the data connections in extended-
// block mode: a shared atomic block counter hands out blocks round-robin,
// so blocks genuinely leave (and arrive) out of order across streams.
func sendEBlocks(conns []net.Conn, src io.ReaderAt, size int64, blockSize int) error {
	var next atomic.Int64
	nBlocks := (size + int64(blockSize) - 1) / int64(blockSize)
	errc := make(chan error, len(conns))
	for _, conn := range conns {
		go func(conn net.Conn) {
			buf := make([]byte, blockSize)
			for {
				i := next.Add(1) - 1
				if i >= nBlocks {
					errc <- writeEBlockHeader(conn, eblockHeader{flags: flagEOD})
					return
				}
				off := i * int64(blockSize)
				n := int64(blockSize)
				if off+n > size {
					n = size - off
				}
				if _, err := src.ReadAt(buf[:n], off); err != nil {
					errc <- err
					return
				}
				if err := writeEBlockHeader(conn, eblockHeader{length: uint64(n), offset: uint64(off)}); err != nil {
					errc <- err
					return
				}
				if _, err := conn.Write(buf[:n]); err != nil {
					errc <- err
					return
				}
			}
		}(conn)
	}
	var first error
	for range conns {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// receiveEBlocks reassembles striped blocks with positional writes — the
// receiver-side "seeks" the paper blames for the LAN parallelism penalty.
func receiveEBlocks(conns []net.Conn, dst io.WriterAt) (int64, error) {
	var total atomic.Int64
	errc := make(chan error, len(conns))
	for _, conn := range conns {
		go func(conn net.Conn) {
			buf := make([]byte, 256<<10)
			for {
				h, err := readEBlockHeader(conn)
				if err != nil {
					errc <- fmt.Errorf("read block header: %w", err)
					return
				}
				if h.length > 0 {
					if h.length > uint64(len(buf)) {
						buf = make([]byte, h.length)
					}
					if _, err := io.ReadFull(conn, buf[:h.length]); err != nil {
						errc <- err
						return
					}
					if _, err := dst.WriteAt(buf[:h.length], int64(h.offset)); err != nil {
						errc <- err
						return
					}
					total.Add(int64(h.length))
				}
				if h.flags&flagEOD != 0 {
					errc <- nil
					return
				}
			}
		}(conn)
	}
	var first error
	for range conns {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	return total.Load(), first
}
