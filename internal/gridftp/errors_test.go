package gridftp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bxsoap/internal/netsim"
)

func TestStoreMissingLocalFile(t *testing.T) {
	srv, nw := newTestServer(t, nil, fastOpts(1))
	cl, err := Dial(nw, srv.Addr(), fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Quit()
	if _, err := cl.Store(filepath.Join(t.TempDir(), "ghost"), "out.nc"); err == nil {
		t.Error("Store of missing local file succeeded")
	}
}

func TestStorePathEscapeConfined(t *testing.T) {
	// Client paths are rooted chroot-style: "../../evil" resolves inside
	// the server root, never outside it.
	srv, nw := newTestServer(t, nil, fastOpts(1))
	cl, err := Dial(nw, srv.Addr(), fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Quit()
	src := filepath.Join(t.TempDir(), "src")
	if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Store(src, "../../evil"); err != nil {
		t.Fatalf("confined store failed: %v", err)
	}
	if _, err := os.Stat(filepath.Join(srv.root, "evil")); err != nil {
		t.Errorf("file not confined to root: %v", err)
	}
	parent := filepath.Dir(filepath.Dir(srv.root))
	if _, err := os.Stat(filepath.Join(parent, "evil")); err == nil {
		t.Error("path escaped the server root")
	}
}

func TestUnknownCommandAnswered(t *testing.T) {
	srv, nw := newTestServer(t, nil, fastOpts(1))
	conn, err := nw.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := newCtrl(conn)
	if _, err := c.expect("220"); err != nil {
		t.Fatal(err)
	}
	if err := c.sendf("FEAT"); err != nil {
		t.Fatal(err)
	}
	line, err := c.recv()
	if err != nil || !strings.HasPrefix(line, "500") {
		t.Errorf("unknown verb reply = %q, %v", line, err)
	}
}

func TestBadAuthMechanismRejected(t *testing.T) {
	srv, nw := newTestServer(t, nil, fastOpts(1))
	conn, err := nw.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := newCtrl(conn)
	c.expect("220")
	c.sendf("AUTH TLS")
	line, _ := c.recv()
	if !strings.HasPrefix(line, "504") {
		t.Errorf("AUTH TLS reply = %q", line)
	}
}

func TestSPASValidation(t *testing.T) {
	srv, nw := newTestServer(t, nil, fastOpts(1))
	cl, err := Dial(nw, srv.Addr(), fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Quit()
	// Drive raw commands through the authenticated session's control
	// channel: invalid stream counts must draw a 501.
	cl.mu.Lock()
	cl.c.sendf("SPAS zero")
	line, _ := cl.c.recv()
	cl.mu.Unlock()
	if !strings.HasPrefix(line, "501") {
		t.Errorf("SPAS zero reply = %q", line)
	}
	cl.mu.Lock()
	cl.c.sendf("SPAS 9999")
	line, _ = cl.c.recv()
	cl.mu.Unlock()
	if !strings.HasPrefix(line, "501") {
		t.Errorf("SPAS 9999 reply = %q", line)
	}
}

func TestRetrWithoutModeE(t *testing.T) {
	srv, nw := newTestServer(t, map[string][]byte{"f": []byte("data")}, fastOpts(1))
	conn, err := nw.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := newCtrl(conn)
	c.expect("220")
	// Authenticate manually with the same parameters.
	opts := fastOpts(1)
	c.sendf("AUTH GSSAPI")
	c.expect("334")
	perRound := opts.HandshakeWork / opts.HandshakeRounds
	var prev []byte
	for round := 0; round < opts.HandshakeRounds; round++ {
		token := handshakeToken(prev, round, perRound)
		prev = token
		c.sendf("ADAT %s", encodeToken(token))
		if round == opts.HandshakeRounds-1 {
			if _, err := c.expect("235"); err != nil {
				t.Fatal(err)
			}
			break
		}
		line, err := c.expect("335")
		if err != nil {
			t.Fatal(err)
		}
		tok, _ := decodeToken(strings.TrimPrefix(strings.TrimPrefix(line, "335 "), "ADAT="))
		prev = tok
	}
	// RETR without SPAS/MODE E must be refused with 425.
	c.sendf("RETR f")
	line, _ := c.recv()
	if !strings.HasPrefix(line, "425") {
		t.Errorf("RETR without data setup reply = %q", line)
	}
}

func TestDialFailsAgainstClosedServer(t *testing.T) {
	nw := netsim.New(netsim.Unshaped)
	if _, err := Dial(nw, "127.0.0.1:1", fastOpts(1)); err == nil {
		t.Error("Dial to dead address succeeded")
	}
}

func TestParseSize(t *testing.T) {
	if got := parseSize("150 Opening BINARY mode data connection (12345 bytes)"); got != 12345 {
		t.Errorf("parseSize = %d", got)
	}
	if got := parseSize("150 no size here"); got != -1 {
		t.Errorf("parseSize on malformed = %d", got)
	}
}
