package gridftp

import (
	"bytes"
	"crypto/rand"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bxsoap/internal/netsim"
)

// fastOpts keeps unit tests quick; benchmarks use realistic work.
func fastOpts(streams int) Options {
	return Options{Streams: streams, HandshakeWork: 64, HandshakeRounds: 4, BlockSize: 8 << 10}
}

func newTestServer(t *testing.T, files map[string][]byte, opts Options) (*Server, *netsim.Network) {
	t.Helper()
	root := t.TempDir()
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(root, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	nw := netsim.New(netsim.Unshaped)
	srv, err := NewServer(nw, root, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, nw
}

func randBytes(t *testing.T, n int) []byte {
	t.Helper()
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRetrieveSingleStream(t *testing.T) {
	payload := randBytes(t, 100<<10)
	srv, nw := newTestServer(t, map[string][]byte{"data.nc": payload}, fastOpts(1))
	cl, err := Dial(nw, srv.Addr(), fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Quit()
	local := filepath.Join(t.TempDir(), "out.nc")
	n, err := cl.Retrieve("data.nc", local)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(payload)) {
		t.Fatalf("retrieved %d bytes, want %d", n, len(payload))
	}
	got, err := os.ReadFile(local)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("payload corrupted")
	}
}

func TestRetrieveParallelStreams(t *testing.T) {
	// Payload large enough that blocks interleave across 4 streams.
	payload := randBytes(t, 300<<10)
	srv, nw := newTestServer(t, map[string][]byte{"big.nc": payload}, fastOpts(4))
	cl, err := Dial(nw, srv.Addr(), fastOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Quit()
	local := filepath.Join(t.TempDir(), "out.nc")
	if _, err := cl.Retrieve("big.nc", local); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(local)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("out-of-order reassembly corrupted payload")
	}
}

func TestStore(t *testing.T) {
	srv, nw := newTestServer(t, nil, fastOpts(2))
	payload := randBytes(t, 150<<10)
	src := filepath.Join(t.TempDir(), "src.nc")
	if err := os.WriteFile(src, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(nw, srv.Addr(), fastOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Quit()
	n, err := cl.Store(src, "stored.nc")
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(payload)) {
		t.Fatalf("stored %d bytes", n)
	}
	got, err := os.ReadFile(filepath.Join(srv.root, "stored.nc"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("stored payload corrupted")
	}
}

func TestSequentialTransfersOneSession(t *testing.T) {
	files := map[string][]byte{
		"a.nc": randBytes(t, 10<<10),
		"b.nc": randBytes(t, 20<<10),
	}
	srv, nw := newTestServer(t, files, fastOpts(1))
	cl, err := Dial(nw, srv.Addr(), fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Quit()
	dir := t.TempDir()
	for name, want := range files {
		local := filepath.Join(dir, name)
		if _, err := cl.Retrieve(name, local); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, _ := os.ReadFile(local)
		if !bytes.Equal(got, want) {
			t.Errorf("%s corrupted", name)
		}
	}
}

func TestRetrieveMissingFile(t *testing.T) {
	srv, nw := newTestServer(t, nil, fastOpts(1))
	cl, err := Dial(nw, srv.Addr(), fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Quit()
	if _, err := cl.Retrieve("ghost.nc", filepath.Join(t.TempDir(), "x")); err == nil {
		t.Error("missing file retrieved")
	}
}

func TestPathEscapeRejected(t *testing.T) {
	srv, nw := newTestServer(t, nil, fastOpts(1))
	cl, err := Dial(nw, srv.Addr(), fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Quit()
	if _, err := cl.Retrieve("../../etc/hostname", filepath.Join(t.TempDir(), "x")); err == nil {
		t.Error("path escape retrieved")
	}
}

func TestHandshakeRejectsBadToken(t *testing.T) {
	srv, nw := newTestServer(t, nil, fastOpts(1))
	conn, err := nw.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := newCtrl(conn)
	if _, err := c.expect("220"); err != nil {
		t.Fatal(err)
	}
	if err := c.sendf("AUTH GSSAPI"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.expect("334"); err != nil {
		t.Fatal(err)
	}
	if err := c.sendf("ADAT deadbeef"); err != nil {
		t.Fatal(err)
	}
	line, err := c.recv()
	if err != nil {
		t.Fatal(err)
	}
	if line[:3] != "535" {
		t.Errorf("bad token answer = %q, want 535", line)
	}
}

func TestTransferRequiresAuth(t *testing.T) {
	srv, nw := newTestServer(t, nil, fastOpts(1))
	conn, err := nw.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := newCtrl(conn)
	if _, err := c.expect("220"); err != nil {
		t.Fatal(err)
	}
	if err := c.sendf("SPAS 2"); err != nil {
		t.Fatal(err)
	}
	line, _ := c.recv()
	if line[:3] != "530" {
		t.Errorf("unauthenticated SPAS answer = %q, want 530", line)
	}
}

func TestHandshakeCostScalesWithWork(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	srvCheap, nwCheap := newTestServer(t, nil, Options{HandshakeWork: 64, HandshakeRounds: 4})
	srvDear, nwDear := newTestServer(t, nil, Options{HandshakeWork: 1 << 19, HandshakeRounds: 4})

	start := time.Now()
	cl1, err := Dial(nwCheap, srvCheap.Addr(), Options{HandshakeWork: 64, HandshakeRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	cheap := time.Since(start)
	cl1.Quit()

	start = time.Now()
	cl2, err := Dial(nwDear, srvDear.Addr(), Options{HandshakeWork: 1 << 19, HandshakeRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	dear := time.Since(start)
	cl2.Quit()

	if dear < cheap*3 {
		t.Errorf("handshake cost not scaling: cheap=%v dear=%v", cheap, dear)
	}
}

func TestEBlockHeaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	h := eblockHeader{flags: flagEOD, length: 1234567, offset: 89101112}
	if err := writeEBlockHeader(&buf, h); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != eblockHeaderLen {
		t.Fatalf("header length %d", buf.Len())
	}
	back, err := readEBlockHeader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Errorf("header round trip %+v != %+v", back, h)
	}
}

func TestSendReceiveEBlocksDirect(t *testing.T) {
	// Drive the striping machinery over in-memory pipes with 3 streams.
	payload := randBytes(t, 100_000)
	var srvConns, cliConns []net.Conn
	for i := 0; i < 3; i++ {
		a, b := net.Pipe()
		srvConns = append(srvConns, a)
		cliConns = append(cliConns, b)
	}
	out := filepath.Join(t.TempDir(), "out")
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := receiveEBlocks(cliConns, f)
		done <- err
	}()
	if err := sendEBlocks(srvConns, bytes.NewReader(payload), int64(len(payload)), 7000); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, _ := os.ReadFile(out)
	if !bytes.Equal(got, payload) {
		t.Error("direct eblock round trip corrupted")
	}
}

func TestQuitThenServerStillServesOthers(t *testing.T) {
	srv, nw := newTestServer(t, map[string][]byte{"f": randBytes(t, 1024)}, fastOpts(1))
	cl1, err := Dial(nw, srv.Addr(), fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	cl1.Quit()
	cl2, err := Dial(nw, srv.Addr(), fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Quit()
	if _, err := cl2.Retrieve("f", filepath.Join(t.TempDir(), "f")); err != nil {
		t.Fatal(err)
	}
}
