package gridftp

import (
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"

	"bxsoap/internal/core"
	"bxsoap/internal/netsim"
)

// classify wraps a control- or data-channel failure as a transport error.
// The granularity is deliberately per control exchange, not per conn call:
// once any control-channel read has failed or answered out of protocol,
// the channel position is unknown and the session is unusable — the
// failure class is transport either way.
//
//paylint:classifies
func classify(op string, err error) error {
	var te *core.TransportError
	if errors.As(err, &te) {
		return err
	}
	return &core.TransportError{Op: "gridftp " + op, Err: err}
}

// Client is a simulated GridFTP client (the role of the GridFTP C client
// library in the paper's testbed). Dial performs the control-channel
// greeting and the full authentication handshake, so a freshly dialed
// client has already paid GridFTP's fixed costs — which is exactly why the
// separated GridFTP scheme loses badly on small messages (Figure 4).
type Client struct {
	nw   *netsim.Network
	opts Options
	conn net.Conn
	c    *ctrl

	// mu serializes entire transfers: the FTP control channel is a
	// stateful command/reply sequence, so one Retrieve/Store owns the
	// whole client — control exchange, data-stream dials, block pump —
	// until it completes. Blocking I/O under this lock is the design.
	//paylint:serializes-io one stateful control-channel exchange per client
	mu sync.Mutex
}

// Dial connects and authenticates.
func Dial(nw *netsim.Network, addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	conn, err := nw.Dial(addr)
	if err != nil {
		return nil, classify("dial", err)
	}
	cl := &Client{nw: nw, opts: opts, conn: conn, c: newCtrl(conn)}
	if err := cl.handshake(); err != nil {
		conn.Close()
		return nil, classify("authenticate", err)
	}
	return cl, nil
}

func (cl *Client) handshake() error {
	if _, err := cl.c.expect("220"); err != nil {
		return err
	}
	if err := cl.c.sendf("AUTH GSSAPI"); err != nil {
		return err
	}
	if _, err := cl.c.expect("334"); err != nil {
		return err
	}
	rounds := cl.opts.HandshakeRounds
	perRound := cl.opts.HandshakeWork / rounds
	var prev []byte
	for round := 0; round < rounds; round++ {
		token := handshakeToken(prev, round, perRound)
		prev = token
		if err := cl.c.sendf("ADAT %s", encodeToken(token)); err != nil {
			return err
		}
		if round == rounds-1 {
			if _, err := cl.c.expect("235"); err != nil {
				return err
			}
			break
		}
		line, err := cl.c.expect("335")
		if err != nil {
			return err
		}
		reply := strings.TrimPrefix(strings.TrimPrefix(line, "335 "), "ADAT=")
		tok, err := decodeToken(reply)
		if err != nil {
			return fmt.Errorf("gridftp: malformed server token: %w", err)
		}
		// Verify the server's token with the same compute (mutual auth).
		want := handshakeToken(prev, round+1000, perRound)
		if encodeToken(tok) != encodeToken(want) {
			return fmt.Errorf("gridftp: server token mismatch")
		}
		prev = tok
	}
	return nil
}

// setupTransfer negotiates SPAS + MODE E and returns the data address.
func (cl *Client) setupTransfer() (string, error) {
	if err := cl.c.sendf("SPAS %d", cl.opts.Streams); err != nil {
		return "", err
	}
	line, err := cl.c.expect("229")
	if err != nil {
		return "", err
	}
	// "229 Entering Striped Passive Mode (host:port n)"
	open := strings.IndexByte(line, '(')
	closeIdx := strings.LastIndexByte(line, ')')
	if open < 0 || closeIdx <= open {
		return "", fmt.Errorf("gridftp: malformed SPAS reply %q", line)
	}
	fields := strings.Fields(line[open+1 : closeIdx])
	if len(fields) != 2 {
		return "", fmt.Errorf("gridftp: malformed SPAS reply %q", line)
	}
	if err := cl.c.sendf("MODE E"); err != nil {
		return "", err
	}
	if _, err := cl.c.expect("200"); err != nil {
		return "", err
	}
	return fields[0], nil
}

// dialStreams opens the parallel data connections (each pays the shaped
// connection-establishment RTT, concurrently).
func (cl *Client) dialStreams(addr string) ([]net.Conn, error) {
	conns := make([]net.Conn, cl.opts.Streams)
	errs := make([]error, cl.opts.Streams)
	var wg sync.WaitGroup
	for i := range conns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conns[i], errs[i] = cl.nw.Dial(addr)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			closeAll(conns)
			return nil, err
		}
	}
	return conns, nil
}

// Retrieve downloads remotePath into localPath, returning the byte count.
func (cl *Client) Retrieve(remotePath, localPath string) (int64, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	dataAddr, err := cl.setupTransfer()
	if err != nil {
		return 0, classify("setup transfer", err)
	}
	if err := cl.c.sendf("RETR %s", remotePath); err != nil {
		return 0, classify("RETR", err)
	}
	line, err := cl.c.expect("150")
	if err != nil {
		return 0, classify("RETR", err)
	}
	size := parseSize(line)
	conns, err := cl.dialStreams(dataAddr)
	if err != nil {
		return 0, classify("open data streams", err)
	}
	out, err := os.Create(localPath)
	if err != nil {
		closeAll(conns)
		return 0, err
	}
	n, rerr := receiveEBlocks(conns, out)
	closeAll(conns)
	if cerr := out.Close(); rerr == nil {
		rerr = cerr
	}
	if rerr != nil {
		return n, rerr
	}
	if size >= 0 && n != size {
		return n, fmt.Errorf("gridftp: received %d bytes, server announced %d", n, size)
	}
	if _, err := cl.c.expect("226"); err != nil {
		return n, classify("transfer confirmation", err)
	}
	return n, nil
}

// Store uploads localPath to remotePath.
func (cl *Client) Store(localPath, remotePath string) (int64, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	in, err := os.Open(localPath)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	st, err := in.Stat()
	if err != nil {
		return 0, err
	}
	dataAddr, err := cl.setupTransfer()
	if err != nil {
		return 0, classify("setup transfer", err)
	}
	if err := cl.c.sendf("ALLO %d", st.Size()); err != nil {
		return 0, classify("ALLO", err)
	}
	if _, err := cl.c.expect("200"); err != nil {
		return 0, classify("ALLO", err)
	}
	if err := cl.c.sendf("STOR %s", remotePath); err != nil {
		return 0, classify("STOR", err)
	}
	if _, err := cl.c.expect("150"); err != nil {
		return 0, classify("STOR", err)
	}
	conns, err := cl.dialStreams(dataAddr)
	if err != nil {
		return 0, classify("open data streams", err)
	}
	serr := sendEBlocks(conns, in, st.Size(), cl.opts.BlockSize)
	closeAll(conns)
	if serr != nil {
		return 0, serr
	}
	if _, err := cl.c.expect("226"); err != nil {
		return st.Size(), classify("transfer confirmation", err)
	}
	return st.Size(), nil
}

// Quit ends the session.
func (cl *Client) Quit() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.c.sendf("QUIT")
	cl.c.expect("221")
	return cl.conn.Close()
}

func parseSize(line150 string) int64 {
	open := strings.LastIndexByte(line150, '(')
	if open < 0 {
		return -1
	}
	rest := line150[open+1:]
	end := strings.IndexByte(rest, ' ')
	if end < 0 {
		return -1
	}
	n, err := strconv.ParseInt(rest[:end], 10, 64)
	if err != nil {
		return -1
	}
	return n
}
