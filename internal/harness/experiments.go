package harness

import (
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"bxsoap/internal/bxsa"
	"bxsoap/internal/dataset"
	"bxsoap/internal/netsim"
	"bxsoap/internal/xmltext"
)

// Figure5Sizes are the paper's model sizes for the large-message sweeps:
// 1365·4^k, chosen so the BXSA serialization runs from 16 KB to 64 MB.
var Figure5Sizes = []int{1365, 5460, 21840, 87360, 349440, 1397760, 5591040}

// Figure4Sizes are the small-message sweep sizes (0 to 1000 pairs).
var Figure4Sizes = []int{0, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}

// SizeRow is one line of Table 1.
type SizeRow struct {
	Format   string
	Bytes    int
	Overhead float64 // fraction over native
}

// Table1 measures the serialization size of the binary data set in each
// format at the given model size (paper: 1000).
func Table1(modelSize int) ([]SizeRow, error) {
	m := dataset.Generate(modelSize)
	native := m.NativeSize()

	bxsaBytes, err := bxsa.EncodedSize(m.Element(), bxsa.EncodeOptions{})
	if err != nil {
		return nil, err
	}
	ncBytes, err := m.NetCDF().Marshal()
	if err != nil {
		return nil, err
	}
	// Table 1's XML figure is namespace-free with the shortest tag names:
	// serialize just the two arrays without hints, wrapped minimally.
	xmlBytes, err := xmltext.Marshal(m.Element(), xmltext.EncodeOptions{})
	if err != nil {
		return nil, err
	}
	rows := []SizeRow{
		{Format: "Native representation", Bytes: native},
		{Format: "BXSA", Bytes: bxsaBytes},
		{Format: "netCDF", Bytes: len(ncBytes)},
		{Format: "XML 1.0", Bytes: len(xmlBytes)},
	}
	for i := range rows {
		rows[i].Overhead = float64(rows[i].Bytes-native) / float64(native)
	}
	return rows, nil
}

// PrintTable1 renders the rows like the paper's Table 1.
func PrintTable1(w io.Writer, rows []SizeRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Format\tSize (bytes)\tOverhead")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.1f%%\n", r.Format, r.Bytes, r.Overhead*100)
	}
	tw.Flush()
}

// Point is one measured (model size, response time) sample.
type Point struct {
	ModelSize int
	Response  time.Duration
	// Bandwidth in (double,int) pairs per second, the paper's Figure 5/6
	// unit.
	Bandwidth float64
	Err       error
}

// Series is one scheme's curve.
type Series struct {
	Scheme string
	Points []Point
}

// SweepConfig controls a response-time/bandwidth sweep.
type SweepConfig struct {
	Network *netsim.Network
	Sizes   []int
	// Iters per point; the minimum is reported (load-free response time).
	Iters int
	// MaxSizeFor optionally caps a scheme's sizes (e.g. XML at huge model
	// sizes is pointlessly slow — the paper notes it "lost the game at the
	// very beginning").
	MaxSizeFor map[string]int
	// Progress, when non-nil, receives human-readable progress lines.
	Progress io.Writer
}

// Sweep measures every scheme at every size.
func Sweep(schemes []Scheme, cfg SweepConfig) ([]Series, error) {
	out := make([]Series, 0, len(schemes))
	workdir, err := os.MkdirTemp("", "bxsoap-harness-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(workdir)
	iters := cfg.Iters
	if iters <= 0 {
		iters = 3
	}
	for _, s := range schemes {
		if err := s.Setup(cfg.Network, workdir); err != nil {
			return nil, fmt.Errorf("%s: setup: %w", s.Name(), err)
		}
		ser := Series{Scheme: s.Name()}
		for _, size := range cfg.Sizes {
			if maxSize, ok := cfg.MaxSizeFor[s.Name()]; ok && size > maxSize {
				continue
			}
			p := measurePoint(s, size, iters)
			if cfg.Progress != nil {
				if p.Err != nil {
					fmt.Fprintf(cfg.Progress, "%-28s n=%-8d ERROR: %v\n", s.Name(), size, p.Err)
				} else {
					fmt.Fprintf(cfg.Progress, "%-28s n=%-8d response=%-12v bandwidth=%.0f pairs/s\n",
						s.Name(), size, p.Response, p.Bandwidth)
				}
			}
			ser.Points = append(ser.Points, p)
		}
		if err := s.Teardown(); err != nil {
			return nil, fmt.Errorf("%s: teardown: %w", s.Name(), err)
		}
		out = append(out, ser)
	}
	return out, nil
}

func measurePoint(s Scheme, size, iters int) Point {
	m := dataset.Generate(size)
	// Warm-up (connection establishment, allocator, caches).
	if _, err := s.Invoke(m); err != nil {
		return Point{ModelSize: size, Err: err}
	}
	best := time.Duration(0)
	for i := 0; i < iters; i++ {
		start := time.Now()
		verified, err := s.Invoke(m)
		elapsed := time.Since(start)
		if err != nil {
			return Point{ModelSize: size, Err: err}
		}
		if verified != m.Verify() {
			return Point{ModelSize: size, Err: fmt.Errorf("verified %d of %d", verified, size)}
		}
		if best == 0 || elapsed < best {
			best = elapsed
		}
	}
	p := Point{ModelSize: size, Response: best}
	if best > 0 {
		p.Bandwidth = float64(size) / best.Seconds()
	}
	return p
}

// PrintResponseSeries renders a Figure 4-style table: response time (µs)
// per model size per scheme.
func PrintResponseSeries(w io.Writer, series []Series) {
	printSeries(w, series, "response (µs)", func(p Point) string {
		return fmt.Sprintf("%d", p.Response.Microseconds())
	})
}

// PrintBandwidthSeries renders a Figure 5/6-style table: bandwidth in
// (double,int) pairs per second per model size per scheme.
func PrintBandwidthSeries(w io.Writer, series []Series) {
	printSeries(w, series, "bandwidth (pairs/s)", func(p Point) string {
		return fmt.Sprintf("%.0f", p.Bandwidth)
	})
}

func printSeries(w io.Writer, series []Series, unit string, cell func(Point) string) {
	sizes := map[int]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			sizes[p.ModelSize] = true
		}
	}
	ordered := make([]int, 0, len(sizes))
	for s := range sizes {
		ordered = append(ordered, s)
	}
	sort.Ints(ordered)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "# (double,int)")
	for _, s := range series {
		fmt.Fprintf(tw, "\t%s", s.Scheme)
	}
	fmt.Fprintf(tw, "\t[%s]\n", unit)
	for _, size := range ordered {
		fmt.Fprintf(tw, "%d", size)
		for _, s := range series {
			val := "-"
			for _, p := range s.Points {
				if p.ModelSize == size {
					if p.Err != nil {
						val = "err"
					} else {
						val = cell(p)
					}
					break
				}
			}
			fmt.Fprintf(tw, "\t%s", val)
		}
		fmt.Fprintln(tw, "\t")
	}
	tw.Flush()
}

// Figure4Schemes returns the small-message comparison set.
func Figure4Schemes() []Scheme {
	return []Scheme{
		NewUnified("BXSA", "tcp"),
		NewUnified("XML", "http"),
		NewSeparatedHTTP(),
		NewSeparatedGridFTP(1),
	}
}

// Figure5Schemes returns the LAN large-message comparison set.
func Figure5Schemes() []Scheme {
	return []Scheme{
		NewUnified("BXSA", "tcp"),
		NewSeparatedHTTP(),
		NewSeparatedGridFTP(1),
		NewSeparatedGridFTP(4),
		NewSeparatedGridFTP(16),
		NewUnified("XML", "http"),
	}
}

// Figure6Schemes returns the WAN comparison set (the paper drops the
// XML/HTTP line, already off the chart).
func Figure6Schemes() []Scheme {
	return []Scheme{
		NewSeparatedGridFTP(16),
		NewUnified("BXSA", "tcp"),
		NewSeparatedGridFTP(4),
		NewSeparatedHTTP(),
		NewSeparatedGridFTP(1),
	}
}
