package harness

// The SLO ramp experiment: a deterministic demonstration that the burn-rate
// engine fires and resolves on a real overload, end to end through the wire
// path. A BXSA/TCP client-server pair runs over a netsim LAN link on a
// simulated clock (netsim shaping, observer spans, window rotation, and the
// server's service time all read the same fake time source), so the ramp —
// healthy windows, an overload plateau whose latency blows through the SLO's
// p99 target, then recovery — produces the identical alert lifecycle on
// every run: one EvSLOFired journal event carrying the exemplar trace ID of
// an offending request, then one EvSLOResolved once a clean window has
// elapsed. The harness asserts the whole lifecycle and fails the run — and
// with it the CI smoke gate — if any link in the chain breaks.

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/core"
	"bxsoap/internal/netsim"
	"bxsoap/internal/obs"
	"bxsoap/internal/tcpbind"
)

// simClock is a manual clock shared by netsim, both observers, and the
// experiment's overloaded handler: Sleep advances Now instead of waiting,
// so the whole ramp runs in simulated time and finishes in milliseconds of
// wall time with bit-identical latencies.
type simClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *simClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *simClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// SLORampConfig parameterizes the ramp. The zero value is the standard
// demonstration: 1-second windows, a 10 ms p99 objective, 1 ms healthy and
// 50 ms overloaded service time.
type SLORampConfig struct {
	// Window is the observation-window duration (default 1s of simulated
	// time).
	Window time.Duration
	// P99 is the SLO's latency target (default 10ms).
	P99 time.Duration
	// HealthyService/OverloadService are the handler's simulated service
	// times in the two phases (defaults 1ms and 50ms).
	HealthyService, OverloadService time.Duration
	// HealthyWindows/OverloadWindows/RecoveryWindows shape the ramp
	// (defaults 4, 2, 2). Each phase is aligned to window boundaries.
	HealthyWindows, OverloadWindows, RecoveryWindows int
	// CallsPerWindow is the request count per healthy/recovery window
	// (default 20); overload windows carry half as many, since each call
	// is slower.
	CallsPerWindow int
	// Progress, when non-nil, receives a per-window line of the SLO state
	// as the ramp advances.
	Progress io.Writer
}

func (c SLORampConfig) withDefaults() SLORampConfig {
	if c.Window <= 0 {
		c.Window = time.Second
	}
	if c.P99 <= 0 {
		c.P99 = 10 * time.Millisecond
	}
	if c.HealthyService <= 0 {
		c.HealthyService = time.Millisecond
	}
	if c.OverloadService <= 0 {
		c.OverloadService = 50 * time.Millisecond
	}
	if c.HealthyWindows <= 0 {
		c.HealthyWindows = 4
	}
	if c.OverloadWindows <= 0 {
		c.OverloadWindows = 2
	}
	if c.RecoveryWindows <= 0 {
		c.RecoveryWindows = 2
	}
	if c.CallsPerWindow <= 0 {
		c.CallsPerWindow = 20
	}
	return c
}

// SLORampReport is the experiment's machine-readable outcome: the alert
// lifecycle events as journaled, the exemplar's resolved trace, and the
// final SLO status for the artifact.
type SLORampReport struct {
	Fired    obs.Event `json:"fired"`
	Resolved obs.Event `json:"resolved"`
	// Exemplar is the offending request's trace ID carried by the fired
	// event, verified resolvable in the flight recorder.
	Exemplar string `json:"exemplar_trace_id"`
	// ExemplarTrace is the resolved trace tree (client and server hops
	// joined), proving the p99 spike links to a recorded request.
	ExemplarTrace *obs.TraceTree  `json:"exemplar_trace,omitempty"`
	Status        []obs.SLOStatus `json:"slo_status"`
	Calls         int             `json:"calls"`
}

// sloOp is the ramp's operation name: the request body's first-child local
// name, which is what the dimensional series and the SLO engine key on.
const sloOp = "probe"

// RunSLORamp drives the overload ramp and validates the full alert
// lifecycle. A non-nil error means the chain broke somewhere — the alert
// never fired, fired at the wrong time, never resolved, or the exemplar
// trace was not resolvable — and the caller (benchharness, and through it
// the CI smoke job) should fail.
func RunSLORamp(cfg SLORampConfig) (*SLORampReport, error) {
	cfg = cfg.withDefaults()

	// One clock for everything. The epoch is arbitrary but fixed; windows
	// are derived from it, so the whole run is reproducible bit for bit.
	clock := &simClock{t: time.Unix(1_700_000_000, 0)}
	restore := netsim.SetClock(clock)
	defer restore()

	rec := obs.NewRecorder(obs.RecorderConfig{})
	srvObs := obs.New(
		obs.WithNode("server"),
		obs.WithRecorder(rec),
		obs.WithNow(clock.Now),
		obs.WithWindow(cfg.Window),
		obs.WithDims("BXSA", "tcp"),
		obs.WithSLOs(obs.SLO{Op: sloOp, P99: cfg.P99}),
	)
	cliObs := obs.New(
		obs.WithNode("client"),
		obs.WithRecorder(rec),
		obs.WithNow(clock.Now),
		obs.WithWindow(cfg.Window),
		obs.WithDims("BXSA", "tcp"),
	)

	// The handler's service time is the overload lever: the ramp flips it
	// between the healthy and overloaded values at window boundaries. The
	// sleep advances the simulated clock, so the server-side span records
	// exactly this duration as handler time.
	var service atomic.Int64
	service.Store(int64(cfg.HealthyService))
	handler := func(_ context.Context, req *core.Envelope) (*core.Envelope, error) {
		clock.Sleep(time.Duration(service.Load()))
		reply := bxdm.NewElement(bxdm.PName("urn:bxsoap:slo", "slo", "probeResponse"))
		return core.NewEnvelope(reply), nil
	}

	nw := netsim.New(netsim.LAN, netsim.WithObserver(cliObs))
	l, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("slo ramp: listen: %w", err)
	}
	srv := core.NewServer(core.BXSAEncoding{},
		tcpbind.NewListener(l, tcpbind.WithObserver(srvObs)),
		handler, core.WithObserver(srvObs))
	go srv.Serve()
	eng := core.NewEngine(core.BXSAEncoding{},
		tcpbind.New(nw.Dial, l.Addr().String(), tcpbind.WithObserver(cliObs)),
		core.WithObserver(cliObs))
	defer srv.Close()
	defer eng.Close()

	req := func() *core.Envelope {
		op := bxdm.NewElement(bxdm.PName("urn:bxsoap:slo", "slo", sloOp))
		op.DeclareNamespace("slo", "urn:bxsoap:slo")
		return core.NewEnvelope(op)
	}

	calls := 0
	invoke := func() error {
		if _, err := eng.Call(context.Background(), req()); err != nil {
			return fmt.Errorf("slo ramp: call %d: %w", calls, err)
		}
		calls++
		return nil
	}
	// nextWindow advances the simulated clock to the next window boundary,
	// so every phase starts flush on a fresh window and the evaluation
	// schedule is identical on every run.
	nextWindow := func() {
		now := clock.Now().UnixNano()
		w := int64(cfg.Window)
		clock.Sleep(time.Duration(w - now%w))
	}
	progress := func(phase string) {
		if cfg.Progress == nil {
			return
		}
		for _, s := range srvObs.SLOStatus() {
			fmt.Fprintf(cfg.Progress, "%-9s calls=%-4d burn_fast=%-8.1f burn_slow=%-8.1f firing=%v\n",
				phase, calls, s.BurnFast, s.BurnSlow, s.Firing)
		}
	}

	runPhase := func(phase string, windows, perWindow int) error {
		for w := 0; w < windows; w++ {
			for i := 0; i < perWindow; i++ {
				if err := invoke(); err != nil {
					return err
				}
			}
			nextWindow()
			// The engine evaluates a completed window on the first sample
			// of the next one; one probe call per boundary keeps the
			// evaluation schedule independent of phase lengths.
			if err := invoke(); err != nil {
				return err
			}
			progress(phase)
		}
		return nil
	}

	// Phase 1 — healthy baseline: fills the slow window with good samples
	// and proves the alert does not fire on a clean system.
	if err := runPhase("healthy", cfg.HealthyWindows, cfg.CallsPerWindow-1); err != nil {
		return nil, err
	}
	if srvObs.SLOFiring() {
		return nil, fmt.Errorf("slo ramp: alert firing after healthy baseline (false positive)")
	}

	// Phase 2 — overload: every call's service time blows through the p99
	// target, so the first completed overload window burns ~100x budget
	// and both evaluation windows agree.
	service.Store(int64(cfg.OverloadService))
	if err := runPhase("overload", cfg.OverloadWindows, cfg.CallsPerWindow/2-1); err != nil {
		return nil, err
	}
	if !srvObs.SLOFiring() {
		return nil, fmt.Errorf("slo ramp: alert did not fire after %d overloaded windows", cfg.OverloadWindows)
	}

	// Phase 3 — recovery: one clean completed window drops the fast burn
	// below 1.0 and the alert must resolve.
	service.Store(int64(cfg.HealthyService))
	if err := runPhase("recovery", cfg.RecoveryWindows, cfg.CallsPerWindow-1); err != nil {
		return nil, err
	}
	if srvObs.SLOFiring() {
		return nil, fmt.Errorf("slo ramp: alert still firing after %d clean windows", cfg.RecoveryWindows)
	}

	// Validate the journaled lifecycle: exactly one fire followed by one
	// resolve, and the fired event's exemplar trace ID must resolve to a
	// recorded trace in the flight recorder.
	var fired, resolved []obs.Event
	events := rec.Events(0)
	for i := len(events) - 1; i >= 0; i-- { // oldest first
		switch events[i].Kind {
		case obs.EvSLOFired:
			fired = append(fired, events[i])
		case obs.EvSLOResolved:
			resolved = append(resolved, events[i])
		}
	}
	if len(fired) != 1 || len(resolved) != 1 {
		return nil, fmt.Errorf("slo ramp: want exactly one fire and one resolve, got %d and %d", len(fired), len(resolved))
	}
	if !fired[0].At.Before(resolved[0].At) {
		return nil, fmt.Errorf("slo ramp: fire (%v) not before resolve (%v)", fired[0].At, resolved[0].At)
	}
	if fired[0].Trace == "" {
		return nil, fmt.Errorf("slo ramp: fired event carries no exemplar trace ID")
	}
	tid, err := obs.ParseTraceID(fired[0].Trace)
	if err != nil {
		return nil, fmt.Errorf("slo ramp: bad exemplar trace ID %q: %w", fired[0].Trace, err)
	}
	tree := rec.Trace(tid)
	if tree == nil {
		return nil, fmt.Errorf("slo ramp: exemplar trace %s not resolvable in the flight recorder", fired[0].Trace)
	}

	return &SLORampReport{
		Fired:         fired[0],
		Resolved:      resolved[0],
		Exemplar:      fired[0].Trace,
		ExemplarTrace: tree,
		Status:        srvObs.SLOStatus(),
		Calls:         calls,
	}, nil
}

// PrintSLORamp renders the ramp's outcome for humans: the lifecycle events
// and the exemplar linkage.
func PrintSLORamp(w io.Writer, r *SLORampReport) {
	fmt.Fprintf(w, "calls: %d\n", r.Calls)
	fmt.Fprintf(w, "fired:    %s %s\n", r.Fired.Name, r.Fired.Detail)
	fmt.Fprintf(w, "resolved: %s %s\n", r.Resolved.Name, r.Resolved.Detail)
	fmt.Fprintf(w, "exemplar: trace %s resolved in flight recorder (%d hop(s))\n",
		r.Exemplar, r.ExemplarTrace.Hops)
	for _, s := range r.Status {
		fmt.Fprintf(w, "slo %s: p99_target=%v budget_used=%.2f firing=%v\n",
			s.Op, s.P99Target, s.BudgetUsed, s.Firing)
	}
}
