package harness

import (
	"bytes"
	"strings"
	"testing"

	"bxsoap/internal/dataset"
	"bxsoap/internal/gridftp"
	"bxsoap/internal/netsim"
)

// fastGridFTP keeps the simulated handshake cheap in unit tests.
var fastGridFTP = gridftp.Options{HandshakeWork: 256, HandshakeRounds: 2}

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]SizeRow{}
	for _, r := range rows {
		byName[r.Format] = r
	}
	native := byName["Native representation"]
	if native.Bytes != 12000 || native.Overhead != 0 {
		t.Errorf("native = %+v", native)
	}
	// Table 1: BXSA ~1.3%, netCDF ~2.2%, XML ~99% overhead. Check the
	// shape: binary formats in single digits, XML around doubling.
	if o := byName["BXSA"].Overhead; o <= 0 || o > 0.05 {
		t.Errorf("BXSA overhead = %.1f%%, want ~1%%", o*100)
	}
	if o := byName["netCDF"].Overhead; o <= 0 || o > 0.05 {
		t.Errorf("netCDF overhead = %.1f%%, want ~2%%", o*100)
	}
	if o := byName["XML 1.0"].Overhead; o < 0.6 || o > 1.6 {
		t.Errorf("XML overhead = %.1f%%, want ~99%%", o*100)
	}
	// Ordering: BXSA < netCDF < XML, as in the paper.
	if !(byName["BXSA"].Bytes < byName["netCDF"].Bytes && byName["netCDF"].Bytes < byName["XML 1.0"].Bytes) {
		t.Errorf("size ordering wrong: %+v", rows)
	}
}

func TestPrintTable1(t *testing.T) {
	rows, err := Table1(10)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	out := buf.String()
	for _, want := range []string{"Format", "BXSA", "netCDF", "XML 1.0", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestUnifiedSchemesEndToEnd(t *testing.T) {
	nw := netsim.New(netsim.Unshaped)
	for _, s := range []Scheme{
		NewUnified("BXSA", "tcp"),
		NewUnified("XML", "http"),
		NewUnified("XML", "tcp"),
		NewUnified("BXSA", "http"),
	} {
		if err := s.Setup(nw, t.TempDir()); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		m := dataset.Generate(123)
		got, err := s.Invoke(m)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if got != 123 {
			t.Errorf("%s: verified = %d", s.Name(), got)
		}
		if err := s.Teardown(); err != nil {
			t.Errorf("%s: teardown: %v", s.Name(), err)
		}
	}
}

func TestSeparatedHTTPSchemeEndToEnd(t *testing.T) {
	nw := netsim.New(netsim.Unshaped)
	s := NewSeparatedHTTP()
	if err := s.Setup(nw, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer s.Teardown()
	m := dataset.Generate(321)
	got, err := s.Invoke(m)
	if err != nil {
		t.Fatal(err)
	}
	if got != 321 {
		t.Errorf("verified = %d", got)
	}
	// Second invocation works (fresh file name).
	if got, err = s.Invoke(dataset.Generate(10)); err != nil || got != 10 {
		t.Errorf("second invoke = %d, %v", got, err)
	}
}

func TestSeparatedGridFTPSchemeEndToEnd(t *testing.T) {
	nw := netsim.New(netsim.Unshaped)
	s := NewSeparatedGridFTP(4)
	s.Opts = fastGridFTP
	if err := s.Setup(nw, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer s.Teardown()
	got, err := s.Invoke(dataset.Generate(777))
	if err != nil {
		t.Fatal(err)
	}
	if got != 777 {
		t.Errorf("verified = %d", got)
	}
}

func TestSweepProducesSeries(t *testing.T) {
	nw := netsim.New(netsim.Unshaped)
	gftp := NewSeparatedGridFTP(1)
	gftp.Opts = fastGridFTP
	schemes := []Scheme{NewUnified("BXSA", "tcp"), gftp}
	series, err := Sweep(schemes, SweepConfig{
		Network: nw,
		Sizes:   []int{0, 50, 200},
		Iters:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 3 {
			t.Fatalf("%s: points = %d", s.Scheme, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Err != nil {
				t.Errorf("%s n=%d: %v", s.Scheme, p.ModelSize, p.Err)
			}
			if p.ModelSize > 0 && p.Response <= 0 {
				t.Errorf("%s n=%d: response = %v", s.Scheme, p.ModelSize, p.Response)
			}
		}
	}

	var buf bytes.Buffer
	PrintResponseSeries(&buf, series)
	if !strings.Contains(buf.String(), "SOAP over BXSA/TCP") || !strings.Contains(buf.String(), "200") {
		t.Errorf("response table malformed:\n%s", buf.String())
	}
	buf.Reset()
	PrintBandwidthSeries(&buf, series)
	if !strings.Contains(buf.String(), "pairs/s") {
		t.Errorf("bandwidth table malformed:\n%s", buf.String())
	}
}

func TestSweepMaxSizeFor(t *testing.T) {
	nw := netsim.New(netsim.Unshaped)
	schemes := []Scheme{NewUnified("XML", "http")}
	series, err := Sweep(schemes, SweepConfig{
		Network:    nw,
		Sizes:      []int{10, 100000},
		Iters:      1,
		MaxSizeFor: map[string]int{"SOAP over XML/HTTP": 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series[0].Points) != 1 {
		t.Errorf("cap ignored: %d points", len(series[0].Points))
	}
}

func TestBXSAFasterThanXMLUnified(t *testing.T) {
	// The headline claim at moderate size on an unshaped network: the
	// conversion cost alone should make XML several times slower.
	nw := netsim.New(netsim.Unshaped)
	series, err := Sweep(
		[]Scheme{NewUnified("BXSA", "tcp"), NewUnified("XML", "http")},
		SweepConfig{Network: nw, Sizes: []int{50000}, Iters: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	bx := series[0].Points[0].Response
	xml := series[1].Points[0].Response
	if bx <= 0 || xml <= 0 {
		t.Fatalf("bad measurements: %v, %v", bx, xml)
	}
	if xml < bx*2 {
		t.Errorf("XML (%v) not clearly slower than BXSA (%v) at 50k pairs", xml, bx)
	}
}

func TestFigureSchemeSetsConstructible(t *testing.T) {
	if len(Figure4Schemes()) != 4 {
		t.Error("Figure 4 wants 4 schemes")
	}
	if len(Figure5Schemes()) != 6 {
		t.Error("Figure 5 wants 6 schemes")
	}
	if len(Figure6Schemes()) != 5 {
		t.Error("Figure 6 wants 5 schemes")
	}
	if len(Figure5Sizes) != 7 || Figure5Sizes[0] != 1365 || Figure5Sizes[6] != 5591040 {
		t.Error("Figure 5 sizes wrong")
	}
}
