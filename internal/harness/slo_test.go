package harness

import (
	"strings"
	"testing"
	"time"

	"bxsoap/internal/obs"
)

// TestRunSLORampLifecycle drives the full deterministic overload ramp: the
// simulated clock is shared by netsim, both observers, and the handler, so
// window rotation, burn-rate evaluation, and the fire→resolve transitions
// land on exact window boundaries regardless of host scheduling.
func TestRunSLORampLifecycle(t *testing.T) {
	var progress strings.Builder
	report, err := RunSLORamp(SLORampConfig{Progress: &progress})
	if err != nil {
		t.Fatalf("RunSLORamp: %v\nprogress:\n%s", err, progress.String())
	}

	if report.Fired.Name != "slo.fired" {
		t.Errorf("fired event = %q, want slo.fired", report.Fired.Name)
	}
	if report.Resolved.Name != "slo.resolved" {
		t.Errorf("resolved event = %q, want slo.resolved", report.Resolved.Name)
	}
	if !report.Fired.At.Before(report.Resolved.At) {
		t.Errorf("fired at %v not before resolved at %v", report.Fired.At, report.Resolved.At)
	}
	if report.Exemplar == "" {
		t.Error("fired event carries no exemplar trace ID")
	}
	if report.ExemplarTrace == nil {
		t.Fatal("exemplar trace not resolvable in the flight recorder")
	}
	// One client hop and one server hop joined under the propagated ID.
	if report.ExemplarTrace.Hops != 2 {
		t.Errorf("exemplar trace hops = %d, want 2", report.ExemplarTrace.Hops)
	}
	if len(report.Status) != 1 || report.Status[0].Op != "probe" {
		t.Fatalf("SLO status = %+v, want one entry for probe", report.Status)
	}
	st := report.Status[0]
	if st.Firing {
		t.Error("SLO still firing after the recovery phase")
	}
	if st.BudgetUsed <= 0 {
		t.Errorf("budget used = %v, want > 0 after the overload phase", st.BudgetUsed)
	}
	if report.Calls <= 0 {
		t.Errorf("calls = %d, want > 0", report.Calls)
	}
}

// TestRunSLORampRespectsConfig checks the ramp honors a non-default shape
// and still converges, exercising window arithmetic at a different period.
func TestRunSLORampRespectsConfig(t *testing.T) {
	report, err := RunSLORamp(SLORampConfig{
		Window:         2 * time.Second,
		P99:            5 * time.Millisecond,
		HealthyWindows: 3,
		CallsPerWindow: 10,
	})
	if err != nil {
		t.Fatalf("RunSLORamp: %v", err)
	}
	if report.Status[0].P99Target != 5*time.Millisecond {
		t.Errorf("p99 target = %v, want 5ms", report.Status[0].P99Target)
	}
	if tid, err := obs.ParseTraceID(report.Exemplar); err != nil || tid == 0 {
		t.Errorf("exemplar %q: %v", report.Exemplar, err)
	}
}
