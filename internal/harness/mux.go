package harness

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"bxsoap/internal/core"
	"bxsoap/internal/dataset"
	"bxsoap/internal/muxbind"
	"bxsoap/internal/netsim"
	"bxsoap/internal/svcpool"
)

// buildMux starts a muxbind server for the unified verification service on
// nw and returns an svcpool of engines whose bindings multiplex streams over
// at most `conns` shared connections. The pool's "connections" are logical
// bindings — cheap stream slots — while the socket budget is enforced by the
// transport's session cap, which is the asymmetry this experiment measures.
func buildMux(nw *netsim.Network, encoding string, conns, concurrency int) (pooledCaller, []func() error, error) {
	l, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	// Size the per-connection stream window so `concurrency` callers spread
	// over `conns` sessions block on completions, not on an artificially
	// small credit window, and the dispatch queue so admission control never
	// sheds: this experiment measures completed throughput, not overload
	// behaviour (that path has its own tests).
	credit := 2 * (concurrency + conns - 1) / conns
	if credit < 64 {
		credit = 64
	}
	cfg := muxbind.Config{StreamCredit: credit, Queue: 2 * concurrency}
	pcfg := svcpool.Config{MaxConns: concurrency, MaxInflight: concurrency}
	addr := l.Addr().String()
	switch encoding {
	case "BXSA":
		srv := muxbind.NewServer(core.BXSAEncoding{}, unifiedHandler, cfg)
		go srv.Serve(l)
		tr := muxbind.NewTransport(nw.Dial, addr, muxbind.WithMaxSessions(conns))
		pool := svcpool.New(func(context.Context) (*core.Engine[core.BXSAEncoding, *muxbind.Binding], error) {
			return core.NewEngine(core.BXSAEncoding{}, tr.NewBinding()), nil
		}, pcfg)
		return pool, []func() error{pool.Close, tr.Close, srv.Close}, nil
	case "XML":
		srv := muxbind.NewServer(core.XMLEncoding{}, unifiedHandler, cfg)
		go srv.Serve(l)
		tr := muxbind.NewTransport(nw.Dial, addr, muxbind.WithMaxSessions(conns))
		pool := svcpool.New(func(context.Context) (*core.Engine[core.XMLEncoding, *muxbind.Binding], error) {
			return core.NewEngine(core.XMLEncoding{}, tr.NewBinding()), nil
		}, pcfg)
		return pool, []func() error{pool.Close, tr.Close, srv.Close}, nil
	default:
		l.Close()
		return nil, nil, fmt.Errorf("harness: unknown mux encoding %s", encoding)
	}
}

// MuxThroughput measures aggregate request throughput over the
// stream-multiplexed transport: `calls` total invocations of the unified
// verification service at model size `size`, from `concurrency` concurrent
// callers interleaved onto at most `conns` connections. It is the mux
// counterpart of PooledThroughput — compare the two at equal `conns` to see
// what multiplexing buys at a fixed socket budget.
func MuxThroughput(nw *netsim.Network, encoding string, conns, concurrency, calls, size int) (ThroughputPoint, error) {
	pt := ThroughputPoint{
		Scheme:      fmt.Sprintf("Mux %s/TCP (conns=%d, c=%d)", encoding, conns, concurrency),
		Profile:     nw.Profile().Name,
		Concurrency: concurrency,
		Calls:       calls,
	}
	pool, closers, err := buildMux(nw, encoding, conns, concurrency)
	if err != nil {
		return pt, err
	}
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	m := dataset.Generate(size)
	env := core.NewEnvelope(m.Element())
	// Warm-up: one exchange per session so every socket is dialed and its
	// initial credit window received before the clock starts.
	if err := runConcurrent(pool, env, conns, conns); err != nil {
		return pt, err
	}
	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	if err := runConcurrent(pool, env, concurrency, calls); err != nil {
		return pt, err
	}
	pt.Elapsed = time.Since(start)
	runtime.ReadMemStats(&ms1)
	pt.CallsPerSec = float64(calls) / pt.Elapsed.Seconds()
	pt.PairsPerSec = pt.CallsPerSec * float64(size)
	pt.BytesPerOp = (ms1.TotalAlloc - ms0.TotalAlloc) / uint64(calls)
	pt.AllocsPerOp = (ms1.Mallocs - ms0.Mallocs) / uint64(calls)
	pt.Stats = pool.Stats()
	return pt, nil
}

// ThroughputRecord flattens a throughput point into a bench artifact record
// keyed by its scheme label, so cmd/benchdiff tracks concurrent-throughput
// trajectories (notably mux at c=1000) alongside the stage combos.
func ThroughputRecord(pt ThroughputPoint) BenchRecord {
	r := BenchRecord{
		Scheme:      pt.Scheme,
		Calls:       uint64(pt.Calls),
		BytesPerOp:  pt.BytesPerOp,
		AllocsPerOp: pt.AllocsPerOp,
	}
	if pt.Calls > 0 {
		r.NsPerOp = pt.Elapsed.Nanoseconds() / int64(pt.Calls)
	}
	return r
}
