package harness

import (
	"strings"
	"testing"
	"time"

	"bxsoap/internal/core"
	"bxsoap/internal/netsim"
)

// TestMuxThroughputCompletes smoke-tests the mux experiment plumbing at a
// small scale: every call completes, the socket budget is respected by
// construction (the transport caps sessions), and the pooled payloads all
// return to the pool once the schemes tear down. The full c=1000 contest
// against the pooled runtime is BenchmarkMuxThroughput at the repo root.
func TestMuxThroughputCompletes(t *testing.T) {
	baseline := core.PayloadsInUse()
	pt, err := MuxThroughput(netsim.New(netsim.LAN), "BXSA", 2, 16, 64, 50)
	if err != nil {
		t.Fatal(err)
	}
	if pt.CallsPerSec <= 0 {
		t.Errorf("CallsPerSec = %v, want > 0", pt.CallsPerSec)
	}
	if !strings.Contains(pt.Scheme, "Mux") {
		t.Errorf("Scheme = %q, want a mux label", pt.Scheme)
	}
	rec := ThroughputRecord(pt)
	if rec.Scheme != pt.Scheme || rec.NsPerOp <= 0 {
		t.Errorf("ThroughputRecord = %+v", rec)
	}
	deadline := time.Now().Add(2 * time.Second)
	for core.PayloadsInUse() != baseline && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if n := core.PayloadsInUse(); n != baseline {
		t.Errorf("PayloadsInUse = %d, want %d (leak across mux teardown)", n, baseline)
	}
}
