package harness

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"bxsoap/internal/dataset"
	"bxsoap/internal/netsim"
	"bxsoap/internal/obs"
)

// StageResult decomposes a scheme's request-response time into the pipeline
// stages the observability layer traces. The derived columns cover the whole
// client-visible call:
//
//	Encode  = client encode + server encode (serialization on both sides)
//	Decode  = client decode + server decode (deserialization on both sides)
//	Handler = server handler
//	Wire    = Total − Encode − Decode − Handler (transport, framing, queueing)
//	Total   = mean client span (encode + send + wait + decode)
//
// Client/Server carry the raw per-side snapshots for JSON export, so a
// consumer can recompute any other attribution it prefers.
type StageResult struct {
	Scheme  string        `json:"scheme"`
	Calls   uint64        `json:"calls"`
	Encode  time.Duration `json:"encode_ns"`
	Wire    time.Duration `json:"wire_ns"`
	Handler time.Duration `json:"handler_ns"`
	Decode  time.Duration `json:"decode_ns"`
	Total   time.Duration `json:"total_ns"`
	Client  *obs.Snapshot `json:"client"`
	Server  *obs.Snapshot `json:"server"`
}

// StageConfig parameterizes a breakdown run.
type StageConfig struct {
	Profile netsim.Profile
	// ModelSize is the dataset size ((double,int) pairs) per call.
	ModelSize int
	// Calls per scheme after one warm-up invocation.
	Calls int
	// Progress, when non-nil, receives human-readable progress lines.
	Progress io.Writer
}

// StageBreakdown runs the four unified policy combinations with a fresh
// observer pair per combo (client and server sides instrumented separately)
// and returns per-stage mean latencies. Each combo gets its own shaped
// network so the netsim counters in the client snapshot belong to that combo
// alone.
func StageBreakdown(cfg StageConfig) ([]StageResult, error) {
	if cfg.ModelSize <= 0 {
		cfg.ModelSize = 1000
	}
	if cfg.Calls <= 0 {
		cfg.Calls = 20
	}
	combos := []struct{ encoding, transport string }{
		{"BXSA", "tcp"},
		{"XML", "tcp"},
		{"BXSA", "http"},
		{"XML", "http"},
	}
	m := dataset.Generate(cfg.ModelSize)
	out := make([]StageResult, 0, len(combos))
	for _, c := range combos {
		cliObs, srvObs := obs.New(), obs.New()
		nw := netsim.New(cfg.Profile, netsim.WithObserver(cliObs))
		u := NewUnified(c.encoding, c.transport)
		u.ClientObs, u.ServerObs = cliObs, srvObs
		if err := u.Setup(nw, ""); err != nil {
			return nil, fmt.Errorf("%s: setup: %w", u.Name(), err)
		}
		// Warm-up covers connection establishment and pool priming, then
		// reset so the steady-state calls alone shape the histograms.
		if _, err := u.Invoke(m); err != nil {
			u.Teardown()
			return nil, fmt.Errorf("%s: warm-up: %w", u.Name(), err)
		}
		cliObs.Reset()
		srvObs.Reset()
		for i := 0; i < cfg.Calls; i++ {
			verified, err := u.Invoke(m)
			if err != nil {
				u.Teardown()
				return nil, fmt.Errorf("%s: call %d: %w", u.Name(), i, err)
			}
			if verified != m.Verify() {
				u.Teardown()
				return nil, fmt.Errorf("%s: call %d verified %d of %d", u.Name(), i, verified, cfg.ModelSize)
			}
		}
		r := deriveStages(u.Name(), cliObs, srvObs)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "%-28s encode=%-10v wire=%-10v handler=%-10v decode=%-10v total=%v\n",
				r.Scheme, r.Encode, r.Wire, r.Handler, r.Decode, r.Total)
		}
		if err := u.Teardown(); err != nil {
			return nil, fmt.Errorf("%s: teardown: %w", u.Name(), err)
		}
		out = append(out, r)
	}
	return out, nil
}

func deriveStages(name string, cli, srv *obs.Observer) StageResult {
	mean := func(o *obs.Observer, st obs.Stage) time.Duration {
		return o.StageSnapshot(st).Mean()
	}
	r := StageResult{
		Scheme:  name,
		Calls:   cli.Counter(obs.CallsStarted),
		Encode:  mean(cli, obs.ClientEncode) + mean(srv, obs.ServerEncode),
		Decode:  mean(cli, obs.ClientDecode) + mean(srv, obs.ServerDecode),
		Handler: mean(srv, obs.ServerHandler),
		Total: mean(cli, obs.ClientEncode) + mean(cli, obs.ClientSend) +
			mean(cli, obs.ClientWait) + mean(cli, obs.ClientDecode),
		Client: cli.Snapshot(),
		Server: srv.Snapshot(),
	}
	if wire := r.Total - r.Encode - r.Decode - r.Handler; wire > 0 {
		r.Wire = wire
	}
	return r
}

// PrintStageBreakdown renders the per-stage latency table (values in µs).
func PrintStageBreakdown(w io.Writer, results []StageResult) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tcalls\tencode (µs)\twire (µs)\thandler (µs)\tdecode (µs)\ttotal (µs)")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.Scheme, r.Calls,
			r.Encode.Microseconds(), r.Wire.Microseconds(), r.Handler.Microseconds(),
			r.Decode.Microseconds(), r.Total.Microseconds())
	}
	tw.Flush()
}
