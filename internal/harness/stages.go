package harness

import (
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"bxsoap/internal/dataset"
	"bxsoap/internal/netsim"
	"bxsoap/internal/obs"
)

// StageResult decomposes a scheme's request-response time into the pipeline
// stages the observability layer traces. The derived columns cover the whole
// client-visible call:
//
//	Encode  = client encode + server encode (serialization on both sides)
//	Decode  = client decode + server decode (deserialization on both sides)
//	Handler = server handler
//	Wire    = Total − Encode − Decode − Handler (transport, framing, queueing)
//	Total   = mean client span (encode + send + wait + decode)
//
// Client/Server carry the raw per-side snapshots for JSON export, so a
// consumer can recompute any other attribution it prefers.
type StageResult struct {
	Scheme  string        `json:"scheme"`
	Calls   uint64        `json:"calls"`
	Encode  time.Duration `json:"encode_ns"`
	Wire    time.Duration `json:"wire_ns"`
	Handler time.Duration `json:"handler_ns"`
	Decode  time.Duration `json:"decode_ns"`
	Total   time.Duration `json:"total_ns"`
	// WaitP50/P95/P99 are tail quantiles of the client wait stage (the
	// wire round trip plus server processing) — the stage that dominates
	// client-visible latency variance.
	WaitP50 time.Duration `json:"wait_p50_ns"`
	WaitP95 time.Duration `json:"wait_p95_ns"`
	WaitP99 time.Duration `json:"wait_p99_ns"`
	// Window is the number of observation windows the stage columns merge;
	// 0 means lifetime aggregates (everything since the post-warm-up reset).
	Window int `json:"window,omitempty"`
	// NsPerOp/BytesPerOp/AllocsPerOp are whole-process per-call costs of
	// the measured loop (wall time and heap churn via runtime.MemStats) —
	// the machine-readable numbers the CI bench artifact diffs across PRs.
	NsPerOp     int64         `json:"ns_per_op"`
	BytesPerOp  uint64        `json:"bytes_per_op"`
	AllocsPerOp uint64        `json:"allocs_per_op"`
	Client      *obs.Snapshot `json:"client"`
	Server      *obs.Snapshot `json:"server"`
	// Trace is one joined client+server trace of this combo's final call,
	// from the run's shared flight recorder.
	Trace *obs.TraceTree `json:"trace,omitempty"`
}

// StageConfig parameterizes a breakdown run.
type StageConfig struct {
	Profile netsim.Profile
	// ModelSize is the dataset size ((double,int) pairs) per call.
	ModelSize int
	// Calls per scheme after one warm-up invocation.
	Calls int
	// Window is the number of observation windows the stage columns merge
	// (the current window included). The harness rotates its observers into
	// a fresh window after warm-up, so Window=1 is the steady state alone —
	// warm-up stragglers carry the old window's tick and cannot leak in.
	// 0 falls back to lifetime aggregates, which include anything a racing
	// warm-up recording slipped past the reset.
	Window int
	// Progress, when non-nil, receives human-readable progress lines.
	Progress io.Writer
}

// harnessWindow is the observation-window duration harness observers use:
// long enough that an entire measured loop lands in one window, so the
// windowed columns never straddle a wall-clock rotation mid-run. The
// warm-up/steady-state boundary is a forced NextWindow rotation, not the
// passage of time.
const harnessWindow = time.Hour

// StageBreakdown runs the four unified policy combinations with a fresh
// observer pair per combo (client and server sides instrumented separately)
// and returns per-stage mean latencies. Each combo gets its own shaped
// network so the netsim counters in the client snapshot belong to that combo
// alone.
func StageBreakdown(cfg StageConfig) ([]StageResult, error) {
	if cfg.ModelSize <= 0 {
		cfg.ModelSize = 1000
	}
	if cfg.Calls <= 0 {
		cfg.Calls = 20
	}
	combos := []struct{ encoding, transport string }{
		{"BXSA", "tcp"},
		{"XML", "tcp"},
		{"BXSA", "http"},
		{"XML", "http"},
	}
	m := dataset.Generate(cfg.ModelSize)
	out := make([]StageResult, 0, len(combos))
	for _, c := range combos {
		// One flight recorder shared by both sides: the client hop and the
		// server hop of each call carry the same wire-propagated trace ID,
		// so the recorder joins them into one two-hop tree per call.
		rec := obs.NewRecorder(obs.RecorderConfig{})
		cliObs := obs.New(obs.WithNode("client"), obs.WithRecorder(rec), obs.WithWindow(harnessWindow))
		srvObs := obs.New(obs.WithNode("server"), obs.WithRecorder(rec), obs.WithWindow(harnessWindow))
		nw := netsim.New(cfg.Profile, netsim.WithObserver(cliObs))
		u := NewUnified(c.encoding, c.transport)
		u.ClientObs, u.ServerObs = cliObs, srvObs
		if err := u.Setup(nw, ""); err != nil {
			return nil, fmt.Errorf("%s: setup: %w", u.Name(), err)
		}
		// Warm-up covers connection establishment and pool priming. Rotate
		// into a fresh window — watertight against stragglers, which carry
		// the old window's tick — then reset the lifetime aggregates so the
		// steady-state calls alone shape the histograms.
		if _, err := u.Invoke(m); err != nil {
			u.Teardown()
			return nil, fmt.Errorf("%s: warm-up: %w", u.Name(), err)
		}
		cliObs.NextWindow()
		srvObs.NextWindow()
		cliObs.Reset()
		srvObs.Reset()
		runtime.GC()
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		for i := 0; i < cfg.Calls; i++ {
			verified, err := u.Invoke(m)
			if err != nil {
				u.Teardown()
				return nil, fmt.Errorf("%s: call %d: %w", u.Name(), i, err)
			}
			if verified != m.Verify() {
				u.Teardown()
				return nil, fmt.Errorf("%s: call %d verified %d of %d", u.Name(), i, verified, cfg.ModelSize)
			}
		}
		elapsed := time.Since(t0)
		runtime.ReadMemStats(&ms1)
		r := deriveStages(u.Name(), cliObs, srvObs, cfg.Window)
		r.NsPerOp = elapsed.Nanoseconds() / int64(cfg.Calls)
		r.BytesPerOp = (ms1.TotalAlloc - ms0.TotalAlloc) / uint64(cfg.Calls)
		r.AllocsPerOp = (ms1.Mallocs - ms0.Mallocs) / uint64(cfg.Calls)
		if trees := rec.Recent(1); len(trees) > 0 {
			r.Trace = trees[0]
		}
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "%-28s encode=%-10v wire=%-10v handler=%-10v decode=%-10v total=%v\n",
				r.Scheme, r.Encode, r.Wire, r.Handler, r.Decode, r.Total)
		}
		if err := u.Teardown(); err != nil {
			return nil, fmt.Errorf("%s: teardown: %w", u.Name(), err)
		}
		out = append(out, r)
	}
	return out, nil
}

// deriveStages attributes the measured run to pipeline stages. win > 0
// selects windowed aggregates — the win most recent observation windows,
// which after the harness's post-warm-up rotation hold steady-state traffic
// only — while win = 0 reads the lifetime histograms (everything since the
// reset, warm-up races included).
func deriveStages(name string, cli, srv *obs.Observer, win int) StageResult {
	snap := func(o *obs.Observer, st obs.Stage) obs.HistogramSnapshot {
		if win > 0 {
			return o.StageWindowSnapshot(st, win)
		}
		return o.StageSnapshot(st)
	}
	mean := func(o *obs.Observer, st obs.Stage) time.Duration {
		return snap(o, st).Mean()
	}
	wait := snap(cli, obs.ClientWait)
	r := StageResult{
		Scheme:  name,
		Calls:   cli.Counter(obs.CallsStarted),
		Window:  win,
		Encode:  mean(cli, obs.ClientEncode) + mean(srv, obs.ServerEncode),
		Decode:  mean(cli, obs.ClientDecode) + mean(srv, obs.ServerDecode),
		Handler: mean(srv, obs.ServerHandler),
		Total: mean(cli, obs.ClientEncode) + mean(cli, obs.ClientSend) +
			mean(cli, obs.ClientWait) + mean(cli, obs.ClientDecode),
		WaitP50: wait.Quantile(0.50),
		WaitP95: wait.Quantile(0.95),
		WaitP99: wait.Quantile(0.99),
		Client:  cli.Snapshot(),
		Server:  srv.Snapshot(),
	}
	if wire := r.Total - r.Encode - r.Decode - r.Handler; wire > 0 {
		r.Wire = wire
	}
	return r
}

// PrintStageBreakdown renders the per-stage latency table (values in µs).
// The wait quantiles are the client wait stage's p50/p95/p99 (histogram
// bucket upper bounds, so conservative to a factor of two).
func PrintStageBreakdown(w io.Writer, results []StageResult) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tcalls\tencode (µs)\twire (µs)\thandler (µs)\tdecode (µs)\ttotal (µs)\twait p50\twait p95\twait p99")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.Scheme, r.Calls,
			r.Encode.Microseconds(), r.Wire.Microseconds(), r.Handler.Microseconds(),
			r.Decode.Microseconds(), r.Total.Microseconds(),
			r.WaitP50.Microseconds(), r.WaitP95.Microseconds(), r.WaitP99.Microseconds())
	}
	tw.Flush()
}

// BenchRecord is the slim per-combo line of the CI bench artifact
// (BENCH_<pr>.json): the per-op costs plus the stage means, flattened for
// diffing across PRs by cmd/benchdiff.
type BenchRecord struct {
	Scheme      string `json:"scheme"`
	Calls       uint64 `json:"calls"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	EncodeNs    int64  `json:"encode_ns"`
	WireNs      int64  `json:"wire_ns"`
	HandlerNs   int64  `json:"handler_ns"`
	DecodeNs    int64  `json:"decode_ns"`
	TotalNs     int64  `json:"total_ns"`
	WaitP95Ns   int64  `json:"wait_p95_ns"`
}

// BenchRecords flattens stage results into bench artifact records.
func BenchRecords(results []StageResult) []BenchRecord {
	out := make([]BenchRecord, 0, len(results))
	for _, r := range results {
		out = append(out, BenchRecord{
			Scheme:      r.Scheme,
			Calls:       r.Calls,
			NsPerOp:     r.NsPerOp,
			BytesPerOp:  r.BytesPerOp,
			AllocsPerOp: r.AllocsPerOp,
			EncodeNs:    int64(r.Encode),
			WireNs:      int64(r.Wire),
			HandlerNs:   int64(r.Handler),
			DecodeNs:    int64(r.Decode),
			TotalNs:     int64(r.Total),
			WaitP95Ns:   int64(r.WaitP95),
		})
	}
	return out
}
