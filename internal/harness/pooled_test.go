package harness

import (
	"testing"
	"time"

	"bxsoap/internal/dataset"
	"bxsoap/internal/netsim"
)

// TestPooledUnifiedScheme: the pooled scheme verifies models end to end at
// concurrency > 1 for both transports.
func TestPooledUnifiedScheme(t *testing.T) {
	nw := netsim.New(netsim.Unshaped)
	for _, tc := range []struct{ enc, tr string }{
		{"BXSA", "tcp"},
		{"XML", "http"},
	} {
		s := NewPooledUnified(tc.enc, tc.tr, 2, 4)
		if err := s.Setup(nw, t.TempDir()); err != nil {
			t.Fatalf("%s/%s: %v", tc.enc, tc.tr, err)
		}
		m := dataset.Generate(200)
		verified, err := s.Invoke(m)
		if err != nil {
			t.Fatalf("%s/%s: %v", tc.enc, tc.tr, err)
		}
		if verified != m.Verify() {
			t.Errorf("%s/%s: verified %d, want %d", tc.enc, tc.tr, verified, m.Verify())
		}
		if err := s.Teardown(); err != nil {
			t.Errorf("%s/%s teardown: %v", tc.enc, tc.tr, err)
		}
	}
}

// TestPooledThroughputScalesWithConcurrency: on a WAN-class RTT-bound
// profile, 8 concurrent callers over 8 pooled connections must push
// materially more calls/s than a single caller — the whole point of the
// pool. (A WAN-scale RTT is used because netsim realizes sub-500µs waits
// by spinning, which cannot overlap on a single-core machine; millisecond
// RTT waits are true sleeps and overlap anywhere.)
func TestPooledThroughputScalesWithConcurrency(t *testing.T) {
	if testing.Short() {
		t.Skip("RTT-shaped throughput comparison")
	}
	prof := netsim.Profile{Name: "rtt", RTT: 4 * time.Millisecond}
	one, err := PooledThroughput(netsim.New(prof), "BXSA", "tcp", 1, 1, 40, 50)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := PooledThroughput(netsim.New(prof), "BXSA", "tcp", 8, 8, 320, 50)
	if err != nil {
		t.Fatal(err)
	}
	if eight.CallsPerSec < 3*one.CallsPerSec {
		t.Errorf("concurrency 8 = %.0f calls/s, concurrency 1 = %.0f calls/s; want ≥ 3× scaling",
			eight.CallsPerSec, one.CallsPerSec)
	}
	if eight.Stats.Reuses == 0 {
		t.Error("pool reported no connection reuse")
	}
}
