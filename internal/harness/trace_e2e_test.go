package harness

import (
	"context"
	"testing"
	"time"

	"bxsoap/internal/core"
	"bxsoap/internal/dataset"
	"bxsoap/internal/netsim"
	"bxsoap/internal/obs"
	"bxsoap/internal/svcpool"
	"bxsoap/internal/tcpbind"
)

// traceTestbed is an in-process client → proxy → server deployment over a
// shaped netsim network, mirroring cmd/soapproxy's wiring: the proxy
// accepts XML/TCP up-link traffic and relays it to a BXSA/TCP backend
// through an svcpool down-link. All three nodes share one flight recorder
// (distinguished by node labels), so the per-node hops of a call join into
// a single tree exactly as separate processes' recorders would each see
// their slice of the same wire trace ID.
type traceTestbed struct {
	rec  *obs.Recorder
	pool *svcpool.Pool[core.XMLEncoding, *tcpbind.Binding]

	closers []func() error
}

func newTraceTestbed(t *testing.T, nw *netsim.Network) *traceTestbed {
	t.Helper()
	rec := obs.NewRecorder(obs.RecorderConfig{})
	cliObs := obs.New(obs.WithNode("client"), obs.WithRecorder(rec))
	prxObs := obs.New(obs.WithNode("proxy"), obs.WithRecorder(rec))
	srvObs := obs.New(obs.WithNode("server"), obs.WithRecorder(rec))

	tb := &traceTestbed{rec: rec}

	// Backend: the unified verification service, BXSA over TCP.
	bl, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("backend listen: %v", err)
	}
	backend := core.NewServer(core.BXSAEncoding{}, tcpbind.NewListener(bl, tcpbind.WithObserver(srvObs)),
		unifiedHandler, core.WithObserver(srvObs))
	go backend.Serve()
	tb.closers = append(tb.closers, backend.Close)

	// Proxy: XML/TCP up-link, relaying through a pooled BXSA/TCP down-link
	// (CallOnce — relays are not assumed idempotent, as in cmd/soapproxy).
	backendAddr := bl.Addr().String()
	downPool := svcpool.New(func(context.Context) (*core.Engine[core.BXSAEncoding, *tcpbind.Binding], error) {
		return core.NewEngine(core.BXSAEncoding{},
			tcpbind.New(nw.Dial, backendAddr, tcpbind.WithObserver(prxObs)),
			core.WithObserver(prxObs)), nil
	}, svcpool.Config{MaxConns: 2}, svcpool.WithObserver(prxObs))
	tb.closers = append(tb.closers, downPool.Close)
	relay := func(ctx context.Context, req *core.Envelope) (*core.Envelope, error) {
		return downPool.CallOnce(ctx, req)
	}
	pl, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("proxy listen: %v", err)
	}
	proxy := core.NewServer(core.XMLEncoding{}, tcpbind.NewListener(pl, tcpbind.WithObserver(prxObs)),
		relay, core.WithObserver(prxObs))
	go proxy.Serve()
	tb.closers = append(tb.closers, proxy.Close)

	// Client: pooled XML/TCP to the proxy.
	proxyAddr := pl.Addr().String()
	tb.pool = svcpool.New(func(context.Context) (*core.Engine[core.XMLEncoding, *tcpbind.Binding], error) {
		return core.NewEngine(core.XMLEncoding{},
			tcpbind.New(nw.Dial, proxyAddr, tcpbind.WithObserver(cliObs)),
			core.WithObserver(cliObs)), nil
	}, svcpool.Config{MaxConns: 2}, svcpool.WithObserver(cliObs))
	tb.closers = append(tb.closers, tb.pool.Close)
	return tb
}

func (tb *traceTestbed) close() {
	for _, c := range tb.closers {
		c()
	}
}

// TestTraceJoinsClientProxyServer is the end-to-end acceptance test for
// wire-propagated tracing: one call through the relay path must yield ONE
// joined trace — a single trace ID on every hop, the four hops in path
// order (client 0, proxy server 1, proxy client 2, backend server 3), each
// hop carrying its own stage spans, and netsim-shaped wire time attributed
// to each client hop.
func TestTraceJoinsClientProxyServer(t *testing.T) {
	nw := netsim.New(netsim.LAN)
	tb := newTraceTestbed(t, nw)
	defer tb.close()

	m := dataset.Generate(64)
	resp, err := tb.pool.Call(context.Background(), core.NewEnvelope(m.Element()))
	if err != nil {
		t.Fatalf("call through proxy: %v", err)
	}
	verified, err := parseReply(resp)
	if err != nil {
		t.Fatalf("reply: %v", err)
	}
	if verified != m.Verify() {
		t.Fatalf("verified %d, want %d", verified, m.Verify())
	}

	trees := tb.rec.Recent(0)
	if len(trees) != 1 {
		t.Fatalf("recorder holds %d traces, want 1 joined trace (IDs split?)", len(trees))
	}
	tree := trees[0]
	if tree.Hops != 4 {
		t.Fatalf("trace has %d hops, want 4 (client, proxy↑, proxy↓, server)", tree.Hops)
	}
	if _, err := obs.ParseTraceID(tree.ID); err != nil {
		t.Fatalf("trace ID %q: %v", tree.ID, err)
	}

	want := []struct {
		node, role string
		stages     []obs.Stage
	}{
		{"client", obs.RoleClient, []obs.Stage{obs.ClientEncode, obs.ClientCheckout, obs.ClientSend, obs.ClientWait, obs.ClientDecode}},
		{"proxy", obs.RoleServer, []obs.Stage{obs.ServerReceive, obs.ServerDecode, obs.ServerHandler, obs.ServerEncode, obs.ServerSend}},
		{"proxy", obs.RoleClient, []obs.Stage{obs.ClientEncode, obs.ClientCheckout, obs.ClientSend, obs.ClientWait, obs.ClientDecode}},
		{"server", obs.RoleServer, []obs.Stage{obs.ServerReceive, obs.ServerDecode, obs.ServerHandler, obs.ServerEncode, obs.ServerSend}},
	}
	n := tree.Root
	for seq, w := range want {
		if n == nil {
			t.Fatalf("chain ends at seq %d", seq)
		}
		if n.Seq != seq || n.Node != w.node || n.Role != w.role {
			t.Fatalf("hop %d = node=%q role=%q seq=%d, want node=%q role=%q seq=%d",
				seq, n.Node, n.Role, n.Seq, w.node, w.role, seq)
		}
		got := map[string]bool{}
		for _, s := range n.Stages {
			got[s.Name] = true
		}
		for _, st := range w.stages {
			if !got[st.String()] {
				t.Errorf("hop %d (%s %s) missing stage %s: has %v", seq, w.node, w.role, st, n.Stages)
			}
		}
		if w.role == obs.RoleClient && n.Wire <= 0 {
			t.Errorf("client hop %d has no attributed wire time", seq)
		}
		if n.Err != "" {
			t.Errorf("hop %d carries error %q", seq, n.Err)
		}
		n = n.Child
	}
	if n != nil {
		t.Fatalf("chain continues past seq 3: %+v", n)
	}

	// The outer wire share must cover at least the shaped LAN round trip
	// (RTT 0.2ms) minus measurement slop — the proxy's busy time was
	// subtracted out, the link delay cannot be.
	if tree.Root.Wire < 100*time.Microsecond {
		t.Errorf("client hop wire %v implausibly small for a shaped LAN RTT", tree.Root.Wire)
	}
}

// TestNetsimShapingStaysDeterministicUnderTracing guards the nowallclock
// contract: the shaper computes its injected delays on the simulated clock,
// so two identical traced runs over fresh networks must record identical
// NetShape totals — tracing must not leak wall-clock time into shaping.
func TestNetsimShapingStaysDeterministicUnderTracing(t *testing.T) {
	run := func() (uint64, int64) {
		rec := obs.NewRecorder(obs.RecorderConfig{})
		o := obs.New(obs.WithNode("client"), obs.WithRecorder(rec))
		nw := netsim.New(netsim.LAN, netsim.WithObserver(o))
		l, err := nw.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		srv := core.NewServer(core.BXSAEncoding{}, tcpbind.NewListener(l), unifiedHandler)
		go srv.Serve()
		defer srv.Close()
		eng := core.NewEngine(core.BXSAEncoding{},
			tcpbind.New(nw.Dial, l.Addr().String()), core.WithObserver(o))
		defer eng.Close()
		m := dataset.Generate(128)
		if _, err := eng.Call(context.Background(), core.NewEnvelope(m.Element())); err != nil {
			t.Fatalf("call: %v", err)
		}
		s := o.StageSnapshot(obs.NetShape)
		return s.Count, s.SumNanos
	}
	c1, sum1 := run()
	c2, sum2 := run()
	if c1 == 0 {
		t.Fatal("no NetShape observations recorded")
	}
	if c1 != c2 || sum1 != sum2 {
		t.Errorf("shaping diverged across identical runs: (%d, %dns) vs (%d, %dns)", c1, sum1, c2, sum2)
	}
}
