package harness

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"text/tabwriter"
	"time"

	"bxsoap/internal/core"
	"bxsoap/internal/dataset"
	"bxsoap/internal/httpbind"
	"bxsoap/internal/netsim"
	"bxsoap/internal/svcpool"
	"bxsoap/internal/tcpbind"
)

// pooledCaller abstracts svcpool.Pool[E, B] over its type parameters so one
// scheme value can hold whichever monomorphic composition Setup picked.
type pooledCaller interface {
	Call(ctx context.Context, req *core.Envelope) (*core.Envelope, error)
	Stats() svcpool.Stats
	Close() error
}

// buildPooled starts the unified verification server for the composition on
// nw and returns a connection pool dialing it, plus the teardown closers.
func buildPooled(nw *netsim.Network, encoding, transport string, cfg svcpool.Config) (pooledCaller, []func() error, error) {
	l, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	switch {
	case encoding == "BXSA" && transport == "tcp":
		srv := core.NewServer(core.BXSAEncoding{}, tcpbind.NewListener(l), unifiedHandler)
		go srv.Serve()
		addr := l.Addr().String()
		pool := svcpool.New(func(context.Context) (*core.Engine[core.BXSAEncoding, *tcpbind.Binding], error) {
			return core.NewEngine(core.BXSAEncoding{}, tcpbind.New(nw.Dial, addr)), nil
		}, cfg)
		return pool, []func() error{pool.Close, srv.Close}, nil
	case encoding == "XML" && transport == "tcp":
		srv := core.NewServer(core.XMLEncoding{}, tcpbind.NewListener(l), unifiedHandler)
		go srv.Serve()
		addr := l.Addr().String()
		pool := svcpool.New(func(context.Context) (*core.Engine[core.XMLEncoding, *tcpbind.Binding], error) {
			return core.NewEngine(core.XMLEncoding{}, tcpbind.New(nw.Dial, addr)), nil
		}, cfg)
		return pool, []func() error{pool.Close, srv.Close}, nil
	case encoding == "BXSA" && transport == "http":
		hl := httpbind.NewListener(l)
		srv := core.NewServer(core.BXSAEncoding{}, hl, unifiedHandler)
		go srv.Serve()
		url := hl.URL()
		pool := svcpool.New(func(context.Context) (*core.Engine[core.BXSAEncoding, *httpbind.Binding], error) {
			return core.NewEngine(core.BXSAEncoding{}, httpbind.New(nw.Dial, url)), nil
		}, cfg)
		return pool, []func() error{pool.Close, srv.Close}, nil
	case encoding == "XML" && transport == "http":
		hl := httpbind.NewListener(l)
		srv := core.NewServer(core.XMLEncoding{}, hl, unifiedHandler)
		go srv.Serve()
		url := hl.URL()
		pool := svcpool.New(func(context.Context) (*core.Engine[core.XMLEncoding, *httpbind.Binding], error) {
			return core.NewEngine(core.XMLEncoding{}, httpbind.New(nw.Dial, url)), nil
		}, cfg)
		return pool, []func() error{pool.Close, srv.Close}, nil
	default:
		l.Close()
		return nil, nil, fmt.Errorf("harness: unknown pooled combination %s/%s", encoding, transport)
	}
}

// PooledUnified is the unified scheme driven through an svcpool runtime:
// each Invoke fires Concurrency simultaneous calls over a pool of Conns
// persistent connections. With Concurrency 1 it is the drop-in pooled
// counterpart of Unified; at 4/16 an Invoke's response time is the batch
// latency of that many concurrent callers, which is how the Figure 4/5
// series look once the client is no longer a single synchronous socket.
type PooledUnified struct {
	Encoding, Transport string
	Conns, Concurrency  int

	name    string
	pool    pooledCaller
	closers []func() error
}

// NewPooledUnified builds the pooled unified scheme. conns bounds the live
// connections; concurrency is the number of simultaneous calls per Invoke.
func NewPooledUnified(encoding, transport string, conns, concurrency int) *PooledUnified {
	if conns <= 0 {
		conns = 4
	}
	if concurrency <= 0 {
		concurrency = 1
	}
	return &PooledUnified{
		Encoding:    encoding,
		Transport:   transport,
		Conns:       conns,
		Concurrency: concurrency,
		name: fmt.Sprintf("Pooled SOAP over %s/%s (conns=%d, c=%d)",
			encoding, transportLabel(transport), conns, concurrency),
	}
}

// Name implements Scheme.
func (p *PooledUnified) Name() string { return p.name }

// Setup implements Scheme.
func (p *PooledUnified) Setup(nw *netsim.Network, _ string) error {
	pool, closers, err := buildPooled(nw, p.Encoding, p.Transport, svcpool.Config{
		MaxConns:    p.Conns,
		MaxInflight: p.Concurrency,
	})
	if err != nil {
		return err
	}
	p.pool, p.closers = pool, closers
	return nil
}

// Invoke implements Scheme: Concurrency simultaneous calls through the
// pool; every reply must verify.
func (p *PooledUnified) Invoke(m dataset.Model) (int, error) {
	env := core.NewEnvelope(m.Element())
	verified := make([]int, p.Concurrency)
	errs := make([]error, p.Concurrency)
	var wg sync.WaitGroup
	for i := 0; i < p.Concurrency; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := p.pool.Call(context.Background(), env)
			if err != nil {
				errs[i] = err
				return
			}
			verified[i], errs[i] = parseReply(resp)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return verified[0], nil
}

// Teardown implements Scheme.
func (p *PooledUnified) Teardown() error {
	var first error
	for _, c := range p.closers {
		if err := c(); err != nil && first == nil {
			first = err
		}
	}
	p.closers = nil
	return first
}

// ThroughputPoint is one measured concurrent-throughput sample.
type ThroughputPoint struct {
	Scheme      string
	Profile     string
	Concurrency int
	Calls       int
	Elapsed     time.Duration
	CallsPerSec float64
	PairsPerSec float64
	// BytesPerOp/AllocsPerOp are whole-process per-call heap costs of the
	// timed loop (runtime.MemStats deltas), for the CI bench artifact.
	BytesPerOp  uint64
	AllocsPerOp uint64
	Stats       svcpool.Stats
	Err         error
}

// PooledThroughput measures aggregate request throughput: calls total
// invocations of the unified verification service at model size `size`,
// spread over `concurrency` workers sharing a pool of `conns` connections.
func PooledThroughput(nw *netsim.Network, encoding, transport string, conns, concurrency, calls, size int) (ThroughputPoint, error) {
	pt := ThroughputPoint{
		Scheme:      fmt.Sprintf("Pooled %s/%s (conns=%d, c=%d)", encoding, transportLabel(transport), conns, concurrency),
		Profile:     nw.Profile().Name,
		Concurrency: concurrency,
		Calls:       calls,
	}
	pool, closers, err := buildPooled(nw, encoding, transport, svcpool.Config{
		MaxConns:    conns,
		MaxInflight: concurrency,
	})
	if err != nil {
		return pt, err
	}
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	m := dataset.Generate(size)
	env := core.NewEnvelope(m.Element())
	// Warm-up: put every connection through one exchange so dials and
	// allocator warmth are off the clock, as in measurePoint.
	if err := runConcurrent(pool, env, conns, conns); err != nil {
		return pt, err
	}
	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	if err := runConcurrent(pool, env, concurrency, calls); err != nil {
		return pt, err
	}
	pt.Elapsed = time.Since(start)
	runtime.ReadMemStats(&ms1)
	pt.CallsPerSec = float64(calls) / pt.Elapsed.Seconds()
	pt.PairsPerSec = pt.CallsPerSec * float64(size)
	pt.BytesPerOp = (ms1.TotalAlloc - ms0.TotalAlloc) / uint64(calls)
	pt.AllocsPerOp = (ms1.Mallocs - ms0.Mallocs) / uint64(calls)
	pt.Stats = pool.Stats()
	return pt, nil
}

// runConcurrent drives `total` pool calls from `workers` goroutines.
func runConcurrent(pool pooledCaller, env *core.Envelope, workers, total int) error {
	var wg sync.WaitGroup
	work := make(chan struct{}, total)
	for i := 0; i < total; i++ {
		work <- struct{}{}
	}
	close(work)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				if _, err := pool.Call(context.Background(), env); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	return <-errs
}

// PrintThroughput renders pooled-throughput points as a table.
func PrintThroughput(w io.Writer, points []ThroughputPoint) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tprofile\tconcurrency\tcalls\telapsed\tcalls/s\tpairs/s\tdials\treuses\tretries")
	for _, p := range points {
		if p.Err != nil {
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\tERROR: %v\t\t\t\t\t\n", p.Scheme, p.Profile, p.Concurrency, p.Calls, p.Err)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%v\t%.0f\t%.0f\t%d\t%d\t%d\n",
			p.Scheme, p.Profile, p.Concurrency, p.Calls, p.Elapsed.Round(time.Millisecond),
			p.CallsPerSec, p.PairsPerSec, p.Stats.Dials, p.Stats.Reuses, p.Stats.Retries)
	}
	tw.Flush()
}
