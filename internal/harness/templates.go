package harness

// The templates experiment: the four unified policy combinations measured
// generically and again with the shape-keyed template cache enabled on
// both sides, so the artifact diff shows what schema-compiled plans buy
// per combo — chiefly allocs/op on BXSA (skeleton splice instead of a tree
// walk) and encode time on XML (static segments instead of re-rendered
// markup).

import (
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"bxsoap/internal/dataset"
	"bxsoap/internal/netsim"
	"bxsoap/internal/obs"
)

// templateCacheShapes is the per-side cache capacity used by the
// experiment; the workload has exactly two shapes (request, reply), so
// anything past that is headroom.
const templateCacheShapes = 16

// TemplateBreakdown measures every unified combo twice — generic, then
// templated — under identical conditions: fresh observers, a fresh shaped
// network, warm-up calls that also prime the template cache, and a
// measured loop bracketed by MemStats reads for per-call heap churn. The
// returned results interleave as generic, templated per combo and carry
// the same fields the stage experiment exports, so they flatten into the
// same bench artifact via BenchRecords.
func TemplateBreakdown(cfg StageConfig) ([]StageResult, error) {
	if cfg.ModelSize <= 0 {
		cfg.ModelSize = 1000
	}
	if cfg.Calls <= 0 {
		cfg.Calls = 40
	}
	combos := []struct{ encoding, transport string }{
		{"BXSA", "tcp"},
		{"XML", "tcp"},
		{"BXSA", "http"},
		{"XML", "http"},
	}
	m := dataset.Generate(cfg.ModelSize)
	out := make([]StageResult, 0, 2*len(combos))
	for _, c := range combos {
		for _, templated := range []bool{false, true} {
			cliObs := obs.New(obs.WithNode("client"), obs.WithWindow(harnessWindow))
			srvObs := obs.New(obs.WithNode("server"), obs.WithWindow(harnessWindow))
			nw := netsim.New(cfg.Profile, netsim.WithObserver(cliObs))
			var u *Unified
			if templated {
				u = NewTemplatedUnified(c.encoding, c.transport, templateCacheShapes)
			} else {
				u = NewUnified(c.encoding, c.transport)
			}
			u.ClientObs, u.ServerObs = cliObs, srvObs
			if err := u.Setup(nw, ""); err != nil {
				return nil, fmt.Errorf("%s: setup: %w", u.Name(), err)
			}
			// Two warm-up calls: the first compiles the request and reply
			// shapes on their respective sides, the second verifies the
			// templated steady state before anything is measured.
			for w := 0; w < 2; w++ {
				if _, err := u.Invoke(m); err != nil {
					u.Teardown()
					return nil, fmt.Errorf("%s: warm-up: %w", u.Name(), err)
				}
			}
			// Rotate into a fresh window before resetting, as in
			// StageBreakdown: warm-up stragglers carry the old tick and
			// cannot reach the measured window's percentiles.
			cliObs.NextWindow()
			srvObs.NextWindow()
			cliObs.Reset()
			srvObs.Reset()
			runtime.GC()
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			t0 := time.Now()
			for i := 0; i < cfg.Calls; i++ {
				verified, err := u.Invoke(m)
				if err != nil {
					u.Teardown()
					return nil, fmt.Errorf("%s: call %d: %w", u.Name(), i, err)
				}
				if verified != m.Verify() {
					u.Teardown()
					return nil, fmt.Errorf("%s: call %d verified %d of %d", u.Name(), i, verified, cfg.ModelSize)
				}
			}
			elapsed := time.Since(t0)
			runtime.ReadMemStats(&ms1)
			r := deriveStages(u.Name(), cliObs, srvObs, cfg.Window)
			r.NsPerOp = elapsed.Nanoseconds() / int64(cfg.Calls)
			r.BytesPerOp = (ms1.TotalAlloc - ms0.TotalAlloc) / uint64(cfg.Calls)
			r.AllocsPerOp = (ms1.Mallocs - ms0.Mallocs) / uint64(cfg.Calls)
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "%-38s ns/op=%-10d allocs/op=%-6d hits=%d\n",
					r.Scheme, r.NsPerOp, r.AllocsPerOp, cliObs.Counter(obs.TemplateHits))
			}
			if err := u.Teardown(); err != nil {
				return nil, fmt.Errorf("%s: teardown: %w", u.Name(), err)
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// PrintTemplateComparison renders generic-vs-templated pairs side by side
// with the speedup and allocation reduction per combo.
func PrintTemplateComparison(w io.Writer, results []StageResult) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "combo\tgeneric ns/op\ttemplated ns/op\tspeedup\tgeneric allocs/op\ttemplated allocs/op")
	for i := 0; i+1 < len(results); i += 2 {
		gen, tpl := results[i], results[i+1]
		speedup := "-"
		if tpl.NsPerOp > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(gen.NsPerOp)/float64(tpl.NsPerOp))
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%d\t%d\n",
			gen.Scheme, gen.NsPerOp, tpl.NsPerOp, speedup, gen.AllocsPerOp, tpl.AllocsPerOp)
	}
	tw.Flush()
}
