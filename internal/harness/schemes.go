// Package harness wires the paper's §6 experiment apparatus: the unified
// schemes (SOAP over BXSA/TCP and over XML/HTTP, with the payload inside
// the message) and the separated schemes (a small SOAP control message
// pointing at a netCDF file served by the client over HTTP or GridFTP),
// all running over a netsim-shaped loopback network, plus the measurement
// and table/series printers that regenerate Table 1 and Figures 4-6.
package harness

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/core"
	"bxsoap/internal/dataset"
	"bxsoap/internal/gridftp"
	"bxsoap/internal/httpbind"
	"bxsoap/internal/httpdata"
	"bxsoap/internal/netcdf"
	"bxsoap/internal/netsim"
	"bxsoap/internal/obs"
	"bxsoap/internal/tcpbind"
)

// Scheme is one experimental configuration: Setup starts its servers on the
// shaped network, Invoke performs one full request-response for a model,
// and Teardown stops everything.
type Scheme interface {
	Name() string
	Setup(nw *netsim.Network, workdir string) error
	Invoke(m dataset.Model) (verified int, err error)
	Teardown() error
}

const sepNS = "urn:bxsoap:separated"

// verifyReply builds the verification-result envelope common to all
// schemes.
func verifyReply(verified, total int) *core.Envelope {
	res := bxdm.NewElement(bxdm.PName(dataset.Namespace, "lead", "result"))
	res.DeclareNamespace("lead", dataset.Namespace)
	res.Append(
		bxdm.NewLeaf(bxdm.Name(dataset.Namespace, "verified"), int32(verified)),
		bxdm.NewLeaf(bxdm.Name(dataset.Namespace, "total"), int32(total)),
	)
	return core.NewEnvelope(res)
}

func parseReply(resp *core.Envelope) (int, error) {
	body := resp.Body()
	if body == nil {
		return 0, fmt.Errorf("harness: empty response body")
	}
	el, ok := body.(*bxdm.Element)
	if !ok {
		return 0, fmt.Errorf("harness: unexpected response shape %v", body.Kind())
	}
	v := el.FirstChild(bxdm.Name(dataset.Namespace, "verified"))
	if v == nil {
		return 0, fmt.Errorf("harness: response missing verified count")
	}
	switch leaf := v.(type) {
	case *bxdm.LeafElement:
		return int(leaf.Value.Int64()), nil
	case *bxdm.Element:
		n, err := strconv.Atoi(leaf.TextContent())
		return n, err
	default:
		return 0, fmt.Errorf("harness: verified count has kind %v", v.Kind())
	}
}

// unifiedHandler verifies the in-message payload (scheme 1 in §6).
func unifiedHandler(_ context.Context, req *core.Envelope) (*core.Envelope, error) {
	body := req.Body()
	if body == nil {
		return nil, &core.Fault{Code: core.FaultClient, String: "empty body"}
	}
	m, err := dataset.FromElement(body)
	if err != nil {
		return nil, &core.Fault{Code: core.FaultClient, String: err.Error()}
	}
	return verifyReply(m.Verify(), m.Size()), nil
}

// Unified is the paper's unified scheme: the binary data travels inside the
// SOAP message itself, encoded per the engine's encoding policy.
type Unified struct {
	// Encoding is "BXSA" or "XML"; Transport is "tcp" or "http".
	Encoding, Transport string

	// ClientObs/ServerObs, when non-nil, are wired into the client engine +
	// binding and the server + listener respectively at Setup, so a run can
	// be decomposed into per-stage latencies (see stages.go). Separate
	// observers per side keep the symmetric stages (encode/decode) from
	// polluting each other.
	ClientObs, ServerObs *obs.Observer

	// Templates, when positive, enables the shape-keyed template cache on
	// both sides with that capacity (core.WithTemplates).
	Templates int

	name    string
	call    func(*core.Envelope) (*core.Envelope, error)
	closers []func() error
}

// NewUnified builds the unified scheme for an encoding/transport pair.
func NewUnified(encoding, transport string) *Unified {
	return &Unified{
		Encoding:  encoding,
		Transport: transport,
		name:      fmt.Sprintf("SOAP over %s/%s", encoding, transportLabel(transport)),
	}
}

// NewTemplatedUnified builds the unified scheme with the template cache
// enabled on both client and server (capacity shapes per side).
func NewTemplatedUnified(encoding, transport string, capacity int) *Unified {
	u := NewUnified(encoding, transport)
	u.Templates = capacity
	u.name = "Templated " + u.name
	return u
}

func transportLabel(t string) string {
	if t == "tcp" {
		return "TCP"
	}
	return "HTTP"
}

// Name implements Scheme.
func (u *Unified) Name() string { return u.name }

// Setup implements Scheme. The generic engine is instantiated with the
// concrete policy types here — one monomorphic composition per
// (encoding, transport) pair, exactly the paper's compile-time binding.
func (u *Unified) Setup(nw *netsim.Network, _ string) error {
	l, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	engOpts := []core.EngineOption{core.WithObserver(u.ClientObs)}
	srvOpts := []core.ServerOption{core.WithObserver(u.ServerObs)}
	if u.Templates > 0 {
		engOpts = append(engOpts, core.WithTemplates(u.Templates))
		srvOpts = append(srvOpts, core.WithTemplates(u.Templates))
	}
	switch {
	case u.Encoding == "BXSA" && u.Transport == "tcp":
		srv := core.NewServer(core.BXSAEncoding{},
			tcpbind.NewListener(l, tcpbind.WithObserver(u.ServerObs)),
			unifiedHandler, srvOpts...)
		go srv.Serve()
		eng := core.NewEngine(core.BXSAEncoding{},
			tcpbind.New(nw.Dial, l.Addr().String(), tcpbind.WithObserver(u.ClientObs)),
			engOpts...)
		u.call = func(e *core.Envelope) (*core.Envelope, error) { return eng.Call(context.Background(), e) }
		u.closers = []func() error{eng.Close, srv.Close}
	case u.Encoding == "XML" && u.Transport == "http":
		hl := httpbind.NewListener(l, httpbind.WithObserver(u.ServerObs))
		srv := core.NewServer(core.XMLEncoding{}, hl, unifiedHandler, srvOpts...)
		go srv.Serve()
		eng := core.NewEngine(core.XMLEncoding{},
			httpbind.New(nw.Dial, hl.URL(), httpbind.WithObserver(u.ClientObs)),
			engOpts...)
		u.call = func(e *core.Envelope) (*core.Envelope, error) { return eng.Call(context.Background(), e) }
		u.closers = []func() error{eng.Close, srv.Close}
	case u.Encoding == "XML" && u.Transport == "tcp":
		srv := core.NewServer(core.XMLEncoding{},
			tcpbind.NewListener(l, tcpbind.WithObserver(u.ServerObs)),
			unifiedHandler, srvOpts...)
		go srv.Serve()
		eng := core.NewEngine(core.XMLEncoding{},
			tcpbind.New(nw.Dial, l.Addr().String(), tcpbind.WithObserver(u.ClientObs)),
			engOpts...)
		u.call = func(e *core.Envelope) (*core.Envelope, error) { return eng.Call(context.Background(), e) }
		u.closers = []func() error{eng.Close, srv.Close}
	case u.Encoding == "BXSA" && u.Transport == "http":
		hl := httpbind.NewListener(l, httpbind.WithObserver(u.ServerObs))
		srv := core.NewServer(core.BXSAEncoding{}, hl, unifiedHandler, srvOpts...)
		go srv.Serve()
		eng := core.NewEngine(core.BXSAEncoding{},
			httpbind.New(nw.Dial, hl.URL(), httpbind.WithObserver(u.ClientObs)),
			engOpts...)
		u.call = func(e *core.Envelope) (*core.Envelope, error) { return eng.Call(context.Background(), e) }
		u.closers = []func() error{eng.Close, srv.Close}
	default:
		l.Close()
		return fmt.Errorf("harness: unknown unified combination %s/%s", u.Encoding, u.Transport)
	}
	return nil
}

// Invoke implements Scheme.
func (u *Unified) Invoke(m dataset.Model) (int, error) {
	resp, err := u.call(core.NewEnvelope(m.Element()))
	if err != nil {
		return 0, err
	}
	return parseReply(resp)
}

// Teardown implements Scheme.
func (u *Unified) Teardown() error {
	var first error
	for _, c := range u.closers {
		if err := c(); err != nil && first == nil {
			first = err
		}
	}
	u.closers = nil
	return first
}

// SeparatedHTTP is the conventional scheme with an HTTP data channel: the
// client saves the model as netCDF, publishes it over HTTP, and sends a
// SOAP message carrying just the URL; the server pulls the file, reads and
// verifies it (§6 "Separated solution").
type SeparatedHTTP struct {
	clientDir string
	serverDir string
	files     *httpdata.Server
	call      func(*core.Envelope) (*core.Envelope, error)
	closers   []func() error
	seq       int
}

// NewSeparatedHTTP constructs the scheme.
func NewSeparatedHTTP() *SeparatedHTTP { return &SeparatedHTTP{} }

// Name implements Scheme.
func (s *SeparatedHTTP) Name() string { return "SOAP + HTTP" }

// Setup implements Scheme.
func (s *SeparatedHTTP) Setup(nw *netsim.Network, workdir string) error {
	s.clientDir = filepath.Join(workdir, "client-pub")
	s.serverDir = filepath.Join(workdir, "server-tmp")
	for _, d := range []string{s.clientDir, s.serverDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return err
		}
	}
	// Client-side file server (the paper's Apache on the client machine).
	fl, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	s.files = httpdata.NewServer(fl, s.clientDir)

	// Server-side fetcher (libcurl).
	fetcher := httpdata.NewClient(nw.Dial)

	handler := func(_ context.Context, req *core.Envelope) (*core.Envelope, error) {
		body := req.Body()
		if body == nil {
			return nil, &core.Fault{Code: core.FaultClient, String: "empty body"}
		}
		urlV, ok := body.Attr(bxdm.Name("", "url"))
		if !ok {
			return nil, &core.Fault{Code: core.FaultClient, String: "missing url"}
		}
		local := filepath.Join(s.serverDir, fmt.Sprintf("dl-%d.nc", time.Now().UnixNano()))
		if _, err := fetcher.Download(context.Background(), urlV.Text(), local); err != nil {
			return nil, &core.Fault{Code: core.FaultServer, String: err.Error()}
		}
		defer os.Remove(local)
		f, err := netcdf.ReadFile(local)
		if err != nil {
			return nil, &core.Fault{Code: core.FaultServer, String: err.Error()}
		}
		m, err := dataset.FromNetCDF(f)
		if err != nil {
			return nil, &core.Fault{Code: core.FaultServer, String: err.Error()}
		}
		return verifyReply(m.Verify(), m.Size()), nil
	}

	// Control channel: plain SOAP over XML/HTTP, like the paper.
	cl, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	hl := httpbind.NewListener(cl)
	srv := core.NewServer(core.XMLEncoding{}, hl, handler)
	go srv.Serve()
	eng := core.NewEngine(core.XMLEncoding{}, httpbind.New(nw.Dial, hl.URL()))
	s.call = func(e *core.Envelope) (*core.Envelope, error) { return eng.Call(context.Background(), e) }
	s.closers = []func() error{eng.Close, srv.Close, s.files.Close, fetcher.Close}
	return nil
}

// Invoke implements Scheme: write netCDF + publish + SOAP round trip.
func (s *SeparatedHTTP) Invoke(m dataset.Model) (int, error) {
	s.seq++
	name := fmt.Sprintf("model-%d.nc", s.seq)
	path := filepath.Join(s.clientDir, name)
	if err := m.NetCDF().WriteFile(path); err != nil {
		return 0, err
	}
	defer os.Remove(path)
	req := bxdm.NewElement(bxdm.PName(sepNS, "sep", "fetch"))
	req.DeclareNamespace("sep", sepNS)
	req.SetAttr(bxdm.LocalName("url"), bxdm.StringValue(s.files.URLFor(name)))
	resp, err := s.call(core.NewEnvelope(req))
	if err != nil {
		return 0, err
	}
	return parseReply(resp)
}

// Teardown implements Scheme.
func (s *SeparatedHTTP) Teardown() error {
	var first error
	for _, c := range s.closers {
		if err := c(); err != nil && first == nil {
			first = err
		}
	}
	s.closers = nil
	return first
}

// SeparatedGridFTP is the separated scheme with a GridFTP data channel and
// a configurable number of parallel TCP streams (§6; Figures 5 and 6 sweep
// 1, 4 and 16 streams).
type SeparatedGridFTP struct {
	Streams int
	// Opts overrides the simulated GridFTP parameters (zero = defaults).
	Opts gridftp.Options

	nw        *netsim.Network
	clientDir string
	serverDir string
	ftp       *gridftp.Server
	call      func(*core.Envelope) (*core.Envelope, error)
	closers   []func() error
	seq       int
}

// NewSeparatedGridFTP constructs the scheme with n parallel streams.
func NewSeparatedGridFTP(n int) *SeparatedGridFTP { return &SeparatedGridFTP{Streams: n} }

// Name implements Scheme.
func (s *SeparatedGridFTP) Name() string {
	plural := "streams"
	if s.Streams == 1 {
		plural = "stream"
	}
	return fmt.Sprintf("SOAP + GridFTP (%d %s)", s.Streams, plural)
}

// Setup implements Scheme.
func (s *SeparatedGridFTP) Setup(nw *netsim.Network, workdir string) error {
	s.nw = nw
	s.clientDir = filepath.Join(workdir, "gftp-pub")
	s.serverDir = filepath.Join(workdir, "gftp-tmp")
	for _, d := range []string{s.clientDir, s.serverDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return err
		}
	}
	opts := s.Opts
	opts.Streams = s.Streams
	opts = optsWithDefaults(opts)

	// GridFTP server on the client machine (paper: "the machine running the
	// client program hosts GT4 GridFTP server").
	ftp, err := gridftp.NewServer(nw, s.clientDir, opts)
	if err != nil {
		return err
	}
	s.ftp = ftp

	handler := func(_ context.Context, req *core.Envelope) (*core.Envelope, error) {
		body := req.Body()
		if body == nil {
			return nil, &core.Fault{Code: core.FaultClient, String: "empty body"}
		}
		addrV, ok1 := body.Attr(bxdm.Name("", "addr"))
		pathV, ok2 := body.Attr(bxdm.Name("", "path"))
		if !ok1 || !ok2 {
			return nil, &core.Fault{Code: core.FaultClient, String: "missing addr/path"}
		}
		// A fresh session per request: authentication is part of every
		// transfer's cost, as in the paper's measurements.
		cl, err := gridftp.Dial(nw, addrV.Text(), opts)
		if err != nil {
			return nil, &core.Fault{Code: core.FaultServer, String: err.Error()}
		}
		defer cl.Quit()
		local := filepath.Join(s.serverDir, fmt.Sprintf("dl-%d.nc", time.Now().UnixNano()))
		if _, err := cl.Retrieve(pathV.Text(), local); err != nil {
			return nil, &core.Fault{Code: core.FaultServer, String: err.Error()}
		}
		defer os.Remove(local)
		f, err := netcdf.ReadFile(local)
		if err != nil {
			return nil, &core.Fault{Code: core.FaultServer, String: err.Error()}
		}
		m, err := dataset.FromNetCDF(f)
		if err != nil {
			return nil, &core.Fault{Code: core.FaultServer, String: err.Error()}
		}
		return verifyReply(m.Verify(), m.Size()), nil
	}

	cl, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		ftp.Close()
		return err
	}
	hl := httpbind.NewListener(cl)
	srv := core.NewServer(core.XMLEncoding{}, hl, handler)
	go srv.Serve()
	eng := core.NewEngine(core.XMLEncoding{}, httpbind.New(nw.Dial, hl.URL()))
	s.call = func(e *core.Envelope) (*core.Envelope, error) { return eng.Call(context.Background(), e) }
	s.closers = []func() error{eng.Close, srv.Close, ftp.Close}
	return nil
}

func optsWithDefaults(o gridftp.Options) gridftp.Options {
	if o.Streams <= 0 {
		o.Streams = 1
	}
	return o
}

// Invoke implements Scheme.
func (s *SeparatedGridFTP) Invoke(m dataset.Model) (int, error) {
	s.seq++
	name := fmt.Sprintf("model-%d.nc", s.seq)
	path := filepath.Join(s.clientDir, name)
	if err := m.NetCDF().WriteFile(path); err != nil {
		return 0, err
	}
	defer os.Remove(path)
	req := bxdm.NewElement(bxdm.PName(sepNS, "sep", "fetch"))
	req.DeclareNamespace("sep", sepNS)
	req.SetAttr(bxdm.LocalName("addr"), bxdm.StringValue(s.ftp.Addr()))
	req.SetAttr(bxdm.LocalName("path"), bxdm.StringValue(name))
	resp, err := s.call(core.NewEnvelope(req))
	if err != nil {
		return 0, err
	}
	return parseReply(resp)
}

// Teardown implements Scheme.
func (s *SeparatedGridFTP) Teardown() error {
	var first error
	for _, c := range s.closers {
		if err := c(); err != nil && first == nil {
			first = err
		}
	}
	s.closers = nil
	return first
}
