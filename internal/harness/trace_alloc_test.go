package harness

import (
	"context"
	"testing"

	"bxsoap/internal/core"
	"bxsoap/internal/dataset"
	"bxsoap/internal/netsim"
	"bxsoap/internal/obs"
	"bxsoap/internal/svcpool"
	"bxsoap/internal/tcpbind"
)

// pooledCallAllocs measures steady-state allocations per pooled BXSA/TCP
// call with the given observer (nil for the bare PR-4-shaped path, live but
// recorder-less for "tracing disabled").
func pooledCallAllocs(t *testing.T, o *obs.Observer) float64 {
	t.Helper()
	nw := netsim.New(netsim.LAN)
	l, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := core.NewServer(core.BXSAEncoding{}, tcpbind.NewListener(l), unifiedHandler)
	go srv.Serve()
	defer srv.Close()
	addr := l.Addr().String()
	pool := svcpool.New(func(context.Context) (*core.Engine[core.BXSAEncoding, *tcpbind.Binding], error) {
		return core.NewEngine(core.BXSAEncoding{}, tcpbind.New(nw.Dial, addr),
			core.WithObserver(o)), nil
	}, svcpool.Config{MaxConns: 1}, svcpool.WithObserver(o))
	defer pool.Close()

	m := dataset.Generate(64)
	req := core.NewEnvelope(m.Element())
	ctx := context.Background()
	if _, err := pool.Call(ctx, req); err != nil { // warm-up: dial off the meter
		t.Fatalf("warm-up call: %v", err)
	}
	return testing.AllocsPerRun(50, func() {
		if _, err := pool.Call(ctx, req); err != nil {
			t.Fatalf("call: %v", err)
		}
	})
}

// BenchmarkPooledCallTracing measures the pooled BXSA/TCP call path with
// tracing absent (no observer), disabled (observer, no recorder), and
// enabled (observer + flight recorder) — the numbers behind the
// tracing-overhead table in EXPERIMENTS.md. ns/op is dominated by the
// shaped LAN RTT; the overhead shows in B/op and allocs/op.
func BenchmarkPooledCallTracing(b *testing.B) {
	variants := []struct {
		name string
		o    func() *obs.Observer
	}{
		{"bare", func() *obs.Observer { return nil }},
		{"disabled", func() *obs.Observer { return obs.New(obs.WithNode("client")) }},
		{"enabled", func() *obs.Observer {
			return obs.New(obs.WithNode("client"),
				obs.WithRecorder(obs.NewRecorder(obs.RecorderConfig{})))
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			o := v.o()
			nw := netsim.New(netsim.LAN)
			l, err := nw.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			srv := core.NewServer(core.BXSAEncoding{}, tcpbind.NewListener(l), unifiedHandler)
			go srv.Serve()
			defer srv.Close()
			addr := l.Addr().String()
			pool := svcpool.New(func(context.Context) (*core.Engine[core.BXSAEncoding, *tcpbind.Binding], error) {
				return core.NewEngine(core.BXSAEncoding{}, tcpbind.New(nw.Dial, addr),
					core.WithObserver(o)), nil
			}, svcpool.Config{MaxConns: 1}, svcpool.WithObserver(o))
			defer pool.Close()
			m := dataset.Generate(64)
			req := core.NewEnvelope(m.Element())
			ctx := context.Background()
			if _, err := pool.Call(ctx, req); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pool.Call(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestDisabledTracingAddsNoPooledCallAllocs is the end-to-end acceptance
// check for the nil-sink contract on the full client path: a pooled call
// with a live observer but NO recorder (tracing disabled) must allocate
// exactly as much as a call with no observer at all. The trace hooks
// (BeginClientTrace, ContextWithHop, HopFromContext, FinishHop) must
// vanish, not merely stay cheap.
func TestDisabledTracingAddsNoPooledCallAllocs(t *testing.T) {
	// The server's handler goroutines allocate on the meter too, so a busy
	// scheduler can wobble either measurement by ±1 alloc/op; retry a few
	// times and compare best-vs-best before calling it a leak.
	bare, disabled := pooledCallAllocs(t, nil), pooledCallAllocs(t, obs.New(obs.WithNode("client")))
	for attempt := 0; disabled > bare && attempt < 3; attempt++ {
		bare = min(bare, pooledCallAllocs(t, nil))
		disabled = min(disabled, pooledCallAllocs(t, obs.New(obs.WithNode("client"))))
	}
	if disabled > bare {
		t.Errorf("tracing-disabled pooled call allocates %.1f/op vs %.1f/op bare: trace hooks leak onto the disabled path",
			disabled, bare)
	}
	t.Logf("pooled call allocs/op: bare=%.1f observer-without-recorder=%.1f", bare, disabled)
}
