package harness

// The streaming experiment: time-to-first-response-byte and end-to-end
// throughput for the chunked envelope pipeline against the buffered
// baseline, at sizes where the difference matters. Buffered, the client
// encodes the whole request before the first byte leaves and the server
// encodes the whole response before the first byte returns, so the time
// until the client holds any response data grows with the message twice
// over; streamed, encode/wire/decode overlap on both legs and the first
// response chunk lands while the tail of the response is still being
// encoded.

import (
	"context"
	"fmt"
	"io"
	"time"

	"bxsoap/internal/core"
	"bxsoap/internal/dataset"
	"bxsoap/internal/netsim"
	"bxsoap/internal/tcpbind"
)

// StreamSizes is the full sweep for the streaming experiment, in model
// pairs (12 native bytes each): ~1 MB, ~64 MB, ~512 MB.
var StreamSizes = []int{87360, 5592405, 44739242}

// StreamPoint is one streamed-or-buffered measurement.
type StreamPoint struct {
	Scheme    string        `json:"scheme"`
	Profile   string        `json:"profile"`
	Pairs     int           `json:"pairs"`
	Bytes     int           `json:"bytes"`
	FirstByte time.Duration `json:"first_byte_ns"`
	Total     time.Duration `json:"total_ns"`
	MBPerSec  float64       `json:"mb_per_sec"`
}

// StreamThroughput measures one (mode, size) cell of the streaming
// experiment over BXSA/TCP on the shaped network: time until the client
// holds the first byte of the response, and the full round trip. The
// server always runs streamed (chunked responses to streamed requests,
// buffered to buffered), so the same composition serves both client modes
// — exactly the interoperability the fallback matrix promises. Reported
// durations are the minimum over iters runs.
func StreamThroughput(nw *netsim.Network, streamed bool, chunkBytes, size, iters int) (StreamPoint, error) {
	mode := "Buffered"
	if streamed {
		mode = "Streamed"
	}
	pt := StreamPoint{
		Scheme:  fmt.Sprintf("%s BXSA/TCP (%s)", mode, sizeLabel(size)),
		Profile: nw.Profile().Name,
		Pairs:   size,
	}
	l, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		return pt, err
	}
	srv := core.NewServer(core.BXSAEncoding{}, tcpbind.NewListener(l), unifiedHandler,
		core.WithStreaming(chunkBytes))
	go srv.Serve()
	defer srv.Close()

	b := tcpbind.New(nw.Dial, l.Addr().String())
	defer b.Close()
	enc := core.BXSAEncoding{}
	codec := core.NewCodec(enc)
	m := dataset.Generate(size)
	pt.Bytes = m.NativeSize()
	env := core.NewEnvelope(m.Element())
	ctx := context.Background()

	for i := 0; i < max(iters, 1); i++ {
		var firstByte, total time.Duration
		start := time.Now()
		if streamed {
			sink, err := b.SendRequestStream(ctx, enc.ContentType())
			if err != nil {
				return pt, err
			}
			if err := codec.EncodeChunks(env, chunkBytes, sink); err != nil {
				return pt, err
			}
			src, _, err := b.ReceiveResponseStream(ctx)
			if err != nil {
				return pt, err
			}
			head, headLast, err := src.ReadChunk()
			if err != nil {
				return pt, err
			}
			firstByte = time.Since(start)
			resp, err := codec.DecodeChunks(&replaySource{head: head, headLast: headLast, rest: src})
			if err != nil {
				return pt, err
			}
			total = time.Since(start)
			if _, err := parseReply(resp); err != nil {
				return pt, err
			}
		} else {
			p, err := codec.EncodePayload(env)
			if err != nil {
				return pt, err
			}
			err = b.SendRequest(ctx, p, enc.ContentType())
			p.Release()
			if err != nil {
				return pt, err
			}
			rp, _, err := b.ReceiveResponse(ctx)
			if err != nil {
				return pt, err
			}
			firstByte = time.Since(start)
			resp, err := codec.DecodePayload(rp)
			rp.Release()
			if err != nil {
				return pt, err
			}
			total = time.Since(start)
			if _, err := parseReply(resp); err != nil {
				return pt, err
			}
		}
		if pt.FirstByte == 0 || firstByte < pt.FirstByte {
			pt.FirstByte = firstByte
		}
		if pt.Total == 0 || total < pt.Total {
			pt.Total = total
		}
	}
	pt.MBPerSec = float64(pt.Bytes) / pt.Total.Seconds() / (1 << 20)
	return pt, nil
}

// replaySource re-heads a chunk stream whose first chunk was consumed for
// the first-byte timestamp.
type replaySource struct {
	head     *core.Payload
	headLast bool
	rest     core.ChunkSource
	served   bool
}

//paylint:returns owned
func (r *replaySource) ReadChunk() (*core.Payload, bool, error) {
	if !r.served {
		r.served = true
		return r.head, r.headLast, nil
	}
	if r.headLast {
		return nil, false, io.EOF
	}
	return r.rest.ReadChunk()
}

func (r *replaySource) Abort() {
	if !r.served {
		r.served = true
		r.head.Release()
	}
	r.rest.Abort()
}

// StreamRecords flattens a stream point into two bench artifact records —
// the full round trip and the first-byte latency — so both trajectories
// diff across PRs.
func StreamRecords(pt StreamPoint) []BenchRecord {
	return []BenchRecord{
		{Scheme: fmt.Sprintf("%s, %s: total", pt.Scheme, pt.Profile), Calls: 1, NsPerOp: pt.Total.Nanoseconds()},
		{Scheme: fmt.Sprintf("%s, %s: first-byte", pt.Scheme, pt.Profile), Calls: 1, NsPerOp: pt.FirstByte.Nanoseconds()},
	}
}

// PrintStreamPoints renders the streaming experiment table.
func PrintStreamPoints(w io.Writer, points []StreamPoint) {
	fmt.Fprintf(w, "%-28s %-5s %10s %12s %12s %10s\n",
		"scheme", "net", "bytes", "first-byte", "total", "MB/s")
	for _, pt := range points {
		fmt.Fprintf(w, "%-28s %-5s %10d %12s %12s %10.1f\n",
			pt.Scheme, pt.Profile, pt.Bytes, pt.FirstByte.Round(10*time.Microsecond),
			pt.Total.Round(10*time.Microsecond), pt.MBPerSec)
	}
}

// sizeLabel names a model size by its approximate native footprint.
func sizeLabel(pairs int) string {
	bytes := pairs * 12
	if bytes >= 1<<20 {
		return fmt.Sprintf("%dMB", bytes>>20)
	}
	return fmt.Sprintf("%dKB", bytes>>10)
}
