package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"bxsoap/internal/netsim"
	"bxsoap/internal/obs"
)

func TestStageBreakdownCoversFourCombos(t *testing.T) {
	results, err := StageBreakdown(StageConfig{
		Profile:   netsim.Unshaped,
		ModelSize: 50,
		Calls:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"SOAP over BXSA/TCP", "SOAP over XML/TCP", "SOAP over BXSA/HTTP", "SOAP over XML/HTTP"}
	if len(results) != len(want) {
		t.Fatalf("got %d results, want %d", len(results), len(want))
	}
	for i, r := range results {
		if r.Scheme != want[i] {
			t.Errorf("result %d scheme = %q, want %q", i, r.Scheme, want[i])
		}
		if r.Calls != 3 {
			t.Errorf("%s: calls = %d, want 3 (warm-up must not count)", r.Scheme, r.Calls)
		}
		if r.Total <= 0 {
			t.Errorf("%s: total = %v, want > 0", r.Scheme, r.Total)
		}
		if r.Encode <= 0 || r.Decode <= 0 {
			t.Errorf("%s: encode %v / decode %v, want both > 0", r.Scheme, r.Encode, r.Decode)
		}
		if r.Total < r.Encode+r.Decode+r.Handler+r.Wire {
			t.Errorf("%s: stage sum %v exceeds total %v",
				r.Scheme, r.Encode+r.Decode+r.Handler+r.Wire, r.Total)
		}
		if r.Client == nil || r.Server == nil {
			t.Fatalf("%s: missing raw snapshots", r.Scheme)
		}
		if r.Client.Counters[obs.CallsCompleted.String()] != 3 {
			t.Errorf("%s: client snapshot calls_completed = %d, want 3",
				r.Scheme, r.Client.Counters[obs.CallsCompleted.String()])
		}
	}
	// The results must serialize: this is the benchharness -obs-json artifact.
	if _, err := json.Marshal(results); err != nil {
		t.Fatalf("results not serializable: %v", err)
	}

	var buf bytes.Buffer
	PrintStageBreakdown(&buf, results)
	out := buf.String()
	for _, col := range []string{"encode", "wire", "handler", "decode", "total"} {
		if !strings.Contains(out, col) {
			t.Errorf("table missing %q column:\n%s", col, out)
		}
	}
	for _, s := range want {
		if !strings.Contains(out, s) {
			t.Errorf("table missing scheme %q:\n%s", s, out)
		}
	}
}

func TestObserverReset(t *testing.T) {
	o := obs.New()
	o.Inc(obs.CallsStarted)
	o.GaugeAdd(obs.PoolInflight, 5)
	o.ObserveStage(obs.ClientEncode, 1000)
	o.Reset()
	if o.Counter(obs.CallsStarted) != 0 || o.Gauge(obs.PoolInflight) != 0 ||
		o.GaugeHighWater(obs.PoolInflight) != 0 || o.StageSnapshot(obs.ClientEncode).Count != 0 {
		t.Error("Reset left state behind")
	}
}
