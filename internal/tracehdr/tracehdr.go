// Package tracehdr defines the wire form of the request-trace context: a
// SOAP header block carried as a sibling of wsa:MessageID. Like the wsa
// package it lives in the paper's "WS-*" layer — the header is built and
// read as bXDM nodes, so it rides textual XML and BXSA identically and
// survives any encoding the engine is composed with (§5.1).
//
// The block is deliberately tiny and non-mustUnderstand: trace-unaware
// receivers ignore it, and a missing block simply starts a new trace at the
// receiving node.
//
//	<trace:TraceContext xmlns:trace="urn:bxsoap:trace">
//	  <trace:Id>9c0ffee1deadbeef</trace:Id>   <!-- 16 lowercase hex digits -->
//	  <trace:Seq>1</trace:Seq>                <!-- hop sequence on the path -->
//	</trace:TraceContext>
package tracehdr

import (
	"fmt"
	"strconv"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/obs"
)

// Namespace is the trace header namespace.
const Namespace = "urn:bxsoap:trace"

// Local names of the header block and its leaves.
const (
	LocalContext = "TraceContext"
	localID      = "Id"
	localSeq     = "Seq"
)

// HeaderName is the qualified name of the header block, for envelope
// lookups.
func HeaderName() bxdm.QName { return bxdm.Name(Namespace, LocalContext) }

func leaf(local, value string) *bxdm.LeafElement {
	return bxdm.NewLeaf(bxdm.PName(Namespace, "trace", local), value)
}

// Node renders a trace context as its header block node.
func Node(tc obs.TraceContext) bxdm.Node {
	return bxdm.NewElement(bxdm.PName(Namespace, "trace", LocalContext),
		leaf(localID, tc.ID.String()),
		leaf(localSeq, strconv.Itoa(tc.Seq)),
	)
}

// Parse reads a trace context back out of its header block node. It
// returns an error for a malformed block (missing or unparseable leaves) so
// receivers can distinguish "absent" (start a new trace) from "corrupt"
// (journal and start a new trace).
func Parse(n bxdm.Node) (obs.TraceContext, error) {
	el, ok := n.(*bxdm.Element)
	if !ok {
		return obs.TraceContext{}, fmt.Errorf("tracehdr: %s is not a component element", LocalContext)
	}
	idEl := el.FirstChild(bxdm.Name(Namespace, localID))
	seqEl := el.FirstChild(bxdm.Name(Namespace, localSeq))
	if idEl == nil || seqEl == nil {
		return obs.TraceContext{}, fmt.Errorf("tracehdr: %s missing Id or Seq", LocalContext)
	}
	id, err := obs.ParseTraceID(text(idEl))
	if err != nil {
		return obs.TraceContext{}, err
	}
	seq, err := strconv.Atoi(text(seqEl))
	if err != nil || seq < 0 {
		return obs.TraceContext{}, fmt.Errorf("tracehdr: bad Seq %q", text(seqEl))
	}
	return obs.TraceContext{ID: id, Seq: seq}, nil
}

func text(n bxdm.Node) string {
	switch x := n.(type) {
	case *bxdm.LeafElement:
		return x.Value.Text()
	case *bxdm.Element:
		return x.TextContent()
	default:
		return ""
	}
}
