package tracehdr_test

import (
	"testing"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/core"
	"bxsoap/internal/obs"
	"bxsoap/internal/tracehdr"
	"bxsoap/internal/wssec"
)

func TestNodeParseRoundTrip(t *testing.T) {
	tc := obs.TraceContext{ID: obs.NewTraceID(), Seq: 3}
	got, err := tracehdr.Parse(tracehdr.Node(tc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got != tc {
		t.Fatalf("round trip %+v != %+v", got, tc)
	}
}

func TestParseRejectsMalformedBlocks(t *testing.T) {
	cases := map[string]bxdm.Node{
		"leaf not element": bxdm.NewLeaf(bxdm.Name(tracehdr.Namespace, tracehdr.LocalContext), "x"),
		"missing seq": bxdm.NewElement(bxdm.PName(tracehdr.Namespace, "trace", tracehdr.LocalContext),
			bxdm.NewLeaf(bxdm.Name(tracehdr.Namespace, "Id"), "0123456789abcdef")),
		"bad id": bxdm.NewElement(bxdm.PName(tracehdr.Namespace, "trace", tracehdr.LocalContext),
			bxdm.NewLeaf(bxdm.Name(tracehdr.Namespace, "Id"), "nope"),
			bxdm.NewLeaf(bxdm.Name(tracehdr.Namespace, "Seq"), "0")),
		"negative seq": bxdm.NewElement(bxdm.PName(tracehdr.Namespace, "trace", tracehdr.LocalContext),
			bxdm.NewLeaf(bxdm.Name(tracehdr.Namespace, "Id"), "0123456789abcdef"),
			bxdm.NewLeaf(bxdm.Name(tracehdr.Namespace, "Seq"), "-1")),
	}
	for name, n := range cases {
		if _, err := tracehdr.Parse(n); err == nil {
			t.Errorf("%s: Parse accepted", name)
		}
	}
}

// testEnvelope builds a request with a body plus an unrelated header, then
// stamps the trace block the way the client path does.
func testEnvelope(tc obs.TraceContext) *core.Envelope {
	body := bxdm.NewElement(bxdm.PName("urn:test", "t", "op"),
		bxdm.NewLeaf(bxdm.Name("urn:test", "arg"), int32(42)))
	env := core.NewEnvelope(body)
	env.AddHeader(bxdm.NewLeaf(bxdm.PName("urn:other", "o", "Keep"), "yes"))
	return core.TracedRequest(env, tc)
}

// roundTrip encodes env with enc and decodes it back.
func roundTrip[E core.Encoding](t *testing.T, enc E, env *core.Envelope) *core.Envelope {
	t.Helper()
	codec := core.NewCodec(enc)
	data, err := codec.EncodeBytes(env)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := codec.DecodeEnvelope(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return back
}

// TestTraceContextSurvivesEveryEncoding is the wire regression test: an
// envelope carrying a trace block must decode to the identical context over
// textual XML, BXSA, and both wrapped in wssec's signed framing — the
// header lives in the bXDM layer, so every encoding policy must carry it
// unchanged.
func TestTraceContextSurvivesEveryEncoding(t *testing.T) {
	tc := obs.TraceContext{ID: obs.NewTraceID(), Seq: 2}
	key := []byte("0123456789abcdef0123456789abcdef")

	check := func(t *testing.T, back *core.Envelope) {
		t.Helper()
		got, ok := core.TraceContextOf(back)
		if !ok {
			t.Fatal("decoded envelope lost the trace block")
		}
		if got != tc {
			t.Fatalf("decoded context %+v, want %+v", got, tc)
		}
		if back.Header(bxdm.Name("urn:other", "Keep")) == nil {
			t.Fatal("unrelated header lost")
		}
	}

	t.Run("xmltext", func(t *testing.T) {
		check(t, roundTrip(t, core.XMLEncoding{}, testEnvelope(tc)))
	})
	t.Run("bxsa", func(t *testing.T) {
		check(t, roundTrip(t, core.BXSAEncoding{}, testEnvelope(tc)))
	})
	t.Run("xmltext+wssec", func(t *testing.T) {
		check(t, roundTrip(t, wssec.Secure(core.XMLEncoding{}, key), testEnvelope(tc)))
	})
	t.Run("bxsa+wssec", func(t *testing.T) {
		check(t, roundTrip(t, wssec.Secure(core.BXSAEncoding{}, key), testEnvelope(tc)))
	})
}

// TestTracedRequestIsCopyOnWrite guards the concurrency contract: request
// envelopes are shared across goroutines and reused across calls, so
// stamping a trace context must never mutate the input.
func TestTracedRequestIsCopyOnWrite(t *testing.T) {
	body := bxdm.NewElement(bxdm.PName("urn:test", "t", "op"))
	env := core.NewEnvelope(body)
	env.AddHeader(bxdm.NewLeaf(bxdm.PName("urn:other", "o", "Keep"), "yes"))

	out := core.TracedRequest(env, obs.TraceContext{ID: 9, Seq: 1})
	if len(env.HeaderEntries) != 1 {
		t.Fatalf("input envelope mutated: %d headers", len(env.HeaderEntries))
	}
	if _, ok := core.TraceContextOf(env); ok {
		t.Fatal("input envelope gained a trace block")
	}
	if got, ok := core.TraceContextOf(out); !ok || got.ID != 9 || got.Seq != 1 {
		t.Fatalf("output context = %+v ok=%v", got, ok)
	}

	// Relaying replaces the block rather than stacking a second one.
	out2 := core.TracedRequest(out, obs.TraceContext{ID: 9, Seq: 3})
	count := 0
	for _, h := range out2.HeaderEntries {
		if el, ok := h.(bxdm.ElementNode); ok && el.ElemName().Matches(tracehdr.HeaderName()) {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("relay left %d trace blocks, want 1", count)
	}
	if got, _ := core.TraceContextOf(out2); got.Seq != 3 {
		t.Fatalf("relay context = %+v, want Seq=3", got)
	}
}
