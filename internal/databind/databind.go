// Package databind maps Go structs to and from bXDM trees — the "XML
// databinding" box in the paper's Figure 3. Because the target is bXDM
// rather than text, numeric fields bind to typed LeafElements and numeric
// slices bind to packed ArrayElements: a bound struct therefore serializes
// through BXSA with zero float↔ASCII conversions, and through textual XML
// with them — the application code is identical either way.
//
// Field mapping follows encoding/xml conventions:
//
//	Field int32  `xml:"count"`       → <count> leaf element
//	Field string `xml:"id,attr"`     → id attribute
//	Field []float64 `xml:"vals"`     → <vals> packed array element
//	Field []Inner `xml:"item"`       → repeated <item> child elements
//	Field Inner                      → nested element (field name)
//	Field *T                         → optional (nil = omitted)
//	Field T `xml:"-"`                → skipped
package databind

import (
	"fmt"
	"reflect"
	"strings"

	"bxsoap/internal/bxdm"
)

// Marshal converts a struct (or pointer to struct) into an element named
// name.
func Marshal(v any, name bxdm.QName) (*bxdm.Element, error) {
	rv := reflect.ValueOf(v)
	for rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return nil, fmt.Errorf("databind: nil value")
		}
		rv = rv.Elem()
	}
	if rv.Kind() != reflect.Struct {
		return nil, fmt.Errorf("databind: top-level value must be a struct, got %s", rv.Kind())
	}
	return marshalStruct(rv, name)
}

func marshalStruct(rv reflect.Value, name bxdm.QName) (*bxdm.Element, error) {
	el := bxdm.NewElement(name)
	t := rv.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		fname, attr, skip := fieldName(f)
		if skip {
			continue
		}
		fv := rv.Field(i)
		if fv.Kind() == reflect.Pointer {
			if fv.IsNil() {
				continue
			}
			fv = fv.Elem()
		}
		if attr {
			val, err := leafValue(fv)
			if err != nil {
				return nil, fmt.Errorf("databind: field %s: %w", f.Name, err)
			}
			el.SetAttr(bxdm.LocalName(fname), val)
			continue
		}
		children, err := marshalField(fv, bxdm.LocalName(fname))
		if err != nil {
			return nil, fmt.Errorf("databind: field %s: %w", f.Name, err)
		}
		el.Append(children...)
	}
	return el, nil
}

func marshalField(fv reflect.Value, name bxdm.QName) ([]bxdm.Node, error) {
	switch fv.Kind() {
	case reflect.Struct:
		child, err := marshalStruct(fv, name)
		if err != nil {
			return nil, err
		}
		return []bxdm.Node{child}, nil
	case reflect.Slice:
		if arr, ok := packedArray(fv, name); ok {
			return []bxdm.Node{arr}, nil
		}
		var out []bxdm.Node
		for i := 0; i < fv.Len(); i++ {
			ev := fv.Index(i)
			if ev.Kind() == reflect.Pointer {
				if ev.IsNil() {
					continue
				}
				ev = ev.Elem()
			}
			nodes, err := marshalField(ev, name)
			if err != nil {
				return nil, err
			}
			out = append(out, nodes...)
		}
		return out, nil
	default:
		val, err := leafValue(fv)
		if err != nil {
			return nil, err
		}
		return []bxdm.Node{bxdm.NewLeafValue(name, val)}, nil
	}
}

// packedArray maps a numeric slice to an ArrayElement.
func packedArray(fv reflect.Value, name bxdm.QName) (*bxdm.ArrayElement, bool) {
	switch s := fv.Interface().(type) {
	case []int8:
		return bxdm.NewArray(name, s), true
	case []int16:
		return bxdm.NewArray(name, s), true
	case []int32:
		return bxdm.NewArray(name, s), true
	case []int64:
		return bxdm.NewArray(name, s), true
	case []uint8:
		return bxdm.NewArray(name, s), true
	case []uint16:
		return bxdm.NewArray(name, s), true
	case []uint32:
		return bxdm.NewArray(name, s), true
	case []uint64:
		return bxdm.NewArray(name, s), true
	case []float32:
		return bxdm.NewArray(name, s), true
	case []float64:
		return bxdm.NewArray(name, s), true
	default:
		return nil, false
	}
}

func leafValue(fv reflect.Value) (bxdm.Value, error) {
	switch fv.Kind() {
	case reflect.Bool:
		return bxdm.BoolValue(fv.Bool()), nil
	case reflect.String:
		return bxdm.StringValue(fv.String()), nil
	case reflect.Int8:
		return bxdm.Int8Value(int8(fv.Int())), nil
	case reflect.Int16:
		return bxdm.Int16Value(int16(fv.Int())), nil
	case reflect.Int32:
		return bxdm.Int32Value(int32(fv.Int())), nil
	case reflect.Int, reflect.Int64:
		return bxdm.Int64Value(fv.Int()), nil
	case reflect.Uint8:
		return bxdm.Uint8Value(uint8(fv.Uint())), nil
	case reflect.Uint16:
		return bxdm.Uint16Value(uint16(fv.Uint())), nil
	case reflect.Uint32:
		return bxdm.Uint32Value(uint32(fv.Uint())), nil
	case reflect.Uint, reflect.Uint64:
		return bxdm.Uint64Value(fv.Uint()), nil
	case reflect.Float32:
		return bxdm.Float32Value(float32(fv.Float())), nil
	case reflect.Float64:
		return bxdm.Float64Value(fv.Float()), nil
	default:
		return bxdm.Value{}, fmt.Errorf("unsupported kind %s", fv.Kind())
	}
}

func fieldName(f reflect.StructField) (name string, attr, skip bool) {
	tag := f.Tag.Get("xml")
	if tag == "-" {
		return "", false, true
	}
	name = f.Name
	if tag != "" {
		parts := strings.Split(tag, ",")
		if parts[0] != "" {
			name = parts[0]
		}
		for _, opt := range parts[1:] {
			if opt == "attr" {
				attr = true
			}
		}
	}
	return name, attr, false
}

// Unmarshal populates a struct pointer from an element produced by Marshal
// (or decoded from either wire format).
func Unmarshal(n bxdm.Node, v any) error {
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("databind: Unmarshal target must be a non-nil pointer")
	}
	rv = rv.Elem()
	if rv.Kind() != reflect.Struct {
		return fmt.Errorf("databind: Unmarshal target must point to a struct")
	}
	el, ok := n.(bxdm.ElementNode)
	if !ok {
		return fmt.Errorf("databind: node is %v, want element", n.Kind())
	}
	return unmarshalStruct(el, rv)
}

func unmarshalStruct(el bxdm.ElementNode, rv reflect.Value) error {
	t := rv.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		fname, attr, skip := fieldName(f)
		if skip {
			continue
		}
		fv := rv.Field(i)
		if attr {
			val, ok := el.Attr(bxdm.LocalName(fname))
			if !ok {
				continue
			}
			if err := setLeaf(fv, val); err != nil {
				return fmt.Errorf("databind: field %s: %w", f.Name, err)
			}
			continue
		}
		if err := unmarshalField(el, fv, fname); err != nil {
			return fmt.Errorf("databind: field %s: %w", f.Name, err)
		}
	}
	return nil
}

func childrenNamed(el bxdm.ElementNode, name string) []bxdm.ElementNode {
	parent, ok := el.(*bxdm.Element)
	if !ok {
		return nil
	}
	var out []bxdm.ElementNode
	for _, c := range parent.Children {
		if ce, ok := c.(bxdm.ElementNode); ok && ce.ElemName().Local == name {
			out = append(out, ce)
		}
	}
	return out
}

func unmarshalField(parent bxdm.ElementNode, fv reflect.Value, name string) error {
	matches := childrenNamed(parent, name)
	if fv.Kind() == reflect.Pointer {
		if len(matches) == 0 {
			return nil
		}
		if fv.IsNil() {
			fv.Set(reflect.New(fv.Type().Elem()))
		}
		fv = fv.Elem()
	}
	switch fv.Kind() {
	case reflect.Struct:
		if len(matches) == 0 {
			return nil
		}
		return unmarshalStruct(matches[0], fv)
	case reflect.Slice:
		if len(matches) == 0 {
			return nil
		}
		// Packed array?
		if arr, ok := matches[0].(*bxdm.ArrayElement); ok {
			return setPacked(fv, arr)
		}
		elemT := fv.Type().Elem()
		out := reflect.MakeSlice(fv.Type(), 0, len(matches))
		for _, m := range matches {
			ev := reflect.New(elemT).Elem()
			switch ev.Kind() {
			case reflect.Struct:
				if err := unmarshalStruct(m, ev); err != nil {
					return err
				}
			default:
				if err := setLeaf(ev, elementValue(m)); err != nil {
					return err
				}
			}
			out = reflect.Append(out, ev)
		}
		fv.Set(out)
		return nil
	default:
		if len(matches) == 0 {
			return nil
		}
		return setLeaf(fv, elementValue(matches[0]))
	}
}

func elementValue(el bxdm.ElementNode) bxdm.Value {
	switch x := el.(type) {
	case *bxdm.LeafElement:
		return x.Value
	case *bxdm.Element:
		return bxdm.StringValue(x.TextContent())
	default:
		return bxdm.Value{}
	}
}

func setPacked(fv reflect.Value, arr *bxdm.ArrayElement) error {
	set := func(v any) bool {
		rv := reflect.ValueOf(v)
		if rv.Type().AssignableTo(fv.Type()) {
			fv.Set(rv)
			return true
		}
		return false
	}
	d := arr.Data
	if items, ok := bxdm.Items[int8](d); ok && set(items) {
		return nil
	}
	if items, ok := bxdm.Items[int16](d); ok && set(items) {
		return nil
	}
	if items, ok := bxdm.Items[int32](d); ok && set(items) {
		return nil
	}
	if items, ok := bxdm.Items[int64](d); ok && set(items) {
		return nil
	}
	if items, ok := bxdm.Items[uint8](d); ok && set(items) {
		return nil
	}
	if items, ok := bxdm.Items[uint16](d); ok && set(items) {
		return nil
	}
	if items, ok := bxdm.Items[uint32](d); ok && set(items) {
		return nil
	}
	if items, ok := bxdm.Items[uint64](d); ok && set(items) {
		return nil
	}
	if items, ok := bxdm.Items[float32](d); ok && set(items) {
		return nil
	}
	if items, ok := bxdm.Items[float64](d); ok && set(items) {
		return nil
	}
	return fmt.Errorf("array item type %v does not match field type %s", d.Type(), fv.Type())
}

func setLeaf(fv reflect.Value, val bxdm.Value) error {
	if val.IsZero() {
		return nil
	}
	switch fv.Kind() {
	case reflect.Bool:
		fv.SetBool(val.Bool())
	case reflect.String:
		fv.SetString(val.Text())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		fv.SetInt(val.Int64())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		fv.SetUint(val.Uint64())
	case reflect.Float32, reflect.Float64:
		fv.SetFloat(val.Float64())
	default:
		return fmt.Errorf("unsupported kind %s", fv.Kind())
	}
	return nil
}
