package databind

import (
	"reflect"
	"testing"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/bxsa"
	"bxsoap/internal/xmltext"
)

type Reading struct {
	ID       string    `xml:"id,attr"`
	Station  string    `xml:"station"`
	Seq      int32     `xml:"seq"`
	Pressure float64   `xml:"pressure"`
	OK       bool      `xml:"ok"`
	Samples  []float64 `xml:"samples"`
	Tags     []string  `xml:"tag"`
	Meta     Meta      `xml:"meta"`
	Extra    *Meta     `xml:"extra"`
	Ignore   string    `xml:"-"`
	hidden   int
}

type Meta struct {
	Source string `xml:"source"`
	Level  uint16 `xml:"level"`
}

func sample() Reading {
	return Reading{
		ID:       "r-17",
		Station:  "KBMI",
		Seq:      42,
		Pressure: 991.125,
		OK:       true,
		Samples:  []float64{1.5, -2.25, 3},
		Tags:     []string{"qc", "raw"},
		Meta:     Meta{Source: "sim", Level: 3},
		Ignore:   "should vanish",
		hidden:   7,
	}
}

func TestMarshalShape(t *testing.T) {
	el, err := Marshal(sample(), bxdm.LocalName("reading"))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := el.Attr(bxdm.LocalName("id")); !ok || v.Text() != "r-17" {
		t.Error("attr id missing")
	}
	// Numeric slice became a packed array element.
	s := el.FirstChild(bxdm.LocalName("samples"))
	if s == nil || s.Kind() != bxdm.KindArrayElement {
		t.Fatalf("samples = %v", s)
	}
	if items, ok := bxdm.Items[float64](s.(*bxdm.ArrayElement).Data); !ok || len(items) != 3 {
		t.Error("samples not packed float64")
	}
	// Scalar fields became typed leaves.
	if p := el.FirstChild(bxdm.LocalName("pressure")); p.(*bxdm.LeafElement).Value.Type() != bxdm.TFloat64 {
		t.Error("pressure not a double leaf")
	}
	// String slice became repeated elements.
	var tags int
	for _, c := range el.Children {
		if ce, ok := c.(bxdm.ElementNode); ok && ce.ElemName().Local == "tag" {
			tags++
		}
	}
	if tags != 2 {
		t.Errorf("tag elements = %d", tags)
	}
	// Skipped fields.
	if el.FirstChild(bxdm.LocalName("Ignore")) != nil || el.FirstChild(bxdm.LocalName("hidden")) != nil {
		t.Error("skipped/unexported fields serialized")
	}
	// Nil pointer omitted.
	if el.FirstChild(bxdm.LocalName("extra")) != nil {
		t.Error("nil pointer field serialized")
	}
}

func TestRoundTripInMemory(t *testing.T) {
	in := sample()
	el, err := Marshal(&in, bxdm.LocalName("reading"))
	if err != nil {
		t.Fatal(err)
	}
	var out Reading
	if err := Unmarshal(el, &out); err != nil {
		t.Fatal(err)
	}
	in.Ignore, in.hidden = "", 0 // not serialized by design
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip:\n in = %+v\nout = %+v", in, out)
	}
}

func TestRoundTripThroughBXSA(t *testing.T) {
	in := sample()
	in.Extra = &Meta{Source: "ptr", Level: 9}
	el, err := Marshal(in, bxdm.LocalName("reading"))
	if err != nil {
		t.Fatal(err)
	}
	wire, err := bxsa.Marshal(el, bxsa.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	node, err := bxsa.Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	var out Reading
	if err := Unmarshal(node, &out); err != nil {
		t.Fatal(err)
	}
	in.Ignore, in.hidden = "", 0
	if !reflect.DeepEqual(in, out) {
		t.Errorf("BXSA round trip:\n in = %+v\nout = %+v", in, out)
	}
}

func TestRoundTripThroughXML(t *testing.T) {
	in := sample()
	el, err := Marshal(in, bxdm.LocalName("reading"))
	if err != nil {
		t.Fatal(err)
	}
	wire, err := xmltext.Marshal(el, xmltext.EncodeOptions{TypeHints: true})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xmltext.Parse(wire, xmltext.DecodeOptions{RecoverTypes: true, DropInterElementWhitespace: true})
	if err != nil {
		t.Fatal(err)
	}
	var out Reading
	if err := Unmarshal(doc.Root(), &out); err != nil {
		t.Fatal(err)
	}
	in.Ignore, in.hidden = "", 0
	if !reflect.DeepEqual(in, out) {
		t.Errorf("XML round trip:\n in = %+v\nout = %+v", in, out)
	}
}

func TestStructSlices(t *testing.T) {
	type Batch struct {
		Items []Meta `xml:"item"`
	}
	in := Batch{Items: []Meta{{Source: "a", Level: 1}, {Source: "b", Level: 2}}}
	el, err := Marshal(in, bxdm.LocalName("batch"))
	if err != nil {
		t.Fatal(err)
	}
	var out Batch
	if err := Unmarshal(el, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("struct slice round trip: %+v", out)
	}
}

func TestMarshalErrors(t *testing.T) {
	if _, err := Marshal(42, bxdm.LocalName("x")); err == nil {
		t.Error("non-struct accepted")
	}
	var nilPtr *Meta
	if _, err := Marshal(nilPtr, bxdm.LocalName("x")); err == nil {
		t.Error("nil pointer accepted")
	}
	type WithMap struct {
		M map[string]int `xml:"m"`
	}
	if _, err := Marshal(WithMap{M: map[string]int{"a": 1}}, bxdm.LocalName("x")); err == nil {
		t.Error("map field accepted")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	el := bxdm.NewElement(bxdm.LocalName("x"))
	var notPtr Meta
	if err := Unmarshal(el, notPtr); err == nil {
		t.Error("non-pointer target accepted")
	}
	var i int
	if err := Unmarshal(el, &i); err == nil {
		t.Error("non-struct target accepted")
	}
	if err := Unmarshal(&bxdm.Text{Data: "x"}, &Meta{}); err == nil {
		t.Error("text node accepted")
	}
}

func TestUnmarshalMissingFieldsLeaveZeroValues(t *testing.T) {
	el := bxdm.NewElement(bxdm.LocalName("reading"),
		bxdm.NewLeaf(bxdm.LocalName("seq"), int32(7)),
	)
	var out Reading
	if err := Unmarshal(el, &out); err != nil {
		t.Fatal(err)
	}
	if out.Seq != 7 || out.Station != "" || out.Samples != nil || out.Extra != nil {
		t.Errorf("partial unmarshal wrong: %+v", out)
	}
}

func TestPackedTypeMismatch(t *testing.T) {
	el := bxdm.NewElement(bxdm.LocalName("reading"),
		bxdm.NewArray(bxdm.LocalName("samples"), []int32{1, 2}),
	)
	var out Reading
	if err := Unmarshal(el, &out); err == nil {
		t.Error("int32 array accepted into []float64 field")
	}
}
