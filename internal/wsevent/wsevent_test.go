package wsevent

import (
	"context"
	"sync"
	"testing"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/core"
	"bxsoap/internal/tcpbind"
)

// notifySink runs a SOAP server that records delivered events.
type notifySink struct {
	mu     sync.Mutex
	events []*core.Envelope
}

func (s *notifySink) handler(_ context.Context, req *core.Envelope) (*core.Envelope, error) {
	s.mu.Lock()
	s.events = append(s.events, req.Clone())
	s.mu.Unlock()
	return core.NewEnvelope(), nil
}

func (s *notifySink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

func startSink(t *testing.T, enc core.Encoding) (*notifySink, string) {
	t.Helper()
	sink := &notifySink{}
	l, err := tcpbind.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var srv interface{ Close() error }
	switch e := enc.(type) {
	case core.BXSAEncoding:
		s := core.NewServer(e, l, sink.handler)
		go s.Serve()
		srv = s
	case core.XMLEncoding:
		s := core.NewServer(e, l, sink.handler)
		go s.Serve()
		srv = s
	default:
		t.Fatalf("unsupported sink encoding %T", enc)
	}
	t.Cleanup(func() { srv.Close() })
	return sink, l.Addr().String()
}

func event() bxdm.Node {
	e := bxdm.NewElement(bxdm.Name("urn:ev", "reading"))
	e.DeclareNamespace("ev", "urn:ev")
	e.Append(bxdm.NewArray(bxdm.Name("urn:ev", "samples"), []float64{9.5, 8.25}))
	return e
}

func TestSubscribeNotifyUnsubscribe(t *testing.T) {
	broker := NewBroker()
	binSink, binAddr := startSink(t, core.BXSAEncoding{})
	xmlSink, xmlAddr := startSink(t, core.XMLEncoding{})

	// Subscribe both, with different delivery encodings.
	ctx := context.Background()
	resp, err := broker.Handle(ctx, SubscribeRequest(binAddr, "BXSA"))
	if err != nil {
		t.Fatal(err)
	}
	binID := subscriptionID(t, resp)
	if _, err := broker.Handle(ctx, SubscribeRequest(xmlAddr, "XML")); err != nil {
		t.Fatal(err)
	}
	if len(broker.Subscriptions()) != 2 {
		t.Fatalf("subscriptions = %d", len(broker.Subscriptions()))
	}

	delivered, err := broker.Notify(ctx, event())
	if err != nil || delivered != 2 {
		t.Fatalf("Notify = %d, %v", delivered, err)
	}
	if binSink.count() != 1 || xmlSink.count() != 1 {
		t.Errorf("sink deliveries = %d/%d", binSink.count(), xmlSink.count())
	}

	// The BXSA subscriber received the packed array intact.
	binSink.mu.Lock()
	got := binSink.events[0].Body().(*bxdm.Element)
	binSink.mu.Unlock()
	arr, ok := got.FirstChild(bxdm.Name("urn:ev", "samples")).(*bxdm.ArrayElement)
	if !ok {
		t.Fatal("delivered event lost its array element")
	}
	if items, _ := bxdm.Items[float64](arr.Data); len(items) != 2 || items[0] != 9.5 {
		t.Errorf("delivered samples = %v", arr.Data)
	}

	// Unsubscribe the binary one; the next notify reaches only XML.
	if _, err := broker.Handle(ctx, UnsubscribeRequest(binID)); err != nil {
		t.Fatal(err)
	}
	delivered, err = broker.Notify(ctx, event())
	if err != nil || delivered != 1 {
		t.Fatalf("Notify after unsubscribe = %d, %v", delivered, err)
	}
	if binSink.count() != 1 || xmlSink.count() != 2 {
		t.Errorf("post-unsubscribe deliveries = %d/%d", binSink.count(), xmlSink.count())
	}
}

func subscriptionID(t *testing.T, resp *core.Envelope) string {
	t.Helper()
	body := resp.Body().(*bxdm.Element)
	id := body.FirstChild(bxdm.Name(Namespace, "Identifier"))
	if id == nil {
		t.Fatal("SubscribeResponse without Identifier")
	}
	return id.(*bxdm.LeafElement).Value.Text()
}

func TestSubscribeValidation(t *testing.T) {
	broker := NewBroker()
	ctx := context.Background()

	// No Delivery element.
	bad := bxdm.NewElement(bxdm.PName(Namespace, "wse", "Subscribe"))
	bad.DeclareNamespace("wse", Namespace)
	if _, err := broker.Handle(ctx, core.NewEnvelope(bad)); err == nil {
		t.Error("Subscribe without Delivery accepted")
	}

	// Unknown encoding.
	if _, err := broker.Handle(ctx, SubscribeRequest("tcp://x:1", "EXI")); err == nil {
		t.Error("unknown encoding accepted")
	}

	// Unknown operation.
	other := core.NewEnvelope(bxdm.NewElement(bxdm.Name("urn:other", "op")))
	if _, err := broker.Handle(ctx, other); err == nil {
		t.Error("unknown operation accepted")
	}

	// Unsubscribe of unknown id.
	if _, err := broker.Handle(ctx, UnsubscribeRequest("sub-404")); err == nil {
		t.Error("unknown unsubscribe accepted")
	}
}

func TestNotifyWithDeadSubscriber(t *testing.T) {
	broker := NewBroker()
	ctx := context.Background()
	if _, err := broker.Handle(ctx, SubscribeRequest("127.0.0.1:1", "XML")); err != nil {
		t.Fatal(err)
	}
	live, addr := startSink(t, core.XMLEncoding{})
	if _, err := broker.Handle(ctx, SubscribeRequest(addr, "XML")); err != nil {
		t.Fatal(err)
	}
	delivered, err := broker.Notify(ctx, event())
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1 (dead subscriber skipped)", delivered)
	}
	if err == nil {
		t.Error("Notify should report the delivery failure")
	}
	if live.count() != 1 {
		t.Errorf("live sink got %d", live.count())
	}
}

func TestBrokerOverSOAPEngine(t *testing.T) {
	// The broker itself served through the generic engine: subscribe via a
	// real SOAP round trip.
	broker := NewBroker()
	l, err := tcpbind.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := core.NewServer(core.BXSAEncoding{}, l, broker.Handle)
	go srv.Serve()
	defer srv.Close()

	sink, sinkAddr := startSink(t, core.BXSAEncoding{})
	eng := core.NewEngine(core.BXSAEncoding{}, tcpbind.New(tcpbind.NetDialer, l.Addr().String()))
	defer eng.Close()
	resp, err := eng.Call(context.Background(), SubscribeRequest(sinkAddr, "BXSA"))
	if err != nil {
		t.Fatal(err)
	}
	if id := subscriptionID(t, resp); id == "" {
		t.Fatal("no id")
	}
	if _, err := broker.Notify(context.Background(), event()); err != nil {
		t.Fatal(err)
	}
	if sink.count() != 1 {
		t.Errorf("sink got %d events", sink.count())
	}
}
