// Package wsevent implements a WS-Eventing subscribe/notify layer over the
// generic SOAP engine — the "WS-Eventing" box in the paper's Figure 3. The
// broker and subscriber exchange plain envelopes built from bXDM nodes, so
// the whole layer runs unchanged over textual XML or BXSA, over HTTP or
// TCP; event payloads containing numeric arrays ride as packed
// ArrayElements when the subscriber chose a binary binding.
package wsevent

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/core"
	"bxsoap/internal/tcpbind"
	"bxsoap/internal/wsa"
)

// Namespace is the WS-Eventing namespace.
const Namespace = "http://schemas.xmlsoap.org/ws/2004/08/eventing"

// Actions.
const (
	ActionSubscribe     = Namespace + "/Subscribe"
	ActionSubscribeResp = Namespace + "/SubscribeResponse"
	ActionUnsubscribe   = Namespace + "/Unsubscribe"
	ActionNotify        = Namespace + "/Notify"
)

func evName(local string) bxdm.QName { return bxdm.PName(Namespace, "wse", local) }

// SubscribeRequest builds a Subscribe envelope. deliveryAddr is the
// subscriber's notify endpoint ("tcp://host:port" in this implementation),
// and encoding names the policy the subscriber will decode notifications
// with ("BXSA" or "XML").
func SubscribeRequest(deliveryAddr, encoding string) *core.Envelope {
	sub := bxdm.NewElement(evName("Subscribe"))
	sub.DeclareNamespace("wse", Namespace)
	delivery := bxdm.NewElement(evName("Delivery"),
		bxdm.NewLeaf(evName("NotifyTo"), deliveryAddr),
		bxdm.NewLeaf(evName("Encoding"), encoding),
	)
	sub.Append(delivery)
	env := core.NewEnvelope(sub)
	wsa.Properties{Action: ActionSubscribe, MessageID: wsa.NewMessageID()}.Attach(env)
	return env
}

// UnsubscribeRequest builds an Unsubscribe envelope for a subscription id.
func UnsubscribeRequest(id string) *core.Envelope {
	un := bxdm.NewElement(evName("Unsubscribe"))
	un.DeclareNamespace("wse", Namespace)
	un.SetAttr(bxdm.LocalName("id"), bxdm.StringValue(id))
	env := core.NewEnvelope(un)
	wsa.Properties{Action: ActionUnsubscribe, MessageID: wsa.NewMessageID()}.Attach(env)
	return env
}

// Subscription is one active delivery registration.
type Subscription struct {
	ID       string
	NotifyTo string
	Encoding string
}

// Broker manages subscriptions and delivers notifications. Register its
// Handle method as (part of) a server's handler.
type Broker struct {
	mu   sync.Mutex
	next int
	subs map[string]Subscription
	// DialTCP lets tests and shaped networks intercept delivery dials.
	DialTCP tcpbind.Dialer
}

// NewBroker constructs an empty broker delivering over plain TCP.
func NewBroker() *Broker {
	return &Broker{subs: make(map[string]Subscription), DialTCP: tcpbind.NetDialer}
}

// Handle processes Subscribe/Unsubscribe envelopes; it returns an error
// fault for anything else.
func (b *Broker) Handle(_ context.Context, req *core.Envelope) (*core.Envelope, error) {
	body := req.Body()
	if body == nil {
		return nil, &core.Fault{Code: core.FaultClient, String: "empty body"}
	}
	switch {
	case body.ElemName().Matches(bxdm.Name(Namespace, "Subscribe")):
		return b.subscribe(body)
	case body.ElemName().Matches(bxdm.Name(Namespace, "Unsubscribe")):
		return b.unsubscribe(body)
	default:
		return nil, &core.Fault{Code: core.FaultClient,
			String: fmt.Sprintf("unsupported operation %v", body.ElemName())}
	}
}

func (b *Broker) subscribe(body bxdm.ElementNode) (*core.Envelope, error) {
	el, ok := body.(*bxdm.Element)
	if !ok {
		return nil, &core.Fault{Code: core.FaultClient, String: "malformed Subscribe"}
	}
	delivery, ok := el.FirstChild(bxdm.Name(Namespace, "Delivery")).(*bxdm.Element)
	if !ok || delivery == nil {
		return nil, &core.Fault{Code: core.FaultClient, String: "Subscribe without Delivery"}
	}
	notifyTo := childText(delivery, "NotifyTo")
	encoding := childText(delivery, "Encoding")
	if notifyTo == "" {
		return nil, &core.Fault{Code: core.FaultClient, String: "Delivery without NotifyTo"}
	}
	if encoding == "" {
		encoding = "XML"
	}
	if encoding != "XML" && encoding != "BXSA" {
		return nil, &core.Fault{Code: core.FaultClient, String: "unknown delivery encoding " + encoding}
	}
	b.mu.Lock()
	b.next++
	id := "sub-" + strconv.Itoa(b.next)
	b.subs[id] = Subscription{ID: id, NotifyTo: notifyTo, Encoding: encoding}
	b.mu.Unlock()

	resp := bxdm.NewElement(evName("SubscribeResponse"))
	resp.DeclareNamespace("wse", Namespace)
	resp.Append(bxdm.NewLeaf(evName("Identifier"), id))
	return core.NewEnvelope(resp), nil
}

func (b *Broker) unsubscribe(body bxdm.ElementNode) (*core.Envelope, error) {
	idV, ok := body.Attr(bxdm.LocalName("id"))
	if !ok {
		return nil, &core.Fault{Code: core.FaultClient, String: "Unsubscribe without id"}
	}
	b.mu.Lock()
	_, existed := b.subs[idV.Text()]
	delete(b.subs, idV.Text())
	b.mu.Unlock()
	if !existed {
		return nil, &core.Fault{Code: core.FaultClient, String: "unknown subscription " + idV.Text()}
	}
	resp := bxdm.NewElement(evName("UnsubscribeResponse"))
	resp.DeclareNamespace("wse", Namespace)
	return core.NewEnvelope(resp), nil
}

func childText(el *bxdm.Element, local string) string {
	c := el.FirstChild(bxdm.Name(Namespace, local))
	switch x := c.(type) {
	case *bxdm.LeafElement:
		return x.Value.Text()
	case *bxdm.Element:
		return x.TextContent()
	default:
		return ""
	}
}

// Subscriptions returns a snapshot of active subscriptions.
func (b *Broker) Subscriptions() []Subscription {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Subscription, 0, len(b.subs))
	for _, s := range b.subs {
		out = append(out, s)
	}
	return out
}

// Notify delivers an event to every subscriber with its chosen encoding
// over a TCP binding, and returns the number of successful deliveries plus
// the first error encountered.
func (b *Broker) Notify(ctx context.Context, event bxdm.Node) (int, error) {
	subs := b.Subscriptions()
	delivered := 0
	var firstErr error
	for _, s := range subs {
		env := core.NewEnvelope(bxdm.Clone(event))
		wsa.Properties{Action: ActionNotify, MessageID: wsa.NewMessageID()}.Attach(env)
		err := b.deliver(ctx, s, env)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("wsevent: deliver to %s: %w", s.NotifyTo, err)
			}
			continue
		}
		delivered++
	}
	return delivered, firstErr
}

func (b *Broker) deliver(ctx context.Context, s Subscription, env *core.Envelope) error {
	bind := tcpbind.New(b.DialTCP, s.NotifyTo)
	defer bind.Close()
	// Notifications are acknowledged with an empty envelope; the engine's
	// request-response MEP gives end-to-end delivery confirmation.
	switch s.Encoding {
	case "BXSA":
		eng := core.NewEngine(core.BXSAEncoding{}, bind)
		_, err := eng.Call(ctx, env)
		return err
	default:
		eng := core.NewEngine(core.XMLEncoding{}, bind)
		_, err := eng.Call(ctx, env)
		return err
	}
}
