package netcdf

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleFile() *File {
	n := 100
	idx := make([]int32, n)
	vals := make([]float64, n)
	for i := range idx {
		idx[i] = int32(i)
		vals[i] = float64(i) * 1.25
	}
	return &File{
		Dims: []Dimension{{Name: "model", Length: n}},
		Attrs: []Attribute{
			StringAttr("title", "LEAD-like atmospheric sample"),
			DoubleAttr("version", 1.5),
			IntAttr("levels", 1, 2, 3),
		},
		Vars: []Variable{
			{
				Name: "index", Type: Int, Dims: []string{"model"},
				Attrs: []Attribute{StringAttr("units", "count")},
				Data:  idx,
			},
			{
				Name: "values", Type: Double, Dims: []string{"model"},
				Attrs: []Attribute{StringAttr("units", "hPa")},
				Data:  vals,
			},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	f := sampleFile()
	data, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != 1 {
		t.Errorf("version = %d", back.Version)
	}
	if !reflect.DeepEqual(f.Dims, back.Dims) {
		t.Errorf("dims = %+v", back.Dims)
	}
	if !reflect.DeepEqual(f.Attrs, back.Attrs) {
		t.Errorf("attrs = %+v", back.Attrs)
	}
	if len(back.Vars) != 2 {
		t.Fatalf("vars = %d", len(back.Vars))
	}
	for i := range f.Vars {
		if f.Vars[i].Name != back.Vars[i].Name || f.Vars[i].Type != back.Vars[i].Type {
			t.Errorf("var %d meta mismatch", i)
		}
		if !reflect.DeepEqual(f.Vars[i].Data, back.Vars[i].Data) {
			t.Errorf("var %s data mismatch", f.Vars[i].Name)
		}
		if !reflect.DeepEqual(f.Vars[i].Attrs, back.Vars[i].Attrs) {
			t.Errorf("var %s attrs mismatch", f.Vars[i].Name)
		}
	}
}

func TestMagicAndEndianness(t *testing.T) {
	data, err := sampleFile().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte{'C', 'D', 'F', 1}) {
		t.Errorf("magic = %x", data[:4])
	}
}

func TestVersion2Offsets(t *testing.T) {
	f := sampleFile()
	f.Version = 2
	data, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if data[3] != 2 {
		t.Errorf("version byte = %d", data[3])
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := back.Var("values")
	if !reflect.DeepEqual(v.Data, f.Vars[1].Data) {
		t.Error("v2 data mismatch")
	}
}

func TestAllTypes(t *testing.T) {
	f := &File{
		Dims: []Dimension{{Name: "n", Length: 3}},
		Vars: []Variable{
			{Name: "b", Type: Byte, Dims: []string{"n"}, Data: []int8{-1, 0, 1}},
			{Name: "c", Type: Char, Dims: []string{"n"}, Data: "abc"},
			{Name: "s", Type: Short, Dims: []string{"n"}, Data: []int16{-300, 0, 300}},
			{Name: "i", Type: Int, Dims: []string{"n"}, Data: []int32{-70000, 0, 70000}},
			{Name: "f", Type: Float, Dims: []string{"n"}, Data: []float32{-1.5, 0, 1.5}},
			{Name: "d", Type: Double, Dims: []string{"n"}, Data: []float64{math.Pi, -0.0, 2e300}},
		},
	}
	data, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Vars {
		if !reflect.DeepEqual(f.Vars[i].Data, back.Vars[i].Data) {
			t.Errorf("%s: %v != %v", f.Vars[i].Name, back.Vars[i].Data, f.Vars[i].Data)
		}
	}
}

func TestRecordVariables(t *testing.T) {
	// 4 records over an unlimited dimension, plus one fixed variable.
	f := &File{
		Dims: []Dimension{
			{Name: "time", Length: 0}, // unlimited
			{Name: "x", Length: 2},
		},
		Vars: []Variable{
			{Name: "fixed", Type: Int, Dims: []string{"x"}, Data: []int32{7, 8}},
			{Name: "temp", Type: Double, Dims: []string{"time", "x"},
				Data: []float64{1, 2, 3, 4, 5, 6, 7, 8}},
			{Name: "count", Type: Short, Dims: []string{"time"},
				Data: []int16{10, 20, 30, 40}},
		},
	}
	recs, err := f.NumRecs()
	if err != nil || recs != 4 {
		t.Fatalf("NumRecs = %d, %v", recs, err)
	}
	data, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Vars {
		if !reflect.DeepEqual(f.Vars[i].Data, back.Vars[i].Data) {
			t.Errorf("%s: %v != %v", f.Vars[i].Name, back.Vars[i].Data, f.Vars[i].Data)
		}
	}
}

func TestInconsistentRecordCounts(t *testing.T) {
	f := &File{
		Dims: []Dimension{{Name: "t", Length: 0}},
		Vars: []Variable{
			{Name: "a", Type: Int, Dims: []string{"t"}, Data: []int32{1, 2}},
			{Name: "b", Type: Int, Dims: []string{"t"}, Data: []int32{1, 2, 3}},
		},
	}
	if _, err := f.Marshal(); err == nil {
		t.Error("inconsistent record counts accepted")
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []*File{
		// Data length mismatch.
		{Dims: []Dimension{{Name: "n", Length: 5}},
			Vars: []Variable{{Name: "v", Type: Int, Dims: []string{"n"}, Data: []int32{1}}}},
		// Unknown dimension.
		{Vars: []Variable{{Name: "v", Type: Int, Dims: []string{"ghost"}, Data: []int32{1}}}},
		// Type/data mismatch.
		{Dims: []Dimension{{Name: "n", Length: 1}},
			Vars: []Variable{{Name: "v", Type: Double, Dims: []string{"n"}, Data: []int32{1}}}},
		// Record dimension not outermost.
		{Dims: []Dimension{{Name: "t", Length: 0}, {Name: "x", Length: 1}},
			Vars: []Variable{{Name: "v", Type: Int, Dims: []string{"x", "t"}, Data: []int32{1}}}},
	}
	for i, f := range cases {
		if _, err := f.Marshal(); err == nil {
			t.Errorf("case %d: invalid file marshaled successfully", i)
		}
	}
}

func TestParserRejectsMalformed(t *testing.T) {
	good, err := sampleFile().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse([]byte("notcdf")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Parse(good[:10]); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := Parse(good[:len(good)-8]); err == nil {
		t.Error("truncated data accepted")
	}
	// Bit-flip resilience: no panics.
	for i := 0; i < len(good); i += 7 {
		mut := append([]byte{}, good...)
		mut[i] ^= 0xff
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic with byte %d flipped: %v", i, r)
				}
			}()
			_, _ = Parse(mut)
		}()
	}
}

func TestWriteReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sample.nc")
	f := sampleFile()
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := back.Var("values")
	if !ok || !reflect.DeepEqual(v.Data, f.Vars[1].Data) {
		t.Error("file round trip mismatch")
	}
	if _, ok := back.Dim("model"); !ok {
		t.Error("dimension lost")
	}
}

func TestEncodingOverheadMatchesTable1(t *testing.T) {
	// Table 1: netCDF overhead ≈ 2.2% at model size 1000.
	n := 1000
	idx := make([]int32, n)
	vals := make([]float64, n)
	f := &File{
		Dims: []Dimension{{Name: "model", Length: n}},
		Vars: []Variable{
			{Name: "index", Type: Int, Dims: []string{"model"}, Data: idx},
			{Name: "values", Type: Double, Dims: []string{"model"}, Data: vals},
		},
	}
	data, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	native := n * 12
	overhead := float64(len(data)-native) / float64(native)
	if overhead < 0 || overhead > 0.05 {
		t.Errorf("netCDF overhead = %.2f%%, want small and positive", overhead*100)
	}
}

func TestPropertyRoundTripDoubles(t *testing.T) {
	f := func(vals []float64) bool {
		for i, v := range vals {
			if math.IsNaN(v) {
				vals[i] = 0
			}
		}
		nc := &File{
			Dims: []Dimension{{Name: "n", Length: len(vals)}},
			Vars: []Variable{{Name: "v", Type: Double, Dims: []string{"n"}, Data: vals}},
		}
		data, err := nc.Marshal()
		if err != nil {
			return false
		}
		back, err := Parse(data)
		if err != nil {
			return false
		}
		got := back.Vars[0].Data.([]float64)
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScalarVariable(t *testing.T) {
	// Zero-dimensional variable: one value.
	f := &File{
		Vars: []Variable{{Name: "answer", Type: Int, Data: []int32{42}}},
	}
	data, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Vars[0].Data.([]int32); len(got) != 1 || got[0] != 42 {
		t.Errorf("scalar = %v", got)
	}
}

func BenchmarkMarshal1000Pairs(b *testing.B) {
	n := 1000
	f := &File{
		Dims: []Dimension{{Name: "model", Length: n}},
		Vars: []Variable{
			{Name: "index", Type: Int, Dims: []string{"model"}, Data: make([]int32, n)},
			{Name: "values", Type: Double, Dims: []string{"model"}, Data: make([]float64, n)},
		},
	}
	b.ReportAllocs()
	b.SetBytes(12000)
	for i := 0; i < b.N; i++ {
		if _, err := f.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCDLRendering(t *testing.T) {
	out := sampleFile().CDL("sample")
	for _, want := range []string{
		"netcdf sample {",
		"model = 100 ;",
		"int index(model) ;",
		"double values(model) ;",
		`index:units = "count" ;`,
		`:title = "LEAD-like atmospheric sample" ;`,
		":version = 1.5 ;",
		":levels = 1, 2, 3 ;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("CDL missing %q:\n%s", want, out)
		}
	}
}

func TestCDLUnlimitedDimension(t *testing.T) {
	f := &File{
		Dims: []Dimension{{Name: "time", Length: 0}},
		Vars: []Variable{{Name: "t", Type: Short, Dims: []string{"time"}, Data: []int16{1}}},
	}
	if out := f.CDL("rec"); !strings.Contains(out, "time = UNLIMITED ;") {
		t.Errorf("CDL = %s", out)
	}
}
