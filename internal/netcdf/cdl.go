package netcdf

import (
	"fmt"
	"strings"
)

// CDL renders the dataset's header in CDL, the textual notation ncdump
// uses — handy for debugging separated-scheme payloads without the real
// netCDF tooling the paper's testbed had.
func (f *File) CDL(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "netcdf %s {\n", name)
	if len(f.Dims) > 0 {
		b.WriteString("dimensions:\n")
		for _, d := range f.Dims {
			if d.Length == 0 {
				fmt.Fprintf(&b, "\t%s = UNLIMITED ;\n", d.Name)
			} else {
				fmt.Fprintf(&b, "\t%s = %d ;\n", d.Name, d.Length)
			}
		}
	}
	if len(f.Vars) > 0 {
		b.WriteString("variables:\n")
		for i := range f.Vars {
			v := &f.Vars[i]
			fmt.Fprintf(&b, "\t%s %s(%s) ;\n", v.Type, v.Name, strings.Join(v.Dims, ", "))
			for _, a := range v.Attrs {
				fmt.Fprintf(&b, "\t\t%s:%s = %s ;\n", v.Name, a.Name, cdlValue(a))
			}
		}
	}
	if len(f.Attrs) > 0 {
		b.WriteString("// global attributes:\n")
		for _, a := range f.Attrs {
			fmt.Fprintf(&b, "\t:%s = %s ;\n", a.Name, cdlValue(a))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func cdlValue(a Attribute) string {
	switch v := a.Values.(type) {
	case string:
		return fmt.Sprintf("%q", v)
	case []int8:
		return joinNums(v, "b")
	case []int16:
		return joinNums(v, "s")
	case []int32:
		return joinNums(v, "")
	case []float32:
		return joinNums(v, "f")
	case []float64:
		return joinNums(v, "")
	default:
		return fmt.Sprintf("%v", a.Values)
	}
}

func joinNums[T int8 | int16 | int32 | float32 | float64](vals []T, suffix string) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%v%s", v, suffix)
	}
	return strings.Join(parts, ", ")
}
