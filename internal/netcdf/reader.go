package netcdf

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
)

// Parse decodes a netCDF classic (CDF-1 or CDF-2) byte stream.
func Parse(data []byte) (*File, error) {
	d := &ncDecoder{data: data}
	f, err := d.parse()
	if err != nil {
		return nil, fmt.Errorf("netcdf: %w (at byte %d)", err, d.pos)
	}
	return f, nil
}

// ReadFile reads a dataset from disk (the only read path, mirroring the
// paper's observation that the netCDF library cannot read from memory —
// callers in the harness must stage through the filesystem).
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

type ncDecoder struct {
	data []byte
	pos  int
}

func (d *ncDecoder) need(n int) error {
	if d.pos+n > len(d.data) {
		return fmt.Errorf("truncated file (need %d bytes)", n)
	}
	return nil
}

func (d *ncDecoder) i32() (int32, error) {
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := int32(binary.BigEndian.Uint32(d.data[d.pos:]))
	d.pos += 4
	return v, nil
}

func (d *ncDecoder) i64() (int64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := int64(binary.BigEndian.Uint64(d.data[d.pos:]))
	d.pos += 8
	return v, nil
}

func (d *ncDecoder) name() (string, error) {
	n, err := d.i32()
	if err != nil {
		return "", err
	}
	if n < 0 || int(n) > len(d.data)-d.pos {
		return "", fmt.Errorf("bad name length %d", n)
	}
	s := string(d.data[d.pos : d.pos+int(n)])
	d.pos += pad4(int(n))
	return s, nil
}

func (d *ncDecoder) list(wantTag int32) (int, error) {
	tag, err := d.i32()
	if err != nil {
		return 0, err
	}
	n, err := d.i32()
	if err != nil {
		return 0, err
	}
	if tag == 0 && n == 0 {
		return 0, nil // ABSENT
	}
	if tag != wantTag {
		return 0, fmt.Errorf("list tag %#x, want %#x", tag, wantTag)
	}
	if n < 0 {
		return 0, fmt.Errorf("negative list count %d", n)
	}
	return int(n), nil
}

func (d *ncDecoder) parse() (*File, error) {
	if err := d.need(4); err != nil {
		return nil, err
	}
	if d.data[0] != 'C' || d.data[1] != 'D' || d.data[2] != 'F' {
		return nil, fmt.Errorf("bad magic %q", d.data[:3])
	}
	version := int(d.data[3])
	if version != 1 && version != 2 {
		return nil, fmt.Errorf("unsupported netCDF version %d", version)
	}
	d.pos = 4
	numRecs, err := d.i32()
	if err != nil {
		return nil, err
	}
	f := &File{Version: version}

	// Dimensions.
	nd, err := d.list(tagDimension)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nd; i++ {
		name, err := d.name()
		if err != nil {
			return nil, err
		}
		length, err := d.i32()
		if err != nil {
			return nil, err
		}
		if length < 0 {
			return nil, fmt.Errorf("dimension %s has negative length", name)
		}
		f.Dims = append(f.Dims, Dimension{Name: name, Length: int(length)})
	}

	// Global attributes.
	f.Attrs, err = d.attrs()
	if err != nil {
		return nil, err
	}

	// Variable metadata.
	nv, err := d.list(tagVariable)
	if err != nil {
		return nil, err
	}
	type varMeta struct {
		begin int64
	}
	metas := make([]varMeta, nv)
	for i := 0; i < nv; i++ {
		v := Variable{}
		if v.Name, err = d.name(); err != nil {
			return nil, err
		}
		ndims, err := d.i32()
		if err != nil {
			return nil, err
		}
		if ndims < 0 || int(ndims) > len(f.Dims) {
			return nil, fmt.Errorf("variable %s has %d dimensions", v.Name, ndims)
		}
		for j := 0; j < int(ndims); j++ {
			di, err := d.i32()
			if err != nil {
				return nil, err
			}
			if di < 0 || int(di) >= len(f.Dims) {
				return nil, fmt.Errorf("variable %s references dimension %d", v.Name, di)
			}
			v.Dims = append(v.Dims, f.Dims[di].Name)
		}
		if v.Attrs, err = d.attrs(); err != nil {
			return nil, err
		}
		t, err := d.i32()
		if err != nil {
			return nil, err
		}
		v.Type = Type(t)
		if v.Type.Size() == 0 {
			return nil, fmt.Errorf("variable %s has invalid type %d", v.Name, t)
		}
		if _, err := d.i32(); err != nil { // vsize (advisory)
			return nil, err
		}
		var begin int64
		if version == 2 {
			begin, err = d.i64()
		} else {
			var b32 int32
			b32, err = d.i32()
			begin = int64(b32)
		}
		if err != nil {
			return nil, err
		}
		metas[i].begin = begin
		f.Vars = append(f.Vars, v)
	}

	// Data section.
	for i := range f.Vars {
		v := &f.Vars[i]
		isRec, count, err := f.varShape(v)
		if err != nil {
			return nil, err
		}
		begin := metas[i].begin
		if begin < 0 {
			return nil, fmt.Errorf("variable %s begin offset %d out of range", v.Name, begin)
		}
		// Zero-byte variables (count 0, or record vars with no records) may
		// legitimately point just past the end of the file; the bounds
		// checks in readValues cover every non-empty read.
		if !isRec {
			v.Data, err = readValues(d.data, begin, count, v.Type)
			if err != nil {
				return nil, fmt.Errorf("variable %s: %w", v.Name, err)
			}
			continue
		}
		// Record variable: slices of count values every recSize bytes.
		recSize, err := f.recordSize()
		if err != nil {
			return nil, err
		}
		total := count * int(numRecs)
		v.Data, err = readRecordValues(d.data, begin, count, int(numRecs), recSize, v.Type, total)
		if err != nil {
			return nil, fmt.Errorf("variable %s: %w", v.Name, err)
		}
	}
	return f, nil
}

// recordSize computes the stride between consecutive records.
func (f *File) recordSize() (int64, error) {
	var size int64
	for i := range f.Vars {
		v := &f.Vars[i]
		isRec, count, err := f.varShape(v)
		if err != nil {
			return 0, err
		}
		if isRec {
			size += int64(pad4(count * v.Type.Size()))
		}
	}
	return size, nil
}

func (d *ncDecoder) attrs() ([]Attribute, error) {
	n, err := d.list(tagAttribute)
	if err != nil {
		return nil, err
	}
	var out []Attribute
	for i := 0; i < n; i++ {
		a := Attribute{}
		if a.Name, err = d.name(); err != nil {
			return nil, err
		}
		t, err := d.i32()
		if err != nil {
			return nil, err
		}
		a.Type = Type(t)
		if a.Type.Size() == 0 {
			return nil, fmt.Errorf("attribute %s has invalid type %d", a.Name, t)
		}
		count, err := d.i32()
		if err != nil {
			return nil, err
		}
		if count < 0 {
			return nil, fmt.Errorf("attribute %s has negative count", a.Name)
		}
		a.Values, err = readValues(d.data, int64(d.pos), int(count), a.Type)
		if err != nil {
			return nil, fmt.Errorf("attribute %s: %w", a.Name, err)
		}
		d.pos += pad4(int(count) * a.Type.Size())
		if d.pos > len(d.data) {
			return nil, fmt.Errorf("attribute %s overruns file", a.Name)
		}
		out = append(out, a)
	}
	return out, nil
}

func readValues(data []byte, begin int64, count int, t Type) (any, error) {
	need := int64(count) * int64(t.Size())
	if begin < 0 || begin+need > int64(len(data)) {
		return nil, fmt.Errorf("data [%d,+%d) out of range", begin, need)
	}
	b := data[begin : begin+need]
	switch t {
	case Char:
		return string(b), nil
	case Byte:
		out := make([]int8, count)
		for i := range out {
			out[i] = int8(b[i])
		}
		return out, nil
	case Short:
		out := make([]int16, count)
		for i := range out {
			out[i] = int16(binary.BigEndian.Uint16(b[2*i:]))
		}
		return out, nil
	case Int:
		out := make([]int32, count)
		for i := range out {
			out[i] = int32(binary.BigEndian.Uint32(b[4*i:]))
		}
		return out, nil
	case Float:
		out := make([]float32, count)
		for i := range out {
			out[i] = math.Float32frombits(binary.BigEndian.Uint32(b[4*i:]))
		}
		return out, nil
	case Double:
		out := make([]float64, count)
		for i := range out {
			out[i] = math.Float64frombits(binary.BigEndian.Uint64(b[8*i:]))
		}
		return out, nil
	default:
		return nil, fmt.Errorf("invalid type %d", t)
	}
}

func readRecordValues(data []byte, begin int64, perRec, numRecs int, recSize int64, t Type, total int) (any, error) {
	// Gather per-record chunks into one contiguous slice.
	switch t {
	case Char:
		out := make([]byte, 0, total)
		for r := 0; r < numRecs; r++ {
			chunk, err := readValues(data, begin+int64(r)*recSize, perRec, t)
			if err != nil {
				return nil, err
			}
			out = append(out, chunk.(string)...)
		}
		return string(out), nil
	case Byte:
		return gatherRecords[int8](data, begin, perRec, numRecs, recSize, t, total)
	case Short:
		return gatherRecords[int16](data, begin, perRec, numRecs, recSize, t, total)
	case Int:
		return gatherRecords[int32](data, begin, perRec, numRecs, recSize, t, total)
	case Float:
		return gatherRecords[float32](data, begin, perRec, numRecs, recSize, t, total)
	case Double:
		return gatherRecords[float64](data, begin, perRec, numRecs, recSize, t, total)
	default:
		return nil, fmt.Errorf("invalid type %d", t)
	}
}

func gatherRecords[T int8 | int16 | int32 | float32 | float64](
	data []byte, begin int64, perRec, numRecs int, recSize int64, t Type, total int,
) (any, error) {
	out := make([]T, 0, total)
	for r := 0; r < numRecs; r++ {
		chunk, err := readValues(data, begin+int64(r)*recSize, perRec, t)
		if err != nil {
			return nil, err
		}
		out = append(out, chunk.([]T)...)
	}
	return out, nil
}
