// Package netcdf implements the netCDF "classic" file format (CDF-1, plus
// the CDF-2 64-bit-offset variant) from scratch: header with dimension,
// attribute, and variable lists, fixed-size and record variables, and the
// big-endian, 4-byte-aligned data section.
//
// In the paper's evaluation (§6) netCDF is the serialization format of the
// conventional "separated" scheme: the scientific payload is written to a
// netCDF file, shipped over an HTTP or GridFTP data channel, and re-read on
// the far side. The paper stresses that "the netCDF library does not
// support reading the data directly from memory" — this package mirrors
// that constraint in the harness by always staging through a real file
// (WriteFile/ReadFile), which is exactly the disk-I/O cost the experiments
// attribute to the separated scheme.
package netcdf

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Type enumerates the netCDF external data types.
type Type int32

const (
	Byte   Type = 1 // NC_BYTE, []int8
	Char   Type = 2 // NC_CHAR, string
	Short  Type = 3 // NC_SHORT, []int16
	Int    Type = 4 // NC_INT, []int32
	Float  Type = 5 // NC_FLOAT, []float32
	Double Type = 6 // NC_DOUBLE, []float64
)

// Size returns the external size in bytes of one value.
func (t Type) Size() int {
	switch t {
	case Byte, Char:
		return 1
	case Short:
		return 2
	case Int, Float:
		return 4
	case Double:
		return 8
	default:
		return 0
	}
}

func (t Type) String() string {
	switch t {
	case Byte:
		return "byte"
	case Char:
		return "char"
	case Short:
		return "short"
	case Int:
		return "int"
	case Float:
		return "float"
	case Double:
		return "double"
	default:
		return fmt.Sprintf("type(%d)", int32(t))
	}
}

// Header list tags.
const (
	tagDimension = 0x0A
	tagVariable  = 0x0B
	tagAttribute = 0x0C
)

// Dimension is a named axis. Length 0 marks the unlimited (record)
// dimension; at most one is allowed.
type Dimension struct {
	Name   string
	Length int
}

// Attribute is a typed name-value pair on a variable or the whole file.
// Values holds string (Char) or []int8/[]int16/[]int32/[]float32/[]float64.
type Attribute struct {
	Name   string
	Type   Type
	Values any
}

// StringAttr builds a Char attribute.
func StringAttr(name, value string) Attribute {
	return Attribute{Name: name, Type: Char, Values: value}
}

// DoubleAttr builds a Double attribute.
func DoubleAttr(name string, vals ...float64) Attribute {
	return Attribute{Name: name, Type: Double, Values: vals}
}

// IntAttr builds an Int attribute.
func IntAttr(name string, vals ...int32) Attribute {
	return Attribute{Name: name, Type: Int, Values: vals}
}

// Variable is one named array over dimensions. Data holds the full values
// in row-major order: []int8, string, []int16, []int32, []float32 or
// []float64 matching Type. A variable whose first dimension is the record
// dimension is a record variable.
type Variable struct {
	Name  string
	Type  Type
	Dims  []string // dimension names, outermost first
	Attrs []Attribute
	Data  any
}

// File is an in-memory netCDF dataset.
type File struct {
	// Version is 1 (classic, 32-bit offsets) or 2 (64-bit offsets).
	Version int
	Dims    []Dimension
	Attrs   []Attribute
	Vars    []Variable
}

// Dim returns the named dimension.
func (f *File) Dim(name string) (Dimension, bool) {
	for _, d := range f.Dims {
		if d.Name == name {
			return d, true
		}
	}
	return Dimension{}, false
}

// Var returns the named variable.
func (f *File) Var(name string) (*Variable, bool) {
	for i := range f.Vars {
		if f.Vars[i].Name == name {
			return &f.Vars[i], true
		}
	}
	return nil, false
}

// NumRecs computes the record count from the record variables' data.
func (f *File) NumRecs() (int, error) {
	recs := 0
	for i := range f.Vars {
		v := &f.Vars[i]
		isRec, perRec, err := f.varShape(v)
		if err != nil {
			return 0, err
		}
		if !isRec {
			continue
		}
		n := dataLen(v.Data)
		if perRec == 0 {
			return 0, fmt.Errorf("netcdf: record variable %s has zero-size record", v.Name)
		}
		if n%perRec != 0 {
			return 0, fmt.Errorf("netcdf: variable %s data length %d not a multiple of record size %d", v.Name, n, perRec)
		}
		r := n / perRec
		if recs != 0 && r != recs {
			return 0, fmt.Errorf("netcdf: inconsistent record counts (%d vs %d)", recs, r)
		}
		recs = r
	}
	return recs, nil
}

// varShape reports whether v is a record variable and how many values one
// record (or the whole variable, if fixed) holds.
func (f *File) varShape(v *Variable) (isRec bool, count int, err error) {
	count = 1
	for i, dn := range v.Dims {
		d, ok := f.Dim(dn)
		if !ok {
			return false, 0, fmt.Errorf("netcdf: variable %s references unknown dimension %q", v.Name, dn)
		}
		if d.Length == 0 {
			if i != 0 {
				return false, 0, fmt.Errorf("netcdf: variable %s: record dimension must be outermost", v.Name)
			}
			isRec = true
			continue
		}
		count *= d.Length
	}
	return isRec, count, nil
}

func dataLen(data any) int {
	switch d := data.(type) {
	case []int8:
		return len(d)
	case string:
		return len(d)
	case []int16:
		return len(d)
	case []int32:
		return len(d)
	case []float32:
		return len(d)
	case []float64:
		return len(d)
	case nil:
		return 0
	default:
		return -1
	}
}

func pad4(n int) int { return (n + 3) &^ 3 }

// headerSizes computes the byte size of the header and per-variable data
// layout. Returns header length, per-variable vsize (padded), and begins.
func (f *File) layout() (hdr int, vsizes, begins []int64, recSize int64, err error) {
	offsetWidth := 4
	if f.Version == 2 {
		offsetWidth = 8
	}
	hdr = 4 + 4 // magic + numrecs
	hdr += listHeaderSize()
	for _, d := range f.Dims {
		hdr += nameSize(d.Name) + 4
	}
	hdr += attrsSize(f.Attrs)
	hdr += listHeaderSize()
	vsizes = make([]int64, len(f.Vars))
	begins = make([]int64, len(f.Vars))
	for i := range f.Vars {
		v := &f.Vars[i]
		hdr += nameSize(v.Name) + 4 + 4*len(v.Dims) + attrsSize(v.Attrs) + 4 + 4 + offsetWidth
		_, count, e := f.varShape(v)
		if e != nil {
			return 0, nil, nil, 0, e
		}
		vsizes[i] = int64(pad4(count * v.Type.Size()))
	}
	// Fixed variables first, then record variables interleaved per record.
	off := int64(hdr)
	for i := range f.Vars {
		isRec, _, _ := f.varShape(&f.Vars[i])
		if isRec {
			continue
		}
		begins[i] = off
		off += vsizes[i]
	}
	recStart := off
	for i := range f.Vars {
		isRec, _, _ := f.varShape(&f.Vars[i])
		if !isRec {
			continue
		}
		begins[i] = recStart + recSize
		recSize += vsizes[i]
	}
	return hdr, vsizes, begins, recSize, nil
}

func listHeaderSize() int { return 8 } // tag + nelems (or ABSENT pair)

func nameSize(s string) int { return 4 + pad4(len(s)) }

func attrsSize(attrs []Attribute) int {
	n := listHeaderSize()
	for _, a := range attrs {
		n += nameSize(a.Name) + 4 + 4 + pad4(dataLen(a.Values)*a.Type.Size())
	}
	return n
}

// Write serializes the dataset. The writer never needs to seek: variables
// are laid out in declaration order.
func (f *File) Write(w io.Writer) error {
	if f.Version == 0 {
		f.Version = 1
	}
	if f.Version != 1 && f.Version != 2 {
		return fmt.Errorf("netcdf: unsupported version %d", f.Version)
	}
	_, vsizes, begins, _, err := f.layout()
	if err != nil {
		return err
	}
	numRecs, err := f.NumRecs()
	if err != nil {
		return err
	}
	for i := range f.Vars {
		v := &f.Vars[i]
		if dataLen(v.Data) < 0 {
			return fmt.Errorf("netcdf: variable %s has unsupported data type %T", v.Name, v.Data)
		}
		if !typeMatchesData(v.Type, v.Data) {
			return fmt.Errorf("netcdf: variable %s: data %T does not match type %v", v.Name, v.Data, v.Type)
		}
		isRec, count, err := f.varShape(v)
		if err != nil {
			return err
		}
		want := count
		if isRec {
			want = count * numRecs
		}
		if dataLen(v.Data) != want {
			return fmt.Errorf("netcdf: variable %s: data length %d, dimensions require %d", v.Name, dataLen(v.Data), want)
		}
	}

	bw := bufio.NewWriterSize(w, 64<<10)
	e := &encoder{w: bw}
	e.bytes([]byte{'C', 'D', 'F', byte(f.Version)})
	e.i32(int32(numRecs))
	// Dimensions.
	e.list(tagDimension, len(f.Dims))
	for _, d := range f.Dims {
		e.name(d.Name)
		e.i32(int32(d.Length))
	}
	// Global attributes.
	e.attrs(f.Attrs)
	// Variables.
	e.list(tagVariable, len(f.Vars))
	for i := range f.Vars {
		v := &f.Vars[i]
		e.name(v.Name)
		e.i32(int32(len(v.Dims)))
		for _, dn := range v.Dims {
			e.i32(int32(f.dimIndex(dn)))
		}
		e.attrs(v.Attrs)
		e.i32(int32(v.Type))
		e.i32(int32(clampInt32(vsizes[i])))
		if f.Version == 2 {
			e.i64(begins[i])
		} else {
			e.i32(int32(begins[i]))
		}
	}
	// Fixed variable data in layout order.
	for i := range f.Vars {
		isRec, _, _ := f.varShape(&f.Vars[i])
		if isRec {
			continue
		}
		e.values(f.Vars[i].Data, 0, dataLen(f.Vars[i].Data), f.Vars[i].Type)
		e.padTo4()
	}
	// Record data: records interleaved across record variables.
	for r := 0; r < numRecs; r++ {
		for i := range f.Vars {
			v := &f.Vars[i]
			isRec, perRec, _ := f.varShape(v)
			if !isRec {
				continue
			}
			e.values(v.Data, r*perRec, perRec, v.Type)
			e.padTo4()
		}
	}
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

func clampInt32(v int64) int64 {
	if v > math.MaxInt32 {
		return math.MaxInt32 // spec: vsize is advisory for very large vars
	}
	return v
}

func (f *File) dimIndex(name string) int {
	for i, d := range f.Dims {
		if d.Name == name {
			return i
		}
	}
	return -1
}

func typeMatchesData(t Type, data any) bool {
	switch data.(type) {
	case []int8:
		return t == Byte
	case string:
		return t == Char
	case []int16:
		return t == Short
	case []int32:
		return t == Int
	case []float32:
		return t == Float
	case []float64:
		return t == Double
	default:
		return false
	}
}

type encoder struct {
	w   *bufio.Writer
	off int64
	err error
}

func (e *encoder) bytes(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
	e.off += int64(len(b))
}

func (e *encoder) i32(v int32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(v))
	e.bytes(b[:])
}

func (e *encoder) i64(v int64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	e.bytes(b[:])
}

func (e *encoder) list(tag int32, n int) {
	if n == 0 {
		e.i32(0) // ABSENT
		e.i32(0)
		return
	}
	e.i32(tag)
	e.i32(int32(n))
}

func (e *encoder) name(s string) {
	e.i32(int32(len(s)))
	e.bytes([]byte(s))
	e.padTo4()
}

func (e *encoder) padTo4() {
	for e.off%4 != 0 {
		e.bytes([]byte{0})
	}
}

func (e *encoder) attrs(attrs []Attribute) {
	e.list(tagAttribute, len(attrs))
	for _, a := range attrs {
		e.name(a.Name)
		e.i32(int32(a.Type))
		e.i32(int32(dataLen(a.Values)))
		e.values(a.Values, 0, dataLen(a.Values), a.Type)
		e.padTo4()
	}
}

// values writes count items of data starting at item offset start.
func (e *encoder) values(data any, start, count int, t Type) {
	switch d := data.(type) {
	case string:
		e.bytes([]byte(d[start : start+count]))
	case []int8:
		buf := make([]byte, count)
		for i, v := range d[start : start+count] {
			buf[i] = byte(v)
		}
		e.bytes(buf)
	case []int16:
		buf := make([]byte, 2*count)
		for i, v := range d[start : start+count] {
			binary.BigEndian.PutUint16(buf[2*i:], uint16(v))
		}
		e.bytes(buf)
	case []int32:
		buf := make([]byte, 4*count)
		for i, v := range d[start : start+count] {
			binary.BigEndian.PutUint32(buf[4*i:], uint32(v))
		}
		e.bytes(buf)
	case []float32:
		buf := make([]byte, 4*count)
		for i, v := range d[start : start+count] {
			binary.BigEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		e.bytes(buf)
	case []float64:
		buf := make([]byte, 8*count)
		for i, v := range d[start : start+count] {
			binary.BigEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
		e.bytes(buf)
	default:
		if e.err == nil {
			e.err = fmt.Errorf("netcdf: unsupported data %T", data)
		}
	}
}

// Marshal serializes to a byte slice.
func (f *File) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteFile writes the dataset to disk. The separated-scheme harness uses
// this (and ReadFile) so the baseline pays the same disk round trip the
// paper's netCDF library forced.
func (f *File) WriteFile(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Write(out); err != nil {
		out.Close()
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
