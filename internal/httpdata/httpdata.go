// Package httpdata implements the HTTP data channel of the paper's
// "separated" scheme (§6): the client saves the binary payload as a netCDF
// file, publishes it over HTTP, sends the URL in an ordinary SOAP message,
// and the server pulls the file with an HTTP GET — the role Apache httpd
// and libcurl play in the paper's testbed.
package httpdata

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Server publishes files from a root directory over HTTP.
type Server struct {
	root string
	l    net.Listener
	srv  *http.Server
	done chan struct{}
	once sync.Once
}

// NewServer serves files under root on the given (possibly netsim-shaped)
// listener.
func NewServer(l net.Listener, root string) *Server {
	s := &Server{root: root, l: l, done: make(chan struct{})}
	s.srv = &http.Server{Handler: http.HandlerFunc(s.handle)}
	go func() {
		s.srv.Serve(l)
		s.once.Do(func() { close(s.done) })
	}()
	return s
}

func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	name := path.Clean(strings.TrimPrefix(r.URL.Path, "/"))
	if name == "" || strings.HasPrefix(name, "..") || strings.Contains(name, "/../") {
		http.Error(w, "bad path", http.StatusBadRequest)
		return
	}
	f, err := os.Open(filepath.Join(s.root, filepath.FromSlash(name)))
	if err != nil {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil || st.IsDir() {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-netcdf")
	w.Header().Set("Content-Length", fmt.Sprint(st.Size()))
	io.Copy(w, f)
}

// URLFor returns the URL at which a file published under the server root is
// reachable.
func (s *Server) URLFor(name string) string {
	return "http://" + s.l.Addr().String() + "/" + name
}

// Addr returns the server's bound address.
func (s *Server) Addr() net.Addr { return s.l.Addr() }

// Close stops the server.
func (s *Server) Close() error {
	s.once.Do(func() { close(s.done) })
	return s.srv.Close()
}

// Client downloads files (the libcurl role).
type Client struct {
	hc *http.Client
}

// Dialer opens the underlying transport connection.
type Dialer func(addr string) (net.Conn, error)

// NewClient builds a download client dialing through dial (nil = plain
// TCP).
func NewClient(dial Dialer) *Client {
	tr := &http.Transport{
		MaxIdleConns:        8,
		MaxIdleConnsPerHost: 8,
		IdleConnTimeout:     time.Minute,
	}
	if dial != nil {
		tr.DialContext = func(_ context.Context, _, addr string) (net.Conn, error) {
			return dial(addr)
		}
	}
	return &Client{hc: &http.Client{Transport: tr}}
}

// Download fetches url into localPath. The body is streamed straight to
// disk: the separated scheme's receiver must materialize the file before
// the netCDF reader can open it (the library "does not support reading the
// data directly from memory").
func (c *Client) Download(ctx context.Context, url, localPath string) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, fmt.Errorf("httpdata: GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("httpdata: GET %s: %s", url, resp.Status)
	}
	out, err := os.Create(localPath)
	if err != nil {
		return 0, err
	}
	n, err := io.Copy(out, resp.Body)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	return n, err
}

// Close releases idle connections.
func (c *Client) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// ErrNotFound is a sentinel some callers match on.
var ErrNotFound = errors.New("httpdata: not found")
