package httpdata

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"testing"

	"bxsoap/internal/dataset"
	"bxsoap/internal/netcdf"
	"bxsoap/internal/netsim"
)

func TestPublishAndDownload(t *testing.T) {
	root := t.TempDir()
	m := dataset.Generate(200)
	if err := m.NetCDF().WriteFile(filepath.Join(root, "sample.nc")); err != nil {
		t.Fatal(err)
	}

	nw := netsim.New(netsim.Unshaped)
	l, err := nw.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(l, root)
	defer srv.Close()

	cl := NewClient(nw.Dial)
	defer cl.Close()
	local := filepath.Join(t.TempDir(), "fetched.nc")
	n, err := cl.Download(context.Background(), srv.URLFor("sample.nc"), local)
	if err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(local)
	if err != nil || st.Size() != n {
		t.Fatalf("downloaded %d bytes, file is %v/%v", n, st, err)
	}
	f, err := netcdf.ReadFile(local)
	if err != nil {
		t.Fatal(err)
	}
	back, err := dataset.FromNetCDF(f)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back) {
		t.Error("payload corrupted through the HTTP data channel")
	}
}

func TestDownloadMissingFile(t *testing.T) {
	root := t.TempDir()
	srv := NewServer(mustListen(t), root)
	defer srv.Close()
	cl := NewClient(nil)
	defer cl.Close()
	if _, err := cl.Download(context.Background(), srv.URLFor("missing.nc"), filepath.Join(t.TempDir(), "x")); err == nil {
		t.Error("missing file download succeeded")
	}
}

func TestPathTraversalBlocked(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "ok.txt"), []byte("fine"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(mustListen(t), root)
	defer srv.Close()
	cl := NewClient(nil)
	defer cl.Close()
	dst := filepath.Join(t.TempDir(), "out")
	if _, err := cl.Download(context.Background(), srv.URLFor("../../../etc/hostname"), dst); err == nil {
		t.Error("path traversal succeeded")
	}
}

func mustListen(t *testing.T) net.Listener {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return l
}
