package tcpbind

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net"
	"testing"
	"time"

	"bxsoap/internal/core"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	payload := []byte("hello frame")
	if err := writeFrame(w, payload, "text/xml"); err != nil {
		t.Fatal(err)
	}
	var fr frameReader
	got, ct, err := fr.readFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	defer got.Release()
	if !bytes.Equal(got.Bytes(), payload) || ct != "text/xml" {
		t.Errorf("frame = %q/%q", got.Bytes(), ct)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeFrame(w, nil, "application/x-bxsa"); err != nil {
		t.Fatal(err)
	}
	var fr frameReader
	got, ct, err := fr.readFrame(bufio.NewReader(&buf))
	if err != nil || got.Len() != 0 || ct != "application/x-bxsa" {
		t.Errorf("empty frame = %v/%q/%v", got, ct, err)
	}
	got.Release()
}

func TestFrameRejectsBadMagic(t *testing.T) {
	var fr frameReader
	r := bufio.NewReader(bytes.NewReader([]byte("XXx")))
	if _, _, err := fr.readFrame(r); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestFrameRejectsBadVersion(t *testing.T) {
	var fr frameReader
	r := bufio.NewReader(bytes.NewReader([]byte{'B', 'X', 0x7f, 0, 0}))
	if _, _, err := fr.readFrame(r); err == nil {
		t.Error("bad version accepted")
	}
}

func TestFrameRejectsHugeContentType(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	long := make([]byte, 5000)
	if err := writeFrame(w, nil, string(long)); err != nil {
		t.Fatal(err)
	}
	var fr frameReader
	if _, _, err := fr.readFrame(bufio.NewReader(&buf)); err == nil {
		t.Error("oversized content type accepted")
	}
}

func TestFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeFrame(w, []byte("0123456789"), "x"); err != nil {
		t.Fatal(err)
	}
	var fr frameReader
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, _, err := fr.readFrame(bufio.NewReader(bytes.NewReader(trunc))); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestReceiveWithoutSendFails(t *testing.T) {
	b := New(NetDialer, "127.0.0.1:1")
	if _, _, err := b.ReceiveResponse(context.Background()); err == nil {
		t.Error("ReceiveResponse before SendRequest succeeded")
	}
}

func TestDialFailureSurfaces(t *testing.T) {
	b := New(func(string) (net.Conn, error) { return nil, io.ErrClosedPipe }, "nowhere")
	if err := b.SendRequest(context.Background(), core.NewPayloadFrom([]byte("x")), "t"); err == nil {
		t.Error("dial failure not surfaced")
	}
}

func TestChannelEOFOnPeerClose(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan error, 1)
	go func() {
		ch, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer ch.Close()
		_, _, err = ch.ReceiveRequest(context.Background())
		done <- err
	}()
	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.Close() // no frame ever sent
	if err := <-done; err != io.EOF {
		t.Errorf("ReceiveRequest on closed peer = %v, want io.EOF", err)
	}
}

func TestBindingCloseIdempotent(t *testing.T) {
	b := New(NetDialer, "127.0.0.1:1")
	if err := b.Close(); err != nil {
		t.Errorf("Close on fresh binding: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestClientServerExchangeDirect(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		ch, err := l.Accept()
		if err != nil {
			return
		}
		defer ch.Close()
		for {
			payload, ct, err := ch.ReceiveRequest(context.Background())
			if err != nil {
				return
			}
			resp := core.NewPayloadFrom(append([]byte("echo:"), payload.Bytes()...))
			payload.Release()
			if err := ch.SendResponse(resp, ct); err != nil {
				return
			}
		}
	}()
	b := New(NetDialer, l.Addr().String())
	defer b.Close()
	for i := 0; i < 3; i++ {
		if err := b.SendRequest(context.Background(), core.NewPayloadFrom([]byte{byte('a' + i)}), "t/t"); err != nil {
			t.Fatal(err)
		}
		resp, ct, err := b.ReceiveResponse(context.Background())
		if err != nil || ct != "t/t" {
			t.Fatalf("recv: %q %v", ct, err)
		}
		if string(resp.Bytes()) != "echo:"+string([]byte{byte('a' + i)}) {
			t.Fatalf("resp = %q", resp.Bytes())
		}
		resp.Release()
	}
}

func TestContextDeadlineHonored(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		ch, err := l.Accept()
		if err != nil {
			return
		}
		defer ch.Close()
		// Receive the request but never respond.
		if payload, _, err := ch.ReceiveRequest(context.Background()); err == nil {
			payload.Release()
		}
		select {}
	}()
	b := New(NetDialer, l.Addr().String())
	defer b.Close()
	if err := b.SendRequest(context.Background(), core.NewPayloadFrom([]byte("x")), "t"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = b.ReceiveResponse(ctx)
	if err == nil {
		t.Fatal("deadline ignored")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("ReceiveResponse blocked past the deadline (%v)", time.Since(start))
	}
}

func TestCanceledContextRejectedEarly(t *testing.T) {
	b := New(NetDialer, "127.0.0.1:1")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := b.SendRequest(ctx, core.NewPayloadFrom([]byte("x")), "t"); err == nil {
		t.Error("canceled context not rejected")
	}
	if _, _, err := b.ReceiveResponse(ctx); err == nil {
		t.Error("canceled context not rejected on receive")
	}
}
