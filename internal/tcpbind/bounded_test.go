package tcpbind

import (
	"bufio"
	"bytes"
	"context"
	"runtime"
	"testing"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/core"
	"bxsoap/internal/obs"
	"bxsoap/internal/vls"
)

// TestStreamedHighWaterUnderBudget is the bounded-memory guarantee of the
// streaming pipeline, asserted through the observability gauges: a message
// far larger than the chunk window flows end to end while the number of
// simultaneously-live pooled payloads and the bytes in flight between
// encoder and decoder both stay under a budget that does not scale with
// the message. (A buffered exchange of the same message would hold the
// whole body in one payload on each side.)
func TestStreamedHighWaterUnderBudget(t *testing.T) {
	const chunk = 64 << 10
	o := obs.New(obs.WithNode("budget-test"))
	core.SetPayloadObserver(o)
	t.Cleanup(func() { core.SetPayloadObserver(nil) })

	addr, stop := echoServer(t, core.WithStreaming(chunk), core.WithObserver(o))
	defer stop()
	eng := core.NewEngine(core.BXSAEncoding{}, New(NetDialer, addr, WithObserver(o)),
		core.WithStreaming(chunk), core.WithObserver(o))
	defer eng.Close()

	req, want := bigArrayEnvelope(4 << 20) // ~16 MiB of array data per direction
	resp, err := eng.Call(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !bxdm.Equal(resp.Body(), want) {
		t.Fatal("echoed body differs")
	}

	// Payload-count budget: the pipeline holds a handful of chunk windows
	// at a time (encoder spill, wire, decoder), never the ~256 windows the
	// message comprises, and nothing near a whole-message payload count
	// either side of the wire.
	if hw := o.GaugeHighWater(obs.PayloadsInUse); hw > 64 {
		t.Errorf("payload high-water = %d concurrent payloads, want <= 64 (message is %d windows)",
			hw, (16<<20)/chunk)
	}
	// Byte budget: chunks enter the in-flight account when handed to the
	// transport and leave when the peer's decoder takes them, so the
	// high-water is the pipeline's true buffering — a few windows plus
	// socket buffers, far under the 16 MiB body (and under the pipeline's
	// 16 MiB design budget with room to spare).
	if hw := o.GaugeHighWater(obs.StreamBytesInFlight); hw > 8<<20 {
		t.Errorf("stream bytes in flight high-water = %d, want <= %d for a %d-byte body",
			hw, 8<<20, 16<<20)
	}
}

// TestHostileChunkLengthBoundsAllocation mirrors the buffered reader's
// pre-allocation regression test for the version-0x03 sub-frame: a chunk
// header may declare any length up to MaxFrameSize, but the reader must
// grow its buffer only as bytes actually arrive. A hostile peer promising
// a huge chunk and sending a few bytes costs a chunk or two of memory,
// not the declared size.
func TestHostileChunkLengthBoundsAllocation(t *testing.T) {
	script := []byte{0x00} // flags: not last, no reserved bits
	script = vls.AppendUint(script, uint64(MaxFrameSize)-1)
	script = append(script, "only a few bytes"...)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	payload, _, err := readChunkFrame(bufio.NewReader(bytes.NewReader(script)))
	runtime.ReadMemStats(&after)
	if err == nil {
		payload.Release()
		t.Fatal("truncated hostile chunk accepted")
	}
	if got := after.TotalAlloc - before.TotalAlloc; got > 8<<20 {
		t.Errorf("hostile chunk length drove %d bytes of allocation, want chunked growth only", got)
	}

	// A declared length past the limit must be rejected before any
	// allocation is sized from it.
	script = []byte{0x00}
	script = vls.AppendUint(script, uint64(MaxFrameSize)+1)
	runtime.GC()
	runtime.ReadMemStats(&before)
	payload, _, err = readChunkFrame(bufio.NewReader(bytes.NewReader(script)))
	runtime.ReadMemStats(&after)
	if err == nil {
		payload.Release()
		t.Fatal("over-limit chunk length accepted")
	}
	if got := after.TotalAlloc - before.TotalAlloc; got > 1<<20 {
		t.Errorf("over-limit chunk length drove %d bytes of allocation before rejection", got)
	}

	// Reserved flag bits are rejected at the flags byte.
	script = []byte{0xF0}
	script = vls.AppendUint(script, 4)
	script = append(script, "data"...)
	if payload, _, err := readChunkFrame(bufio.NewReader(bytes.NewReader(script))); err == nil {
		payload.Release()
		t.Fatal("reserved chunk flag bits accepted")
	}
}
