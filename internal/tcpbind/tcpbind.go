// Package tcpbind implements the TCPBinding policy (paper §5.3): the
// serialized SOAP message is "just dumped directly to a TCP connection",
// with a minimal framing header so message boundaries and the content type
// survive the stream. This is the binding behind the paper's fastest
// scheme, SOAP over BXSA/TCP.
//
// Wire format per message (buffered, version 0x01):
//
//	magic   2 bytes  "BX"
//	version 1 byte   0x01
//	ctLen   VLS      content-type length
//	ct      bytes
//	len     VLS      payload length
//	payload bytes
//
// Chunked form (version 0x03), used by the streaming pipeline: the header
// is the same through ct, followed by one or more sub-frames
//
//	flags   1 byte   bit0 = last chunk, other bits reserved (must be zero)
//	len     VLS      chunk length (may be zero)
//	payload bytes
//
// ending with the first flags byte with bit0 set. Either peer may send
// either form: a buffered receiver gathers a chunked message into one
// payload (capped at MaxFrameSize), and a streaming receiver surfaces a
// buffered message as a one-chunk stream, so the two interoperate in every
// combination (the DESIGN.md fallback matrix).
//
// Wire failures escape this package classified (core.TransportError /
// core.ErrBindingPoisoned); paylint's errclass analyzer enforces that via
// the marker below.
//
//paylint:classify-transport-errors
package tcpbind

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"bxsoap/internal/core"
	"bxsoap/internal/obs"
	"bxsoap/internal/vls"
)

// Option configures a Binding or Listener at construction.
type Option func(*options)

type options struct {
	obs *obs.Observer
}

// WithObserver wires an observability sink into the binding: message and
// payload-byte counters record into it on every frame sent or received
// (payload bytes, excluding framing overhead). On a Listener the observer
// propagates to every accepted channel.
func WithObserver(o *obs.Observer) Option {
	return func(c *options) { c.obs = o }
}

func applyOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

const (
	magic0, magic1 = 'B', 'X'
	version        = 0x01
	versionChunked = 0x03

	// chunkLast marks a sub-frame as the message's final chunk.
	chunkLast = 0x01

	// MaxFrameSize bounds a single frame's payload; larger length prefixes
	// are rejected before any allocation, guarding against hostile or
	// desynchronized peers.
	MaxFrameSize = 1 << 30

	// maxContentTypeLen bounds the frame's content-type field, likewise
	// checked before allocation.
	maxContentTypeLen = 1024
)

// Dialer opens the underlying transport connection; netsim-shaped dialers
// plug in here.
type Dialer func(addr string) (net.Conn, error)

// NetDialer dials plain TCP (no shaping). As a Dialer it hands the raw
// connection (and any raw dial error) to the binding, which classifies.
//
//paylint:wire-verbatim Dialer seam; ensure() classifies dial failures
func NetDialer(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// Binding is the client-side TCP binding. It lazily dials on first use and
// keeps the connection for subsequent exchanges (SOAP messages are
// hop-by-hop on one transport channel).
type Binding struct {
	addr string
	// dial opens the transport connection; calls through it pay the full
	// connection-establishment latency.
	//paylint:blocks dials the network
	dial Dialer
	obs  *obs.Observer

	// mu serializes the binding's one in-flight exchange: SOAP calls on a
	// tcpbind channel are strictly request/response on one connection, so
	// the frame I/O under this lock IS the critical section — there is
	// nothing else for a contender to do but wait for the exchange.
	//paylint:serializes-io single in-flight exchange per binding by contract
	mu       sync.Mutex
	conn     net.Conn
	br       *bufio.Reader
	bw       *bufio.Writer
	fr       frameReader
	poisoned bool
}

// New creates a client binding to addr using the given dialer.
func New(dial Dialer, addr string, opts ...Option) *Binding {
	o := applyOptions(opts)
	return &Binding{addr: addr, dial: dial, obs: o.obs}
}

func (b *Binding) ensure() error {
	if b.conn != nil {
		return nil
	}
	c, err := b.dial(b.addr)
	if err != nil {
		return &core.TransportError{Op: "dial", Err: fmt.Errorf("tcpbind: dial %s: %w", b.addr, err)}
	}
	b.conn = c
	b.br = bufio.NewReaderSize(c, 64<<10)
	b.bw = bufio.NewWriterSize(c, 64<<10)
	return nil
}

// poison marks the binding dead and tears the connection down. Called (under
// mu) after any frame-level failure: a partial write, a read deadline that
// expired mid-frame, or a malformed frame all leave the stream position
// unknown, so the connection must never carry another exchange.
//
//paylint:classifies
func (b *Binding) poison(op string, err error) error {
	b.poisoned = true
	if b.conn != nil {
		b.conn.Close()
		b.conn = nil
	}
	return fmt.Errorf("tcpbind: %s: %w: %w", op, core.ErrBindingPoisoned, err)
}

// Poisoned reports whether the binding has been retired after a frame-level
// failure. A poisoned binding fails every subsequent operation with
// core.ErrBindingPoisoned.
func (b *Binding) Poisoned() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.poisoned
}

// SendRequest implements core.Binding. A context deadline maps onto the
// connection's write deadline. The payload is borrowed: it is fully copied
// into the connection's write buffer before returning.
//
//paylint:borrows
func (b *Binding) SendRequest(ctx context.Context, payload *core.Payload, contentType string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned {
		return fmt.Errorf("tcpbind: %w", core.ErrBindingPoisoned)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := b.ensure(); err != nil {
		return err
	}
	if err := applyDeadline(ctx, b.conn.SetWriteDeadline); err != nil {
		// A failed deadline set means the conn is already broken; without
		// poisoning, the next exchange would run against it undeadlined.
		return b.poison("set write deadline", err)
	}
	if err := writeFrame(b.bw, payload.Bytes(), contentType); err != nil {
		return b.poison("write frame", err)
	}
	b.obs.Inc(obs.MessagesSent)
	b.obs.Add(obs.BytesSent, uint64(payload.Len()))
	return nil
}

// ReceiveResponse implements core.Binding. A context deadline maps onto the
// connection's read deadline. Any receive failure — including a deadline
// expiry before or during the frame — poisons the binding: a late response
// still in flight would desynchronize the next exchange.
//
//paylint:returns owned
func (b *Binding) ReceiveResponse(ctx context.Context) (*core.Payload, string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned {
		return nil, "", fmt.Errorf("tcpbind: %w", core.ErrBindingPoisoned)
	}
	if b.conn == nil {
		if err := ctx.Err(); err != nil {
			return nil, "", err
		}
		return nil, "", errors.New("tcpbind: no request in flight")
	}
	if err := ctx.Err(); err != nil {
		// The request went out; abandoning its response desynchronizes the
		// stream just as surely as a mid-frame timeout.
		return nil, "", b.poison("abandon response", err)
	}
	if err := applyDeadline(ctx, b.conn.SetReadDeadline); err != nil {
		return nil, "", b.poison("set read deadline", err)
	}
	payload, ct, err := b.fr.readFrame(b.br)
	if err != nil {
		return nil, "", b.poison("read frame", err)
	}
	b.obs.Inc(obs.MessagesReceived)
	b.obs.Add(obs.BytesReceived, uint64(payload.Len()))
	return payload, ct, nil
}

// applyDeadline projects a context deadline onto a conn deadline setter,
// clearing any previous deadline when the context has none.
func applyDeadline(ctx context.Context, set func(time.Time) error) error {
	if dl, ok := ctx.Deadline(); ok {
		return set(dl)
	}
	return set(time.Time{})
}

// Close implements core.Binding.
func (b *Binding) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.conn == nil {
		return nil
	}
	err := b.conn.Close()
	b.conn = nil
	return err
}

func writeFrame(w *bufio.Writer, payload []byte, contentType string) error {
	if err := writeHeader(w, version, contentType); err != nil {
		return err
	}
	if _, err := vls.WriteUint(w, uint64(len(payload))); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

// frameReader holds one connection's receive-side reuse state: a scratch
// buffer for the content-type field and a cache of its string form. The
// same peer sends the same content type on every frame, so steady state
// reads a frame with zero binding-side allocations beyond the pooled
// payload checkout.
type frameReader struct {
	ctScratch [maxContentTypeLen]byte
	lastCT    string
}

// readFrame reads one complete frame of either wire form, gathering a
// chunked message into a single payload; the caller owns the returned
// payload.
//
//paylint:returns owned
func (f *frameReader) readFrame(r *bufio.Reader) (*core.Payload, string, error) {
	ver, ct, err := f.readHeader(r)
	if err != nil {
		return nil, "", err
	}
	if ver == version {
		payload, err := readBuffered(r)
		return payload, ct, err
	}
	// Chunked message, buffered receiver: gather, capped at the same bound
	// a buffered frame honors.
	payload := core.NewPayload(0)
	for {
		c, last, err := readChunkFrame(r)
		if err != nil {
			payload.Release()
			return nil, "", err
		}
		if payload.Len()+c.Len() > MaxFrameSize {
			c.Release()
			payload.Release()
			return nil, "", fmt.Errorf("tcpbind: chunked message exceeds %d bytes", MaxFrameSize)
		}
		payload.Write(c.Bytes())
		c.Release()
		if last {
			return payload, ct, nil
		}
	}
}

// readHeader reads the message header through the content type and returns
// the wire version (buffered or chunked).
func (f *frameReader) readHeader(r *bufio.Reader) (byte, string, error) {
	var hdr [3]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, "", err
	}
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return 0, "", fmt.Errorf("tcpbind: bad frame magic %x", hdr[:2])
	}
	if hdr[2] != version && hdr[2] != versionChunked {
		return 0, "", fmt.Errorf("tcpbind: unsupported frame version %d", hdr[2])
	}
	ctLen, err := vls.ReadUint(r)
	if err != nil {
		return 0, "", err
	}
	// Both length prefixes are validated BEFORE any buffer is sized from
	// them; a hostile prefix can never trigger a large make().
	if ctLen > maxContentTypeLen {
		return 0, "", fmt.Errorf("tcpbind: content-type length %d too large", ctLen)
	}
	ctBytes := f.ctScratch[:ctLen]
	if _, err := io.ReadFull(r, ctBytes); err != nil {
		return 0, "", err
	}
	ct := f.lastCT
	if string(ctBytes) != ct {
		ct = string(ctBytes)
		f.lastCT = ct
	}
	return hdr[2], ct, nil
}

// readBuffered reads a version-0x01 frame body.
//
//paylint:returns owned
func readBuffered(r *bufio.Reader) (*core.Payload, error) {
	n, err := vls.ReadUint(r)
	if err != nil {
		return nil, err
	}
	if n > MaxFrameSize {
		return nil, fmt.Errorf("tcpbind: frame length %d exceeds limit", n)
	}
	// ReadPayload grows chunk-by-chunk as bytes arrive, bounding what a
	// lying-but-in-range length can allocate ahead of real data.
	return core.ReadPayload(r, int64(n), MaxFrameSize)
}

// readChunkFrame reads one version-0x03 sub-frame. The same pre-allocation
// bound applies per chunk: the declared length is validated first and the
// payload grows as bytes actually arrive.
//
//paylint:returns owned
func readChunkFrame(r *bufio.Reader) (*core.Payload, bool, error) {
	flags, err := r.ReadByte()
	if err != nil {
		return nil, false, err
	}
	if flags&^byte(chunkLast) != 0 {
		return nil, false, fmt.Errorf("tcpbind: reserved chunk flag bits %#x set", flags)
	}
	n, err := vls.ReadUint(r)
	if err != nil {
		return nil, false, err
	}
	if n > MaxFrameSize {
		return nil, false, fmt.Errorf("tcpbind: chunk length %d exceeds limit", n)
	}
	payload, err := core.ReadPayload(r, int64(n), MaxFrameSize)
	if err != nil {
		return nil, false, err
	}
	return payload, flags&chunkLast != 0, nil
}

// writeHeader writes the message header (either version) through ct.
func writeHeader(w *bufio.Writer, ver byte, contentType string) error {
	w.WriteByte(magic0)
	w.WriteByte(magic1)
	w.WriteByte(ver)
	if _, err := vls.WriteUint(w, uint64(len(contentType))); err != nil {
		return err
	}
	_, err := w.WriteString(contentType)
	return err
}

// writeChunkFrame writes one sub-frame and flushes — each chunk should hit
// the wire as soon as the producer hands it over; holding chunks back in
// the write buffer would forfeit exactly the first-byte latency the
// chunked form exists for.
func writeChunkFrame(w *bufio.Writer, payload []byte, last bool) error {
	var flags byte
	if last {
		flags = chunkLast
	}
	w.WriteByte(flags)
	if _, err := vls.WriteUint(w, uint64(len(payload))); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

// Listener is the server-side TCP binding.
type Listener struct {
	l   net.Listener
	obs *obs.Observer
}

// NewListener wraps an already-bound listener (e.g. a netsim-shaped one).
func NewListener(l net.Listener, opts ...Option) *Listener {
	o := applyOptions(opts)
	return &Listener{l: l, obs: o.obs}
}

// Listen binds an unshaped TCP listener on addr.
func Listen(addr string, opts ...Option) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, &core.TransportError{Op: "listen", Err: err}
	}
	return NewListener(l, opts...), nil
}

// Accept implements core.ServerBinding. Accept failures are classified;
// callers detect shutdown with errors.Is(err, net.ErrClosed), which
// unwraps through the classification.
func (s *Listener) Accept() (core.Channel, error) {
	c, err := s.l.Accept()
	if err != nil {
		return nil, &core.TransportError{Op: "accept", Err: err}
	}
	return &channel{
		conn: c,
		br:   bufio.NewReaderSize(c, 64<<10),
		bw:   bufio.NewWriterSize(c, 64<<10),
		obs:  s.obs,
	}, nil
}

// Addr implements core.ServerBinding.
func (s *Listener) Addr() net.Addr { return s.l.Addr() }

// Close implements core.ServerBinding.
func (s *Listener) Close() error { return s.l.Close() }

// channel serves the request/response sequence of one TCP connection.
type channel struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	fr   frameReader
	obs  *obs.Observer
	// rxDead marks the receive side desynchronized (a chunked request was
	// abandoned mid-stream). The send side still works — the server can
	// deliver a fault for the failed request — but the next receive ends
	// the channel as if the peer disconnected.
	rxDead bool
}

// ReceiveRequest implements core.Channel. Ownership of the returned payload
// transfers to the caller.
//
//paylint:returns owned
func (c *channel) ReceiveRequest(_ context.Context) (*core.Payload, string, error) {
	if c.rxDead {
		return nil, "", io.EOF
	}
	payload, ct, err := c.fr.readFrame(c.br)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			// A disconnect between (or mid-) frames ends the channel; the
			// server loop matches io.EOF by identity, so it stays verbatim.
			return nil, "", io.EOF
		}
		return nil, "", &core.TransportError{Op: "receive request", Err: err}
	}
	c.obs.Inc(obs.MessagesReceived)
	c.obs.Add(obs.BytesReceived, uint64(payload.Len()))
	return payload, ct, nil
}

// SendResponse implements core.Channel. It takes ownership of payload and
// releases it once the frame is written, whether or not the write succeeds.
//
//paylint:transfers
func (c *channel) SendResponse(payload *core.Payload, contentType string) error {
	n := payload.Len()
	err := writeFrame(c.bw, payload.Bytes(), contentType)
	payload.Release()
	if err != nil {
		return &core.TransportError{Op: "send response", Err: err}
	}
	c.obs.Inc(obs.MessagesSent)
	c.obs.Add(obs.BytesSent, uint64(n))
	return nil
}

// Close implements core.Channel.
func (c *channel) Close() error { return c.conn.Close() }
