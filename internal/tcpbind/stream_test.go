package tcpbind

import (
	"context"
	"testing"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/core"
)

// bigArrayEnvelope builds a request whose body is a packed int32 array
// large enough to span many chunks at small windows.
func bigArrayEnvelope(n int) (*core.Envelope, bxdm.Node) {
	items := make([]int32, n)
	for i := range items {
		items[i] = int32(i * 3)
	}
	el := bxdm.NewArray(bxdm.QName{Local: "a"}, items)
	return core.NewEnvelope(el), el
}

// echoServer starts a streamed-or-buffered echo server over real TCP and
// returns its address plus a closer.
func echoServer(t *testing.T, opts ...core.ServerOption) (string, func()) {
	t.Helper()
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := core.NewServer(core.BXSAEncoding{}, l,
		func(_ context.Context, req *core.Envelope) (*core.Envelope, error) {
			return core.NewEnvelope(req.Body()), nil
		}, opts...)
	go srv.Serve()
	return l.Addr().String(), func() { srv.Close() }
}

func callOnce(t *testing.T, addr string, opts ...core.EngineOption) {
	t.Helper()
	eng := core.NewEngine(core.BXSAEncoding{}, New(NetDialer, addr), opts...)
	defer eng.Close()
	req, want := bigArrayEnvelope(200_000) // ~800 KiB of array data
	for i := 0; i < 2; i++ {               // second call checks stream framing resyncs
		resp, err := eng.Call(context.Background(), req)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if !bxdm.Equal(resp.Body(), want) {
			t.Fatalf("call %d: echoed body differs", i)
		}
	}
}

// TestStreamedExchange runs the full fallback matrix for one (encoding,
// transport) cell: both sides streaming, and each side streaming alone
// against a buffered peer. Every combination must round-trip the same tree.
func TestStreamedExchange(t *testing.T) {
	stream := core.WithStreaming(32 << 10)
	cases := []struct {
		name    string
		srvOpts []core.ServerOption
		engOpts []core.EngineOption
	}{
		{"both streamed", []core.ServerOption{stream}, []core.EngineOption{stream}},
		{"client streamed, server buffered", nil, []core.EngineOption{stream}},
		{"client buffered, server streamed", []core.ServerOption{stream}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr, stop := echoServer(t, tc.srvOpts...)
			defer stop()
			callOnce(t, addr, tc.engOpts...)
		})
	}
}

// TestStreamedFaultAfterBadRequest checks the decode-failure path: a
// request the server cannot decode draws a fault (sent on the still-usable
// response side), and the channel then ends instead of desynchronizing.
func TestStreamedFaultAfterBadRequest(t *testing.T) {
	addr, stop := echoServer(t, core.WithStreaming(16<<10))
	defer stop()

	b := New(NetDialer, addr)
	defer b.Close()
	sink, err := b.SendRequestStream(context.Background(), "application/x-bxsa")
	if err != nil {
		t.Fatal(err)
	}
	junk := core.NewPayloadFrom([]byte("this is not a bxsa frame"))
	if err := sink.WriteChunk(junk, true); err != nil {
		t.Fatal(err)
	}
	src, _, err := b.ReceiveResponseStream(context.Background())
	if err != nil {
		t.Fatalf("no response to bad request: %v", err)
	}
	p, err := core.GatherChunks(src)
	if err != nil {
		t.Fatalf("gather fault: %v", err)
	}
	env, err := core.NewCodec(core.BXSAEncoding{}).DecodePayload(p)
	p.Release()
	if err != nil {
		t.Fatalf("decode fault: %v", err)
	}
	if f := core.FaultFromEnvelope(env); f == nil {
		t.Fatal("bad request did not draw a fault")
	}
}
