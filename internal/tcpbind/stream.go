package tcpbind

import (
	"context"
	"errors"
	"fmt"
	"io"

	"bxsoap/internal/core"
	"bxsoap/internal/obs"
)

// Chunked transfer (wire version 0x03, see the package doc): one message
// flows as a sequence of flagged sub-frames, each flushed as it is handed
// over, so the first chunk reaches the peer while later chunks are still
// being encoded. The binding's one-exchange-at-a-time contract is
// unchanged — a chunked exchange is still one exchange; the sink and
// source take b.mu per operation, so the lock is never held across the
// producer's or consumer's own work.
//
// Failure handling follows the buffered path's discipline: any mid-stream
// failure or abort leaves the stream position unknown, so the client
// binding poisons itself and the server channel marks its receive side
// dead (the response side stays usable for exactly one fault).

// SendRequestStream implements core.StreamBinding. The returned sink
// writes each chunk as a sub-frame and flushes it; the caller must finish
// with a last chunk or Abort.
func (b *Binding) SendRequestStream(ctx context.Context, contentType string) (core.ChunkSink, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned {
		return nil, fmt.Errorf("tcpbind: %w", core.ErrBindingPoisoned)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := b.ensure(); err != nil {
		return nil, err
	}
	if err := applyDeadline(ctx, b.conn.SetWriteDeadline); err != nil {
		return nil, b.poison("set write deadline", err)
	}
	if err := writeHeader(b.bw, versionChunked, contentType); err != nil {
		return nil, b.poison("write chunked header", err)
	}
	return &clientSink{b: b}, nil
}

type clientSink struct{ b *Binding }

//paylint:transfers
func (s *clientSink) WriteChunk(p *core.Payload, last bool) error {
	b := s.b
	b.mu.Lock()
	defer b.mu.Unlock()
	defer p.Release()
	if b.poisoned {
		return fmt.Errorf("tcpbind: %w", core.ErrBindingPoisoned)
	}
	if err := writeChunkFrame(b.bw, p.Bytes(), last); err != nil {
		return b.poison("write chunk", err)
	}
	b.obs.Add(obs.BytesSent, uint64(p.Len()))
	if last {
		b.obs.Inc(obs.MessagesSent)
	}
	return nil
}

func (s *clientSink) Abort() {
	b := s.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.poisoned {
		b.poison("abort chunked request", errors.New("stream aborted"))
	}
}

// ReceiveResponseStream implements core.StreamBinding. A buffered
// (version 0x01) response surfaces as a one-chunk source, so a streaming
// client interoperates with a buffered server.
func (b *Binding) ReceiveResponseStream(ctx context.Context) (core.ChunkSource, string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned {
		return nil, "", fmt.Errorf("tcpbind: %w", core.ErrBindingPoisoned)
	}
	if b.conn == nil {
		if err := ctx.Err(); err != nil {
			return nil, "", err
		}
		return nil, "", errors.New("tcpbind: no request in flight")
	}
	if err := ctx.Err(); err != nil {
		return nil, "", b.poison("abandon response", err)
	}
	if err := applyDeadline(ctx, b.conn.SetReadDeadline); err != nil {
		return nil, "", b.poison("set read deadline", err)
	}
	ver, ct, err := b.fr.readHeader(b.br)
	if err != nil {
		return nil, "", b.poison("read response header", err)
	}
	if ver == version {
		payload, err := readBuffered(b.br)
		if err != nil {
			return nil, "", b.poison("read response", err)
		}
		b.obs.Inc(obs.MessagesReceived)
		b.obs.Add(obs.BytesReceived, uint64(payload.Len()))
		return core.OneChunkSource(payload), ct, nil
	}
	return &clientSource{b: b}, ct, nil
}

type clientSource struct{ b *Binding }

//paylint:returns owned
func (s *clientSource) ReadChunk() (*core.Payload, bool, error) {
	b := s.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned {
		return nil, false, fmt.Errorf("tcpbind: %w", core.ErrBindingPoisoned)
	}
	p, last, err := readChunkFrame(b.br)
	if err != nil {
		return nil, false, b.poison("read chunk", err)
	}
	b.obs.Add(obs.BytesReceived, uint64(p.Len()))
	if last {
		b.obs.Inc(obs.MessagesReceived)
	}
	return p, last, nil
}

func (s *clientSource) Abort() {
	b := s.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.poisoned {
		b.poison("abort chunked response", errors.New("stream aborted"))
	}
}

// ReceiveRequestStream implements core.StreamChannel. A buffered request
// surfaces as a one-chunk source.
func (c *channel) ReceiveRequestStream(_ context.Context) (core.ChunkSource, string, error) {
	if c.rxDead {
		return nil, "", io.EOF
	}
	ver, ct, err := c.fr.readHeader(c.br)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, "", io.EOF
		}
		return nil, "", &core.TransportError{Op: "receive request", Err: err}
	}
	if ver == version {
		payload, err := readBuffered(c.br)
		if err != nil {
			return nil, "", &core.TransportError{Op: "receive request", Err: err}
		}
		c.obs.Inc(obs.MessagesReceived)
		c.obs.Add(obs.BytesReceived, uint64(payload.Len()))
		return core.OneChunkSource(payload), ct, nil
	}
	return &srvSource{c: c}, ct, nil
}

type srvSource struct{ c *channel }

//paylint:returns owned
func (s *srvSource) ReadChunk() (*core.Payload, bool, error) {
	c := s.c
	if c.rxDead {
		return nil, false, io.EOF
	}
	p, last, err := readChunkFrame(c.br)
	if err != nil {
		c.rxDead = true
		return nil, false, &core.TransportError{Op: "receive chunk", Err: err}
	}
	c.obs.Add(obs.BytesReceived, uint64(p.Len()))
	if last {
		c.obs.Inc(obs.MessagesReceived)
	}
	return p, last, nil
}

// Abort marks the receive side desynchronized without closing the
// connection: the server still sends one buffered fault for the failed
// request, and the channel ends at the next receive.
func (s *srvSource) Abort() { s.c.rxDead = true }

// SendResponseStream implements core.StreamChannel.
func (c *channel) SendResponseStream(contentType string) (core.ChunkSink, error) {
	if err := writeHeader(c.bw, versionChunked, contentType); err != nil {
		return nil, &core.TransportError{Op: "send response header", Err: err}
	}
	return &srvSink{c: c}, nil
}

type srvSink struct{ c *channel }

//paylint:transfers
func (s *srvSink) WriteChunk(p *core.Payload, last bool) error {
	c := s.c
	defer p.Release()
	if err := writeChunkFrame(c.bw, p.Bytes(), last); err != nil {
		return &core.TransportError{Op: "send chunk", Err: err}
	}
	c.obs.Add(obs.BytesSent, uint64(p.Len()))
	if last {
		c.obs.Inc(obs.MessagesSent)
	}
	return nil
}

// Abort tears the connection down: a half-written response cannot be
// completed or followed by anything parseable.
func (s *srvSink) Abort() {
	s.c.rxDead = true
	s.c.conn.Close()
}

var (
	_ core.StreamBinding = (*Binding)(nil)
	_ core.StreamChannel = (*channel)(nil)
)
