package tcpbind

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"bxsoap/internal/core"
	"bxsoap/internal/vls"
)

// scriptedServer accepts one connection, reads (and discards) the client's
// request frame bytes as they arrive, and answers with a fixed byte script.
// closeAfter makes it close the connection right after the script, so
// truncation tests terminate instead of hanging.
func scriptedServer(t *testing.T, script []byte, closeAfter bool) net.Addr {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		// Drain whatever the client sends in the background.
		go func() {
			buf := make([]byte, 4096)
			for {
				if _, err := c.Read(buf); err != nil {
					return
				}
			}
		}()
		c.Write(script)
		if closeAfter {
			time.Sleep(20 * time.Millisecond) // let the bytes land first
			c.Close()
		}
	}()
	return l.Addr()
}

// frameHeader builds "BX" + version + vls(ctLen) + ct.
func frameHeader(version byte, ct string) []byte {
	out := []byte{magic0, magic1, version}
	out = vls.AppendUint(out, uint64(len(ct)))
	return append(out, ct...)
}

// exchange sends one request and attempts to receive, returning the
// receive error.
func exchange(t *testing.T, b *Binding, ctx context.Context) error {
	t.Helper()
	if err := b.SendRequest(ctx, core.NewPayloadFrom([]byte("payload")), "application/x-bxsa"); err != nil {
		t.Fatalf("SendRequest: %v", err)
	}
	_, _, err := b.ReceiveResponse(ctx)
	if err == nil {
		t.Fatal("ReceiveResponse succeeded on a malformed frame")
	}
	return err
}

// assertPoisoned verifies the binding reports itself dead and refuses the
// next exchange with the typed error.
func assertPoisoned(t *testing.T, b *Binding, recvErr error) {
	t.Helper()
	if !errors.Is(recvErr, core.ErrBindingPoisoned) {
		t.Errorf("receive error %v does not wrap ErrBindingPoisoned", recvErr)
	}
	if !b.Poisoned() {
		t.Error("binding not marked poisoned")
	}
	err := b.SendRequest(context.Background(), core.NewPayloadFrom([]byte("again")), "application/x-bxsa")
	if !errors.Is(err, core.ErrBindingPoisoned) {
		t.Errorf("poisoned binding accepted another request: %v", err)
	}
	if !core.IsTransportError(err) {
		t.Error("poisoned-binding error not classified as transport")
	}
}

func TestPoisonOnBadMagic(t *testing.T) {
	addr := scriptedServer(t, []byte("ZZ\x01junkjunkjunk"), false)
	b := New(NetDialer, addr.String())
	defer b.Close()
	err := exchange(t, b, context.Background())
	assertPoisoned(t, b, err)
}

func TestPoisonOnBadVersion(t *testing.T) {
	script := frameHeader(0x7f, "application/x-bxsa")
	addr := scriptedServer(t, script, false)
	b := New(NetDialer, addr.String())
	defer b.Close()
	err := exchange(t, b, context.Background())
	assertPoisoned(t, b, err)
}

func TestPoisonOnOversizedFrame(t *testing.T) {
	script := frameHeader(version, "application/x-bxsa")
	script = vls.AppendUint(script, uint64(MaxFrameSize)+1)
	addr := scriptedServer(t, script, false)
	b := New(NetDialer, addr.String())
	defer b.Close()
	err := exchange(t, b, context.Background())
	assertPoisoned(t, b, err)
}

func TestPoisonOnTruncatedVLSLength(t *testing.T) {
	script := frameHeader(version, "application/x-bxsa")
	// First byte of a multi-byte VLS payload length (continuation bit set),
	// then the peer hangs up: the reader must error out, not hang.
	script = append(script, 0x80|0x05)
	addr := scriptedServer(t, script, true)
	b := New(NetDialer, addr.String())
	defer b.Close()
	err := exchange(t, b, context.Background())
	assertPoisoned(t, b, err)
}

func TestPoisonOnDeadlineMidFrame(t *testing.T) {
	// A valid header and a promised 1 MB payload that never arrives: the
	// context deadline expires mid-frame, which must poison the binding —
	// the stream position is unknowable afterwards.
	script := frameHeader(version, "application/x-bxsa")
	script = vls.AppendUint(script, 1<<20)
	script = append(script, []byte("only a little")...)
	addr := scriptedServer(t, script, false)
	b := New(NetDialer, addr.String())
	defer b.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	err := exchange(t, b, ctx)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("want timeout error, got %v", err)
	}
	assertPoisoned(t, b, err)
}

// TestHealthyAfterCleanExchange guards the opposite direction: a normal
// round trip leaves the binding unpoisoned and reusable (regression check
// that poisoning is not over-eager).
func TestHealthyAfterCleanExchange(t *testing.T) {
	reply := frameHeader(version, "application/x-bxsa")
	reply = vls.AppendUint(reply, 2)
	reply = append(reply, "ok"...)
	addr := scriptedServer(t, reply, false)
	b := New(NetDialer, addr.String())
	defer b.Close()
	if err := b.SendRequest(context.Background(), core.NewPayloadFrom([]byte("payload")), "application/x-bxsa"); err != nil {
		t.Fatal(err)
	}
	payload, ct, err := b.ReceiveResponse(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer payload.Release()
	if string(payload.Bytes()) != "ok" || ct != "application/x-bxsa" {
		t.Errorf("got payload %q ct %q", payload.Bytes(), ct)
	}
	if b.Poisoned() {
		t.Error("clean exchange poisoned the binding")
	}
}

// TestHostileLengthBoundsAllocation is the regression test for the
// pre-allocation length check: a frame header may advertise any payload
// length up to MaxFrameSize, but the reader must grow its buffer only as
// bytes actually arrive. A hostile peer promising ~1 GB and sending almost
// nothing must cost at most a chunk or two of memory, not the advertised
// size.
func TestHostileLengthBoundsAllocation(t *testing.T) {
	script := frameHeader(version, "application/x-bxsa")
	script = vls.AppendUint(script, uint64(MaxFrameSize)-1)
	script = append(script, "only a few bytes"...)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var fr frameReader
	payload, _, err := fr.readFrame(bufio.NewReader(bytes.NewReader(script)))
	runtime.ReadMemStats(&after)
	if err == nil {
		payload.Release()
		t.Fatal("truncated hostile frame accepted")
	}
	if got := after.TotalAlloc - before.TotalAlloc; got > 8<<20 {
		t.Errorf("hostile length prefix drove %d bytes of allocation, want chunked growth only", got)
	}
}

// TestRejectsExtendedHeaderBeforeAllocation audits the v1 reader against
// the muxbind extended header (version 0x02, then a frame-type byte and a
// stream ID ahead of the length fields). A v2 frame reaching a v1 endpoint
// must be rejected at the version byte — before any of the extended
// header's varints could be misread as a length and sized into a buffer.
// The hostile bytes after the version byte here would, if misparsed as a
// v1 ctLen/len pair, claim ~1 GB.
func TestRejectsExtendedHeaderBeforeAllocation(t *testing.T) {
	script := []byte{magic0, magic1, 0x02, 0x00} // v2 magic + DATA type byte
	script = vls.AppendUint(script, uint64(MaxFrameSize)-1)
	script = vls.AppendUint(script, uint64(MaxFrameSize)-1)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var fr frameReader
	payload, _, err := fr.readFrame(bufio.NewReader(bytes.NewReader(script)))
	runtime.ReadMemStats(&after)
	if err == nil {
		payload.Release()
		t.Fatal("extended-header frame accepted by v1 reader")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("version")) {
		t.Errorf("rejection error %q should fire on the version byte, before the length fields", err)
	}
	if got := after.TotalAlloc - before.TotalAlloc; got > 1<<20 {
		t.Errorf("extended header drove %d bytes of allocation before rejection", got)
	}
}

// TestHostileContentTypeLengthBounded: the content-type length prefix is
// validated against its bound before the scratch slice is taken, for both
// an absurd value and the first out-of-range one.
func TestHostileContentTypeLengthBounded(t *testing.T) {
	for _, ctLen := range []uint64{maxContentTypeLen + 1, 1 << 40} {
		script := []byte{magic0, magic1, version}
		script = vls.AppendUint(script, ctLen)
		var fr frameReader
		payload, _, err := fr.readFrame(bufio.NewReader(bytes.NewReader(script)))
		if err == nil {
			payload.Release()
			t.Fatalf("content-type length %d accepted", ctLen)
		}
	}
}
