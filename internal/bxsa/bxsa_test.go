package bxsa

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/xbs"
)

func testTree() *bxdm.Document {
	root := bxdm.NewElement(bxdm.PName("urn:app", "a", "data"))
	root.DeclareNamespace("a", "urn:app")
	root.DeclareNamespace("m", "urn:meta")
	root.SetAttr(bxdm.LocalName("version"), bxdm.Int32Value(2))
	root.SetAttr(bxdm.Name("urn:meta", "source"), bxdm.StringValue("sim"))
	root.Append(
		bxdm.NewLeaf(bxdm.Name("urn:app", "count"), int32(-42)),
		bxdm.NewLeaf(bxdm.Name("urn:app", "mean"), 2.718281828459045),
		bxdm.NewLeaf(bxdm.Name("urn:app", "ok"), true),
		bxdm.NewLeaf(bxdm.Name("urn:app", "tag"), "hello"),
		bxdm.NewArray(bxdm.Name("urn:app", "index"), []int32{1, 2, 3, 4, 5}),
		bxdm.NewArray(bxdm.Name("urn:app", "vals"), []float64{0.5, -1.25, math.Pi}),
		bxdm.NewElement(bxdm.Name("urn:app", "meta"),
			bxdm.NewText("free text"),
			&bxdm.Comment{Data: "a comment"},
			&bxdm.PI{Target: "proc", Data: "inst"},
			bxdm.NewElement(bxdm.Name("urn:meta", "nested"),
				bxdm.NewLeaf(bxdm.Name("urn:meta", "deep"), uint16(99)),
			),
		),
	)
	return bxdm.NewDocument(root)
}

func roundTrip(t *testing.T, n bxdm.Node, opts EncodeOptions) bxdm.Node {
	t.Helper()
	data, err := Marshal(n, opts)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !bxdm.Equal(n, back) {
		t.Fatalf("round trip mismatch")
	}
	return back
}

func TestRoundTripBothOrders(t *testing.T) {
	roundTrip(t, testTree(), EncodeOptions{Order: xbs.LittleEndian})
	roundTrip(t, testTree(), EncodeOptions{Order: xbs.BigEndian})
}

func TestEncodedSizeMatchesMarshal(t *testing.T) {
	for _, n := range []bxdm.Node{
		testTree(),
		bxdm.NewElement(bxdm.LocalName("empty")),
		bxdm.NewLeaf(bxdm.LocalName("v"), 3.14),
		bxdm.NewArray(bxdm.LocalName("a"), make([]float64, 1000)),
		&bxdm.Text{Data: "plain"},
	} {
		size, err := EncodedSize(n, EncodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		data, err := Marshal(n, EncodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if size != len(data) {
			t.Errorf("EncodedSize = %d, Marshal produced %d bytes", size, len(data))
		}
	}
}

func TestArrayAlignment(t *testing.T) {
	// Wherever the array lands in the document, its packed float64 data must
	// start at a document-absolute multiple of 8.
	for pad := 0; pad < 9; pad++ {
		root := bxdm.NewElement(bxdm.LocalName("r"))
		// Vary the preceding content length to shift the array's offset.
		root.Append(bxdm.NewText(string(make([]byte, pad+1))))
		root.Append(bxdm.NewArray(bxdm.LocalName("a"), []float64{1.5, 2.5}))
		data, err := Marshal(root, EncodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Find the payload: scan for the 16-byte little-endian rendering.
		var want [16]byte
		putF64 := func(b []byte, f float64) {
			bits := math.Float64bits(f)
			for i := 0; i < 8; i++ {
				b[i] = byte(bits >> (8 * i))
			}
		}
		putF64(want[:8], 1.5)
		putF64(want[8:], 2.5)
		idx := bytes.Index(data, want[:])
		if idx < 0 {
			t.Fatalf("pad %d: packed data not found", pad)
		}
		if idx%8 != 0 {
			t.Errorf("pad %d: packed float64 data at offset %d, not 8-aligned", pad, idx)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatalf("pad %d: %v", pad, err)
		}
		if !bxdm.Equal(root, back) {
			t.Errorf("pad %d: round trip mismatch", pad)
		}
	}
}

func TestEncodingOverheadSmall(t *testing.T) {
	// The BXSA overhead over native must stay small for the paper's workload
	// shape (Table 1 reports 1.3% at model size 1000).
	n := 1000
	idx := make([]int32, n)
	vals := make([]float64, n)
	for i := range idx {
		idx[i] = int32(i)
		vals[i] = float64(i) * 1.5
	}
	root := bxdm.NewElement(bxdm.LocalName("d"),
		bxdm.NewArray(bxdm.LocalName("i"), idx),
		bxdm.NewArray(bxdm.LocalName("v"), vals),
	)
	data, err := Marshal(bxdm.NewDocument(root), EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	native := n * (4 + 8)
	overhead := float64(len(data)-native) / float64(native)
	if overhead > 0.02 {
		t.Errorf("BXSA overhead = %.2f%% (%d bytes over %d native), want < 2%%",
			overhead*100, len(data)-native, native)
	}
}

func TestAllScalarTypesRoundTrip(t *testing.T) {
	root := bxdm.NewElement(bxdm.LocalName("r"),
		bxdm.NewLeaf(bxdm.LocalName("i8"), int8(-8)),
		bxdm.NewLeaf(bxdm.LocalName("i16"), int16(-1600)),
		bxdm.NewLeaf(bxdm.LocalName("i32"), int32(-1<<30)),
		bxdm.NewLeaf(bxdm.LocalName("i64"), int64(-1<<60)),
		bxdm.NewLeaf(bxdm.LocalName("u8"), uint8(200)),
		bxdm.NewLeaf(bxdm.LocalName("u16"), uint16(60000)),
		bxdm.NewLeaf(bxdm.LocalName("u32"), uint32(1<<31)),
		bxdm.NewLeaf(bxdm.LocalName("u64"), uint64(1<<63)),
		bxdm.NewLeaf(bxdm.LocalName("f32"), float32(-0.5)),
		bxdm.NewLeaf(bxdm.LocalName("f64"), math.SmallestNonzeroFloat64),
		bxdm.NewLeaf(bxdm.LocalName("bt"), true),
		bxdm.NewLeaf(bxdm.LocalName("bf"), false),
		bxdm.NewLeaf(bxdm.LocalName("s"), "string value with ünïcode"),
	)
	for _, order := range []xbs.ByteOrder{xbs.LittleEndian, xbs.BigEndian} {
		roundTrip(t, root, EncodeOptions{Order: order})
	}
}

func TestAllArrayTypesRoundTrip(t *testing.T) {
	root := bxdm.NewElement(bxdm.LocalName("r"),
		bxdm.NewArray(bxdm.LocalName("a1"), []int8{-1, 2}),
		bxdm.NewArray(bxdm.LocalName("a2"), []int16{3, -4}),
		bxdm.NewArray(bxdm.LocalName("a3"), []int32{5}),
		bxdm.NewArray(bxdm.LocalName("a4"), []int64{-6, 7, 8}),
		bxdm.NewArray(bxdm.LocalName("a5"), []uint8{9, 10}),
		bxdm.NewArray(bxdm.LocalName("a6"), []uint16{11}),
		bxdm.NewArray(bxdm.LocalName("a7"), []uint32{12, 13}),
		bxdm.NewArray(bxdm.LocalName("a8"), []uint64{14}),
		bxdm.NewArray(bxdm.LocalName("a9"), []float32{1.5, -2.5}),
		bxdm.NewArray(bxdm.LocalName("a10"), []float64{math.Inf(1), -0.0}),
		bxdm.NewArray(bxdm.LocalName("a11"), []float64{}),
	)
	for _, order := range []xbs.ByteOrder{xbs.LittleEndian, xbs.BigEndian} {
		roundTrip(t, root, EncodeOptions{Order: order})
	}
}

func TestNamespaceTokenization(t *testing.T) {
	// The namespace URI string must appear exactly once in the encoding even
	// when referenced by many nested elements — that is the point of the
	// tokenized (depth, index) references.
	uri := "urn:exactly-once-namespace"
	inner := bxdm.NewLeaf(bxdm.Name(uri, "leaf"), int32(1))
	mid := bxdm.NewElement(bxdm.Name(uri, "mid"), inner)
	root := bxdm.NewElement(bxdm.Name(uri, "root"), mid)
	root.DeclareNamespace("p", uri)
	data, err := Marshal(root, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(data, []byte(uri)); got != 1 {
		t.Errorf("namespace URI appears %d times, want 1", got)
	}
	roundTrip(t, root, EncodeOptions{})
}

func TestAutoDeclaredNamespace(t *testing.T) {
	// Element in a namespace with no declaration anywhere: encoder must
	// synthesize one.
	root := bxdm.NewElement(bxdm.Name("urn:auto", "r"),
		bxdm.NewLeaf(bxdm.Name("urn:other", "l"), int32(5)),
	)
	data, err := Marshal(root, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	be := back.(*bxdm.Element)
	if be.Name.Space != "urn:auto" {
		t.Errorf("root namespace lost: %v", be.Name)
	}
	if be.ChildElements()[0].ElemName().Space != "urn:other" {
		t.Errorf("leaf namespace lost")
	}
}

func TestMixedByteOrderDocuments(t *testing.T) {
	// A BE-encoded element embedded in an LE document must decode: byte
	// order is per frame (the paper's rationale for the per-frame BO bits).
	leBytes, err := Marshal(bxdm.NewLeaf(bxdm.LocalName("v"), 1.5), EncodeOptions{Order: xbs.LittleEndian})
	if err != nil {
		t.Fatal(err)
	}
	beBytes, err := Marshal(bxdm.NewLeaf(bxdm.LocalName("v"), 1.5), EncodeOptions{Order: xbs.BigEndian})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(leBytes, beBytes) {
		t.Fatal("LE and BE encodings identical — byte order not applied")
	}
	for _, data := range [][]byte{leBytes, beBytes} {
		n, err := Parse(data)
		if err != nil {
			t.Fatal(err)
		}
		if n.(*bxdm.LeafElement).Value.Float64() != 1.5 {
			t.Error("value corrupted")
		}
	}
}

func TestDecoderRejectsMalformed(t *testing.T) {
	good, err := Marshal(testTree(), EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every length must fail, never panic.
	for i := 0; i < len(good)-1; i++ {
		if _, err := Parse(good[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	// Trailing garbage.
	if _, err := Parse(append(append([]byte{}, good...), 0xff)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Empty input.
	if _, err := Parse(nil); err == nil {
		t.Error("empty input accepted")
	}
	// Unknown frame type.
	bad := append([]byte{}, good...)
	bad[0] = prefixByte(xbs.LittleEndian, FrameType(0x3f))
	if _, err := Parse(bad); err == nil {
		t.Error("unknown frame type accepted")
	}
}

func TestDecoderFuzzResilience(t *testing.T) {
	good, err := Marshal(testTree(), EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Flip each byte; decoder must either succeed or error — never panic,
	// never hang.
	for i := range good {
		mut := append([]byte{}, good...)
		mut[i] ^= 0x5a
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic with byte %d flipped: %v", i, r)
				}
			}()
			_, _ = Parse(mut)
		}()
	}
}

func TestParseDocumentTypeCheck(t *testing.T) {
	data, err := Marshal(bxdm.NewLeaf(bxdm.LocalName("v"), int32(1)), EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseDocument(data); err == nil {
		t.Error("ParseDocument accepted a leaf frame")
	}
	docData, err := Marshal(testTree(), EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseDocument(docData); err != nil {
		t.Errorf("ParseDocument rejected document: %v", err)
	}
}

func TestDecodeReader(t *testing.T) {
	data, err := Marshal(testTree(), EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bxdm.Equal(testTree(), n) {
		t.Error("Decode mismatch")
	}
}

func TestScannerTopLevel(t *testing.T) {
	data, err := Marshal(testTree(), EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := CountFrames(data)
	if err != nil || n != 1 {
		t.Fatalf("CountFrames = %d, %v; want 1", n, err)
	}
	sc := NewScanner(data)
	if !sc.Next() || sc.Type() != FrameDocument {
		t.Fatalf("first frame = %v", sc.Type())
	}
	if sc.FrameSize() != len(data) {
		t.Errorf("FrameSize = %d, want %d", sc.FrameSize(), len(data))
	}
}

func TestScannerDescend(t *testing.T) {
	data, err := Marshal(testTree(), EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScanner(data)
	if !sc.Next() {
		t.Fatal(sc.Err())
	}
	docLevel, err := sc.Descend()
	if err != nil {
		t.Fatal(err)
	}
	if !docLevel.Next() || docLevel.Type() != FrameElement {
		t.Fatalf("document child = %v, %v", docLevel.Type(), docLevel.Err())
	}
	rootLevel, err := docLevel.Descend()
	if err != nil {
		t.Fatal(err)
	}
	var types []FrameType
	for rootLevel.Next() {
		types = append(types, rootLevel.Type())
	}
	if err := rootLevel.Err(); err != nil {
		t.Fatal(err)
	}
	want := []FrameType{FrameLeaf, FrameLeaf, FrameLeaf, FrameLeaf, FrameArray, FrameArray, FrameElement}
	if len(types) != len(want) {
		t.Fatalf("child frames = %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("child frames = %v, want %v", types, want)
		}
	}
}

func TestScannerCannotDescendLeaf(t *testing.T) {
	data, err := Marshal(bxdm.NewLeaf(bxdm.LocalName("v"), int32(1)), EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScanner(data)
	if !sc.Next() {
		t.Fatal(sc.Err())
	}
	if _, err := sc.Descend(); err == nil {
		t.Error("descended into a leaf frame")
	}
}

// transcodeTree is testTree with string attribute values: xsi:type hints
// exist only for element content, so numeric attribute values degrade to
// strings across an XML hop (documented deviation, alongside the paper's own
// float-precision caveat in §4.2).
func transcodeTree() *bxdm.Document {
	doc := testTree()
	root := doc.Root().(*bxdm.Element)
	root.SetAttr(bxdm.LocalName("version"), bxdm.StringValue("2"))
	return doc
}

func TestTranscodeBXSAToXMLAndBack(t *testing.T) {
	doc := transcodeTree()
	data, err := Marshal(doc, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	xml, err := ToXML(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := FromXML(xml, EncodeOptions{})
	if err != nil {
		t.Fatalf("FromXML: %v\nXML: %s", err, xml)
	}
	back, err := Parse(data2)
	if err != nil {
		t.Fatal(err)
	}
	if !bxdm.Equal(doc, back) {
		t.Errorf("BXSA→XML→BXSA changed the model\nXML: %s", xml)
	}
}

func TestRoundTripsWithXMLHelper(t *testing.T) {
	ok, err := RoundTripsWithXML(transcodeTree())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("transcodeTree does not transcode")
	}
}

func TestNumericAttributeDegradesAcrossXML(t *testing.T) {
	// Typed attribute values have no XML type-hint channel; they come back
	// as strings with the same lexical form. Assert the documented behaviour.
	e := bxdm.NewElement(bxdm.LocalName("e"))
	e.SetAttr(bxdm.LocalName("n"), bxdm.Int32Value(7))
	ok, err := RoundTripsWithXML(e)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("numeric attributes unexpectedly survive XML transcoding typed; update the docs")
	}
	data, err := Marshal(e, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	xml, err := ToXML(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := FromXML(xml, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data2)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := back.(*bxdm.Document).Root().Attr(bxdm.LocalName("n"))
	if v.Type() != bxdm.TString || v.Text() != "7" {
		t.Errorf("attribute after transcode = %v %q", v.Type(), v.Text())
	}
}

func TestPropertyLeafRoundTrip(t *testing.T) {
	f := func(i32 int32, f64 float64, s string, b bool) bool {
		if math.IsNaN(f64) {
			f64 = 0
		}
		root := bxdm.NewElement(bxdm.LocalName("r"),
			bxdm.NewLeaf(bxdm.LocalName("a"), i32),
			bxdm.NewLeaf(bxdm.LocalName("b"), f64),
			bxdm.NewLeaf(bxdm.LocalName("c"), s),
			bxdm.NewLeaf(bxdm.LocalName("d"), b),
		)
		data, err := Marshal(root, EncodeOptions{})
		if err != nil {
			return false
		}
		back, err := Parse(data)
		if err != nil {
			return false
		}
		return bxdm.Equal(root, back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyArrayRoundTrip(t *testing.T) {
	f := func(idx []int32, vals []float64) bool {
		root := bxdm.NewElement(bxdm.LocalName("r"),
			bxdm.NewArray(bxdm.LocalName("i"), idx),
			bxdm.NewArray(bxdm.LocalName("v"), vals),
		)
		data, err := Marshal(root, EncodeOptions{Order: xbs.BigEndian})
		if err != nil {
			return false
		}
		back, err := Parse(data)
		if err != nil {
			return false
		}
		return bxdm.Equal(root, back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeepNesting(t *testing.T) {
	var n bxdm.Node = bxdm.NewLeaf(bxdm.Name("urn:deep", "bottom"), int32(7))
	for i := 0; i < 200; i++ {
		e := bxdm.NewElement(bxdm.Name("urn:deep", "level"), n)
		if i%10 == 0 {
			e.DeclareNamespace("d", "urn:deep")
		}
		n = e
	}
	outer := n.(*bxdm.Element)
	outer.DeclareNamespace("d", "urn:deep")
	roundTrip(t, outer, EncodeOptions{})
}

func BenchmarkMarshalArray1000(b *testing.B) {
	vals := make([]float64, 1000)
	idx := make([]int32, 1000)
	root := bxdm.NewElement(bxdm.LocalName("d"),
		bxdm.NewArray(bxdm.LocalName("i"), idx),
		bxdm.NewArray(bxdm.LocalName("v"), vals),
	)
	b.ReportAllocs()
	b.SetBytes(12000)
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(root, EncodeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseArray1000(b *testing.B) {
	vals := make([]float64, 1000)
	idx := make([]int32, 1000)
	root := bxdm.NewElement(bxdm.LocalName("d"),
		bxdm.NewArray(bxdm.LocalName("i"), idx),
		bxdm.NewArray(bxdm.LocalName("v"), vals),
	)
	data, err := Marshal(root, EncodeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := Parse(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSkipScanVsFullParse(b *testing.B) {
	// The §4.1 claim: skipping frames via Size beats parsing them.
	root := bxdm.NewElement(bxdm.LocalName("d"))
	for i := 0; i < 100; i++ {
		root.Append(bxdm.NewArray(bxdm.LocalName("v"), make([]float64, 100)))
	}
	data, err := Marshal(root, EncodeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("skip-scan", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			sc := NewScanner(data)
			if !sc.Next() {
				b.Fatal(sc.Err())
			}
			inner, err := sc.Descend()
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for inner.Next() {
				n++
			}
			if n != 100 || inner.Err() != nil {
				b.Fatalf("scanned %d, err %v", n, inner.Err())
			}
		}
	})
	b.Run("full-parse", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := Parse(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}
