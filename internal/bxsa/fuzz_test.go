package bxsa

import (
	"testing"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/xbs"
)

// FuzzParse drives the BXSA decoder with arbitrary bytes. The decoder must
// never panic or hang: hostile input either parses into a tree or returns an
// error. Anything that parses must survive a re-encode — a tree the decoder
// accepts but the encoder rejects means the two passes disagree about the
// model's invariants.
func FuzzParse(f *testing.F) {
	for _, doc := range []*bxdm.Document{testTree(), transcodeTree()} {
		for _, order := range []xbs.ByteOrder{xbs.LittleEndian, xbs.BigEndian} {
			seed, err := Marshal(doc.Root(), EncodeOptions{Order: order})
			if err != nil {
				f.Fatal(err)
			}
			f.Add(seed)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("BXSA"))
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := Parse(data)
		if err != nil {
			return
		}
		if _, err := Marshal(n, EncodeOptions{}); err != nil {
			t.Fatalf("decoded tree failed to re-encode: %v", err)
		}
	})
}
