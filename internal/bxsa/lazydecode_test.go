package bxsa

import (
	"testing"

	"bxsoap/internal/bxdm"
)

// lazyDoc builds a document with many sibling arrays and one deeply
// namespaced target element.
func lazyDoc() *bxdm.Document {
	root := bxdm.NewElement(bxdm.PName("urn:lazy", "z", "root"))
	root.DeclareNamespace("z", "urn:lazy")
	for i := 0; i < 50; i++ {
		root.Append(bxdm.NewArray(bxdm.Name("urn:lazy", "bulk"), make([]float64, 200)))
	}
	target := bxdm.NewLeaf(bxdm.Name("urn:lazy", "target"), int32(4242))
	root.Append(target)
	return bxdm.NewDocument(root)
}

func TestScannerDecodeSelectedFrame(t *testing.T) {
	data, err := Marshal(lazyDoc(), EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScanner(data)
	if !sc.Next() {
		t.Fatal(sc.Err())
	}
	docLevel, err := sc.Descend()
	if err != nil {
		t.Fatal(err)
	}
	if !docLevel.Next() {
		t.Fatal(docLevel.Err())
	}
	inner, err := docLevel.Descend()
	if err != nil {
		t.Fatal(err)
	}
	// Skip to the last child (the target) without decoding the bulk.
	var last bool
	for inner.Next() {
		last = inner.Type() == FrameLeaf
	}
	if err := inner.Err(); err != nil {
		t.Fatal(err)
	}
	if !last {
		t.Fatal("did not end on the leaf frame")
	}
	n, err := inner.Decode()
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	leaf, ok := n.(*bxdm.LeafElement)
	if !ok {
		t.Fatalf("decoded %T", n)
	}
	if leaf.Value.Int64() != 4242 {
		t.Errorf("value = %v", leaf.Value.Int64())
	}
	// The tokenized namespace reference resolved through the ancestor's
	// table collected during Descend.
	if leaf.Name.Space != "urn:lazy" {
		t.Errorf("namespace = %q, want urn:lazy", leaf.Name.Space)
	}
}

func TestScannerDecodeArrayFrameInPlace(t *testing.T) {
	// Array payload alignment is document-absolute; in-place decode must
	// honor it (this is why Decode works on the whole buffer at the frame's
	// true offset).
	data, err := Marshal(lazyDoc(), EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScanner(data)
	sc.Next()
	docLevel, err := sc.Descend()
	if err != nil {
		t.Fatal(err)
	}
	docLevel.Next()
	inner, err := docLevel.Descend()
	if err != nil {
		t.Fatal(err)
	}
	if !inner.Next() {
		t.Fatal(inner.Err())
	}
	n, err := inner.Decode()
	if err != nil {
		t.Fatalf("Decode first array: %v", err)
	}
	arr, ok := n.(*bxdm.ArrayElement)
	if !ok || arr.Data.Len() != 200 {
		t.Fatalf("decoded %T / %v", n, arr)
	}
}

func TestScannerDecodeBeforeNext(t *testing.T) {
	sc := NewScanner([]byte{1, 2, 3})
	if _, err := sc.Decode(); err == nil {
		t.Error("Decode before Next succeeded")
	}
}

// BenchmarkSelectiveDecode quantifies the payoff: decode one leaf at the
// end of a document versus parsing everything.
func BenchmarkSelectiveDecode(b *testing.B) {
	data, err := Marshal(lazyDoc(), EncodeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("scan-and-decode-one", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			sc := NewScanner(data)
			sc.Next()
			dl, _ := sc.Descend()
			dl.Next()
			inner, _ := dl.Descend()
			for inner.Next() {
				if inner.Type() != FrameLeaf {
					continue
				}
				if _, err := inner.Decode(); err != nil {
					b.Fatal(err)
				}
			}
			if err := inner.Err(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parse-everything", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := Parse(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}
