package bxsa

import (
	"bxsoap/internal/bxdm"
	"bxsoap/internal/xmltext"
)

// Transcodability (paper §4.2): a BXSA document converts to textual XML and
// back without change, and vice versa. The type information that textual XML
// cannot represent natively travels in xsi:type / arrayType hints, "as
// required by the SOAP encoding rule" when no schema is available.

// ToXML transcodes a BXSA byte stream to textual XML with type hints.
func ToXML(data []byte) ([]byte, error) {
	n, err := Parse(data)
	if err != nil {
		return nil, err
	}
	return xmltext.Marshal(n, xmltext.EncodeOptions{TypeHints: true})
}

// FromXML transcodes a textual XML document (honoring type hints) to BXSA.
func FromXML(xml []byte, opts EncodeOptions) ([]byte, error) {
	doc, err := xmltext.Parse(xml, xmltext.DecodeOptions{RecoverTypes: true})
	if err != nil {
		return nil, err
	}
	return Marshal(doc, opts)
}

// RoundTripsWithXML reports whether the tree survives BXSA→XML→BXSA
// unchanged (a model-level check of the transcodability property).
func RoundTripsWithXML(n bxdm.Node) (bool, error) {
	xml, err := xmltext.Marshal(n, xmltext.EncodeOptions{TypeHints: true})
	if err != nil {
		return false, err
	}
	back, err := xmltext.Parse(xml, xmltext.DecodeOptions{RecoverTypes: true})
	if err != nil {
		return false, err
	}
	var cmp bxdm.Node = back
	if n.Kind() != bxdm.KindDocument {
		cmp = back.Root()
	}
	return bxdm.Equal(n, cmp), nil
}
