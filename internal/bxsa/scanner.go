package bxsa

import (
	"fmt"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/vls"
	"bxsoap/internal/xbs"
)

// Scanner provides the "accelerated sequential access" of §4.1: the Size
// field in every frame lets it hop from frame to frame without parsing frame
// contents. A scanner walks the frames at one nesting level; Descend enters
// a container frame's children.
type Scanner struct {
	data []byte
	pos  int
	end  int
	err  error

	// scopes holds the namespace declaration tables of the ancestor
	// element frames, outermost first, so a frame decoded in place can
	// resolve tokenized references into its ancestors' tables.
	scopes [][]bxdm.NamespaceDecl

	// Current frame, valid after Next returns true.
	frameType  FrameType
	order      xbs.ByteOrder
	frameStart int
	bodyStart  int
	bodyEnd    int
}

// NewScanner scans the top-level frames of a BXSA byte stream.
func NewScanner(data []byte) *Scanner {
	return &Scanner{data: data, end: len(data)}
}

// Next advances to the next frame at this level, returning false at the end
// of the level or on error (check Err).
func (s *Scanner) Next() bool {
	if s.err != nil || s.pos >= s.end {
		return false
	}
	if s.pos >= len(s.data) {
		s.err = fmt.Errorf("bxsa: scan past end of input")
		return false
	}
	frameStart := s.pos
	order, ft := splitPrefix(s.data[s.pos])
	size, n, err := vls.Uint(s.data[s.pos+1:])
	if err != nil {
		s.err = fmt.Errorf("bxsa: bad frame size at %d: %w", s.pos, err)
		return false
	}
	bodyStart := s.pos + 1 + n
	bodyEnd := bodyStart + int(size)
	if size > uint64(s.end) || bodyEnd > s.end {
		s.err = fmt.Errorf("bxsa: frame at %d overruns input (size %d)", s.pos, size)
		return false
	}
	s.frameType, s.order = ft, order
	s.frameStart = frameStart
	s.bodyStart, s.bodyEnd = bodyStart, bodyEnd
	s.pos = bodyEnd // next frame starts right after this one
	return true
}

// Err returns the first scan error, if any.
func (s *Scanner) Err() error { return s.err }

// Type returns the current frame's type.
func (s *Scanner) Type() FrameType { return s.frameType }

// Order returns the current frame's byte order.
func (s *Scanner) Order() xbs.ByteOrder { return s.order }

// Body returns the current frame's body bytes (shared, do not modify).
func (s *Scanner) Body() []byte { return s.data[s.bodyStart:s.bodyEnd] }

// FrameSize returns the current frame's total size including prefix and
// size field.
func (s *Scanner) FrameSize() int {
	body := s.bodyEnd - s.bodyStart
	return 1 + vls.EncodedLen(uint64(body)) + body
}

// Descend returns a Scanner over the current frame's child frames. Only
// document and component-element frames contain child frames; for a
// document the header is the child count, for an element it is the common
// section plus the child count (which Descend must skip without full
// parsing — it still avoids touching child frame contents).
func (s *Scanner) Descend() (*Scanner, error) {
	switch s.frameType {
	case FrameDocument:
		// Skip the child count.
		_, n, err := vls.Uint(s.data[s.bodyStart:s.bodyEnd])
		if err != nil {
			return nil, fmt.Errorf("bxsa: descend: %w", err)
		}
		return &Scanner{data: s.data, pos: s.bodyStart + n, end: s.bodyEnd, scopes: s.scopes}, nil
	case FrameElement:
		off, decls, err := skipCommon(s.data, s.bodyStart, s.bodyEnd)
		if err != nil {
			return nil, err
		}
		_, n, err := vls.Uint(s.data[off:s.bodyEnd])
		if err != nil {
			return nil, fmt.Errorf("bxsa: descend: %w", err)
		}
		scopes := s.scopes
		// Every element frame contributes a scope frame (even an empty
		// one), matching the encoder's and decoder's NSScope behaviour.
		scopes = append(scopes[:len(scopes):len(scopes)], decls)
		return &Scanner{data: s.data, pos: off + n, end: s.bodyEnd, scopes: scopes}, nil
	default:
		return nil, fmt.Errorf("bxsa: cannot descend into %v frame", s.frameType)
	}
}

// skipCommon advances past the common element section (namespace table,
// name, attributes) without building any nodes, returning the element's
// namespace declarations (needed for in-place decoding of child frames).
func skipCommon(data []byte, pos, end int) (int, []bxdm.NamespaceDecl, error) {
	rd := func() (uint64, error) {
		v, n, err := vls.Uint(data[pos:end])
		if err != nil {
			return 0, err
		}
		pos += n
		return v, nil
	}
	readStr := func() (string, error) {
		l, err := rd()
		if err != nil {
			return "", err
		}
		if l > uint64(end-pos) {
			return "", fmt.Errorf("bxsa: string overruns frame")
		}
		v := string(data[pos : pos+int(l)])
		pos += int(l)
		return v, nil
	}
	skipStr := func() error {
		_, err := readStr()
		return err
	}
	skipRef := func() error {
		d, err := rd()
		if err != nil {
			return err
		}
		if d > 0 {
			if _, err := rd(); err != nil {
				return err
			}
		}
		return nil
	}
	skipScalar := func() error {
		if pos >= end {
			return fmt.Errorf("bxsa: truncated scalar")
		}
		code := bxdm.TypeCode(data[pos])
		pos++
		switch code {
		case bxdm.TString:
			return skipStr()
		case bxdm.TBool:
			pos++
			return nil
		default:
			sz := code.Size()
			if sz <= 0 {
				return fmt.Errorf("bxsa: bad scalar type %d", code)
			}
			pos += sz
			return nil
		}
	}
	n1, err := rd()
	if err != nil {
		return 0, nil, err
	}
	var decls []bxdm.NamespaceDecl
	for i := uint64(0); i < n1; i++ {
		prefix, err := readStr()
		if err != nil {
			return 0, nil, err
		}
		uri, err := readStr()
		if err != nil {
			return 0, nil, err
		}
		decls = append(decls, bxdm.NamespaceDecl{Prefix: prefix, URI: uri})
	}
	if err := skipRef(); err != nil {
		return 0, nil, err
	}
	if err := skipStr(); err != nil {
		return 0, nil, err
	}
	n2, err := rd()
	if err != nil {
		return 0, nil, err
	}
	for i := uint64(0); i < n2; i++ {
		if err := skipRef(); err != nil {
			return 0, nil, err
		}
		if err := skipStr(); err != nil {
			return 0, nil, err
		}
		if err := skipScalar(); err != nil {
			return 0, nil, err
		}
	}
	if pos > end {
		return 0, nil, fmt.Errorf("bxsa: common section overruns frame")
	}
	return pos, decls, nil
}

// CountFrames scans all frames at the top level (without parsing contents)
// and returns how many there are. It is the cheapest possible integrity walk
// over a BXSA stream.
func CountFrames(data []byte) (int, error) {
	sc := NewScanner(data)
	n := 0
	for sc.Next() {
		n++
	}
	return n, sc.Err()
}

// Decode fully parses just the current frame, in place: sibling frames are
// never touched, ancestor namespace tables gathered during Descend resolve
// the frame's tokenized references, and array payloads keep their
// document-absolute alignment because decoding happens at the frame's true
// offset. Combined with Next/Descend this is the paper's "accelerated
// sequential access": scan by Size, decode only what you need.
func (s *Scanner) Decode() (bxdm.Node, error) {
	if s.frameStart >= s.bodyEnd {
		return nil, fmt.Errorf("bxsa: Decode before Next")
	}
	d := &decoder{data: s.data[:s.bodyEnd], pos: s.frameStart}
	for _, decls := range s.scopes {
		d.scope.Push(decls)
	}
	return d.parseFrame()
}
