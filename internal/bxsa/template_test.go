package bxsa

import (
	"bytes"
	"testing"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/shape"
	"bxsoap/internal/xbs"
)

// tmplDoc builds a document with one element holding a numeric leaf, a
// bool leaf, a string leaf, and a packed array — all the slot kinds.
func tmplDoc(n int32, flag bool, s string, items []float64) *bxdm.Document {
	e := bxdm.NewElement(bxdm.PName("urn:t", "t", "op"))
	e.DeclareNamespace("t", "urn:t")
	e.Append(
		bxdm.NewLeaf(bxdm.Name("urn:t", "n"), n),
		bxdm.NewLeaf(bxdm.Name("urn:t", "flag"), flag),
		bxdm.NewLeafValue(bxdm.Name("urn:t", "s"), bxdm.StringValue(s)),
		bxdm.NewArray(bxdm.Name("urn:t", "a"), items),
		bxdm.NewText("sep"),
	)
	return bxdm.NewDocument(e)
}

func docVars(t *testing.T, doc *bxdm.Document) []shape.Var {
	t.Helper()
	var vars []shape.Var
	root := doc.Root().(*bxdm.Element)
	if _, ok := shape.Fingerprint(nil, []bxdm.Node{root}, &vars); !ok {
		t.Fatal("fingerprint rejected document")
	}
	return vars
}

func TestTemplateEncodeMatchesGeneric(t *testing.T) {
	for _, order := range []xbs.ByteOrder{xbs.LittleEndian, xbs.BigEndian} {
		opts := EncodeOptions{Order: order}
		tmpl, err := CompileTemplate(tmplDoc(1, false, "..", []float64{0, 0, 0}), opts)
		if err != nil {
			t.Fatal(err)
		}
		if tmpl.Slots() != 4 {
			t.Fatalf("slots = %d, want 4", tmpl.Slots())
		}
		other := tmplDoc(-7, true, "hi", []float64{1.5, -2.5, 3})
		want, err := Marshal(other, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tmpl.AppendEncode(nil, docVars(t, other))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("order %v: templated encode differs from generic:\n got %x\nwant %x", order, got, want)
		}
		if tmpl.Size() != len(want) {
			t.Fatalf("Size() = %d, want %d", tmpl.Size(), len(want))
		}
	}
}

func TestTemplateMatchExtractsVars(t *testing.T) {
	tmpl, err := CompileTemplate(tmplDoc(0, false, "xy", []float64{0, 0}), EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	doc := tmplDoc(42, true, "ok", []float64{9.5, -1})
	data, err := Marshal(doc, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var vars []shape.Var
	if !tmpl.Match(data, &vars) {
		t.Fatal("same-shape message did not match")
	}
	want := docVars(t, doc)
	if len(vars) != len(want) {
		t.Fatalf("got %d vars, want %d", len(vars), len(want))
	}
	if vars[0].Value.Int64() != 42 || !vars[1].Value.Bool() || vars[2].Value.Text() != "ok" {
		t.Fatalf("leaf vars wrong: %+v", vars[:3])
	}
	if !vars[3].Data.EqualData(want[3].Data) {
		t.Fatalf("array var = %v", vars[3].Data)
	}
}

func TestTemplateMatchRejectsOtherShapes(t *testing.T) {
	tmpl, err := CompileTemplate(tmplDoc(0, false, "xy", []float64{0, 0}), EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var vars []shape.Var
	// Different string length → different size → no match.
	d1, _ := Marshal(tmplDoc(0, false, "xyz", []float64{0, 0}), EncodeOptions{})
	if tmpl.Match(d1, &vars) {
		t.Error("different string length matched")
	}
	// Same size, different static content (element name) → no match.
	doc := tmplDoc(0, false, "xy", []float64{0, 0})
	doc.Root().(*bxdm.Element).Children[2].(*bxdm.LeafElement).Name.Local = "z"
	d2, _ := Marshal(doc, EncodeOptions{})
	pad, _ := Marshal(tmplDoc(0, false, "xy", []float64{0, 0}), EncodeOptions{})
	if len(d2) == len(pad) && tmpl.Match(d2, &vars) {
		t.Error("different static bytes matched")
	}
	// A corrupted bool byte must be rejected, as the generic decoder does.
	d3, _ := Marshal(tmplDoc(0, false, "xy", []float64{0, 0}), EncodeOptions{})
	if !tmpl.Match(d3, &vars) {
		t.Fatal("baseline did not match")
	}
	vars = vars[:0]
	// Find the bool window via a fresh compile and flip it to 7.
	for i := range tmpl.slots {
		if tmpl.slots[i].code == bxdm.TBool {
			d3[tmpl.slots[i].win.Off] = 7
		}
	}
	if tmpl.Match(d3, &vars) {
		t.Error("invalid bool byte matched")
	}
	if len(vars) != 0 {
		t.Errorf("failed match left %d vars behind", len(vars))
	}
}

func TestTemplateAppendEncodeRejectsMismatchedVars(t *testing.T) {
	tmpl, err := CompileTemplate(tmplDoc(0, false, "xy", []float64{0, 0}), EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tmpl.AppendEncode(nil, nil); err == nil {
		t.Error("wrong var count accepted")
	}
	vars := docVars(t, tmplDoc(0, false, "xy", []float64{0, 0}))
	vars[2] = shape.Var{Value: bxdm.StringValue("wrong length")}
	if _, err := tmpl.AppendEncode(nil, vars); err == nil {
		t.Error("wrong string length accepted")
	}
	vars = docVars(t, tmplDoc(0, false, "xy", []float64{0, 0}))
	vars[3] = shape.Var{Data: bxdm.Array[float64]{Items: []float64{1}}}
	if _, err := tmpl.AppendEncode(nil, vars); err == nil {
		t.Error("wrong array count accepted")
	}
}
