// Package bxsa implements BXSA (Binary XML for Scientific Applications),
// the paper's layered binary XML format (§4): a BXSA document is a sequence
// of recursively embedded frames, each representing one bXDM node. Frames
// start with a Common Frame Prefix carrying per-frame byte order and a
// 6-bit frame type code, followed by a variable-length Size that lets a
// scanner skip over frames without parsing them (§4.1 "accelerated
// sequential access"). Namespaces inside frames are tokenized: QNames
// reference a (scope depth, symbol-table index) pair instead of a prefix.
//
// Wire layout (deviations from the paper's sketch are documented in
// DESIGN.md):
//
//	frame      := prefix size body
//	prefix     := 1 byte: [2 bits byte-order | 6 bits frame type]
//	size       := VLS count of body bytes (enables skip-scan)
//
//	document   := nChildren:VLS frame*
//	element    := common  nChildren:VLS frame*            (component element)
//	leaf       := common  typecode:1  scalar
//	array      := common  typecode:1 count:VLS slack data (see below)
//	chardata   := len:VLS bytes
//	comment    := len:VLS bytes
//	pi         := targetLen:VLS bytes dataLen:VLS bytes
//
//	common     := n1:VLS (prefixLen:VLS prefix uriLen:VLS uri)*   — ns table
//	              nsref nameLen:VLS name
//	              n2:VLS (nsref nameLen:VLS name typecode:1 scalar)*  — attrs
//	nsref      := depthPlus1:VLS [index:VLS]   — 0 means "no namespace";
//	              depth counts backwards over ancestor frames that HAVE a
//	              namespace table (paper §4.1)
//	scalar     := numeric: fixed-width native bytes in the frame's order;
//	              bool: 1 byte; string: len:VLS bytes
//	slack      := p:1 zero*p ... zero*(7-p)    — 8 fixed bytes arranging the
//	              packed data on a document-absolute multiple of the item
//	              size, so a memory-mapped reader can point straight at it
//	data       := count items, packed, in the frame's byte order
package bxsa

import (
	"fmt"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/xbs"
)

// FrameType is the 6-bit frame kind in the Common Frame Prefix.
type FrameType uint8

const (
	FrameInvalid FrameType = iota
	FrameDocument
	FrameElement // component element
	FrameLeaf
	FrameArray
	FrameCharData
	FrameComment
	FramePI

	frameTypeMask = 0x3f
)

func (t FrameType) String() string {
	switch t {
	case FrameDocument:
		return "document"
	case FrameElement:
		return "element"
	case FrameLeaf:
		return "leaf-element"
	case FrameArray:
		return "array-element"
	case FrameCharData:
		return "chardata"
	case FrameComment:
		return "comment"
	case FramePI:
		return "pi"
	default:
		return fmt.Sprintf("frame(%d)", uint8(t))
	}
}

// prefixByte packs byte order and frame type into the Common Frame Prefix.
func prefixByte(order xbs.ByteOrder, t FrameType) byte {
	return byte(order)<<6 | byte(t)
}

func splitPrefix(b byte) (xbs.ByteOrder, FrameType) {
	return xbs.ByteOrder(b >> 6), FrameType(b & frameTypeMask)
}

// frameTypeFor maps a bXDM node to its frame type.
func frameTypeFor(n bxdm.Node) (FrameType, error) {
	switch n.(type) {
	case *bxdm.Document:
		return FrameDocument, nil
	case *bxdm.Element:
		return FrameElement, nil
	case *bxdm.LeafElement:
		return FrameLeaf, nil
	case *bxdm.ArrayElement:
		return FrameArray, nil
	case *bxdm.Text:
		return FrameCharData, nil
	case *bxdm.Comment:
		return FrameComment, nil
	case *bxdm.PI:
		return FramePI, nil
	default:
		return FrameInvalid, fmt.Errorf("bxsa: node %T has no frame type", n)
	}
}

// slackBytes is the fixed-size region arranging array data on an absolute
// alignment boundary: [p][p zeros][data][(7-p) zeros]. Making it fixed-width
// keeps frame sizes independent of their position, which is what allows the
// single-pass layout computation.
const slackBytes = 8

// Limits protecting the decoder from malformed inputs.
const (
	maxNameLen   = 1 << 16 // element/attribute names and ns prefixes
	maxURILen    = 1 << 16
	maxStringLen = 1 << 28 // string scalar payloads
)
