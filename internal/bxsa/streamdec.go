package bxsa

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/vls"
	"bxsoap/internal/xbs"
)

// The streaming decoder mirrors decoder.go over an io.Reader instead of a
// materialized buffer: it tracks its absolute position, validates every
// declared length against the ENCLOSING frame's declared end rather than
// the buffer's remaining bytes, and grows every allocation as data actually
// arrives (chunked strings, xbs.ReadArrayGrow batches), so a hostile
// declared size costs at most one bounded batch before the stream runs
// dry. Memory while decoding is bounded by the decoded tree itself plus a
// fixed window — the input never materializes.

// maxStreamBound caps the top-level frame's declared body size. It exists
// only to keep end-offset arithmetic overflow-free; real bounds come from
// grow-as-data-arrives allocation.
const maxStreamBound = math.MaxInt64 / 4

// growChunk is the window used to read long strings incrementally.
const growChunk = 256 << 10

var sdecPool = sync.Pool{New: func() any {
	return &streamDecoder{br: bufio.NewReaderSize(nil, 32<<10)}
}}

type streamDecoder struct {
	br    *bufio.Reader
	pos   int // absolute offset of the next unread byte
	scope bxdm.NSScope
	xr    xbs.Reader
	sbuf  []byte
}

// DecodeReader parses exactly one BXSA frame from r, which must be
// positioned at the document's first byte and end (io.EOF) after its last
// — the streaming counterpart of Parse. The decoded tree never aliases
// decoder state.
func DecodeReader(r io.Reader) (bxdm.Node, error) {
	d := sdecPool.Get().(*streamDecoder)
	d.br.Reset(r)
	d.pos = 0
	for d.scope.Depth() > 0 { // a failed earlier parse may have left frames pushed
		d.scope.Pop()
	}
	n, err := d.parseFrame(maxStreamBound)
	if err == nil {
		if _, e2 := d.br.ReadByte(); e2 == nil {
			err = d.errf("trailing bytes after document frame")
		} else if e2 != io.EOF {
			err = e2
		}
	}
	pos := d.pos
	d.br.Reset(nil)
	d.xr.Reset(nil, xbs.Native, 0)
	sdecPool.Put(d)
	if err != nil {
		return nil, fmt.Errorf("bxsa: %w at byte %d", err, pos)
	}
	return n, nil
}

// DecodeDocumentReader decodes from r and requires a document frame.
func DecodeDocumentReader(r io.Reader) (*bxdm.Document, error) {
	n, err := DecodeReader(r)
	if err != nil {
		return nil, err
	}
	doc, ok := n.(*bxdm.Document)
	if !ok {
		return nil, fmt.Errorf("bxsa: top-level frame is %v, not a document", n.Kind())
	}
	return doc, nil
}

func (d *streamDecoder) errf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

// wrapEOF converts bare end-of-stream errors into the decoder's uniform
// truncation error (a stream that ends mid-frame is a truncated frame, not
// a clean EOF).
func wrapEOF(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("truncated frame")
	}
	return err
}

func (d *streamDecoder) readByte() (byte, error) {
	b, err := d.br.ReadByte()
	if err != nil {
		return 0, wrapEOF(err)
	}
	d.pos++
	return b, nil
}

func (d *streamDecoder) readFull(b []byte) error {
	n, err := io.ReadFull(d.br, b)
	d.pos += n
	if err != nil {
		return wrapEOF(err)
	}
	return nil
}

func (d *streamDecoder) readVLS() (uint64, error) {
	v, err := vls.ReadUint(d.br)
	if err != nil {
		return 0, wrapEOF(err)
	}
	// ReadUint rejects non-canonical encodings, so the consumed byte count
	// is exactly the canonical length.
	d.pos += vls.EncodedLen(v)
	return v, nil
}

// readLen reads a VLS length and validates it against a hard cap and the
// enclosing frame's declared end — the stream-side analogue of the buffered
// decoder's remaining-input check.
func (d *streamDecoder) readLen(bound int, limit int, what string) (int, error) {
	v, err := d.readVLS()
	if err != nil {
		return 0, err
	}
	if v > uint64(limit) {
		return 0, d.errf("%s length %d exceeds limit %d", what, v, limit)
	}
	if v > uint64(bound-d.pos) {
		return 0, d.errf("%s length %d exceeds enclosing frame (%d bytes left)", what, v, bound-d.pos)
	}
	return int(v), nil
}

// readString reads a counted string, in growChunk windows for long ones so
// the allocation tracks delivered bytes, not the declared count.
func (d *streamDecoder) readString(bound int, limit int, what string) (string, error) {
	n, err := d.readLen(bound, limit, what)
	if err != nil {
		return "", err
	}
	if n <= growChunk {
		if cap(d.sbuf) < n {
			d.sbuf = make([]byte, n)
		}
		buf := d.sbuf[:n]
		if err := d.readFull(buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	if cap(d.sbuf) < growChunk {
		d.sbuf = make([]byte, growChunk)
	}
	var b strings.Builder
	for rem := n; rem > 0; {
		k := min(rem, growChunk)
		if err := d.readFull(d.sbuf[:k]); err != nil {
			return "", err
		}
		b.Write(d.sbuf[:k])
		rem -= k
	}
	return b.String(), nil
}

// parseFrame decodes one complete frame; bound is the enclosing frame's
// absolute end (maxStreamBound at top level).
func (d *streamDecoder) parseFrame(bound int) (bxdm.Node, error) {
	pb, err := d.readByte()
	if err != nil {
		return nil, err
	}
	order, ft := splitPrefix(pb)
	if order > xbs.BigEndian {
		return nil, d.errf("invalid byte-order bits %d", order)
	}
	bodySize, err := d.readLen(bound, maxStreamBound, "frame body")
	if err != nil {
		return nil, err
	}
	end := d.pos + bodySize

	var n bxdm.Node
	switch ft {
	case FrameDocument:
		n, err = d.parseDocumentBody(order, end)
	case FrameElement, FrameLeaf, FrameArray:
		n, err = d.parseElementBody(ft, order, end)
	case FrameCharData:
		s, e2 := d.readString(end, maxStringLen, "chardata")
		n, err = &bxdm.Text{Data: s}, e2
	case FrameComment:
		s, e2 := d.readString(end, maxStringLen, "comment")
		n, err = &bxdm.Comment{Data: s}, e2
	case FramePI:
		var target, data string
		if target, err = d.readString(end, maxNameLen, "pi target"); err == nil {
			data, err = d.readString(end, maxStringLen, "pi data")
		}
		n = &bxdm.PI{Target: target, Data: data}
	default:
		return nil, d.errf("unknown frame type %d", ft)
	}
	if err != nil {
		return nil, err
	}
	if d.pos != end {
		return nil, d.errf("frame type %v: body size %d does not match content (ended at offset %d, expected %d)", ft, bodySize, d.pos, end)
	}
	return n, nil
}

func (d *streamDecoder) parseDocumentBody(_ xbs.ByteOrder, end int) (bxdm.Node, error) {
	count, err := d.readLen(end, maxStreamBound, "document child count")
	if err != nil {
		return nil, err
	}
	doc := &bxdm.Document{Children: make([]bxdm.Node, 0, min(count, 64))}
	for i := 0; i < count; i++ {
		if d.pos >= end {
			return nil, d.errf("document children overflow frame body")
		}
		c, err := d.parseFrame(end)
		if err != nil {
			return nil, err
		}
		doc.Children = append(doc.Children, c)
	}
	return doc, nil
}

func (d *streamDecoder) parseElementBody(ft FrameType, order xbs.ByteOrder, end int) (bxdm.Node, error) {
	n1, err := d.readLen(end, maxStreamBound, "namespace declaration count")
	if err != nil {
		return nil, err
	}
	var decls []bxdm.NamespaceDecl
	for i := 0; i < n1; i++ {
		prefix, err := d.readString(end, maxNameLen, "namespace prefix")
		if err != nil {
			return nil, err
		}
		uri, err := d.readString(end, maxURILen, "namespace URI")
		if err != nil {
			return nil, err
		}
		decls = append(decls, bxdm.NamespaceDecl{Prefix: prefix, URI: uri})
	}
	d.scope.Push(decls)
	defer d.scope.Pop()

	common := bxdm.ElemCommon{NamespaceDecls: decls}
	common.Name, err = d.readQName(end, "element")
	if err != nil {
		return nil, err
	}

	n2, err := d.readLen(end, maxStreamBound, "attribute count")
	if err != nil {
		return nil, err
	}
	for i := 0; i < n2; i++ {
		name, err := d.readQName(end, "attribute")
		if err != nil {
			return nil, err
		}
		v, err := d.readScalar(order, end)
		if err != nil {
			return nil, err
		}
		common.Attributes = append(common.Attributes, bxdm.Attribute{Name: name, Value: v})
	}

	switch ft {
	case FrameLeaf:
		v, err := d.readScalar(order, end)
		if err != nil {
			return nil, err
		}
		return &bxdm.LeafElement{ElemCommon: common, Value: v}, nil
	case FrameArray:
		data, err := d.readArrayData(order, end)
		if err != nil {
			return nil, err
		}
		return &bxdm.ArrayElement{ElemCommon: common, Data: data}, nil
	default: // FrameElement
		count, err := d.readLen(end, maxStreamBound, "child count")
		if err != nil {
			return nil, err
		}
		el := &bxdm.Element{ElemCommon: common, Children: make([]bxdm.Node, 0, min(count, 64))}
		for i := 0; i < count; i++ {
			if d.pos >= end {
				return nil, d.errf("element children overflow frame body")
			}
			c, err := d.parseFrame(end)
			if err != nil {
				return nil, err
			}
			el.Children = append(el.Children, c)
		}
		return el, nil
	}
}

func (d *streamDecoder) readQName(bound int, what string) (bxdm.QName, error) {
	depthPlus1, err := d.readVLS()
	if err != nil {
		return bxdm.QName{}, err
	}
	var q bxdm.QName
	if depthPlus1 > 0 {
		index, err := d.readVLS()
		if err != nil {
			return bxdm.QName{}, err
		}
		decl, err := d.scope.Lookup(int(depthPlus1-1), int(index))
		if err != nil {
			return bxdm.QName{}, d.errf("%s namespace reference: %v", what, err)
		}
		q.Space = decl.URI
		q.Prefix = decl.Prefix
	}
	q.Local, err = d.readString(bound, maxNameLen, what+" name")
	if err != nil {
		return bxdm.QName{}, err
	}
	if q.Local == "" {
		return bxdm.QName{}, d.errf("empty %s name", what)
	}
	return q, nil
}

func (d *streamDecoder) readScalar(order xbs.ByteOrder, bound int) (bxdm.Value, error) {
	tb, err := d.readByte()
	if err != nil {
		return bxdm.Value{}, err
	}
	code := bxdm.TypeCode(tb)
	switch code {
	case bxdm.TString:
		s, err := d.readString(bound, maxStringLen, "string value")
		return bxdm.StringValue(s), err
	case bxdm.TBool:
		b, err := d.readByte()
		if err != nil {
			return bxdm.Value{}, err
		}
		if b > 1 {
			return bxdm.Value{}, d.errf("invalid boolean byte %d", b)
		}
		return bxdm.BoolValue(b == 1), nil
	default:
		size := code.Size()
		if size <= 0 {
			return bxdm.Value{}, d.errf("invalid value type code %d", tb)
		}
		if bound-d.pos < size {
			return bxdm.Value{}, d.errf("truncated %v value", code)
		}
		var scratch [8]byte
		if err := d.readFull(scratch[:size]); err != nil {
			return bxdm.Value{}, err
		}
		return valueFromBits(code, readNative(scratch[:size], order)), nil
	}
}

func (d *streamDecoder) readArrayData(order xbs.ByteOrder, bound int) (bxdm.ArrayData, error) {
	tb, err := d.readByte()
	if err != nil {
		return nil, err
	}
	code := bxdm.TypeCode(tb)
	elem := code.Size()
	if elem <= 0 || code == bxdm.TBool {
		return nil, d.errf("invalid array item type code %d", tb)
	}
	count, err := d.readVLS()
	if err != nil {
		return nil, err
	}
	if count > uint64(bound-d.pos)/uint64(elem) {
		return nil, d.errf("array count %d exceeds enclosing frame", count)
	}
	pad, err := d.readByte()
	if err != nil {
		return nil, err
	}
	if int(pad) >= slackBytes {
		return nil, d.errf("invalid array pad %d", pad)
	}
	if int(pad)+int(count)*elem+(slackBytes-1-int(pad)) > bound-d.pos {
		return nil, d.errf("truncated array data")
	}
	if err := d.readZeros(int(pad), "padding"); err != nil {
		return nil, err
	}
	if elem > 1 && d.pos%elem != 0 {
		return nil, d.errf("array data misaligned: offset %d for item size %d", d.pos, elem)
	}
	d.xr.Reset(d.br, order, int64(d.pos))
	data, err := bxdm.ReadArrayXBSGrow(&d.xr, code, int(count))
	if err != nil {
		return nil, wrapEOF(err)
	}
	d.pos += int(count) * elem
	if err := d.readZeros(slackBytes-1-int(pad), "slack"); err != nil {
		return nil, err
	}
	return data, nil
}

func (d *streamDecoder) readZeros(n int, what string) error {
	var scratch [slackBytes]byte
	if err := d.readFull(scratch[:n]); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if scratch[i] != 0 {
			return d.errf("non-zero array %s", what)
		}
	}
	return nil
}
