package bxsa

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"sync"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/vls"
	"bxsoap/internal/xbs"
)

// decPool recycles decoder state (namespace scope frames and the XBS
// reader pair) across messages. The decoded tree never aliases decoder
// state, so pooling is invisible to callers.
var decPool = sync.Pool{New: func() any { return new(decoder) }}

// Parse decodes a BXSA document into a bXDM tree. The input must contain
// exactly one top-level frame (normally a document frame; a bare element
// frame is also accepted and returned as-is). The returned tree does not
// alias data: callers may recycle the buffer as soon as Parse returns.
func Parse(data []byte) (bxdm.Node, error) {
	d := decPool.Get().(*decoder)
	d.data, d.pos = data, 0
	n, err := d.parseFrame()
	pos, trailing := d.pos, len(data)-d.pos
	d.data = nil
	d.br.Reset(nil)
	decPool.Put(d)
	if err != nil {
		return nil, fmt.Errorf("bxsa: %w at byte %d", err, pos)
	}
	if trailing != 0 {
		return nil, fmt.Errorf("bxsa: %d trailing bytes after document frame", trailing)
	}
	return n, nil
}

// ParseDocument decodes and requires a document frame.
func ParseDocument(data []byte) (*bxdm.Document, error) {
	n, err := Parse(data)
	if err != nil {
		return nil, err
	}
	doc, ok := n.(*bxdm.Document)
	if !ok {
		return nil, fmt.Errorf("bxsa: top-level frame is %v, not a document", n.Kind())
	}
	return doc, nil
}

// Decode reads all of r and parses it as a BXSA document.
func Decode(r io.Reader) (bxdm.Node, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

type decoder struct {
	data  []byte
	pos   int
	scope bxdm.NSScope
	br    bytes.Reader
	xr    xbs.Reader
}

func (d *decoder) errf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

func (d *decoder) remaining() int { return len(d.data) - d.pos }

func (d *decoder) readByte() (byte, error) {
	if d.remaining() < 1 {
		return 0, d.errf("truncated frame")
	}
	b := d.data[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) readVLS() (uint64, error) {
	v, n, err := vls.Uint(d.data[d.pos:])
	if err != nil {
		return 0, err
	}
	d.pos += n
	return v, nil
}

// readLen reads a VLS length and validates it against what is left and a
// hard cap, preventing hostile inputs from forcing huge allocations.
func (d *decoder) readLen(cap int, what string) (int, error) {
	v, err := d.readVLS()
	if err != nil {
		return 0, err
	}
	if v > uint64(cap) {
		return 0, d.errf("%s length %d exceeds limit %d", what, v, cap)
	}
	if v > uint64(d.remaining()) {
		return 0, d.errf("%s length %d exceeds remaining input %d", what, v, d.remaining())
	}
	return int(v), nil
}

func (d *decoder) readString(cap int, what string) (string, error) {
	n, err := d.readLen(cap, what)
	if err != nil {
		return "", err
	}
	s := string(d.data[d.pos : d.pos+n])
	d.pos += n
	return s, nil
}

// parseFrame decodes one complete frame at the current position.
func (d *decoder) parseFrame() (bxdm.Node, error) {
	pb, err := d.readByte()
	if err != nil {
		return nil, err
	}
	order, ft := splitPrefix(pb)
	if order > xbs.BigEndian {
		return nil, d.errf("invalid byte-order bits %d", order)
	}
	bodySize, err := d.readLen(d.remaining(), "frame body")
	if err != nil {
		return nil, err
	}
	end := d.pos + bodySize

	var n bxdm.Node
	switch ft {
	case FrameDocument:
		n, err = d.parseDocumentBody(order, end)
	case FrameElement, FrameLeaf, FrameArray:
		n, err = d.parseElementBody(ft, order, end)
	case FrameCharData:
		s, e2 := d.readString(maxStringLen, "chardata")
		n, err = &bxdm.Text{Data: s}, e2
	case FrameComment:
		s, e2 := d.readString(maxStringLen, "comment")
		n, err = &bxdm.Comment{Data: s}, e2
	case FramePI:
		var target, data string
		if target, err = d.readString(maxNameLen, "pi target"); err == nil {
			data, err = d.readString(maxStringLen, "pi data")
		}
		n = &bxdm.PI{Target: target, Data: data}
	default:
		return nil, d.errf("unknown frame type %d", ft)
	}
	if err != nil {
		return nil, err
	}
	if d.pos != end {
		return nil, d.errf("frame type %v: body size %d does not match content (ended at offset %d, expected %d)", ft, bodySize, d.pos, end)
	}
	return n, nil
}

func (d *decoder) parseDocumentBody(_ xbs.ByteOrder, end int) (bxdm.Node, error) {
	count, err := d.readLen(d.remaining(), "document child count")
	if err != nil {
		return nil, err
	}
	doc := &bxdm.Document{Children: make([]bxdm.Node, 0, min(count, 64))}
	for i := 0; i < count; i++ {
		if d.pos >= end {
			return nil, d.errf("document children overflow frame body")
		}
		c, err := d.parseFrame()
		if err != nil {
			return nil, err
		}
		doc.Children = append(doc.Children, c)
	}
	return doc, nil
}

func (d *decoder) parseElementBody(ft FrameType, order xbs.ByteOrder, end int) (bxdm.Node, error) {
	n1, err := d.readLen(d.remaining(), "namespace declaration count")
	if err != nil {
		return nil, err
	}
	var decls []bxdm.NamespaceDecl
	for i := 0; i < n1; i++ {
		prefix, err := d.readString(maxNameLen, "namespace prefix")
		if err != nil {
			return nil, err
		}
		uri, err := d.readString(maxURILen, "namespace URI")
		if err != nil {
			return nil, err
		}
		decls = append(decls, bxdm.NamespaceDecl{Prefix: prefix, URI: uri})
	}
	d.scope.Push(decls)
	defer d.scope.Pop()

	common := bxdm.ElemCommon{NamespaceDecls: decls}
	common.Name, err = d.readQName("element")
	if err != nil {
		return nil, err
	}

	n2, err := d.readLen(d.remaining(), "attribute count")
	if err != nil {
		return nil, err
	}
	for i := 0; i < n2; i++ {
		name, err := d.readQName("attribute")
		if err != nil {
			return nil, err
		}
		v, err := d.readScalar(order)
		if err != nil {
			return nil, err
		}
		common.Attributes = append(common.Attributes, bxdm.Attribute{Name: name, Value: v})
	}

	switch ft {
	case FrameLeaf:
		v, err := d.readScalar(order)
		if err != nil {
			return nil, err
		}
		return &bxdm.LeafElement{ElemCommon: common, Value: v}, nil
	case FrameArray:
		data, err := d.readArrayData(order)
		if err != nil {
			return nil, err
		}
		return &bxdm.ArrayElement{ElemCommon: common, Data: data}, nil
	default: // FrameElement
		count, err := d.readLen(d.remaining(), "child count")
		if err != nil {
			return nil, err
		}
		el := &bxdm.Element{ElemCommon: common, Children: make([]bxdm.Node, 0, min(count, 64))}
		for i := 0; i < count; i++ {
			if d.pos >= end {
				return nil, d.errf("element children overflow frame body")
			}
			c, err := d.parseFrame()
			if err != nil {
				return nil, err
			}
			el.Children = append(el.Children, c)
		}
		return el, nil
	}
}

// readQName reads a tokenized namespace reference plus local name.
func (d *decoder) readQName(what string) (bxdm.QName, error) {
	depthPlus1, err := d.readVLS()
	if err != nil {
		return bxdm.QName{}, err
	}
	var q bxdm.QName
	if depthPlus1 > 0 {
		index, err := d.readVLS()
		if err != nil {
			return bxdm.QName{}, err
		}
		decl, err := d.scope.Lookup(int(depthPlus1-1), int(index))
		if err != nil {
			return bxdm.QName{}, d.errf("%s namespace reference: %v", what, err)
		}
		q.Space = decl.URI
		q.Prefix = decl.Prefix
	}
	q.Local, err = d.readString(maxNameLen, what+" name")
	if err != nil {
		return bxdm.QName{}, err
	}
	if q.Local == "" {
		return bxdm.QName{}, d.errf("empty %s name", what)
	}
	return q, nil
}

func (d *decoder) readScalar(order xbs.ByteOrder) (bxdm.Value, error) {
	tb, err := d.readByte()
	if err != nil {
		return bxdm.Value{}, err
	}
	code := bxdm.TypeCode(tb)
	switch code {
	case bxdm.TString:
		s, err := d.readString(maxStringLen, "string value")
		return bxdm.StringValue(s), err
	case bxdm.TBool:
		b, err := d.readByte()
		if err != nil {
			return bxdm.Value{}, err
		}
		if b > 1 {
			return bxdm.Value{}, d.errf("invalid boolean byte %d", b)
		}
		return bxdm.BoolValue(b == 1), nil
	default:
		size := code.Size()
		if size <= 0 {
			return bxdm.Value{}, d.errf("invalid value type code %d", tb)
		}
		if d.remaining() < size {
			return bxdm.Value{}, d.errf("truncated %v value", code)
		}
		bits := readNative(d.data[d.pos:d.pos+size], order)
		d.pos += size
		return valueFromBits(code, bits), nil
	}
}

func readNative(b []byte, order xbs.ByteOrder) uint64 {
	var bits uint64
	if order == xbs.LittleEndian {
		for i := len(b) - 1; i >= 0; i-- {
			bits = bits<<8 | uint64(b[i])
		}
	} else {
		for _, c := range b {
			bits = bits<<8 | uint64(c)
		}
	}
	return bits
}

// valueFromBits reconstructs a typed value from its native bit pattern,
// sign-extending signed integer types.
func valueFromBits(code bxdm.TypeCode, bits uint64) bxdm.Value {
	switch code {
	case bxdm.TInt8:
		return bxdm.Int8Value(int8(bits))
	case bxdm.TInt16:
		return bxdm.Int16Value(int16(bits))
	case bxdm.TInt32:
		return bxdm.Int32Value(int32(bits))
	case bxdm.TInt64:
		return bxdm.Int64Value(int64(bits))
	case bxdm.TUint8:
		return bxdm.Uint8Value(uint8(bits))
	case bxdm.TUint16:
		return bxdm.Uint16Value(uint16(bits))
	case bxdm.TUint32:
		return bxdm.Uint32Value(uint32(bits))
	case bxdm.TUint64:
		return bxdm.Uint64Value(bits)
	case bxdm.TFloat32:
		return bxdm.Float32Value(math.Float32frombits(uint32(bits)))
	default: // TFloat64
		return bxdm.Float64Value(math.Float64frombits(bits))
	}
}

func (d *decoder) readArrayData(order xbs.ByteOrder) (bxdm.ArrayData, error) {
	tb, err := d.readByte()
	if err != nil {
		return nil, err
	}
	code := bxdm.TypeCode(tb)
	elem := code.Size()
	if elem <= 0 || code == bxdm.TBool {
		return nil, d.errf("invalid array item type code %d", tb)
	}
	count, err := d.readVLS()
	if err != nil {
		return nil, err
	}
	if count > uint64(d.remaining())/uint64(elem) {
		return nil, d.errf("array count %d exceeds remaining input", count)
	}
	pad, err := d.readByte()
	if err != nil {
		return nil, err
	}
	if int(pad) >= slackBytes {
		return nil, d.errf("invalid array pad %d", pad)
	}
	if d.remaining() < int(pad)+int(count)*elem+(slackBytes-1-int(pad)) {
		return nil, d.errf("truncated array data")
	}
	for i := 0; i < int(pad); i++ {
		if d.data[d.pos+i] != 0 {
			return nil, d.errf("non-zero array padding")
		}
	}
	d.pos += int(pad)
	if elem > 1 && d.pos%elem != 0 {
		return nil, d.errf("array data misaligned: offset %d for item size %d", d.pos, elem)
	}
	d.br.Reset(d.data[d.pos:])
	d.xr.Reset(&d.br, order, int64(d.pos))
	data, err := bxdm.ReadArrayXBS(&d.xr, code, int(count))
	if err != nil {
		return nil, err
	}
	d.pos += int(count) * elem
	tail := slackBytes - 1 - int(pad)
	for i := 0; i < tail; i++ {
		if d.data[d.pos+i] != 0 {
			return nil, d.errf("non-zero array slack")
		}
	}
	d.pos += tail
	return data, nil
}
