package bxsa

import (
	"testing"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/vls"
	"bxsoap/internal/xbs"
)

// TestSplicedMixedOrderDocument exercises the rationale the paper gives for
// per-frame byte-order bits (§4.1): "Associating the byte-order bits with
// each frame rather than the entire BXSA document makes it simpler to embed
// the frame within other documents without regard to a possible different
// byte order used by the container." Here a big-endian leaf frame produced
// by one encoder is spliced verbatim into a little-endian container, and
// the decoder reads both correctly.
func TestSplicedMixedOrderDocument(t *testing.T) {
	leLeaf, err := Marshal(bxdm.NewLeaf(bxdm.LocalName("le"), 1.5), EncodeOptions{Order: xbs.LittleEndian})
	if err != nil {
		t.Fatal(err)
	}
	beLeaf, err := Marshal(bxdm.NewLeaf(bxdm.LocalName("be"), 2.5), EncodeOptions{Order: xbs.BigEndian})
	if err != nil {
		t.Fatal(err)
	}

	// Hand-assemble an element frame containing both leaves. Body:
	// common section (no namespaces, name "mixed", no attrs) + child count
	// + the two spliced frames.
	var body []byte
	body = vls.AppendUint(body, 0) // N1: no namespace decls
	body = vls.AppendUint(body, 0) // nsref: no namespace
	body = vls.AppendUint(body, uint64(len("mixed")))
	body = append(body, "mixed"...)
	body = vls.AppendUint(body, 0) // N2: no attributes
	body = vls.AppendUint(body, 2) // child count
	body = append(body, leLeaf...)
	body = append(body, beLeaf...)

	frame := []byte{prefixByte(xbs.LittleEndian, FrameElement)}
	frame = vls.AppendUint(frame, uint64(len(body)))
	frame = append(frame, body...)

	n, err := Parse(frame)
	if err != nil {
		t.Fatalf("Parse spliced document: %v", err)
	}
	el := n.(*bxdm.Element)
	if el.Name.Local != "mixed" || len(el.Children) != 2 {
		t.Fatalf("container = %v with %d children", el.Name, len(el.Children))
	}
	le := el.Children[0].(*bxdm.LeafElement)
	be := el.Children[1].(*bxdm.LeafElement)
	if le.Value.Float64() != 1.5 {
		t.Errorf("LE child = %v", le.Value.Float64())
	}
	if be.Value.Float64() != 2.5 {
		t.Errorf("BE child = %v (byte order not honored per frame)", be.Value.Float64())
	}
}

// Array frames, by contrast, are only relocatable to offsets congruent
// modulo their item size: the stored pad count realizes document-absolute
// alignment, and the decoder verifies it rather than silently reading
// misaligned data (documented in DESIGN.md).
func TestSplicedArrayFrameAlignmentChecked(t *testing.T) {
	arr, err := Marshal(bxdm.NewArray(bxdm.LocalName("a"), []float64{1, 2}), EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Splice at an offset that shifts the packed data off its alignment:
	// wrap in a container whose header length is not a multiple of 8.
	var body []byte
	body = vls.AppendUint(body, 0)
	body = vls.AppendUint(body, 0)
	body = vls.AppendUint(body, uint64(len("c")))
	body = append(body, "c"...)
	body = vls.AppendUint(body, 0)
	body = vls.AppendUint(body, 1)
	body = append(body, arr...)
	frame := []byte{prefixByte(xbs.LittleEndian, FrameElement)}
	frame = vls.AppendUint(frame, uint64(len(body)))
	frame = append(frame, body...)

	if _, err := Parse(frame); err == nil {
		// The splice happened to land aligned — verify data integrity then.
		return
	}
	// Misalignment must be reported as a clean error, never silent
	// corruption or a panic.
}
