package bxsa

import (
	"bytes"
	"testing"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/vls"
	"bxsoap/internal/xbs"
)

// TestSplicedMixedOrderDocument exercises the rationale the paper gives for
// per-frame byte-order bits (§4.1): "Associating the byte-order bits with
// each frame rather than the entire BXSA document makes it simpler to embed
// the frame within other documents without regard to a possible different
// byte order used by the container." Here a big-endian leaf frame produced
// by one encoder is spliced verbatim into a little-endian container via the
// exported splice API, and the decoder reads both correctly.
func TestSplicedMixedOrderDocument(t *testing.T) {
	leLeaf, err := Marshal(bxdm.NewLeaf(bxdm.LocalName("le"), 1.5), EncodeOptions{Order: xbs.LittleEndian})
	if err != nil {
		t.Fatal(err)
	}
	beLeaf, err := Marshal(bxdm.NewLeaf(bxdm.LocalName("be"), 2.5), EncodeOptions{Order: xbs.BigEndian})
	if err != nil {
		t.Fatal(err)
	}

	frame, err := AppendSplicedElement(nil, xbs.LittleEndian, "mixed", leLeaf, beLeaf)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Parse(frame)
	if err != nil {
		t.Fatalf("Parse spliced document: %v", err)
	}
	el := n.(*bxdm.Element)
	if el.Name.Local != "mixed" || len(el.Children) != 2 {
		t.Fatalf("container = %v with %d children", el.Name, len(el.Children))
	}
	le := el.Children[0].(*bxdm.LeafElement)
	be := el.Children[1].(*bxdm.LeafElement)
	if le.Value.Float64() != 1.5 {
		t.Errorf("LE child = %v", le.Value.Float64())
	}
	if be.Value.Float64() != 2.5 {
		t.Errorf("BE child = %v (byte order not honored per frame)", be.Value.Float64())
	}
}

// Array frames, by contrast, are only relocatable to offsets congruent
// modulo their item size: the stored pad count realizes document-absolute
// alignment, and the decoder verifies it rather than silently reading
// misaligned data (documented in DESIGN.md).
func TestSplicedArrayFrameAlignmentChecked(t *testing.T) {
	arr, err := Marshal(bxdm.NewArray(bxdm.LocalName("a"), []float64{1, 2}), EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Splice at an offset that shifts the packed data off its alignment:
	// wrap in a container whose header length is not a multiple of 8.
	frame, err := AppendSplicedElement(nil, xbs.LittleEndian, "c", arr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(frame); err == nil {
		// The splice happened to land aligned — data integrity holds.
		return
	}
	// Misalignment must be reported as a clean error, never silent
	// corruption or a panic.
}

func TestAppendFrameRoundTrip(t *testing.T) {
	// A chardata frame assembled by hand through AppendFrame must parse
	// back to the same node the encoder would produce.
	want, err := Marshal(bxdm.NewText("hello"), EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	body := vls.AppendUint(nil, uint64(len("hello")))
	body = append(body, "hello"...)
	got := AppendFrame(nil, xbs.LittleEndian, FrameCharData, body)
	if !bytes.Equal(got, want) {
		t.Fatalf("AppendFrame = %x, encoder produced %x", got, want)
	}
	n, err := Parse(got)
	if err != nil {
		t.Fatal(err)
	}
	if txt, ok := n.(*bxdm.Text); !ok || txt.Data != "hello" {
		t.Fatalf("parsed %#v", n)
	}
}

func TestWindowSplice(t *testing.T) {
	msg := []byte("0123456789")
	w := Window{Off: 3, Len: 4}
	if err := w.Splice(msg, []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if string(msg) != "012abcd789" {
		t.Fatalf("spliced message = %q", msg)
	}
	if err := w.SpliceString(msg, "WXYZ"); err != nil {
		t.Fatal(err)
	}
	if string(msg) != "012WXYZ789" {
		t.Fatalf("string-spliced message = %q", msg)
	}
	// The message length is invariant: fills of any other width are
	// rejected, as are windows outside the message.
	if err := w.Splice(msg, []byte("toolong")); err == nil {
		t.Error("oversized fill accepted")
	}
	if err := (Window{Off: 8, Len: 4}).Splice(msg, []byte("abcd")); err == nil {
		t.Error("out-of-bounds window accepted")
	}
	if err := (Window{Off: -1, Len: 1}).SpliceString(msg, "x"); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestAppendSplicedElementRejectsBadName(t *testing.T) {
	if _, err := AppendSplicedElement(nil, xbs.LittleEndian, ""); err == nil {
		t.Error("empty name accepted")
	}
}
