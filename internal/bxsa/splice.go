package bxsa

// This file exports BXSA's splice property as a small product API:
// per-frame byte-order bits and length-prefixed bodies make encoded frames
// relocatable byte strings (§4.1 — "simpler to embed the frame within
// other documents"), so pre-encoded frames can be assembled into
// containers without re-encoding, and fixed-width spans of an encoded
// message can be overwritten in place. The schema-compiled template path
// (template.go, internal/core's plan cache) is the first real consumer:
// per call it splices only an envelope's variable leaves into a cached
// skeleton.

import (
	"fmt"

	"bxsoap/internal/vls"
	"bxsoap/internal/xbs"
)

// Window is a fixed-width byte span [Off, Off+Len) inside an encoded BXSA
// message. Because every frame carries its size up front and array slack
// is fixed-width, a message's layout depends only on its shape: re-encoding
// a same-shaped message moves no offsets, so a window computed once remains
// valid for every message of that shape.
type Window struct {
	Off, Len int
}

// Splice overwrites the window's span of msg with fill, which must be
// exactly Len bytes. The message length never changes — that is what keeps
// every other offset in the message valid.
func (w Window) Splice(msg, fill []byte) error {
	if len(fill) != w.Len {
		return fmt.Errorf("bxsa: splice fill is %d bytes, window holds %d", len(fill), w.Len)
	}
	if err := w.bounds(msg); err != nil {
		return err
	}
	copy(msg[w.Off:], fill)
	return nil
}

// SpliceString is Splice for string fills, avoiding a []byte conversion.
func (w Window) SpliceString(msg []byte, fill string) error {
	if len(fill) != w.Len {
		return fmt.Errorf("bxsa: splice fill is %d bytes, window holds %d", len(fill), w.Len)
	}
	if err := w.bounds(msg); err != nil {
		return err
	}
	copy(msg[w.Off:], fill)
	return nil
}

func (w Window) bounds(msg []byte) error {
	if w.Off < 0 || w.Len < 0 || w.Off+w.Len > len(msg) {
		return fmt.Errorf("bxsa: window [%d:%d) outside %d-byte message", w.Off, w.Off+w.Len, len(msg))
	}
	return nil
}

// AppendFrame appends a complete frame — Common Frame Prefix, VLS size,
// body — to dst and returns the extended slice. The body must already be
// encoded in the frame's own grammar; AppendFrame only wraps it.
func AppendFrame(dst []byte, order xbs.ByteOrder, t FrameType, body []byte) []byte {
	dst = append(dst, prefixByte(order, t))
	dst = vls.AppendUint(dst, uint64(len(body)))
	return append(dst, body...)
}

// AppendSplicedElement appends an element frame with the unqualified name
// local, no namespace declarations and no attributes, whose children are
// the given pre-encoded frames spliced in verbatim. Child frames keep
// their own byte-order bits, so frames produced by encoders of different
// endianness embed without re-encoding. Array frames are only relocatable
// to offsets congruent modulo their item size; the decoder verifies the
// stored alignment pad rather than reading misaligned data.
func AppendSplicedElement(dst []byte, order xbs.ByteOrder, local string, children ...[]byte) ([]byte, error) {
	if len(local) == 0 || len(local) > maxNameLen {
		return nil, fmt.Errorf("bxsa: spliced element name length %d out of range", len(local))
	}
	var body []byte
	body = vls.AppendUint(body, 0) // no namespace declarations
	body = vls.AppendUint(body, 0) // nsref: no namespace
	body = vls.AppendUint(body, uint64(len(local)))
	body = append(body, local...)
	body = vls.AppendUint(body, 0) // no attributes
	body = vls.AppendUint(body, uint64(len(children)))
	for _, c := range children {
		body = append(body, c...)
	}
	return AppendFrame(dst, order, FrameElement, body), nil
}
