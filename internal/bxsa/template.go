package bxsa

// Schema-compiled encode/decode templates. Because a BXSA message's layout
// depends only on its shape (frame sizes are position-independent, array
// slack is fixed-width, string lengths and array counts are part of the
// shape key), one generic encode of a representative document yields a
// reusable skeleton plus the windows where every variable value lives.
// Encoding another message of the same shape is then a memcpy of the
// skeleton and a handful of in-place window fills via the splice API;
// decoding is a static-byte comparison plus window parses. The plan cache
// in internal/core fronts these templates per shape.

import (
	"bytes"
	"fmt"

	"bxsoap/internal/bxdm"
	"bxsoap/internal/shape"
	"bxsoap/internal/xbs"
)

// slot is one variable window of a template, in emit (= byte) order.
type slot struct {
	win   Window
	kind  bxdm.Kind
	code  bxdm.TypeCode
	count int // array item count (KindArrayElement only)
}

// recordLeaf notes the value window of the leaf scalar that emitScalar just
// wrote, whose type byte landed at offset start.
func (e *encoding) recordLeaf(v bxdm.Value, start int) {
	s := slot{kind: bxdm.KindLeafElement, code: v.Type()}
	switch v.Type() {
	case bxdm.TString:
		n := len(v.Text())
		s.win = Window{Off: e.sink.offset() - n, Len: n}
	default:
		// Type byte at start, then the fixed-width payload (bool: 1 byte).
		s.win = Window{Off: start + 1, Len: e.sink.offset() - start - 1}
	}
	e.slots = append(e.slots, s)
}

// Template is a compiled encode/decode plan for one message shape: the
// full encoded bytes of a representative document with the variable
// windows identified. It is immutable after compilation and safe for
// concurrent use.
type Template struct {
	opts     EncodeOptions
	skeleton []byte
	slots    []slot
}

// CompileTemplate compiles a template from a representative document by
// re-running the generic encoder with window recording on. The variable
// slots are the document's leaf values and array payloads in pre-order —
// the same order shape.Fingerprint collects them.
func CompileTemplate(doc *bxdm.Document, opts EncodeOptions) (*Template, error) {
	e, err := newEncoding(doc, opts)
	if err != nil {
		return nil, err
	}
	e.sink.buf = make([]byte, 0, e.total)
	e.sink.base = 0
	e.record = true
	err = e.emit(doc)
	skeleton, slots := e.sink.buf, e.slots
	e.slots = nil // keep the recorded slice out of the pool's reuse
	e.release()
	if err != nil {
		return nil, err
	}
	// Windows must be in increasing byte order and in bounds: Match's
	// static-gap comparison and AppendEncode's in-place fills rely on it.
	prev := 0
	for i, s := range slots {
		if s.win.Off < prev || s.win.Len < 0 || s.win.Off+s.win.Len > len(skeleton) {
			return nil, fmt.Errorf("bxsa: template slot %d window [%d:%d) out of order", i, s.win.Off, s.win.Off+s.win.Len)
		}
		prev = s.win.Off + s.win.Len
	}
	return &Template{opts: opts, skeleton: skeleton, slots: slots}, nil
}

// Slots reports the number of variable windows.
func (t *Template) Slots() int { return len(t.slots) }

// Size reports the (fixed) encoded message size of the shape.
func (t *Template) Size() int { return len(t.skeleton) }

// AppendEncode appends an encoding of the shape with the given variable
// values to dst and returns the extended slice. vars must line up with the
// template's slots (same pre-order, types, string lengths and array
// counts, as guaranteed for envelopes whose shape.Fingerprint matched the
// template's); any mismatch is an error and the caller falls back to the
// generic encoder.
func (t *Template) AppendEncode(dst []byte, vars []shape.Var) ([]byte, error) {
	if len(vars) != len(t.slots) {
		return nil, fmt.Errorf("bxsa: template got %d vars, want %d", len(vars), len(t.slots))
	}
	base := len(dst)
	out := append(dst, t.skeleton...)
	msg := out[base:]
	for i := range t.slots {
		s := &t.slots[i]
		v := &vars[i]
		switch s.kind {
		case bxdm.KindLeafElement:
			if v.Data != nil || v.Value.Type() != s.code {
				return nil, fmt.Errorf("bxsa: template slot %d: leaf type mismatch", i)
			}
			switch s.code {
			case bxdm.TString:
				if err := s.win.SpliceString(msg, v.Value.Text()); err != nil {
					return nil, err
				}
			case bxdm.TBool:
				b := byte(0)
				if v.Value.Bool() {
					b = 1
				}
				msg[s.win.Off] = b
			default:
				putNative(msg[s.win.Off:s.win.Off+s.win.Len], v.Value.Bits(), t.opts.Order)
			}
		case bxdm.KindArrayElement:
			if v.Data == nil || v.Data.Type() != s.code || v.Data.Len() != s.count {
				return nil, fmt.Errorf("bxsa: template slot %d: array mismatch", i)
			}
			// Append into the prefix so the packed items land exactly in
			// the window, with no intermediate buffer. Capacity reaches at
			// least to len(msg), so this never reallocates.
			v.Data.AppendPacked(msg[:s.win.Off], t.opts.Order)
		}
	}
	return out, nil
}

// Match reports whether data is an encoding of this template's shape and,
// if so, appends the decoded variable values to *vars in slot order. A
// false return means only "not this shape" — the caller tries other
// templates or the generic decoder.
func (t *Template) Match(data []byte, vars *[]shape.Var) bool {
	if len(data) != len(t.skeleton) {
		return false
	}
	prev := 0
	for i := range t.slots {
		w := t.slots[i].win
		if !bytes.Equal(data[prev:w.Off], t.skeleton[prev:w.Off]) {
			return false
		}
		prev = w.Off + w.Len
	}
	if !bytes.Equal(data[prev:], t.skeleton[prev:]) {
		return false
	}
	mark := len(*vars)
	for i := range t.slots {
		s := &t.slots[i]
		w := data[s.win.Off : s.win.Off+s.win.Len]
		switch s.kind {
		case bxdm.KindLeafElement:
			switch s.code {
			case bxdm.TString:
				*vars = append(*vars, shape.Var{Value: bxdm.StringValue(string(w))})
			case bxdm.TBool:
				// The generic decoder rejects bool bytes > 1; so must we.
				if w[0] > 1 {
					*vars = (*vars)[:mark]
					return false
				}
				*vars = append(*vars, shape.Var{Value: bxdm.BoolValue(w[0] == 1)})
			default:
				bits := readNative(w, t.opts.Order)
				*vars = append(*vars, shape.Var{Value: valueFromBits(s.code, bits)})
			}
		case bxdm.KindArrayElement:
			d, err := bxdm.DecodePackedArray(s.code, w, s.count, t.opts.Order)
			if err != nil {
				*vars = (*vars)[:mark]
				return false
			}
			*vars = append(*vars, shape.Var{Data: d})
		}
	}
	return true
}

// putNative writes the low len(b) bytes of bits into b in the given order
// — the in-place form of appendNative.
func putNative(b []byte, bits uint64, order xbs.ByteOrder) {
	if order == xbs.LittleEndian {
		for i := range b {
			b[i] = byte(bits >> (8 * i))
		}
	} else {
		n := len(b)
		for i := range b {
			b[i] = byte(bits >> (8 * (n - 1 - i)))
		}
	}
}
